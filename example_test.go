package flexile_test

import (
	"fmt"

	"flexile"
)

// fig1Instance builds the paper's motivating example: the triangle with
// flows A→B and A→C, each needing 1 unit 99% of the time.
func fig1Instance() *flexile.Instance {
	tp := flexile.TriangleTopology()
	inst := flexile.NewSingleClassInstance(tp, 3)
	inst.Demand[0][0] = 1
	inst.Demand[0][1] = 1
	inst.Classes[0].Beta = 0.99
	// All 8 failure states of the three links (p = 0.01 each).
	probs := []float64{0.01, 0.01, 0.01}
	var scens []flexile.Scenario
	for mask := 0; mask < 8; mask++ {
		p := 1.0
		var failed []int
		for e := 0; e < 3; e++ {
			if mask&(1<<e) != 0 {
				p *= probs[e]
				failed = append(failed, e)
			} else {
				p *= 1 - probs[e]
			}
		}
		scens = append(scens, flexile.Scenario{Failed: failed, Prob: p})
	}
	inst.Scenarios = scens
	return inst
}

// ExampleDesign runs Flexile's offline phase on the paper's Fig. 1
// triangle: the decomposition discovers that both flows can meet their 99%
// targets — in different critical scenarios — with zero loss.
func ExampleDesign() {
	inst := fig1Instance()
	design, err := flexile.Design(inst, flexile.DesignOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("PercLoss at 99%%: %.0f%%\n", 100*design.PercLoss[0])
	// Output:
	// PercLoss at 99%: 0%
}

// ExampleScheme_route compares Flexile against SMORE on the triangle: the
// per-scenario optimum is stuck at 50% while Flexile meets the objective.
func ExampleScheme_route() {
	inst := fig1Instance()
	for _, s := range []flexile.Scheme{flexile.NewSMORE(), flexile.NewFlexile()} {
		routing, err := s.Route(inst)
		if err != nil {
			panic(err)
		}
		ev := flexile.Evaluate(inst, routing)
		fmt.Printf("%s: %.0f%%\n", s.Name(), 100*ev.PercLoss[0])
	}
	// Output:
	// SMORE: 50%
	// Flexile: 0%
}

// ExampleFlowLossPercentile shows the percentile semantics of
// Definition 4.1, including the conservative treatment of probability mass
// not covered by the enumerated scenarios.
func ExampleFlowLossPercentile() {
	losses := []float64{0, 0.05, 0.10}
	probs := []float64{0.90, 0.09, 0.009} // 0.1% of states unenumerated
	fmt.Println(flexile.FlowLossPercentile(losses, probs, 0.90))
	fmt.Println(flexile.FlowLossPercentile(losses, probs, 0.95))
	fmt.Println(flexile.FlowLossPercentile(losses, probs, 0.9999)) // beyond coverage
	// Output:
	// 0
	// 0.05
	// 1
}

// ExampleAllocateOnFailure demonstrates the online phase: when link A−B
// fails, the flow whose critical scenario this is gets its promised
// bandwidth first.
func ExampleAllocateOnFailure() {
	inst := fig1Instance()
	design, err := flexile.Design(inst, flexile.DesignOptions{})
	if err != nil {
		panic(err)
	}
	// Find the scenario where only link 0 (A−B) failed.
	for q, s := range inst.Scenarios {
		if len(s.Failed) == 1 && s.Failed[0] == 0 {
			fracs, _, err := flexile.AllocateOnFailure(inst, design, q, flexile.DesignOptions{})
			if err != nil {
				panic(err)
			}
			// One of the two flows is critical here and gets full delivery.
			full := 0
			for _, f := range []int{0, 1} {
				if fracs[f] > 0.999 {
					full++
				}
			}
			fmt.Printf("flows at full delivery: %d\n", full)
		}
	}
	// Output:
	// flows at full delivery: 1
}
