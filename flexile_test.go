package flexile_test

import (
	"math"
	"strings"
	"testing"

	"flexile"
)

// TestPublicAPIQuickstart exercises the doc-comment quickstart path end to
// end on a small topology.
func TestPublicAPIQuickstart(t *testing.T) {
	tp, err := flexile.LoadTopology("Sprint")
	if err != nil {
		t.Fatal(err)
	}
	inst := flexile.NewSingleClassInstance(tp, 3)
	if err := flexile.ApplyGravityTraffic(inst, 1, 0.6); err != nil {
		t.Fatal(err)
	}
	flexile.GenerateFailures(inst, 2, 1e-4, 12)
	beta := flexile.SetDesignTarget(inst)
	if beta <= 0.5 || beta >= 1 {
		t.Fatalf("beta = %v", beta)
	}
	fx := flexile.NewFlexile()
	routing, err := fx.Route(inst)
	if err != nil {
		t.Fatal(err)
	}
	ev := flexile.Evaluate(inst, routing)
	if len(ev.PercLoss) != 1 || ev.PercLoss[0] < 0 || ev.PercLoss[0] > 1 {
		t.Fatalf("PercLoss = %v", ev.PercLoss)
	}
	if ev.Penalty != ev.PercLoss[0]*inst.Classes[0].Weight {
		t.Fatalf("penalty %v vs percloss %v", ev.Penalty, ev.PercLoss[0])
	}
	// The offline result is exposed for inspection.
	if fx.Offline == nil || fx.Offline.Critical == nil {
		t.Fatal("offline result not exposed")
	}
	if fx.Offline.Critical.ByteSize() <= 0 {
		t.Fatal("critical set empty")
	}
}

// TestCriticalSetStorageClaim verifies §4.3's storage arithmetic: 100
// nodes, 1000 scenarios, two classes → about 1.25 MB.
func TestCriticalSetStorageClaim(t *testing.T) {
	flows := 2 * 100 * 99 / 2 // two classes, all pairs of 100 nodes
	cs := flexile.NewCriticalSet(flows, 1000)
	mb := float64(cs.ByteSize()) / (1 << 20)
	if mb < 1.0 || mb > 1.4 {
		t.Fatalf("storage = %.3f MB, paper says ≈1.25 MB", mb)
	}
}

// TestSchemeRegistry checks the scheme constructors and names.
func TestSchemeRegistry(t *testing.T) {
	all := flexile.AllSchemes()
	want := []string{"Flexile", "SMORE", "SWAN-Throughput", "SWAN-Maxmin", "Teavar", "Cvar-Flow-St", "Cvar-Flow-Ad", "IP"}
	for _, name := range want {
		s, ok := all[name]
		if !ok {
			t.Fatalf("missing scheme %q", name)
		}
		if s.Name() != name && !strings.HasPrefix(name, s.Name()) {
			t.Fatalf("scheme %q reports name %q", name, s.Name())
		}
	}
}

// TestTopologyRoundTripAPI exercises Parse/Format through the facade.
func TestTopologyRoundTripAPI(t *testing.T) {
	tp, err := flexile.LoadTopology("B4")
	if err != nil {
		t.Fatal(err)
	}
	text := flexile.FormatTopology(tp)
	back, err := flexile.ParseTopology("B4", text)
	if err != nil {
		t.Fatal(err)
	}
	if back.G.NumEdges() != tp.G.NumEdges() {
		t.Fatal("round trip changed the edge count")
	}
	rich, orig := flexile.RichlyConnected(tp)
	if rich.G.NumEdges() != 2*tp.G.NumEdges() || len(orig) != rich.G.NumEdges() {
		t.Fatal("richly-connected transform wrong shape")
	}
}

// TestFlowLossPercentileAPI checks the exported percentile helper.
func TestFlowLossPercentileAPI(t *testing.T) {
	got := flexile.FlowLossPercentile([]float64{0, 0.5}, []float64{0.9, 0.09}, 0.95)
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("percentile = %v, want 0.5", got)
	}
	// Beyond coverage → 1.
	if got := flexile.FlowLossPercentile([]float64{0}, []float64{0.9}, 0.99); got != 1 {
		t.Fatalf("beyond coverage = %v", got)
	}
}

// TestMLUAPI checks the exported MLU helper.
func TestMLUAPI(t *testing.T) {
	tp, err := flexile.LoadTopology("Sprint")
	if err != nil {
		t.Fatal(err)
	}
	inst := flexile.NewSingleClassInstance(tp, 3)
	if err := flexile.ApplyGravityTraffic(inst, 1, 0.55); err != nil {
		t.Fatal(err)
	}
	mlu, err := flexile.MLU(inst)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mlu-0.55) > 1e-6 {
		t.Fatalf("MLU = %v, want 0.55", mlu)
	}
}
