package flexile_test

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"flexile"
	"flexile/internal/serve"
)

// TestExportArtifactFacade drives the public solve→export→serve pipeline:
// the artifact written through the facade must serve allocations
// bit-identical to AllocateOnFailure on the original instance.
func TestExportArtifactFacade(t *testing.T) {
	inst := flexile.NewSingleClassInstance(flexile.TriangleTopology(), 3)
	inst.Demand[0][0] = 1
	inst.Demand[0][1] = 1
	flexile.GenerateFailures(inst, 1, 0, 0)
	flexile.SetDesignTarget(inst)

	opt := flexile.DesignOptions{Workers: 2}
	design, err := flexile.Design(inst, opt)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := flexile.ExportArtifact(inst, design, opt)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "triangle.flxa")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	srv, err := serve.New(path, serve.Config{CacheSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for q, scen := range inst.Scenarios {
		fracs, x, err := flexile.AllocateOnFailure(inst, design, q, opt)
		if err != nil {
			t.Fatalf("AllocateOnFailure(%d): %v", q, err)
		}
		want, err := json.Marshal(serve.AllocResponse{Scenario: q, Prob: scen.Prob, Frac: fracs, X: x})
		if err != nil {
			t.Fatal(err)
		}
		var parts []string
		for _, e := range scen.Failed {
			parts = append(parts, strconv.Itoa(e))
		}
		resp, err := ts.Client().Get(ts.URL + "/v1/alloc?failed=" + strings.Join(parts, ","))
		if err != nil {
			t.Fatal(err)
		}
		var body bytes.Buffer
		if _, err := body.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("scenario %d: status %d: %s", q, resp.StatusCode, body.String())
		}
		if !bytes.Equal(body.Bytes(), want) {
			t.Fatalf("scenario %d: served body differs from AllocateOnFailure", q)
		}
	}

	// Export validation: a design whose critical set is missing must be
	// rejected, not encoded into a broken artifact.
	if _, err := flexile.ExportArtifact(inst, &flexile.DesignResult{}, opt); err == nil {
		t.Fatal("ExportArtifact accepted a design without a critical set")
	}
}
