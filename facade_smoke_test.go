package flexile_test

import (
	"testing"

	"flexile"
	"flexile/internal/tunnels"
)

// TestFacadeConstructors pins the thin facade aliases: every constructor
// must return a usable value, and the loss-matrix entry points must agree
// with Evaluate on the same routing.
func TestFacadeConstructors(t *testing.T) {
	names := flexile.Topologies()
	if len(names) == 0 {
		t.Fatal("Topologies returned none")
	}

	tp := flexile.TriangleTopology()
	if inst := flexile.NewTwoClassInstance(tp); len(inst.Classes) != 2 {
		t.Fatalf("NewTwoClassInstance: %d classes", len(inst.Classes))
	}
	inst := flexile.NewInstance(tp, []flexile.Class{
		{Name: "c", Beta: 0.99, Weight: 1, Tunnels: tunnels.SingleClass(2)},
	})
	if len(inst.Classes) != 1 {
		t.Fatalf("NewInstance: %d classes", len(inst.Classes))
	}

	if s := flexile.NewScenBest(); s == nil || s.Name() == "" {
		t.Fatal("NewScenBest")
	}
	if s := flexile.NewFlexileWith(flexile.DesignOptions{Workers: 1}); s == nil {
		t.Fatal("NewFlexileWith")
	}
	if s := flexile.NewFlexileSequential(); s == nil {
		t.Fatal("NewFlexileSequential")
	}

	// Route the Fig. 1 triangle and cross-check the loss entry points.
	ti := flexile.NewSingleClassInstance(tp, 3)
	ti.Demand[0][0] = 1
	ti.Demand[0][1] = 1
	flexile.GenerateFailures(ti, 1, 0, 0)
	flexile.SetDesignTarget(ti)
	routing, err := flexile.NewFlexile().Route(ti)
	if err != nil {
		t.Fatal(err)
	}
	ev := flexile.Evaluate(ti, routing)
	ev2 := flexile.EvaluateLosses(ti, ev.Losses)
	if ev.Penalty != ev2.Penalty || len(ev.PercLoss) != len(ev2.PercLoss) {
		t.Fatal("EvaluateLosses disagrees with Evaluate on the same matrix")
	}

	fluid, err := flexile.EmulateFluid(ti, routing, flexile.EmulationOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fluid) != ti.NumFlows() {
		t.Fatalf("EmulateFluid: %d rows, want %d", len(fluid), ti.NumFlows())
	}
}
