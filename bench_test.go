// Benchmarks regenerating every table and figure of the paper at Tiny
// scale (two small topologies, ~12 scenarios) so `go test -bench .`
// finishes in minutes on one core. The flexile-exp command runs the same
// harnesses at small/paper scale. Reported custom metrics surface each
// figure's headline number so benchmark output doubles as a results table.
package flexile_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"flexile"
	"flexile/internal/experiments"
	"flexile/internal/obs"
	"flexile/internal/serve"
)

func tinyCfg() experiments.Config {
	return experiments.Config{Scale: experiments.Tiny, Seed: 1}
}

// BenchmarkFig1Motivation regenerates the §3 motivating example
// (Figs. 1-4): every scheme on the triangle.
func BenchmarkFig1Motivation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1Motivation()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.PercLoss["Flexile"], "flexile-loss-%")
		b.ReportMetric(100*res.PercLoss["SMORE"], "smore-loss-%")
	}
}

// BenchmarkFig5 regenerates the per-flow percentile-loss CDF (IBM).
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(tinyCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Worst["Flexile"], "flexile-worst-%")
		b.ReportMetric(100*res.Worst["Teavar"], "teavar-worst-%")
	}
}

// BenchmarkFig6 regenerates the ScenLoss-penalty-vs-optimal CDF (IBM).
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(tinyCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.PenaltyAt["Flexile"][0], "flexile-pen999-%")
		b.ReportMetric(100*res.PenaltyAt["Teavar"][0], "teavar-pen999-%")
	}
}

// BenchmarkFig9 regenerates the emulation-testbed comparison (one run per
// scheme at benchmark scale; the CLI uses five).
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(tinyCfg(), 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.PCC, "model-emu-pcc")
		b.ReportMetric(100*res.MaxAbsDiff, "max-diff-%")
	}
}

// BenchmarkFig10 regenerates the Flexile-vs-SWAN two-class comparison.
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(tinyCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Medians["Flexile"], "flexile-med-%")
		b.ReportMetric(100*res.Medians["SWAN-Maxmin"], "swanmm-med-%")
	}
}

// BenchmarkFig11 regenerates the Teavar/CVaR-variant comparison.
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(tinyCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Medians["Flexile"], "flexile-med-%")
		b.ReportMetric(100*res.Medians["Teavar"], "teavar-med-%")
	}
}

// BenchmarkFig12 regenerates the richly-connected comparison and the §6.2
// headline reductions (paper: 46% vs SMORE, 63% vs Teavar).
func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12(tinyCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MedianReductionVsSMORE, "red-vs-smore-%")
		b.ReportMetric(res.MedianReductionVsTeavar, "red-vs-teavar-%")
	}
}

// BenchmarkFig13 regenerates the per-scenario worst-flow analysis (Sprint,
// two classes).
func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig13(tinyCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.LowLossAt999["Flexile"], "flexile-low999-%")
	}
}

// BenchmarkFig14 regenerates the per-iteration optimality-gap convergence.
func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig14(tinyCfg(), 5)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.FracOptimalAtIter) > 0 {
			b.ReportMetric(100*res.FracOptimalAtIter[0], "opt-at-iter1-%")
			b.ReportMetric(100*res.FracOptimalAtIter[4], "opt-at-iter5-%")
		}
	}
}

// BenchmarkFig15 regenerates the solving-time comparison (Flexile
// decomposition vs direct IP).
func BenchmarkFig15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig15(tinyCfg(), 150)
		if err != nil {
			b.Fatal(err)
		}
		var fx, ip float64
		for i := range res.Topologies {
			fx += res.FlexileT[i].Seconds()
			ip += res.IPT[i].Seconds()
		}
		b.ReportMetric(fx, "flexile-total-s")
		b.ReportMetric(ip, "ip-total-s")
	}
}

// BenchmarkFig18 regenerates the appendix max-scale experiment.
func BenchmarkFig18(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig18(tinyCfg(), []string{"Sprint"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MaxScale["Flexile"][0], "flexile-scale")
		b.ReportMetric(res.MaxScale["SWAN-Maxmin"][0], "swanmm-scale")
	}
}

// BenchmarkTable2 regenerates the topology inventory (all 20 topologies).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table2()
		for _, info := range res.Rows {
			tp, err := flexile.LoadTopology(info.Name)
			if err != nil {
				b.Fatal(err)
			}
			if tp.G.NumNodes() != info.Nodes || tp.G.NumEdges() != info.Edges {
				b.Fatalf("%s shape mismatch", info.Name)
			}
		}
	}
}

// BenchmarkOfflineDecomposition isolates the offline phase (the paper's
// Fig. 15 focus) on one mid-size topology.
func BenchmarkOfflineDecomposition(b *testing.B) {
	inst, err := tinyCfg().SingleClass("IBM")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flexile.Design(inst, flexile.DesignOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOfflineParallel measures the scenario-parallel solve engine: it
// times one sequential (Workers=1) offline run as the baseline, then the
// timed loop runs with every core, and reports the wall-clock speedup. On
// a single-core machine the speedup hovers around 1.0 by construction;
// results are bit-for-bit identical either way (see
// TestOfflineDeterministicAcrossWorkers).
func BenchmarkOfflineParallel(b *testing.B) {
	inst, err := tinyCfg().SingleClass("IBM")
	if err != nil {
		b.Fatal(err)
	}
	seqStart := time.Now()
	if _, err := flexile.Design(inst, flexile.DesignOptions{Workers: 1}); err != nil {
		b.Fatal(err)
	}
	seq := time.Since(seqStart)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flexile.Design(inst, flexile.DesignOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if par := b.Elapsed() / time.Duration(b.N); par > 0 {
		b.ReportMetric(seq.Seconds()/par.Seconds(), "speedup-x")
	}
	b.ReportMetric(float64(runtime.NumCPU()), "workers")
}

// BenchmarkOfflineParallelMetrics is BenchmarkOfflineParallel's timed loop
// with the observability collector installed process-wide, so comparing the
// two benchmarks measures the metrics overhead directly. Budget: ≤2%
// (DESIGN.md §9) — counters flush once per solve, never per pivot.
func BenchmarkOfflineParallelMetrics(b *testing.B) {
	inst, err := tinyCfg().SingleClass("IBM")
	if err != nil {
		b.Fatal(err)
	}
	obs.SetGlobal(obs.New())
	defer obs.SetGlobal(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flexile.Design(inst, flexile.DesignOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	m := obs.Global().Snapshot()
	b.ReportMetric(float64(m.LP.Pivots)/float64(b.N), "pivots/op")
	b.ReportMetric(float64(m.Decomp.CutsGenerated)/float64(b.N), "cuts/op")
}

// BenchmarkOnlineAllocation isolates the online phase: one failure
// reaction, the latency that §4.3 keeps comparable to SWAN.
func BenchmarkOnlineAllocation(b *testing.B) {
	inst, err := tinyCfg().SingleClass("IBM")
	if err != nil {
		b.Fatal(err)
	}
	design, err := flexile.Design(inst, flexile.DesignOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := 1 + i%(len(inst.Scenarios)-1)
		if _, _, err := flexile.AllocateOnFailure(inst, design, q, flexile.DesignOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeQuery measures the serving path end to end (request parse
// → scenario lookup → allocation → JSON): a cold miss recomputes the
// online allocation, a warm hit returns the cached marshaled bytes. Both
// report p50/p99 request latency so BENCH_*.json tracks tail behavior of
// the serving layer, not just the offline solve; the hit path must be
// orders of magnitude cheaper than a miss.
func BenchmarkServeQuery(b *testing.B) {
	inst, err := tinyCfg().SingleClass("IBM")
	if err != nil {
		b.Fatal(err)
	}
	design, err := flexile.Design(inst, flexile.DesignOptions{})
	if err != nil {
		b.Fatal(err)
	}
	blob, err := flexile.ExportArtifact(inst, design, flexile.DesignOptions{})
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "bench.flxa")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		b.Fatal(err)
	}
	urls := make([]string, len(inst.Scenarios))
	for q, scen := range inst.Scenarios {
		var parts []string
		for _, e := range scen.Failed {
			parts = append(parts, strconv.Itoa(e))
		}
		urls[q] = "/v1/alloc?failed=" + strings.Join(parts, ",")
	}

	query := func(b *testing.B, srv *serve.Server, q int) time.Duration {
		req := httptest.NewRequest("GET", urls[q], nil)
		rec := httptest.NewRecorder()
		start := time.Now()
		srv.ServeHTTP(rec, req)
		elapsed := time.Since(start)
		if rec.Code != 200 {
			b.Fatalf("scenario %d: status %d: %s", q, rec.Code, rec.Body)
		}
		return elapsed
	}
	reportPercentiles := func(b *testing.B, lat []time.Duration) {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		b.ReportMetric(float64(lat[len(lat)/2].Nanoseconds()), "p50-ns")
		b.ReportMetric(float64(lat[len(lat)*99/100].Nanoseconds()), "p99-ns")
	}

	b.Run("miss", func(b *testing.B) {
		// cache-size 0: every query recomputes the allocation.
		srv, err := serve.New(path, serve.Config{CacheSize: 0})
		if err != nil {
			b.Fatal(err)
		}
		lat := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lat = append(lat, query(b, srv, i%len(urls)))
		}
		b.StopTimer()
		reportPercentiles(b, lat)
	})
	b.Run("hit", func(b *testing.B) {
		srv, err := serve.New(path, serve.Config{CacheSize: len(urls)})
		if err != nil {
			b.Fatal(err)
		}
		for q := range urls { // warm every scenario
			query(b, srv, q)
		}
		lat := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lat = append(lat, query(b, srv, i%len(urls)))
		}
		b.StopTimer()
		reportPercentiles(b, lat)
	})
	// overload runs the admission pipeline hot: a tight per-tenant quota
	// sheds part of the serial request stream, and a scripted two-failure
	// burst trips the recompute breaker. The reported shed-rate and
	// breaker-trips land in BENCH_*.json so the perf trajectory tracks the
	// overload path alongside the happy paths.
	b.Run("overload", func(b *testing.B) {
		collector := obs.New()
		var computes atomic.Int64
		srv, err := serve.New(path, serve.Config{
			CacheSize:        0,
			Obs:              collector,
			TenantRate:       50,
			TenantBurst:      1,
			BreakerThreshold: 2,
			BreakerCooldown:  time.Millisecond,
			ComputeHook: func(int) error {
				if computes.Add(1) <= 2 {
					return errors.New("bench: scripted failure burst")
				}
				return nil
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		overloadQuery := func(i int, tenant string) {
			req := httptest.NewRequest("GET", urls[i%len(urls)], nil)
			if tenant != "" {
				req.Header.Set("X-Tenant", tenant)
			}
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			switch rec.Code {
			case 200, 429, 503:
			case 500: // the scripted burst before the breaker trips
			default:
				b.Fatalf("unexpected status %d: %s", rec.Code, rec.Body)
			}
		}
		// Untimed warm-up guarantees the failure burst reaches the solve
		// path (each request spends a fresh tenant's token, so the quota
		// can't absorb it) and trips the breaker even at -benchtime 1x.
		for i := 0; i < 8; i++ {
			overloadQuery(i, "warm-"+strconv.Itoa(i))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			overloadQuery(i, "")
		}
		b.StopTimer()
		m := collector.Snapshot().Serve
		shed := m.QuotaRejects + m.DeadlineShed + m.DeadlineExpired + m.BreakerRejects
		b.ReportMetric(float64(shed)/float64(m.Requests), "shed-rate")
		b.ReportMetric(float64(m.BreakerTrips), "breaker-trips")
	})
}

// BenchmarkServeBatch measures what batching buys per HTTP round-trip on a
// warm cache: one POST /v1/alloc/batch carrying 32 queries versus 32
// single GETs. The amortization-x metric — single round-trips per batch
// round-trip at equal query count — is the headline (the PR 8 floor is
// 3×); p50/p99 track the batch path's own tail.
func BenchmarkServeBatch(b *testing.B) {
	inst, err := tinyCfg().SingleClass("IBM")
	if err != nil {
		b.Fatal(err)
	}
	design, err := flexile.Design(inst, flexile.DesignOptions{})
	if err != nil {
		b.Fatal(err)
	}
	blob, err := flexile.ExportArtifact(inst, design, flexile.DesignOptions{})
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "bench.flxa")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		b.Fatal(err)
	}
	srv, err := serve.New(path, serve.Config{CacheSize: len(inst.Scenarios), Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	// Real loopback HTTP, not in-process ServeHTTP: the quantity under test
	// is per-round-trip overhead (connection handling, request parse,
	// header writes, syscalls), which is exactly what batching amortizes.
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := &http.Client{}
	defer client.CloseIdleConnections()

	const batch = 32
	queries := make([]serve.BatchQuery, batch)
	urls := make([]string, batch)
	for i := range queries {
		failed := inst.Scenarios[i%len(inst.Scenarios)].Failed
		queries[i] = serve.BatchQuery{Failed: failed}
		var parts []string
		for _, e := range failed {
			parts = append(parts, strconv.Itoa(e))
		}
		urls[i] = ts.URL + "/v1/alloc?failed=" + strings.Join(parts, ",")
	}
	body, err := json.Marshal(serve.BatchRequest{Queries: queries})
	if err != nil {
		b.Fatal(err)
	}

	roundTrip := func(req *http.Request) time.Duration {
		start := time.Now()
		resp, err := client.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			b.Fatalf("%s %s: status %d", req.Method, req.URL.Path, resp.StatusCode)
		}
		return time.Since(start)
	}
	single := func(i int) time.Duration {
		req, err := http.NewRequest("GET", urls[i%batch], nil)
		if err != nil {
			b.Fatal(err)
		}
		return roundTrip(req)
	}
	postBatch := func() time.Duration {
		req, err := http.NewRequest("POST", ts.URL+"/v1/alloc/batch", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		return roundTrip(req)
	}

	// Warm every scenario the bodies touch, then measure the single-GET
	// baseline untimed: mean ns per warm round-trip over a fixed pass.
	for i := 0; i < batch; i++ {
		single(i)
	}
	postBatch()
	const baselinePasses = 512
	var singleTotal time.Duration
	for i := 0; i < baselinePasses; i++ {
		singleTotal += single(i)
	}
	singleMean := float64(singleTotal) / baselinePasses

	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lat = append(lat, postBatch())
	}
	b.StopTimer()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var batchTotal time.Duration
	for _, l := range lat {
		batchTotal += l
	}
	batchMean := float64(batchTotal) / float64(len(lat))
	b.ReportMetric(batch*singleMean/batchMean, "amortization-x")
	b.ReportMetric(float64(lat[len(lat)/2].Nanoseconds()), "p50-ns")
	b.ReportMetric(float64(lat[len(lat)*99/100].Nanoseconds()), "p99-ns")
	b.ReportMetric(batch, "queries/op")
}

// BenchmarkPacketEmulation isolates the packet engine on one scenario.
func BenchmarkPacketEmulation(b *testing.B) {
	inst, err := tinyCfg().SingleClass("Sprint")
	if err != nil {
		b.Fatal(err)
	}
	r, err := flexile.NewSMORE().Route(inst)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flexile.EmulatePacket(inst, r, flexile.EmulationOptions{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
