module flexile

go 1.22
