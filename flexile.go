// Package flexile is a from-scratch Go implementation of Flexile
// ("Flexile: Meeting bandwidth objectives almost always", CoNEXT 2022) — a
// wide-area traffic-engineering system that minimizes flow loss at a
// desired percentile across failure scenarios — together with every
// baseline the paper evaluates against (SWAN, SMORE/ScenBest, Teavar and
// flow-level CVaR variants), the optimization substrate they need (an LP
// simplex solver and a branch-and-bound MIP solver), and an emulation
// engine for validating routings at packet level.
//
// # Quick start
//
//	tp, _ := flexile.LoadTopology("IBM")
//	inst := flexile.NewSingleClassInstance(tp, 3)
//	flexile.ApplyGravityTraffic(inst, 1, 0.6)
//	flexile.GenerateFailures(inst, 2, 1e-5, 100)
//	flexile.SetDesignTarget(inst)
//
//	fx := flexile.NewFlexile()
//	routing, _ := fx.Route(inst)
//	ev := flexile.Evaluate(inst, routing)
//	fmt.Printf("PercLoss: %.2f%%\n", 100*ev.PercLoss[0])
//
// The deeper layers are exposed through type aliases so applications can
// drop down when needed: te (the TE model), topo/tunnels/traffic/failure
// (instance construction), eval (metrics), emu (emulation) and the scheme
// packages.
package flexile

import (
	"math"

	"flexile/internal/emu"
	"flexile/internal/eval"
	"flexile/internal/failure"
	"flexile/internal/graph"
	"flexile/internal/scheme"
	"flexile/internal/scheme/cvarflow"
	"flexile/internal/scheme/ffc"
	flexscheme "flexile/internal/scheme/flexile"
	"flexile/internal/scheme/ip"
	"flexile/internal/scheme/scenbest"
	"flexile/internal/scheme/swan"
	"flexile/internal/scheme/teavar"
	"flexile/internal/serve"
	"flexile/internal/te"
	"flexile/internal/topo"
	"flexile/internal/traffic"
	"flexile/internal/tunnels"
)

// Core model types, re-exported for applications.
type (
	// Topology is a named network graph.
	Topology = topo.Topology
	// Graph is the underlying capacitated multigraph.
	Graph = graph.Graph
	// Path is a tunnel path.
	Path = graph.Path
	// Instance is a complete TE problem: topology, classes, flows,
	// tunnels, demands and failure scenarios.
	Instance = te.Instance
	// Class is one traffic class with its percentile target β and weight.
	Class = te.Class
	// Routing is a per-scenario bandwidth assignment.
	Routing = te.Routing
	// Scenario is a disjoint failure state.
	Scenario = failure.Scenario
	// Scheme is any TE scheme (Flexile or a baseline).
	Scheme = scheme.Scheme
	// TunnelPolicy selects tunnels for a node pair.
	TunnelPolicy = tunnels.Policy
	// DesignResult is the offline phase's output: critical scenario sets,
	// achieved PercLoss and convergence history.
	DesignResult = flexscheme.OfflineResult
	// DesignOptions tunes Flexile's offline decomposition and online
	// allocation.
	DesignOptions = flexscheme.Options
	// CriticalSet is the compact flow×scenario bitmap of critical
	// scenarios.
	CriticalSet = flexscheme.CriticalSet
	// EmulationOptions tunes the packet/fluid emulation engines.
	EmulationOptions = emu.Options
	// EmulationResult holds per-flow emulated losses for one scenario.
	EmulationResult = emu.Result
	// CDFPoint is one step of a weighted empirical CDF.
	CDFPoint = eval.CDFPoint
	// AugmentOptions tunes minimum-cost capacity augmentation (§4.4).
	AugmentOptions = flexscheme.AugmentOptions
	// AugmentResult is the outcome of capacity augmentation.
	AugmentResult = flexscheme.AugmentResult
)

// AugmentCapacity computes a minimum-cost capacity augmentation so every
// class meets its PercLoss target (§4.4 and the appendix): the offline
// decomposition generalized to the joint (critical-scenario, added-
// capacity) space.
func AugmentCapacity(inst *Instance, opt AugmentOptions) (*AugmentResult, error) {
	return flexscheme.Augment(inst, opt)
}

// Topologies lists the built-in Table-2 topology names.
func Topologies() []string { return topo.Names() }

// LoadTopology builds a named built-in topology (see Topologies), or
// returns an error for unknown names.
func LoadTopology(name string) (*Topology, error) { return topo.Load(name) }

// ParseTopology reads the text topology format:
//
//	node <name>
//	edge <nameA> <nameB> <capacity>
func ParseTopology(name, text string) (*Topology, error) { return topo.Parse(name, text) }

// FormatTopology renders a topology in the text format.
func FormatTopology(t *Topology) string { return topo.Format(t) }

// TriangleTopology returns the paper's Fig. 1 motivating example.
func TriangleTopology() *Topology { return topo.Triangle() }

// RichlyConnected splits every link into two independently-failing
// half-capacity sublinks (the paper's §6.2 transform) and returns the
// mapping from new edge ids to source edge ids.
func RichlyConnected(t *Topology) (*Topology, []int) { return topo.RichlyConnected(t) }

// NewSingleClassInstance builds a single-class instance with n tunnels per
// pair chosen for disjointness (§6's single-class policy). The class
// percentile target β starts at zero; set it directly or via
// SetDesignTarget after generating failures.
func NewSingleClassInstance(t *Topology, tunnelsPerPair int) *Instance {
	return te.NewInstance(t, []Class{
		{Name: "single", Beta: 0, Weight: 1, Tunnels: tunnels.SingleClass(tunnelsPerPair)},
	})
}

// NewTwoClassInstance builds the §6 two-class instance: a latency-sensitive
// high-priority class (weight 1000, three single-failure-resilient
// shortest tunnels) and a low-priority class (β = 0.99, six tunnels).
func NewTwoClassInstance(t *Topology) *Instance {
	return te.NewInstance(t, []Class{
		{Name: "high", Beta: 0, Weight: 1000, Tunnels: tunnels.HighPriority(3)},
		{Name: "low", Beta: 0.99, Weight: 1, Tunnels: tunnels.LowPriority(3, 3)},
	})
}

// NewInstance builds an instance with custom classes.
func NewInstance(t *Topology, classes []Class) *Instance { return te.NewInstance(t, classes) }

// ApplyGravityTraffic fills the instance's demands with a gravity-model
// matrix scaled so the optimally-routed MLU equals targetMLU (the paper
// uses [0.5, 0.7]); two-class instances get the random split with the low
// class scaled ×2.
func ApplyGravityTraffic(inst *Instance, seed int64, targetMLU float64) error {
	return traffic.ApplyGravity(inst, traffic.GravityOptions{Seed: seed, TargetMLU: targetMLU})
}

// GenerateFailures samples Weibull link failure probabilities (median
// ≈ 0.001, §6) and enumerates all failure scenarios with probability at
// least cutoff, keeping at most maxScenarios (0 = unlimited) by
// probability.
func GenerateFailures(inst *Instance, seed int64, cutoff float64, maxScenarios int) {
	probs := failure.WeibullProbs(inst.Topo.G, seed, failure.WeibullParams{})
	inst.LinkProbs = probs
	scens := failure.Enumerate(probs, cutoff)
	if maxScenarios > 0 && len(scens) > maxScenarios {
		scens = scens[:maxScenarios]
	}
	inst.Scenarios = scens
}

// SetDesignTarget sets class 0's percentile target to the highest
// achievable value: just below the probability mass of scenarios in which
// every flow remains connected (§6's design-target rule), capped at the
// paper's 99.9% SLO. Other classes keep their configured targets. It
// returns the chosen β.
func SetDesignTarget(inst *Instance) float64 {
	beta := inst.AllFlowsConnectedMass() - 1e-9
	if beta > 0.999 {
		beta = 0.999
	}
	// Keep the residual (unenumerated) probability mass small relative to
	// the tail 1−β, otherwise the percentile is dominated by scenarios no
	// scheme can see.
	cov := 0.0
	for _, s := range inst.Scenarios {
		cov += s.Prob
	}
	if beta > 1-8*(1-cov) {
		beta = 1 - 8*(1-cov)
	}
	if beta < 0.5 {
		beta = 0.5
	}
	inst.Classes[0].Beta = beta
	return beta
}

// NewCriticalSet allocates an empty flow×scenario critical bitmap (mainly
// useful for tests and tooling; Design produces populated ones).
func NewCriticalSet(flows, scenarios int) *CriticalSet {
	return flexscheme.NewCriticalSet(flows, scenarios)
}

// NewFlexile returns the Flexile scheme with default options.
func NewFlexile() *flexscheme.Scheme { return &flexscheme.Scheme{} }

// NewFlexileWith returns the Flexile scheme with explicit options (γ bound,
// iteration limits, ...).
func NewFlexileWith(opt DesignOptions) *flexscheme.Scheme { return &flexscheme.Scheme{Opt: opt} }

// Design runs only Flexile's offline phase: it identifies each flow's
// critical scenarios and the achievable PercLoss without computing the
// full per-scenario routing.
func Design(inst *Instance, opt DesignOptions) (*DesignResult, error) {
	return flexscheme.Offline(inst, opt)
}

// ExportArtifact serializes an instance plus its offline design result in
// the versioned, checksummed binary format that flexile-serve loads: the
// critical-set bitmap, ScenLossOpt vector, subproblem losses, tunnel
// tables, demands and failure scenarios. The returned bytes round-trip
// losslessly — a server loading them produces allocations bit-identical to
// AllocateOnFailure on the original instance.
func ExportArtifact(inst *Instance, design *DesignResult, opt DesignOptions) ([]byte, error) {
	a, err := serve.Build(inst, design, opt)
	if err != nil {
		return nil, err
	}
	return a.Encode(), nil
}

// AllocateOnFailure runs Flexile's online phase for one scenario index:
// critical flows get their promised bandwidth first, then a max-min
// allocation on loss distributes the residual (higher classes first). The
// returned fractions are per flow id; X is the per-tunnel allocation.
func AllocateOnFailure(inst *Instance, design *DesignResult, scenario int, opt DesignOptions) (fracs []float64, x [][][]float64, err error) {
	res, err := flexscheme.Online(inst, design, scenario, opt)
	if err != nil {
		return nil, nil, err
	}
	return res.Frac, res.X, nil
}

// Baseline schemes.

// NewSMORE returns the SMORE / ScenBest(MLU) baseline.
func NewSMORE() Scheme { return &scenbest.Scheme{DisplayName: "SMORE"} }

// NewScenBest returns ScenBest (identical algorithm, the paper's name for
// the per-scenario optimum).
func NewScenBest() Scheme { return &scenbest.Scheme{} }

// NewSWANThroughput returns SWAN's throughput-maximizing variant.
func NewSWANThroughput() Scheme { return &swan.Throughput{} }

// NewSWANMaxmin returns SWAN's approximate max-min variant.
func NewSWANMaxmin() Scheme { return &swan.Maxmin{} }

// NewTeavar returns Teavar (CVaR over scenario loss, static routing).
func NewTeavar() Scheme { return &teavar.Scheme{} }

// NewCvarFlowSt returns the paper's Cvar-Flow-St generalization.
func NewCvarFlowSt() Scheme { return &cvarflow.St{} }

// NewCvarFlowAd returns the paper's Cvar-Flow-Ad generalization.
func NewCvarFlowAd() Scheme { return &cvarflow.Ad{} }

// NewExactIP returns the direct MIP formulation (I) — exact but only
// viable on small instances.
func NewExactIP() Scheme { return &ip.Scheme{} }

// NewFFC returns the Forward Fault Correction baseline (§2): congestion-
// free under any f simultaneous link failures, with conservative admission.
func NewFFC(f int) Scheme { return &ffc.Scheme{F: f} }

// NewFlexileSequential returns the §4.4 explicit-priority variant: classes
// designed strictly in priority order, each on the capacity left by the
// previous.
func NewFlexileSequential() *flexscheme.SequentialScheme { return &flexscheme.SequentialScheme{} }

// AllSchemes returns every single-class-capable scheme keyed by name.
func AllSchemes() map[string]Scheme {
	return map[string]Scheme{
		"Flexile":         NewFlexile(),
		"SMORE":           NewSMORE(),
		"SWAN-Throughput": NewSWANThroughput(),
		"SWAN-Maxmin":     NewSWANMaxmin(),
		"Teavar":          NewTeavar(),
		"Cvar-Flow-St":    NewCvarFlowSt(),
		"Cvar-Flow-Ad":    NewCvarFlowAd(),
		"FFC(f=1)":        NewFFC(1),
		"IP":              NewExactIP(),
	}
}

// Evaluation is the post-analysis of a routing (§6's methodology).
type Evaluation struct {
	// Losses[f][q] is flow f's loss in scenario q.
	Losses [][]float64
	// FlowLoss[f] is the β_k-percentile loss of flow f (its class's β).
	FlowLoss []float64
	// PercLoss[k] is class k's PercLoss (max FlowLoss across its flows).
	PercLoss []float64
	// Penalty is Σ_k w_k·PercLoss_k, the offline objective.
	Penalty float64
}

// Evaluate post-analyzes a routing: per-flow per-scenario losses, flow
// percentile losses and per-class PercLoss.
func Evaluate(inst *Instance, r *Routing) *Evaluation {
	losses := r.LossMatrix(inst)
	return &Evaluation{
		Losses:   losses,
		FlowLoss: eval.FlowLossAll(inst, losses),
		PercLoss: eval.PercLossAll(inst, losses),
		Penalty:  eval.Penalty(inst, losses),
	}
}

// EvaluateLosses post-analyzes an externally produced loss matrix (e.g.
// from emulation).
func EvaluateLosses(inst *Instance, losses [][]float64) *Evaluation {
	return &Evaluation{
		Losses:   losses,
		FlowLoss: eval.FlowLossAll(inst, losses),
		PercLoss: eval.PercLossAll(inst, losses),
		Penalty:  eval.Penalty(inst, losses),
	}
}

// EmulatePacket replays a routing through the packet-level emulation engine
// for every scenario and returns the emulated loss matrix.
func EmulatePacket(inst *Instance, r *Routing, opt EmulationOptions) ([][]float64, error) {
	return emu.LossMatrix(inst, r, emu.Packet, opt)
}

// EmulateFluid replays a routing through the deterministic fluid engine.
func EmulateFluid(inst *Instance, r *Routing, opt EmulationOptions) ([][]float64, error) {
	return emu.LossMatrix(inst, r, emu.Fluid, opt)
}

// MLU returns the optimal-routing maximum link utilization of the
// instance's demands with no failures.
func MLU(inst *Instance) (float64, error) { return traffic.MLU(inst) }

// FlowLossPercentile computes the β-percentile of a loss series under the
// scenario probabilities (Definition 4.1); unenumerated probability mass
// counts as total loss.
func FlowLossPercentile(losses, probs []float64, beta float64) float64 {
	return eval.FlowLoss(losses, probs, beta)
}

// Inf is a convenience +∞ for demands and bounds.
var Inf = math.Inf(1)
