# Tier-1 verification plus the perf-trajectory tooling. `make ci` is what
# .github/workflows/ci.yml runs; it must stay green on every PR.

GO ?= go

.PHONY: ci vet build test race faults bench bench-json clean

ci: vet build race faults

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiments package regenerates whole figures per test; under the
# race detector on few cores that exceeds Go's default 10m per-package
# timeout, so give it headroom.
race:
	$(GO) test -race -timeout 45m ./...

# The fault-injection suite: every forced failure class (panic, singular
# basis, iteration limit, cancellation) must end in recovery or a degraded
# result, race-clean.
faults:
	$(GO) test -race -timeout 15m -run 'Fault|Degraded|Cancel' ./...

# Record the per-PR performance trajectory: run every benchmark once and
# convert the text output into a JSON record (BENCH_<tag>.json).
# Usage: make bench-json TAG=pr1
TAG ?= local
BENCHTIME ?= 1x

bench:
	$(GO) test -bench . -run '^$$' -benchtime $(BENCHTIME) .

bench-json:
	$(GO) test -bench . -run '^$$' -benchtime $(BENCHTIME) . | tee BENCH_$(TAG).txt
	$(GO) run ./cmd/flexile-exp -benchjson BENCH_$(TAG).txt -o BENCH_$(TAG).json
	rm -f BENCH_$(TAG).txt

clean:
	rm -f BENCH_*.txt
