# Tier-1 verification plus the perf-trajectory tooling. `make ci` is what
# .github/workflows/ci.yml runs; it must stay green on every PR.

GO ?= go

.PHONY: ci vet build test race faults obs fuzz scrape chaos loadsmoke golden cover bench bench-json benchgate hypotheses soak clean

ci: vet build race faults obs fuzz scrape chaos loadsmoke cover hypotheses

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiments package regenerates whole figures per test; under the
# race detector on few cores that exceeds Go's default 10m per-package
# timeout, so give it headroom.
race:
	$(GO) test -race -timeout 45m ./...

# The fault-injection suite: every forced failure class (panic, singular
# basis, iteration limit, cancellation) must end in recovery or a degraded
# result, race-clean.
faults:
	$(GO) test -race -timeout 15m -run 'Fault|Degraded|Cancel' ./...

# Fuzz smoke for the serving layer's two byte-level decoders (DESIGN.md
# §10): the artifact decoder and the failure-state request parser must
# turn arbitrary bytes into errors, never panics. The checked-in seed
# corpora (internal/serve/testdata/fuzz/) run on every plain `go test`;
# this adds a short coverage-guided exploration on top. One target per
# invocation — `go test -fuzz` accepts a single fuzz pattern.
FUZZTIME ?= 15s
fuzz:
	$(GO) test -fuzz 'FuzzDecodeArtifact' -fuzztime $(FUZZTIME) -run '^$$' ./internal/serve/
	$(GO) test -fuzz 'FuzzParseRequest' -fuzztime $(FUZZTIME) -run '^$$' ./internal/serve/
	$(GO) test -fuzz 'FuzzParseBatchRequest' -fuzztime $(FUZZTIME) -run '^$$' ./internal/serve/
	$(GO) test -fuzz 'FuzzResolveArtifactName' -fuzztime $(FUZZTIME) -run '^$$' ./internal/serve/

# Live telemetry check (DESIGN.md §11): build the real flexile-serve
# binary, start it on loopback ports, hammer /v1/alloc a known number of
# times, then scrape /metrics on both the serving and the -debug-listen
# admin listeners and assert the page is exposition-grammar conformant
# with flexile_serve_requests_total equal to the hammer count, the
# request-latency histogram fully rendered, and go_ runtime families
# present.
scrape:
	$(GO) test -run 'TestScrapeEndToEnd' -count=1 ./cmd/flexile-serve/

# The seeded chaos battery (DESIGN.md §13): drive a live server through
# overload, corrupt-reload, failing-solve and client-disconnect storms and
# assert the resilience contract — explicit sheds with Retry-After, marked
# degraded answers, bit-identical admitted responses, breaker trip and
# recovery, and a goroutine count that returns to baseline. Race-enabled;
# client behavior is a pure function of each storm's seed.
chaos:
	$(GO) test -race -timeout 15m -count=1 -run 'TestChaos' ./internal/chaos/

# Load-generator smoke (DESIGN.md §14): build the real flexile-serve and
# flexile-load binaries, drive a short seeded open-loop storm at a
# two-artifact registry, and assert the benchjson report parses with sane
# p99 latency, zero unexplained sheds, and client-side hit/dedup/entry
# counts that exactly match the server's own /metrics counters.
loadsmoke:
	$(GO) test -run 'TestLoadEndToEnd' -count=1 ./cmd/flexile-load/

# The observability + correctness battery (DESIGN.md §9): obs collector
# unit tests, the LP property battery (strong duality, complementary
# slackness, Bland agreement on 200 random LPs), the MIP consistency
# suite (relaxation bounds, brute-force enumeration match), the flexile
# ScenLossOpt cross-check, and the metrics determinism / fault-accounting
# suites. Race-clean by contract.
obs:
	$(GO) test -race -timeout 15m ./internal/obs/
	$(GO) test -race -timeout 15m -run 'Property|Incumbent|BruteForce|WarmStart|ScenLossOptMatches|Metrics' \
		./internal/lp/ ./internal/mip/ ./internal/scheme/flexile/

# Regenerate the golden files pinning the rendered experiment output
# (internal/experiments/testdata/). Run after an intentional change to
# the solver's numbers or the render format, and commit the diff.
golden:
	$(GO) test ./internal/experiments -run 'TestGolden' -update -count=1

# Coverage floor: the repo-wide `go test -coverprofile` total must not
# drop below the checked-in floor (.cover_floor, a bare percentage).
# Raise the floor deliberately when coverage rises; never lower it to
# make a PR pass.
cover:
	$(GO) test -coverprofile=cover.out ./...
	@total=$$($(GO) tool cover -func=cover.out | tail -1 | awk '{print $$3}' | tr -d '%'); \
	floor=$$(cat .cover_floor); \
	awk -v t=$$total -v f=$$floor 'BEGIN { \
		if (t+0 < f+0) { printf "FAIL: total coverage %.1f%% is below the floor %.1f%%\n", t, f; exit 1 } \
		printf "coverage %.1f%% (floor %.1f%%)\n", t, f }'

# Record the per-PR performance trajectory: run every benchmark once and
# convert the text output into a JSON record (BENCH_<tag>.json). TAG
# defaults to the next free integer index, so a plain `make bench-json`
# appends BENCH_<n>.json to the trajectory; TestBenchFiles enforces that
# the checked-in indices stay exactly 0..n-1.
TAG ?= $(shell i=0; while [ -e BENCH_$$i.json ]; do i=$$((i+1)); done; echo $$i)
BENCHTIME ?= 1x

bench:
	$(GO) test -bench . -run '^$$' -benchtime $(BENCHTIME) .

bench-json:
	$(GO) test -bench . -run '^$$' -benchtime $(BENCHTIME) . | tee BENCH_$(TAG).txt
	$(GO) run ./cmd/flexile-exp -benchjson BENCH_$(TAG).txt -o BENCH_$(TAG).json
	rm -f BENCH_$(TAG).txt

# Performance gate for the warm-started batched offline solve (DESIGN.md
# §12): warm must stay ≥2× faster wall-clock than the default cold solve
# on the IBM gate workload. Timing-sensitive, so it is opt-in via the
# BENCHGATE env var rather than part of the plain test battery. The CI
# gate itself moved to `make hypotheses` (h-warm-speedup); this target
# stays for strict manual runs of the original 2× threshold.
benchgate:
	BENCHGATE=1 $(GO) test -run 'TestBenchGateWarmSpeedup' -count=1 -v .

# The hypothesis gate (DESIGN.md §15): run every named experiment at the
# quick tier from its fixed seed and require (a) each hypothesis's own
# checks to pass and (b) the canonical verdict to match the checked-in
# hypotheses/<name>/verdict.json byte for byte. After an intentional
# change, regenerate with `go run ./cmd/flexile-hyp -update` and commit
# the diff like any other artifact.
hypotheses:
	$(GO) run ./cmd/flexile-hyp

# The long-form tier: soakable hypotheses run their full workloads (the
# serving soak replays a ~SOAK_DURATION seeded stream through the live
# daemon) and the volatile perf gates enforce their strict thresholds.
# Not part of ci; run before cutting anything that claims performance.
SOAK_DURATION ?= 20s
soak:
	$(GO) run ./cmd/flexile-hyp -tier soak -soak-duration $(SOAK_DURATION)

clean:
	rm -f BENCH_*.txt
