package flexile_test

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"flexile/internal/benchjson"
)

// TestBenchFiles validates every checked-in BENCH_*.json — the per-PR
// performance trajectory that `make bench-json` appends to. The files are
// produced mechanically (benchjson.Write) but land in review like any
// other artifact, so this pins what later tooling may assume:
//
//   - indices are exactly 0..n-1, no gaps, no duplicates, no stray tags —
//     the trajectory reads in PR order;
//   - each file is a valid benchjson.Report with an RFC 3339 timestamp,
//     the standard bench header metadata, and at least one result;
//   - every result names a Benchmark, ran at least one iteration, took
//     positive time, and carries only finite metric values;
//   - each file carries at least one custom metric overall (a trajectory
//     entry with no figure numbers recorded nothing worth keeping).
func TestBenchFiles(t *testing.T) {
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	var indices []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "BENCH_") || !strings.HasSuffix(name, ".json") {
			continue
		}
		tag := strings.TrimSuffix(strings.TrimPrefix(name, "BENCH_"), ".json")
		idx, err := strconv.Atoi(tag)
		if err != nil {
			t.Errorf("%s: tag %q is not an index; `make bench-json` now auto-numbers (BENCH_0.json, BENCH_1.json, ...)", name, tag)
			continue
		}
		indices = append(indices, idx)
		validateBenchFile(t, name)
	}
	if len(indices) == 0 {
		t.Fatal("no BENCH_*.json files found; the performance trajectory is gone")
	}
	sort.Ints(indices)
	for want, got := range indices {
		if got != want {
			t.Fatalf("BENCH indices %v are not exactly 0..n-1 (missing or duplicate index %d)", indices, want)
		}
	}
}

func validateBenchFile(t *testing.T, name string) {
	t.Helper()
	data, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchjson.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Errorf("%s: not a benchjson report: %v", name, err)
		return
	}
	if _, err := time.Parse(time.RFC3339, rep.Generated); err != nil {
		t.Errorf("%s: generated %q is not RFC 3339: %v", name, rep.Generated, err)
	}
	for _, key := range []string{"goos", "goarch", "cpu"} {
		if rep.Meta[key] == "" {
			t.Errorf("%s: meta lacks %q", name, key)
		}
	}
	if len(rep.Results) == 0 {
		t.Errorf("%s: no results", name)
		return
	}
	withMetrics := 0
	for i, r := range rep.Results {
		where := fmt.Sprintf("%s results[%d] (%s)", name, i, r.Name)
		if !strings.HasPrefix(r.Name, "Benchmark") {
			t.Errorf("%s: name does not start with Benchmark", where)
		}
		if r.Procs < 1 {
			t.Errorf("%s: procs %d", where, r.Procs)
		}
		if r.Iterations < 1 {
			t.Errorf("%s: iterations %d", where, r.Iterations)
		}
		if !(r.NsPerOp > 0) {
			t.Errorf("%s: ns_per_op %v", where, r.NsPerOp)
		}
		if len(r.Metrics) > 0 {
			withMetrics++
		}
		for k, v := range r.Metrics {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s: metric %q is %v", where, k, v)
			}
		}
	}
	if withMetrics == 0 {
		t.Errorf("%s: no result carries custom metrics", name)
	}
}
