// Command topogen lists and exports the built-in evaluation topologies
// (the paper's Table 2).
//
// Usage:
//
//	topogen -list                 # print the Table-2 inventory
//	topogen -dump IBM             # write the IBM topology in text format
//	topogen -dump IBM -rich       # ... after the two-sublink transform
//	topogen -gen 24,40 -seed 7    # generate a custom 24-node 40-edge graph
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"flexile/internal/topo"
)

func main() {
	list := flag.Bool("list", false, "list the built-in topologies")
	dump := flag.String("dump", "", "write the named topology in text format to stdout")
	rich := flag.Bool("rich", false, "apply the richly-connected (two-sublink) transform before dumping")
	gen := flag.String("gen", "", "generate a custom topology: \"nodes,edges\"")
	seed := flag.Int64("seed", 1, "generator seed for -gen")
	stats := flag.String("stats", "", "print structural statistics for the named topology (or \"all\")")
	flag.Parse()

	switch {
	case *stats != "":
		names := []string{*stats}
		if *stats == "all" {
			names = topo.Names()
		}
		fmt.Printf("%-16s %6s %6s %7s %7s %7s %9s %8s\n",
			"name", "nodes", "edges", "minDeg", "maxDeg", "avgDeg", "diameter", "bridges")
		for _, name := range names {
			t, err := topo.Load(name)
			if err != nil {
				fatal(err)
			}
			st := topo.ComputeStats(t)
			fmt.Printf("%-16s %6d %6d %7d %7d %7.2f %9d %8d\n",
				t.Name, st.Nodes, st.Edges, st.MinDegree, st.MaxDegree, st.AvgDegree, st.Diameter, st.Bridges)
		}
	case *list:
		fmt.Printf("%-16s %7s %7s\n", "name", "nodes", "edges")
		for _, info := range topo.Table2 {
			fmt.Printf("%-16s %7d %7d\n", info.Name, info.Nodes, info.Edges)
		}
	case *dump != "":
		t, err := topo.Load(*dump)
		if err != nil {
			fatal(err)
		}
		if *rich {
			t, _ = topo.RichlyConnected(t)
		}
		fmt.Print(topo.Format(t))
	case *gen != "":
		parts := strings.Split(*gen, ",")
		if len(parts) != 2 {
			fatal(fmt.Errorf("-gen wants \"nodes,edges\", got %q", *gen))
		}
		n, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
		m, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err1 != nil || err2 != nil {
			fatal(fmt.Errorf("bad -gen value %q", *gen))
		}
		g := topo.Generate(n, m, *seed)
		fmt.Print(topo.Format(&topo.Topology{Name: fmt.Sprintf("gen-%d-%d", n, m), G: g}))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "topogen:", err)
	os.Exit(1)
}
