package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"flexile/internal/benchjson"
	"flexile/internal/failure"
	flexscheme "flexile/internal/scheme/flexile"
	"flexile/internal/serve"
	"flexile/internal/te"
	"flexile/internal/topo"
	"flexile/internal/tunnels"
)

// writeArtifactDir solves two scaled triangle instances and writes them as
// a registry directory: alpha.flxa and beta.flxa with different demands.
func writeArtifactDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for i, name := range []string{"alpha", "beta"} {
		tp := topo.Triangle()
		inst := te.NewInstance(tp, []te.Class{
			{Name: "single", Beta: 0.99, Weight: 1, Tunnels: tunnels.SingleClass(3)},
		})
		scale := float64(1 + 2*i)
		inst.Demand[0][0] = scale
		inst.Demand[0][1] = scale
		inst.LinkProbs = []float64{0.01, 0.01, 0.01}
		inst.Scenarios = failure.Enumerate(inst.LinkProbs, 0)
		opt := flexscheme.Options{Workers: 2}
		off, err := flexscheme.Offline(inst, opt)
		if err != nil {
			t.Fatalf("offline solve (%s): %v", name, err)
		}
		art, err := serve.Build(inst, off, opt)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name+serve.ArtifactExt), art.Encode(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitReady(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("server never became ready at %s", url)
}

// scrapeCounters pulls the untyped/counter sample lines from a /metrics
// page into a name → value map (labelled families keep their label string).
func scrapeCounters(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		if v, err := strconv.ParseFloat(val, 64); err == nil {
			out[name] = v
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestLoadEndToEnd builds the real flexile-serve and flexile-load binaries,
// drives a short seeded storm at a two-artifact registry, and checks three
// contracts: the benchjson report parses and accounts every entry with zero
// errors and zero sheds, the client-side hit/shed/entry counts match the
// server's own /metrics counters, and -plan output is a pure function of
// the seed.
func TestLoadEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binaries")
	}
	bindir := t.TempDir()
	serveBin := filepath.Join(bindir, "flexile-serve")
	loadBin := filepath.Join(bindir, "flexile-load")
	for bin, pkg := range map[string]string{serveBin: "flexile/cmd/flexile-serve", loadBin: "flexile/cmd/flexile-load"} {
		if out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}

	dir := writeArtifactDir(t)
	addr := freePort(t)
	daemon := exec.Command(serveBin, "-artifact-dir", dir, "-listen", addr)
	daemon.Stderr = io.Discard
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		daemon.Process.Signal(syscall.SIGTERM)
		daemon.Wait()
	}()
	base := "http://" + addr
	waitReady(t, base+"/readyz")

	// Plan determinism: same seed, byte-identical stream; new seed diverges.
	planArgs := []string{"-target", base, "-artifacts", "alpha,beta", "-qps", "100",
		"-duration", "2s", "-batch", "4", "-tenants", "3", "-plan"}
	planOut := func(seed string) []byte {
		t.Helper()
		out, err := exec.Command(loadBin, append([]string{"-seed", seed}, planArgs...)...).Output()
		if err != nil {
			t.Fatalf("flexile-load -plan: %v", err)
		}
		return out
	}
	p1, p2, p3 := planOut("42"), planOut("42"), planOut("43")
	if !bytes.Equal(p1, p2) {
		t.Fatal("-plan output differs across runs with the same seed")
	}
	if bytes.Equal(p1, p3) {
		t.Fatal("-plan output identical across different seeds")
	}

	// The storm proper: 2s of seeded open-loop batch traffic.
	outPath := filepath.Join(bindir, "load.json")
	storm := exec.Command(loadBin,
		"-target", base, "-artifacts", "alpha,beta",
		"-seed", "42", "-qps", "100", "-duration", "2s",
		"-batch", "4", "-tenants", "3", "-o", outPath)
	if out, err := storm.CombinedOutput(); err != nil {
		t.Fatalf("flexile-load: %v\n%s", err, out)
	}

	f, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep := new(benchjson.Report)
	if err := json.NewDecoder(f).Decode(rep); err != nil {
		t.Fatalf("report is not benchjson: %v", err)
	}
	if len(rep.Results) != 1 || rep.Results[0].Name != "LoadAlloc" {
		t.Fatalf("unexpected report shape: %+v", rep)
	}
	m := rep.Results[0].Metrics
	if m["entries"] <= 0 {
		t.Fatalf("no entries recorded: %v", m)
	}
	if m["errors"] != 0 || m["shed"] != 0 {
		t.Fatalf("unloaded server shed or errored: %v", m)
	}
	if m["ok"] != m["entries"] {
		t.Fatalf("ok=%v of %v entries: %v", m["ok"], m["entries"], m)
	}
	if m["p99-ns"] <= 0 || m["p99-ns"] < m["p50-ns"] {
		t.Fatalf("latency percentiles malformed: p50=%v p99=%v", m["p50-ns"], m["p99-ns"])
	}
	if m["goodput-qps"] <= 0 {
		t.Fatalf("goodput-qps = %v", m["goodput-qps"])
	}

	// Cross-check against the server's own counters: every batch entry is a
	// request, hit counts agree, dedup counts agree, nothing was shed.
	counters := scrapeCounters(t, base+"/metrics")
	for metric, want := range map[string]float64{
		"flexile_serve_requests_total":       m["entries"],
		"flexile_serve_batch_requests_total": m["req"],
		"flexile_serve_batch_entries_total":  m["entries"],
		"flexile_serve_batch_deduped_total":  m["dedup"],
		"flexile_serve_cache_hits_total":     m["hits"],
		"flexile_serve_deadline_shed_total":  0,
		"flexile_serve_quota_rejects_total":  0,
	} {
		if got, ok := counters[metric]; !ok || got != want {
			t.Errorf("%s = %v (present=%v), want %v", metric, got, ok, want)
		}
	}
}
