// Command flexile-load drives seeded open-loop traffic against a live
// flexile-serve instance and reports latency percentiles, shed-rate, and
// goodput as benchjson (the BENCH_*.json trajectory format).
//
// Usage:
//
//	flexile-serve -artifact-dir ./artifacts -listen :8080 &
//	flexile-load -target http://localhost:8080 -artifacts ibm,att \
//	    -qps 200 -duration 5s -batch 8 -tenants 4 -seed 42
//
// The whole request stream — arrival times (Poisson at -qps), tenants,
// per-query artifact and failure state — is a pure function of -seed,
// materialized before the first request fires: two runs at the same seed
// against the same server issue identical streams (-plan prints the
// stream as JSON and exits, which is how the e2e suite proves it).
// Arrivals are open-loop: a slow server faces mounting concurrency
// instead of a backing-off client, so shed-rate measurements are honest.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"flexile/internal/benchjson"
	"flexile/internal/load"
)

func main() {
	target := flag.String("target", "", "base URL of the server under load (required), e.g. http://localhost:8080")
	seed := flag.Uint64("seed", 1, "seed fixing the whole request stream")
	qps := flag.Float64("qps", 50, "open-loop HTTP request arrival rate")
	duration := flag.Duration("duration", 2*time.Second, "length of the arrival schedule")
	batch := flag.Int("batch", 1, "queries per request (1 = single GET /v1/alloc, >1 = POST /v1/alloc/batch)")
	tenants := flag.Int("tenants", 0, "rotate X-Tenant across this many synthetic tenants (0 = no header)")
	deadline := flag.Duration("deadline", 0, "X-Request-Deadline sent on every request (0 = none)")
	artifacts := flag.String("artifacts", "", "comma-separated artifact names to spread queries across (empty = the server's default artifact)")
	hotFrac := flag.Float64("hot-frac", 0.8, "fraction of queries drawn from the hot scenario set (0 = uniform)")
	hotSet := flag.Int("hot-set", 4, "hot-set size per artifact")
	planOnly := flag.Bool("plan", false, "print the materialized request stream as JSON and exit without firing")
	name := flag.String("name", "LoadAlloc", "benchmark name for the benchjson result")
	outPath := flag.String("o", "", "write the benchjson report here instead of stdout")
	flag.Parse()
	if *target == "" {
		fatal(errors.New("-target is required"))
	}

	ctx := context.Background()
	base := strings.TrimRight(*target, "/")
	names := []string{""}
	if *artifacts != "" {
		names = strings.Split(*artifacts, ",")
	}
	scenarios := make(map[string][][]int, len(names))
	for _, n := range names {
		n = strings.TrimSpace(n)
		scens, err := load.FetchScenarios(ctx, base, n)
		if err != nil {
			fatal(err)
		}
		scenarios[n] = scens
	}

	cfg := load.Config{
		Seed:        *seed,
		QPS:         *qps,
		Duration:    *duration,
		Batch:       *batch,
		Tenants:     *tenants,
		Deadline:    *deadline,
		Scenarios:   scenarios,
		HotFraction: *hotFrac,
		HotSet:      *hotSet,
	}
	plan, err := load.BuildPlan(cfg)
	if err != nil {
		fatal(err)
	}

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	if *planOnly {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(plan); err != nil {
			fatal(err)
		}
		return
	}

	stats, err := load.Run(ctx, base, plan, cfg)
	if err != nil {
		fatal(err)
	}
	if len(stats.FailedIDs) > 0 {
		// The ids double as X-Request-Id on the wire, so each one names the
		// exact server-side trace at /debug/requests (and the access-log
		// record) for the failed sample.
		fmt.Fprintf(os.Stderr, "flexile-load: %d errored entries; failed request ids: %s\n",
			stats.Errors, strings.Join(stats.FailedIDs, ", "))
	}
	rep := stats.Report(*name)
	rep.Meta = map[string]string{
		"target": base,
		"seed":   fmt.Sprint(*seed),
		"qps":    fmt.Sprint(*qps),
		"batch":  fmt.Sprint(*batch),
	}
	if err := benchjson.Write(out, rep, time.Now()); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flexile-load:", err)
	os.Exit(1)
}
