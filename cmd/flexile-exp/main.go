// Command flexile-exp regenerates the paper's tables and figures.
//
// Usage:
//
//	flexile-exp -fig 1             # §3 motivating example (Figs. 1-4)
//	flexile-exp -fig 5 -scale small
//	flexile-exp -fig all -scale tiny
//	flexile-exp -fig 9 -runs 5     # emulation comparison
//	flexile-exp -fig gamma -topo Quest
//
// Figures: 1, 5, 6, 9, 10, 11, 12, 13, 14, 15, 18, gamma, table2, all.
// Scales: tiny (seconds-minutes), small (minutes), paper (§6 full, hours).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"flexile/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate (1,5,6,9,10,11,12,13,14,15,18,gamma,table2,all)")
	scale := flag.String("scale", "small", "compute scale: tiny, small, paper")
	seed := flag.Int64("seed", 1, "base seed")
	runs := flag.Int("runs", 5, "emulation runs for fig 9")
	topoName := flag.String("topo", "Quest", "topology for -fig gamma")
	flag.Parse()

	var sc experiments.Scale
	switch strings.ToLower(*scale) {
	case "tiny":
		sc = experiments.Tiny
	case "small":
		sc = experiments.Small
	case "paper":
		sc = experiments.Paper
	default:
		fatal(fmt.Errorf("unknown scale %q", *scale))
	}
	cfg := experiments.Config{Scale: sc, Seed: *seed}

	want := map[string]bool{}
	for _, f := range strings.Split(*fig, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]
	ran := 0

	type job struct {
		key string
		run func() (interface{ Render() string }, error)
	}
	jobs := []job{
		{"table2", func() (interface{ Render() string }, error) { return experiments.Table2(), nil }},
		{"1", func() (interface{ Render() string }, error) { return experiments.Fig1Motivation() }},
		{"5", func() (interface{ Render() string }, error) { return experiments.Fig5(cfg) }},
		{"6", func() (interface{ Render() string }, error) { return experiments.Fig6(cfg) }},
		{"9", func() (interface{ Render() string }, error) { return experiments.Fig9(cfg, *runs) }},
		{"10", func() (interface{ Render() string }, error) { return experiments.Fig10(cfg) }},
		{"11", func() (interface{ Render() string }, error) { return experiments.Fig11(cfg) }},
		{"12", func() (interface{ Render() string }, error) { return experiments.Fig12(cfg) }},
		{"13", func() (interface{ Render() string }, error) { return experiments.Fig13(cfg) }},
		{"14", func() (interface{ Render() string }, error) { return experiments.Fig14(cfg, 5) }},
		{"15", func() (interface{ Render() string }, error) { return experiments.Fig15(cfg, 0) }},
		{"18", func() (interface{ Render() string }, error) { return experiments.Fig18(cfg, nil) }},
		{"gamma", func() (interface{ Render() string }, error) { return experiments.GammaVariant(cfg, *topoName, 0.05) }},
	}
	for _, j := range jobs {
		if !all && !want[j.key] {
			continue
		}
		start := time.Now()
		res, err := j.run()
		if err != nil {
			fatal(fmt.Errorf("fig %s: %w", j.key, err))
		}
		fmt.Print(res.Render())
		fmt.Printf("  [%v at %s scale]\n\n", time.Since(start).Round(time.Millisecond), sc)
		ran++
	}
	if ran == 0 {
		fatal(fmt.Errorf("no figure matched %q", *fig))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flexile-exp:", err)
	os.Exit(1)
}
