// Command flexile-exp regenerates the paper's tables and figures.
//
// Usage:
//
//	flexile-exp -fig 1             # §3 motivating example (Figs. 1-4)
//	flexile-exp -fig 5 -scale small
//	flexile-exp -fig all -scale tiny
//	flexile-exp -fig 9 -runs 5     # emulation comparison
//	flexile-exp -fig gamma -topo Quest
//	flexile-exp -fig 10 -workers 1 # force a sequential topology sweep
//
//	go test -bench . -run '^$' | flexile-exp -benchjson - -o BENCH_pr1.json
//	flexile-exp -artifact quest.flxa -topo Quest   # export a serving artifact
//
// Figures: 1, 5, 6, 9, 10, 11, 12, 13, 14, 15, 18, gamma, table2, all.
// Scales: tiny (seconds-minutes), small (minutes), paper (§6 full, hours).
// -workers controls the per-topology fan-out (0 = all cores); results are
// identical for every worker count. -benchjson converts `go test -bench`
// text output ("-" = stdin) into a BENCH_*.json performance record.
//
// Stdout carries exactly the rendered experiment results (plus the
// -metrics JSON when requested) — byte-identical across runs and safe to
// redirect into a results file. Progress, timing, and per-topology
// failure diagnostics are structured log lines on stderr (text by
// default, JSON with -logjson).
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"reflect"
	"strings"
	"time"

	"flexile"
	"flexile/internal/benchjson"
	"flexile/internal/experiments"
	"flexile/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "flexile-exp:", err)
		os.Exit(1)
	}
}

// run is the whole CLI with its streams injected: experiment results go to
// stdout, diagnostics to stderr. Tests drive it with buffers to pin the
// stdout bytes.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("flexile-exp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fig := fs.String("fig", "all", "which figure to regenerate (1,5,6,9,10,11,12,13,14,15,18,gamma,table2,all)")
	scale := fs.String("scale", "small", "compute scale: tiny, small, paper")
	seed := fs.Int64("seed", 1, "base seed")
	runs := fs.Int("runs", 5, "emulation runs for fig 9")
	topoName := fs.String("topo", "Quest", "topology for -fig gamma")
	workers := fs.Int("workers", 0, "per-topology fan-out width (0 = all cores, 1 = sequential)")
	timeout := fs.Duration("timeout", 0, "wall-clock limit per topology sweep, e.g. 10m (0 = unlimited)")
	artifactOut := fs.String("artifact", "", "solve -topo offline and write a flexile-serve artifact to this file instead of running figures")
	warm := fs.Bool("warm", false, "warm-start the -artifact offline solve from cached bases (figure runs always solve cold so goldens stay pinned)")
	batch := fs.Bool("batch", true, "use the compiled batch LP path for the -artifact offline solve (bit-identical to the unbatched oracle)")
	benchIn := fs.String("benchjson", "", "parse `go test -bench` output from this file (- = stdin) and emit JSON instead of running figures")
	outPath := fs.String("o", "", "output path for -benchjson (default stdout)")
	metrics := fs.Bool("metrics", false, "emit the aggregated solver metrics as JSON on stdout after the figures")
	tracePath := fs.String("trace", "", "write a chrome://tracing timeline of the solves to this file")
	logJSON := fs.Bool("logjson", false, "emit stderr diagnostics as JSON log lines instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var logger *slog.Logger
	if *logJSON {
		logger = slog.New(slog.NewJSONHandler(stderr, nil))
	} else {
		logger = slog.New(slog.NewTextHandler(stderr, nil))
	}

	collector, tracer := installObs(*metrics, *tracePath)

	if *benchIn != "" {
		return emitBenchJSON(*benchIn, *outPath, stdout, logger)
	}

	if *artifactOut != "" {
		opt := flexile.DesignOptions{MaxIterations: 5, Workers: *workers, Timeout: *timeout,
			WarmStart: *warm, NoBatch: !*batch}
		if err := exportArtifact(*topoName, *seed, opt, *artifactOut, logger); err != nil {
			return err
		}
		return emitObs(collector, tracer, *metrics, *tracePath, stdout, logger)
	}

	var sc experiments.Scale
	switch strings.ToLower(*scale) {
	case "tiny":
		sc = experiments.Tiny
	case "small":
		sc = experiments.Small
	case "paper":
		sc = experiments.Paper
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}
	cfg := experiments.Config{Scale: sc, Seed: *seed, Workers: *workers, Timeout: *timeout}

	want := map[string]bool{}
	for _, f := range strings.Split(*fig, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]
	ran := 0

	type job struct {
		key string
		run func() (interface{ Render() string }, error)
	}
	jobs := []job{
		{"table2", func() (interface{ Render() string }, error) { return experiments.Table2(), nil }},
		{"1", func() (interface{ Render() string }, error) { return experiments.Fig1Motivation() }},
		{"5", func() (interface{ Render() string }, error) { return experiments.Fig5(cfg) }},
		{"6", func() (interface{ Render() string }, error) { return experiments.Fig6(cfg) }},
		{"9", func() (interface{ Render() string }, error) { return experiments.Fig9(cfg, *runs) }},
		{"10", func() (interface{ Render() string }, error) { return experiments.Fig10(cfg) }},
		{"11", func() (interface{ Render() string }, error) { return experiments.Fig11(cfg) }},
		{"12", func() (interface{ Render() string }, error) { return experiments.Fig12(cfg) }},
		{"13", func() (interface{ Render() string }, error) { return experiments.Fig13(cfg) }},
		{"14", func() (interface{ Render() string }, error) { return experiments.Fig14(cfg, 5) }},
		{"15", func() (interface{ Render() string }, error) { return experiments.Fig15(cfg, 0) }},
		{"18", func() (interface{ Render() string }, error) { return experiments.Fig18(cfg, nil) }},
		{"gamma", func() (interface{ Render() string }, error) { return experiments.GammaVariant(cfg, *topoName, 0.05) }},
	}
	for _, j := range jobs {
		if !all && !want[j.key] {
			continue
		}
		start := time.Now()
		res, err := j.run()
		if err != nil {
			return fmt.Errorf("fig %s: %w", j.key, err)
		}
		fmt.Fprint(stdout, res.Render())
		logSweepFailures(logger, j.key, res)
		logger.Info("figure complete",
			"fig", j.key,
			"scale", sc.String(),
			"elapsed", time.Since(start).Round(time.Millisecond).String())
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no figure matched %q", *fig)
	}
	return emitObs(collector, tracer, *metrics, *tracePath, stdout, logger)
}

// logSweepFailures surfaces a figure's per-topology failures as structured
// warnings. The rendered report already lists them (FAILED rows, pinned by
// the golden tests); this duplicates the same facts where log pipelines
// can alert on them. Result types that track failures expose a
// `Failures []experiments.TopoFailure` field, found reflectively so new
// figures inherit the behavior by following the convention.
func logSweepFailures(lg *slog.Logger, fig string, res any) {
	v := reflect.ValueOf(res)
	for v.Kind() == reflect.Pointer {
		if v.IsNil() {
			return
		}
		v = v.Elem()
	}
	if v.Kind() != reflect.Struct {
		return
	}
	f := v.FieldByName("Failures")
	if !f.IsValid() {
		return
	}
	fails, ok := f.Interface().([]experiments.TopoFailure)
	if !ok {
		return
	}
	for _, tf := range fails {
		lg.Warn("topology failed during sweep", "fig", fig, "topology", tf.Topology, "error", tf.Err)
	}
}

// installObs wires the process-global metrics collector and tracer the
// -metrics/-trace flags request; every solve below picks them up through
// the context fallback.
func installObs(metrics bool, tracePath string) (*obs.Collector, *obs.Tracer) {
	if !metrics && tracePath == "" {
		return nil, nil
	}
	collector := obs.New()
	var tracer *obs.Tracer
	if tracePath != "" {
		tracer = obs.NewTracer()
		collector.AttachTracer(tracer)
	}
	obs.SetGlobal(collector)
	return collector, tracer
}

// emitObs writes the requested metrics JSON (stdout) and trace file.
func emitObs(collector *obs.Collector, tracer *obs.Tracer, metrics bool, tracePath string, stdout io.Writer, lg *slog.Logger) error {
	if metrics {
		fmt.Fprintf(stdout, "%s\n", collector.Snapshot().JSON())
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := tracer.WriteJSON(f); err != nil {
			return err
		}
		lg.Info("wrote trace", "path", tracePath)
	}
	return nil
}

// exportArtifact runs the offline pipeline on one topology (single class,
// gravity traffic, enumerated failures — the §6 methodology) and writes
// the serving artifact flexile-serve loads.
func exportArtifact(topoName string, seed int64, opt flexile.DesignOptions, out string, lg *slog.Logger) error {
	tp, err := flexile.LoadTopology(topoName)
	if err != nil {
		return err
	}
	inst := flexile.NewSingleClassInstance(tp, 3)
	if err := flexile.ApplyGravityTraffic(inst, seed, 0.6); err != nil {
		return err
	}
	flexile.GenerateFailures(inst, seed+1, 1e-5, 50)
	flexile.SetDesignTarget(inst)
	design, err := flexile.Design(inst, opt)
	if err != nil {
		return err
	}
	blob, err := flexile.ExportArtifact(inst, design, opt)
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		return err
	}
	lg.Info("wrote serving artifact",
		"topology", tp.Name,
		"scenarios", len(inst.Scenarios),
		"bytes", len(blob),
		"path", out)
	return nil
}

// emitBenchJSON parses `go test -bench` text output and writes the
// BENCH_*.json performance record.
func emitBenchJSON(in, out string, stdout io.Writer, lg *slog.Logger) error {
	var r io.Reader = os.Stdin
	if in != "-" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	rep, err := benchjson.Parse(r)
	if err != nil {
		return err
	}
	var w io.Writer = stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := benchjson.Write(w, rep, time.Now()); err != nil {
		return err
	}
	if out != "" {
		lg.Info("wrote benchmark records", "count", len(rep.Results), "path", out)
	}
	return nil
}
