package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"flexile/internal/experiments"
)

// TestStdoutIsExactlyTheRenderedResults pins the stream contract: stdout
// carries the rendered experiment results and nothing else — progress and
// timing lines live on stderr — so redirecting stdout yields a stable
// results file.
func TestStdoutIsExactlyTheRenderedResults(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-fig", "table2"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	want := experiments.Table2().Render()
	if stdout.String() != want {
		t.Fatalf("stdout diverged from Table2().Render():\n got: %q\nwant: %q", stdout.String(), want)
	}
	if !strings.Contains(stderr.String(), "figure complete") {
		t.Fatalf("stderr missing progress line:\n%s", stderr.String())
	}
	if strings.Contains(stdout.String(), "figure complete") {
		t.Fatal("progress line leaked onto stdout")
	}
}

func TestLogJSONEmitsParseableRecords(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-fig", "table2", "-logjson"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if stdout.String() != experiments.Table2().Render() {
		t.Fatal("-logjson changed stdout")
	}
	sawComplete := false
	for _, line := range strings.Split(strings.TrimSpace(stderr.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("stderr line is not JSON: %q (%v)", line, err)
		}
		if rec["msg"] == "figure complete" {
			sawComplete = true
			if rec["fig"] != "table2" || rec["scale"] != "small" {
				t.Fatalf("progress record incomplete: %v", rec)
			}
		}
	}
	if !sawComplete {
		t.Fatalf("no figure-complete record in stderr:\n%s", stderr.String())
	}
}

func TestRunErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-fig", "nope"}, &stdout, &stderr); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if err := run([]string{"-scale", "galactic"}, &stdout, &stderr); err == nil {
		t.Fatal("unknown scale accepted")
	}
	if err := run([]string{"-not-a-flag"}, &stdout, &stderr); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
