// Command flexile runs the Flexile TE pipeline end to end on a topology:
// build the instance (§6 methodology), run the offline decomposition,
// apply the online allocation to every failure scenario, post-analyze the
// losses, and optionally compare against the baseline schemes.
//
// Usage:
//
//	flexile -topo IBM                         # single class, defaults
//	flexile -topo Sprint -classes 2           # two traffic classes
//	flexile -topo IBM -compare                # also run every baseline
//	flexile -topo IBM -cutoff 1e-6 -max 200   # scenario enumeration knobs
//	flexile -topofile net.txt                 # load a text-format topology
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"flexile"
	"flexile/internal/obs"
)

func main() {
	topoName := flag.String("topo", "IBM", "built-in topology name (see topogen -list)")
	topoFile := flag.String("topofile", "", "load a text-format topology file instead")
	classes := flag.Int("classes", 1, "number of traffic classes (1 or 2)")
	seed := flag.Int64("seed", 1, "seed for traffic and failure generation")
	mlu := flag.Float64("mlu", 0.6, "target MLU for the gravity traffic matrix")
	cutoff := flag.Float64("cutoff", 1e-5, "scenario probability cutoff")
	maxScen := flag.Int("max", 50, "maximum enumerated scenarios (0 = unlimited)")
	iters := flag.Int("iters", 5, "offline decomposition iterations")
	gamma := flag.Float64("gamma", -1, "γ bound on non-critical scenario loss (<0 disables)")
	workers := flag.Int("workers", 0, "offline solve parallelism (0 = all cores, 1 = sequential; results identical)")
	warm := flag.Bool("warm", false, "warm-start scenario LPs from cached bases (faster; objectives equal within tolerance, trajectory may differ from a cold run)")
	batch := flag.Bool("batch", true, "solve scenario LPs through the compiled batch path (bit-identical to the unbatched oracle)")
	timeout := flag.Duration("timeout", 0, "wall-clock limit for the offline solve, e.g. 30s, 5m (0 = unlimited)")
	compare := flag.Bool("compare", false, "also run the baseline schemes")
	sequential := flag.Bool("sequential", false, "use the §4.4 explicit-priority sequential design")
	artifactPath := flag.String("artifact", "", "write the serving artifact (for flexile-serve) to this file after the offline solve")
	metrics := flag.Bool("metrics", false, "emit the aggregated solver metrics as JSON on stdout at the end")
	tracePath := flag.String("trace", "", "write a chrome://tracing timeline of the solves to this file")
	logJSON := flag.Bool("logjson", false, "emit diagnostics on stderr as JSON log lines instead of text")
	flag.Parse()

	// Result tables keep going to stdout; diagnostics (degraded-mode
	// transitions, artifact/trace writes) are structured log events on
	// stderr so scripted pipelines can separate the two streams.
	var logger *slog.Logger
	if *logJSON {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	} else {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}

	// Wire the process-global collector/tracer; every solve in the pipeline
	// picks them up through the context fallback.
	var collector *obs.Collector
	var tracer *obs.Tracer
	if *metrics || *tracePath != "" {
		collector = obs.New()
		if *tracePath != "" {
			tracer = obs.NewTracer()
			collector.AttachTracer(tracer)
		}
		obs.SetGlobal(collector)
	}

	var tp *flexile.Topology
	var err error
	if *topoFile != "" {
		data, rerr := os.ReadFile(*topoFile)
		if rerr != nil {
			fatal(rerr)
		}
		tp, err = flexile.ParseTopology(*topoFile, string(data))
	} else {
		tp, err = flexile.LoadTopology(*topoName)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("topology %s: %d nodes, %d links\n", tp.Name, tp.G.NumNodes(), tp.G.NumEdges())

	var inst *flexile.Instance
	switch *classes {
	case 1:
		inst = flexile.NewSingleClassInstance(tp, 3)
	case 2:
		inst = flexile.NewTwoClassInstance(tp)
	default:
		fatal(fmt.Errorf("classes must be 1 or 2, got %d", *classes))
	}
	if err := flexile.ApplyGravityTraffic(inst, *seed, *mlu); err != nil {
		fatal(err)
	}
	flexile.GenerateFailures(inst, *seed+1, *cutoff, *maxScen)
	beta := flexile.SetDesignTarget(inst)
	cov := 0.0
	for _, s := range inst.Scenarios {
		cov += s.Prob
	}
	fmt.Printf("scenarios: %d (coverage %.6f), design target β = %.6f\n", len(inst.Scenarios), cov, beta)

	opt := flexile.DesignOptions{MaxIterations: *iters, Gamma: *gamma, Workers: *workers, Timeout: *timeout,
		WarmStart: *warm, NoBatch: !*batch}
	start := time.Now()
	design, err := flexile.Design(inst, opt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("offline: %d iterations, %d subproblem LPs, %v\n",
		design.Iterations, design.SubproblemSolves, design.Elapsed.Round(time.Millisecond))
	if design.Report.Degraded() {
		logger.Warn("offline solve entered degraded mode",
			"retried", len(design.Report.Retried),
			"skipped", len(design.Report.Skipped),
			"loss_precompute_fallbacks", len(design.Report.ScenLossFallback),
			"master_failures", len(design.Report.MasterFailures))
	}
	for it, pls := range design.IterPercLoss {
		fmt.Printf("  iteration %d:", it+1)
		for k, pl := range pls {
			fmt.Printf(" %s=%.2f%%", inst.Classes[k].Name, 100*pl)
		}
		fmt.Println()
	}
	fmt.Printf("critical-set storage: %d bytes for %d flows × %d scenarios\n",
		design.Critical.ByteSize(), design.Critical.Flows(), design.Critical.Scenarios())

	if *artifactPath != "" {
		blob, err := flexile.ExportArtifact(inst, design, opt)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*artifactPath, blob, 0o644); err != nil {
			fatal(err)
		}
		logger.Info("wrote serving artifact", "path", *artifactPath, "bytes", len(blob))
	}

	var routing *flexile.Routing
	if *sequential {
		seq := flexile.NewFlexileSequential()
		seq.Opt = opt
		routing, err = seq.Route(inst)
	} else {
		fx := flexile.NewFlexileWith(opt)
		routing, err = fx.Route(inst)
	}
	if err != nil {
		fatal(err)
	}
	ev := flexile.Evaluate(inst, routing)
	fmt.Printf("Flexile total time (offline + online all scenarios): %v\n", time.Since(start).Round(time.Millisecond))
	for k := range inst.Classes {
		fmt.Printf("  class %-6s β=%.5f  PercLoss = %.2f%%\n",
			inst.Classes[k].Name, inst.Classes[k].Beta, 100*ev.PercLoss[k])
	}

	if *compare {
		fmt.Println("\nbaselines:")
		baselines := []flexile.Scheme{flexile.NewSMORE(), flexile.NewSWANMaxmin(), flexile.NewSWANThroughput()}
		if *classes == 1 {
			baselines = append(baselines, flexile.NewTeavar(), flexile.NewCvarFlowSt(), flexile.NewCvarFlowAd(), flexile.NewFFC(1))
		}
		for _, s := range baselines {
			st := time.Now()
			r, err := s.Route(inst)
			if err != nil {
				fmt.Printf("  %-16s error: %v\n", s.Name(), err)
				continue
			}
			bev := flexile.Evaluate(inst, r)
			fmt.Printf("  %-16s", s.Name())
			for k := range inst.Classes {
				fmt.Printf(" %s=%.2f%%", inst.Classes[k].Name, 100*bev.PercLoss[k])
			}
			fmt.Printf("  (%v)\n", time.Since(st).Round(time.Millisecond))
		}
	}

	if *metrics {
		fmt.Printf("%s\n", collector.Snapshot().JSON())
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		if err := tracer.WriteJSON(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		logger.Info("wrote trace", "path", *tracePath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flexile:", err)
	os.Exit(1)
}
