// Command flexile-serve is the online allocation daemon: it loads a
// serving artifact produced by `flexile -artifact` or `flexile-exp
// -artifact`, then answers failure-state allocation queries over HTTP
// from a per-scenario cache with single-flight recomputation.
//
// Usage:
//
//	flexile -topo IBM -artifact ibm.flxa
//	flexile-serve -artifact ibm.flxa -listen :8080
//	curl 'localhost:8080/v1/alloc?failed=3'
//	curl -d '{"failed":[3,7]}' localhost:8080/v1/alloc
//	curl localhost:8080/metrics        # Prometheus exposition
//	curl localhost:8080/readyz         # readiness (503 during reloads)
//
// With -artifact-dir the daemon instead serves a whole registry of named
// artifacts (every *.flxa in the directory; the basename is the name):
//
//	flexile-serve -artifact-dir ./artifacts -listen :8080
//	curl 'localhost:8080/v1/artifacts/ibm/alloc?failed=3'
//	curl -H 'X-Flexile-Artifact: ibm' 'localhost:8080/v1/alloc?failed=3'
//	curl -d '{"queries":[{"artifact":"ibm","failed":[3]}]}' localhost:8080/v1/alloc/batch
//	curl localhost:8080/v1/artifacts   # per-artifact status
//
// SIGHUP reloads the artifact atomically (a failed reload keeps the old
// one serving, and repeated failures trip a circuit breaker that
// suppresses further attempts for -breaker-cooldown); in registry mode it
// rescans the directory, reloading per name so one corrupt artifact never
// blocks its neighbors. SIGINT/SIGTERM flip /readyz to 503 first, drain
// in-flight requests for up to -drain-timeout, then exit. With -metrics
// the aggregated serving counters are printed as JSON on exit.
//
// Overload resilience (DESIGN.md §13): -default-deadline sheds requests
// predicted to miss their deadline (clients override per request with
// X-Request-Deadline), -tenant-rate/-tenant-burst enforce per-tenant
// token-bucket quotas keyed on X-Tenant, and -breaker-threshold trips
// circuit breakers on consecutive recompute or reload failures — while
// open, cache misses are answered from the last known good allocation,
// marked with X-Flexile-Degraded: stale.
//
// Logs are structured (log/slog): human-readable text on stderr by
// default, one JSON object per line with -logjson. Access records can be
// sampled with -log-sample. With -debug-listen a second, admin-only
// listener additionally serves /metrics, /debug/requests (the live
// request-trace ring, DESIGN.md §16; sample rate set by -trace-sample),
// and net/http/pprof — bind it to loopback or an operations network,
// never the query-facing address.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"flexile/internal/obs"
	"flexile/internal/serve"
)

func main() {
	artifact := flag.String("artifact", "", "serving artifact file (this or -artifact-dir is required; see flexile -artifact)")
	artifactDir := flag.String("artifact-dir", "", "serve every *.flxa in this directory as a named registry")
	defaultArtifact := flag.String("default-artifact", "", "registry artifact answering requests with no artifact name")
	maxBatch := flag.Int("max-batch", serve.DefaultMaxBatch, "max queries per POST /v1/alloc/batch request")
	listen := flag.String("listen", "127.0.0.1:8080", "listen address")
	debugListen := flag.String("debug-listen", "", "optional admin listener serving /metrics and /debug/pprof (keep it private)")
	cacheSize := flag.Int("cache-size", 1024, "allocation cache entries (0 disables, negative = unbounded)")
	workers := flag.Int("workers", 0, "concurrent recomputation bound (0 = all cores)")
	metrics := flag.Bool("metrics", false, "emit the aggregated serving metrics as JSON on stdout at exit")
	tracePath := flag.String("trace", "", "write a chrome://tracing timeline to this file at exit")
	logSample := flag.Int("log-sample", 1, "log one access record per N requests (1 = every request)")
	traceSample := flag.Int("trace-sample", serve.DefaultTraceEvery, "trace one request per N into /debug/requests (1 = every request; sampled traceparents always trace)")
	logJSON := flag.Bool("logjson", false, "emit logs as JSON instead of text")
	defaultDeadline := flag.Duration("default-deadline", 0, "deadline applied to requests without X-Request-Deadline (0 = none)")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant sustained requests/sec, keyed on X-Tenant (0 disables quotas)")
	tenantBurst := flag.Float64("tenant-burst", 10, "per-tenant token-bucket burst depth")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive failures that trip the recompute/reload circuit breakers (0 disables)")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "how long a tripped breaker stays open before probing")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long to wait for in-flight requests on SIGINT/SIGTERM")
	flag.Parse()
	if (*artifact == "") == (*artifactDir == "") {
		fatal(errors.New("exactly one of -artifact or -artifact-dir is required"))
	}

	logger := newLogger(*logJSON)

	// The collector always runs: /metrics needs live counters whether or
	// not the exit-time JSON dump was requested.
	collector := obs.New()
	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer()
		collector.AttachTracer(tracer)
	}
	obs.SetGlobal(collector)

	// The trace ring always runs too: /debug/requests should answer on a
	// long-lived daemon even when nobody thought to enable tracing before
	// the incident. -trace-sample only thins how many requests land in it.
	ring := obs.NewTraceRing(0, 0, 0)

	cfg := serve.Config{
		CacheSize:        *cacheSize,
		Workers:          *workers,
		Obs:              collector,
		Log:              logger,
		LogEvery:         *logSample,
		Ring:             ring,
		TraceEvery:       *traceSample,
		DefaultDeadline:  *defaultDeadline,
		TenantRate:       *tenantRate,
		TenantBurst:      *tenantBurst,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		MaxBatch:         *maxBatch,
		DefaultArtifact:  *defaultArtifact,
	}
	var srv service
	source := *artifact
	if *artifactDir != "" {
		source = *artifactDir
		reg, err := serve.NewRegistry(*artifactDir, cfg)
		if err != nil {
			fatal(err)
		}
		logger.Info("registry loaded", "dir", *artifactDir, "artifacts", len(reg.Names()))
		srv = reg
	} else {
		single, err := serve.New(*artifact, cfg)
		if err != nil {
			fatal(err)
		}
		srv = single
	}

	stopHUP := srv.WatchHUP(func(err error) {
		logger.Error("reload failed, keeping previous artifact", "error", err.Error())
	})
	defer stopHUP()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	hs := &http.Server{Addr: *listen, Handler: srv}
	done := make(chan error, 1)
	go func() { done <- hs.ListenAndServe() }()
	logger.Info("serving",
		"artifact", source,
		"listen", *listen,
		"cache_size", *cacheSize,
		"workers", *workers)

	var admin *http.Server
	if *debugListen != "" {
		adminMux := http.NewServeMux()
		adminMux.Handle("GET /metrics", srv.MetricsHandler())
		adminMux.Handle("GET /debug/requests", srv.DebugRequestsHandler())
		adminMux.HandleFunc("/debug/pprof/", pprof.Index)
		adminMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		adminMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		adminMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		adminMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		admin = &http.Server{Addr: *debugListen, Handler: adminMux}
		go func() {
			if aerr := admin.ListenAndServe(); aerr != nil && !errors.Is(aerr, http.ErrServerClosed) {
				logger.Error("admin listener failed", "error", aerr.Error())
			}
		}()
		logger.Info("admin listener up", "listen", *debugListen, "endpoints", "/metrics /debug/requests /debug/pprof")
	}

	select {
	case <-ctx.Done():
		// Drain sequence: flip /readyz to 503 first so load balancers stop
		// routing here, then wait out in-flight requests, then release the
		// server's own resources (queued detached recomputes unblock).
		srv.BeginDrain()
		shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			logger.Error("shutdown", "error", err.Error())
		}
		<-done // ListenAndServe has returned http.ErrServerClosed
		srv.Close()
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
	if admin != nil {
		shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		admin.Shutdown(shutCtx)
		cancel()
	}

	if *metrics {
		fmt.Printf("%s\n", collector.Snapshot().JSON())
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		if err := tracer.WriteJSON(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		logger.Info("wrote trace", "path", *tracePath)
	}
}

// service is the common daemon surface of a single-artifact serve.Server
// and a multi-artifact serve.Registry.
type service interface {
	http.Handler
	WatchHUP(func(error)) func()
	BeginDrain()
	Close()
	MetricsHandler() http.Handler
	DebugRequestsHandler() http.Handler
}

// newLogger builds the process logger: slog text on stderr, or JSON lines
// with jsonOut.
func newLogger(jsonOut bool) *slog.Logger {
	if jsonOut {
		return slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, nil))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flexile-serve:", err)
	os.Exit(1)
}
