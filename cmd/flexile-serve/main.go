// Command flexile-serve is the online allocation daemon: it loads a
// serving artifact produced by `flexile -artifact` or `flexile-exp
// -artifact`, then answers failure-state allocation queries over HTTP
// from a per-scenario cache with single-flight recomputation.
//
// Usage:
//
//	flexile -topo IBM -artifact ibm.flxa
//	flexile-serve -artifact ibm.flxa -listen :8080
//	curl 'localhost:8080/v1/alloc?failed=3'
//	curl -d '{"failed":[3,7]}' localhost:8080/v1/alloc
//
// SIGHUP reloads the artifact atomically (a failed reload keeps the old
// one serving); SIGINT/SIGTERM drain in-flight requests and exit. With
// -metrics the aggregated serving counters are printed as JSON on exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"flexile/internal/obs"
	"flexile/internal/serve"
)

func main() {
	artifact := flag.String("artifact", "", "serving artifact file (required; see flexile -artifact)")
	listen := flag.String("listen", "127.0.0.1:8080", "listen address")
	cacheSize := flag.Int("cache-size", 1024, "allocation cache entries (0 disables, negative = unbounded)")
	workers := flag.Int("workers", 0, "concurrent recomputation bound (0 = all cores)")
	metrics := flag.Bool("metrics", false, "emit the aggregated serving metrics as JSON on stdout at exit")
	tracePath := flag.String("trace", "", "write a chrome://tracing timeline to this file at exit")
	flag.Parse()
	if *artifact == "" {
		fatal(errors.New("-artifact is required"))
	}

	var collector *obs.Collector
	var tracer *obs.Tracer
	if *metrics || *tracePath != "" {
		collector = obs.New()
		if *tracePath != "" {
			tracer = obs.NewTracer()
			collector.AttachTracer(tracer)
		}
		obs.SetGlobal(collector)
	}

	srv, err := serve.New(*artifact, serve.Config{
		CacheSize: *cacheSize,
		Workers:   *workers,
		Obs:       collector,
	})
	if err != nil {
		fatal(err)
	}

	stopHUP := srv.WatchHUP(func(err error) {
		fmt.Fprintln(os.Stderr, "flexile-serve: reload failed, keeping previous artifact:", err)
	})
	defer stopHUP()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	hs := &http.Server{Addr: *listen, Handler: srv}
	done := make(chan error, 1)
	go func() { done <- hs.ListenAndServe() }()
	fmt.Printf("flexile-serve: serving %s on %s (cache %d, reload with SIGHUP)\n", *artifact, *listen, *cacheSize)

	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			fmt.Fprintln(os.Stderr, "flexile-serve: shutdown:", err)
		}
		<-done // ListenAndServe has returned http.ErrServerClosed
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}

	if *metrics {
		fmt.Printf("%s\n", collector.Snapshot().JSON())
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		if err := tracer.WriteJSON(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote trace to %s\n", *tracePath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flexile-serve:", err)
	os.Exit(1)
}
