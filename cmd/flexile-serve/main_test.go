package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"flexile/internal/obs/expo"
	flexscheme "flexile/internal/scheme/flexile"
	"flexile/internal/serve"
	"flexile/internal/te"

	"flexile/internal/failure"
	"flexile/internal/topo"
	"flexile/internal/tunnels"
)

// buildArtifact solves the triangle fixture and writes a serving artifact.
func buildArtifact(t *testing.T) string {
	t.Helper()
	tp := topo.Triangle()
	inst := te.NewInstance(tp, []te.Class{
		{Name: "single", Beta: 0.99, Weight: 1, Tunnels: tunnels.SingleClass(3)},
	})
	inst.Demand[0][0] = 1
	inst.Demand[0][1] = 1
	inst.LinkProbs = []float64{0.01, 0.01, 0.01}
	inst.Scenarios = failure.Enumerate(inst.LinkProbs, 0)
	opt := flexscheme.Options{Workers: 2}
	off, err := flexscheme.Offline(inst, opt)
	if err != nil {
		t.Fatalf("offline solve: %v", err)
	}
	art, err := serve.Build(inst, off, opt)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "triangle.flxa")
	if err := os.WriteFile(path, art.Encode(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// freePort reserves an ephemeral port and releases it for the daemon.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestScrapeEndToEnd is the `make scrape` CI check run against the real
// binary: build flexile-serve, start it on a loopback port, wait for
// /readyz, hammer /v1/alloc a known number of times, then scrape /metrics
// on both the serving and the -debug-listen admin ports and assert the
// page is grammar-conformant with flexile_serve_requests_total equal to
// the hammer count, the request-latency histogram fully rendered, and Go
// runtime telemetry present.
func TestScrapeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	bin := filepath.Join(t.TempDir(), "flexile-serve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	artifact := buildArtifact(t)
	addr, adminAddr := freePort(t), freePort(t)
	cmd := exec.Command(bin,
		"-artifact", artifact,
		"-listen", addr,
		"-debug-listen", adminAddr,
		"-logjson",
		"-log-sample", "2",
		"-trace-sample", "1",
		// Overload-resilience flags, tuned loose enough that the hammer
		// below is never actually shed: this exercises parsing and the
		// admission pipeline wiring, not the shedding itself.
		"-default-deadline", "5s",
		"-tenant-rate", "1000",
		"-tenant-burst", "500",
		"-breaker-threshold", "3",
		"-breaker-cooldown", "2s",
		"-drain-timeout", "5s",
	)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Signal(syscall.SIGTERM)
		cmd.Wait()
	}()

	base := "http://" + addr
	waitReady(t, base+"/readyz")

	const hammer = 24
	// Every other request carries a sampled W3C traceparent; the server must
	// join it — echoing the trace id back — and record the trace in the
	// -debug-listen ring (checked below). The i=1 request is the first
	// failed=0 query, i.e. the one guaranteed cache miss with the full
	// recompute timeline.
	wantTrace := fmt.Sprintf("%032x", 2)
	wantParent := fmt.Sprintf("%016x", 2)
	for i := 0; i < hammer; i++ {
		url := base + "/v1/alloc?failed=0"
		if i%3 == 0 {
			url = base + "/v1/alloc?failed="
		}
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			t.Fatal(err)
		}
		traced := i%2 == 1
		if traced {
			req.Header.Set("traceparent", fmt.Sprintf("00-%032x-%016x-01", i+1, i+1))
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("alloc %d: status %d", i, resp.StatusCode)
		}
		if resp.Header.Get("X-Request-Id") == "" {
			t.Fatalf("alloc %d: no X-Request-Id echoed", i)
		}
		if traced {
			if tp := resp.Header.Get("traceparent"); !strings.HasPrefix(tp, fmt.Sprintf("00-%032x-", i+1)) {
				t.Fatalf("alloc %d: response traceparent %q dropped the sent trace id", i, tp)
			}
		}
	}

	// /debug/requests on the admin listener: the ring must hold the hammer
	// traffic, and the i=1 miss must surface with its joined trace id, the
	// parent span we sent, and a stage timeline that tiles its duration.
	debugURL := "http://" + adminAddr + "/debug/requests"
	var ringPage struct {
		Total  uint64 `json:"total"`
		Recent []struct {
			TraceID    string `json:"trace_id"`
			ParentSpan string `json:"parent_span"`
			Status     int    `json:"status"`
			DurNS      int64  `json:"dur_ns"`
			Spans      []struct {
				Name   string `json:"name"`
				DurNS  int64  `json:"dur_ns"`
				Nested bool   `json:"nested"`
			} `json:"spans"`
		} `json:"recent"`
	}
	func() {
		resp, err := http.Get(debugURL + "?format=json")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("debug requests json: status %d", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&ringPage); err != nil {
			t.Fatalf("debug requests json: %v", err)
		}
	}()
	if ringPage.Total < hammer {
		t.Errorf("trace ring total %d, want >= %d", ringPage.Total, hammer)
	}
	found := false
	for _, tr := range ringPage.Recent {
		if tr.TraceID != wantTrace {
			continue
		}
		found = true
		if tr.ParentSpan != wantParent {
			t.Errorf("joined trace parent_span %q, want %q", tr.ParentSpan, wantParent)
		}
		var tiling int64
		names := map[string]bool{}
		for _, sp := range tr.Spans {
			names[sp.Name] = true
			if !sp.Nested {
				tiling += sp.DurNS
			}
		}
		for _, want := range []string{"admit", "parse", "cache", "flight", "write", "recompute"} {
			if !names[want] {
				t.Errorf("miss trace lacks stage span %q (got %v)", want, names)
			}
		}
		if tiling > tr.DurNS || tiling < tr.DurNS/2 {
			t.Errorf("tiling spans sum %dns, want ~= request dur %dns", tiling, tr.DurNS)
		}
	}
	if !found {
		t.Errorf("trace %s not in the recent ring (%d entries)", wantTrace, len(ringPage.Recent))
	}
	for _, check := range []struct{ query, contains string }{
		{"", "flexile request traces"},
		{"", wantTrace},
		{"?format=chrome", `"traceEvents"`},
	} {
		resp, err := http.Get(debugURL + check.query)
		if err != nil {
			t.Fatal(err)
		}
		page, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("debug requests %q: status %d", check.query, resp.StatusCode)
		}
		if !strings.Contains(string(page), check.contains) {
			t.Errorf("debug requests %q missing %q", check.query, check.contains)
		}
	}

	for _, scrapeURL := range []string{base + "/metrics", "http://" + adminAddr + "/metrics"} {
		resp, err := http.Get(scrapeURL)
		if err != nil {
			t.Fatal(err)
		}
		page, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scrape %s: status %d", scrapeURL, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != expo.ContentType {
			t.Fatalf("scrape %s: Content-Type %q", scrapeURL, ct)
		}
		if err := expo.Lint(page); err != nil {
			t.Fatalf("scrape %s not grammar-conformant: %v", scrapeURL, err)
		}
		text := string(page)
		want := fmt.Sprintf("flexile_serve_requests_total %d", hammer)
		if !strings.Contains(text, want) {
			t.Errorf("scrape %s missing %q", scrapeURL, want)
		}
		if n := strings.Count(text, "flexile_serve_request_duration_seconds_bucket{le="); n < 9 {
			t.Errorf("scrape %s: only %d latency bucket lines, want >= 9 (8 finite + +Inf)", scrapeURL, n)
		}
		if !strings.Contains(text, `flexile_serve_request_duration_seconds_bucket{le="+Inf"}`) {
			t.Errorf("scrape %s missing +Inf bucket", scrapeURL)
		}
		// The per-stage latency families fed by the request-trace laps.
		for _, stage := range []string{"admit", "parse", "cache", "flight", "write", "recompute"} {
			want := fmt.Sprintf(`flexile_serve_stage_duration_seconds_bucket{stage=%q,le="+Inf"}`, stage)
			if !strings.Contains(text, want) {
				t.Errorf("scrape %s missing stage histogram series %q", scrapeURL, stage)
			}
		}
		// The overload-resilience families: both breakers closed (0), the
		// quota tracking the single anonymous bucket, zero sheds.
		for _, want := range []string{
			`flexile_serve_breaker_state{breaker="recompute"} 0`,
			`flexile_serve_breaker_state{breaker="reload"} 0`,
			"flexile_serve_quota_tenants 1",
			"flexile_serve_deadline_shed_total 0",
			"flexile_serve_quota_rejects_total 0",
		} {
			if !strings.Contains(text, want) {
				t.Errorf("scrape %s missing %q", scrapeURL, want)
			}
		}
		goFam := 0
		for _, line := range strings.Split(text, "\n") {
			if strings.HasPrefix(line, "# TYPE go_") {
				goFam++
			}
		}
		if goFam < 5 {
			t.Errorf("scrape %s: only %d go_ runtime families, want >= 5", scrapeURL, goFam)
		}
	}

	// pprof is mounted on the admin listener only.
	resp, err := http.Get("http://" + adminAddr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin pprof: status %d", resp.StatusCode)
	}
	resp, err = http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof reachable on the query-facing listener")
	}
	resp, err = http.Get(base + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("/debug/requests reachable on the query-facing listener")
	}

	// Shut down and check the structured log stream: JSON lines, sampled
	// access records (half of the hammer), and the lifecycle events.
	cmd.Process.Signal(syscall.SIGTERM)
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exit: %v\nstderr:\n%s", err, stderr.String())
	}
	var accessRecords int
	sawLoaded, sawServing := false, false
	for _, line := range strings.Split(strings.TrimSpace(stderr.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("stderr line is not JSON: %q (%v)", line, err)
		}
		switch rec["msg"] {
		case "request":
			if p, _ := rec["path"].(string); p == "/v1/alloc" {
				accessRecords++
				// The daemon runs -trace-sample 1, so every logged request
				// should carry its trace id.
				if tid, _ := rec["trace_id"].(string); tid == "" {
					t.Errorf("access record without trace_id: %s", line)
				}
			}
		case "artifact loaded":
			sawLoaded = true
		case "serving":
			sawServing = true
		}
	}
	if !sawLoaded || !sawServing {
		t.Errorf("missing lifecycle events (loaded=%v serving=%v):\n%s", sawLoaded, sawServing, stderr.String())
	}
	if accessRecords != hammer/2 {
		t.Errorf("-log-sample 2 produced %d access records for %d requests, want %d",
			accessRecords, hammer, hammer/2)
	}
}

// waitReady polls a readiness URL until it answers 200 or times out.
func waitReady(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("server never became ready at %s", url)
}
