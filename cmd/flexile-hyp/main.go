// Command flexile-hyp runs the repository's named hypotheses — the
// seeded, re-runnable experiments behind every scale claim (DESIGN.md
// §15) — and diffs their canonical verdicts against the files checked in
// under hypotheses/.
//
// Usage:
//
//	flexile-hyp -list                 # what claims exist
//	flexile-hyp                       # run all, verify against hypotheses/
//	flexile-hyp -run 'soak|emu'       # subset by name regex
//	flexile-hyp -update               # rewrite verdict + measurement files
//	flexile-hyp -tier soak -soak-duration 30s
//
// The default mode is the CI gate (`make hypotheses`): every selected
// hypothesis must pass its own checks AND canonicalize to exactly the
// checked-in verdict bytes; any drift — a changed threshold, a changed
// deterministic measurement, a new check — fails the run until the file
// is regenerated with -update and the diff is reviewed like any other
// code change.
//
// Canonical verdicts carry only seed-deterministic content; wall-clock
// measurements live in the gitignored measured.json next to each verdict.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"regexp"
	"syscall"
	"time"

	"flexile/internal/hyp"
	"flexile/internal/hyp/exps"
)

func main() {
	list := flag.Bool("list", false, "list hypotheses and exit")
	run := flag.String("run", "", "only hypotheses whose name matches this regexp")
	update := flag.Bool("update", false, "write canonical verdicts + measurement records instead of verifying")
	tier := flag.String("tier", "quick", "workload tier: quick | soak")
	seed := flag.Uint64("seed", 1, "experiment seed (drives workloads end to end)")
	workers := flag.Int("workers", 4, "client-side parallelism for serving experiments")
	soakDur := flag.Duration("soak-duration", 0, "bounds soak-tier workloads (0 = per-hypothesis default)")
	dir := flag.String("dir", "hypotheses", "directory of checked-in verdict files")
	flag.Parse()

	if err := realMain(*list, *run, *update, *tier, *seed, *workers, *soakDur, *dir); err != nil {
		fmt.Fprintf(os.Stderr, "flexile-hyp: %v\n", err)
		os.Exit(1)
	}
}

func realMain(list bool, runPat string, update bool, tierName string, seed uint64, workers int, soakDur time.Duration, dir string) error {
	reg, err := exps.All()
	if err != nil {
		return err
	}
	var t hyp.Tier
	switch tierName {
	case "quick":
		t = hyp.TierQuick
	case "soak":
		t = hyp.TierSoak
	default:
		return fmt.Errorf("unknown -tier %q (want quick or soak)", tierName)
	}
	pat, err := regexp.Compile(runPat)
	if err != nil {
		return fmt.Errorf("-run: %w", err)
	}
	selected := make([]hyp.Hypothesis, 0)
	for _, h := range reg.All() {
		if pat.MatchString(h.Name) {
			selected = append(selected, h)
		}
	}
	if list {
		for _, h := range selected {
			soak := ""
			if h.Soakable {
				soak = "  [soakable]"
			}
			fmt.Printf("%-22s %s%s\n", h.Name, h.Claim, soak)
		}
		return nil
	}
	if len(selected) == 0 {
		return fmt.Errorf("no hypothesis matches -run %q", runPat)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	p := hyp.Params{
		Seed:     seed,
		Tier:     t,
		Workers:  workers,
		Duration: soakDur,
		Log:      os.Stderr,
	}
	failed := 0
	for _, h := range selected {
		res := hyp.Run(ctx, h, p)
		if res.Err != nil {
			fmt.Fprintf(os.Stderr, "FAIL  %-22s %v (%v)\n", h.Name, res.Err, res.Elapsed.Round(time.Millisecond))
			failed++
			continue
		}
		v := res.Verdict
		status := "PASS"
		if !v.Pass {
			status = "FAIL"
			failed++
			for _, c := range v.Checks {
				if !c.Pass {
					fmt.Fprintf(os.Stderr, "      %s: check %s: got %v, want %s %v\n", h.Name, c.Name, c.Got, c.Op, c.Want)
				}
			}
		}
		verified := ""
		if update {
			if t != hyp.TierQuick {
				return fmt.Errorf("-update only makes sense at -tier quick: checked-in verdicts are the quick tier (soak gots depend on -soak-duration)")
			}
			if err := v.WriteDir(dir); err != nil {
				return err
			}
			verified = "  (updated)"
		} else if v.Pass && t != hyp.TierQuick {
			// Soak-tier verdicts aren't checked in; passing its stricter
			// thresholds is the whole gate.
			verified = "  (soak: verdict diff skipped)"
		} else if v.Pass {
			switch err := v.Verify(dir); {
			case errors.Is(err, hyp.ErrDrift):
				status = "DRIFT"
				failed++
				fmt.Fprintf(os.Stderr, "      %s: %v\n      rerun with -update and review the diff\n", h.Name, err)
			case err != nil:
				return err
			default:
				verified = "  (verdict matches)"
			}
			// The measurement record is informational either way.
			if err := v.WriteRecord(dir); err != nil {
				return err
			}
		}
		fmt.Printf("%s  %-22s %v%s\n", status, h.Name, res.Elapsed.Round(time.Millisecond), verified)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d hypotheses failed", failed, len(selected))
	}
	return nil
}
