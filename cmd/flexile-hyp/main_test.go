package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestRealMainFlagValidation pins the CLI's rejection paths: bad tier,
// bad regexp, and a -run pattern that selects nothing.
func TestRealMainFlagValidation(t *testing.T) {
	if err := realMain(false, "", false, "marathon", 1, 4, 0, t.TempDir()); err == nil ||
		!strings.Contains(err.Error(), "unknown -tier") {
		t.Fatalf("bad tier: err = %v, want unknown -tier", err)
	}
	if err := realMain(false, "([", false, "quick", 1, 4, 0, t.TempDir()); err == nil ||
		!strings.Contains(err.Error(), "-run") {
		t.Fatalf("bad regexp: err = %v, want -run parse error", err)
	}
	if err := realMain(false, "^no-such-hypothesis$", false, "quick", 1, 4, 0, t.TempDir()); err == nil ||
		!strings.Contains(err.Error(), "no hypothesis matches") {
		t.Fatalf("empty selection: err = %v, want no-match error", err)
	}
}

// TestRealMainList lists without running anything — it must succeed even
// with no verdict directory at all.
func TestRealMainList(t *testing.T) {
	if err := realMain(true, "", false, "quick", 1, 4, 0, filepath.Join(t.TempDir(), "absent")); err != nil {
		t.Fatalf("list: %v", err)
	}
}

// TestRealMainUpdateVerifyDrift walks the CLI through its whole
// lifecycle on one fast hypothesis: -update writes the canonical verdict
// and measurement record, a verify run matches them, and a tampered
// verdict file turns the same verify run into a drift failure. Also pins
// that -update is refused at the soak tier (checked-in verdicts are the
// quick tier by definition).
func TestRealMainUpdateVerifyDrift(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment three times")
	}
	dir := t.TempDir()
	const sel = "^h-emu-fidelity$"

	if err := realMain(false, sel, true, "quick", 1, 4, 0, dir); err != nil {
		t.Fatalf("-update: %v", err)
	}
	verdict := filepath.Join(dir, "h-emu-fidelity", "verdict.json")
	if _, err := os.Stat(verdict); err != nil {
		t.Fatalf("-update left no verdict file: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "h-emu-fidelity", "measured.json")); err != nil {
		t.Fatalf("-update left no measurement record: %v", err)
	}

	if err := realMain(false, sel, false, "quick", 1, 4, 0, dir); err != nil {
		t.Fatalf("verify after update: %v", err)
	}

	if err := os.WriteFile(verdict, []byte("{\"tampered\":true}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := realMain(false, sel, false, "quick", 1, 4, 0, dir)
	if err == nil || !strings.Contains(err.Error(), "1 of 1 hypotheses failed") {
		t.Fatalf("tampered verdict: err = %v, want drift failure", err)
	}

	if err := realMain(false, sel, true, "soak", 1, 4, time.Second, dir); err == nil ||
		!strings.Contains(err.Error(), "-update only makes sense at -tier quick") {
		t.Fatalf("-update at soak tier: err = %v, want refusal", err)
	}
}
