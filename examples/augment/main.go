// Augment demonstrates the §4.4 capacity-augmentation generalization: find
// the minimum-cost capacity additions so that every flow meets its
// bandwidth objective at its percentile target.
//
// It uses the paper's own motivating observation: on the Fig. 1 triangle,
// a scenario-centric scheme needs every link doubled (2× capacity) to meet
// the 99% objectives, while Flexile needs no extra capacity at all —
// because each flow can be prioritized in its own critical scenarios.
package main

import (
	"fmt"
	"log"

	"flexile"
)

func main() {
	tp := flexile.TriangleTopology()
	inst := flexile.NewSingleClassInstance(tp, 3)
	inst.Demand[0][0] = 1
	inst.Demand[0][1] = 1
	inst.Classes[0].Beta = 0.99
	inst.LinkProbs = []float64{0.01, 0.01, 0.01}
	enumerateAll(inst)

	fmt.Println("Capacity augmentation on the Fig. 1 triangle")
	fmt.Println("(flows A→B and A→C must carry 1 unit 99% of the time):")
	fmt.Println()

	// Flexile's augmentation: zero-loss target at the 99th percentile.
	res, err := flexile.AugmentCapacity(inst, flexile.AugmentOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Flexile needs %.3f units of extra capacity (cost %.3f)\n", total(res.Delta), res.TotalCost)
	for e, d := range res.Delta {
		if d > 1e-9 {
			ed := tp.G.Edge(e)
			fmt.Printf("  +%.3f on %s-%s\n", d, tp.G.NodeName(ed.A), tp.G.NodeName(ed.B))
		}
	}

	// Contrast: how much capacity would a scenario-centric scheme need?
	// ScenBest must serve both flows simultaneously in every single-failure
	// state, which requires doubling the surviving links.
	fmt.Println()
	fmt.Println("For comparison, sweep uniform capacity multipliers under")
	fmt.Println("ScenBest (per-scenario optimal) until its 99%ile loss is 0:")
	for _, mult := range []float64{1.0, 1.5, 2.0} {
		trial := inst.Clone()
		scaled := flexile.TriangleTopology()
		for e := 0; e < scaled.G.NumEdges(); e++ {
			scaled.G.SetCapacity(e, mult*tp.G.Edge(e).Capacity)
		}
		trial.Topo = scaled
		r, err := flexile.NewScenBest().Route(trial)
		if err != nil {
			log.Fatal(err)
		}
		ev := flexile.Evaluate(trial, r)
		fmt.Printf("  capacity ×%.1f → ScenBest 99%%ile loss %5.1f%%\n", mult, 100*ev.PercLoss[0])
	}
	fmt.Println()
	fmt.Println("ScenBest needs 2× capacity on the A links; Flexile none —")
	fmt.Println("the §3 claim that Flexile provisions less capacity for the")
	fmt.Println("same objectives.")
}

func enumerateAll(inst *flexile.Instance) {
	var scens []flexile.Scenario
	probs := inst.LinkProbs
	n := len(probs)
	for mask := 0; mask < 1<<n; mask++ {
		p := 1.0
		var failed []int
		for e := 0; e < n; e++ {
			if mask&(1<<e) != 0 {
				p *= probs[e]
				failed = append(failed, e)
			} else {
				p *= 1 - probs[e]
			}
		}
		scens = append(scens, flexile.Scenario{Failed: failed, Prob: p})
	}
	inst.Scenarios = scens
}

func total(v []float64) float64 {
	t := 0.0
	for _, x := range v {
		t += x
	}
	return t
}
