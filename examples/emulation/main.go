// Emulation replays TE routings through the packet-level emulation engine
// (the repository's stand-in for the paper's Mininet testbed, §6.1):
// integer select-group weights, per-packet weighted tunnel selection,
// FIFO drop-tail queues. It reports emulated vs model-predicted PercLoss
// and their agreement — the comparison behind Fig. 9.
package main

import (
	"fmt"
	"log"
	"math"

	"flexile"
)

func main() {
	tp, err := flexile.LoadTopology("Sprint")
	if err != nil {
		log.Fatal(err)
	}
	inst := flexile.NewSingleClassInstance(tp, 3)
	if err := flexile.ApplyGravityTraffic(inst, 3, 0.6); err != nil {
		log.Fatal(err)
	}
	flexile.GenerateFailures(inst, 4, 1e-5, 20)
	beta := flexile.SetDesignTarget(inst)
	fmt.Printf("topology %s, %d scenarios, β = %.5f\n\n", tp.Name, len(inst.Scenarios), beta)

	fmt.Printf("%-10s %14s %14s %14s %8s\n", "scheme", "model loss", "packet emu", "fluid emu", "PCC")
	for _, s := range []flexile.Scheme{
		flexile.NewFlexile(),
		flexile.NewSMORE(),
		flexile.NewTeavar(),
	} {
		routing, err := s.Route(inst)
		if err != nil {
			log.Fatalf("%s: %v", s.Name(), err)
		}
		model := flexile.Evaluate(inst, routing)
		pktLosses, err := flexile.EmulatePacket(inst, routing, flexile.EmulationOptions{Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		pkt := flexile.EvaluateLosses(inst, pktLosses)
		fldLosses, err := flexile.EmulateFluid(inst, routing, flexile.EmulationOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fld := flexile.EvaluateLosses(inst, fldLosses)
		fmt.Printf("%-10s %13.2f%% %13.2f%% %13.2f%% %8.4f\n",
			s.Name(), 100*model.PercLoss[0], 100*pkt.PercLoss[0], 100*fld.PercLoss[0],
			pcc(model.Losses, pktLosses))
	}
	fmt.Println()
	fmt.Println("The paper's Fig. 9c finding reproduces: emulated losses track")
	fmt.Println("the optimization model within a couple of percent despite the")
	fmt.Println("integer weight discretization and packetization.")
}

// pcc flattens two loss matrices and computes their Pearson correlation.
func pcc(a, b [][]float64) float64 {
	var xs, ys []float64
	for f := range a {
		xs = append(xs, a[f]...)
		ys = append(ys, b[f]...)
	}
	n := float64(len(xs))
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var cov, vx, vy float64
	for i := range xs {
		cov += (xs[i] - mx) * (ys[i] - my)
		vx += (xs[i] - mx) * (xs[i] - mx)
		vy += (ys[i] - my) * (ys[i] - my)
	}
	if vx == 0 || vy == 0 {
		return 1
	}
	return cov / math.Sqrt(vx*vy)
}
