// Twoclass demonstrates Flexile with two traffic classes on a realistic
// WAN (the paper's §6 two-class methodology): a latency-sensitive high
// priority class designed for ~99.9% availability and a scavenger class
// designed for 99%, with the low class's demand scaled ×2. It compares
// Flexile against both SWAN variants, the comparison behind Fig. 10.
package main

import (
	"fmt"
	"log"
	"time"

	"flexile"
)

func main() {
	tp, err := flexile.LoadTopology("Sprint")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology %s: %d nodes, %d links\n", tp.Name, tp.G.NumNodes(), tp.G.NumEdges())

	inst := flexile.NewTwoClassInstance(tp)
	if err := flexile.ApplyGravityTraffic(inst, 7, 0.6); err != nil {
		log.Fatal(err)
	}
	flexile.GenerateFailures(inst, 8, 1e-5, 24)
	beta := flexile.SetDesignTarget(inst)
	fmt.Printf("design targets: high %.5f, low %.3f; %d failure scenarios\n\n",
		beta, inst.Classes[1].Beta, len(inst.Scenarios))

	for _, s := range []flexile.Scheme{
		flexile.NewFlexile(),
		flexile.NewSWANMaxmin(),
		flexile.NewSWANThroughput(),
	} {
		start := time.Now()
		routing, err := s.Route(inst)
		if err != nil {
			log.Fatalf("%s: %v", s.Name(), err)
		}
		ev := flexile.Evaluate(inst, routing)
		fmt.Printf("%-16s high PercLoss %6.2f%%   low PercLoss %6.2f%%   (%v)\n",
			s.Name(), 100*ev.PercLoss[0], 100*ev.PercLoss[1], time.Since(start).Round(time.Millisecond))
	}

	fmt.Println()
	fmt.Println("Every scheme protects the high-priority class; the difference")
	fmt.Println("is what reaches the 99th percentile for scavenger traffic:")
	fmt.Println("SWAN optimizes each failure state unilaterally, so the same")
	fmt.Println("low-priority flows lose out in many states. Flexile spreads")
	fmt.Println("the sacrifice across states so each flow's own percentile")
	fmt.Println("stays low.")
}
