// Srlg demonstrates two §4.1/§4.4 generalizations together:
//
//   - shared-risk link groups: links sharing an optical component fail as
//     one unit, so scenarios are enumerated over SRLGs rather than links;
//   - per-scenario traffic matrices: a failure state can carry a different
//     demand matrix (here, failure states throttle demand to 70%, modeling
//     operator-driven load shedding during incidents).
//
// Flexile's decomposition handles both without modification — scenarios
// are opaque disjoint states with probabilities, and every subproblem gets
// its scenario's matrix.
package main

import (
	"fmt"
	"log"

	"flexile"
	"flexile/internal/failure"
)

func main() {
	tp, err := flexile.LoadTopology("B4")
	if err != nil {
		log.Fatal(err)
	}
	inst := flexile.NewSingleClassInstance(tp, 3)
	if err := flexile.ApplyGravityTraffic(inst, 5, 0.6); err != nil {
		log.Fatal(err)
	}

	// Group links into SRLGs of two consecutive edges (sharing a conduit);
	// each group fails as a unit with probability 0.004.
	var groups []failure.SRLG
	for e := 0; e < tp.G.NumEdges(); e += 2 {
		edges := []int{e}
		if e+1 < tp.G.NumEdges() {
			edges = append(edges, e+1)
		}
		groups = append(groups, failure.SRLG{Edges: edges, Prob: 0.004})
	}
	inst.Scenarios = failure.EnumerateSRLG(groups, 1e-6)
	if len(inst.Scenarios) > 40 {
		inst.Scenarios = inst.Scenarios[:40]
	}
	fmt.Printf("topology %s: %d links in %d SRLGs, %d scenarios\n",
		tp.Name, tp.G.NumEdges(), len(groups), len(inst.Scenarios))

	// Per-scenario traffic: incidents shed 30% of demand.
	inst.ScenDemand = make([][]float64, len(inst.Scenarios))
	for q, s := range inst.Scenarios {
		if len(s.Failed) == 0 {
			continue
		}
		d := make([]float64, inst.NumFlows())
		for i := range inst.Pairs {
			d[inst.FlowID(0, i)] = 0.7 * inst.Demand[0][i]
		}
		inst.ScenDemand[q] = d
	}

	beta := flexile.SetDesignTarget(inst)
	fmt.Printf("design target β = %.5f\n\n", beta)

	for _, s := range []flexile.Scheme{flexile.NewFlexile(), flexile.NewSMORE(), flexile.NewFFC(1)} {
		routing, err := s.Route(inst)
		if err != nil {
			log.Fatalf("%s: %v", s.Name(), err)
		}
		ev := flexile.Evaluate(inst, routing)
		fmt.Printf("%-10s PercLoss at β: %6.2f%%\n", s.Name(), 100*ev.PercLoss[0])
	}
	fmt.Println()
	fmt.Println("SRLG failures take out multiple links at once: FFC's single-")
	fmt.Println("failure protection collapses entirely (its grant must survive")
	fmt.Println("states it never planned for), while the schemes that react per")
	fmt.Println("state — and Flexile, which additionally plans per flow across")
	fmt.Println("states — meet the percentile targets.")
}
