// Quickstart walks through the paper's §3 motivating example end to end:
// the three-node triangle where every existing TE scheme is stuck at 50%
// loss at the 99th percentile while Flexile meets the full bandwidth
// objective — by prioritizing each flow in its own critical scenarios.
package main

import (
	"fmt"
	"log"

	"flexile"
)

func main() {
	// The Fig. 1 topology: A, B, C with unit-capacity links A−B, A−C, B−C,
	// each failing independently with probability 0.01.
	tp := flexile.TriangleTopology()
	inst := flexile.NewSingleClassInstance(tp, 3)

	// Flows: A→B and A→C, one unit each, to be met 99% of the time.
	// Pairs are ordered (A,B)=0, (A,C)=1, (B,C)=2.
	inst.Demand[0][0] = 1
	inst.Demand[0][1] = 1
	inst.Classes[0].Beta = 0.99

	// Enumerate all 8 failure states of the three links.
	inst.LinkProbs = []float64{0.01, 0.01, 0.01}
	flexileEnumerate(inst)

	fmt.Println("The paper's motivating example (Figs. 1-4):")
	fmt.Println()

	// Every scheme routes the same instance; post-analysis reads the 99th
	// percentile loss off the resulting per-scenario losses.
	for _, s := range []flexile.Scheme{
		flexile.NewSMORE(),
		flexile.NewTeavar(),
		flexile.NewCvarFlowSt(),
		flexile.NewCvarFlowAd(),
		flexile.NewFlexile(),
	} {
		routing, err := s.Route(inst)
		if err != nil {
			log.Fatalf("%s: %v", s.Name(), err)
		}
		ev := flexile.Evaluate(inst, routing)
		fmt.Printf("  %-14s 99%%ile loss of the worst flow: %5.1f%%\n", s.Name(), 100*ev.PercLoss[0])
	}

	fmt.Println()
	fmt.Println("Why Flexile wins: its offline phase discovers that each flow")
	fmt.Println("can meet its target in a different set of critical scenarios")
	fmt.Println("(all states where its own direct link survives, 99% mass),")
	fmt.Println("and its online phase prioritizes the critical flow whenever")
	fmt.Println("a link fails:")
	fmt.Println()

	fx := flexile.NewFlexile()
	if _, err := fx.Route(inst); err != nil {
		log.Fatal(err)
	}
	design := fx.Offline
	for _, pair := range []int{0, 1} {
		f := inst.FlowID(0, pair)
		u, v := inst.Pairs[pair][0], inst.Pairs[pair][1]
		fmt.Printf("  flow %s→%s critical in:", tp.G.NodeName(u), tp.G.NodeName(v))
		mass := 0.0
		for q, scen := range inst.Scenarios {
			if design.Critical.Get(f, q) {
				mass += scen.Prob
				fmt.Printf(" %v", scen.Failed)
			}
		}
		fmt.Printf("  (mass %.4f)\n", mass)
	}
}

// flexileEnumerate fills inst.Scenarios with every subset of failed links.
func flexileEnumerate(inst *flexile.Instance) {
	var scens []flexile.Scenario
	probs := inst.LinkProbs
	n := len(probs)
	for mask := 0; mask < 1<<n; mask++ {
		p := 1.0
		var failed []int
		for e := 0; e < n; e++ {
			if mask&(1<<e) != 0 {
				p *= probs[e]
				failed = append(failed, e)
			} else {
				p *= 1 - probs[e]
			}
		}
		scens = append(scens, flexile.Scenario{Failed: failed, Prob: p})
	}
	inst.Scenarios = scens
}
