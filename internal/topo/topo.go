// Package topo provides the evaluation topologies.
//
// The paper evaluates on 20 wide-area topologies from the Internet Topology
// Zoo and YATES (its Table 2). Those datasets are not redistributable here,
// so this package ships a deterministic synthetic generator that produces,
// for each Table-2 name, a 2-edge-connected geometric random graph with
// exactly the node and edge counts the paper reports (see DESIGN.md §1 for
// why this preserves the evaluation's shape). A small text format
// (Parse/Format) lets users load real Topology Zoo exports instead.
package topo

import (
	"bufio"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"flexile/internal/graph"
)

// DefaultCapacity is the uniform link capacity used by the generator.
// Traffic matrices are scaled relative to capacity (target MLU), so the
// absolute value is arbitrary.
const DefaultCapacity = 100.0

// Topology is a named network graph.
type Topology struct {
	Name string
	G    *graph.Graph
}

// Info describes one entry of the paper's Table 2.
type Info struct {
	Name  string
	Nodes int
	Edges int
}

// Table2 is the paper's topology inventory (name, nodes, edges).
var Table2 = []Info{
	{"B4", 12, 19},
	{"IBM", 17, 23},
	{"ATT", 25, 56},
	{"Quest", 19, 30},
	{"Tinet", 48, 84},
	{"Sprint", 10, 17},
	{"GEANT", 32, 50},
	{"Xeex", 22, 32},
	{"CWIX", 21, 26},
	{"Digex", 31, 35},
	{"JanetBackbone", 29, 45},
	{"Highwinds", 16, 29},
	{"BTNorthAmerica", 36, 76},
	{"CRLNetwork", 32, 37},
	{"Darkstrand", 28, 31},
	{"Integra", 23, 32},
	{"Xspedius", 33, 47},
	{"InternetMCI", 18, 32},
	{"Deltacom", 103, 151},
	{"IIJ", 27, 55},
}

// Names returns the Table-2 topology names in declaration order.
func Names() []string {
	out := make([]string, len(Table2))
	for i, t := range Table2 {
		out[i] = t.Name
	}
	return out
}

// Lookup returns the Table-2 entry for name (case-insensitive).
func Lookup(name string) (Info, bool) {
	for _, t := range Table2 {
		if strings.EqualFold(t.Name, name) {
			return t, true
		}
	}
	return Info{}, false
}

// Load builds the named Table-2 topology deterministically.
func Load(name string) (*Topology, error) {
	info, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("topo: unknown topology %q (known: %s)", name, strings.Join(Names(), ", "))
	}
	seed := nameSeed(info.Name)
	g := Generate(info.Nodes, info.Edges, seed)
	return &Topology{Name: info.Name, G: g}, nil
}

// MustLoad is Load that panics on error, for tests and examples.
func MustLoad(name string) *Topology {
	t, err := Load(name)
	if err != nil {
		panic(err)
	}
	return t
}

// nameSeed derives a stable seed from a topology name (FNV-1a).
func nameSeed(name string) int64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return int64(h & 0x7fffffffffffffff)
}

// Generate builds a deterministic 2-edge-connected geometric graph with
// exactly n nodes and m edges (m ≥ n required). Nodes are placed uniformly
// in the unit square; a nearest-neighbor tour forms a Hamiltonian cycle
// (guaranteeing 2-edge-connectivity, as in the paper after degree-one
// pruning) and the remaining m−n edges link the geometrically closest
// non-adjacent pairs, yielding the short-haul link structure of real WANs.
func Generate(n, m int, seed int64) *graph.Graph {
	if m < n {
		panic(fmt.Sprintf("topo: need m ≥ n for 2-edge-connectivity, got n=%d m=%d", n, m))
	}
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	dist := func(a, b int) float64 {
		dx, dy := xs[a]-xs[b], ys[a]-ys[b]
		return math.Sqrt(dx*dx + dy*dy)
	}
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.SetNodeName(i, fmt.Sprintf("n%d", i))
	}
	// Nearest-neighbor tour.
	visited := make([]bool, n)
	order := make([]int, 0, n)
	cur := 0
	visited[0] = true
	order = append(order, 0)
	for len(order) < n {
		best, bd := -1, math.Inf(1)
		for v := 0; v < n; v++ {
			if !visited[v] && dist(cur, v) < bd {
				best, bd = v, dist(cur, v)
			}
		}
		visited[best] = true
		order = append(order, best)
		cur = best
	}
	used := map[[2]int]bool{}
	addEdge := func(a, b int) bool {
		if a == b {
			return false
		}
		k := [2]int{min(a, b), max(a, b)}
		if used[k] {
			return false
		}
		used[k] = true
		g.AddEdge(a, b, DefaultCapacity)
		return true
	}
	for i := 0; i < n; i++ {
		addEdge(order[i], order[(i+1)%n])
	}
	// Fill with the closest remaining pairs.
	type pair struct {
		a, b int
		d    float64
	}
	var pairs []pair
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if !used[[2]int{a, b}] {
				pairs = append(pairs, pair{a, b, dist(a, b)})
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].d != pairs[j].d {
			return pairs[i].d < pairs[j].d
		}
		if pairs[i].a != pairs[j].a {
			return pairs[i].a < pairs[j].a
		}
		return pairs[i].b < pairs[j].b
	})
	for _, p := range pairs {
		if g.NumEdges() >= m {
			break
		}
		addEdge(p.a, p.b)
	}
	if g.NumEdges() != m {
		panic(fmt.Sprintf("topo: could not reach %d edges on %d nodes", m, n))
	}
	return g
}

// Triangle returns the paper's Fig. 1 motivating topology: nodes A, B, C
// with unit-capacity links A−B, A−C and B−C. The returned edge ids are in
// that order.
func Triangle() *Topology {
	g := graph.New(3)
	g.SetNodeName(0, "A")
	g.SetNodeName(1, "B")
	g.SetNodeName(2, "C")
	g.AddEdge(0, 1, 1) // A-B
	g.AddEdge(0, 2, 1) // A-C
	g.AddEdge(1, 2, 1) // B-C
	return &Topology{Name: "Triangle", G: g}
}

// TriangleNoBC is the appendix Fig. 16 variant without the B−C link
// (where ScenBest does meet the flow objectives).
func TriangleNoBC() *Topology {
	g := graph.New(3)
	g.SetNodeName(0, "A")
	g.SetNodeName(1, "B")
	g.SetNodeName(2, "C")
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	return &Topology{Name: "TriangleNoBC", G: g}
}

// RichlyConnected returns the §6.2 transform: every link becomes two
// parallel sublinks of half capacity that fail independently. origEdge maps
// each new edge id to the source edge id in t.G.
func RichlyConnected(t *Topology) (*Topology, []int) {
	src := t.G
	g := graph.New(src.NumNodes())
	for v := 0; v < src.NumNodes(); v++ {
		g.SetNodeName(v, src.NodeName(v))
	}
	origEdge := make([]int, 0, 2*src.NumEdges())
	for e := 0; e < src.NumEdges(); e++ {
		ed := src.Edge(e)
		g.AddEdge(ed.A, ed.B, ed.Capacity/2)
		g.AddEdge(ed.A, ed.B, ed.Capacity/2)
		origEdge = append(origEdge, e, e)
	}
	return &Topology{Name: t.Name + "-rich", G: g}, origEdge
}

// Parse reads the simple text topology format:
//
//	# comment
//	node <name>
//	edge <nameA> <nameB> <capacity>
//
// Node lines are optional; edge lines create missing nodes on demand.
func Parse(name, text string) (*Topology, error) {
	idx := map[string]int{}
	type rawEdge struct {
		a, b string
		c    float64
	}
	var nodes []string
	var edges []rawEdge
	sc := bufio.NewScanner(strings.NewReader(text))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "node":
			if len(fields) != 2 {
				return nil, fmt.Errorf("topo: line %d: node wants 1 arg", lineNo)
			}
			if _, ok := idx[fields[1]]; !ok {
				idx[fields[1]] = len(nodes)
				nodes = append(nodes, fields[1])
			}
		case "edge":
			if len(fields) != 4 {
				return nil, fmt.Errorf("topo: line %d: edge wants 3 args", lineNo)
			}
			c, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("topo: line %d: bad capacity: %v", lineNo, err)
			}
			for _, nn := range fields[1:3] {
				if _, ok := idx[nn]; !ok {
					idx[nn] = len(nodes)
					nodes = append(nodes, nn)
				}
			}
			edges = append(edges, rawEdge{fields[1], fields[2], c})
		default:
			return nil, fmt.Errorf("topo: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	g := graph.New(len(nodes))
	for i, nn := range nodes {
		g.SetNodeName(i, nn)
	}
	for _, e := range edges {
		g.AddEdge(idx[e.a], idx[e.b], e.c)
	}
	return &Topology{Name: name, G: g}, nil
}

// Format renders a topology in the text format accepted by Parse.
func Format(t *Topology) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# topology %s: %d nodes, %d edges\n", t.Name, t.G.NumNodes(), t.G.NumEdges())
	for v := 0; v < t.G.NumNodes(); v++ {
		fmt.Fprintf(&b, "node %s\n", t.G.NodeName(v))
	}
	for e := 0; e < t.G.NumEdges(); e++ {
		ed := t.G.Edge(e)
		fmt.Fprintf(&b, "edge %s %s %g\n", t.G.NodeName(ed.A), t.G.NodeName(ed.B), ed.Capacity)
	}
	return b.String()
}

// Stats summarizes a topology's structure, for reports and the topogen
// CLI.
type Stats struct {
	Nodes, Edges  int
	MinDegree     int
	MaxDegree     int
	AvgDegree     float64
	Diameter      int // hop diameter (max over pairs of shortest-path hops)
	Bridges       int
	TotalCapacity float64
}

// ComputeStats derives Stats for a topology.
func ComputeStats(t *Topology) Stats {
	g := t.G
	st := Stats{Nodes: g.NumNodes(), Edges: g.NumEdges(), MinDegree: 1 << 30}
	for v := 0; v < g.NumNodes(); v++ {
		d := g.Degree(v)
		if d < st.MinDegree {
			st.MinDegree = d
		}
		if d > st.MaxDegree {
			st.MaxDegree = d
		}
		st.AvgDegree += float64(d)
	}
	if g.NumNodes() > 0 {
		st.AvgDegree /= float64(g.NumNodes())
	} else {
		st.MinDegree = 0
	}
	for u := 0; u < g.NumNodes(); u++ {
		for v := u + 1; v < g.NumNodes(); v++ {
			if p, ok := g.ShortestPath(u, v, nil, nil, nil); ok && p.Len() > st.Diameter {
				st.Diameter = p.Len()
			}
		}
	}
	st.Bridges = len(g.Bridges())
	for e := 0; e < g.NumEdges(); e++ {
		st.TotalCapacity += g.Edge(e).Capacity
	}
	return st
}
