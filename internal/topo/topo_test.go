package topo

import (
	"strings"
	"testing"
)

// TestTable2Inventory checks every generated topology matches the paper's
// Table 2 exactly and is 2-edge-connected (no bridges), so no single link
// failure disconnects it — the property the paper enforces by pruning.
func TestTable2Inventory(t *testing.T) {
	for _, info := range Table2 {
		tp, err := Load(info.Name)
		if err != nil {
			t.Fatal(err)
		}
		if got := tp.G.NumNodes(); got != info.Nodes {
			t.Errorf("%s: nodes = %d, want %d", info.Name, got, info.Nodes)
		}
		if got := tp.G.NumEdges(); got != info.Edges {
			t.Errorf("%s: edges = %d, want %d", info.Name, got, info.Edges)
		}
		if !tp.G.IsConnected(nil) {
			t.Errorf("%s: not connected", info.Name)
		}
		if br := tp.G.Bridges(); len(br) != 0 {
			t.Errorf("%s: has bridges %v", info.Name, br)
		}
	}
}

func TestLoadDeterministic(t *testing.T) {
	a := MustLoad("IBM")
	b := MustLoad("IBM")
	if a.G.NumEdges() != b.G.NumEdges() {
		t.Fatal("nondeterministic edge count")
	}
	for e := 0; e < a.G.NumEdges(); e++ {
		if a.G.Edge(e) != b.G.Edge(e) {
			t.Fatalf("edge %d differs between loads", e)
		}
	}
}

func TestLoadCaseInsensitive(t *testing.T) {
	if _, err := Load("ibm"); err != nil {
		t.Fatal(err)
	}
	if _, err := Load("sprint"); err != nil {
		t.Fatal(err)
	}
}

func TestLoadUnknown(t *testing.T) {
	if _, err := Load("nonexistent"); err == nil {
		t.Fatal("want error for unknown topology")
	}
}

func TestTriangle(t *testing.T) {
	tr := Triangle()
	if tr.G.NumNodes() != 3 || tr.G.NumEdges() != 3 {
		t.Fatalf("triangle shape wrong")
	}
	// Edge 0 is A-B, edge 1 is A-C.
	if e := tr.G.Edge(0); e.A != 0 || e.B != 1 || e.Capacity != 1 {
		t.Fatalf("edge 0 = %+v", e)
	}
	nb := TriangleNoBC()
	if nb.G.NumEdges() != 2 {
		t.Fatalf("no-BC variant has %d edges", nb.G.NumEdges())
	}
}

func TestRichlyConnected(t *testing.T) {
	tr := Triangle()
	rich, orig := RichlyConnected(tr)
	if rich.G.NumEdges() != 6 {
		t.Fatalf("want 6 sublinks, got %d", rich.G.NumEdges())
	}
	if len(orig) != 6 {
		t.Fatalf("orig mapping length %d", len(orig))
	}
	for e := 0; e < 6; e++ {
		if orig[e] != e/2 {
			t.Fatalf("orig[%d] = %d, want %d", e, orig[e], e/2)
		}
		if got := rich.G.Edge(e).Capacity; got != 0.5 {
			t.Fatalf("sublink capacity %v, want 0.5", got)
		}
		// Sublink endpoints match the source edge.
		se := tr.G.Edge(orig[e])
		re := rich.G.Edge(e)
		if se.A != re.A || se.B != re.B {
			t.Fatalf("sublink %d endpoints %v != source %v", e, re, se)
		}
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	tp := MustLoad("Sprint")
	text := Format(tp)
	back, err := Parse("Sprint", text)
	if err != nil {
		t.Fatal(err)
	}
	if back.G.NumNodes() != tp.G.NumNodes() || back.G.NumEdges() != tp.G.NumEdges() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
			back.G.NumNodes(), back.G.NumEdges(), tp.G.NumNodes(), tp.G.NumEdges())
	}
	for e := 0; e < tp.G.NumEdges(); e++ {
		a, b := tp.G.Edge(e), back.G.Edge(e)
		if tp.G.NodeName(a.A) != back.G.NodeName(b.A) || tp.G.NodeName(a.B) != back.G.NodeName(b.B) || a.Capacity != b.Capacity {
			t.Fatalf("edge %d differs after round trip", e)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"edge a b",         // missing capacity
		"edge a b xyz",     // bad capacity
		"node",             // missing name
		"frobnicate a b c", // unknown directive
	}
	for _, c := range cases {
		if _, err := Parse("t", c); err == nil {
			t.Errorf("Parse(%q) should fail", c)
		}
	}
}

func TestParseComments(t *testing.T) {
	tp, err := Parse("t", "# header\n\nnode A\nnode B\nedge A B 10\n")
	if err != nil {
		t.Fatal(err)
	}
	if tp.G.NumNodes() != 2 || tp.G.NumEdges() != 1 {
		t.Fatalf("parsed shape wrong: %d/%d", tp.G.NumNodes(), tp.G.NumEdges())
	}
	if tp.G.Edge(0).Capacity != 10 {
		t.Fatalf("capacity = %v", tp.G.Edge(0).Capacity)
	}
}

func TestParseCreatesNodesOnDemand(t *testing.T) {
	tp, err := Parse("t", "edge X Y 5\nedge Y Z 5\n")
	if err != nil {
		t.Fatal(err)
	}
	if tp.G.NumNodes() != 3 {
		t.Fatalf("want 3 nodes, got %d", tp.G.NumNodes())
	}
}

func TestNamesAndLookup(t *testing.T) {
	names := Names()
	if len(names) != 20 {
		t.Fatalf("Table 2 has 20 topologies, got %d", len(names))
	}
	if !strings.Contains(strings.Join(names, ","), "Deltacom") {
		t.Fatal("Deltacom missing")
	}
	info, ok := Lookup("Deltacom")
	if !ok || info.Nodes != 103 || info.Edges != 151 {
		t.Fatalf("Deltacom lookup: %+v %v", info, ok)
	}
}

func TestGeneratePanicsOnTooFewEdges(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for m < n")
		}
	}()
	Generate(10, 5, 1)
}

func TestComputeStats(t *testing.T) {
	st := ComputeStats(Triangle())
	if st.Nodes != 3 || st.Edges != 3 {
		t.Fatalf("shape: %+v", st)
	}
	if st.MinDegree != 2 || st.MaxDegree != 2 || st.AvgDegree != 2 {
		t.Fatalf("degrees: %+v", st)
	}
	if st.Diameter != 1 {
		t.Fatalf("diameter %d, want 1", st.Diameter)
	}
	if st.Bridges != 0 {
		t.Fatalf("bridges %d", st.Bridges)
	}
	if st.TotalCapacity != 3 {
		t.Fatalf("capacity %v", st.TotalCapacity)
	}
	// A Table-2 topology: sane aggregates.
	ibm := ComputeStats(MustLoad("IBM"))
	if ibm.MinDegree < 2 || ibm.Diameter < 2 || ibm.Bridges != 0 {
		t.Fatalf("IBM stats: %+v", ibm)
	}
}
