// Package graph provides the wide-area-network graph substrate: an
// undirected capacitated multigraph with the path and connectivity
// machinery the TE schemes need — Dijkstra, Yen's k-shortest paths,
// connectivity under edge failures, bridge detection and the recursive
// degree-one pruning the paper applies to every topology.
package graph

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Edge is an undirected link between nodes A and B with a capacity.
type Edge struct {
	A, B     int
	Capacity float64
}

// Graph is an undirected capacitated multigraph. Nodes are dense integers
// 0..NumNodes-1; edges are dense integers 0..NumEdges-1.
type Graph struct {
	names []string
	edges []Edge
	adj   [][]half
}

type half struct {
	to   int
	edge int
}

// New creates a graph with n isolated nodes named "0".."n-1".
func New(n int) *Graph {
	g := &Graph{adj: make([][]half, n)}
	g.names = make([]string, n)
	for i := range g.names {
		g.names[i] = fmt.Sprint(i)
	}
	return g
}

// SetNodeName assigns a display name to node v.
func (g *Graph) SetNodeName(v int, name string) { g.names[v] = name }

// NodeName returns the display name of node v.
func (g *Graph) NodeName(v int) string { return g.names[v] }

// AddEdge inserts an undirected edge and returns its index.
func (g *Graph) AddEdge(a, b int, capacity float64) int {
	if a == b {
		panic("graph: self loop")
	}
	id := len(g.edges)
	g.edges = append(g.edges, Edge{a, b, capacity})
	g.adj[a] = append(g.adj[a], half{b, id})
	g.adj[b] = append(g.adj[b], half{a, id})
	return id
}

// NumNodes reports the node count.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges reports the edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edge returns edge e.
func (g *Graph) Edge(e int) Edge { return g.edges[e] }

// SetCapacity overrides the capacity of edge e.
func (g *Graph) SetCapacity(e int, c float64) { g.edges[e].Capacity = c }

// Degree reports the number of incident edges of node v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors calls fn for every incident (neighbor, edge) of v.
func (g *Graph) Neighbors(v int, fn func(to, edge int)) {
	for _, h := range g.adj[v] {
		fn(h.to, h.edge)
	}
}

// Path is a simple path: Nodes has one more element than Edges, and
// Edges[i] connects Nodes[i] to Nodes[i+1].
type Path struct {
	Nodes []int
	Edges []int
}

// Len reports the hop count.
func (p Path) Len() int { return len(p.Edges) }

// UsesEdge reports whether the path crosses edge e.
func (p Path) UsesEdge(e int) bool {
	for _, pe := range p.Edges {
		if pe == e {
			return true
		}
	}
	return false
}

// Alive reports whether every edge of the path is alive under the given
// predicate.
func (p Path) Alive(alive func(edge int) bool) bool {
	for _, e := range p.Edges {
		if !alive(e) {
			return false
		}
	}
	return true
}

// Equal reports whether two paths traverse the same edges in order.
func (p Path) Equal(q Path) bool {
	if len(p.Edges) != len(q.Edges) {
		return false
	}
	for i := range p.Edges {
		if p.Edges[i] != q.Edges[i] {
			return false
		}
	}
	return true
}

// Clone deep-copies the path.
func (p Path) Clone() Path {
	return Path{Nodes: append([]int(nil), p.Nodes...), Edges: append([]int(nil), p.Edges...)}
}

// Connected reports whether u can reach v using edges for which alive
// returns true (alive == nil means all edges).
func (g *Graph) Connected(u, v int, alive func(edge int) bool) bool {
	if u == v {
		return true
	}
	seen := make([]bool, g.NumNodes())
	stack := []int{u}
	seen[u] = true
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, h := range g.adj[x] {
			if alive != nil && !alive(h.edge) {
				continue
			}
			if h.to == v {
				return true
			}
			if !seen[h.to] {
				seen[h.to] = true
				stack = append(stack, h.to)
			}
		}
	}
	return false
}

// ComponentOf returns the set of nodes reachable from u under alive.
func (g *Graph) ComponentOf(u int, alive func(edge int) bool) []bool {
	seen := make([]bool, g.NumNodes())
	stack := []int{u}
	seen[u] = true
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, h := range g.adj[x] {
			if alive != nil && !alive(h.edge) {
				continue
			}
			if !seen[h.to] {
				seen[h.to] = true
				stack = append(stack, h.to)
			}
		}
	}
	return seen
}

// IsConnected reports whether the whole graph is one component under alive.
func (g *Graph) IsConnected(alive func(edge int) bool) bool {
	if g.NumNodes() == 0 {
		return true
	}
	seen := g.ComponentOf(0, alive)
	for _, s := range seen {
		if !s {
			return false
		}
	}
	return true
}

type pqItem struct {
	node int
	dist float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// ShortestPath runs Dijkstra from u to v with per-edge weights (weight ==
// nil means hop count) restricted to alive edges and allowed nodes
// (nil means no restriction). It returns the path and true, or false when v
// is unreachable.
func (g *Graph) ShortestPath(u, v int, weight func(edge int) float64, alive func(edge int) bool, nodeOK func(node int) bool) (Path, bool) {
	n := g.NumNodes()
	dist := make([]float64, n)
	prevNode := make([]int, n)
	prevEdge := make([]int, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prevNode[i] = -1
		prevEdge[i] = -1
	}
	dist[u] = 0
	q := &pq{{u, 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.dist > dist[it.node] {
			continue
		}
		if it.node == v {
			break
		}
		for _, h := range g.adj[it.node] {
			if alive != nil && !alive(h.edge) {
				continue
			}
			if nodeOK != nil && h.to != v && h.to != u && !nodeOK(h.to) {
				continue
			}
			w := 1.0
			if weight != nil {
				w = weight(h.edge)
			}
			nd := it.dist + w
			if nd < dist[h.to]-1e-15 {
				dist[h.to] = nd
				prevNode[h.to] = it.node
				prevEdge[h.to] = h.edge
				heap.Push(q, pqItem{h.to, nd})
			}
		}
	}
	if math.IsInf(dist[v], 1) {
		return Path{}, false
	}
	var nodes, edges []int
	for x := v; x != -1; x = prevNode[x] {
		nodes = append(nodes, x)
		if prevEdge[x] != -1 {
			edges = append(edges, prevEdge[x])
		}
	}
	reverseInts(nodes)
	reverseInts(edges)
	return Path{Nodes: nodes, Edges: edges}, true
}

func reverseInts(a []int) {
	for i, j := 0, len(a)-1; i < j; i, j = i+1, j-1 {
		a[i], a[j] = a[j], a[i]
	}
}

// KShortestPaths returns up to k loopless shortest paths from u to v in
// nondecreasing weight order (Yen's algorithm). weight == nil means hop
// count.
func (g *Graph) KShortestPaths(u, v, k int, weight func(edge int) float64) []Path {
	if k <= 0 {
		return nil
	}
	w := weight
	if w == nil {
		w = func(int) float64 { return 1 }
	}
	pathCost := func(p Path) float64 {
		c := 0.0
		for _, e := range p.Edges {
			c += w(e)
		}
		return c
	}
	first, ok := g.ShortestPath(u, v, w, nil, nil)
	if !ok {
		return nil
	}
	result := []Path{first}
	type cand struct {
		p    Path
		cost float64
	}
	var candidates []cand
	for len(result) < k {
		last := result[len(result)-1]
		for i := 0; i < len(last.Nodes)-1; i++ {
			spurNode := last.Nodes[i]
			rootNodes := last.Nodes[:i+1]
			rootEdges := last.Edges[:i]
			// Edges to exclude: the next edge of any accepted path sharing
			// this root.
			banned := map[int]bool{}
			for _, rp := range result {
				if len(rp.Nodes) > i && sameInts(rp.Nodes[:i+1], rootNodes) && len(rp.Edges) > i {
					banned[rp.Edges[i]] = true
				}
			}
			// Nodes of the root (except spur) are off limits to keep paths
			// loopless.
			offLimit := map[int]bool{}
			for _, nn := range rootNodes[:i] {
				offLimit[nn] = true
			}
			alive := func(e int) bool { return !banned[e] }
			nodeOK := func(n int) bool { return !offLimit[n] }
			spur, ok := g.ShortestPath(spurNode, v, w, alive, nodeOK)
			if !ok {
				continue
			}
			// Guard against the spur path revisiting root nodes (can happen
			// through the endpoints exempted in ShortestPath).
			bad := false
			for _, nn := range spur.Nodes[1:] {
				if offLimit[nn] {
					bad = true
					break
				}
			}
			if bad {
				continue
			}
			total := Path{
				Nodes: append(append([]int(nil), rootNodes...), spur.Nodes[1:]...),
				Edges: append(append([]int(nil), rootEdges...), spur.Edges...),
			}
			dup := false
			for _, c := range candidates {
				if c.p.Equal(total) {
					dup = true
					break
				}
			}
			for _, rp := range result {
				if rp.Equal(total) {
					dup = true
					break
				}
			}
			if !dup {
				candidates = append(candidates, cand{total, pathCost(total)})
			}
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(a, b int) bool {
			if candidates[a].cost != candidates[b].cost {
				return candidates[a].cost < candidates[b].cost
			}
			return candidates[a].p.Len() < candidates[b].p.Len()
		})
		result = append(result, candidates[0].p)
		candidates = candidates[1:]
	}
	return result
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Bridges returns the set of bridge edges (edges whose removal disconnects
// their component), via Tarjan's low-link algorithm.
func (g *Graph) Bridges() []int {
	n := g.NumNodes()
	disc := make([]int, n)
	low := make([]int, n)
	for i := range disc {
		disc[i] = -1
	}
	var bridges []int
	timer := 0
	type frame struct {
		node, parentEdge int
		idx              int
	}
	for start := 0; start < n; start++ {
		if disc[start] != -1 {
			continue
		}
		stack := []frame{{start, -1, 0}}
		disc[start] = timer
		low[start] = timer
		timer++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.idx < len(g.adj[f.node]) {
				h := g.adj[f.node][f.idx]
				f.idx++
				if h.edge == f.parentEdge {
					continue
				}
				if disc[h.to] == -1 {
					disc[h.to] = timer
					low[h.to] = timer
					timer++
					stack = append(stack, frame{h.to, h.edge, 0})
				} else if disc[h.to] < low[f.node] {
					low[f.node] = disc[h.to]
				}
			} else {
				stack = stack[:len(stack)-1]
				if len(stack) > 0 {
					p := &stack[len(stack)-1]
					if low[f.node] < low[p.node] {
						low[p.node] = low[f.node]
					}
					if low[f.node] > disc[p.node] {
						bridges = append(bridges, f.parentEdge)
					}
				}
			}
		}
	}
	sort.Ints(bridges)
	return bridges
}

// PruneDegreeOne recursively removes degree-one nodes (as §6 of the paper
// does, so no single link failure can disconnect the network) and returns
// the reduced graph along with origNode, mapping new node ids to ids in the
// original graph.
func (g *Graph) PruneDegreeOne() (*Graph, []int) {
	n := g.NumNodes()
	removed := make([]bool, n)
	deg := make([]int, n)
	edgeAlive := make([]bool, g.NumEdges())
	for e := range edgeAlive {
		edgeAlive[e] = true
	}
	for v := 0; v < n; v++ {
		deg[v] = len(g.adj[v])
	}
	changed := true
	for changed {
		changed = false
		for v := 0; v < n; v++ {
			if removed[v] || deg[v] > 1 {
				continue
			}
			removed[v] = true
			changed = true
			for _, h := range g.adj[v] {
				if edgeAlive[h.edge] && !removed[h.to] {
					edgeAlive[h.edge] = false
					deg[h.to]--
					deg[v]--
				}
			}
		}
	}
	newID := make([]int, n)
	var origNode []int
	for v := 0; v < n; v++ {
		if removed[v] {
			newID[v] = -1
			continue
		}
		newID[v] = len(origNode)
		origNode = append(origNode, v)
	}
	out := New(len(origNode))
	for i, ov := range origNode {
		out.SetNodeName(i, g.names[ov])
	}
	for e, ed := range g.edges {
		if edgeAlive[e] && !removed[ed.A] && !removed[ed.B] {
			out.AddEdge(newID[ed.A], newID[ed.B], ed.Capacity)
		}
	}
	return out, origNode
}
