package graph

// MaxFlow computes the maximum flow between s and t over the undirected
// graph under the given alive predicate (nil = all edges), treating each
// edge's capacity as usable in either direction (the standard undirected
// max-flow model, matching the capacity semantics of the TE instances).
//
// It runs Edmonds-Karp over the residual network. The returned value is
// exact for rational capacities. TE code uses it as an upper bound oracle:
// no tunnel-based routing of a single pair can exceed the pair's max flow,
// which makes it a cheap cross-check for the LP-based allocators.
func (g *Graph) MaxFlow(s, t int, alive func(edge int) bool) float64 {
	if s == t {
		return 0
	}
	n := g.NumNodes()
	// Residual capacities as an adjacency map: undirected edge {a,b} with
	// capacity c becomes residual arcs a→b and b→a, each with capacity c
	// (flow in one direction cancels against the other).
	type arc struct {
		to  int
		cap float64
		rev int // index of the reverse arc in adj[to]
	}
	adj := make([][]arc, n)
	addArc := func(a, b int, c float64) {
		adj[a] = append(adj[a], arc{to: b, cap: c, rev: len(adj[b])})
		adj[b] = append(adj[b], arc{to: a, cap: c, rev: len(adj[a]) - 1})
	}
	for e := 0; e < g.NumEdges(); e++ {
		if alive != nil && !alive(e) {
			continue
		}
		ed := g.Edge(e)
		if ed.Capacity > 0 {
			addArc(ed.A, ed.B, ed.Capacity)
		}
	}
	total := 0.0
	prevNode := make([]int, n)
	prevArc := make([]int, n)
	for {
		// BFS for a shortest augmenting path.
		for i := range prevNode {
			prevNode[i] = -1
		}
		prevNode[s] = s
		queue := []int{s}
		for len(queue) > 0 && prevNode[t] == -1 {
			u := queue[0]
			queue = queue[1:]
			for ai, a := range adj[u] {
				if a.cap > 1e-12 && prevNode[a.to] == -1 {
					prevNode[a.to] = u
					prevArc[a.to] = ai
					queue = append(queue, a.to)
				}
			}
		}
		if prevNode[t] == -1 {
			return total
		}
		// Bottleneck along the path.
		aug := 1e308
		for v := t; v != s; v = prevNode[v] {
			a := adj[prevNode[v]][prevArc[v]]
			if a.cap < aug {
				aug = a.cap
			}
		}
		for v := t; v != s; v = prevNode[v] {
			u := prevNode[v]
			adj[u][prevArc[v]].cap -= aug
			rev := adj[u][prevArc[v]].rev
			adj[v][rev].cap += aug
		}
		total += aug
	}
}
