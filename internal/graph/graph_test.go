package graph

import (
	"math/rand"
	"sort"
	"testing"
)

// triangle builds A-B, A-C, B-C with unit capacity.
func triangle() *Graph {
	g := New(3)
	g.AddEdge(0, 1, 1) // e0: A-B
	g.AddEdge(0, 2, 1) // e1: A-C
	g.AddEdge(1, 2, 1) // e2: B-C
	return g
}

func TestConnectivity(t *testing.T) {
	g := triangle()
	if !g.Connected(0, 2, nil) {
		t.Fatal("triangle should be connected")
	}
	// Fail A-C and B-C: A cannot reach C.
	alive := func(e int) bool { return e == 0 }
	if g.Connected(0, 2, alive) {
		t.Fatal("A should not reach C with only A-B alive")
	}
	if !g.Connected(0, 1, alive) {
		t.Fatal("A should reach B over the alive edge")
	}
}

func TestIsConnected(t *testing.T) {
	g := triangle()
	if !g.IsConnected(nil) {
		t.Fatal("triangle connected")
	}
	if g.IsConnected(func(e int) bool { return e == 2 }) {
		t.Fatal("only B-C alive disconnects A")
	}
}

func TestShortestPathHops(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(0, 3, 1)
	p, ok := g.ShortestPath(0, 2, nil, nil, nil)
	if !ok || p.Len() != 2 {
		t.Fatalf("path=%v ok=%v", p, ok)
	}
	if p.Nodes[0] != 0 || p.Nodes[len(p.Nodes)-1] != 2 {
		t.Fatalf("endpoints wrong: %v", p.Nodes)
	}
}

func TestShortestPathWeights(t *testing.T) {
	g := New(3)
	e01 := g.AddEdge(0, 1, 1)
	e12 := g.AddEdge(1, 2, 1)
	e02 := g.AddEdge(0, 2, 1)
	w := map[int]float64{e01: 1, e12: 1, e02: 5}
	p, ok := g.ShortestPath(0, 2, func(e int) float64 { return w[e] }, nil, nil)
	if !ok || p.Len() != 2 {
		t.Fatalf("want the 2-hop cheap path, got %v", p)
	}
	_ = e02
}

func TestShortestPathUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	if _, ok := g.ShortestPath(0, 2, nil, nil, nil); ok {
		t.Fatal("node 2 is isolated")
	}
}

func TestKShortestPathsTriangle(t *testing.T) {
	g := triangle()
	paths := g.KShortestPaths(0, 1, 3, nil)
	if len(paths) != 2 {
		t.Fatalf("triangle has exactly 2 loopless A→B paths, got %d", len(paths))
	}
	if paths[0].Len() != 1 || paths[1].Len() != 2 {
		t.Fatalf("paths out of order: %v", paths)
	}
}

func TestKShortestPathsGrid(t *testing.T) {
	// 2x3 grid: 0-1-2 / 3-4-5 with verticals.
	g := New(6)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(3, 4, 1)
	g.AddEdge(4, 5, 1)
	g.AddEdge(0, 3, 1)
	g.AddEdge(1, 4, 1)
	g.AddEdge(2, 5, 1)
	paths := g.KShortestPaths(0, 5, 4, nil)
	if len(paths) < 3 {
		t.Fatalf("expected ≥3 paths, got %d", len(paths))
	}
	for i := 1; i < len(paths); i++ {
		ci := cost(paths[i])
		cp := cost(paths[i-1])
		if ci < cp {
			t.Fatalf("paths not sorted: %v then %v", cp, ci)
		}
	}
	// All paths must be loopless and valid.
	for _, p := range paths {
		seen := map[int]bool{}
		for _, n := range p.Nodes {
			if seen[n] {
				t.Fatalf("loop in path %v", p.Nodes)
			}
			seen[n] = true
		}
		validatePath(t, g, p, 0, 5)
	}
	// All paths distinct.
	for i := range paths {
		for j := i + 1; j < len(paths); j++ {
			if paths[i].Equal(paths[j]) {
				t.Fatalf("duplicate paths %d and %d", i, j)
			}
		}
	}
}

func cost(p Path) int { return p.Len() }

func validatePath(t *testing.T, g *Graph, p Path, src, dst int) {
	t.Helper()
	if p.Nodes[0] != src || p.Nodes[len(p.Nodes)-1] != dst {
		t.Fatalf("endpoints: %v", p.Nodes)
	}
	if len(p.Nodes) != len(p.Edges)+1 {
		t.Fatalf("length mismatch: %d nodes %d edges", len(p.Nodes), len(p.Edges))
	}
	for i, e := range p.Edges {
		ed := g.Edge(e)
		a, b := p.Nodes[i], p.Nodes[i+1]
		if !(ed.A == a && ed.B == b) && !(ed.A == b && ed.B == a) {
			t.Fatalf("edge %d does not connect %d-%d", e, a, b)
		}
	}
}

// Property: on random graphs, Yen's first path equals Dijkstra and every
// returned path is simple, valid, and sorted by cost.
func TestKShortestPathsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(8)
		g := New(n)
		for i := 1; i < n; i++ {
			g.AddEdge(i, rng.Intn(i), 1) // random spanning tree
		}
		extra := rng.Intn(2 * n)
		for i := 0; i < extra; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				g.AddEdge(a, b, 1)
			}
		}
		u, v := 0, n-1
		paths := g.KShortestPaths(u, v, 5, nil)
		if len(paths) == 0 {
			t.Fatalf("trial %d: spanning tree guarantees a path", trial)
		}
		sp, _ := g.ShortestPath(u, v, nil, nil, nil)
		if paths[0].Len() != sp.Len() {
			t.Fatalf("trial %d: first Yen path length %d != Dijkstra %d", trial, paths[0].Len(), sp.Len())
		}
		for i, p := range paths {
			validatePath(t, g, p, u, v)
			seen := map[int]bool{}
			for _, nn := range p.Nodes {
				if seen[nn] {
					t.Fatalf("trial %d: path %d has a loop", trial, i)
				}
				seen[nn] = true
			}
			if i > 0 && p.Len() < paths[i-1].Len() {
				t.Fatalf("trial %d: unsorted", trial)
			}
		}
	}
}

func TestBridges(t *testing.T) {
	// Two triangles joined by a single edge (the bridge).
	g := New(6)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 0, 1)
	br := g.AddEdge(2, 3, 1)
	g.AddEdge(3, 4, 1)
	g.AddEdge(4, 5, 1)
	g.AddEdge(5, 3, 1)
	bridges := g.Bridges()
	if len(bridges) != 1 || bridges[0] != br {
		t.Fatalf("bridges = %v, want [%d]", bridges, br)
	}
}

func TestBridgesParallelEdges(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 1, 1)
	if got := g.Bridges(); len(got) != 0 {
		t.Fatalf("parallel edges are not bridges: %v", got)
	}
}

func TestBridgesTree(t *testing.T) {
	g := New(4)
	e1 := g.AddEdge(0, 1, 1)
	e2 := g.AddEdge(1, 2, 1)
	e3 := g.AddEdge(1, 3, 1)
	got := g.Bridges()
	want := []int{e1, e2, e3}
	sort.Ints(got)
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("bridges = %v, want %v", got, want)
	}
}

func TestPruneDegreeOne(t *testing.T) {
	// Chain 3-0 hanging off a triangle 0-1-2, plus a further leaf 4-3.
	g := New(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 0, 1)
	g.AddEdge(3, 0, 1)
	g.AddEdge(4, 3, 1)
	pruned, orig := g.PruneDegreeOne()
	if pruned.NumNodes() != 3 {
		t.Fatalf("want 3 nodes after pruning, got %d", pruned.NumNodes())
	}
	if pruned.NumEdges() != 3 {
		t.Fatalf("want 3 edges after pruning, got %d", pruned.NumEdges())
	}
	for _, ov := range orig {
		if ov > 2 {
			t.Fatalf("nodes 3,4 should be pruned; orig=%v", orig)
		}
	}
}

func TestPruneKeepsTwoEdgeConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 6 + rng.Intn(10)
		g := New(n)
		for i := 1; i < n; i++ {
			g.AddEdge(i, rng.Intn(i), 1)
		}
		for i := 0; i < n; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				g.AddEdge(a, b, 1)
			}
		}
		pruned, _ := g.PruneDegreeOne()
		for v := 0; v < pruned.NumNodes(); v++ {
			if pruned.Degree(v) < 2 {
				t.Fatalf("trial %d: node %d has degree %d after pruning", trial, v, pruned.Degree(v))
			}
		}
	}
}

func TestPathHelpers(t *testing.T) {
	g := triangle()
	p, _ := g.ShortestPath(0, 2, nil, nil, nil)
	if !p.UsesEdge(p.Edges[0]) {
		t.Fatal("UsesEdge false negative")
	}
	if p.UsesEdge(99) {
		t.Fatal("UsesEdge false positive")
	}
	if !p.Alive(func(int) bool { return true }) {
		t.Fatal("Alive with all edges up")
	}
	if p.Alive(func(e int) bool { return e != p.Edges[0] }) {
		t.Fatal("Alive with a dead edge on the path")
	}
	c := p.Clone()
	c.Nodes[0] = 99
	if p.Nodes[0] == 99 {
		t.Fatal("Clone aliases memory")
	}
}

func BenchmarkKShortestPaths(b *testing.B) {
	tp := testGraphIBM()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := tp.KShortestPaths(0, tp.NumNodes()-1, 6, nil); len(got) == 0 {
			b.Fatal("no paths")
		}
	}
}

func BenchmarkMaxFlow(b *testing.B) {
	tp := testGraphIBM()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp.MaxFlow(0, tp.NumNodes()-1, nil)
	}
}
