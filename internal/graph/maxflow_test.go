package graph

import (
	"math"
	"math/rand"
	"testing"
)

func TestMaxFlowClassic(t *testing.T) {
	// s=0, a=1, b=2, t=3: s-a(3), s-b(2), a-t(2), b-t(3), a-b(1) → 5.
	g := New(4)
	g.AddEdge(0, 1, 3)
	g.AddEdge(0, 2, 2)
	g.AddEdge(1, 3, 2)
	g.AddEdge(2, 3, 3)
	g.AddEdge(1, 2, 1)
	if got := g.MaxFlow(0, 3, nil); math.Abs(got-5) > 1e-9 {
		t.Fatalf("max flow = %v, want 5", got)
	}
}

func TestMaxFlowTriangle(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(1, 2, 1)
	// A→B: direct (1) + via C (1) = 2.
	if got := g.MaxFlow(0, 1, nil); math.Abs(got-2) > 1e-9 {
		t.Fatalf("max flow = %v, want 2", got)
	}
	// With A-B dead, only the 2-hop path remains.
	alive := func(e int) bool { return e != 0 }
	if got := g.MaxFlow(0, 1, alive); math.Abs(got-1) > 1e-9 {
		t.Fatalf("max flow without direct link = %v, want 1", got)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(2, 3, 5)
	if got := g.MaxFlow(0, 3, nil); got != 0 {
		t.Fatalf("flow across components = %v", got)
	}
	if got := g.MaxFlow(0, 0, nil); got != 0 {
		t.Fatalf("s == t flow = %v", got)
	}
}

// Property: max flow equals min cut on random graphs — verified against a
// brute-force min cut over all s-t partitions (small n).
func TestMaxFlowMinCutRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(4)
		g := New(n)
		for i := 1; i < n; i++ {
			g.AddEdge(i, rng.Intn(i), 1+rng.Float64()*4)
		}
		extra := rng.Intn(2 * n)
		for i := 0; i < extra; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				g.AddEdge(a, b, 1+rng.Float64()*4)
			}
		}
		s, tt := 0, n-1
		flow := g.MaxFlow(s, tt, nil)
		minCut := math.Inf(1)
		for mask := 0; mask < 1<<n; mask++ {
			if mask&(1<<s) == 0 || mask&(1<<tt) != 0 {
				continue
			}
			cut := 0.0
			for e := 0; e < g.NumEdges(); e++ {
				ed := g.Edge(e)
				inA := mask&(1<<ed.A) != 0
				inB := mask&(1<<ed.B) != 0
				if inA != inB {
					cut += ed.Capacity
				}
			}
			if cut < minCut {
				minCut = cut
			}
		}
		if math.Abs(flow-minCut) > 1e-6 {
			t.Fatalf("trial %d: max flow %v != min cut %v", trial, flow, minCut)
		}
	}
}

// testGraphIBM builds a fixed 17-node benchmark graph (IBM's Table-2
// shape) without importing the topo package (avoiding an import cycle).
func testGraphIBM() *Graph {
	rng := rand.New(rand.NewSource(23))
	g := New(17)
	for i := 1; i < 17; i++ {
		g.AddEdge(i, rng.Intn(i), 100)
	}
	for g.NumEdges() < 23 {
		a, b := rng.Intn(17), rng.Intn(17)
		if a != b {
			g.AddEdge(a, b, 100)
		}
	}
	return g
}
