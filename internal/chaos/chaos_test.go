package chaos

import (
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"flexile/internal/faultinject"
	"flexile/internal/obs"
	"flexile/internal/serve"
)

// TestChaosOverloadStorm: ten clients hammer a single-slot, cache-disabled
// server with 120ms deadlines while every solve takes ~30ms. The server
// must split traffic cleanly into admitted requests (bit-identical bodies,
// bounded latency) and explicit sheds (Retry-After, reason header) — never
// a generic 5xx, and never a leak.
func TestChaosOverloadStorm(t *testing.T) {
	h := New(t, serve.Config{
		CacheSize:   0,
		Workers:     -1,
		Obs:         obs.New(),
		ComputeHook: func(int) error { time.Sleep(30 * time.Millisecond); return nil },
	})
	rep := h.Storm(StormConfig{
		Seed:     1,
		Clients:  10,
		Requests: 12,
		Deadline: 120 * time.Millisecond,
		Jitter:   2 * time.Millisecond,
	})
	t.Logf("overload storm: %s p99=%v", rep, rep.P99OK())

	if len(rep.Violations) > 0 {
		t.Fatalf("overload contract violated:\n%v", rep.Violations)
	}
	if rep.OK == 0 || rep.Sheds() == 0 {
		t.Fatalf("storm must produce both admitted and shed requests: %s", rep)
	}
	if rep.Shed["quota"]+rep.Shed["breaker"] != 0 {
		t.Fatalf("only deadline sheds possible here: %s", rep)
	}
	if p99 := rep.P99OK(); p99 > time.Second {
		t.Fatalf("admitted p99 = %v: queueing leaked into admitted requests", p99)
	}
	h.Quiesce(t)
}

// TestChaosCorruptReloadStorm: a reload cycler alternates runs of corrupt
// artifact writes with restores while clients keep querying. The old
// artifact must keep serving bit-identically through every failed reload,
// the reload breaker must trip and suppress attempts, and a valid reload
// must eventually land once the cooldown admits a probe.
func TestChaosCorruptReloadStorm(t *testing.T) {
	collector := obs.New()
	h := New(t, serve.Config{
		CacheSize:        4,
		Obs:              collector,
		BreakerThreshold: 3,
		BreakerCooldown:  150 * time.Millisecond,
	})

	var suppressed atomic.Int64
	cyclerDone := make(chan struct{})
	go func() {
		defer close(cyclerDone)
		for i := 0; i < 25; i++ {
			if i%5 == 4 {
				h.Restore(t)
			} else {
				h.Corrupt(t)
			}
			if err := h.Srv.Reload(); errors.Is(err, serve.ErrReloadSuppressed) {
				suppressed.Add(1)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	rep := h.Storm(StormConfig{Seed: 2, Clients: 6, Requests: 25, Jitter: 3 * time.Millisecond})
	<-cyclerDone
	t.Logf("corrupt-reload storm: %s suppressed=%d", rep, suppressed.Load())

	if len(rep.Violations) > 0 {
		t.Fatalf("serving diverged during reload churn:\n%v", rep.Violations)
	}
	if rep.OK == 0 || rep.Degraded+rep.Sheds() != 0 {
		t.Fatalf("reload churn must not touch the serving path: %s", rep)
	}

	// Recovery: restore the artifact and retry until the breaker's cooldown
	// admits the probe that reloads it.
	h.Restore(t)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := h.Srv.Reload(); err == nil {
			break
		} else if errors.Is(err, serve.ErrReloadSuppressed) {
			suppressed.Add(1)
		} else {
			t.Fatalf("recovery reload failed outright: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("reload breaker never admitted the recovery probe")
		}
		time.Sleep(20 * time.Millisecond)
	}
	for q := 0; q < h.Scenarios(); q++ {
		h.Get(t, q)
	}

	m := collector.Snapshot().Serve
	if m.ReloadErrors < 3 || m.BreakerTrips < 1 || m.ReloadsSkipped < 1 {
		t.Fatalf("reload breaker never engaged: %+v (suppressed=%d)", m, suppressed.Load())
	}
	if suppressed.Load() != m.ReloadsSkipped {
		t.Fatalf("suppressed reloads seen by cycler (%d) != counter (%d)", suppressed.Load(), m.ReloadsSkipped)
	}
	h.Quiesce(t)
}

// TestChaosFailingSolveBreakerStorm: every solve fails while the fault
// window is open. States warmed before the window must degrade to their
// marked stale answers (never a 5xx), the recompute breaker must trip,
// cold states must shed with the breaker reason, and once the faults
// clear the breaker's probe must restore live bit-identical serving.
func TestChaosFailingSolveBreakerStorm(t *testing.T) {
	var faultsOn atomic.Bool
	var attempts atomic.Int64
	inj := faultinject.New(11, 1.0, faultinject.SingularBasis)
	collector := obs.New()
	h := New(t, serve.Config{
		CacheSize:        0, // no response cache: every request exercises the solve path
		Obs:              collector,
		BreakerThreshold: 3,
		BreakerCooldown:  600 * time.Millisecond,
		ComputeHook: func(q int) error {
			if !faultsOn.Load() {
				return nil
			}
			return inj.Hook(q, int(attempts.Add(1)))
		},
	})

	// Warm the last-known-good store for all but the last scenario; the
	// cold one is how we observe the breaker-shed path.
	cold := h.Scenarios() - 1
	for q := 0; q < cold; q++ {
		h.Get(t, q)
	}

	faultsOn.Store(true)
	rep := h.Storm(StormConfig{
		Seed:     3,
		Clients:  4,
		Requests: 10,
		Scenarios: func() []int {
			warm := make([]int, cold)
			for q := range warm {
				warm[q] = q
			}
			return warm
		}(),
	})
	t.Logf("failing-solve storm: %s", rep)
	if len(rep.Violations) > 0 {
		t.Fatalf("degraded serving violated the contract:\n%v", rep.Violations)
	}
	if rep.OK != 0 || rep.Degraded == 0 {
		t.Fatalf("with every solve failing, warmed states must all degrade: %s", rep)
	}
	if m := collector.Snapshot().Serve; m.BreakerTrips < 1 || m.RecomputeErrors < 3 {
		t.Fatalf("recompute breaker never engaged: %+v", m)
	}

	// The cold scenario has no stale answer: with the breaker open it must
	// shed with the breaker reason, not 500.
	resp, err := http.Get(h.urls[cold])
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("X-Flexile-Shed") != "breaker" {
		t.Fatalf("cold state under open breaker: %d shed=%q body=%s",
			resp.StatusCode, resp.Header.Get("X-Flexile-Shed"), body)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("breaker shed without Retry-After: %q", resp.Header.Get("Retry-After"))
	}

	// Faults clear, the cooldown passes, one probe closes the breaker, and
	// every scenario — including the cold one — serves live and exact.
	faultsOn.Store(false)
	time.Sleep(700 * time.Millisecond)
	for q := 0; q < h.Scenarios(); q++ {
		h.Get(t, q)
	}
	h.Quiesce(t)
}

// TestChaosClientDisconnectStorm: clients with a timeout shorter than the
// solve abandon their requests mid-flight. Detached recomputation means
// the abandoned solves still complete and fill the cache, the server
// never errors, and nothing leaks.
func TestChaosClientDisconnectStorm(t *testing.T) {
	collector := obs.New()
	h := New(t, serve.Config{
		CacheSize:   64,
		Obs:         collector,
		ComputeHook: func(int) error { time.Sleep(25 * time.Millisecond); return nil },
	})
	rep := h.Storm(StormConfig{
		Seed:     4,
		Clients:  8,
		Requests: 6,
		Timeout:  10 * time.Millisecond, // shorter than any solve: guaranteed disconnects
	})
	t.Logf("disconnect storm: %s", rep)
	if len(rep.Violations) > 0 {
		t.Fatalf("disconnect storm violations:\n%v", rep.Violations)
	}
	if rep.Disconnect == 0 {
		t.Fatalf("storm produced no disconnects: %s", rep)
	}

	// Every abandoned solve must have landed: a full sweep now is all
	// exact answers, and the counters show completed recomputes with no
	// errors.
	for q := 0; q < h.Scenarios(); q++ {
		h.Get(t, q)
	}
	m := collector.Snapshot().Serve
	if m.RecomputeErrors != 0 || m.Degraded != 0 {
		t.Fatalf("disconnects caused server-side failures: %+v", m)
	}
	if m.Recomputes == 0 || m.CacheHits == 0 {
		t.Fatalf("detached recomputes did not warm the cache: %+v", m)
	}
	h.Quiesce(t)
}

// TestChaosRegistryFlappingArtifact: mixed-tenant batch traffic hammers a
// three-artifact registry while one artifact flaps corrupt on disk and
// fleet reloads keep firing. The flapping artifact's reload breaker must
// trip without touching its siblings — every healthy artifact keeps
// serving bit-identical 200s and reloading cleanly — and the whole fleet
// must quiesce without leaking a goroutine.
func TestChaosRegistryFlappingArtifact(t *testing.T) {
	h := NewRegistryHarness(t, serve.Config{
		CacheSize:        32,
		Workers:          4,
		Obs:              obs.New(),
		BreakerThreshold: 3,
		BreakerCooldown:  time.Minute, // long: the tripped breaker must stay open for assertion
	}, 3)
	flapping := h.Names[0]

	// Flap concurrently with the storm: corrupt the artifact on disk, then
	// drive fleet reloads. The first BreakerThreshold attempts fail and trip
	// the per-artifact reload breaker; further attempts are suppressed.
	// Healthy artifacts reload successfully on every sweep.
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.Corrupt(t, flapping)
		for i := 0; i < 5; i++ {
			if err := h.Reg.Reload(); err == nil {
				t.Error("fleet reload with corrupt artifact reported no error")
			} else if !strings.Contains(err.Error(), flapping) {
				t.Errorf("reload error does not name the corrupt artifact: %v", err)
			}
			time.Sleep(10 * time.Millisecond)
		}
		h.Restore(t, flapping)
	}()

	rep := h.BatchStorm(RegistryStormConfig{
		Seed:     7,
		Clients:  8,
		Requests: 25,
		Batch:    6,
		Tenant:   func(w int) string { return "tenant-" + strconv.Itoa(w%3) },
	})
	<-done
	t.Logf("registry storm: %s", rep)

	if len(rep.Violations) > 0 {
		t.Fatalf("registry storm contract violated:\n%v", rep.Violations)
	}
	// Every artifact — including the flapping one, which keeps serving its
	// retained state through failed reloads — produced bit-identical 200s.
	for _, name := range h.Names {
		if rep.OK[name] == 0 {
			t.Fatalf("artifact %s served no verified 200s: %s", name, rep)
		}
	}
	if len(rep.Shed) != 0 {
		t.Fatalf("no quotas or deadlines configured, yet sheds occurred: %s", rep)
	}

	// Breaker isolation: only the flapping artifact's reload breaker opened.
	status := h.Status(t)
	flap := status[flapping]
	if flap.ReloadErrors < int64(3) {
		t.Fatalf("flapping artifact reload errors = %d, want >= 3 (breaker threshold)", flap.ReloadErrors)
	}
	if flap.ReloadBreaker != "open" {
		t.Fatalf("flapping artifact reload breaker = %q, want open", flap.ReloadBreaker)
	}
	if flap.ReloadsSkipped == 0 {
		t.Fatalf("open breaker never suppressed a reload: %+v", flap)
	}
	for _, name := range h.Names[1:] {
		row := status[name]
		if row.ReloadErrors != 0 || row.ReloadBreaker != "closed" {
			t.Fatalf("healthy artifact %s polluted by sibling's failures: %+v", name, row)
		}
		if row.Reloads < 5 {
			t.Fatalf("healthy artifact %s reloads = %d, want >= 5 (one per sweep)", name, row.Reloads)
		}
		if row.Requests == 0 {
			t.Fatalf("healthy artifact %s saw no traffic: %+v", name, row)
		}
	}
	h.Quiesce(t)
}
