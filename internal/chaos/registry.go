package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"flexile/internal/failure"
	flexscheme "flexile/internal/scheme/flexile"
	"flexile/internal/serve"
	"flexile/internal/te"
	"flexile/internal/topo"
	"flexile/internal/tunnels"
)

// RegistryHarness owns a multi-artifact registry under test: n scaled
// triangle artifacts on disk (each with different demands, so the oracle
// bodies differ per artifact and cross-artifact routing mixups surface as
// bit mismatches), the live registry and listener, per-artifact oracle
// bodies, and the goroutine baseline for Quiesce.
type RegistryHarness struct {
	Reg   *serve.Registry
	TS    *httptest.Server
	Dir   string
	Names []string

	blobs    map[string][]byte // valid artifact bytes per name
	oracle   map[string][][]byte
	failed   [][]int // scenario index → failure state (same enumeration for all)
	baseline int
}

// NewRegistryHarness builds n distinct triangle artifacts named art0..artN
// in a fresh directory, computes every artifact's oracle allocation for
// every scenario, and starts a registry with cfg over a loopback listener.
func NewRegistryHarness(t testing.TB, cfg serve.Config, n int) *RegistryHarness {
	t.Helper()
	baseline := runtime.NumGoroutine()
	h := &RegistryHarness{
		Dir:    t.TempDir(),
		blobs:  make(map[string][]byte),
		oracle: make(map[string][][]byte),
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("art%d", i)
		tp := topo.Triangle()
		inst := te.NewInstance(tp, []te.Class{
			{Name: "single", Beta: 0.99, Weight: 1, Tunnels: tunnels.SingleClass(3)},
		})
		scale := float64(1 + 2*i)
		inst.Demand[0][0] = scale
		inst.Demand[0][1] = scale
		inst.LinkProbs = []float64{0.01, 0.01, 0.01}
		inst.Scenarios = failure.Enumerate(inst.LinkProbs, 0)
		opt := flexscheme.Options{Workers: 2}
		off, err := flexscheme.Offline(inst, opt)
		if err != nil {
			t.Fatalf("chaos: offline solve (%s): %v", name, err)
		}
		art, err := serve.Build(inst, off, opt)
		if err != nil {
			t.Fatalf("chaos: build artifact (%s): %v", name, err)
		}
		blob := art.Encode()
		if err := os.WriteFile(filepath.Join(h.Dir, name+serve.ArtifactExt), blob, 0o644); err != nil {
			t.Fatal(err)
		}
		h.blobs[name] = blob
		h.Names = append(h.Names, name)
		bodies := make([][]byte, len(inst.Scenarios))
		for q, scen := range inst.Scenarios {
			res, err := flexscheme.Online(inst, off, q, opt)
			if err != nil {
				t.Fatalf("chaos: oracle Online(%s, %d): %v", name, q, err)
			}
			body, err := json.Marshal(serve.AllocResponse{Scenario: q, Prob: scen.Prob, Frac: res.Frac, X: res.X})
			if err != nil {
				t.Fatal(err)
			}
			bodies[q] = body
		}
		h.oracle[name] = bodies
		if h.failed == nil {
			h.failed = make([][]int, len(inst.Scenarios))
			for q, scen := range inst.Scenarios {
				h.failed[q] = scen.Failed
			}
		}
	}

	reg, err := serve.NewRegistry(h.Dir, cfg)
	if err != nil {
		t.Fatalf("chaos: NewRegistry: %v", err)
	}
	h.Reg = reg
	h.TS = httptest.NewServer(reg)
	h.baseline = baseline
	return h
}

// Scenarios reports how many failure scenarios each artifact enumerates.
func (h *RegistryHarness) Scenarios() int { return len(h.failed) }

// Corrupt overwrites one artifact file with garbage so its next reload
// fails; Restore writes the valid bytes back.
func (h *RegistryHarness) Corrupt(t testing.TB, name string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(h.Dir, name+serve.ArtifactExt), []byte("chaos: not an artifact"), 0o644); err != nil {
		t.Fatal(err)
	}
}

func (h *RegistryHarness) Restore(t testing.TB, name string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(h.Dir, name+serve.ArtifactExt), h.blobs[name], 0o644); err != nil {
		t.Fatal(err)
	}
}

// Status fetches the live per-artifact status rows from GET /v1/artifacts.
func (h *RegistryHarness) Status(t testing.TB) map[string]serve.ArtifactStatus {
	t.Helper()
	resp, err := http.Get(h.TS.URL + "/v1/artifacts")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rows []serve.ArtifactStatus
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]serve.ArtifactStatus, len(rows))
	for _, row := range rows {
		out[row.Name] = row
	}
	return out
}

// Quiesce closes the listener and registry, then polls the goroutine count
// back to the pre-harness baseline (see Harness.Quiesce).
func (h *RegistryHarness) Quiesce(t testing.TB) {
	t.Helper()
	h.TS.Close()
	h.Reg.Close()
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= h.baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("chaos: goroutine leak: %d live, baseline %d\n%s", n, h.baseline, buf)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// RegistryStormConfig scripts a mixed-tenant batch storm across the
// registry's artifacts. All client randomness derives from Seed.
type RegistryStormConfig struct {
	Seed     uint64
	Clients  int
	Requests int // batch requests per client
	Batch    int // queries per batch request
	Tenant   func(client int) string
}

// RegistryReport accumulates a registry storm's per-entry outcomes, keyed
// by artifact so breaker-isolation assertions can tell healthy names from
// the flapping one.
type RegistryReport struct {
	mu         sync.Mutex
	OK         map[string]int // non-degraded bit-identical 200 entries
	Dedup      map[string]int
	Degraded   map[string]int
	Shed       map[string]int // by shed reason, all artifacts
	Violations []string
}

func (r *RegistryReport) violate(format string, args ...any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.Violations) < 20 {
		r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
	}
}

// String renders a one-line storm summary for test logs.
func (r *RegistryReport) String() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return fmt.Sprintf("ok=%v dedup=%v degraded=%v shed=%v violations=%d",
		r.OK, r.Dedup, r.Degraded, r.Shed, len(r.Violations))
}

// BatchStorm drives cfg.Clients concurrent clients, each issuing
// cfg.Requests batch envelopes of cfg.Batch seeded-random (artifact,
// scenario) queries, and classifies every entry: a non-degraded 200 must
// be bit-identical to that artifact's oracle, sheds must carry a reason,
// anything else is a violation.
func (h *RegistryHarness) BatchStorm(cfg RegistryStormConfig) *RegistryReport {
	rep := &RegistryReport{
		OK:       make(map[string]int),
		Dedup:    make(map[string]int),
		Degraded: make(map[string]int),
		Shed:     make(map[string]int),
	}
	client := &http.Client{}
	var wg sync.WaitGroup
	for w := 0; w < cfg.Clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := &rng{s: cfg.Seed ^ (uint64(w+1) * 0x9e3779b97f4a7c15)}
			for i := 0; i < cfg.Requests; i++ {
				h.oneBatch(client, cfg, rep, r, w)
			}
		}(w)
	}
	wg.Wait()
	return rep
}

func (h *RegistryHarness) oneBatch(client *http.Client, cfg RegistryStormConfig, rep *RegistryReport, r *rng, w int) {
	type query struct {
		Artifact string `json:"artifact"`
		Failed   []int  `json:"failed"`
	}
	queries := make([]query, cfg.Batch)
	for i := range queries {
		name := h.Names[r.intn(len(h.Names))]
		queries[i] = query{Artifact: name, Failed: h.failed[r.intn(len(h.failed))]}
	}
	body, err := json.Marshal(map[string]any{"queries": queries})
	if err != nil {
		rep.violate("client %d: marshal: %v", w, err)
		return
	}
	req, err := http.NewRequest(http.MethodPost, h.TS.URL+"/v1/alloc/batch", bytes.NewReader(body))
	if err != nil {
		rep.violate("client %d: build request: %v", w, err)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if cfg.Tenant != nil {
		req.Header.Set("X-Tenant", cfg.Tenant(w))
	}
	resp, err := client.Do(req)
	if err != nil {
		rep.violate("client %d: transport: %v", w, err)
		return
	}
	data, err := readAllClose(resp)
	if err != nil {
		rep.violate("client %d: read: %v", w, err)
		return
	}
	if resp.StatusCode != http.StatusOK {
		rep.violate("client %d: envelope status %d: %.120s", w, resp.StatusCode, data)
		return
	}
	var env struct {
		Results []struct {
			Status   int             `json:"status"`
			Artifact string          `json:"artifact"`
			Scenario int             `json:"scenario"`
			Cache    string          `json:"cache"`
			Degraded bool            `json:"degraded"`
			Shed     string          `json:"shed"`
			Body     json.RawMessage `json:"body"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &env); err != nil {
		rep.violate("client %d: envelope decode: %v", w, err)
		return
	}
	if len(env.Results) != len(queries) {
		rep.violate("client %d: %d results for %d queries", w, len(env.Results), len(queries))
		return
	}
	for i, e := range env.Results {
		name := queries[i].Artifact
		switch {
		case e.Status == http.StatusOK && e.Degraded:
			rep.mu.Lock()
			rep.Degraded[name]++
			rep.mu.Unlock()
		case e.Status == http.StatusOK:
			if e.Scenario < 0 || e.Scenario >= len(h.oracle[name]) {
				rep.violate("client %d entry %d: scenario %d out of range", w, i, e.Scenario)
				continue
			}
			if !bytes.Equal([]byte(e.Body), h.oracle[name][e.Scenario]) {
				rep.violate("client %d entry %d: %s scenario %d body differs from oracle", w, i, name, e.Scenario)
				continue
			}
			rep.mu.Lock()
			if e.Cache == "dedup" {
				rep.Dedup[name]++
			} else {
				rep.OK[name]++
			}
			rep.mu.Unlock()
		case e.Status == http.StatusServiceUnavailable || e.Status == http.StatusTooManyRequests:
			if e.Shed == "" {
				rep.violate("client %d entry %d: %d without shed reason", w, i, e.Status)
				continue
			}
			rep.mu.Lock()
			rep.Shed[e.Shed]++
			rep.mu.Unlock()
		default:
			rep.violate("client %d entry %d: %s status %d", w, i, name, e.Status)
		}
	}
}

func readAllClose(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}
