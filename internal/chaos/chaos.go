// Package chaos is a seeded storm harness for the allocation server: it
// drives a live serve.Server over a loopback listener through scripted
// overload, failing-solve, corrupt-reload and client-disconnect storms,
// and verifies the overload contract (DESIGN.md §13) from the outside —
// every refusal is an explicit shed with a Retry-After hint, every
// non-degraded success is bit-identical to the library's Online result,
// degraded answers are marked, and nothing leaks once the storm passes.
//
// Determinism contract: client behavior (scenario choice, think-time
// jitter, disconnect timing) is a pure function of StormConfig.Seed via
// splitmix64, so a chaos failure reproduces under the same seed. Faults
// inside the server are scripted separately with internal/faultinject or
// a Config.ComputeHook by the individual storm tests.
//
// The package imports testing for setup fatals; it is linked only into
// test binaries.
package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"flexile/internal/failure"
	flexscheme "flexile/internal/scheme/flexile"
	"flexile/internal/serve"
	"flexile/internal/te"
	"flexile/internal/topo"
	"flexile/internal/tunnels"
)

// rng is a splitmix64 stream: deterministic, platform-independent, and
// cheap to fork (each storm client derives its own from the storm seed).
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	x := r.s
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// Harness owns one server under test: the triangle artifact on disk (so
// storms can corrupt and restore it), the live server and listener, the
// per-scenario oracle bodies computed directly from the library, and the
// goroutine baseline captured before anything was started.
type Harness struct {
	Srv  *serve.Server
	TS   *httptest.Server
	Path string // artifact file; Corrupt/Restore rewrite it

	blob     []byte // valid artifact bytes
	oracle   [][]byte
	urls     []string
	baseline int
}

// New builds the canonical triangle fixture, solves the oracle allocation
// for every enumerated scenario, and starts a server with cfg over a
// loopback listener. The goroutine baseline is captured first, so Quiesce
// can later prove the whole storm unwound.
func New(t testing.TB, cfg serve.Config) *Harness {
	t.Helper()
	baseline := runtime.NumGoroutine()

	tp := topo.Triangle()
	inst := te.NewInstance(tp, []te.Class{
		{Name: "single", Beta: 0.99, Weight: 1, Tunnels: tunnels.SingleClass(3)},
	})
	inst.Demand[0][0] = 1
	inst.Demand[0][1] = 1
	inst.LinkProbs = []float64{0.01, 0.01, 0.01}
	inst.Scenarios = failure.Enumerate(inst.LinkProbs, 0)

	opt := flexscheme.Options{Workers: 2}
	off, err := flexscheme.Offline(inst, opt)
	if err != nil {
		t.Fatalf("chaos: offline solve: %v", err)
	}
	art, err := serve.Build(inst, off, opt)
	if err != nil {
		t.Fatalf("chaos: build artifact: %v", err)
	}
	blob := art.Encode()
	path := filepath.Join(t.TempDir(), "chaos.flxa")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	srv, err := serve.New(path, cfg)
	if err != nil {
		t.Fatalf("chaos: serve.New: %v", err)
	}
	ts := httptest.NewServer(srv)

	h := &Harness{Srv: srv, TS: ts, Path: path, blob: blob, baseline: baseline}
	h.oracle = make([][]byte, len(inst.Scenarios))
	h.urls = make([]string, len(inst.Scenarios))
	for q, scen := range inst.Scenarios {
		res, err := flexscheme.Online(inst, off, q, opt)
		if err != nil {
			t.Fatalf("chaos: oracle Online(%d): %v", q, err)
		}
		body, err := json.Marshal(serve.AllocResponse{Scenario: q, Prob: scen.Prob, Frac: res.Frac, X: res.X})
		if err != nil {
			t.Fatal(err)
		}
		h.oracle[q] = body
		var parts []string
		for _, e := range scen.Failed {
			parts = append(parts, strconv.Itoa(e))
		}
		h.urls[q] = ts.URL + "/v1/alloc?failed=" + strings.Join(parts, ",")
	}
	return h
}

// Scenarios reports how many failure scenarios the fixture enumerates.
func (h *Harness) Scenarios() int { return len(h.oracle) }

// Oracle returns the expected response body for scenario q.
func (h *Harness) Oracle(q int) []byte { return h.oracle[q] }

// Corrupt overwrites the artifact file with garbage, so the next reload
// must fail; Restore writes the valid bytes back.
func (h *Harness) Corrupt(t testing.TB) {
	t.Helper()
	if err := os.WriteFile(h.Path, []byte("chaos: not an artifact"), 0o644); err != nil {
		t.Fatal(err)
	}
}

func (h *Harness) Restore(t testing.TB) {
	t.Helper()
	if err := os.WriteFile(h.Path, h.blob, 0o644); err != nil {
		t.Fatal(err)
	}
}

// Get issues one clean request for scenario q (no deadline, no tenant) and
// fails the test unless it is a non-degraded 200 bit-identical to the
// oracle — the post-storm sanity probe.
func (h *Harness) Get(t testing.TB, q int) {
	t.Helper()
	resp, err := http.Get(h.urls[q])
	if err != nil {
		t.Fatalf("chaos: probe scenario %d: %v", q, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Flexile-Degraded") != "" {
		t.Fatalf("chaos: probe scenario %d: status %d degraded=%q body=%s",
			q, resp.StatusCode, resp.Header.Get("X-Flexile-Degraded"), body)
	}
	if !bytes.Equal(body, h.oracle[q]) {
		t.Fatalf("chaos: probe scenario %d: body differs from oracle", q)
	}
}

// Quiesce closes the listener and client connections, then polls until
// the goroutine count returns to the pre-harness baseline (plus a small
// allowance for the runtime's own background workers). A storm that
// leaked a waiter, a detached recompute, or a watcher fails here.
func (h *Harness) Quiesce(t testing.TB) {
	t.Helper()
	h.TS.Close()
	h.Srv.Close()
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= h.baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("chaos: goroutine leak: %d live, baseline %d\n%s", n, h.baseline, buf)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// StormConfig scripts one client storm. All randomness derives from Seed.
type StormConfig struct {
	Seed     uint64
	Clients  int
	Requests int           // per client
	Deadline time.Duration // X-Request-Deadline header; 0 sends none
	Tenant   func(client int) string
	// Scenarios restricts the storm to these scenario indices; nil means
	// all enumerated scenarios.
	Scenarios []int
	// Jitter is the maximum think time a client sleeps between requests
	// (uniform in [0, Jitter)); 0 hammers back to back.
	Jitter time.Duration
	// Timeout is a client-side HTTP timeout; expiring mid-request closes
	// the connection, which is exactly what the disconnect storm wants.
	// 0 means no client timeout.
	Timeout time.Duration
}

// Report accumulates a storm's outcomes. Violations holds invariant
// breaches observed from the client side — a non-shed 5xx, a shed without
// Retry-After, an unmarked response that differs from the oracle — and
// must be empty for every storm.
type Report struct {
	mu         sync.Mutex
	OK         int
	Degraded   int
	Shed       map[string]int // by X-Flexile-Shed reason
	Disconnect int            // client-side transport failures
	Violations []string
	okLat      []time.Duration
}

func (r *Report) violate(format string, args ...any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.Violations) < 20 { // enough to diagnose, bounded to stay readable
		r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
	}
}

// P99OK returns the 99th-percentile client-observed latency of the
// admitted (200) requests, or 0 when none succeeded.
func (r *Report) P99OK() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.okLat) == 0 {
		return 0
	}
	lats := append([]time.Duration(nil), r.okLat...)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats[len(lats)*99/100]
}

// Sheds sums sheds across all reasons.
func (r *Report) Sheds() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, v := range r.Shed {
		n += v
	}
	return n
}

// String renders a one-line storm summary for test logs.
func (r *Report) String() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return fmt.Sprintf("ok=%d degraded=%d shed=%v disconnect=%d violations=%d",
		r.OK, r.Degraded, r.Shed, r.Disconnect, len(r.Violations))
}

// Storm runs cfg.Clients concurrent clients, each issuing cfg.Requests
// seeded-random scenario queries, classifying every response against the
// overload contract. It returns when every client has finished.
func (h *Harness) Storm(cfg StormConfig) *Report {
	rep := &Report{Shed: make(map[string]int)}
	client := &http.Client{Timeout: cfg.Timeout}
	var wg sync.WaitGroup
	for w := 0; w < cfg.Clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := &rng{s: cfg.Seed ^ (uint64(w+1) * 0x9e3779b97f4a7c15)}
			for i := 0; i < cfg.Requests; i++ {
				var q int
				if len(cfg.Scenarios) > 0 {
					q = cfg.Scenarios[r.intn(len(cfg.Scenarios))]
				} else {
					q = r.intn(len(h.urls))
				}
				h.one(client, cfg, rep, w, q)
				if cfg.Jitter > 0 {
					time.Sleep(time.Duration(r.next() % uint64(cfg.Jitter)))
				}
			}
		}(w)
	}
	wg.Wait()
	return rep
}

// one issues a single storm request and classifies the outcome.
func (h *Harness) one(client *http.Client, cfg StormConfig, rep *Report, w, q int) {
	req, err := http.NewRequest(http.MethodGet, h.urls[q], nil)
	if err != nil {
		rep.violate("client %d: build request: %v", w, err)
		return
	}
	if cfg.Deadline > 0 {
		req.Header.Set("X-Request-Deadline", cfg.Deadline.String())
	}
	if cfg.Tenant != nil {
		req.Header.Set("X-Tenant", cfg.Tenant(w))
	}
	begin := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		// Client-side timeout or disconnect: legal chaos, the server-side
		// consequences are what Quiesce and the post-storm probes check.
		rep.mu.Lock()
		rep.Disconnect++
		rep.mu.Unlock()
		return
	}
	lat := time.Since(begin)
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		rep.mu.Lock()
		rep.Disconnect++
		rep.mu.Unlock()
		return
	}

	switch resp.StatusCode {
	case http.StatusOK:
		if resp.Header.Get("X-Flexile-Degraded") != "" {
			rep.mu.Lock()
			rep.Degraded++
			rep.mu.Unlock()
			return
		}
		if !bytes.Equal(body, h.oracle[q]) {
			rep.violate("client %d scenario %d: unmarked 200 differs from oracle", w, q)
			return
		}
		rep.mu.Lock()
		rep.OK++
		rep.okLat = append(rep.okLat, lat)
		rep.mu.Unlock()
	case http.StatusServiceUnavailable, http.StatusTooManyRequests:
		reason := resp.Header.Get("X-Flexile-Shed")
		if reason == "" {
			rep.violate("client %d scenario %d: %d without X-Flexile-Shed: %s", w, q, resp.StatusCode, body)
			return
		}
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
			rep.violate("client %d scenario %d: shed %q without usable Retry-After (%q)",
				w, q, reason, resp.Header.Get("Retry-After"))
			return
		}
		rep.mu.Lock()
		rep.Shed[reason]++
		rep.mu.Unlock()
	default:
		rep.violate("client %d scenario %d: status %d: %s", w, q, resp.StatusCode, body)
	}
}
