package benchjson

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

const sample = `goos: linux
goarch: amd64
pkg: flexile
cpu: Intel(R) Xeon(R)
BenchmarkFig10-8   	       2	 512345678 ns/op	        12.3 flexile-med-%	        58.0 swanmm-med-%
BenchmarkOfflineDecomposition-8   	       5	 204060801 ns/op
BenchmarkOfflineParallel   	       3	 100000000 ns/op	         3.10 speedup-x	         8.00 workers
PASS
ok  	flexile	12.345s
`

func TestParseSample(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Meta["goos"] != "linux" || rep.Meta["pkg"] != "flexile" {
		t.Fatalf("meta = %v", rep.Meta)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(rep.Results))
	}
	r0 := rep.Results[0]
	if r0.Name != "BenchmarkFig10" || r0.Procs != 8 || r0.Iterations != 2 {
		t.Fatalf("r0 = %+v", r0)
	}
	if r0.NsPerOp != 512345678 {
		t.Fatalf("r0 ns/op = %v", r0.NsPerOp)
	}
	if r0.Metrics["flexile-med-%"] != 12.3 || r0.Metrics["swanmm-med-%"] != 58.0 {
		t.Fatalf("r0 metrics = %v", r0.Metrics)
	}
	if r1 := rep.Results[1]; r1.Metrics != nil {
		t.Fatalf("r1 should have no custom metrics, got %v", r1.Metrics)
	}
	// No -procs suffix → procs defaults to 1.
	if r2 := rep.Results[2]; r2.Procs != 1 || r2.Metrics["speedup-x"] != 3.10 {
		t.Fatalf("r2 = %+v", r2)
	}
}

func TestWriteRoundTrip(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	stamp := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	if err := Write(&buf, rep, stamp); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Generated != "2026-08-05T12:00:00Z" {
		t.Fatalf("generated = %q", back.Generated)
	}
	if len(back.Results) != 3 || back.Results[0].Metrics["flexile-med-%"] != 12.3 {
		t.Fatalf("round trip lost data: %+v", back.Results)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	rep, err := Parse(strings.NewReader("=== RUN TestFoo\n--- PASS: TestFoo\nBenchmarkX --- FAIL\nrandom text\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 0 {
		t.Fatalf("noise parsed as results: %+v", rep.Results)
	}
}
