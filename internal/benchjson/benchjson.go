// Package benchjson converts `go test -bench` text output into a stable
// JSON document so per-PR performance trajectories (BENCH_*.json) can be
// recorded and diffed. The standard benchmark format carries each figure's
// headline numbers as custom metrics (b.ReportMetric), so one parse yields
// both wall-clock and result-quality series.
package benchjson

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name without the -GOMAXPROCS suffix.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (1 when absent).
	Procs int `json:"procs"`
	// Iterations is the measured b.N.
	Iterations int `json:"iterations"`
	// NsPerOp is the ns/op column.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every other unit column (custom b.ReportMetric units,
	// B/op, allocs/op, MB/s, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the emitted JSON document.
type Report struct {
	// Generated is the emission timestamp (RFC 3339).
	Generated string `json:"generated"`
	// Meta carries the bench header lines (goos, goarch, pkg, cpu).
	Meta map[string]string `json:"meta,omitempty"`
	// Results holds one entry per benchmark line, in input order.
	Results []Result `json:"results"`
}

// Parse reads `go test -bench` output and returns the report (without a
// timestamp; Write stamps it). Lines that are not benchmark results or
// known header lines are ignored, so piping full test output works.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{Meta: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				rep.Meta[key] = v
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue // e.g. "BenchmarkFoo   --- FAIL" or a name-only line
		}
		res, err := parseLine(fields)
		if err != nil {
			return nil, fmt.Errorf("benchjson: %q: %w", line, err)
		}
		rep.Results = append(rep.Results, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

func parseLine(fields []string) (Result, error) {
	name, procs := fields[0], 1
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			name, procs = name[:i], p
		}
	}
	iters, err := strconv.Atoi(fields[1])
	if err != nil {
		return Result{}, fmt.Errorf("iterations: %w", err)
	}
	res := Result{Name: name, Procs: procs, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, fmt.Errorf("value %q: %w", fields[i], err)
		}
		if unit := fields[i+1]; unit == "ns/op" {
			res.NsPerOp = v
		} else {
			res.Metrics[unit] = v
		}
	}
	if len(res.Metrics) == 0 {
		res.Metrics = nil
	}
	return res, nil
}

// Write stamps the report with now and emits indented JSON.
func Write(w io.Writer, rep *Report, now time.Time) error {
	rep.Generated = now.UTC().Format(time.RFC3339)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
