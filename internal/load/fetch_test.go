package load

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestFetch pins the single-query raw-response path the soak hypothesis
// replays allocations through: the request line and headers Fetch sends,
// and the status/disposition/body it hands back — including the shed and
// degraded variants Run would have aggregated away.
func TestFetch(t *testing.T) {
	var got struct {
		url, artifact, tenant, deadline string
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.url = r.URL.String()
		got.artifact = r.Header.Get("X-Flexile-Artifact")
		got.tenant = r.Header.Get("X-Tenant")
		got.deadline = r.Header.Get("X-Request-Deadline")
		switch r.Header.Get("X-Tenant") {
		case "over-quota":
			w.Header().Set("X-Flexile-Shed", "quota")
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
		case "degraded":
			w.Header().Set("X-Flexile-Cache", "stale")
			w.Header().Set("X-Flexile-Degraded", "stale")
			w.Write([]byte(`{"stale":true}`))
		default:
			w.Header().Set("X-Flexile-Cache", "hit")
			w.Write([]byte(`{"scenario":3}`))
		}
	}))
	defer srv.Close()
	ctx := context.Background()

	f, err := Fetch(ctx, srv.Client(), srv.URL,
		Request{Tenant: "t0", Queries: []Query{{Artifact: "ibm", Failed: []int{3, 7}}}},
		Config{Deadline: 250 * time.Millisecond})
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if got.url != "/v1/alloc?failed=3,7" {
		t.Errorf("request URL = %q, want /v1/alloc?failed=3,7", got.url)
	}
	if got.artifact != "ibm" || got.tenant != "t0" || got.deadline != "250ms" {
		t.Errorf("headers = artifact %q tenant %q deadline %q, want ibm/t0/250ms", got.artifact, got.tenant, got.deadline)
	}
	if f.Status != http.StatusOK || f.Cache != "hit" || f.Shed != "" || f.Degraded || string(f.Body) != `{"scenario":3}` {
		t.Errorf("Fetched = %+v, want 200 hit with body", f)
	}

	// No artifact, no tenant, no deadline: none of the headers are sent.
	if _, err := Fetch(ctx, srv.Client(), srv.URL, Request{Queries: []Query{{}}}, Config{}); err != nil {
		t.Fatalf("bare Fetch: %v", err)
	}
	if got.url != "/v1/alloc?failed=" || got.artifact != "" || got.tenant != "" || got.deadline != "" {
		t.Errorf("bare request leaked headers: url %q artifact %q tenant %q deadline %q", got.url, got.artifact, got.tenant, got.deadline)
	}

	f, err = Fetch(ctx, srv.Client(), srv.URL, Request{Tenant: "over-quota", Queries: []Query{{}}}, Config{})
	if err != nil {
		t.Fatalf("shed Fetch: %v", err)
	}
	if f.Status != http.StatusTooManyRequests || f.Shed != "quota" {
		t.Errorf("shed Fetched = %+v, want 429 shed=quota", f)
	}

	f, err = Fetch(ctx, srv.Client(), srv.URL, Request{Tenant: "degraded", Queries: []Query{{}}}, Config{})
	if err != nil {
		t.Fatalf("degraded Fetch: %v", err)
	}
	if !f.Degraded || f.Cache != "stale" {
		t.Errorf("degraded Fetched = %+v, want stale+degraded", f)
	}

	// Batch plans have no single body to return.
	if _, err := Fetch(ctx, srv.Client(), srv.URL, Request{Queries: []Query{{}, {}}}, Config{}); err == nil {
		t.Error("Fetch accepted a batch request")
	}
	// A dead server surfaces the transport error.
	if _, err := Fetch(ctx, http.DefaultClient, "http://127.0.0.1:1", Request{Queries: []Query{{}}}, Config{}); err == nil {
		t.Error("Fetch swallowed a connection error")
	}
}
