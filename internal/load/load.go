// Package load is the open-loop traffic engine behind cmd/flexile-load
// (DESIGN.md §14). A Plan — every request's firing offset, tenant, and
// queries — is a pure function of the seed, built entirely before the
// first byte hits the wire, so two runs at the same seed against the same
// server issue identical request streams; arrivals are open-loop Poisson
// (exponential inter-arrival times at the configured QPS), so a slow
// server faces mounting concurrency instead of a politely backing-off
// client, which is what makes shed-rate measurements honest.
package load

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"flexile/internal/benchjson"
)

// Config describes one load run.
type Config struct {
	// Seed fixes the whole request stream; same seed, same Plan.
	Seed uint64
	// QPS is the open-loop HTTP request arrival rate (each request
	// carries Batch queries, so the query rate is QPS*Batch).
	QPS float64
	// Duration bounds the arrival schedule.
	Duration time.Duration
	// Batch is queries per request: <=1 sends single GET /v1/alloc
	// requests, >1 sends POST /v1/alloc/batch envelopes.
	Batch int
	// Tenants rotates X-Tenant across this many synthetic tenant ids;
	// 0 sends no header (the server's shared default bucket).
	Tenants int
	// Deadline is sent as X-Request-Deadline on every request; 0 omits it.
	Deadline time.Duration
	// Scenarios maps each artifact name ("" for unnamed single-artifact
	// addressing) to its enumerated failure states. Required, and each
	// list must be non-empty.
	Scenarios map[string][][]int
	// HotFraction is the probability a query draws from the first HotSet
	// scenarios instead of the full list — the mixed hit/miss knob: a
	// warm cache answers the hot set inline while the cold tail keeps
	// missing. 0 means uniform over all scenarios.
	HotFraction float64
	// HotSet is the hot-set size per artifact; 0 means 1, larger than
	// the scenario list is clamped.
	HotSet int
}

// Query is one allocation query in a planned request.
type Query struct {
	Artifact string `json:"artifact,omitempty"`
	Failed   []int  `json:"failed"`
}

// Request is one planned HTTP request.
type Request struct {
	// At is the firing offset from the run's start.
	At time.Duration `json:"at_ns"`
	// Tenant is the X-Tenant header value; "" sends none.
	Tenant string `json:"tenant,omitempty"`
	// ID is the request's planned X-Request-Id, derived from the seed and
	// the request's position — NOT from an rng draw, so adding ids did not
	// shift any planned stream. The server echoes it and keys its trace
	// ring entries by it, which is what lets a soak or chaos failure name
	// the exact server-side trace to pull up.
	ID string `json:"id,omitempty"`
	// Queries has exactly one entry for single-request mode.
	Queries []Query `json:"queries"`
}

// TraceParent renders the request's deterministic W3C traceparent header
// (sampled flag set, so the server always records the trace). Trace and
// span ids are a pure hash of ID; "" when the request has no ID.
func (rq Request) TraceParent() string {
	if rq.ID == "" {
		return ""
	}
	// FNV-1a over the id seeds a splitmix stream for the three id words.
	h := uint64(1469598103934665603)
	for i := 0; i < len(rq.ID); i++ {
		h ^= uint64(rq.ID[i])
		h *= 1099511628211
	}
	r := rng{s: h}
	a, b, c := r.next(), r.next(), r.next()
	if a == 0 && b == 0 {
		a = 1 // trace-id all-zero is invalid per the spec
	}
	if c == 0 {
		c = 1
	}
	return fmt.Sprintf("00-%016x%016x-%016x-01", a, b, c)
}

// Plan is a fully materialized request stream.
type Plan struct {
	Seed     uint64    `json:"seed"`
	Requests []Request `json:"requests"`
}

// rng is splitmix64, the repo's seeded-storm generator (see
// internal/chaos): tiny, fast, and stable across platforms.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	x := r.s
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// float returns a uniform draw in (0, 1].
func (r *rng) float() float64 { return (float64(r.next()>>11) + 1) / (1 << 53) }

// BuildPlan materializes the request stream for cfg — deterministically:
// the Plan depends only on cfg (in particular Seed), never on the clock
// or the server.
func BuildPlan(cfg Config) (*Plan, error) {
	if cfg.QPS <= 0 {
		return nil, fmt.Errorf("load: QPS must be positive, got %v", cfg.QPS)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("load: Duration must be positive, got %v", cfg.Duration)
	}
	if len(cfg.Scenarios) == 0 {
		return nil, fmt.Errorf("load: no scenarios configured")
	}
	arts := make([]string, 0, len(cfg.Scenarios))
	for a, keys := range cfg.Scenarios {
		if len(keys) == 0 {
			return nil, fmt.Errorf("load: artifact %q has no scenarios", a)
		}
		arts = append(arts, a)
	}
	sort.Strings(arts)
	batch := cfg.Batch
	if batch < 1 {
		batch = 1
	}

	r := rng{s: cfg.Seed}
	plan := &Plan{Seed: cfg.Seed}
	var at time.Duration
	for {
		// Poisson arrivals: exponential inter-arrival at rate QPS.
		at += time.Duration(-math.Log(r.float()) / cfg.QPS * float64(time.Second))
		if at >= cfg.Duration {
			return plan, nil
		}
		req := Request{At: at, Queries: make([]Query, batch)}
		req.ID = fmt.Sprintf("load-%x-%d", cfg.Seed, len(plan.Requests))
		if cfg.Tenants > 0 {
			req.Tenant = "load-" + strconv.Itoa(r.intn(cfg.Tenants))
		}
		for i := range req.Queries {
			a := arts[r.intn(len(arts))]
			keys := cfg.Scenarios[a]
			pick := len(keys)
			if cfg.HotFraction > 0 && r.float() <= cfg.HotFraction {
				pick = cfg.HotSet
				if pick < 1 {
					pick = 1
				}
				if pick > len(keys) {
					pick = len(keys)
				}
			}
			req.Queries[i] = Query{Artifact: a, Failed: keys[r.intn(pick)]}
		}
		plan.Requests = append(plan.Requests, req)
	}
}

// Stats aggregates one run's outcomes. Entry counts are per query (one
// batch request contributes Batch entries); latencies are per HTTP
// round-trip.
type Stats struct {
	Requests int
	Entries  int
	// Dispositions, keyed the way the server reports them: OK sums the
	// four 200 flavors plus Stale and Dedup.
	OK     int
	Hits   int
	Miss   int
	Shared int
	Dedup  int
	Stale  int
	Shed   map[string]int // quota | deadline | breaker
	// Errors counts transport failures and unexplained statuses.
	Errors    int
	Latencies []time.Duration
	Elapsed   time.Duration
	// FailedIDs holds the planned request ids (== X-Request-Id sent) of up
	// to maxFailedIDs requests that contributed to Errors, so a failure in
	// a seeded run names the exact server-side traces to pull up at
	// /debug/requests.
	FailedIDs []string
}

// maxFailedIDs caps Stats.FailedIDs; a systemic failure repeats the same
// story, the first few ids are what an operator greps the server for.
const maxFailedIDs = 32

func (s *Stats) shedTotal() int {
	n := 0
	for _, v := range s.Shed {
		n += v
	}
	return n
}

// Run fires the plan open-loop against baseURL: every request launches at
// its planned offset regardless of how many predecessors are still in
// flight. It returns after the last response (or ctx cancellation).
func Run(ctx context.Context, baseURL string, plan *Plan, cfg Config) (*Stats, error) {
	client := &http.Client{}
	stats := &Stats{Shed: make(map[string]int)}
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
	for _, req := range plan.Requests {
		if wait := req.At - time.Since(start); wait > 0 {
			timer.Reset(wait)
			select {
			case <-ctx.Done():
				wg.Wait()
				return stats, ctx.Err()
			case <-timer.C:
			}
		}
		wg.Add(1)
		go func(rq Request) {
			defer wg.Done()
			t0 := time.Now()
			out, err := fire(ctx, client, baseURL, rq, cfg)
			lat := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			stats.Requests++
			stats.Entries += len(rq.Queries)
			stats.Latencies = append(stats.Latencies, lat)
			if err != nil {
				stats.Errors += len(rq.Queries)
				if len(stats.FailedIDs) < maxFailedIDs {
					stats.FailedIDs = append(stats.FailedIDs, rq.ID)
				}
				return
			}
			stats.OK += out.ok
			stats.Hits += out.hits
			stats.Miss += out.miss
			stats.Shared += out.shared
			stats.Dedup += out.dedup
			stats.Stale += out.stale
			stats.Errors += out.errors
			if out.errors > 0 && len(stats.FailedIDs) < maxFailedIDs {
				stats.FailedIDs = append(stats.FailedIDs, rq.ID)
			}
			for k, v := range out.shed {
				stats.Shed[k] += v
			}
		}(req)
	}
	wg.Wait()
	stats.Elapsed = time.Since(start)
	return stats, nil
}

// Report folds the run into one benchjson result so load runs land in the
// same BENCH_*.json trajectory as the compiled-in benchmarks.
func (s *Stats) Report(name string) *benchjson.Report {
	lats := append([]time.Duration(nil), s.Latencies...)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return float64(lats[i])
	}
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	mean := 0.0
	if len(lats) > 0 {
		mean = float64(sum) / float64(len(lats))
	}
	shed := s.shedTotal()
	res := benchjson.Result{
		Name:       name,
		Procs:      1,
		Iterations: s.Entries,
		NsPerOp:    mean,
		Metrics: map[string]float64{
			"p50-ns":  pct(0.50),
			"p99-ns":  pct(0.99),
			"p999-ns": pct(0.999),
			"req":     float64(s.Requests),
			"entries": float64(s.Entries),
			"ok":      float64(s.OK),
			"hits":    float64(s.Hits),
			"miss":    float64(s.Miss),
			"shared":  float64(s.Shared),
			"dedup":   float64(s.Dedup),
			"stale":   float64(s.Stale),
			"shed":    float64(shed),
			"errors":  float64(s.Errors),
		},
	}
	for k, v := range s.Shed {
		res.Metrics["shed-"+k] = float64(v)
	}
	if s.Entries > 0 {
		res.Metrics["shed-rate"] = float64(shed) / float64(s.Entries)
	}
	if s.Elapsed > 0 {
		res.Metrics["goodput-qps"] = float64(s.OK) / s.Elapsed.Seconds()
	}
	return &benchjson.Report{Results: []benchjson.Result{res}}
}
