package load_test

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"flexile/internal/chaos"
	"flexile/internal/load"
	"flexile/internal/obs"
	"flexile/internal/serve"
)

func planCfg(seed uint64) load.Config {
	return load.Config{
		Seed:     seed,
		QPS:      500,
		Duration: 300 * time.Millisecond,
		Batch:    4,
		Tenants:  3,
		Scenarios: map[string][][]int{
			"alpha": {{}, {0}, {1}, {0, 1}},
			"beta":  {{}, {2}},
		},
		HotFraction: 0.8,
		HotSet:      2,
	}
}

// TestBuildPlanDeterministic is the seeded-stream contract: the Plan is a
// pure function of the Config, so equal seeds yield byte-identical plans
// and different seeds diverge.
func TestBuildPlanDeterministic(t *testing.T) {
	a, err := load.BuildPlan(planCfg(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := load.BuildPlan(planCfg(42))
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatal("same seed produced different plans")
	}
	c, err := load.BuildPlan(planCfg(43))
	if err != nil {
		t.Fatal(err)
	}
	cj, _ := json.Marshal(c)
	if string(aj) == string(cj) {
		t.Fatal("different seeds produced identical plans")
	}

	if len(a.Requests) == 0 {
		t.Fatal("empty plan at 500 qps over 300ms")
	}
	cfg := planCfg(42)
	var prev time.Duration = -1
	for i, rq := range a.Requests {
		if rq.At < prev {
			t.Fatalf("request %d fires at %v, before its predecessor at %v", i, rq.At, prev)
		}
		prev = rq.At
		if rq.At >= cfg.Duration {
			t.Fatalf("request %d fires at %v, past the %v schedule", i, rq.At, cfg.Duration)
		}
		if len(rq.Queries) != cfg.Batch {
			t.Fatalf("request %d has %d queries, want %d", i, len(rq.Queries), cfg.Batch)
		}
		if !strings.HasPrefix(rq.Tenant, "load-") {
			t.Fatalf("request %d tenant = %q", i, rq.Tenant)
		}
		for _, q := range rq.Queries {
			keys, ok := cfg.Scenarios[q.Artifact]
			if !ok {
				t.Fatalf("request %d queries unknown artifact %q", i, q.Artifact)
			}
			found := false
			for _, k := range keys {
				if len(k) == len(q.Failed) {
					same := true
					for j := range k {
						if k[j] != q.Failed[j] {
							same = false
							break
						}
					}
					if same {
						found = true
						break
					}
				}
			}
			if !found {
				t.Fatalf("request %d query %v not drawn from artifact %q scenarios", i, q.Failed, q.Artifact)
			}
		}
	}
}

func TestBuildPlanValidation(t *testing.T) {
	for name, mut := range map[string]func(*load.Config){
		"zero-qps":       func(c *load.Config) { c.QPS = 0 },
		"zero-duration":  func(c *load.Config) { c.Duration = 0 },
		"no-scenarios":   func(c *load.Config) { c.Scenarios = nil },
		"empty-artifact": func(c *load.Config) { c.Scenarios = map[string][][]int{"a": {}} },
	} {
		cfg := planCfg(1)
		mut(&cfg)
		if _, err := load.BuildPlan(cfg); err == nil {
			t.Errorf("%s: BuildPlan accepted an invalid config", name)
		}
	}
}

// TestRunAgainstServer drives a short seeded plan at a live server — batch
// and single-request modes — and checks the stats account every entry with
// no errors or sheds, then folds into a benchjson report.
func TestRunAgainstServer(t *testing.T) {
	h := chaos.New(t, serve.Config{CacheSize: 64, Workers: 2, Obs: obs.New()})
	ctx := context.Background()
	scens, err := load.FetchScenarios(ctx, h.TS.URL, "")
	if err != nil {
		t.Fatalf("FetchScenarios: %v", err)
	}

	for name, batch := range map[string]int{"single": 1, "batch": 3} {
		t.Run(name, func(t *testing.T) {
			cfg := load.Config{
				Seed:        9,
				QPS:         400,
				Duration:    250 * time.Millisecond,
				Batch:       batch,
				Tenants:     2,
				Scenarios:   map[string][][]int{"": scens},
				HotFraction: 0.5,
				HotSet:      2,
			}
			plan, err := load.BuildPlan(cfg)
			if err != nil {
				t.Fatal(err)
			}
			stats, err := load.Run(ctx, h.TS.URL, plan, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Requests != len(plan.Requests) {
				t.Errorf("fired %d of %d planned requests", stats.Requests, len(plan.Requests))
			}
			if stats.Entries != stats.Requests*batch {
				t.Errorf("entries = %d, want %d", stats.Entries, stats.Requests*batch)
			}
			if stats.Errors != 0 || len(stats.Shed) != 0 {
				t.Errorf("unloaded server produced errors=%d shed=%v", stats.Errors, stats.Shed)
			}
			if stats.OK != stats.Entries {
				t.Errorf("OK = %d, want every entry (%d)", stats.OK, stats.Entries)
			}
			if sum := stats.Hits + stats.Miss + stats.Shared + stats.Dedup + stats.Stale; sum != stats.OK {
				t.Errorf("dispositions sum to %d, want OK=%d", sum, stats.OK)
			}

			rep := stats.Report("LoadTest")
			if len(rep.Results) != 1 || rep.Results[0].Name != "LoadTest" {
				t.Fatalf("report shape: %+v", rep)
			}
			m := rep.Results[0].Metrics
			if m["entries"] != float64(stats.Entries) || m["ok"] != float64(stats.OK) {
				t.Errorf("report counters diverge from stats: %v", m)
			}
			if m["shed-rate"] != 0 {
				t.Errorf("shed-rate = %v, want 0", m["shed-rate"])
			}
			if m["goodput-qps"] <= 0 {
				t.Errorf("goodput-qps = %v, want > 0", m["goodput-qps"])
			}
			if m["p99-ns"] < m["p50-ns"] {
				t.Errorf("p99 (%v) below p50 (%v)", m["p99-ns"], m["p50-ns"])
			}
		})
	}
	h.Quiesce(t)
}
