package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// outcome is one request's classified entry dispositions.
type outcome struct {
	ok, hits, miss, shared, dedup, stale int
	errors                               int
	shed                                 map[string]int
}

func (o *outcome) classify(status int, cache, shedReason string, degraded bool) {
	switch {
	case status == http.StatusOK:
		o.ok++
		switch {
		case degraded || cache == "stale":
			o.stale++
		case cache == "hit":
			o.hits++
		case cache == "shared":
			o.shared++
		case cache == "dedup":
			o.dedup++
		default:
			o.miss++
		}
	case shedReason != "":
		o.shed[shedReason]++
	default:
		o.errors++
	}
}

// fire issues one planned request — a single GET /v1/alloc for one query,
// a POST /v1/alloc/batch envelope otherwise — and classifies every entry.
// Artifact names travel in the batch body or, for single requests, the
// X-Flexile-Artifact header, so the same plan drives a bare server and a
// registry.
func fire(ctx context.Context, client *http.Client, baseURL string, rq Request, cfg Config) (*outcome, error) {
	out := &outcome{shed: make(map[string]int)}
	var req *http.Request
	var err error
	if len(rq.Queries) == 1 {
		q := rq.Queries[0]
		parts := make([]string, len(q.Failed))
		for i, e := range q.Failed {
			parts[i] = strconv.Itoa(e)
		}
		url := baseURL + "/v1/alloc?failed=" + strings.Join(parts, ",")
		req, err = http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err == nil && q.Artifact != "" {
			req.Header.Set("X-Flexile-Artifact", q.Artifact)
		}
	} else {
		body, merr := json.Marshal(struct {
			Queries []Query `json:"queries"`
		}{rq.Queries})
		if merr != nil {
			return nil, merr
		}
		req, err = http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/alloc/batch", bytes.NewReader(body))
		if err == nil {
			req.Header.Set("Content-Type", "application/json")
		}
	}
	if err != nil {
		return nil, err
	}
	if rq.Tenant != "" {
		req.Header.Set("X-Tenant", rq.Tenant)
	}
	if rq.ID != "" {
		req.Header.Set("X-Request-Id", rq.ID)
		req.Header.Set("traceparent", rq.TraceParent())
	}
	if cfg.Deadline > 0 {
		req.Header.Set("X-Request-Deadline", cfg.Deadline.String())
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}

	if len(rq.Queries) == 1 {
		out.classify(resp.StatusCode,
			resp.Header.Get("X-Flexile-Cache"),
			resp.Header.Get("X-Flexile-Shed"),
			resp.Header.Get("X-Flexile-Degraded") != "")
		return out, nil
	}
	if resp.StatusCode != http.StatusOK {
		// Envelope-level rejection (bad request, registry-less batch, ...):
		// every entry failed together.
		out.errors += len(rq.Queries)
		return out, nil
	}
	var env struct {
		Results []struct {
			Status   int    `json:"status"`
			Cache    string `json:"cache"`
			Degraded bool   `json:"degraded"`
			Shed     string `json:"shed"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("load: batch envelope: %w", err)
	}
	if len(env.Results) != len(rq.Queries) {
		return nil, fmt.Errorf("load: batch answered %d of %d queries", len(env.Results), len(rq.Queries))
	}
	for _, e := range env.Results {
		out.classify(e.Status, e.Cache, e.Shed, e.Degraded)
	}
	return out, nil
}

// Fetched is one query's raw response — status, the serving headers Run
// classifies on, and the body itself. Run aggregates and discards bodies;
// Fetch exists for callers that need them (the soak hypothesis replays
// served allocations through the emulator and diffs them across reloads).
type Fetched struct {
	Status   int
	Cache    string // X-Flexile-Cache
	Shed     string // X-Flexile-Shed
	Degraded bool
	// RequestID is the server-echoed X-Request-Id — the planned rq.ID when
	// one was sent, else the server's generated id — the handle for the
	// server-side trace of this exact sample.
	RequestID string
	Body      []byte
}

// Fetch issues one planned single-query request and returns the raw
// response. Batch requests have no single body to hand back; planning
// with Batch <= 1 is the caller's job.
func Fetch(ctx context.Context, client *http.Client, baseURL string, rq Request, cfg Config) (*Fetched, error) {
	if len(rq.Queries) != 1 {
		return nil, fmt.Errorf("load: Fetch wants exactly one query, got %d", len(rq.Queries))
	}
	q := rq.Queries[0]
	parts := make([]string, len(q.Failed))
	for i, e := range q.Failed {
		parts[i] = strconv.Itoa(e)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/alloc?failed="+strings.Join(parts, ","), nil)
	if err != nil {
		return nil, err
	}
	if q.Artifact != "" {
		req.Header.Set("X-Flexile-Artifact", q.Artifact)
	}
	if rq.Tenant != "" {
		req.Header.Set("X-Tenant", rq.Tenant)
	}
	if rq.ID != "" {
		req.Header.Set("X-Request-Id", rq.ID)
		req.Header.Set("traceparent", rq.TraceParent())
	}
	if cfg.Deadline > 0 {
		req.Header.Set("X-Request-Deadline", cfg.Deadline.String())
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return &Fetched{
		Status:    resp.StatusCode,
		Cache:     resp.Header.Get("X-Flexile-Cache"),
		Shed:      resp.Header.Get("X-Flexile-Shed"),
		Degraded:  resp.Header.Get("X-Flexile-Degraded") != "",
		RequestID: resp.Header.Get("X-Request-Id"),
		Body:      body,
	}, nil
}

// FetchScenarios asks a live server for an artifact's enumerated failure
// states (GET /v1/scenarios), the input a Plan draws queries from. name ""
// targets the server's default artifact.
func FetchScenarios(ctx context.Context, baseURL, name string) ([][]int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/scenarios", nil)
	if err != nil {
		return nil, err
	}
	if name != "" {
		req.Header.Set("X-Flexile-Artifact", name)
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("load: scenarios for %q: %s: %s", name, resp.Status, bytes.TrimSpace(body))
	}
	var scens []struct {
		Failed []int `json:"failed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&scens); err != nil {
		return nil, err
	}
	if len(scens) == 0 {
		return nil, fmt.Errorf("load: artifact %q enumerates no scenarios", name)
	}
	out := make([][]int, len(scens))
	for i, sc := range scens {
		out[i] = sc.Failed
	}
	return out, nil
}
