package eval

import (
	"math"
	"testing"
	"testing/quick"

	"flexile/internal/failure"
	"flexile/internal/te"
	"flexile/internal/topo"
	"flexile/internal/tunnels"
)

func approx(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b)) }

func TestFlowLossBasic(t *testing.T) {
	// Paper §5 example: losses 0%, 5%, 10% with probs 0.9, 0.09, 0.01.
	losses := []float64{0, 0.05, 0.10}
	probs := []float64{0.9, 0.09, 0.01}
	if got := FlowLoss(losses, probs, 0.90); !approx(got, 0) {
		t.Fatalf("VaR90 = %v, want 0", got)
	}
	if got := FlowLoss(losses, probs, 0.95); !approx(got, 0.05) {
		t.Fatalf("VaR95 = %v, want 0.05", got)
	}
	if got := FlowLoss(losses, probs, 0.999); !approx(got, 0.10) {
		t.Fatalf("VaR99.9 = %v, want 0.10", got)
	}
}

func TestFlowLossResidualMass(t *testing.T) {
	// Scenarios only cover 0.95; asking for 0.99 must return 1.
	losses := []float64{0, 0.2}
	probs := []float64{0.90, 0.05}
	if got := FlowLoss(losses, probs, 0.99); got != 1 {
		t.Fatalf("VaR beyond coverage = %v, want 1", got)
	}
	if got := FlowLoss(losses, probs, 0.95); !approx(got, 0.2) {
		t.Fatalf("VaR at coverage edge = %v, want 0.2", got)
	}
}

func TestFlowLossUnsortedInput(t *testing.T) {
	losses := []float64{0.5, 0.0, 0.25}
	probs := []float64{0.01, 0.9, 0.09}
	if got := FlowLoss(losses, probs, 0.95); !approx(got, 0.25) {
		t.Fatalf("VaR95 = %v, want 0.25", got)
	}
}

// Property: FlowLoss is monotone in beta and bounded by [min loss, 1].
func TestFlowLossMonotone(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		r := seed
		next := func() float64 {
			r = (r*6364136223846793005 + 1442695040888963407) & 0x7fffffffffffffff
			return float64(r%1000) / 1000
		}
		n := int(seed%7) + 2
		losses := make([]float64, n)
		probs := make([]float64, n)
		tot := 0.0
		for i := range losses {
			losses[i] = next()
			probs[i] = next() + 1e-3
			tot += probs[i]
		}
		for i := range probs {
			probs[i] /= tot * 1.02 // leave a little residual mass
		}
		last := -1.0
		for _, b := range []float64{0.1, 0.5, 0.9, 0.97, 0.999} {
			v := FlowLoss(losses, probs, b)
			if v < last-1e-12 {
				return false
			}
			if v < 0 || v > 1 {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func triangleInst() *te.Instance {
	tp := topo.Triangle()
	inst := te.NewInstance(tp, []te.Class{
		{Name: "single", Beta: 0.99, Weight: 1, Tunnels: tunnels.SingleClass(3)},
	})
	inst.Demand[0][0] = 1
	inst.Demand[0][1] = 1
	inst.LinkProbs = []float64{0.01, 0.01, 0.01}
	inst.Scenarios = failure.Enumerate(inst.LinkProbs, 0)
	return inst
}

func TestPercLossDirectRouting(t *testing.T) {
	// Route each flow on its direct link in every scenario where the link
	// is alive (Flexile's Fig. 1 solution): PercLoss at 99% must be 0.
	inst := triangleInst()
	r := te.NewRouting(inst)
	for q, s := range inst.Scenarios {
		for i := 0; i < 2; i++ { // pairs (A,B) and (A,C)
			for ti, p := range inst.Tunnels[0][i] {
				if p.Len() == 1 && p.Alive(s.Alive()) {
					r.X[q][0][i][ti] = 1
				}
			}
		}
	}
	losses := r.LossMatrix(inst)
	if got := PercLoss(inst, losses, 0); !approx(got, 0) {
		t.Fatalf("PercLoss = %v, want 0 (Fig. 1)", got)
	}
	if p := Penalty(inst, losses); !approx(p, 0) {
		t.Fatalf("Penalty = %v", p)
	}
}

func TestPercLossHalfRouting(t *testing.T) {
	// ScenBest-style 0.5/0.5 split under single failures gives 99%ile loss
	// of 0.5 (paper Fig. 2): emulate by delivering 0.5 to each flow in the
	// two single-failure scenarios of its links, 1.0 when all alive.
	inst := triangleInst()
	r := te.NewRouting(inst)
	for q, s := range inst.Scenarios {
		for i := 0; i < 2; i++ {
			direct, indirect := -1, -1
			for ti, p := range inst.Tunnels[0][i] {
				if p.Len() == 1 {
					direct = ti
				} else {
					indirect = ti
				}
			}
			switch {
			case len(s.Failed) == 0:
				r.X[q][0][i][direct] = 1
			case len(s.Failed) == 1 && (s.Failed[0] == 0 || s.Failed[0] == 1):
				// One of the A-side links failed: both flows squeeze
				// through the surviving one at 0.5 each.
				if inst.Tunnels[0][i][direct].Alive(s.Alive()) {
					r.X[q][0][i][direct] = 0.5
				} else if indirect >= 0 && inst.Tunnels[0][i][indirect].Alive(s.Alive()) {
					r.X[q][0][i][indirect] = 0.5
				}
			case len(s.Failed) == 1:
				// B-C failed: directs unaffected.
				r.X[q][0][i][direct] = 1
			}
		}
	}
	losses := r.LossMatrix(inst)
	got := PercLoss(inst, losses, 0)
	if !approx(got, 0.5) {
		t.Fatalf("PercLoss = %v, want 0.5 (paper Fig. 2)", got)
	}
}

func TestScenLoss(t *testing.T) {
	inst := triangleInst()
	losses := make([][]float64, inst.NumFlows())
	for f := range losses {
		losses[f] = make([]float64, len(inst.Scenarios))
	}
	losses[0][0] = 0.3
	losses[1][0] = 0.7
	flows := []int{0, 1}
	if got := ScenLoss(inst, losses, 0, flows, false); !approx(got, 0.7) {
		t.Fatalf("ScenLoss = %v", got)
	}
	// connectedOnly: find a scenario where flow 0 (pair A-B) is
	// disconnected — both e0 and e2 failed.
	qd := -1
	for q, s := range inst.Scenarios {
		if s.IsFailed(0) && s.IsFailed(2) && !s.IsFailed(1) {
			qd = q
		}
	}
	losses[0][qd] = 1
	losses[1][qd] = 0.1
	if got := ScenLoss(inst, losses, qd, flows, true); !approx(got, 0.1) {
		t.Fatalf("connected-only ScenLoss = %v, want 0.1", got)
	}
	if got := ScenLoss(inst, losses, qd, flows, false); !approx(got, 1) {
		t.Fatalf("all-flows ScenLoss = %v, want 1", got)
	}
}

func TestCDFAndQuantile(t *testing.T) {
	values := []float64{0.5, 0.1, 0.1, 0.9}
	cdf := CDF(values, nil)
	// Distinct values collapse: 0.1 (cum .5), 0.5 (cum .75), 0.9 (cum 1).
	if len(cdf) != 3 {
		t.Fatalf("cdf points = %d, want 3", len(cdf))
	}
	if !approx(cdf[0].Cum, 0.5) || !approx(cdf[2].Cum, 1) {
		t.Fatalf("cdf = %+v", cdf)
	}
	if got := Quantile(cdf, 0.5); !approx(got, 0.1) {
		t.Fatalf("median = %v", got)
	}
	if got := Quantile(cdf, 0.76); !approx(got, 0.9) {
		t.Fatalf("q76 = %v", got)
	}
	// Weighted CDF.
	wcdf := CDF([]float64{0, 1}, []float64{0.99, 0.01})
	if got := Quantile(wcdf, 0.999); !approx(got, 1) {
		t.Fatalf("weighted q999 = %v", got)
	}
}

func TestMedianAndReduction(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); !approx(got, 2) {
		t.Fatalf("median = %v", got)
	}
	if got := ReductionPercent(0.5, 0.25); !approx(got, 50) {
		t.Fatalf("reduction = %v", got)
	}
	if got := ReductionPercent(0, 0.1); got != 0 {
		t.Fatalf("zero-base reduction = %v", got)
	}
}

func TestFlowLossAllSkipsZeroDemand(t *testing.T) {
	inst := triangleInst()
	r := te.NewRouting(inst)
	losses := r.LossMatrix(inst)
	fla := FlowLossAll(inst, losses)
	// Pair B-C has zero demand → FlowLoss 0 by convention.
	if fla[inst.FlowID(0, 2)] != 0 {
		t.Fatalf("zero-demand flow loss = %v", fla[inst.FlowID(0, 2)])
	}
	// Demanded flows with an all-zero routing lose everything.
	if fla[inst.FlowID(0, 0)] != 1 {
		t.Fatalf("unrouted flow loss = %v", fla[inst.FlowID(0, 0)])
	}
}
