// Package eval implements the paper's post-analysis metrics: FlowLoss (the
// β-percentile of a flow's loss across failure scenarios, Definition 4.1),
// PercLoss (the maximum FlowLoss across a class's flows, Definition 4.2),
// ScenLoss (the worst flow's loss within one scenario, Definition 2.1), and
// probability-weighted CDFs for the figures.
//
// Every scheme is evaluated the same way (§6): compute its routing and the
// loss of each flow in each scenario, then read the percentiles off the
// loss matrix.
package eval

import (
	"math"
	"sort"

	"flexile/internal/te"
)

// FlowLoss returns the β-percentile of a flow's loss: the smallest v such
// that scenarios with loss ≤ v carry probability at least β. Probability
// mass not covered by the enumerated scenarios is counted at loss 1
// (conservative, matching Teavar's post-analysis).
func FlowLoss(losses, probs []float64, beta float64) float64 {
	type lw struct{ l, p float64 }
	items := make([]lw, len(losses))
	for i := range losses {
		items[i] = lw{losses[i], probs[i]}
	}
	sort.Slice(items, func(a, b int) bool { return items[a].l < items[b].l })
	cum := 0.0
	for _, it := range items {
		cum += it.p
		if cum >= beta-1e-12 {
			return it.l
		}
	}
	// The enumerated mass alone cannot reach β; the residual counts as
	// total loss.
	return 1
}

// ScenLoss returns max_f loss[f][q] over the given flows (Definition 2.1).
// connectedOnly skips flows disconnected in the scenario, the accounting
// §6.3 uses ("worst performing connected flow").
func ScenLoss(inst *te.Instance, losses [][]float64, q int, flows []int, connectedOnly bool) float64 {
	worst := 0.0
	for _, f := range flows {
		k, i := inst.FlowOf(f)
		if inst.Demand[k][i] <= 0 {
			continue
		}
		if connectedOnly && !inst.FlowConnected(k, i, inst.Scenarios[q]) {
			continue
		}
		if l := losses[f][q]; l > worst {
			worst = l
		}
	}
	return worst
}

// ClassFlows lists the flow ids of class k with positive demand.
func ClassFlows(inst *te.Instance, k int) []int {
	var out []int
	for i := range inst.Pairs {
		if inst.Demand[k][i] > 0 {
			out = append(out, inst.FlowID(k, i))
		}
	}
	return out
}

// PercLoss returns max over the class's flows of FlowLoss(f, β_k)
// (Definition 4.2) for class k, given the full loss matrix.
func PercLoss(inst *te.Instance, losses [][]float64, k int) float64 {
	probs := scenarioProbs(inst)
	worst := 0.0
	for _, f := range ClassFlows(inst, k) {
		if fl := FlowLoss(losses[f], probs, inst.Classes[k].Beta); fl > worst {
			worst = fl
		}
	}
	return worst
}

// PercLossAll returns PercLoss for every class.
func PercLossAll(inst *te.Instance, losses [][]float64) []float64 {
	out := make([]float64, len(inst.Classes))
	for k := range inst.Classes {
		out[k] = PercLoss(inst, losses, k)
	}
	return out
}

// Penalty returns Σ_k w_k·PercLoss_k, the offline objective.
func Penalty(inst *te.Instance, losses [][]float64) float64 {
	tot := 0.0
	for k, pl := range PercLossAll(inst, losses) {
		tot += inst.Classes[k].Weight * pl
	}
	return tot
}

func scenarioProbs(inst *te.Instance) []float64 {
	probs := make([]float64, len(inst.Scenarios))
	for q, s := range inst.Scenarios {
		probs[q] = s.Prob
	}
	return probs
}

// FlowLossAll returns FlowLoss(f, β_class(f)) for every flow.
func FlowLossAll(inst *te.Instance, losses [][]float64) []float64 {
	probs := scenarioProbs(inst)
	out := make([]float64, inst.NumFlows())
	for k := range inst.Classes {
		for i := range inst.Pairs {
			f := inst.FlowID(k, i)
			if inst.Demand[k][i] <= 0 {
				continue
			}
			out[f] = FlowLoss(losses[f], probs, inst.Classes[k].Beta)
		}
	}
	return out
}

// CDFPoint is one step of a weighted empirical CDF.
type CDFPoint struct {
	Value float64
	// Cum is the cumulative weight of observations with Value ≤ this one.
	Cum float64
}

// CDF builds the weighted empirical CDF of values. weights == nil means
// equal weights summing to 1.
func CDF(values, weights []float64) []CDFPoint {
	n := len(values)
	if n == 0 {
		return nil
	}
	w := weights
	if w == nil {
		w = make([]float64, n)
		for i := range w {
			w[i] = 1 / float64(n)
		}
	}
	type vw struct{ v, w float64 }
	items := make([]vw, n)
	for i := range values {
		items[i] = vw{values[i], w[i]}
	}
	sort.Slice(items, func(a, b int) bool { return items[a].v < items[b].v })
	out := make([]CDFPoint, 0, n)
	cum := 0.0
	for _, it := range items {
		cum += it.w
		if len(out) > 0 && out[len(out)-1].Value == it.v {
			out[len(out)-1].Cum = cum
			continue
		}
		out = append(out, CDFPoint{it.v, cum})
	}
	return out
}

// Quantile reads the q-quantile (0 < q ≤ total weight) off a CDF: the
// smallest value whose cumulative weight reaches q. If the CDF's total
// weight falls short of q it returns the worst observed value.
func Quantile(cdf []CDFPoint, q float64) float64 {
	for _, p := range cdf {
		if p.Cum >= q-1e-12 {
			return p.Value
		}
	}
	if len(cdf) == 0 {
		return math.NaN()
	}
	return cdf[len(cdf)-1].Value
}

// Median returns the 0.5-quantile of plain values (no weights).
func Median(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// ReductionPercent returns the relative reduction 100·(base−new)/base,
// with 0 when base is 0.
func ReductionPercent(base, new float64) float64 {
	if base <= 0 {
		return 0
	}
	return 100 * (base - new) / base
}
