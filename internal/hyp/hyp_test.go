package hyp

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"strings"
	"testing"
	"time"
)

func demoHypothesis() Hypothesis {
	return Hypothesis{
		Name:  "h-demo",
		Claim: "the demo always passes",
		Run: func(_ context.Context, p Params) (*Verdict, error) {
			v := NewVerdict(Hypothesis{Name: "h-demo", Claim: "the demo always passes"}, p)
			v.Workloadf("topology", "Triangle")
			v.Check("flows", "==", 2, 2)
			v.CheckVolatile("speedup", ">=", 2.7, 2.0)
			v.Measure("wall-s", 0.123)
			return v.Finalize(), nil
		},
	}
}

func TestVerdictFinalize(t *testing.T) {
	v := NewVerdict(Hypothesis{Name: "h-x", Claim: "c"}, Params{}.withDefaults())
	if v.Finalize().Pass {
		t.Fatal("verdict with no checks must not pass")
	}
	v.Check("a", ">=", 2, 1)
	if !v.Finalize().Pass {
		t.Fatal("passing check should pass")
	}
	v.Check("b", "<=", 2, 1)
	if v.Finalize().Pass {
		t.Fatal("one failing check must fail the verdict")
	}
}

func TestCompareOps(t *testing.T) {
	cases := []struct {
		op         string
		got, want  float64
		expectPass bool
	}{
		{">=", 2, 2, true}, {">=", 1.9, 2, false},
		{"<=", 0.02, 0.03, true}, {"<=", 0.04, 0.03, false},
		{"==", 12, 12, true}, {"==", 12, 11, false},
	}
	for _, c := range cases {
		ok, err := compare(c.op, c.got, c.want)
		if err != nil {
			t.Fatalf("compare(%q): %v", c.op, err)
		}
		if ok != c.expectPass {
			t.Errorf("compare(%v %s %v) = %v, want %v", c.got, c.op, c.want, ok, c.expectPass)
		}
	}
	if _, err := compare("!=", 1, 2); err == nil {
		t.Fatal("unknown op must error")
	}
}

// TestCanonicalExcludesVolatile pins the contract that makes verdict files
// diffable in CI: volatile gots and Measured never reach the canonical
// payload, so two runs with different timings canonicalize identically.
func TestCanonicalExcludesVolatile(t *testing.T) {
	run := func(speedup, wall float64) []byte {
		v := NewVerdict(demoHypothesis(), Params{Seed: 7}.withDefaults())
		v.Workloadf("topology", "Triangle")
		v.Check("flows", "==", 2, 2)
		v.CheckVolatile("speedup", ">=", speedup, 2.0)
		v.Measure("wall-s", wall)
		return v.Finalize().Canonical()
	}
	a, b := run(2.7, 0.1), run(3.9, 0.5)
	if !bytes.Equal(a, b) {
		t.Fatalf("canonical payloads differ across volatile measurements:\n%s\nvs\n%s", a, b)
	}
	var dec Verdict
	if err := json.Unmarshal(a, &dec); err != nil {
		t.Fatalf("canonical payload is not valid JSON: %v", err)
	}
	if dec.Measured != nil {
		t.Fatal("canonical payload carries Measured")
	}
	for _, c := range dec.Checks {
		if c.Volatile && c.Got != 0 {
			t.Fatalf("volatile check %q kept got=%v in canonical form", c.Name, c.Got)
		}
	}
	// The deterministic got must survive.
	if dec.Checks[0].Got != 2 {
		t.Fatalf("deterministic got lost: %+v", dec.Checks[0])
	}
	if !strings.HasSuffix(string(a), "\n") {
		t.Fatal("canonical payload must end with a newline")
	}
}

// TestCanonicalDoesNotMutate guards against Canonical zeroing the live
// verdict's volatile gots via the shared checks slice.
func TestCanonicalDoesNotMutate(t *testing.T) {
	v := NewVerdict(demoHypothesis(), Params{Seed: 7}.withDefaults())
	v.CheckVolatile("speedup", ">=", 2.7, 2.0)
	v.Finalize().Canonical()
	if v.Checks[0].Got != 2.7 {
		t.Fatalf("Canonical mutated the verdict: got=%v", v.Checks[0].Got)
	}
}

func TestWriteVerifyRoundTrip(t *testing.T) {
	dir := t.TempDir()
	res := Run(context.Background(), demoHypothesis(), Params{Seed: 7})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	v := res.Verdict
	if !v.Pass {
		t.Fatalf("demo verdict failed: %+v", v)
	}

	// No file yet: drift.
	if err := v.Verify(dir); !errors.Is(err, ErrDrift) {
		t.Fatalf("missing file should be drift, got %v", err)
	}
	if err := v.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	if err := v.Verify(dir); err != nil {
		t.Fatalf("freshly written verdict should verify: %v", err)
	}

	// The record file carries the volatile values.
	rec, err := os.ReadFile(RecordFile(dir, "h-demo"))
	if err != nil {
		t.Fatal(err)
	}
	var full Verdict
	if err := json.Unmarshal(rec, &full); err != nil {
		t.Fatal(err)
	}
	if full.Measured["wall-s"] != 0.123 {
		t.Fatalf("record lost measurements: %+v", full.Measured)
	}

	// Tamper: a changed threshold is drift.
	path := VerdictFile(dir, "h-demo")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, bytes.Replace(data, []byte(`"want": 2`), []byte(`"want": 3`), 1), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := v.Verify(dir); !errors.Is(err, ErrDrift) {
		t.Fatalf("tampered file should be drift, got %v", err)
	}
}

func TestRegistry(t *testing.T) {
	mk := func(name string) Hypothesis {
		return Hypothesis{Name: name, Run: func(context.Context, Params) (*Verdict, error) { return nil, nil }}
	}
	r, err := NewRegistry(mk("h-b"), mk("h-a"))
	if err != nil {
		t.Fatal(err)
	}
	all := r.All()
	if len(all) != 2 || all[0].Name != "h-a" || all[1].Name != "h-b" {
		t.Fatalf("registry not name-ordered: %v", all)
	}
	if _, ok := r.Get("h-a"); !ok {
		t.Fatal("Get missed a registered hypothesis")
	}
	if _, ok := r.Get("h-z"); ok {
		t.Fatal("Get invented a hypothesis")
	}
	if _, err := NewRegistry(mk("h-a"), mk("h-a")); err == nil {
		t.Fatal("duplicate names must be rejected")
	}
	if _, err := NewRegistry(Hypothesis{Name: ""}); err == nil {
		t.Fatal("empty name must be rejected")
	}
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	if p.Seed != 1 || p.Workers != 4 || p.Log == nil {
		t.Fatalf("unexpected defaults: %+v", p)
	}
	if TierQuick.String() != "quick" || TierSoak.String() != "soak" {
		t.Fatal("tier names changed; verdict files depend on them")
	}
	if p.Tier != TierQuick {
		t.Fatal("zero tier must be quick")
	}
	_ = time.Second
}
