package exps

import (
	"bytes"
	"context"
	"testing"

	"flexile/internal/hyp"
)

// TestSoakDeterminism is the reproducibility contract behind checking
// verdicts into git: the soak's canonical verdict is a pure function of
// the seed. It runs h-serve-soak three times against three fresh daemons
// — twice at the same worker count, once with a single-worker client pool
// — and requires all three canonical payloads to be byte-identical. Wall
// times, connection interleavings, and cache hit patterns all differ
// across the runs; none of it may reach the canonical form. The runs
// share a scratch directory so the flexile-serve build and the offline
// artifact solve happen once.
func TestSoakDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and soaks the real flexile-serve binary")
	}
	scratch := t.TempDir()
	run := func(workers int) []byte {
		t.Helper()
		res := hyp.Run(context.Background(), ServeSoak(), hyp.Params{
			Seed:    7,
			Workers: workers,
			Scratch: scratch,
		})
		if res.Err != nil {
			t.Fatalf("soak (workers=%d): %v", workers, res.Err)
		}
		if !res.Verdict.Pass {
			t.Fatalf("soak (workers=%d) failed its own checks: %+v", workers, res.Verdict.Checks)
		}
		return res.Verdict.Canonical()
	}
	first := run(8)
	again := run(8)
	if !bytes.Equal(first, again) {
		t.Fatalf("two identical soaks canonicalized differently:\n%s\nvs\n%s", first, again)
	}
	solo := run(1)
	if !bytes.Equal(first, solo) {
		t.Fatalf("worker count leaked into the canonical verdict:\nworkers=8:\n%s\nworkers=1:\n%s", first, solo)
	}
}
