package exps

import (
	"context"
	"math"

	"flexile"
	"flexile/internal/experiments"
	"flexile/internal/hyp"
)

// EmuFidelity is h-emu-fidelity: the paper's Fig. 9 claim on the offline
// path — replaying Flexile's routing through the emulation engines
// (integer select-group weights, packetization, drop-tail queues)
// reproduces the optimization model's losses within a couple of percent.
// Both engines are pure functions of the instance seed (the packet
// engine's per-packet tunnel hash is seeded), so every measured value here
// is deterministic and canonical: this hypothesis pins the exact gap, not
// just a pass bit.
func EmuFidelity() hyp.Hypothesis {
	h := hyp.Hypothesis{
		Name:  "h-emu-fidelity",
		Claim: "emulated losses track the optimization model within the Fig. 9 tolerance on the offline path",
	}
	h.Run = func(ctx context.Context, p hyp.Params) (*hyp.Verdict, error) {
		cfg := experiments.Config{Scale: experiments.Tiny, Seed: int64(p.Seed)}
		const topoName = "Sprint"
		inst, err := cfg.SingleClass(topoName)
		if err != nil {
			return nil, err
		}
		routing, err := flexile.NewFlexile().Route(inst)
		if err != nil {
			return nil, err
		}
		model := flexile.Evaluate(inst, routing)

		fluidLosses, err := flexile.EmulateFluid(inst, routing, flexile.EmulationOptions{})
		if err != nil {
			return nil, err
		}
		fluid := flexile.EvaluateLosses(inst, fluidLosses)
		pktLosses, err := flexile.EmulatePacket(inst, routing, flexile.EmulationOptions{Seed: int64(p.Seed)})
		if err != nil {
			return nil, err
		}
		pkt := flexile.EvaluateLosses(inst, pktLosses)

		fluidPerc := math.Abs(model.PercLoss[0] - fluid.PercLoss[0])
		pktPerc := math.Abs(model.PercLoss[0] - pkt.PercLoss[0])
		fluidMax := maxAbsGap(model.Losses, fluidLosses)
		corr := pcc(model.Losses, pktLosses)
		p.Logf("h-emu-fidelity: |ΔPercLoss| fluid %.4f packet %.4f, fluid max flow gap %.4f, packet PCC %.4f",
			fluidPerc, pktPerc, fluidMax, corr)

		v := hyp.NewVerdict(h, p)
		v.Workloadf("topology", topoName)
		v.Workloadf("scale", "tiny")
		v.Workloadf("scenarios", "%d", len(inst.Scenarios))
		v.Workloadf("flows", "%d", inst.NumFlows())
		v.Workloadf("engines", "fluid (deterministic) + packet (seeded)")
		v.Check("fluid-percloss-gap", "<=", fluidPerc, 0.02)
		v.Check("fluid-max-flow-loss-gap", "<=", fluidMax, 0.05)
		v.Check("packet-percloss-gap", "<=", pktPerc, 0.05)
		v.Check("packet-model-pcc", ">=", corr, 0.95)
		v.Measure("model-percloss", model.PercLoss[0])
		v.Measure("fluid-percloss", fluid.PercLoss[0])
		v.Measure("packet-percloss", pkt.PercLoss[0])
		return v.Finalize(), nil
	}
	return h
}

// maxAbsGap is the largest per-flow per-scenario absolute loss difference.
func maxAbsGap(a, b [][]float64) float64 {
	worst := 0.0
	for f := range a {
		for q := range a[f] {
			if g := math.Abs(a[f][q] - b[f][q]); g > worst {
				worst = g
			}
		}
	}
	return worst
}

// pcc flattens two loss matrices and computes their Pearson correlation
// (the paper's Fig. 9c statistic).
func pcc(a, b [][]float64) float64 {
	var xs, ys []float64
	for f := range a {
		xs = append(xs, a[f]...)
		ys = append(ys, b[f]...)
	}
	n := float64(len(xs))
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var cov, vx, vy float64
	for i := range xs {
		cov += (xs[i] - mx) * (ys[i] - my)
		vx += (xs[i] - mx) * (xs[i] - mx)
		vy += (ys[i] - my) * (ys[i] - my)
	}
	if vx == 0 || vy == 0 {
		return 1
	}
	return cov / math.Sqrt(vx*vy)
}
