package exps

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"flexile"
	"flexile/internal/experiments"
	"flexile/internal/hyp"
	"flexile/internal/load"
	"flexile/internal/serve"
	"flexile/internal/te"
)

// ServeSoak is h-serve-soak, the headline experiment: an emulation-backed
// soak of the real flexile-serve binary. A seeded failure-scenario stream
// (load.BuildPlan — a pure function of the seed) is replayed against a
// live daemon over loopback HTTP, with a SIGHUP reload fired between the
// two halves of the stream. The served allocations are then cross-checked
// two ways:
//
//   - continuity: for every scenario answered in both halves, the
//     post-reload body is bit-identical to the pre-reload body — a reload
//     of an unchanged artifact must not perturb allocations;
//   - fidelity: the served per-tunnel allocations are reassembled into a
//     routing and replayed through the fluid emulation engine; the
//     emulator-delivered per-flow bandwidth must match the model's
//     delivered bandwidth within the paper's Fig. 9 tolerance.
//
// Every response body is a pure function of the artifact (itself a pure
// function of the seed), and the fluid engine is deterministic, so all of
// this hypothesis's checks — request counts, scenario coverage, body
// consistency, the emulation gap — are canonical. Only wall-clock
// measurements are volatile. Worker count shards the client pool but
// cannot change any canonical value, which is what the determinism test
// in soak_test.go pins.
func ServeSoak() hyp.Hypothesis {
	h := hyp.Hypothesis{
		Name:     "h-serve-soak",
		Claim:    "a live flexile-serve soak's allocations survive a mid-soak SIGHUP bit-identically and match the model within Fig. 9 tolerance under fluid emulation",
		Soakable: true,
	}
	h.Run = func(ctx context.Context, p hyp.Params) (*hyp.Verdict, error) {
		scratch, cleanup, err := p.ScratchDir()
		if err != nil {
			return nil, err
		}
		if cleanup != nil {
			defer cleanup()
		}

		cfg := experiments.Config{Scale: experiments.Tiny, Seed: int64(p.Seed)}
		const topoName = "IBM"
		inst, err := cfg.SingleClass(topoName)
		if err != nil {
			return nil, err
		}
		artPath, err := soakArtifact(scratch, inst, p)
		if err != nil {
			return nil, err
		}
		bin, err := soakBinary(ctx, scratch, p)
		if err != nil {
			return nil, err
		}

		addr, err := freeAddr()
		if err != nil {
			return nil, err
		}
		daemon := exec.Command(bin, "-artifact", artPath, "-listen", addr)
		daemon.Stderr = io.Discard
		if err := daemon.Start(); err != nil {
			return nil, fmt.Errorf("start flexile-serve: %w", err)
		}
		defer func() {
			daemon.Process.Signal(syscall.SIGTERM)
			daemon.Wait()
		}()
		base := "http://" + addr
		if err := waitReady(ctx, base+"/readyz"); err != nil {
			return nil, err
		}

		scens, err := load.FetchScenarios(ctx, base, "")
		if err != nil {
			return nil, err
		}

		planDur := 1500 * time.Millisecond
		if p.Tier == hyp.TierSoak {
			planDur = p.Duration
			if planDur <= 0 {
				planDur = 20 * time.Second
			}
		}
		lcfg := load.Config{
			Seed:      p.Seed,
			QPS:       400,
			Duration:  planDur,
			Batch:     1,
			Scenarios: map[string][][]int{"": scens},
		}
		plan, err := load.BuildPlan(lcfg)
		if err != nil {
			return nil, err
		}
		half := len(plan.Requests) / 2

		start := time.Now()
		firstBodies, err := fireAll(ctx, base, plan.Requests[:half], lcfg, p.Workers)
		if err != nil {
			return nil, err
		}
		reloaded, err := reloadDaemon(ctx, daemon, base)
		if err != nil {
			return nil, err
		}
		secondBodies, err := fireAll(ctx, base, plan.Requests[half:], lcfg, p.Workers)
		if err != nil {
			return nil, err
		}
		wall := time.Since(start)

		// Index every body by its served scenario, per half.
		firstBy, err := byScenario(firstBodies)
		if err != nil {
			return nil, err
		}
		secondBy, err := byScenario(secondBodies)
		if err != nil {
			return nil, err
		}
		mismatched := 0 // repeated answers for one scenario within a half differ
		for _, by := range []map[int][][]byte{firstBy, secondBy} {
			for _, bodies := range by {
				for _, b := range bodies[1:] {
					if string(b) != string(bodies[0]) {
						mismatched++
					}
				}
			}
		}
		seenBoth, consistent := 0, 0
		covered := make(map[int]bool)
		for q := range firstBy {
			covered[q] = true
		}
		for q := range secondBy {
			covered[q] = true
			if pre, ok := firstBy[q]; ok {
				seenBoth++
				if string(pre[0]) == string(secondBy[q][0]) {
					consistent++
				}
			}
		}

		// Reassemble the served allocations into a routing and replay it
		// through the deterministic fluid engine: the model-vs-emulation
		// loss gap is the Fig. 9 statistic, here computed on exactly what
		// the daemon served rather than on an in-process solve.
		r := te.NewRouting(inst)
		for q, bodies := range firstBy {
			var resp serve.AllocResponse
			if err := json.Unmarshal(bodies[0], &resp); err != nil {
				return nil, fmt.Errorf("decode scenario %d body: %w", q, err)
			}
			r.X[q] = resp.X
		}
		model := flexile.Evaluate(inst, r)
		emuLosses, err := flexile.EmulateFluid(inst, r, flexile.EmulationOptions{})
		if err != nil {
			return nil, err
		}
		gap := maxAbsGap(model.Losses, emuLosses)
		p.Logf("h-serve-soak: %d requests in %v, %d/%d scenarios covered, reload=%v, emu gap %.4f",
			len(plan.Requests), wall.Round(time.Millisecond), len(covered), len(inst.Scenarios), reloaded, gap)

		v := hyp.NewVerdict(h, p)
		v.Workloadf("topology", topoName)
		v.Workloadf("scale", "tiny")
		v.Workloadf("daemon", "real flexile-serve binary, loopback HTTP, SIGHUP at stream midpoint")
		v.Workloadf("stream", "load.BuildPlan seed=%d qps=400 duration=%s batch=1", p.Seed, planDur)
		v.Workloadf("scenarios", "%d", len(inst.Scenarios))
		v.Check("requests-planned", ">=", float64(len(plan.Requests)), 200)
		v.Check("responses-ok", "==", float64(len(firstBodies)+len(secondBodies)), float64(len(plan.Requests)))
		v.Check("scenarios-covered", "==", float64(len(covered)), float64(len(inst.Scenarios)))
		v.Check("reload-completed", "==", b2f(reloaded), 1)
		v.Check("bodies-mismatched-within-half", "==", float64(mismatched), 0)
		v.Check("scenarios-seen-in-both-halves", "==", float64(seenBoth), float64(len(inst.Scenarios)))
		v.Check("scenarios-consistent-across-reload", "==", float64(consistent), float64(seenBoth))
		v.Check("soak-emu-max-loss-gap", "<=", gap, 0.03)
		v.Measure("wall-s", wall.Seconds())
		v.Measure("requests", float64(len(plan.Requests)))
		v.Measure("soak-emu-max-loss-gap", gap)
		return v.Finalize(), nil
	}
	return h
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// soakArtifact designs and exports the serving artifact for inst, cached
// per seed so repeat runs in a shared scratch skip the offline solve.
func soakArtifact(scratch string, inst *flexile.Instance, p hyp.Params) (string, error) {
	path := filepath.Join(scratch, fmt.Sprintf("h-soak-%d.flxa", p.Seed))
	if _, err := os.Stat(path); err == nil {
		return path, nil
	}
	design, err := flexile.Design(inst, flexile.DesignOptions{})
	if err != nil {
		return "", err
	}
	blob, err := flexile.ExportArtifact(inst, design, flexile.DesignOptions{})
	if err != nil {
		return "", err
	}
	return path, os.WriteFile(path, blob, 0o644)
}

// soakBinary builds the real flexile-serve once per scratch directory.
func soakBinary(ctx context.Context, scratch string, p hyp.Params) (string, error) {
	bin := filepath.Join(scratch, "flexile-serve")
	if _, err := os.Stat(bin); err == nil {
		return bin, nil
	}
	p.Logf("h-serve-soak: building flexile-serve")
	cmd := exec.CommandContext(ctx, "go", "build", "-o", bin, "flexile/cmd/flexile-serve")
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("go build flexile-serve: %w\n%s", err, out)
	}
	return bin, nil
}

func freeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

func waitReady(ctx context.Context, url string) error {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if err := ctx.Err(); err != nil {
			return err
		}
		resp, err := http.Get(url)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("server never became ready at %s", url)
}

// loadedAt reads the daemon's /healthz artifact timestamp — it changes
// exactly when a reload swaps state in, which is how reloadDaemon proves
// the SIGHUP completed rather than merely being delivered.
func loadedAt(ctx context.Context, base string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return "", err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		return "", err
	}
	s, _ := health["loaded_at"].(string)
	return s, nil
}

// reloadDaemon sends SIGHUP and waits until /healthz reports a new
// loaded_at and /readyz answers 200 again.
func reloadDaemon(ctx context.Context, daemon *exec.Cmd, base string) (bool, error) {
	before, err := loadedAt(ctx, base)
	if err != nil {
		return false, err
	}
	if err := daemon.Process.Signal(syscall.SIGHUP); err != nil {
		return false, err
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		after, err := loadedAt(ctx, base)
		if err == nil && after != "" && after != before {
			return true, waitReady(ctx, base+"/readyz")
		}
		time.Sleep(25 * time.Millisecond)
	}
	return false, nil
}

// fireAll drives one half of the plan through load.Fetch with a fixed-size
// worker pool, storing each body at its plan index so the observed trace
// is independent of worker interleaving. Any non-200 or degraded answer is
// an error: the soak plans no overload, so the server has no excuse.
func fireAll(ctx context.Context, base string, reqs []load.Request, lcfg load.Config, workers int) ([][]byte, error) {
	if workers < 1 {
		workers = 1
	}
	bodies := make([][]byte, len(reqs))
	errs := make([]error, len(reqs))
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{}
			defer client.CloseIdleConnections()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(reqs) {
					return
				}
				f, err := load.Fetch(ctx, client, base, reqs[i], lcfg)
				switch {
				case err != nil:
					errs[i] = err
				case f.Status != http.StatusOK || f.Degraded:
					// The echoed request id names the server-side trace
					// (/debug/requests) and access-log record for this sample.
					errs[i] = fmt.Errorf("request %d (id %s, server id %s): status %d shed=%q degraded=%v",
						i, reqs[i].ID, f.RequestID, f.Status, f.Shed, f.Degraded)
				default:
					bodies[i] = f.Body
				}
			}
		}()
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	return bodies, nil
}

// byScenario decodes each body's served scenario index and groups the raw
// bodies by it, preserving plan order within a scenario.
func byScenario(bodies [][]byte) (map[int][][]byte, error) {
	out := make(map[int][][]byte)
	for i, b := range bodies {
		var resp struct {
			Scenario int `json:"scenario"`
		}
		if err := json.Unmarshal(b, &resp); err != nil {
			return nil, fmt.Errorf("decode body %d: %w", i, err)
		}
		out[resp.Scenario] = append(out[resp.Scenario], b)
	}
	return out, nil
}
