package exps

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"flexile"
	"flexile/internal/experiments"
	"flexile/internal/hyp"
	"flexile/internal/serve"
)

// BatchAmortization is h-batch-amortization: the PR 8 claim that one POST
// /v1/alloc/batch round-trip carrying 32 warm-cache queries costs at least
// 3× less than 32 single GET round-trips at equal query count, over real
// loopback HTTP (the quantity batching amortizes is per-round-trip
// overhead: connection handling, parse, header writes, syscalls). The
// measured ratio on the reference container is ~5-6×. Wall-clock, so the
// ratio is volatile; the envelope-vs-single bit-identity of the bodies is
// deterministic and canonical.
func BatchAmortization() hyp.Hypothesis {
	h := hyp.Hypothesis{
		Name:  "h-batch-amortization",
		Claim: "POST /v1/alloc/batch at batch=32 amortizes >=3x over 32 single GETs on a warm cache",
	}
	h.Run = func(ctx context.Context, p hyp.Params) (*hyp.Verdict, error) {
		cfg := experiments.Config{Scale: experiments.Tiny, Seed: int64(p.Seed)}
		inst, err := cfg.SingleClass("IBM")
		if err != nil {
			return nil, err
		}
		design, err := flexile.Design(inst, flexile.DesignOptions{})
		if err != nil {
			return nil, err
		}
		blob, err := flexile.ExportArtifact(inst, design, flexile.DesignOptions{})
		if err != nil {
			return nil, err
		}
		scratch, cleanup, err := p.ScratchDir()
		if err != nil {
			return nil, err
		}
		if cleanup != nil {
			defer cleanup()
		}
		path := filepath.Join(scratch, "h-batch.flxa")
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			return nil, err
		}
		srv, err := serve.New(path, serve.Config{CacheSize: len(inst.Scenarios), Workers: 2})
		if err != nil {
			return nil, err
		}
		defer srv.Close()
		ts := httptest.NewServer(srv)
		defer ts.Close()
		client := &http.Client{}
		defer client.CloseIdleConnections()

		const batch = 32
		queries := make([]serve.BatchQuery, batch)
		urls := make([]string, batch)
		for i := range queries {
			failed := inst.Scenarios[i%len(inst.Scenarios)].Failed
			queries[i] = serve.BatchQuery{Failed: failed}
			parts := make([]string, len(failed))
			for j, e := range failed {
				parts[j] = strconv.Itoa(e)
			}
			urls[i] = ts.URL + "/v1/alloc?failed=" + strings.Join(parts, ",")
		}
		body, err := json.Marshal(serve.BatchRequest{Queries: queries})
		if err != nil {
			return nil, err
		}

		get := func(i int) ([]byte, time.Duration, error) {
			start := time.Now()
			resp, err := client.Get(urls[i%batch])
			if err != nil {
				return nil, 0, err
			}
			b, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil {
				return nil, 0, rerr
			}
			if resp.StatusCode != http.StatusOK {
				return nil, 0, fmt.Errorf("GET %s: status %d", urls[i%batch], resp.StatusCode)
			}
			return b, time.Since(start), nil
		}
		postBatch := func() ([]byte, time.Duration, error) {
			start := time.Now()
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/alloc/batch", bytes.NewReader(body))
			if err != nil {
				return nil, 0, err
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := client.Do(req)
			if err != nil {
				return nil, 0, err
			}
			b, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil {
				return nil, 0, rerr
			}
			if resp.StatusCode != http.StatusOK {
				return nil, 0, fmt.Errorf("POST /v1/alloc/batch: status %d", resp.StatusCode)
			}
			return b, time.Since(start), nil
		}

		// Warm every scenario, capturing the single-GET oracle bodies.
		singleBodies := make([][]byte, batch)
		for i := 0; i < batch; i++ {
			b, _, err := get(i)
			if err != nil {
				return nil, err
			}
			singleBodies[i] = b
		}
		envBytes, _, err := postBatch()
		if err != nil {
			return nil, err
		}

		// Deterministic check: every batch-envelope entry's body is
		// byte-identical to the single-GET answer for the same query.
		var env struct {
			Results []struct {
				Status int             `json:"status"`
				Body   json.RawMessage `json:"body"`
			} `json:"results"`
		}
		if err := json.Unmarshal(envBytes, &env); err != nil {
			return nil, fmt.Errorf("batch envelope: %w", err)
		}
		identical, answered := 0, 0
		for i, e := range env.Results {
			if e.Status == http.StatusOK {
				answered++
				if bytes.Equal(e.Body, singleBodies[i]) {
					identical++
				}
			}
		}

		// Timed passes. Each side is scored by its fastest round-trip —
		// the min is the scheduler-noise-free cost, the same idiom the
		// old `make benchgate` used — but the single side still averages
		// its min over the batch width so one lucky GET can't dominate:
		// a "pass" on the single side is 32 consecutive GETs.
		passes := 8
		if p.Tier == hyp.TierSoak {
			passes = 64
		}
		singleBest := time.Duration(1<<63 - 1)
		for pass := 0; pass < passes; pass++ {
			var total time.Duration
			for i := 0; i < batch; i++ {
				_, lat, err := get(pass*batch + i)
				if err != nil {
					return nil, err
				}
				total += lat
			}
			if total < singleBest {
				singleBest = total
			}
		}
		batchBest := time.Duration(1<<63 - 1)
		for pass := 0; pass < passes; pass++ {
			_, lat, err := postBatch()
			if err != nil {
				return nil, err
			}
			if lat < batchBest {
				batchBest = lat
			}
		}
		amort := float64(singleBest) / float64(batchBest)
		p.Logf("h-batch-amortization: %d singles %v, batch %v: %.2fx", batch, singleBest, batchBest, amort)

		v := hyp.NewVerdict(h, p)
		v.Workloadf("topology", "IBM")
		v.Workloadf("scale", "tiny")
		v.Workloadf("batch", "%d", batch)
		v.Workloadf("scenarios", "%d", len(inst.Scenarios))
		v.Workloadf("passes", "min-of-%d per side, warm cache, loopback HTTP", passes)
		v.Check("batch-entries-answered", "==", float64(answered), batch)
		v.Check("batch-bodies-identical-to-single", "==", float64(identical), batch)
		// 3× is the claim; the quick tier run on every CI push gates on a
		// conservative floor (see h-warm-speedup for the rationale).
		floor := 2.0
		if p.Tier == hyp.TierSoak {
			floor = 3.0
		}
		v.CheckVolatile("amortization-x", ">=", amort, floor)
		v.Measure("single-best-ns", float64(singleBest))
		v.Measure("batch-best-ns", float64(batchBest))
		v.Measure("amortization-x", amort)
		return v.Finalize(), nil
	}
	return h
}
