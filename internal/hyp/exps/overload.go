package exps

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"flexile/internal/failure"
	"flexile/internal/hyp"
	"flexile/internal/obs"
	flexscheme "flexile/internal/scheme/flexile"
	"flexile/internal/serve"
	"flexile/internal/te"
	"flexile/internal/topo"
	"flexile/internal/tunnels"
)

// OverloadShed is h-overload-shed: the DESIGN.md §13 overload contract,
// formerly checked only by the internal/chaos test storms, restated as a
// hypothesis. A deliberately slow server (every recompute sleeps, cache
// disabled) is stormed by seeded clients with tight deadlines; the claim
// is that from the client's side every single response is accounted for —
// either a non-degraded 200 bit-identical to the library oracle, or an
// explicit shed (429/503 with X-Flexile-Shed and a usable Retry-After) —
// with zero contract violations. The storm schedule is a pure function of
// the seed, so the request count and the zero-violation outcome are
// canonical; how many land on each side of the admit/shed split depends
// on real time and stays volatile.
//
// internal/chaos itself imports testing and links only into test
// binaries, so this file carries a standalone storm runner mirroring its
// classification rules exactly.
func OverloadShed() hyp.Hypothesis {
	h := hyp.Hypothesis{
		Name:  "h-overload-shed",
		Claim: "under deadline-storm overload every response is an oracle-exact 200 or an explicit shed; none unaccounted",
	}
	h.Run = func(ctx context.Context, p hyp.Params) (*hyp.Verdict, error) {
		fix, err := newTriangleFixture(p, serve.Config{
			CacheSize: 0,
			Workers:   -1,
			Obs:       obs.New(),
			ComputeHook: func(int) error {
				time.Sleep(30 * time.Millisecond)
				return nil
			},
		})
		if err != nil {
			return nil, err
		}
		defer fix.close()

		clients, requests := 8, 12
		if p.Tier == hyp.TierSoak {
			clients, requests = 16, 48
		}
		rep := fix.storm(stormConfig{
			seed:     p.Seed,
			clients:  clients,
			requests: requests,
			deadline: 120 * time.Millisecond,
			jitter:   2 * time.Millisecond,
		})
		total := clients * requests
		accounted := rep.ok + rep.degraded + rep.shed + rep.disconnect
		p.Logf("h-overload-shed: ok=%d degraded=%d shed=%d disconnect=%d violations=%d",
			rep.ok, rep.degraded, rep.shed, rep.disconnect, len(rep.violations))
		for _, viol := range rep.violations {
			p.Logf("h-overload-shed: violation: %s", viol)
		}

		v := hyp.NewVerdict(h, p)
		v.Workloadf("topology", "Triangle (3 links, p=0.01 each, all scenarios)")
		v.Workloadf("server", "cache disabled, detached recompute, 30ms compute hook")
		v.Workloadf("storm", "%d clients x %d requests, 120ms deadline, 2ms jitter", clients, requests)
		v.Check("contract-violations", "==", float64(len(rep.violations)), 0)
		v.Check("responses-accounted", "==", float64(accounted), float64(total))
		v.Check("requests-total", "==", float64(total), float64(total))
		// The split is timing-dependent; only "both sides exercised" is claimed.
		v.CheckVolatile("sheds-observed", ">=", float64(rep.shed), 1)
		v.CheckVolatile("admitted-observed", ">=", float64(rep.ok), 1)
		v.Measure("ok", float64(rep.ok))
		v.Measure("degraded", float64(rep.degraded))
		v.Measure("shed", float64(rep.shed))
		v.Measure("disconnect", float64(rep.disconnect))
		return v.Finalize(), nil
	}
	return h
}

// triangleFixture is the chaos harness's canonical triangle server,
// rebuilt without the testing dependency: artifact on disk, live loopback
// server, and per-scenario oracle bodies straight from the library.
type triangleFixture struct {
	srv    *serve.Server
	ts     *httptest.Server
	oracle [][]byte
	urls   []string
	clean  func()
}

func newTriangleFixture(p hyp.Params, cfg serve.Config) (*triangleFixture, error) {
	tp := topo.Triangle()
	inst := te.NewInstance(tp, []te.Class{
		{Name: "single", Beta: 0.99, Weight: 1, Tunnels: tunnels.SingleClass(3)},
	})
	inst.Demand[0][0] = 1
	inst.Demand[0][1] = 1
	inst.LinkProbs = []float64{0.01, 0.01, 0.01}
	inst.Scenarios = failure.Enumerate(inst.LinkProbs, 0)

	opt := flexscheme.Options{Workers: 2}
	off, err := flexscheme.Offline(inst, opt)
	if err != nil {
		return nil, fmt.Errorf("offline solve: %w", err)
	}
	art, err := serve.Build(inst, off, opt)
	if err != nil {
		return nil, fmt.Errorf("build artifact: %w", err)
	}
	scratch, cleanup, err := p.ScratchDir()
	if err != nil {
		return nil, err
	}
	path := filepath.Join(scratch, "h-overload.flxa")
	if err := os.WriteFile(path, art.Encode(), 0o644); err != nil {
		if cleanup != nil {
			cleanup()
		}
		return nil, err
	}
	srv, err := serve.New(path, cfg)
	if err != nil {
		if cleanup != nil {
			cleanup()
		}
		return nil, err
	}
	f := &triangleFixture{srv: srv, ts: httptest.NewServer(srv)}
	f.clean = func() {
		f.ts.Close()
		f.srv.Close()
		if cleanup != nil {
			cleanup()
		}
	}
	f.oracle = make([][]byte, len(inst.Scenarios))
	f.urls = make([]string, len(inst.Scenarios))
	for q, scen := range inst.Scenarios {
		res, err := flexscheme.Online(inst, off, q, opt)
		if err != nil {
			f.clean()
			return nil, fmt.Errorf("oracle Online(%d): %w", q, err)
		}
		body, err := json.Marshal(serve.AllocResponse{Scenario: q, Prob: scen.Prob, Frac: res.Frac, X: res.X})
		if err != nil {
			f.clean()
			return nil, err
		}
		f.oracle[q] = body
		var parts []string
		for _, e := range scen.Failed {
			parts = append(parts, strconv.Itoa(e))
		}
		f.urls[q] = f.ts.URL + "/v1/alloc?failed=" + strings.Join(parts, ",")
	}
	return f, nil
}

func (f *triangleFixture) close() { f.clean() }

type stormConfig struct {
	seed     uint64
	clients  int
	requests int
	deadline time.Duration
	jitter   time.Duration
}

type stormReport struct {
	mu         sync.Mutex
	ok         int
	degraded   int
	shed       int
	disconnect int
	violations []string
}

func (r *stormReport) violate(format string, args ...any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.violations) < 20 {
		r.violations = append(r.violations, fmt.Sprintf(format, args...))
	}
}

// storm mirrors chaos.Harness.Storm: seeded clients, and the §13
// classification — a 200 must be oracle-exact unless marked degraded, a
// 429/503 must carry X-Flexile-Shed and Retry-After >= 1, anything else
// is a violation.
func (f *triangleFixture) storm(cfg stormConfig) *stormReport {
	rep := &stormReport{}
	client := &http.Client{}
	defer client.CloseIdleConnections()
	var wg sync.WaitGroup
	for w := 0; w < cfg.clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := &rng{s: cfg.seed ^ (uint64(w+1) * 0x9e3779b97f4a7c15)}
			for i := 0; i < cfg.requests; i++ {
				q := r.intn(len(f.urls))
				f.one(client, cfg, rep, w, q)
				if cfg.jitter > 0 {
					time.Sleep(time.Duration(r.next() % uint64(cfg.jitter)))
				}
			}
		}(w)
	}
	wg.Wait()
	return rep
}

func (f *triangleFixture) one(client *http.Client, cfg stormConfig, rep *stormReport, w, q int) {
	req, err := http.NewRequest(http.MethodGet, f.urls[q], nil)
	if err != nil {
		rep.violate("client %d: build request: %v", w, err)
		return
	}
	if cfg.deadline > 0 {
		req.Header.Set("X-Request-Deadline", cfg.deadline.String())
	}
	resp, err := client.Do(req)
	if err != nil {
		rep.mu.Lock()
		rep.disconnect++
		rep.mu.Unlock()
		return
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		rep.mu.Lock()
		rep.disconnect++
		rep.mu.Unlock()
		return
	}
	switch resp.StatusCode {
	case http.StatusOK:
		if resp.Header.Get("X-Flexile-Degraded") != "" {
			rep.mu.Lock()
			rep.degraded++
			rep.mu.Unlock()
			return
		}
		if !bytes.Equal(body, f.oracle[q]) {
			rep.violate("client %d scenario %d: unmarked 200 differs from oracle", w, q)
			return
		}
		rep.mu.Lock()
		rep.ok++
		rep.mu.Unlock()
	case http.StatusServiceUnavailable, http.StatusTooManyRequests:
		if resp.Header.Get("X-Flexile-Shed") == "" {
			rep.violate("client %d scenario %d: %d without X-Flexile-Shed: %s", w, q, resp.StatusCode, body)
			return
		}
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
			rep.violate("client %d scenario %d: shed without usable Retry-After (%q)",
				w, q, resp.Header.Get("Retry-After"))
			return
		}
		rep.mu.Lock()
		rep.shed++
		rep.mu.Unlock()
	default:
		rep.violate("client %d scenario %d: status %d: %s", w, q, resp.StatusCode, body)
	}
}
