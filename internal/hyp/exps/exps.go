// Package exps holds the repository's named hypotheses (DESIGN.md §15) —
// the seeded, re-runnable experiments behind every scale claim made since
// PR 1. Each hypothesis declares its workload, runs it, and produces a
// hyp.Verdict whose canonical form is checked in under hypotheses/ and
// diffed by CI (`make hypotheses`).
//
// The registry:
//
//	h-warm-speedup       warm-started batched offline solve ≥2× cold (absorbs `make benchgate`)
//	h-batch-amortization POST /v1/alloc/batch at batch=32 amortizes ≥3× over single GETs
//	h-overload-shed      under overload every response is an admitted 200 or an explicit shed
//	h-emu-fidelity       fluid/packet emulation tracks the model (the paper's Fig. 9)
//	h-serve-soak         emulation-backed soak: delivered bandwidth from replaying a live
//	                     flexile-serve's allocations through the emulator matches the model
//	                     within the Fig. 9 tolerance, across a mid-soak SIGHUP reload
//	h-trace-overhead     request-scoped tracing costs <=2% on the warm-cache alloc path,
//	                     and traces are well-formed (traceparent join, tiling stage spans)
package exps

import (
	"flexile/internal/hyp"
)

// All returns the repository's hypothesis registry.
func All() (*hyp.Registry, error) {
	return hyp.NewRegistry(
		WarmSpeedup(),
		BatchAmortization(),
		OverloadShed(),
		EmuFidelity(),
		ServeSoak(),
		TraceOverhead(),
	)
}

// rng is splitmix64 — the repo-standard seeded stream (internal/chaos,
// internal/load): tiny, fast, identical on every platform.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	x := r.s
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }
