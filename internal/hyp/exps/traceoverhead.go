package exps

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"flexile"
	"flexile/internal/experiments"
	"flexile/internal/hyp"
	"flexile/internal/obs"
	"flexile/internal/serve"
)

// TraceOverhead is h-trace-overhead: the PR 10 claim that request-scoped
// tracing (DESIGN.md §16), at its production default sampling
// (serve.DefaultTraceEvery), costs at most 2% on the warm-cache serving
// path. Two identical servers — one with tracing fully disabled (no
// ring), one with the ring and default sampling — answer the same warm
// GET; the overhead is composed as 1 + delta/wire, where delta is the
// in-process per-request server-side cost difference (median over
// request-interleaved chunks) and wire is the median client-observed
// latency of the same warm GET over loopback HTTP (see the measurement
// comment below for why a direct wire A/B cannot resolve 2%). The ratio
// is wall-clock and therefore volatile; the functional side of the
// tentpole — W3C traceparent join, the five tiling stage spans of a
// cache miss, span durations tiling the served latency, per-group nested
// spans surviving batch fan-out — is deterministic and canonical.
func TraceOverhead() hyp.Hypothesis {
	h := hyp.Hypothesis{
		Name:  "h-trace-overhead",
		Claim: "request tracing at default sampling costs <=2% on the warm-cache alloc path, and traces are well-formed",
	}
	h.Run = func(ctx context.Context, p hyp.Params) (*hyp.Verdict, error) {
		cfg := experiments.Config{Scale: experiments.Tiny, Seed: int64(p.Seed)}
		inst, err := cfg.SingleClass("IBM")
		if err != nil {
			return nil, err
		}
		if len(inst.Scenarios) < 4 {
			return nil, fmt.Errorf("h-trace-overhead: want >=4 scenarios, got %d", len(inst.Scenarios))
		}
		design, err := flexile.Design(inst, flexile.DesignOptions{})
		if err != nil {
			return nil, err
		}
		blob, err := flexile.ExportArtifact(inst, design, flexile.DesignOptions{})
		if err != nil {
			return nil, err
		}
		scratch, cleanup, err := p.ScratchDir()
		if err != nil {
			return nil, err
		}
		if cleanup != nil {
			defer cleanup()
		}
		path := filepath.Join(scratch, "h-trace.flxa")
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			return nil, err
		}

		base := serve.Config{CacheSize: len(inst.Scenarios), Workers: 2}
		plain, err := serve.New(path, base)
		if err != nil {
			return nil, err
		}
		defer plain.Close()
		traceCfg := base
		ring := obs.NewTraceRing(0, 0, 0)
		traceCfg.Ring = ring
		traceCfg.TraceEvery = serve.DefaultTraceEvery
		traced, err := serve.New(path, traceCfg)
		if err != nil {
			return nil, err
		}
		defer traced.Close()
		tsPlain := httptest.NewServer(plain)
		defer tsPlain.Close()
		tsTraced := httptest.NewServer(traced)
		defer tsTraced.Close()
		client := &http.Client{}
		defer client.CloseIdleConnections()

		allocTarget := func(failed []int) string {
			parts := make([]string, len(failed))
			for j, e := range failed {
				parts[j] = strconv.Itoa(e)
			}
			return "/v1/alloc?failed=" + strings.Join(parts, ",")
		}
		urlFor := func(ts *httptest.Server, scen int) string {
			return ts.URL + allocTarget(inst.Scenarios[scen].Failed)
		}
		get := func(url string, hdr map[string]string) (*http.Response, time.Duration, error) {
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
			if err != nil {
				return nil, 0, err
			}
			for k, v := range hdr {
				req.Header.Set(k, v)
			}
			start := time.Now()
			resp, err := client.Do(req)
			if err != nil {
				return nil, 0, err
			}
			_, rerr := io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			lat := time.Since(start)
			if rerr != nil {
				return nil, 0, rerr
			}
			if resp.StatusCode != http.StatusOK {
				return nil, 0, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
			}
			return resp, lat, nil
		}
		// The ring entry lands after the handler returns, which can race the
		// client seeing the response; poll briefly.
		findTrace := func(traceID string) (obs.TraceSnapshot, error) {
			deadline := time.Now().Add(2 * time.Second)
			for {
				for _, s := range ring.Recent() {
					if s.TraceID == traceID {
						return s, nil
					}
				}
				if time.Now().After(deadline) {
					return obs.TraceSnapshot{}, fmt.Errorf("trace %s never reached the ring", traceID)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}

		// --- deterministic functional checks -------------------------------

		// Satellite: even with tracing disabled the server assigns and
		// echoes X-Request-Id.
		resp, _, err := get(urlFor(tsPlain, 0), nil)
		if err != nil {
			return nil, err
		}
		idEchoed := 0
		if resp.Header.Get("X-Request-Id") != "" {
			idEchoed = 1
		}

		// A sampled traceparent (seed-derived, nonzero ids) joins: the
		// response keeps the trace id, and the first request for scenario 1
		// is a guaranteed cache miss whose five tiling spans — admit, parse,
		// cache, flight, write — sum to (at most, and most of) the served
		// duration, with the recompute nested inside.
		r := rng{s: p.Seed ^ 0x7472616365}
		ta, tb, tc := r.next()|1, r.next(), r.next()|1
		sentTrace := fmt.Sprintf("%016x%016x", ta, tb)
		resp, _, err = get(urlFor(tsTraced, 1), map[string]string{
			"traceparent": fmt.Sprintf("00-%s-%016x-01", sentTrace, tc),
		})
		if err != nil {
			return nil, err
		}
		joined := 0
		if strings.HasPrefix(resp.Header.Get("traceparent"), "00-"+sentTrace+"-") {
			joined = 1
		}
		snap, err := findTrace(sentTrace)
		if err != nil {
			return nil, err
		}
		tiling, tilingDur := 0, time.Duration(0)
		hasRecompute := 0
		for _, sp := range snap.Spans {
			if sp.Nested {
				if sp.Name == "recompute" {
					hasRecompute = 1
				}
				continue
			}
			tiling++
			tilingDur += sp.Dur
		}
		sumTiles := 0
		if tilingDur <= snap.Dur && tilingDur >= snap.Dur/2 {
			sumTiles = 1
		}

		// Batch fan-out: a traced POST /v1/alloc/batch over two cold keys
		// records one nested cache span per group under the same trace.
		r2 := rng{s: p.Seed ^ 0x6261746368}
		ba, bb, bc := r2.next()|1, r2.next(), r2.next()|1
		batchTrace := fmt.Sprintf("%016x%016x", ba, bb)
		body, err := json.Marshal(serve.BatchRequest{Queries: []serve.BatchQuery{
			{Failed: inst.Scenarios[2].Failed},
			{Failed: inst.Scenarios[3].Failed},
		}})
		if err != nil {
			return nil, err
		}
		breq, err := http.NewRequestWithContext(ctx, http.MethodPost, tsTraced.URL+"/v1/alloc/batch", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		breq.Header.Set("Content-Type", "application/json")
		breq.Header.Set("traceparent", fmt.Sprintf("00-%s-%016x-01", batchTrace, bc))
		bresp, err := client.Do(breq)
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, bresp.Body)
		bresp.Body.Close()
		if bresp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("batch: status %d", bresp.StatusCode)
		}
		bsnap, err := findTrace(batchTrace)
		if err != nil {
			return nil, err
		}
		groupSpans := 0
		for _, sp := range bsnap.Spans {
			if sp.Nested && strings.HasPrefix(sp.Name, "cache:") {
				groupSpans++
			}
		}

		// --- the overhead measurement --------------------------------------

		// A direct A/B timing of the two servers over loopback HTTP cannot
		// resolve a sub-2% signal on shared hardware: the round trip is
		// ~25-30µs of mostly syscalls and scheduling whose run-to-run noise
		// is itself several percent. So the overhead is composed from two
		// terms that each have high signal-to-noise:
		//
		//   1. the server-side per-request cost delta at default sampling,
		//      measured in-process (ServeHTTP against a recorder), where
		//      the handler costs only a few µs and the amortized tracing
		//      delta is ~10% of it — request-level interleaving cancels
		//      common-mode noise inside each chunk's delta, and the median
		//      over chunks discards scheduler outliers;
		//   2. the client-observed latency of a warm GET over loopback
		//      HTTP (median), the cost that delta amortizes over on the
		//      wire.
		//
		// overhead = 1 + delta/wire. Both terms are recorded.
		warmPlain := urlFor(tsPlain, 0)
		for i := 0; i < 16; i++ {
			if _, _, err := get(warmPlain, nil); err != nil {
				return nil, err
			}
		}
		target := allocTarget(inst.Scenarios[0].Failed)
		reqPlain := httptest.NewRequest(http.MethodGet, target, nil)
		reqTraced := httptest.NewRequest(http.MethodGet, target, nil)
		// Warm the traced server's cache in-process (its wire cache was
		// never touched) and both code paths' allocators.
		for i := 0; i < 64; i++ {
			plain.ServeHTTP(httptest.NewRecorder(), reqPlain)
			traced.ServeHTTP(httptest.NewRecorder(), reqTraced)
		}
		// n per chunk is a multiple of the sampling rate so every chunk
		// traces the same number of requests.
		chunks, n := 64, 16*serve.DefaultTraceEvery
		if p.Tier == hyp.TierSoak {
			chunks = 256
		}
		deltas := make([]float64, 0, chunks)
		for c := 0; c < chunks; c++ {
			var tPlain, tTraced time.Duration
			for i := 0; i < n; i++ {
				if (c+i)%2 == 0 {
					t0 := time.Now()
					plain.ServeHTTP(httptest.NewRecorder(), reqPlain)
					t1 := time.Now()
					traced.ServeHTTP(httptest.NewRecorder(), reqTraced)
					tPlain += t1.Sub(t0)
					tTraced += time.Since(t1)
				} else {
					t0 := time.Now()
					traced.ServeHTTP(httptest.NewRecorder(), reqTraced)
					t1 := time.Now()
					plain.ServeHTTP(httptest.NewRecorder(), reqPlain)
					tTraced += t1.Sub(t0)
					tPlain += time.Since(t1)
				}
			}
			deltas = append(deltas, float64(tTraced-tPlain)/float64(n))
		}
		sort.Float64s(deltas)
		delta := deltas[len(deltas)/2]
		if len(deltas)%2 == 0 {
			delta = (delta + deltas[len(deltas)/2-1]) / 2
		}
		wire := make([]float64, 0, 256)
		for i := 0; i < 256; i++ {
			_, lat, err := get(warmPlain, nil)
			if err != nil {
				return nil, err
			}
			wire = append(wire, float64(lat))
		}
		sort.Float64s(wire)
		wireMedian := wire[len(wire)/2]
		overhead := 1 + delta/wireMedian
		p.Logf("h-trace-overhead: amortized delta %.0fns/req (median of %d chunks of %d), warm GET %.0fns median: %.4fx",
			delta, chunks, n, wireMedian, overhead)

		v := hyp.NewVerdict(h, p)
		v.Workloadf("topology", "IBM")
		v.Workloadf("scale", "tiny")
		v.Workloadf("scenarios", "%d", len(inst.Scenarios))
		v.Workloadf("ring", "default (recent %d, slowest %d, errored %d)",
			obs.DefaultRingRecent, obs.DefaultRingSlowest, obs.DefaultRingErrored)
		v.Workloadf("trace-every", "%d (serve.DefaultTraceEvery)", serve.DefaultTraceEvery)
		v.Workloadf("estimator", "1 + delta/wire: in-process per-request delta (median of %d request-interleaved chunks of %d) over median warm GET loopback latency", chunks, n)
		v.Check("id-echoed-untraced", "==", float64(idEchoed), 1)
		v.Check("traceparent-joined", "==", float64(joined), 1)
		v.Check("miss-tiling-spans", "==", float64(tiling), 5)
		v.Check("miss-has-recompute-span", "==", float64(hasRecompute), 1)
		v.Check("span-sum-tiles", "==", float64(sumTiles), 1)
		v.Check("batch-group-spans", "==", float64(groupSpans), 2)
		v.CheckVolatile("trace-overhead-x", "<=", overhead, 1.02)
		v.Measure("amortized-delta-ns", delta)
		v.Measure("warm-get-wire-ns", wireMedian)
		v.Measure("trace-overhead-x", overhead)
		return v.Finalize(), nil
	}
	return h
}
