package exps

import (
	"context"
	"encoding/json"
	"os"
	"testing"

	"flexile/internal/hyp"
)

// TestQuickTierExperiments runs every non-soak hypothesis in-process at
// the quick tier and asserts the two halves of the harness contract
// separately:
//
//   - every deterministic check must pass — these are pure functions of
//     the seed (counts, byte-identity, emulation gaps, contract
//     violations), so a failure is a real regression, and
//   - the seed-deterministic content of each verdict must match the
//     checked-in hypotheses/<name>/verdict.json.
//
// Volatile (wall-clock) checks are asserted structurally — they measured
// something — but their pass/fail is left to `make hypotheses`, which
// runs without the race detector and coverage instrumentation that skew
// timing here. The canonical comparison therefore normalizes the
// volatile pass bits on both sides before diffing; the full byte-exact
// gate stays cmd/flexile-hyp's job. h-serve-soak is exercised (and its
// bitwise determinism proven) by TestSoakDeterminism.
func TestQuickTierExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick-tier experiment battery")
	}
	reg, err := All()
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	scratch := t.TempDir()
	for _, h := range reg.All() {
		if h.Name == "h-serve-soak" {
			continue
		}
		t.Run(h.Name, func(t *testing.T) {
			res := hyp.Run(context.Background(), h, hyp.Params{Seed: 1, Scratch: scratch})
			if res.Err != nil {
				t.Fatalf("run: %v", res.Err)
			}
			v := res.Verdict
			if len(v.Checks) == 0 {
				t.Fatal("verdict has no checks")
			}
			for _, c := range v.Checks {
				if !c.Volatile && !c.Pass {
					t.Errorf("deterministic check %s: got %v, want %s %v", c.Name, c.Got, c.Op, c.Want)
				}
				if c.Volatile && c.Got <= 0 {
					t.Errorf("volatile check %s measured nothing (got %v)", c.Name, c.Got)
				}
			}
			want, err := os.ReadFile(hyp.VerdictFile("../../../hypotheses", h.Name))
			if err != nil {
				t.Fatalf("checked-in verdict: %v", err)
			}
			got := v.Canonical()
			if ng, nw := normalizeVolatile(t, got), normalizeVolatile(t, want); ng != nw {
				t.Errorf("deterministic verdict content drifted from the checked-in file\n--- checked in ---\n%s\n--- recomputed ---\n%s", nw, ng)
			}
		})
	}
}

// normalizeVolatile reserializes a canonical verdict with every volatile
// check (and the overall pass, which folds them in) forced to passing, so
// the comparison pins only seed-deterministic content.
func normalizeVolatile(t *testing.T, canonical []byte) string {
	t.Helper()
	var v hyp.Verdict
	if err := json.Unmarshal(canonical, &v); err != nil {
		t.Fatalf("unmarshal canonical verdict: %v", err)
	}
	for i := range v.Checks {
		if v.Checks[i].Volatile {
			v.Checks[i].Pass = true
		}
	}
	v.Pass = true
	out, err := json.Marshal(&v)
	if err != nil {
		t.Fatalf("remarshal canonical verdict: %v", err)
	}
	return string(out)
}
