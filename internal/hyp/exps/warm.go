package exps

import (
	"context"
	"time"

	"flexile"
	"flexile/internal/experiments"
	"flexile/internal/hyp"
)

// WarmSpeedup is h-warm-speedup: the PR 6 claim, formerly gated only by
// `make benchgate`, that the opt-in warm-started batched offline solve
// (DesignOptions.WarmStart) is at least 2× faster wall-clock than the
// default cold solve on the IBM gate workload (gravity demands ×1.5, the
// regime where scenario-LP pivot work dominates). Min-of-3 on both sides
// filters scheduler noise; the measured ratio on the reference container
// is ~2.2×. The speedup is wall-clock and therefore volatile: only the 2×
// threshold and the outcome are canonical.
func WarmSpeedup() hyp.Hypothesis {
	h := hyp.Hypothesis{
		Name:  "h-warm-speedup",
		Claim: "the warm-started batched offline solve is >=2x faster than the cold default on the IBM gate workload",
	}
	h.Run = func(ctx context.Context, p hyp.Params) (*hyp.Verdict, error) {
		cfg := experiments.Config{Scale: experiments.Tiny, Seed: int64(p.Seed)}
		inst, err := cfg.SingleClass("IBM")
		if err != nil {
			return nil, err
		}
		inst.ScaleDemands(1.5)

		const runs = 3
		minRun := func(o flexile.DesignOptions) (time.Duration, error) {
			best := time.Duration(1<<63 - 1)
			for r := 0; r < runs; r++ {
				if err := ctx.Err(); err != nil {
					return 0, err
				}
				start := time.Now()
				if _, err := flexile.Design(inst, o); err != nil {
					return 0, err
				}
				if e := time.Since(start); e < best {
					best = e
				}
			}
			return best, nil
		}
		cold, err := minRun(flexile.DesignOptions{Workers: 1})
		if err != nil {
			return nil, err
		}
		warm, err := minRun(flexile.DesignOptions{Workers: 1, WarmStart: true})
		if err != nil {
			return nil, err
		}
		speedup := cold.Seconds() / warm.Seconds()
		p.Logf("h-warm-speedup: cold %v, warm %v: %.2fx", cold, warm, speedup)

		// The claim is 2×; the quick tier — run on every CI push, where
		// scheduler noise routinely costs tens of percent — gates on a
		// conservative floor, and the soak tier enforces the full claim.
		floor := 1.5
		if p.Tier == hyp.TierSoak {
			floor = 2.0
		}
		v := hyp.NewVerdict(h, p)
		v.Workloadf("topology", "IBM")
		v.Workloadf("scale", "tiny")
		v.Workloadf("demand-scale", "1.5")
		v.Workloadf("runs", "min-of-%d per side, workers=1", runs)
		v.Workloadf("scenarios", "%d", len(inst.Scenarios))
		v.CheckVolatile("warm-speedup-x", ">=", speedup, floor)
		v.Measure("cold-s", cold.Seconds())
		v.Measure("warm-s", warm.Seconds())
		v.Measure("warm-speedup-x", speedup)
		return v.Finalize(), nil
	}
	return h
}
