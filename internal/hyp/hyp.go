// Package hyp is the hypothesis harness (DESIGN.md §15): every scale and
// correctness claim the repository makes — "warm starts are ≥2× on the IBM
// gate workload", "batch=32 amortizes ≥3×", "every overload response is an
// explicit shed", "emulated delivered bandwidth tracks the model within the
// Fig. 9 tolerance" — is a named, seeded experiment that declares its
// workload, runs it reproducibly, and evaluates a machine-checkable verdict.
//
// The verdict's canonical form (see Verdict.Canonical) contains only
// deterministic content — the claim, the seed, the workload description,
// each check's threshold and pass/fail, and measured values that are pure
// functions of the seed. Wall-clock measurements are recorded separately
// and never enter the canonical payload, so the canonical verdict of a
// passing hypothesis is bit-identical across runs, machines, and worker
// counts. cmd/flexile-hyp re-runs the experiments and diffs the canonical
// verdicts against the files checked in under hypotheses/; CI fails on
// drift (`make hypotheses`).
package hyp

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Tier selects how much work an experiment does.
type Tier int

const (
	// TierQuick is the CI tier: seconds per hypothesis, verdicts diffed
	// against the checked-in files.
	TierQuick Tier = iota
	// TierSoak is the long-running tier (`make soak`): same experiments,
	// larger workloads bounded by Params.Duration. Soak verdicts are
	// checked for PASS but not diffed (the workload differs from the
	// checked-in quick-tier one).
	TierSoak
)

func (t Tier) String() string {
	if t == TierSoak {
		return "soak"
	}
	return "quick"
}

// Params configure one harness run; every hypothesis receives the same
// Params, so a run is reproducible from (tier, seed, duration) alone.
type Params struct {
	// Seed drives every stochastic choice an experiment makes (workload
	// generation, scenario streams, storm clients). The canonical verdict
	// is a pure function of Seed (plus Tier/Duration workload knobs).
	Seed uint64
	// Tier selects quick or soak workloads.
	Tier Tier
	// Workers is client-side parallelism (e.g. concurrent soak queriers).
	// It must never change a canonical verdict — only wall-clock. 0 means
	// a small default.
	Workers int
	// Duration bounds soak-tier workloads. The bound is applied
	// deterministically (a planned request count derived from Duration,
	// not a wall-clock cutoff), so the trace stays a pure function of the
	// seed. 0 means the tier default.
	Duration time.Duration
	// Scratch is a directory for build products and artifacts; empty
	// means os.MkdirTemp per experiment.
	Scratch string
	// Log receives progress lines; nil discards them.
	Log io.Writer
}

func (p Params) withDefaults() Params {
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Workers == 0 {
		p.Workers = 4
	}
	if p.Log == nil {
		p.Log = io.Discard
	}
	return p
}

// Logf writes one progress line to the run log.
func (p Params) Logf(format string, args ...any) {
	fmt.Fprintf(p.Log, format+"\n", args...)
}

// ScratchDir returns a usable scratch directory, creating a temporary one
// when Params.Scratch is empty. The caller owns cleanup only for the
// temporary case, signalled by cleanup != nil.
func (p Params) ScratchDir() (dir string, cleanup func(), err error) {
	if p.Scratch != "" {
		return p.Scratch, nil, nil
	}
	dir, err = os.MkdirTemp("", "flexile-hyp-*")
	if err != nil {
		return "", nil, err
	}
	return dir, func() { os.RemoveAll(dir) }, nil
}

// Hypothesis is one named, seeded, re-runnable experiment.
type Hypothesis struct {
	// Name is the experiment id and its directory under hypotheses/
	// (h-warm-speedup, h-serve-soak, ...).
	Name string
	// Claim is the one-sentence statement under test.
	Claim string
	// Soakable marks experiments with a distinct soak-tier workload;
	// `make soak` runs only these at TierSoak.
	Soakable bool
	// Run executes the experiment and returns its verdict. An error means
	// the experiment could not run (build failure, port in use) — distinct
	// from a FAIL verdict, which means it ran and the claim is false.
	Run func(ctx context.Context, p Params) (*Verdict, error)
}

// Check is one machine-checkable comparison inside a verdict.
type Check struct {
	Name string  `json:"name"`
	Op   string  `json:"op"` // ">=", "<=", "=="
	Want float64 `json:"want"`
	// Got is the measured value. For volatile checks (wall-clock ratios)
	// it is zeroed in the canonical form; the real value lives in the
	// per-run measured.json.
	Got float64 `json:"got"`
	// Volatile marks checks whose Got varies run to run; only the
	// threshold and the pass/fail bit are canonical.
	Volatile bool `json:"volatile,omitempty"`
	Pass     bool `json:"pass"`
}

// Verdict is a hypothesis run's machine-checkable outcome.
type Verdict struct {
	Hypothesis string `json:"hypothesis"`
	Claim      string `json:"claim"`
	Tier       string `json:"tier"`
	Seed       uint64 `json:"seed"`
	// Workload describes the experiment's inputs deterministically
	// (topology, scenario count, stream length, tolerance, ...). JSON maps
	// render with sorted keys, so the encoding is stable.
	Workload map[string]string `json:"workload,omitempty"`
	Checks   []Check           `json:"checks"`
	Pass     bool              `json:"pass"`
	// Measured holds volatile observations (latencies, wall-clock,
	// throughput) for the per-run record; excluded from Canonical.
	Measured map[string]float64 `json:"measured,omitempty"`
}

// NewVerdict starts a verdict for h under p.
func NewVerdict(h Hypothesis, p Params) *Verdict {
	return &Verdict{
		Hypothesis: h.Name,
		Claim:      h.Claim,
		Tier:       p.Tier.String(),
		Seed:       p.Seed,
		Workload:   map[string]string{},
		Measured:   map[string]float64{},
	}
}

// Workloadf records one deterministic workload attribute.
func (v *Verdict) Workloadf(key, format string, args ...any) {
	v.Workload[key] = fmt.Sprintf(format, args...)
}

// compare evaluates got <op> want.
func compare(op string, got, want float64) (bool, error) {
	switch op {
	case ">=":
		return got >= want, nil
	case "<=":
		return got <= want, nil
	case "==":
		return got == want, nil
	default:
		return false, fmt.Errorf("hyp: unknown check op %q", op)
	}
}

func (v *Verdict) check(name, op string, got, want float64, volatile bool) bool {
	ok, err := compare(op, got, want)
	if err != nil {
		panic(err) // ops are compile-time literals in experiment code
	}
	v.Checks = append(v.Checks, Check{Name: name, Op: op, Want: want, Got: got, Volatile: volatile, Pass: ok})
	return ok
}

// Check records a deterministic comparison: Got is a pure function of the
// seed and enters the canonical verdict.
func (v *Verdict) Check(name, op string, got, want float64) bool {
	return v.check(name, op, got, want, false)
}

// CheckVolatile records a timing-dependent comparison: only the threshold
// and the outcome are canonical; Got is preserved in measured.json.
func (v *Verdict) CheckVolatile(name, op string, got, want float64) bool {
	return v.check(name, op, got, want, true)
}

// Measure records a volatile observation (never canonical).
func (v *Verdict) Measure(name string, val float64) { v.Measured[name] = val }

// Finalize computes the overall PASS/FAIL: every check must pass.
func (v *Verdict) Finalize() *Verdict {
	v.Pass = len(v.Checks) > 0
	for _, c := range v.Checks {
		if !c.Pass {
			v.Pass = false
		}
	}
	return v
}

// Canonical renders the deterministic verdict payload: indented JSON with
// volatile gots zeroed and Measured dropped. Two runs of a hypothesis at
// the same seed/tier must produce bit-identical canonical payloads; this
// is what hypotheses/<name>/verdict.json pins and CI diffs.
func (v *Verdict) Canonical() []byte {
	c := *v
	c.Measured = nil
	c.Checks = append([]Check(nil), v.Checks...)
	for i := range c.Checks {
		if c.Checks[i].Volatile {
			c.Checks[i].Got = 0
		}
	}
	out, err := json.MarshalIndent(&c, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("hyp: canonical marshal: %v", err)) // struct of plain values
	}
	return append(out, '\n')
}

// Record renders the full per-run record (volatile values included).
func (v *Verdict) Record() []byte {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("hyp: record marshal: %v", err))
	}
	return append(out, '\n')
}

// VerdictFile is the checked-in canonical verdict path for a hypothesis.
func VerdictFile(dir, name string) string {
	return filepath.Join(dir, name, "verdict.json")
}

// RecordFile is the per-run volatile record path (gitignored).
func RecordFile(dir, name string) string {
	return filepath.Join(dir, name, "measured.json")
}

// WriteDir writes the canonical verdict and the per-run record under
// dir/<hypothesis>/.
func (v *Verdict) WriteDir(dir string) error {
	d := filepath.Join(dir, v.Hypothesis)
	if err := os.MkdirAll(d, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(VerdictFile(dir, v.Hypothesis), v.Canonical(), 0o644); err != nil {
		return err
	}
	return os.WriteFile(RecordFile(dir, v.Hypothesis), v.Record(), 0o644)
}

// WriteRecord writes only the per-run record (every run, even verify-only
// ones, leaves its measurements behind for inspection).
func (v *Verdict) WriteRecord(dir string) error {
	d := filepath.Join(dir, v.Hypothesis)
	if err := os.MkdirAll(d, 0o755); err != nil {
		return err
	}
	return os.WriteFile(RecordFile(dir, v.Hypothesis), v.Record(), 0o644)
}

// ErrDrift is wrapped by Verify when a recomputed canonical verdict
// differs from the checked-in file.
var ErrDrift = fmt.Errorf("hyp: verdict drift")

// Verify compares the verdict's canonical payload against the checked-in
// file under dir. A missing file, or any byte difference, is drift: the
// claim's evidence no longer matches what the repository asserts, so CI
// must fail until the file is regenerated (flexile-hyp -update) and the
// diff reviewed.
func (v *Verdict) Verify(dir string) error {
	path := VerdictFile(dir, v.Hypothesis)
	want, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("%w: %s: no checked-in verdict (%v); run flexile-hyp -update", ErrDrift, v.Hypothesis, err)
	}
	got := v.Canonical()
	if !bytes.Equal(got, want) {
		return fmt.Errorf("%w: %s: recomputed verdict differs from %s\n--- checked in ---\n%s--- recomputed ---\n%s",
			ErrDrift, v.Hypothesis, path, want, got)
	}
	return nil
}

// --- registry ---

// Registry is an ordered set of hypotheses.
type Registry struct {
	hyps []Hypothesis
}

// NewRegistry builds a registry, rejecting duplicate names.
func NewRegistry(hyps ...Hypothesis) (*Registry, error) {
	seen := map[string]bool{}
	for _, h := range hyps {
		if h.Name == "" || h.Run == nil {
			return nil, fmt.Errorf("hyp: hypothesis with empty name or nil Run")
		}
		if seen[h.Name] {
			return nil, fmt.Errorf("hyp: duplicate hypothesis %q", h.Name)
		}
		seen[h.Name] = true
	}
	r := &Registry{hyps: append([]Hypothesis(nil), hyps...)}
	sort.SliceStable(r.hyps, func(i, j int) bool { return r.hyps[i].Name < r.hyps[j].Name })
	return r, nil
}

// All returns the hypotheses in name order.
func (r *Registry) All() []Hypothesis { return append([]Hypothesis(nil), r.hyps...) }

// Get returns the named hypothesis.
func (r *Registry) Get(name string) (Hypothesis, bool) {
	for _, h := range r.hyps {
		if h.Name == name {
			return h, true
		}
	}
	return Hypothesis{}, false
}

// Result pairs a hypothesis with its run outcome.
type Result struct {
	Hypothesis Hypothesis
	Verdict    *Verdict // nil when Err != nil
	Err        error
	Elapsed    time.Duration
}

// Run executes one hypothesis under p (after applying defaults).
func Run(ctx context.Context, h Hypothesis, p Params) Result {
	p = p.withDefaults()
	start := time.Now()
	v, err := h.Run(ctx, p)
	return Result{Hypothesis: h, Verdict: v, Err: err, Elapsed: time.Since(start)}
}
