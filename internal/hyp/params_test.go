package hyp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestParamsScratchAndLog covers the Params plumbing experiments lean on:
// an explicit scratch dir is returned as-is with no cleanup (the caller
// owns it), an empty one allocates a temp dir whose cleanup removes it,
// and Logf writes one line to the run log.
func TestParamsScratchAndLog(t *testing.T) {
	own := t.TempDir()
	dir, cleanup, err := Params{Scratch: own}.ScratchDir()
	if err != nil || dir != own || cleanup != nil {
		t.Fatalf("explicit scratch: dir %q cleanup-nil %v err %v, want %q true nil", dir, cleanup == nil, err, own)
	}

	dir, cleanup, err = Params{}.ScratchDir()
	if err != nil {
		t.Fatalf("temp scratch: %v", err)
	}
	if cleanup == nil {
		t.Fatal("temp scratch returned no cleanup")
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("temp scratch %q not created: %v", dir, err)
	}
	cleanup()
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("cleanup left %q behind (stat err %v)", dir, err)
	}

	var log strings.Builder
	p := Params{Log: &log}.withDefaults()
	p.Logf("solved %d scenarios", 12)
	if log.String() != "solved 12 scenarios\n" {
		t.Fatalf("Logf wrote %q", log.String())
	}
}

// TestWriteDirAndRecord covers the two persistence paths: WriteDir lays
// down both the canonical verdict and the measurement record, and
// WriteRecord refreshes only the record, leaving the verdict untouched.
func TestWriteDirAndRecord(t *testing.T) {
	h := Hypothesis{Name: "h-files", Claim: "files are written", Run: nil}
	v := NewVerdict(h, Params{Seed: 3}.withDefaults())
	v.Check("count", "==", 2, 2)
	v.CheckVolatile("speedup-x", ">=", 2.5, 2)
	v.Measure("wall-ns", 123456)
	v.Finalize()

	dir := t.TempDir()
	if err := v.WriteDir(dir); err != nil {
		t.Fatalf("WriteDir: %v", err)
	}
	verdict, err := os.ReadFile(VerdictFile(dir, "h-files"))
	if err != nil {
		t.Fatalf("verdict file: %v", err)
	}
	if string(verdict) != string(v.Canonical()) {
		t.Error("verdict file is not the canonical payload")
	}
	record, err := os.ReadFile(RecordFile(dir, "h-files"))
	if err != nil {
		t.Fatalf("record file: %v", err)
	}
	if !strings.Contains(string(record), "wall-ns") || !strings.Contains(string(record), "2.5") {
		t.Errorf("record dropped measured values:\n%s", record)
	}

	// WriteRecord into a fresh dir creates only the record.
	dir2 := t.TempDir()
	if err := v.WriteRecord(dir2); err != nil {
		t.Fatalf("WriteRecord: %v", err)
	}
	if _, err := os.Stat(RecordFile(dir2, "h-files")); err != nil {
		t.Fatalf("record not written: %v", err)
	}
	if _, err := os.Stat(VerdictFile(dir2, "h-files")); !os.IsNotExist(err) {
		t.Fatalf("WriteRecord wrote a verdict (stat err %v)", err)
	}

	// A file where the hypothesis directory should be is an error, not a
	// panic, on both paths.
	blocked := filepath.Join(t.TempDir(), "flat")
	if err := os.WriteFile(filepath.Join(blocked), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := v.WriteDir(filepath.Join(blocked, "sub")); err == nil {
		t.Error("WriteDir under a plain file succeeded")
	}
	if err := v.WriteRecord(filepath.Join(blocked, "sub")); err == nil {
		t.Error("WriteRecord under a plain file succeeded")
	}
}
