package experiments

import (
	"fmt"
	"math"
	"strings"

	"flexile/internal/eval"
	"flexile/internal/scheme"
	"flexile/internal/scheme/flexile"
	"flexile/internal/scheme/scenbest"
	"flexile/internal/scheme/swan"
)

// Fig13Result reproduces §6.3's multi-class per-scenario analysis on the
// Sprint topology: the probability-weighted CDF of the worst-performing
// flow's loss per class per scenario, for SWAN-Maxmin, Flexile and
// ScenBest-Multi — plus the γ-bounded Flexile variant the paper evaluates
// on Quest.
type Fig13Result struct {
	Topology string
	// WorstLossCDF[scheme][class] is the weighted CDF over scenarios of
	// the class's worst connected flow's loss.
	WorstLossCDF map[string][]([]eval.CDFPoint)
	// HighLossAt999 maps scheme → worst high-priority flow loss at the
	// 99.9% scenario quantile (paper: zero for all three schemes).
	HighLossAt999 map[string]float64
	// LowLossAt999 likewise for the low class.
	LowLossAt999 map[string]float64
	// PercLossLow maps scheme → low-class PercLoss (the across-scenario
	// metric where ScenBest-Multi does poorly).
	PercLossLow map[string]float64
}

// Fig13 runs the per-scenario loss analysis.
func Fig13(cfg Config) (*Fig13Result, error) {
	cfg = cfg.withDefaults()
	name := "Sprint"
	inst, err := cfg.TwoClass(name)
	if err != nil {
		return nil, err
	}
	probs := ScenarioProbs(inst)
	cov := 0.0
	for _, p := range probs {
		cov += p
	}
	// A capped scenario set may cover less than 99.9%; scale the quantile
	// into the enumerated mass (excluding the worst ~0.1% of it, as the
	// true 99.9% quantile would) so the metric reflects scheme behaviour
	// rather than truncation.
	lvl := math.Min(0.999, 0.999*cov)
	res := &Fig13Result{
		Topology:      name,
		WorstLossCDF:  map[string][]([]eval.CDFPoint){},
		HighLossAt999: map[string]float64{},
		LowLossAt999:  map[string]float64{},
		PercLossLow:   map[string]float64{},
	}
	schemes := []scheme.Scheme{
		&swan.Maxmin{},
		&flexile.Scheme{},
		&flexile.SequentialScheme{},
		&scenbest.Scheme{DisplayName: "ScenBest-Multi"},
	}
	for _, s := range schemes {
		run, err := RunScheme(s, inst)
		if err != nil {
			return nil, err
		}
		var classCDFs [][]eval.CDFPoint
		for k := range inst.Classes {
			flows := eval.ClassFlows(inst, k)
			worst := make([]float64, len(inst.Scenarios))
			for q := range inst.Scenarios {
				worst[q] = eval.ScenLoss(inst, run.Losses, q, flows, true)
			}
			cdf := eval.CDF(worst, probs)
			classCDFs = append(classCDFs, cdf)
			at999 := eval.Quantile(cdf, lvl)
			if k == 0 {
				res.HighLossAt999[run.Scheme] = at999
			} else {
				res.LowLossAt999[run.Scheme] = at999
			}
		}
		res.WorstLossCDF[run.Scheme] = classCDFs
		res.PercLossLow[run.Scheme] = run.PercLoss[len(inst.Classes)-1]
	}
	return res, nil
}

// Render formats the analysis.
func (r *Fig13Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 13: worst flow loss per scenario, two classes (%s)\n", r.Topology)
	for _, name := range []string{"SWAN-Maxmin", "Flexile", "Flexile-Sequential", "ScenBest-Multi"} {
		if _, ok := r.HighLossAt999[name]; !ok {
			continue
		}
		fmt.Fprintf(&b, "  %-15s high@99.9%%: %5.1f%%  low@99.9%%: %5.1f%%  low PercLoss: %5.1f%%\n",
			name, 100*r.HighLossAt999[name], 100*r.LowLossAt999[name], 100*r.PercLossLow[name])
	}
	return b.String()
}

// GammaVariantResult evaluates the §4.4/§6.3 γ-bounded Flexile variant:
// how much the per-scenario worst low-priority loss grows versus the
// per-scenario optimum, against the PercLoss it achieves.
type GammaVariantResult struct {
	Topology string
	Gamma    float64
	// MaxExtraScenLoss is the largest increase of the worst low-priority
	// flow's loss over ScenBest-Multi in any scenario (paper: ≤ γ).
	MaxExtraScenLoss float64
	// PercLossFlexileGamma / PercLossScenBest / PercLossSWAN compare the
	// across-scenario metric (paper Quest: 16% vs 35% vs 57%).
	PercLossFlexileGamma float64
	PercLossScenBest     float64
	PercLossSWAN         float64
}

// GammaVariant runs γ-bounded Flexile on the given topology (paper: Quest,
// γ = 5%).
func GammaVariant(cfg Config, topoName string, gamma float64) (*GammaVariantResult, error) {
	cfg = cfg.withDefaults()
	inst, err := cfg.TwoClass(topoName)
	if err != nil {
		return nil, err
	}
	fx := &flexile.Scheme{Opt: flexile.Options{Gamma: gamma}}
	fxRun, err := RunScheme(fx, inst)
	if err != nil {
		return nil, err
	}
	sbRun, err := RunScheme(&scenbest.Scheme{DisplayName: "ScenBest-Multi"}, inst)
	if err != nil {
		return nil, err
	}
	swRun, err := RunScheme(&swan.Maxmin{}, inst)
	if err != nil {
		return nil, err
	}
	lowK := len(inst.Classes) - 1
	flows := eval.ClassFlows(inst, lowK)
	maxExtra := 0.0
	for q := range inst.Scenarios {
		fxL := eval.ScenLoss(inst, fxRun.Losses, q, flows, true)
		sbL := eval.ScenLoss(inst, sbRun.Losses, q, flows, true)
		if d := fxL - sbL; d > maxExtra {
			maxExtra = d
		}
	}
	return &GammaVariantResult{
		Topology:             topoName,
		Gamma:                gamma,
		MaxExtraScenLoss:     maxExtra,
		PercLossFlexileGamma: fxRun.PercLoss[lowK],
		PercLossScenBest:     sbRun.PercLoss[lowK],
		PercLossSWAN:         swRun.PercLoss[lowK],
	}, nil
}

// Render formats the γ-variant analysis.
func (r *GammaVariantResult) Render() string {
	return fmt.Sprintf("§6.3 γ-variant (%s, γ=%.0f%%): max extra ScenLoss %.1f%%; low PercLoss — Flexile(γ) %.1f%%, ScenBest-Multi %.1f%%, SWAN-Maxmin %.1f%%\n",
		r.Topology, 100*r.Gamma, 100*r.MaxExtraScenLoss,
		100*r.PercLossFlexileGamma, 100*r.PercLossScenBest, 100*r.PercLossSWAN)
}
