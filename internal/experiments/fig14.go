package experiments

import (
	"fmt"
	"strings"
	"time"

	"flexile/internal/scheme"
	"flexile/internal/scheme/flexile"
	"flexile/internal/scheme/ip"
	"flexile/internal/scheme/swan"
	"flexile/internal/te"
	"flexile/internal/topo"
)

// Fig14Result tracks Flexile's convergence to the optimal PercLoss across
// decomposition iterations (paper Fig. 14): the optimality gap
// (Flexile PercLoss − optimal PercLoss) per iteration per topology.
type Fig14Result struct {
	Topologies []string
	// Gap[i][it] is the optimality gap of Topologies[i] after iteration
	// it+1 (missing iterations repeat the converged value).
	Gap [][]float64
	// Iterations is the per-topology iteration count Flexile actually ran.
	Iterations []int
	// OptimalProven marks topologies where the IP proved optimality.
	OptimalProven []bool
	// FracOptimalAtIter[it] is the fraction of topologies at gap ≤ 1e-6 by
	// iteration it+1 (paper: 40% at iteration 1, 100% by iteration 5).
	FracOptimalAtIter []float64
	// Failures lists topologies that failed and were excluded.
	Failures []TopoFailure
}

// Fig14 runs Flexile and the direct IP on each topology and reports the
// per-iteration optimality gap. The IP limits this experiment to small
// instances (the same constraint the paper faced); topologies where the IP
// cannot finish are skipped.
func Fig14(cfg Config, maxIter int) (*Fig14Result, error) {
	cfg = cfg.withDefaults()
	if maxIter == 0 {
		maxIter = 5
	}
	// The direct IP replicates the routing for every scenario, so its LP
	// relaxations grow with |Q|·|P|; cap the scenario budget for this
	// comparison (both solvers see the same instance, which is all the
	// optimality-gap measurement needs).
	if cfg.MaxScenarios > 12 {
		cfg.MaxScenarios = 12
	}
	res := &Fig14Result{}
	// Per-topology convergence runs are independent; fan out and collect by
	// index (nil = skipped), assembling in topology order afterwards.
	type row struct {
		gaps       []float64
		iterations int
		proven     bool
	}
	rows := make([]*row, len(cfg.Topologies))
	fails, err := cfg.forEachTopo(func(i int, name string) error {
		info, ok := topo.Lookup(name)
		if ok && info.Nodes > ipNodeLimit {
			return nil // the direct MIP is hopeless beyond small networks
		}
		inst, err := cfg.SingleClass(name)
		if err != nil {
			return err
		}
		off, err := flexile.Offline(inst, flexile.Options{MaxIterations: maxIter})
		if err != nil {
			return err
		}
		ipS := &ip.Scheme{MaxNodes: 400}
		ipRun, err := RunScheme(ipS, inst)
		if err != nil {
			return err
		}
		optimal := ipRun.PercLoss[0]
		gaps := make([]float64, maxIter)
		for it := 0; it < maxIter; it++ {
			v := off.IterPercLoss[min(it, len(off.IterPercLoss)-1)][0]
			g := v - optimal
			if g < 0 {
				g = 0 // the IP hit its node limit below Flexile's quality
			}
			gaps[it] = g
		}
		rows[i] = &row{gaps: gaps, iterations: off.Iterations, proven: ipS.Status.String() == "optimal"}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Failures = fails
	for i, name := range cfg.Topologies {
		if rows[i] == nil {
			continue // skipped (IP too large) or failed
		}
		res.Topologies = append(res.Topologies, name)
		res.Gap = append(res.Gap, rows[i].gaps)
		res.Iterations = append(res.Iterations, rows[i].iterations)
		res.OptimalProven = append(res.OptimalProven, rows[i].proven)
	}
	res.FracOptimalAtIter = make([]float64, maxIter)
	for it := 0; it < maxIter; it++ {
		n := 0
		for i := range res.Topologies {
			if res.Gap[i][it] <= 1e-6 {
				n++
			}
		}
		if len(res.Topologies) > 0 {
			res.FracOptimalAtIter[it] = float64(n) / float64(len(res.Topologies))
		}
	}
	return res, nil
}

// ipNodeLimit is the largest topology (node count) the direct IP is asked
// to solve; beyond it the replicated per-scenario routing blows past what
// the dense-basis simplex handles in reasonable time (the paper saw the
// same wall at Tinet/Deltacom with Gurobi).
const ipNodeLimit = 13

// Render formats the convergence report.
func (r *Fig14Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 14: optimality gap per decomposition iteration\n")
	for i, name := range r.Topologies {
		fmt.Fprintf(&b, "  %-16s gaps:", name)
		for _, g := range r.Gap[i] {
			fmt.Fprintf(&b, " %5.1f%%", 100*g)
		}
		fmt.Fprintf(&b, "  (ran %d iters, IP proven: %v)\n", r.Iterations[i], r.OptimalProven[i])
	}
	b.WriteString("  fraction of topologies at optimal:")
	for it, fr := range r.FracOptimalAtIter {
		fmt.Fprintf(&b, " iter%d=%3.0f%%", it+1, 100*fr)
	}
	b.WriteString("\n")
	b.WriteString(renderFailures(r.Failures))
	return b.String()
}

// Fig15Result compares offline solving time of the direct IP and Flexile's
// decomposition as a function of topology size (paper Fig. 15).
type Fig15Result struct {
	Topologies []string
	Links      []int
	FlexileT   []time.Duration
	IPT        []time.Duration // 0 when the IP exceeded its budget
	IPTimedOut []bool
	// SubproblemSolves per topology (the pruning effectiveness).
	SubproblemSolves []int
	// Failures lists topologies that failed and were excluded.
	Failures []TopoFailure
}

// Fig15 measures solving times. IP runs get a node budget standing in for
// the paper's 1-hour limit; exceeding it is reported as timed out (the
// paper's Deltacom/Tinet behaviour).
func Fig15(cfg Config, ipNodeBudget int) (*Fig15Result, error) {
	cfg = cfg.withDefaults()
	if ipNodeBudget == 0 {
		ipNodeBudget = 300
	}
	// Same scenario cap as Fig14: the IP's LPs blow up with |Q|·|P| and
	// the timing comparison needs both solvers on one instance.
	if cfg.MaxScenarios > 12 {
		cfg.MaxScenarios = 12
	}
	res := &Fig15Result{}
	// Fan out per topology; note that with Workers > 1 the per-topology
	// wall-clock samples contend for cores, so timing-quality runs should
	// use Workers=1 (the figure's shape — decomposition ≪ IP — survives
	// contention either way).
	type row struct {
		links, subSolves int
		flexT, ipT       time.Duration
		ipTLE            bool
	}
	rows := make([]row, len(cfg.Topologies))
	fails, err := cfg.forEachTopo(func(i int, name string) error {
		inst, err := cfg.SingleClass(name)
		if err != nil {
			return err
		}
		off, err := flexile.Offline(inst, flexile.Options{})
		if err != nil {
			return err
		}
		rows[i] = row{
			links:     inst.Topo.G.NumEdges(),
			subSolves: off.SubproblemSolves,
			flexT:     off.Elapsed,
		}
		info, _ := topo.Lookup(name)
		if info.Nodes > ipNodeLimit {
			// Stand-in for the paper's observation that the IP cannot
			// finish large topologies within an hour.
			rows[i].ipTLE = true
			return nil
		}
		ipS := &ip.Scheme{MaxNodes: ipNodeBudget}
		start := time.Now()
		if _, err := ipS.Route(inst); err != nil {
			return err
		}
		rows[i].ipT = time.Since(start)
		rows[i].ipTLE = ipS.Status.String() != "optimal"
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Failures = fails
	failed := failedSet(fails)
	for i, name := range cfg.Topologies {
		if failed[name] {
			continue
		}
		res.Topologies = append(res.Topologies, name)
		res.Links = append(res.Links, rows[i].links)
		res.FlexileT = append(res.FlexileT, rows[i].flexT)
		res.SubproblemSolves = append(res.SubproblemSolves, rows[i].subSolves)
		res.IPT = append(res.IPT, rows[i].ipT)
		res.IPTimedOut = append(res.IPTimedOut, rows[i].ipTLE)
	}
	return res, nil
}

// Render formats the timing report.
func (r *Fig15Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 15: offline solving time vs topology size\n")
	fmt.Fprintf(&b, "  %-16s %6s %12s %14s %10s\n", "topology", "links", "Flexile", "IP", "subLPs")
	for i, name := range r.Topologies {
		ipStr := "TLE"
		if !r.IPTimedOut[i] {
			ipStr = r.IPT[i].Round(time.Millisecond).String()
		} else if r.IPT[i] > 0 {
			ipStr = r.IPT[i].Round(time.Millisecond).String() + " (limit)"
		}
		fmt.Fprintf(&b, "  %-16s %6d %12s %14s %10d\n", name, r.Links[i],
			r.FlexileT[i].Round(time.Millisecond), ipStr, r.SubproblemSolves[i])
	}
	b.WriteString(renderFailures(r.Failures))
	return b.String()
}

// Fig18Result is the appendix Fig. 18 experiment: the maximum factor low
// priority traffic can be scaled by while keeping zero 99%ile loss.
type Fig18Result struct {
	Topologies []string
	// MaxScale[scheme][i] on Topologies[i].
	MaxScale map[string][]float64
	// Failures lists topologies that failed and were excluded.
	Failures []TopoFailure
}

// Fig18 searches (bisection) the largest low-priority scale factor with
// zero PercLoss for Flexile and SWAN-Maxmin. Paper shape: Flexile supports
// a much higher scale on every topology.
func Fig18(cfg Config, topologies []string) (*Fig18Result, error) {
	cfg = cfg.withDefaults()
	if topologies == nil {
		topologies = []string{"IBM", "Sprint", "CWIX", "Quest"}
		if cfg.Scale == Tiny {
			topologies = []string{"Sprint", "CWIX"}
		}
	}
	res := &Fig18Result{MaxScale: map[string][]float64{}}
	lossOf := func(mk func() scheme.Scheme) func(*te.Instance) ([][]float64, error) {
		return func(trial *te.Instance) ([][]float64, error) {
			r, err := mk().Route(trial)
			if err != nil {
				return nil, err
			}
			return r.LossMatrix(trial), nil
		}
	}
	fxScale := make([]float64, len(topologies))
	swScale := make([]float64, len(topologies))
	fails, err := cfg.sweep(topologies, func(i int, name string) error {
		base, err := cfg.TwoClass(name)
		if err != nil {
			return err
		}
		// Undo the default ×2 low-priority scaling so the reported factor
		// is relative to the raw gravity split, as in the paper.
		base.ScaleClassDemands(1, 0.5)
		fx, err := flexile.MaxZeroLossScale(base, 1, lossOf(func() scheme.Scheme { return &flexile.Scheme{} }), 0.05, 6, 0.03)
		if err != nil {
			return err
		}
		sw, err := flexile.MaxZeroLossScale(base, 1, lossOf(func() scheme.Scheme { return &swan.Maxmin{} }), 0.05, 6, 0.03)
		if err != nil {
			return err
		}
		fxScale[i], swScale[i] = fx, sw
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Failures = fails
	failed := failedSet(fails)
	for i, name := range topologies {
		if failed[name] {
			continue
		}
		res.Topologies = append(res.Topologies, name)
		res.MaxScale["Flexile"] = append(res.MaxScale["Flexile"], fxScale[i])
		res.MaxScale["SWAN-Maxmin"] = append(res.MaxScale["SWAN-Maxmin"], swScale[i])
	}
	return res, nil
}

// Render formats the scale report.
func (r *Fig18Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 18 (appendix): max low-priority scale with zero 99%ile loss\n")
	fmt.Fprintf(&b, "  %-16s %10s %13s\n", "topology", "Flexile", "SWAN-Maxmin")
	for i, name := range r.Topologies {
		fmt.Fprintf(&b, "  %-16s %10.2f %13.2f\n", name,
			r.MaxScale["Flexile"][i], r.MaxScale["SWAN-Maxmin"][i])
	}
	b.WriteString(renderFailures(r.Failures))
	return b.String()
}
