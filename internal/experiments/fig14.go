package experiments

import (
	"fmt"
	"strings"
	"time"

	"flexile/internal/scheme"
	"flexile/internal/scheme/flexile"
	"flexile/internal/scheme/ip"
	"flexile/internal/scheme/swan"
	"flexile/internal/te"
	"flexile/internal/topo"
)

// Fig14Result tracks Flexile's convergence to the optimal PercLoss across
// decomposition iterations (paper Fig. 14): the optimality gap
// (Flexile PercLoss − optimal PercLoss) per iteration per topology.
type Fig14Result struct {
	Topologies []string
	// Gap[i][it] is the optimality gap of Topologies[i] after iteration
	// it+1 (missing iterations repeat the converged value).
	Gap [][]float64
	// Iterations is the per-topology iteration count Flexile actually ran.
	Iterations []int
	// OptimalProven marks topologies where the IP proved optimality.
	OptimalProven []bool
	// FracOptimalAtIter[it] is the fraction of topologies at gap ≤ 1e-6 by
	// iteration it+1 (paper: 40% at iteration 1, 100% by iteration 5).
	FracOptimalAtIter []float64
}

// Fig14 runs Flexile and the direct IP on each topology and reports the
// per-iteration optimality gap. The IP limits this experiment to small
// instances (the same constraint the paper faced); topologies where the IP
// cannot finish are skipped.
func Fig14(cfg Config, maxIter int) (*Fig14Result, error) {
	cfg = cfg.withDefaults()
	if maxIter == 0 {
		maxIter = 5
	}
	// The direct IP replicates the routing for every scenario, so its LP
	// relaxations grow with |Q|·|P|; cap the scenario budget for this
	// comparison (both solvers see the same instance, which is all the
	// optimality-gap measurement needs).
	if cfg.MaxScenarios > 12 {
		cfg.MaxScenarios = 12
	}
	res := &Fig14Result{}
	for _, name := range cfg.Topologies {
		info, ok := topo.Lookup(name)
		if ok && info.Nodes > ipNodeLimit {
			continue // the direct MIP is hopeless beyond small networks
		}
		inst, err := cfg.SingleClass(name)
		if err != nil {
			return nil, err
		}
		off, err := flexile.Offline(inst, flexile.Options{MaxIterations: maxIter})
		if err != nil {
			return nil, err
		}
		ipS := &ip.Scheme{MaxNodes: 400}
		ipRun, err := RunScheme(ipS, inst)
		if err != nil {
			return nil, err
		}
		optimal := ipRun.PercLoss[0]
		gaps := make([]float64, maxIter)
		for it := 0; it < maxIter; it++ {
			v := off.IterPercLoss[minInt(it, len(off.IterPercLoss)-1)][0]
			g := v - optimal
			if g < 0 {
				g = 0 // the IP hit its node limit below Flexile's quality
			}
			gaps[it] = g
		}
		res.Topologies = append(res.Topologies, name)
		res.Gap = append(res.Gap, gaps)
		res.Iterations = append(res.Iterations, off.Iterations)
		res.OptimalProven = append(res.OptimalProven, ipS.Status.String() == "optimal")
	}
	res.FracOptimalAtIter = make([]float64, maxIter)
	for it := 0; it < maxIter; it++ {
		n := 0
		for i := range res.Topologies {
			if res.Gap[i][it] <= 1e-6 {
				n++
			}
		}
		if len(res.Topologies) > 0 {
			res.FracOptimalAtIter[it] = float64(n) / float64(len(res.Topologies))
		}
	}
	return res, nil
}

// ipNodeLimit is the largest topology (node count) the direct IP is asked
// to solve; beyond it the replicated per-scenario routing blows past what
// the dense-basis simplex handles in reasonable time (the paper saw the
// same wall at Tinet/Deltacom with Gurobi).
const ipNodeLimit = 13

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Render formats the convergence report.
func (r *Fig14Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 14: optimality gap per decomposition iteration\n")
	for i, name := range r.Topologies {
		fmt.Fprintf(&b, "  %-16s gaps:", name)
		for _, g := range r.Gap[i] {
			fmt.Fprintf(&b, " %5.1f%%", 100*g)
		}
		fmt.Fprintf(&b, "  (ran %d iters, IP proven: %v)\n", r.Iterations[i], r.OptimalProven[i])
	}
	b.WriteString("  fraction of topologies at optimal:")
	for it, fr := range r.FracOptimalAtIter {
		fmt.Fprintf(&b, " iter%d=%3.0f%%", it+1, 100*fr)
	}
	b.WriteString("\n")
	return b.String()
}

// Fig15Result compares offline solving time of the direct IP and Flexile's
// decomposition as a function of topology size (paper Fig. 15).
type Fig15Result struct {
	Topologies []string
	Links      []int
	FlexileT   []time.Duration
	IPT        []time.Duration // 0 when the IP exceeded its budget
	IPTimedOut []bool
	// SubproblemSolves per topology (the pruning effectiveness).
	SubproblemSolves []int
}

// Fig15 measures solving times. IP runs get a node budget standing in for
// the paper's 1-hour limit; exceeding it is reported as timed out (the
// paper's Deltacom/Tinet behaviour).
func Fig15(cfg Config, ipNodeBudget int) (*Fig15Result, error) {
	cfg = cfg.withDefaults()
	if ipNodeBudget == 0 {
		ipNodeBudget = 300
	}
	// Same scenario cap as Fig14: the IP's LPs blow up with |Q|·|P| and
	// the timing comparison needs both solvers on one instance.
	if cfg.MaxScenarios > 12 {
		cfg.MaxScenarios = 12
	}
	res := &Fig15Result{}
	for _, name := range cfg.Topologies {
		inst, err := cfg.SingleClass(name)
		if err != nil {
			return nil, err
		}
		off, err := flexile.Offline(inst, flexile.Options{})
		if err != nil {
			return nil, err
		}
		res.Topologies = append(res.Topologies, name)
		res.Links = append(res.Links, inst.Topo.G.NumEdges())
		res.FlexileT = append(res.FlexileT, off.Elapsed)
		res.SubproblemSolves = append(res.SubproblemSolves, off.SubproblemSolves)

		info, _ := topo.Lookup(name)
		if info.Nodes > ipNodeLimit {
			// Stand-in for the paper's observation that the IP cannot
			// finish large topologies within an hour.
			res.IPT = append(res.IPT, 0)
			res.IPTimedOut = append(res.IPTimedOut, true)
			continue
		}
		ipS := &ip.Scheme{MaxNodes: ipNodeBudget}
		start := time.Now()
		if _, err := ipS.Route(inst); err != nil {
			return nil, err
		}
		res.IPT = append(res.IPT, time.Since(start))
		res.IPTimedOut = append(res.IPTimedOut, ipS.Status.String() != "optimal")
	}
	return res, nil
}

// Render formats the timing report.
func (r *Fig15Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 15: offline solving time vs topology size\n")
	fmt.Fprintf(&b, "  %-16s %6s %12s %14s %10s\n", "topology", "links", "Flexile", "IP", "subLPs")
	for i, name := range r.Topologies {
		ipStr := "TLE"
		if !r.IPTimedOut[i] {
			ipStr = r.IPT[i].Round(time.Millisecond).String()
		} else if r.IPT[i] > 0 {
			ipStr = r.IPT[i].Round(time.Millisecond).String() + " (limit)"
		}
		fmt.Fprintf(&b, "  %-16s %6d %12s %14s %10d\n", name, r.Links[i],
			r.FlexileT[i].Round(time.Millisecond), ipStr, r.SubproblemSolves[i])
	}
	return b.String()
}

// Fig18Result is the appendix Fig. 18 experiment: the maximum factor low
// priority traffic can be scaled by while keeping zero 99%ile loss.
type Fig18Result struct {
	Topologies []string
	// MaxScale[scheme][i] on Topologies[i].
	MaxScale map[string][]float64
}

// Fig18 searches (bisection) the largest low-priority scale factor with
// zero PercLoss for Flexile and SWAN-Maxmin. Paper shape: Flexile supports
// a much higher scale on every topology.
func Fig18(cfg Config, topologies []string) (*Fig18Result, error) {
	cfg = cfg.withDefaults()
	if topologies == nil {
		topologies = []string{"IBM", "Sprint", "CWIX", "Quest"}
		if cfg.Scale == Tiny {
			topologies = []string{"Sprint", "CWIX"}
		}
	}
	res := &Fig18Result{Topologies: topologies, MaxScale: map[string][]float64{}}
	lossOf := func(mk func() scheme.Scheme) func(*te.Instance) ([][]float64, error) {
		return func(trial *te.Instance) ([][]float64, error) {
			r, err := mk().Route(trial)
			if err != nil {
				return nil, err
			}
			return r.LossMatrix(trial), nil
		}
	}
	for _, name := range topologies {
		base, err := cfg.TwoClass(name)
		if err != nil {
			return nil, err
		}
		// Undo the default ×2 low-priority scaling so the reported factor
		// is relative to the raw gravity split, as in the paper.
		base.ScaleClassDemands(1, 0.5)
		fx, err := flexile.MaxZeroLossScale(base, 1, lossOf(func() scheme.Scheme { return &flexile.Scheme{} }), 0.05, 6, 0.03)
		if err != nil {
			return nil, err
		}
		sw, err := flexile.MaxZeroLossScale(base, 1, lossOf(func() scheme.Scheme { return &swan.Maxmin{} }), 0.05, 6, 0.03)
		if err != nil {
			return nil, err
		}
		res.MaxScale["Flexile"] = append(res.MaxScale["Flexile"], fx)
		res.MaxScale["SWAN-Maxmin"] = append(res.MaxScale["SWAN-Maxmin"], sw)
	}
	return res, nil
}

// Render formats the scale report.
func (r *Fig18Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 18 (appendix): max low-priority scale with zero 99%ile loss\n")
	fmt.Fprintf(&b, "  %-16s %10s %13s\n", "topology", "Flexile", "SWAN-Maxmin")
	for i, name := range r.Topologies {
		fmt.Fprintf(&b, "  %-16s %10.2f %13.2f\n", name,
			r.MaxScale["Flexile"][i], r.MaxScale["SWAN-Maxmin"][i])
	}
	return b.String()
}
