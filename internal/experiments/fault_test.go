package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestSweepDegradedIsolation: a failing topology — error or panic — must
// not abort the sweep. Every other topology runs, the failures come back
// in topology order, and the render helper reports them as FAILED lines.
func TestSweepDegradedIsolation(t *testing.T) {
	cfg := Config{Workers: 2}
	names := []string{"Alpha", "Beta", "Gamma", "Delta"}
	ran := make([]bool, len(names))
	fails, err := cfg.sweep(names, func(i int, name string) error {
		ran[i] = true
		switch name {
		case "Beta":
			return errors.New("forced failure")
		case "Gamma":
			panic("forced panic")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("isolated failures must not abort the sweep: %v", err)
	}
	for i, name := range names {
		if !ran[i] {
			t.Fatalf("topology %s never ran; isolation failed", name)
		}
	}
	if len(fails) != 2 || fails[0].Topology != "Beta" || fails[1].Topology != "Gamma" {
		t.Fatalf("failures %+v, want Beta then Gamma in topology order", fails)
	}
	if !strings.Contains(fails[1].Err, "forced panic") {
		t.Fatalf("recovered panic lost its cause: %q", fails[1].Err)
	}
	failed := failedSet(fails)
	if !failed["Beta"] || !failed["Gamma"] || failed["Alpha"] || failed["Delta"] {
		t.Fatalf("failedSet %v misclassifies topologies", failed)
	}
	out := renderFailures(fails)
	if !strings.Contains(out, "FAILED Beta") || !strings.Contains(out, "FAILED Gamma") {
		t.Fatalf("renderFailures output %q lacks FAILED lines", out)
	}
}

// TestSweepCancelTimeout: Config.Timeout bounds the sweep; unlike a
// per-topology failure, an expired deadline aborts with an error wrapping
// the context error — cancellation is the caller's intent, not a row to
// drop silently.
func TestSweepCancelTimeout(t *testing.T) {
	cfg := Config{Workers: 2, Timeout: time.Nanosecond}
	_, err := cfg.sweep([]string{"Alpha", "Beta"}, func(i int, name string) error {
		return nil
	})
	if err == nil {
		t.Fatal("expired deadline did not abort the sweep")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
}
