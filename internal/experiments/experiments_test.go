package experiments

import (
	"math"
	"strings"
	"testing"

	"flexile/internal/eval"
	"flexile/internal/te"
)

// tinyCfg keeps experiment tests fast.
func tinyCfg() Config { return Config{Scale: Tiny, Seed: 1} }

func TestFig1Motivation(t *testing.T) {
	res, err := Fig1Motivation()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.PercLoss["Flexile"]; got > 1e-6 {
		t.Fatalf("Flexile = %v, want 0", got)
	}
	if got := res.PercLoss["SMORE"]; math.Abs(got-0.5) > 1e-6 {
		t.Fatalf("SMORE = %v, want 0.5", got)
	}
	if got := res.PercLoss["Teavar"]; got < 0.4851-1e-6 {
		t.Fatalf("Teavar = %v, want ≥0.4851", got)
	}
	if !strings.Contains(res.Render(), "Flexile") {
		t.Fatal("render missing scheme rows")
	}
}

func TestFig5Shape(t *testing.T) {
	res, err := Fig5(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Paper shape: Flexile dominates — its worst flow loses no more than
	// ScenBest's, and ScenBest no more than Teavar's.
	if res.Worst["Flexile"] > res.Worst["ScenBest"]+1e-6 {
		t.Fatalf("Flexile worst %v > ScenBest %v", res.Worst["Flexile"], res.Worst["ScenBest"])
	}
	if res.Worst["ScenBest"] > res.Worst["Teavar"]+1e-6 {
		t.Fatalf("ScenBest worst %v > Teavar %v", res.Worst["ScenBest"], res.Worst["Teavar"])
	}
	// Flexile keeps (weakly) more flows at zero loss.
	if res.FracZero["Flexile"] < res.FracZero["ScenBest"]-1e-9 {
		t.Fatalf("Flexile zero-frac %v < ScenBest %v", res.FracZero["Flexile"], res.FracZero["ScenBest"])
	}
	if res.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestFig6Shape(t *testing.T) {
	res, err := Fig6(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Flexile's scenario-loss penalty at 99.9% is no worse than Teavar's.
	fx, tv := res.PenaltyAt["Flexile"], res.PenaltyAt["Teavar"]
	if fx[0] > tv[0]+1e-6 {
		t.Fatalf("Flexile penalty %v > Teavar %v at 99.9%%", fx[0], tv[0])
	}
	if res.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestFig10Shape(t *testing.T) {
	res, err := Fig10(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	// High-priority traffic: every scheme keeps PercLoss at zero (§6.2).
	for s, vals := range res.HighPercLoss {
		for i, v := range vals {
			if v > 0.05 {
				t.Fatalf("%s high-priority PercLoss %v on %s", s, v, res.Topologies[i])
			}
		}
	}
	// Low priority: Flexile's median beats both SWAN variants.
	if res.Medians["Flexile"] > res.Medians["SWAN-Maxmin"]+1e-6 {
		t.Fatalf("Flexile median %v > SWAN-Maxmin %v", res.Medians["Flexile"], res.Medians["SWAN-Maxmin"])
	}
	if res.Medians["Flexile"] > res.Medians["SWAN-Throughput"]+1e-6 {
		t.Fatalf("Flexile median %v > SWAN-Throughput %v", res.Medians["Flexile"], res.Medians["SWAN-Throughput"])
	}
	t.Log("\n" + res.Render())
}

func TestFig11Shape(t *testing.T) {
	res, err := Fig11(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Ordering of medians: Flexile ≤ Cvar-Flow-Ad ≤ Cvar-Flow-St ≤ Teavar.
	m := res.Medians
	if m["Flexile"] > m["Cvar-Flow-Ad"]+1e-6 {
		t.Fatalf("Flexile %v > Cvar-Flow-Ad %v", m["Flexile"], m["Cvar-Flow-Ad"])
	}
	if m["Cvar-Flow-Ad"] > m["Cvar-Flow-St"]+1e-6 {
		t.Fatalf("Cvar-Flow-Ad %v > Cvar-Flow-St %v", m["Cvar-Flow-Ad"], m["Cvar-Flow-St"])
	}
	if m["Cvar-Flow-St"] > m["Teavar"]+1e-6 {
		t.Fatalf("Cvar-Flow-St %v > Teavar %v", m["Cvar-Flow-St"], m["Teavar"])
	}
	t.Log("\n" + res.Render())
}

func TestTable2(t *testing.T) {
	res := Table2()
	if len(res.Rows) != 20 {
		t.Fatalf("want 20 rows, got %d", len(res.Rows))
	}
	out := res.Render()
	if !strings.Contains(out, "Deltacom") || !strings.Contains(out, "103") {
		t.Fatal("render missing Deltacom 103")
	}
}

func TestPearson(t *testing.T) {
	if got := Pearson([]float64{1, 2, 3}, []float64{2, 4, 6}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("PCC = %v, want 1", got)
	}
	if got := Pearson([]float64{1, 2, 3}, []float64{3, 2, 1}); math.Abs(got+1) > 1e-12 {
		t.Fatalf("PCC = %v, want -1", got)
	}
	if got := Pearson([]float64{1, 1}, []float64{1, 1}); got != 1 {
		t.Fatalf("constant-vs-constant PCC = %v, want 1", got)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{Scale: Paper}.withDefaults()
	if len(c.Topologies) != 20 {
		t.Fatalf("paper scale should cover 20 topologies, got %d", len(c.Topologies))
	}
	if c.Cutoff != 1e-6 {
		t.Fatalf("paper cutoff = %v", c.Cutoff)
	}
	ct := Config{Scale: Tiny}.withDefaults()
	if len(ct.Topologies) != 2 || ct.MaxScenarios != 12 {
		t.Fatalf("tiny defaults wrong: %+v", ct)
	}
	// Seeds differ per topology and are stable.
	if ct.topoSeed("IBM") == ct.topoSeed("B4") {
		t.Fatal("topology seeds should differ")
	}
	if ct.topoSeed("IBM") != ct.topoSeed("IBM") {
		t.Fatal("topology seeds should be stable")
	}
}

func TestSingleClassSetup(t *testing.T) {
	inst, err := tinyCfg().SingleClass("Sprint")
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Scenarios) == 0 || len(inst.Scenarios) > 12 {
		t.Fatalf("scenario count %d outside cap", len(inst.Scenarios))
	}
	if inst.Classes[0].Beta <= 0.5 || inst.Classes[0].Beta >= 1 {
		t.Fatalf("design beta = %v", inst.Classes[0].Beta)
	}
	// Demands are populated.
	if inst.TotalDemand() <= 0 {
		t.Fatal("no demand generated")
	}
}

func TestTwoClassSetup(t *testing.T) {
	inst, err := tinyCfg().TwoClass("Sprint")
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Classes) != 2 {
		t.Fatal("want two classes")
	}
	if inst.Classes[1].Beta > 0.99+1e-12 {
		t.Fatalf("low class beta %v", inst.Classes[1].Beta)
	}
}

// TestPipelineDeterminism: the full instance-construction pipeline is
// bit-for-bit reproducible for a given seed.
func TestPipelineDeterminism(t *testing.T) {
	a, err := tinyCfg().SingleClass("Sprint")
	if err != nil {
		t.Fatal(err)
	}
	b, err := tinyCfg().SingleClass("Sprint")
	if err != nil {
		t.Fatal(err)
	}
	if a.Classes[0].Beta != b.Classes[0].Beta {
		t.Fatal("beta differs")
	}
	if len(a.Scenarios) != len(b.Scenarios) {
		t.Fatal("scenario count differs")
	}
	for q := range a.Scenarios {
		if a.Scenarios[q].Prob != b.Scenarios[q].Prob {
			t.Fatal("scenario probabilities differ")
		}
	}
	for i := range a.Pairs {
		if a.Demand[0][i] != b.Demand[0][i] {
			t.Fatal("demands differ")
		}
	}
	// A different seed changes the demands.
	c, err := Config{Scale: Tiny, Seed: 2}.SingleClass("Sprint")
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Pairs {
		if a.Demand[0][i] != c.Demand[0][i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical demands")
	}
}

// TestRunSchemeRejectsInfeasibleRouting: the harness validates capacity.
func TestRunSchemeRejectsInfeasibleRouting(t *testing.T) {
	inst, err := tinyCfg().SingleClass("Sprint")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunScheme(badScheme{}, inst); err == nil {
		t.Fatal("oversubscribed routing must be rejected")
	}
}

type badScheme struct{}

func (badScheme) Name() string { return "bad" }

func (badScheme) Route(inst *te.Instance) (*te.Routing, error) {
	r := te.NewRouting(inst)
	// Grossly oversubscribe the first tunnel of every flow.
	for q := range inst.Scenarios {
		for i := range inst.Pairs {
			if len(r.X[q][0][i]) > 0 {
				r.X[q][0][i][0] = 1e6
			}
		}
	}
	return r, nil
}

func TestRenderCDFSampling(t *testing.T) {
	var pts []eval.CDFPoint
	for i := 0; i < 50; i++ {
		pts = append(pts, eval.CDFPoint{Value: float64(i), Cum: float64(i+1) / 50})
	}
	out := renderCDF(pts, 5)
	if strings.Count(out, "@") != 5 {
		t.Fatalf("want 5 sampled points, got %q", out)
	}
	// Ends preserved.
	if !strings.HasPrefix(out, "0.000@") || !strings.Contains(out, "49.000@1.0000") {
		t.Fatalf("ends missing: %q", out)
	}
	// Short CDFs pass through unsampled.
	short := renderCDF(pts[:3], 5)
	if strings.Count(short, "@") != 3 {
		t.Fatalf("short cdf resampled: %q", short)
	}
}
