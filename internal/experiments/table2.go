package experiments

import (
	"fmt"
	"strings"

	"flexile/internal/topo"
)

// Table2Result is the topology inventory (paper Table 2).
type Table2Result struct {
	Rows []topo.Info
}

// Table2 lists the evaluation topologies with their sizes.
func Table2() *Table2Result {
	return &Table2Result{Rows: append([]topo.Info(nil), topo.Table2...)}
}

// Render formats the inventory.
func (r *Table2Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 2: topologies used in evaluation\n")
	fmt.Fprintf(&b, "  %-16s %7s %7s\n", "topology", "nodes", "edges")
	for _, info := range r.Rows {
		fmt.Fprintf(&b, "  %-16s %7d %7d\n", info.Name, info.Nodes, info.Edges)
	}
	return b.String()
}
