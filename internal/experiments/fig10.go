package experiments

import (
	"fmt"
	"strings"

	"flexile/internal/eval"
	"flexile/internal/failure"
	"flexile/internal/scheme"
	"flexile/internal/scheme/cvarflow"
	"flexile/internal/scheme/flexile"
	"flexile/internal/scheme/scenbest"
	"flexile/internal/scheme/swan"
	"flexile/internal/scheme/teavar"
	"flexile/internal/te"
	"flexile/internal/topo"
	"flexile/internal/traffic"
	"flexile/internal/tunnels"
)

// Fig10Result compares Flexile against both SWAN variants on low-priority
// PercLoss across topologies (paper Fig. 10).
type Fig10Result struct {
	Topologies []string
	// LowPercLoss[scheme][i] is the low-priority-class PercLoss on
	// Topologies[i].
	LowPercLoss map[string][]float64
	// HighPercLoss likewise for the high-priority class (the paper reports
	// all schemes at zero).
	HighPercLoss map[string][]float64
	// Medians per scheme across topologies (low class).
	Medians map[string]float64
	// Failures lists topologies that failed and were excluded from the
	// series above.
	Failures []TopoFailure
}

// Fig10 runs the two-class comparison across the configured topologies.
// Paper shape: Flexile's median low-priority PercLoss is 0%, SWAN-Maxmin's
// is 58% (up to 93%), SWAN-Throughput's is 100% in many cases.
func Fig10(cfg Config) (*Fig10Result, error) {
	cfg = cfg.withDefaults()
	res := &Fig10Result{
		LowPercLoss:  map[string][]float64{},
		HighPercLoss: map[string][]float64{},
		Medians:      map[string]float64{},
	}
	// Topologies are independent: fan out across the worker pool, collect
	// per-topology runs by index, then assemble the series in topology
	// order so the output matches the sequential sweep exactly. A failed
	// topology is excluded (its partial row discarded) and reported.
	rows := make([][]*SchemeRun, len(cfg.Topologies))
	fails, err := cfg.forEachTopo(func(i int, name string) error {
		inst, err := cfg.TwoClass(name)
		if err != nil {
			return err
		}
		for _, s := range []scheme.Scheme{&flexile.Scheme{}, &swan.Maxmin{}, &swan.Throughput{}} {
			run, err := RunScheme(s, inst)
			if err != nil {
				return fmt.Errorf("%s on %s: %w", s.Name(), name, err)
			}
			rows[i] = append(rows[i], run)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Failures = fails
	failed := failedSet(fails)
	for i, name := range cfg.Topologies {
		if failed[name] {
			continue
		}
		res.Topologies = append(res.Topologies, name)
		for _, run := range rows[i] {
			res.HighPercLoss[run.Scheme] = append(res.HighPercLoss[run.Scheme], run.PercLoss[0])
			res.LowPercLoss[run.Scheme] = append(res.LowPercLoss[run.Scheme], run.PercLoss[1])
		}
	}
	for name, vals := range res.LowPercLoss {
		res.Medians[name] = eval.Median(vals)
	}
	return res, nil
}

// Render formats the comparison.
func (r *Fig10Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 10: low-priority PercLoss across topologies (99%ile)\n")
	fmt.Fprintf(&b, "  %-16s %10s %13s %17s\n", "topology", "Flexile", "SWAN-Maxmin", "SWAN-Throughput")
	for i, name := range r.Topologies {
		fmt.Fprintf(&b, "  %-16s %9.1f%% %12.1f%% %16.1f%%\n", name,
			100*r.LowPercLoss["Flexile"][i], 100*r.LowPercLoss["SWAN-Maxmin"][i], 100*r.LowPercLoss["SWAN-Throughput"][i])
	}
	fmt.Fprintf(&b, "  %-16s %9.1f%% %12.1f%% %16.1f%%\n", "median",
		100*r.Medians["Flexile"], 100*r.Medians["SWAN-Maxmin"], 100*r.Medians["SWAN-Throughput"])
	b.WriteString(renderFailures(r.Failures))
	return b.String()
}

// Fig11Result is the CDF over topologies of single-class PercLoss for
// Teavar, both CVaR generalizations, and Flexile (paper Fig. 11).
type Fig11Result struct {
	Topologies []string
	// PercLoss[scheme][i] on Topologies[i].
	PercLoss map[string][]float64
	// Medians per scheme.
	Medians map[string]float64
	// MedianReductionStVsTeavar is the median relative reduction of
	// Cvar-Flow-St vs Teavar (paper: >50%).
	MedianReductionStVsTeavar float64
	// Failures lists topologies that failed and were excluded.
	Failures []TopoFailure
}

// adSizeLimit bounds Cvar-Flow-Ad's instance size (pairs × scenarios):
// its LP replicates the routing for every scenario in one monolithic solve,
// which the paper also could not always finish ("TLE" entries in Fig. 12
// for Teavar at large sizes). Instances above the limit are reported as
// timed out and excluded from Ad's median.
const adSizeLimit = 1500

// Fig11 runs the single-class CVaR comparison across topologies. Paper
// shape: Flexile < Cvar-Flow-Ad < Cvar-Flow-St < Teavar, with Teavar at
// 100% on poorly-connected topologies.
func Fig11(cfg Config) (*Fig11Result, error) {
	cfg = cfg.withDefaults()
	res := &Fig11Result{
		PercLoss: map[string][]float64{},
		Medians:  map[string]float64{},
	}
	type entry struct {
		scheme string
		v      float64
	}
	rows := make([][]entry, len(cfg.Topologies))
	fails, err := cfg.forEachTopo(func(i int, name string) error {
		inst, err := cfg.SingleClass(name)
		if err != nil {
			return err
		}
		for _, s := range []scheme.Scheme{&teavar.Scheme{}, &cvarflow.St{}, &cvarflow.Ad{}, &flexile.Scheme{}} {
			if _, isAd := s.(*cvarflow.Ad); isAd && len(inst.Pairs)*(len(inst.Scenarios)+1) > adSizeLimit {
				rows[i] = append(rows[i], entry{s.Name(), -1}) // TLE marker
				continue
			}
			run, err := RunScheme(s, inst)
			if err != nil {
				return fmt.Errorf("%s on %s: %w", s.Name(), name, err)
			}
			rows[i] = append(rows[i], entry{run.Scheme, run.PercLoss[0]})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Failures = fails
	failed := failedSet(fails)
	for i, name := range cfg.Topologies {
		if failed[name] {
			continue
		}
		res.Topologies = append(res.Topologies, name)
		for _, e := range rows[i] {
			res.PercLoss[e.scheme] = append(res.PercLoss[e.scheme], e.v)
		}
	}
	var reds []float64
	for i := range res.Topologies {
		reds = append(reds, eval.ReductionPercent(res.PercLoss["Teavar"][i], res.PercLoss["Cvar-Flow-St"][i]))
	}
	res.MedianReductionStVsTeavar = eval.Median(reds)
	for name, vals := range res.PercLoss {
		var ok []float64
		for _, v := range vals {
			if v >= 0 {
				ok = append(ok, v)
			}
		}
		res.Medians[name] = eval.Median(ok)
	}
	return res, nil
}

// Render formats the comparison.
func (r *Fig11Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 11: single-class PercLoss across topologies\n")
	order := []string{"Teavar", "Cvar-Flow-St", "Cvar-Flow-Ad", "Flexile"}
	fmt.Fprintf(&b, "  %-16s", "topology")
	for _, s := range order {
		fmt.Fprintf(&b, " %13s", s)
	}
	b.WriteString("\n")
	for i, name := range r.Topologies {
		fmt.Fprintf(&b, "  %-16s", name)
		for _, s := range order {
			if v := r.PercLoss[s][i]; v < 0 {
				fmt.Fprintf(&b, " %13s", "TLE")
			} else {
				fmt.Fprintf(&b, " %12.1f%%", 100*v)
			}
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "  %-16s", "median")
	for _, s := range order {
		fmt.Fprintf(&b, " %12.1f%%", 100*r.Medians[s])
	}
	fmt.Fprintf(&b, "\n  median reduction Cvar-Flow-St vs Teavar: %.0f%%\n", r.MedianReductionStVsTeavar)
	b.WriteString(renderFailures(r.Failures))
	return b.String()
}

// Fig12Result compares Teavar, SMORE and Flexile on richly connected
// topologies — every link split into two independently failing sublinks
// (paper Fig. 12 and the §6.2 headline numbers).
type Fig12Result struct {
	Topologies []string
	PercLoss   map[string][]float64
	// MedianReductionVsSMORE / VsTeavar are Flexile's median relative
	// PercLoss reductions (paper: 46% and 63%).
	MedianReductionVsSMORE  float64
	MedianReductionVsTeavar float64
	// Failures lists topologies that failed and were excluded.
	Failures []TopoFailure
}

// Fig12 builds the richly connected variant of each topology: each link
// becomes two half-capacity sublinks inheriting the link's failure
// probability, so the network stays connected in far more scenarios. The
// scenario budget is deepened (3× the scale default, cutoff ÷10): a single
// sublink failure only removes half a link, so the interesting states are
// the multi-sublink ones further down the probability order.
func Fig12(cfg Config) (*Fig12Result, error) {
	cfg = cfg.withDefaults()
	cfg.MaxScenarios *= 3
	cfg.Cutoff /= 10
	res := &Fig12Result{
		PercLoss: map[string][]float64{},
	}
	rows := make([][]*SchemeRun, len(cfg.Topologies))
	fails, err := cfg.forEachTopo(func(i int, name string) error {
		inst, err := richlyConnectedInstance(cfg, name)
		if err != nil {
			return err
		}
		for _, s := range []scheme.Scheme{&teavar.Scheme{}, &scenbest.Scheme{DisplayName: "SMORE"}, &flexile.Scheme{}} {
			run, err := RunScheme(s, inst)
			if err != nil {
				return fmt.Errorf("%s on %s: %w", s.Name(), name, err)
			}
			rows[i] = append(rows[i], run)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Failures = fails
	failed := failedSet(fails)
	for i, name := range cfg.Topologies {
		if failed[name] {
			continue
		}
		res.Topologies = append(res.Topologies, name)
		for _, run := range rows[i] {
			res.PercLoss[run.Scheme] = append(res.PercLoss[run.Scheme], run.PercLoss[0])
		}
	}
	var redS, redT []float64
	for i := range res.Topologies {
		redS = append(redS, eval.ReductionPercent(res.PercLoss["SMORE"][i], res.PercLoss["Flexile"][i]))
		redT = append(redT, eval.ReductionPercent(res.PercLoss["Teavar"][i], res.PercLoss["Flexile"][i]))
	}
	res.MedianReductionVsSMORE = eval.Median(redS)
	res.MedianReductionVsTeavar = eval.Median(redT)
	return res, nil
}

// richlyConnectedInstance builds a single-class instance over the sublink
// transform, with sublinks inheriting their parent link's Weibull failure
// probability.
func richlyConnectedInstance(cfg Config, name string) (*te.Instance, error) {
	tp, err := topo.Load(name)
	if err != nil {
		return nil, err
	}
	rich, orig := topo.RichlyConnected(tp)
	inst := te.NewInstance(rich, []te.Class{
		{Name: "single", Beta: 0, Weight: 1, Tunnels: tunnels.SingleClass(3)},
	})
	seed := cfg.topoSeed(name)
	if err := traffic.ApplyGravity(inst, traffic.GravityOptions{Seed: seed}); err != nil {
		return nil, err
	}
	baseProbs := failure.WeibullProbs(tp.G, seed+1, failure.WeibullParams{})
	probs := make([]float64, rich.G.NumEdges())
	for e := range probs {
		probs[e] = baseProbs[orig[e]]
	}
	inst.LinkProbs = probs
	scens := failure.Enumerate(probs, cfg.Cutoff)
	if len(scens) > cfg.MaxScenarios {
		scens = scens[:cfg.MaxScenarios]
	}
	inst.Scenarios = scens
	beta := inst.AllFlowsConnectedMass() - 1e-9
	if beta > 0.999 {
		beta = 0.999
	}
	if cov := failure.Coverage(inst.Scenarios); beta > 1-8*(1-cov) {
		beta = 1 - 8*(1-cov)
	}
	if beta < 0.5 {
		beta = 0.5
	}
	inst.Classes[0].Beta = beta
	return inst, nil
}

// Render formats the comparison.
func (r *Fig12Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 12: richly connected topologies, single-class PercLoss\n")
	order := []string{"Teavar", "SMORE", "Flexile"}
	fmt.Fprintf(&b, "  %-16s", "topology")
	for _, s := range order {
		fmt.Fprintf(&b, " %10s", s)
	}
	b.WriteString("\n")
	for i, name := range r.Topologies {
		fmt.Fprintf(&b, "  %-16s", name)
		for _, s := range order {
			fmt.Fprintf(&b, " %9.1f%%", 100*r.PercLoss[s][i])
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "  median reduction Flexile vs SMORE: %.0f%%, vs Teavar: %.0f%%\n",
		r.MedianReductionVsSMORE, r.MedianReductionVsTeavar)
	b.WriteString(renderFailures(r.Failures))
	return b.String()
}
