// Package experiments regenerates every table and figure of the paper's
// evaluation (§6 and the appendix). Each FigN function runs the relevant
// schemes on instances built with the paper's methodology — gravity traffic
// scaled to an MLU target, Weibull link failure probabilities, scenario
// enumeration above a probability cutoff, §6 tunnel policies — and returns
// the series/rows the corresponding figure plots.
//
// Scale selects how much compute a run takes: Tiny backs the testing.B
// benchmarks, Small is the default for the flexile-exp CLI, Paper matches
// the paper's full topology set and scenario coverage (hours on one core).
// The *shape* of each result — which scheme wins and by roughly how much —
// is the reproduction target at every scale; EXPERIMENTS.md records
// paper-vs-measured numbers.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"flexile/internal/eval"
	"flexile/internal/failure"
	"flexile/internal/obs"
	"flexile/internal/par"
	"flexile/internal/scheme"
	"flexile/internal/te"
	"flexile/internal/topo"
	"flexile/internal/traffic"
	"flexile/internal/tunnels"
)

// Scale selects the compute budget of an experiment run.
type Scale int

const (
	// Tiny is for benchmarks: two small topologies, ~12 scenarios.
	Tiny Scale = iota
	// Small runs in minutes on one core: seven topologies ≤ 21 nodes,
	// ~20 scenarios each.
	Small
	// Paper is the full §6 methodology: all 20 topologies, scenario cutoff
	// 1e-6 (hours).
	Paper
)

func (s Scale) String() string {
	switch s {
	case Tiny:
		return "tiny"
	case Small:
		return "small"
	case Paper:
		return "paper"
	default:
		return fmt.Sprintf("scale(%d)", int(s))
	}
}

// Config parametrizes experiment runs.
type Config struct {
	Scale Scale
	// Seed drives every stochastic input (Weibull draws, gravity masses,
	// class splits, emulation hashing).
	Seed int64
	// Topologies overrides the per-scale default topology list.
	Topologies []string
	// MaxScenarios caps the enumerated scenario count (top probability
	// first); 0 means the per-scale default.
	MaxScenarios int
	// Cutoff is the scenario probability cutoff; 0 means the per-scale
	// default (1e-6 at Paper scale, as §6).
	Cutoff float64
	// Workers is how many topologies the per-topology experiment sweeps
	// (Fig. 10–12, 14, 15, 18) run concurrently. 0 means runtime.NumCPU(),
	// 1 is strictly sequential. Results are identical for every worker
	// count; per-topology Elapsed/solving-time measurements contend for
	// cores when Workers > 1, so timing figures (Fig. 15) should be read
	// from Workers=1 runs.
	Workers int
	// Timeout bounds the wall clock of each per-topology sweep; 0 means
	// unlimited. The deadline is checked before each topology starts, so
	// a topology already being solved runs to completion; an expired
	// deadline aborts the sweep with an error wrapping
	// context.DeadlineExceeded.
	Timeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Topologies == nil {
		switch c.Scale {
		case Tiny:
			c.Topologies = []string{"Sprint", "B4"}
		case Small:
			c.Topologies = []string{"Sprint", "B4", "Highwinds", "IBM", "InternetMCI", "Quest", "CWIX"}
		default:
			c.Topologies = topo.Names()
		}
	}
	if c.MaxScenarios == 0 {
		switch c.Scale {
		case Tiny:
			c.MaxScenarios = 12
		case Small:
			c.MaxScenarios = 20
		default:
			c.MaxScenarios = 1 << 30
		}
	}
	if c.Cutoff == 0 {
		switch c.Scale {
		case Tiny:
			c.Cutoff = 1e-4
		case Small:
			c.Cutoff = 1e-5
		default:
			c.Cutoff = 1e-6
		}
	}
	return c
}

// TopoFailure records one topology whose run failed during a sweep; the
// topology is excluded from the figure's series and reported alongside.
type TopoFailure struct {
	Topology string
	Err      string
}

// forEachTopo runs fn(i, c.Topologies[i]) for every configured topology
// across the worker pool. fn must write its results into slots indexed by
// i (never append to shared state), which keeps every figure's output
// identical regardless of Workers. Call on a cfg that already has
// withDefaults applied.
//
// Failure isolation: a failing topology — an error or a recovered panic —
// does not abort the sweep. Every topology runs; the failures come back as
// TopoFailure values (in topology order) and the caller drops the failed
// rows from its series. Only cancellation (Config.Timeout) aborts the
// sweep with an error.
func (c Config) forEachTopo(fn func(i int, name string) error) ([]TopoFailure, error) {
	return c.sweep(c.Topologies, fn)
}

// sweep is forEachTopo over an explicit topology list (Fig. 18 uses its
// own subset).
func (c Config) sweep(names []string, fn func(i int, name string) error) ([]TopoFailure, error) {
	ctx := context.Background()
	if c.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.Timeout)
		defer cancel()
	}
	errs := par.Collect(ctx, c.Workers, len(names), func(worker, i int) error {
		defer obs.From(ctx).Span("topology", int64(worker)+1, "name", names[i])()
		return fn(i, names[i])
	})
	var fails []TopoFailure
	for i, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, fmt.Errorf("experiments: topology sweep canceled: %w", err)
		}
		fails = append(fails, TopoFailure{Topology: names[i], Err: err.Error()})
	}
	return fails, nil
}

// failedSet indexes sweep failures by topology name.
func failedSet(fails []TopoFailure) map[string]bool {
	if len(fails) == 0 {
		return nil
	}
	out := make(map[string]bool, len(fails))
	for _, f := range fails {
		out[f.Topology] = true
	}
	return out
}

// renderFailures formats a sweep's failure list for text reports.
func renderFailures(fails []TopoFailure) string {
	if len(fails) == 0 {
		return ""
	}
	var b strings.Builder
	for _, f := range fails {
		fmt.Fprintf(&b, "  FAILED %-16s %s\n", f.Topology, f.Err)
	}
	return b.String()
}

// topoSeed perturbs the base seed per topology so different networks get
// independent draws.
func (c Config) topoSeed(name string) int64 {
	var h int64 = c.Seed
	for i := 0; i < len(name); i++ {
		h = h*131 + int64(name[i])
	}
	return h & 0x7fffffffffffffff
}

// SingleClass builds a single-class instance for the topology with the §6
// methodology: 3 disjointness-preferring tunnels per pair, gravity traffic
// at MLU 0.6, Weibull failure probabilities, scenarios above the cutoff,
// and the design target β set just below the all-flows-connected mass.
func (c Config) SingleClass(topoName string) (*te.Instance, error) {
	cfg := c.withDefaults()
	tp, err := topo.Load(topoName)
	if err != nil {
		return nil, err
	}
	inst := te.NewInstance(tp, []te.Class{
		{Name: "single", Beta: 0, Weight: 1, Tunnels: tunnels.SingleClass(3)},
	})
	return cfg.finish(inst, tp, topoName)
}

// TwoClass builds the §6 two-class instance: a latency-sensitive high
// priority class (3 single-failure-resilient shortest tunnels, design β
// from connectivity) and a low priority class (6 tunnels, β = 0.99, demand
// scaled ×2).
func (c Config) TwoClass(topoName string) (*te.Instance, error) {
	cfg := c.withDefaults()
	tp, err := topo.Load(topoName)
	if err != nil {
		return nil, err
	}
	inst := te.NewInstance(tp, []te.Class{
		{Name: "high", Beta: 0, Weight: 1000, Tunnels: tunnels.HighPriority(3)},
		{Name: "low", Beta: 0.99, Weight: 1, Tunnels: tunnels.LowPriority(3, 3)},
	})
	return cfg.finish(inst, tp, topoName)
}

// finish populates traffic, failure scenarios and design targets.
func (c Config) finish(inst *te.Instance, tp *topo.Topology, name string) (*te.Instance, error) {
	seed := c.topoSeed(name)
	if err := traffic.ApplyGravity(inst, traffic.GravityOptions{Seed: seed}); err != nil {
		return nil, err
	}
	probs := failure.WeibullProbs(tp.G, seed+1, failure.WeibullParams{})
	inst.LinkProbs = probs
	scens := failure.Enumerate(probs, c.Cutoff)
	if len(scens) > c.MaxScenarios {
		scens = scens[:c.MaxScenarios]
	}
	inst.Scenarios = scens
	// Design target: as high as possible while every flow stays connected
	// (§6), capped at the paper's 99.9% SLO so scenario-capped runs keep
	// tail headroom; the low class, when present, keeps β = 0.99.
	mass := inst.AllFlowsConnectedMass()
	beta := mass - 1e-9
	if beta > 0.999 {
		beta = 0.999
	}
	// Keep the residual (unenumerated) probability mass small relative to
	// the tail 1−β, otherwise the percentile is dominated by scenarios no
	// scheme can see (a truncation artifact, not a TE property).
	if cov := failure.Coverage(inst.Scenarios); beta > 1-8*(1-cov) {
		beta = 1 - 8*(1-cov)
	}
	if beta < 0.5 {
		beta = 0.5
	}
	inst.Classes[0].Beta = beta
	// Every class's β must stay below the connectivity mass of its least
	// connected flow (otherwise the offline coverage constraint (3) is
	// infeasible — no scheme can serve a disconnected flow).
	connMass := inst.FlowConnMass()
	for k := range inst.Classes {
		minMass := 1.0
		for i := range inst.Pairs {
			if inst.Demand[k][i] <= 0 {
				continue
			}
			if m := connMass[inst.FlowID(k, i)]; m < minMass {
				minMass = m
			}
		}
		if inst.Classes[k].Beta > minMass-1e-9 {
			inst.Classes[k].Beta = minMass - 1e-9
		}
	}
	return inst, nil
}

// SchemeRun is the post-analysis of one scheme on one instance.
type SchemeRun struct {
	Scheme   string
	Losses   [][]float64 // flow × scenario
	PercLoss []float64   // per class
	Elapsed  time.Duration
}

// RunScheme routes the instance with the scheme, validates capacity
// feasibility, and post-analyzes the losses.
func RunScheme(s scheme.Scheme, inst *te.Instance) (*SchemeRun, error) {
	start := time.Now()
	r, err := s.Route(inst)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", s.Name(), err)
	}
	elapsed := time.Since(start)
	if err := r.CheckCapacity(inst, 1e-4); err != nil {
		return nil, fmt.Errorf("%s: %w", s.Name(), err)
	}
	losses := r.LossMatrix(inst)
	return &SchemeRun{
		Scheme:   s.Name(),
		Losses:   losses,
		PercLoss: eval.PercLossAll(inst, losses),
		Elapsed:  elapsed,
	}, nil
}

// ScenarioProbs extracts the scenario probability vector.
func ScenarioProbs(inst *te.Instance) []float64 {
	out := make([]float64, len(inst.Scenarios))
	for q, s := range inst.Scenarios {
		out[q] = s.Prob
	}
	return out
}

// Pearson computes the Pearson correlation coefficient of two vectors.
func Pearson(a, b []float64) float64 {
	n := float64(len(a))
	if n == 0 || len(a) != len(b) {
		return math.NaN()
	}
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		cov += (a[i] - ma) * (b[i] - mb)
		va += (a[i] - ma) * (a[i] - ma)
		vb += (b[i] - mb) * (b[i] - mb)
	}
	if va == 0 || vb == 0 {
		// Degenerate: constant vectors. Identical constants correlate
		// perfectly by convention here (the Fig. 9c comparison hits this
		// when neither model nor emulation loses anything).
		if va == 0 && vb == 0 {
			return 1
		}
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// renderCDF formats a CDF as "value@cum" steps for text reports.
func renderCDF(points []eval.CDFPoint, max int) string {
	if len(points) > max {
		// Keep ends and evenly sample the middle.
		sampled := make([]eval.CDFPoint, 0, max)
		for i := 0; i < max; i++ {
			sampled = append(sampled, points[i*(len(points)-1)/(max-1)])
		}
		points = sampled
	}
	s := ""
	for i, p := range points {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.3f@%.4f", p.Value, p.Cum)
	}
	return s
}

// sortedCopy returns an ascending copy of the slice.
func sortedCopy(v []float64) []float64 {
	out := append([]float64(nil), v...)
	sort.Float64s(out)
	return out
}
