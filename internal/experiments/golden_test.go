package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// update rewrites the golden files instead of comparing against them:
//
//	make golden            # or: go test ./internal/experiments -run Golden -update
var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// checkGolden compares got against testdata/<name> byte for byte and prints
// the first diverging line on mismatch. With -update it rewrites the file.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	wantBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (generate with `make golden`): %v", path, err)
	}
	want := string(wantBytes)
	if got == want {
		return
	}
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("%s: first divergence at line %d:\n got: %q\nwant: %q\n(full output below)\n%s",
				path, i+1, g, w, got)
		}
	}
	t.Fatalf("%s: outputs differ only in length: got %d bytes, want %d", path, len(got), len(want))
}

// TestGoldenTable2 pins the canonical rendering of the paper's Table 2
// (static content: any drift is an intentional edit, refresh with -update).
func TestGoldenTable2(t *testing.T) {
	checkGolden(t, "table2.golden", Table2().Render())
}

// TestGoldenFig9Tiny pins the full rendered Fig. 9 emulation comparison at
// the Tiny scale with a fixed seed and one run. The solve engine promises
// worker-count-independent results, so this output is stable on any
// machine; a diff means the solver's numbers actually moved.
func TestGoldenFig9Tiny(t *testing.T) {
	cfg := Config{Scale: Tiny, Seed: 1, Workers: 4}
	res, err := Fig9(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	if !strings.Contains(out, "PCC") {
		t.Fatalf("Fig9 render missing the model-vs-emulation summary:\n%s", out)
	}
	checkGolden(t, "fig9_tiny.golden", out)
}
