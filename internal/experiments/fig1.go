package experiments

import (
	"fmt"
	"strings"

	"flexile/internal/eval"
	"flexile/internal/failure"
	"flexile/internal/scheme"
	"flexile/internal/scheme/cvarflow"
	"flexile/internal/scheme/flexile"
	"flexile/internal/scheme/ip"
	"flexile/internal/scheme/scenbest"
	"flexile/internal/scheme/teavar"
	"flexile/internal/te"
	"flexile/internal/topo"
	"flexile/internal/tunnels"
)

// Fig1Result reproduces the §3 motivating example (Figs. 1–4): the 99th
// percentile loss each scheme achieves on the triangle topology.
type Fig1Result struct {
	// PercLoss by scheme name.
	PercLoss map[string]float64
}

// Fig1Motivation runs every scheme on the Fig. 1 triangle. The paper's
// claims: ScenBest and Teavar are stuck at ≈50% loss, the CVaR
// generalizations at ≥48.5% (Prop. 2), while Flexile and the exact IP
// achieve zero.
func Fig1Motivation() (*Fig1Result, error) {
	tp := topo.Triangle()
	inst := te.NewInstance(tp, []te.Class{
		{Name: "single", Beta: 0.99, Weight: 1, Tunnels: tunnels.SingleClass(3)},
	})
	inst.Demand[0][0] = 1
	inst.Demand[0][1] = 1
	inst.LinkProbs = []float64{0.01, 0.01, 0.01}
	inst.Scenarios = failure.Enumerate(inst.LinkProbs, 0)

	schemes := []scheme.Scheme{
		&scenbest.Scheme{DisplayName: "SMORE"},
		&teavar.Scheme{},
		&cvarflow.St{},
		&cvarflow.Ad{},
		&flexile.Scheme{},
		&ip.Scheme{},
	}
	res := &Fig1Result{PercLoss: map[string]float64{}}
	for _, s := range schemes {
		run, err := RunScheme(s, inst)
		if err != nil {
			return nil, err
		}
		res.PercLoss[run.Scheme] = run.PercLoss[0]
	}
	return res, nil
}

// Render formats the result as a table.
func (r *Fig1Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 1-4 (motivating example): 99%ile loss on the triangle\n")
	order := []string{"SMORE", "Teavar", "Cvar-Flow-St", "Cvar-Flow-Ad", "Flexile", "IP"}
	for _, name := range order {
		if v, ok := r.PercLoss[name]; ok {
			fmt.Fprintf(&b, "  %-14s PercLoss = %5.1f%%\n", name, 100*v)
		}
	}
	return b.String()
}

// Fig5Result is the CDF of per-flow percentile loss on one topology for
// Teavar, ScenBest and Flexile (paper Fig. 5, IBM).
type Fig5Result struct {
	Topology string
	Beta     float64
	// FlowLossCDF maps scheme → CDF over flows of FlowLoss(f, β).
	FlowLossCDF map[string][]eval.CDFPoint
	// FracZero maps scheme → fraction of flows with zero percentile loss.
	FracZero map[string]float64
	// Worst maps scheme → the worst flow's percentile loss (PercLoss).
	Worst map[string]float64
}

// Fig5 reproduces the per-flow loss CDF. The paper's shape: Flexile's curve
// is a point mass at zero; ScenBest leaves ≥10% of flows at substantial
// loss; Teavar is far to the right.
func Fig5(cfg Config) (*Fig5Result, error) {
	cfg = cfg.withDefaults()
	name := "IBM"
	inst, err := cfg.SingleClass(name)
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{
		Topology:    name,
		Beta:        inst.Classes[0].Beta,
		FlowLossCDF: map[string][]eval.CDFPoint{},
		FracZero:    map[string]float64{},
		Worst:       map[string]float64{},
	}
	for _, s := range []scheme.Scheme{&teavar.Scheme{}, &scenbest.Scheme{}, &flexile.Scheme{}} {
		run, err := RunScheme(s, inst)
		if err != nil {
			return nil, err
		}
		fl := eval.FlowLossAll(inst, run.Losses)
		var vals []float64
		zero := 0
		n := 0
		for _, f := range eval.ClassFlows(inst, 0) {
			vals = append(vals, fl[f])
			n++
			if fl[f] <= 1e-9 {
				zero++
			}
		}
		res.FlowLossCDF[run.Scheme] = eval.CDF(vals, nil)
		res.FracZero[run.Scheme] = float64(zero) / float64(n)
		res.Worst[run.Scheme] = run.PercLoss[0]
	}
	return res, nil
}

// Render formats the result.
func (r *Fig5Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 5: CDF of %.5f-percentile loss across flows (%s)\n", r.Beta, r.Topology)
	for _, name := range []string{"Teavar", "ScenBest", "Flexile"} {
		cdf, ok := r.FlowLossCDF[name]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "  %-9s zero-loss flows: %5.1f%%  worst flow: %5.1f%%  cdf: %s\n",
			name, 100*r.FracZero[name], 100*r.Worst[name], renderCDF(cdf, 8))
	}
	return b.String()
}

// Fig6Result is the CDF (over scenario probability mass) of the ScenLoss
// penalty each scheme pays relative to the per-scenario optimum (ScenBest).
type Fig6Result struct {
	Topology string
	// PenaltyCDF maps scheme → weighted CDF of (ScenLoss − optimal
	// ScenLoss) across scenarios.
	PenaltyCDF map[string][]eval.CDFPoint
	// PenaltyAt maps scheme → penalty at the 0.999 and 0.9999 quantiles.
	PenaltyAt map[string][2]float64
}

// Fig6 reproduces the scenario-loss penalty comparison: Flexile pays almost
// no penalty versus the per-scenario optimum while Teavar's penalty is
// large everywhere.
func Fig6(cfg Config) (*Fig6Result, error) {
	cfg = cfg.withDefaults()
	name := "IBM"
	inst, err := cfg.SingleClass(name)
	if err != nil {
		return nil, err
	}
	opt, err := RunScheme(&scenbest.Scheme{}, inst)
	if err != nil {
		return nil, err
	}
	flows := eval.ClassFlows(inst, 0)
	optScen := make([]float64, len(inst.Scenarios))
	for q := range inst.Scenarios {
		optScen[q] = eval.ScenLoss(inst, opt.Losses, q, flows, true)
	}
	probs := ScenarioProbs(inst)
	res := &Fig6Result{
		Topology:   name,
		PenaltyCDF: map[string][]eval.CDFPoint{},
		PenaltyAt:  map[string][2]float64{},
	}
	for _, s := range []scheme.Scheme{&teavar.Scheme{}, &flexile.Scheme{}} {
		run, err := RunScheme(s, inst)
		if err != nil {
			return nil, err
		}
		pen := make([]float64, len(inst.Scenarios))
		for q := range inst.Scenarios {
			pen[q] = eval.ScenLoss(inst, run.Losses, q, flows, true) - optScen[q]
			if pen[q] < 0 {
				pen[q] = 0
			}
		}
		cdf := eval.CDF(pen, probs)
		res.PenaltyCDF[run.Scheme] = cdf
		res.PenaltyAt[run.Scheme] = [2]float64{eval.Quantile(cdf, 0.999), eval.Quantile(cdf, 0.9999)}
	}
	return res, nil
}

// Render formats the result.
func (r *Fig6Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 6: ScenLoss penalty vs per-scenario optimum (%s)\n", r.Topology)
	for _, name := range []string{"Teavar", "Flexile"} {
		if at, ok := r.PenaltyAt[name]; ok {
			fmt.Fprintf(&b, "  %-9s penalty at 99.9%%: %5.1f%%  at 99.99%%: %5.1f%%\n",
				name, 100*at[0], 100*at[1])
		}
	}
	return b.String()
}
