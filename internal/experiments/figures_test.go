package experiments

import (
	"strings"
	"testing"
)

// smallestCfg trims the tiny scale further so these harness tests stay
// fast under `go test ./...`.
func smallestCfg() Config {
	return Config{Scale: Tiny, Seed: 1, Topologies: []string{"Sprint"}, MaxScenarios: 10}
}

func TestFig12Shape(t *testing.T) {
	res, err := Fig12(smallestCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Flexile never does worse than SMORE or Teavar on any topology.
	for i := range res.Topologies {
		if res.PercLoss["Flexile"][i] > res.PercLoss["SMORE"][i]+1e-6 {
			t.Fatalf("%s: Flexile %v > SMORE %v", res.Topologies[i],
				res.PercLoss["Flexile"][i], res.PercLoss["SMORE"][i])
		}
		if res.PercLoss["Flexile"][i] > res.PercLoss["Teavar"][i]+1e-6 {
			t.Fatalf("%s: Flexile %v > Teavar %v", res.Topologies[i],
				res.PercLoss["Flexile"][i], res.PercLoss["Teavar"][i])
		}
	}
	if !strings.Contains(res.Render(), "median reduction") {
		t.Fatal("render missing summary")
	}
}

func TestFig13Shape(t *testing.T) {
	res, err := Fig13(smallestCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Per-scenario schemes keep high-priority traffic lossless at the
	// 99.9% scenario quantile. Flexile may trade a *non-critical* high
	// flow in a tight scenario for low-priority critical promises — that
	// is the §4.4 trade-off its objective encodes (use SequentialDesign
	// for strict priority) — so for Flexile the assertion is on the
	// percentile metric instead, which its critical coverage guarantees.
	for _, s := range []string{"SWAN-Maxmin", "ScenBest-Multi"} {
		if v := res.HighLossAt999[s]; v > 0.05 {
			t.Fatalf("%s high-priority worst-flow loss %v at 99.9%%", s, v)
		}
	}
	t.Logf("Flexile high@99.9%%=%v (per-scenario; percentile metric is the guarantee)", res.HighLossAt999["Flexile"])
	// Across scenarios, Flexile's low PercLoss beats SWAN-Maxmin's.
	if res.PercLossLow["Flexile"] > res.PercLossLow["SWAN-Maxmin"]+1e-6 {
		t.Fatalf("Flexile low PercLoss %v > SWAN-Maxmin %v",
			res.PercLossLow["Flexile"], res.PercLossLow["SWAN-Maxmin"])
	}
	if res.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestGammaVariantShape(t *testing.T) {
	res, err := GammaVariant(smallestCfg(), "Sprint", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// The γ bound caps the per-scenario penalty at ≈ γ.
	if res.MaxExtraScenLoss > 0.05+0.02 {
		t.Fatalf("per-scenario penalty %v exceeds γ", res.MaxExtraScenLoss)
	}
	if !strings.Contains(res.Render(), "γ") {
		t.Fatal("render missing gamma")
	}
}

func TestFig14AndFig15Shape(t *testing.T) {
	cfg := smallestCfg()
	res14, err := Fig14(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res14.Topologies) == 0 {
		t.Fatal("no IP-solvable topology at this scale")
	}
	// The gap is nonincreasing across iterations and ends ≈ 0 (the paper:
	// optimal within 5 iterations).
	for i := range res14.Topologies {
		gaps := res14.Gap[i]
		for it := 1; it < len(gaps); it++ {
			if gaps[it] > gaps[it-1]+1e-9 {
				t.Fatalf("%s: gap increased at iteration %d: %v", res14.Topologies[i], it+1, gaps)
			}
		}
		if gaps[len(gaps)-1] > 0.02 {
			t.Fatalf("%s: final gap %v", res14.Topologies[i], gaps[len(gaps)-1])
		}
	}

	res15, err := Fig15(cfg, 150)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res15.Topologies {
		if res15.FlexileT[i] <= 0 {
			t.Fatal("missing Flexile timing")
		}
		// The decomposition beats the replicated IP whenever the IP ran.
		if !res15.IPTimedOut[i] && res15.IPT[i] > 0 && res15.FlexileT[i] > res15.IPT[i] {
			t.Logf("note: Flexile %v slower than IP %v on %s (tiny instances can go either way)",
				res15.FlexileT[i], res15.IPT[i], res15.Topologies[i])
		}
	}
	if !strings.Contains(res15.Render(), "links") {
		t.Fatal("render missing header")
	}
}

func TestFig18Shape(t *testing.T) {
	res, err := Fig18(smallestCfg(), []string{"Sprint"})
	if err != nil {
		t.Fatal(err)
	}
	fx := res.MaxScale["Flexile"][0]
	sw := res.MaxScale["SWAN-Maxmin"][0]
	if fx <= 0 || sw < 0 {
		t.Fatalf("scales fx=%v sw=%v", fx, sw)
	}
	// Flexile sustains at least SWAN-Maxmin's zero-loss scale (paper
	// Fig. 18: strictly higher on every topology; ties can occur at the
	// bisection tolerance).
	if fx < sw-0.05 {
		t.Fatalf("Flexile max scale %v below SWAN-Maxmin %v", fx, sw)
	}
	if res.Render() == "" {
		t.Fatal("empty render")
	}
}
