package experiments

import (
	"fmt"
	"strings"

	"flexile/internal/emu"
	"flexile/internal/eval"
	"flexile/internal/scheme"
	"flexile/internal/scheme/flexile"
	"flexile/internal/scheme/scenbest"
	"flexile/internal/scheme/swan"
	"flexile/internal/scheme/teavar"
	"flexile/internal/te"
)

// Fig9Result holds the emulation-testbed comparison (paper Fig. 9, IBM):
// PercLoss per scheme measured on emulated (packet-level) losses rather
// than model-predicted ones, plus the model-vs-emulation agreement data.
type Fig9Result struct {
	Topology string
	Runs     int
	// EmuPercLoss maps scheme → per-class PercLoss per run (median across
	// runs is the paper's bar; min/max are its error bars).
	EmuPercLoss map[string][][]float64
	// ModelPercLoss maps scheme → per-class PercLoss from the model.
	ModelPercLoss map[string][]float64
	// DiffCDF is the CDF of (emulated − model) loss across all flows,
	// scenarios and schemes (Fig. 9c).
	DiffCDF []eval.CDFPoint
	// PCC is the Pearson correlation between model and emulated losses.
	PCC float64
	// MaxAbsDiff is the largest |emulated − model| observed.
	MaxAbsDiff float64
}

// fig9scheme pairs a scheme with the instance flavor it runs on.
type fig9scheme struct {
	s        scheme.Scheme
	twoClass bool
}

// Fig9 emulates each scheme's routing on the packet engine for every
// scenario, Runs times with different seeds (the paper emulates each
// scheme 5 times). The two-class comparison covers Flexile vs SWAN-Maxmin;
// the single-class one Flexile vs SMORE vs Teavar.
func Fig9(cfg Config, runs int) (*Fig9Result, error) {
	cfg = cfg.withDefaults()
	if runs == 0 {
		runs = 5
	}
	name := "IBM"
	single, err := cfg.SingleClass(name)
	if err != nil {
		return nil, err
	}
	two, err := cfg.TwoClass(name)
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{
		Topology:      name,
		Runs:          runs,
		EmuPercLoss:   map[string][][]float64{},
		ModelPercLoss: map[string][]float64{},
	}
	var allModel, allEmu []float64
	schemes := []fig9scheme{
		{&flexile.Scheme{}, true},
		{&swan.Maxmin{}, true},
		{&flexile.Scheme{}, false},
		{&scenbest.Scheme{DisplayName: "SMORE"}, false},
		{&teavar.Scheme{}, false},
	}
	for _, fs := range schemes {
		inst := single
		label := fs.s.Name()
		if fs.twoClass {
			inst = two
			label += "/2class"
		}
		r, err := fs.s.Route(inst)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", label, err)
		}
		model := r.LossMatrix(inst)
		res.ModelPercLoss[label] = eval.PercLossAll(inst, model)
		for run := 0; run < runs; run++ {
			emuLoss, err := emu.LossMatrix(inst, r, emu.Packet, emu.Options{Seed: cfg.Seed + int64(run)})
			if err != nil {
				return nil, err
			}
			res.EmuPercLoss[label] = append(res.EmuPercLoss[label], eval.PercLossAll(inst, emuLoss))
			if run == 0 {
				for f := range model {
					k, i := inst.FlowOf(f)
					if inst.Demand[k][i] <= 0 {
						continue
					}
					for q := range model[f] {
						allModel = append(allModel, model[f][q])
						allEmu = append(allEmu, emuLoss[f][q])
					}
				}
			}
		}
	}
	diffs := make([]float64, len(allModel))
	for i := range allModel {
		diffs[i] = allEmu[i] - allModel[i]
		if a := abs(diffs[i]); a > res.MaxAbsDiff {
			res.MaxAbsDiff = a
		}
	}
	res.DiffCDF = eval.CDF(diffs, nil)
	res.PCC = Pearson(allModel, allEmu)
	return res, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Render formats the emulation comparison.
func (r *Fig9Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 9: emulation testbed comparison (%s, %d runs)\n", r.Topology, r.Runs)
	b.WriteString("  (a) two traffic classes:\n")
	for _, name := range []string{"Flexile/2class", "SWAN-Maxmin/2class"} {
		renderFig9Row(&b, r, name)
	}
	b.WriteString("  (b) single traffic class:\n")
	for _, name := range []string{"Flexile", "SMORE", "Teavar"} {
		renderFig9Row(&b, r, name)
	}
	fmt.Fprintf(&b, "  (c) model vs emulation: PCC = %.4f, max |diff| = %.2f%%\n", r.PCC, 100*r.MaxAbsDiff)
	return b.String()
}

func renderFig9Row(b *strings.Builder, r *Fig9Result, name string) {
	runs, ok := r.EmuPercLoss[name]
	if !ok {
		return
	}
	nk := len(runs[0])
	for k := 0; k < nk; k++ {
		med, lo, hi := medMinMax(runs, k)
		fmt.Fprintf(b, "    %-20s class %d: emu median %5.1f%% (min %5.1f%%, max %5.1f%%), model %5.1f%%\n",
			name, k, 100*med, 100*lo, 100*hi, 100*r.ModelPercLoss[name][k])
	}
}

func medMinMax(runs [][]float64, k int) (med, lo, hi float64) {
	var vals []float64
	for _, r := range runs {
		vals = append(vals, r[k])
	}
	s := sortedCopy(vals)
	return s[len(s)/2], s[0], s[len(s)-1]
}

// ensure te import is used (class count in render paths comes from data).
var _ = te.NoFailure
