// Package ffc implements Forward Fault Correction (Liu et al., SIGCOMM
// 2014), the congestion-free local-rerouting scheme §2 presents as the
// foundation Teavar extends. FFC solves one offline robust LP: grant each
// flow a bandwidth b_i and static tunnel weights x_t such that, in every
// state with at most F simultaneous link failures, the granted bandwidth
// still fits when traffic is proportionally rescaled onto live tunnels.
// Admission is deliberately conservative — that is exactly the behaviour
// the probabilistic schemes (Teavar, Flexile) improve on.
package ffc

import (
	"fmt"
	"sort"

	"flexile/internal/lp"
	"flexile/internal/te"
)

// Scheme is FFC. Single traffic class.
type Scheme struct {
	// F is the number of simultaneous link failures to protect against;
	// 0 means 1 (the common deployment).
	F int
	// LP tunes the solver.
	LP lp.Options
	// Granted, populated by Route, is the offline bandwidth grant per pair.
	Granted []float64
}

// Name implements scheme.Scheme.
func (s *Scheme) Name() string { return fmt.Sprintf("FFC(f=%d)", s.f()) }

func (s *Scheme) f() int {
	if s.F == 0 {
		return 1
	}
	return s.F
}

// protectStates enumerates the failure states with at most F failed links.
func protectStates(numEdges, F int) [][]int {
	var out [][]int
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		out = append(out, append([]int(nil), cur...))
		if len(cur) == F {
			return
		}
		for e := start; e < numEdges; e++ {
			rec(e+1, append(cur, e))
		}
	}
	rec(0, nil)
	return out
}

// Route implements scheme.Scheme.
func (s *Scheme) Route(inst *te.Instance) (*te.Routing, error) {
	if len(inst.Classes) != 1 {
		return nil, fmt.Errorf("ffc: single traffic class required, got %d", len(inst.Classes))
	}
	g := inst.Topo.G
	states := protectStates(g.NumEdges(), s.f())

	p := lp.NewProblem()
	xcol := make([][]int, len(inst.Pairs))
	bcol := make([]int, len(inst.Pairs))
	for i := range inst.Pairs {
		d := inst.Demand[0][i]
		xcol[i] = make([]int, len(inst.Tunnels[0][i]))
		ub := lp.Inf
		if d <= 0 {
			ub = 0
		}
		for t := range inst.Tunnels[0][i] {
			xcol[i][t] = p.AddCol(fmt.Sprintf("x[%d,%d]", i, t), 0, ub, 0)
		}
		bub := d
		if d <= 0 {
			bub = 0
		}
		// Maximize total granted bandwidth.
		bcol[i] = p.AddCol(fmt.Sprintf("b[%d]", i), 0, bub, -1)
	}
	// For every protected state: granted bandwidth fits on live tunnels,
	// and live-tunnel allocations respect live-link capacities.
	for si, failed := range states {
		failedSet := map[int]bool{}
		for _, e := range failed {
			failedSet[e] = true
		}
		alive := func(e int) bool { return !failedSet[e] }
		edgeEntries := make([][]lp.Entry, g.NumEdges())
		for i := range inst.Pairs {
			if inst.Demand[0][i] <= 0 {
				continue
			}
			var es []lp.Entry
			for t, path := range inst.Tunnels[0][i] {
				if !path.Alive(alive) {
					continue
				}
				es = append(es, lp.Entry{Col: xcol[i][t], Coef: 1})
				for _, e := range path.Edges {
					edgeEntries[e] = append(edgeEntries[e], lp.Entry{Col: xcol[i][t], Coef: 1})
				}
			}
			// b_i ≤ Σ_{live t} x_t: the grant survives the failure state.
			es = append(es, lp.Entry{Col: bcol[i], Coef: -1})
			p.AddGE(fmt.Sprintf("live[%d,%d]", si, i), 0, es...)
		}
		for e := 0; e < g.NumEdges(); e++ {
			if failedSet[e] || len(edgeEntries[e]) == 0 {
				continue
			}
			p.AddLE(fmt.Sprintf("cap[%d,%d]", si, e), g.Edge(e).Capacity, edgeEntries[e]...)
		}
	}
	// Two-phase objective: first maximize the common granted fraction λ
	// (plain throughput maximization has unfair degenerate optima — one
	// flow can absorb the whole budget), then maximize total grant with
	// λ* pinned as a floor.
	lam := p.AddCol("lambda", 0, 1, 0)
	for i := range inst.Pairs {
		d := inst.Demand[0][i]
		if d <= 0 {
			continue
		}
		p.AddGE(fmt.Sprintf("fair[%d]", i), 0,
			lp.Entry{Col: bcol[i], Coef: 1}, lp.Entry{Col: lam, Coef: -d})
	}
	for i := range inst.Pairs {
		p.SetCost(bcol[i], 0)
	}
	p.SetCost(lam, -1)
	sol, err := p.SolveOpts(s.LP)
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("ffc: phase 1: %v", sol.Status)
	}
	lamStar := sol.X[lam]
	p.SetCost(lam, 0)
	p.SetColBounds(lam, lamStar-1e-9, 1)
	for i := range inst.Pairs {
		if inst.Demand[0][i] > 0 {
			p.SetCost(bcol[i], -1)
		}
	}
	sol, err = p.SolveOpts(s.LP)
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("ffc: phase 2: %v", sol.Status)
	}
	s.Granted = make([]float64, len(inst.Pairs))
	for i := range inst.Pairs {
		s.Granted[i] = sol.X[bcol[i]]
	}

	// Emit the routing for the instance's probabilistic scenarios:
	// proportional rescale of the grant onto live tunnels, then a uniform
	// per-scenario throttle if a state beyond the protection level
	// oversubscribes some link (the network would drop that traffic).
	r := te.NewRouting(inst)
	for q, scen := range inst.Scenarios {
		aliveFn := scen.Alive()
		load := make([]float64, g.NumEdges())
		for i := range inst.Pairs {
			if inst.Demand[0][i] <= 0 {
				continue
			}
			liveTotal := 0.0
			for t, path := range inst.Tunnels[0][i] {
				if path.Alive(aliveFn) {
					liveTotal += sol.X[xcol[i][t]]
				}
			}
			if liveTotal <= 0 {
				continue
			}
			send := s.Granted[i]
			if send > liveTotal {
				send = liveTotal
			}
			for t, path := range inst.Tunnels[0][i] {
				if !path.Alive(aliveFn) {
					continue
				}
				share := send * sol.X[xcol[i][t]] / liveTotal
				r.X[q][0][i][t] = share
				for _, e := range path.Edges {
					load[e] += share
				}
			}
		}
		// Uniform throttle against overload in unprotected states.
		rho := 1.0
		for e := 0; e < g.NumEdges(); e++ {
			cap := g.Edge(e).Capacity
			if scen.IsFailed(e) || cap <= 0 {
				continue
			}
			if load[e] > cap && load[e]/cap > rho {
				rho = load[e] / cap
			}
		}
		if rho > 1 {
			for i := range inst.Pairs {
				for t := range r.X[q][0][i] {
					r.X[q][0][i][t] /= rho
				}
			}
		}
	}
	return r, nil
}

// GuaranteedStates reports, for the instance's scenarios, which are within
// the protection level (≤ F failed links) — in those, every granted byte
// is deliverable by construction.
func (s *Scheme) GuaranteedStates(inst *te.Instance) []int {
	var out []int
	for q, scen := range inst.Scenarios {
		if len(scen.Failed) <= s.f() {
			out = append(out, q)
		}
	}
	sort.Ints(out)
	return out
}
