package ffc

import (
	"math"
	"testing"

	"flexile/internal/eval"
	"flexile/internal/failure"
	"flexile/internal/te"
	"flexile/internal/topo"
	"flexile/internal/tunnels"
)

func triangleInstance() *te.Instance {
	tp := topo.Triangle()
	inst := te.NewInstance(tp, []te.Class{
		{Name: "single", Beta: 0.99, Weight: 1, Tunnels: tunnels.SingleClass(3)},
	})
	inst.Demand[0][0] = 1
	inst.Demand[0][1] = 1
	inst.LinkProbs = []float64{0.01, 0.01, 0.01}
	inst.Scenarios = failure.Enumerate(inst.LinkProbs, 0)
	return inst
}

// TestFFCTriangleGrant: protecting against one failure on the Fig. 1
// triangle caps each grant at 0.5 — the same conservatism as Teavar, and
// the gap Flexile closes.
func TestFFCTriangleGrant(t *testing.T) {
	inst := triangleInstance()
	s := &Scheme{}
	r, err := s.Route(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckCapacity(inst, 1e-5); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1} {
		if math.Abs(s.Granted[i]-0.5) > 1e-6 {
			t.Fatalf("grant[%d] = %v, want 0.5", i, s.Granted[i])
		}
	}
	losses := r.LossMatrix(inst)
	// In every ≤1-failure scenario the grant is fully delivered: loss
	// exactly 1 − grant/demand = 0.5.
	for _, q := range s.GuaranteedStates(inst) {
		for _, f := range []int{0, 1} {
			if math.Abs(losses[f][q]-0.5) > 1e-6 {
				t.Fatalf("flow %d loss %v in protected scenario %d, want 0.5", f, losses[f][q], q)
			}
		}
	}
	if pl := eval.PercLoss(inst, losses, 0); math.Abs(pl-0.5) > 1e-6 {
		t.Fatalf("PercLoss = %v, want 0.5", pl)
	}
}

// TestFFCZeroProtection: protectStates with F=0 yields only the all-alive
// state (no failure protection).
func TestFFCZeroProtection(t *testing.T) {
	states := protectStates(3, 0)
	if len(states) != 1 || len(states[0]) != 0 {
		t.Fatalf("protectStates(3,0) = %v", states)
	}
}

func TestProtectStatesCount(t *testing.T) {
	// C(4,0)+C(4,1)+C(4,2) = 1+4+6 = 11.
	if got := len(protectStates(4, 2)); got != 11 {
		t.Fatalf("states = %d, want 11", got)
	}
	// All states unique and within size bound.
	seen := map[string]bool{}
	for _, st := range protectStates(5, 2) {
		if len(st) > 2 {
			t.Fatalf("state %v exceeds F", st)
		}
		k := ""
		for _, e := range st {
			k += string(rune('a' + e))
		}
		if seen[k] {
			t.Fatalf("duplicate state %v", st)
		}
		seen[k] = true
	}
}

// TestFFCThrottlesUnprotectedStates: in states beyond the protection
// level the emitted routing must still be capacity-feasible.
func TestFFCThrottlesUnprotectedStates(t *testing.T) {
	tp := topo.MustLoad("Sprint")
	inst := te.NewInstance(tp, []te.Class{
		{Name: "single", Beta: 0.99, Weight: 1, Tunnels: tunnels.SingleClass(3)},
	})
	for i := range inst.Pairs {
		inst.Demand[0][i] = 8
	}
	probs := failure.WeibullProbs(tp.G, 3, failure.WeibullParams{Median: 0.01})
	inst.LinkProbs = probs
	inst.Scenarios = failure.Enumerate(probs, 1e-4)
	s := &Scheme{}
	r, err := s.Route(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckCapacity(inst, 1e-5); err != nil {
		t.Fatalf("FFC emitted an infeasible routing: %v", err)
	}
}

// TestFFCVsFlexile: Flexile beats FFC's percentile loss on the triangle
// (0 vs 0.5) — the paper's §2/§3 argument quantified.
func TestFFCVsFlexile(t *testing.T) {
	inst := triangleInstance()
	ffcRun, err := (&Scheme{}).Route(inst)
	if err != nil {
		t.Fatal(err)
	}
	ffcLoss := eval.PercLoss(inst, ffcRun.LossMatrix(inst), 0)
	if ffcLoss < 0.5-1e-6 {
		t.Fatalf("FFC PercLoss = %v, expected ≥ 0.5", ffcLoss)
	}
}
