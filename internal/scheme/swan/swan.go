// Package swan implements the two SWAN variants the paper compares against
// (§6): SWAN-Throughput maximizes total throughput per scenario, and
// SWAN-Maxmin approximates max-min fairness over flow rates — both
// allocating higher-priority traffic classes before lower ones and fixing
// a class's allocation and routing before the next class is solved.
package swan

import (
	"fmt"

	"flexile/internal/lp"
	"flexile/internal/te"
)

// Throughput is the SWAN-Throughput variant.
type Throughput struct{}

// Name implements scheme.Scheme.
func (*Throughput) Name() string { return "SWAN-Throughput" }

// Route maximizes Σ allocations per class, classes in priority order, in
// every scenario. Throughput maximization is deliberately unfair: flows
// whose demand routes through contended links may receive nothing (the
// paper's A-B-C example in §6.2), which is exactly the behaviour the
// comparison exposes.
func (*Throughput) Route(inst *te.Instance) (*te.Routing, error) {
	r := te.NewRouting(inst)
	for q, scen := range inst.Scenarios {
		fixedUse := make([]float64, inst.Topo.G.NumEdges())
		for k := range inst.Classes {
			a := te.NewAlloc(inst, scen, []int{k}, fixedUse)
			for i := range inst.Pairs {
				d := inst.DemandIn(k, i, q)
				if d <= 0 {
					continue
				}
				es := a.FlowEntries(k, i)
				if len(es) == 0 {
					continue
				}
				a.LP.AddLE(fmt.Sprintf("dem[%d,%d]", k, i), d, es...)
				for _, e := range es {
					a.LP.SetCost(e.Col, a.LP.Cost(e.Col)-1)
				}
			}
			sol, err := a.LP.Solve()
			if err != nil {
				return nil, err
			}
			if sol.Status != lp.Optimal {
				return nil, fmt.Errorf("swan: scenario %d class %d: %v", q, k, sol.Status)
			}
			for i := range inst.Pairs {
				r.X[q][k][i] = a.ExtractX(sol, k, i)
			}
			a.EdgeUse(sol, fixedUse)
		}
	}
	return r, nil
}

// Maxmin is the SWAN-Maxmin variant: the iterative max-min approximation
// from the SWAN paper (geometric waterfilling levels over absolute rates),
// higher classes allocated and routed before lower ones.
type Maxmin struct{}

// Name implements scheme.Scheme.
func (*Maxmin) Name() string { return "SWAN-Maxmin" }

// Route implements scheme.Scheme.
func (*Maxmin) Route(inst *te.Instance) (*te.Routing, error) {
	r := te.NewRouting(inst)
	for q, scen := range inst.Scenarios {
		res, err := te.MaxMin(inst, scen, te.MaxMinOptions{
			Domain:    te.RateDomain,
			FixRoutes: true,
			Demands:   inst.ScenDemandVector(q),
		})
		if err != nil {
			return nil, err
		}
		for k := range inst.Classes {
			for i := range inst.Pairs {
				copy(r.X[q][k][i], res.X[k][i])
			}
		}
	}
	return r, nil
}
