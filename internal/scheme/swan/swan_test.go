package swan

import (
	"math"
	"testing"

	"flexile/internal/failure"
	"flexile/internal/te"
	"flexile/internal/topo"
	"flexile/internal/tunnels"
)

func pathInstance() *te.Instance {
	// A-B-C path (TriangleNoBC gives A-B, A-C; build A-B, B-C instead).
	g := topo.TriangleNoBC().G // edges A-B, A-C
	tp := &topo.Topology{Name: "v", G: g}
	inst := te.NewInstance(tp, []te.Class{
		{Name: "single", Beta: 0.9, Weight: 1, Tunnels: tunnels.SingleClass(3)},
	})
	inst.Scenarios = []failure.Scenario{{Prob: 1}}
	return inst
}

// TestThroughputMaximizesTotal: on the V topology (B-A-C), throughput
// maximization prefers the two one-hop flows over the two-hop flow.
func TestThroughputMaximizesTotal(t *testing.T) {
	inst := pathInstance()
	// Pairs: (A,B)=0, (A,C)=1, (B,C)=2. B-C must cross both links.
	for i := range inst.Pairs {
		inst.Demand[0][i] = 1
	}
	r, err := (&Throughput{}).Route(inst)
	if err != nil {
		t.Fatal(err)
	}
	losses := r.LossMatrix(inst)
	total := 0.0
	for i := range inst.Pairs {
		total += (1 - losses[inst.FlowID(0, i)][0]) * inst.Demand[0][i]
	}
	if math.Abs(total-2) > 1e-6 {
		t.Fatalf("total throughput %v, want 2", total)
	}
	if l := losses[inst.FlowID(0, 2)][0]; math.Abs(l-1) > 1e-6 {
		t.Fatalf("two-hop flow loss %v, want 1 (starved)", l)
	}
}

// TestMaxminSharesEqually: SWAN-Maxmin equalizes rates on a contended link.
func TestMaxminSharesEqually(t *testing.T) {
	inst := pathInstance()
	inst.Demand[0][0] = 1 // A-B (uses link A-B)
	inst.Demand[0][2] = 1 // B-C (uses A-B and A-C)
	r, err := (&Maxmin{}).Route(inst)
	if err != nil {
		t.Fatal(err)
	}
	losses := r.LossMatrix(inst)
	// Link A-B capacity 1 shared equally: each flow delivers 0.5.
	for _, i := range []int{0, 2} {
		if math.Abs(losses[inst.FlowID(0, i)][0]-0.5) > 1e-6 {
			t.Fatalf("flow %d loss %v, want 0.5", i, losses[inst.FlowID(0, i)][0])
		}
	}
}

// TestMaxminPriorityIsolation: the high class's allocation is identical
// whether or not low-priority traffic exists — SWAN fixes higher classes
// before lower ones see the network.
func TestMaxminPriorityIsolation(t *testing.T) {
	tp := topo.Triangle()
	mk := func(lowDemand float64) *te.Instance {
		inst := te.NewInstance(tp, []te.Class{
			{Name: "high", Beta: 0.999, Weight: 1000, Tunnels: tunnels.HighPriority(3)},
			{Name: "low", Beta: 0.99, Weight: 1, Tunnels: tunnels.LowPriority(3, 3)},
		})
		for i := range inst.Pairs {
			inst.Demand[0][i] = 0.4
			inst.Demand[1][i] = lowDemand
		}
		inst.Scenarios = []failure.Scenario{{Prob: 1}}
		return inst
	}
	withLow := mk(0.8)
	withoutLow := mk(0)
	rWith, err := (&Maxmin{}).Route(withLow)
	if err != nil {
		t.Fatal(err)
	}
	rWithout, err := (&Maxmin{}).Route(withoutLow)
	if err != nil {
		t.Fatal(err)
	}
	for i := range withLow.Pairs {
		dWith := rWith.Delivered(withLow, 0, i, 0)
		dWithout := rWithout.Delivered(withoutLow, 0, i, 0)
		if math.Abs(dWith-dWithout) > 1e-6 {
			t.Fatalf("high-class delivery changed with low traffic present: %v vs %v", dWith, dWithout)
		}
	}
}

// TestBothFeasibleUnderFailures on a real topology with failures.
func TestBothFeasibleUnderFailures(t *testing.T) {
	tp := topo.MustLoad("Sprint")
	inst := te.NewInstance(tp, []te.Class{
		{Name: "high", Beta: 0.999, Weight: 1000, Tunnels: tunnels.HighPriority(3)},
		{Name: "low", Beta: 0.99, Weight: 1, Tunnels: tunnels.LowPriority(3, 3)},
	})
	for i := range inst.Pairs {
		inst.Demand[0][i] = 5
		inst.Demand[1][i] = 9
	}
	probs := failure.WeibullProbs(tp.G, 4, failure.WeibullParams{Median: 0.005})
	inst.LinkProbs = probs
	inst.Scenarios = failure.Enumerate(probs, 1e-3)
	for _, s := range []interface {
		Route(*te.Instance) (*te.Routing, error)
	}{&Throughput{}, &Maxmin{}} {
		r, err := s.Route(inst)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.CheckCapacity(inst, 1e-5); err != nil {
			t.Fatal(err)
		}
	}
}
