package flexile

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"flexile/internal/faultinject"
	"flexile/internal/lp"
)

// allScenarioScript builds a fault script firing the given attempt
// sequence on every scenario of the instance.
func allScenarioScript(nq int, kinds ...faultinject.Kind) map[int][]faultinject.Kind {
	script := make(map[int][]faultinject.Kind, nq)
	for q := 0; q < nq; q++ {
		script[q] = kinds
	}
	return script
}

// TestOfflineFaultRetryRecovers: a singular basis injected on the first
// attempt of every scenario solve must be absorbed by the retry policy —
// the hardened re-solve succeeds, the result is identical to a fault-free
// run, and every recovery is accounted for in Report.Retried.
func TestOfflineFaultRetryRecovers(t *testing.T) {
	inst := triangleInstance()
	clean, err := Offline(inst, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.Script(allScenarioScript(len(inst.Scenarios), faultinject.SingularBasis))
	got, err := Offline(inst, Options{Workers: 2, FaultHook: inj.Hook})
	if err != nil {
		t.Fatalf("faulted solve: %v", err)
	}
	if !got.Report.Degraded() || len(got.Report.Retried) == 0 {
		t.Fatalf("expected retries in the report, got %+v", got.Report)
	}
	if len(got.Report.Skipped) != 0 {
		t.Fatalf("retryable faults must recover, not skip: %+v", got.Report.Skipped)
	}
	for _, f := range got.Report.Retried {
		if f.Attempts != 2 {
			t.Fatalf("scenario %d recovered after %d attempts, want 2", f.Scenario, f.Attempts)
		}
		if !strings.Contains(f.Err, "singular") {
			t.Fatalf("retry cause %q does not mention the injected singular basis", f.Err)
		}
	}
	if !got.Critical.Equal(clean.Critical) {
		t.Fatal("recovered-from-faults run diverged from the fault-free critical set")
	}
	if !reflect.DeepEqual(got.PercLoss, clean.PercLoss) {
		t.Fatalf("PercLoss %v after recovery, fault-free %v", got.PercLoss, clean.PercLoss)
	}
	if fired := inj.Fired()[faultinject.SingularBasis]; fired == 0 {
		t.Fatal("injector never fired")
	}
}

// TestOfflineFaultSkipDegradedResult: when every attempt of every
// scenario solve fails, the solve must still return a usable (warm-start)
// result — scenarios are skipped and reported, never crashed on — and the
// online phase must produce a feasible allocation from it.
func TestOfflineFaultSkipDegradedResult(t *testing.T) {
	inst := triangleInstance()
	inj := faultinject.Script(allScenarioScript(len(inst.Scenarios),
		faultinject.SingularBasis, faultinject.SingularBasis))
	res, err := Offline(inst, Options{Workers: 2, FaultHook: inj.Hook})
	if err != nil {
		t.Fatalf("exhausted retries must degrade, not error: %v", err)
	}
	if len(res.Report.Skipped) == 0 {
		t.Fatalf("expected skipped scenarios, got %+v", res.Report)
	}
	for _, f := range res.Report.Skipped {
		if f.Attempts != 2 {
			t.Fatalf("scenario %d skipped after %d attempts, want 2 (1 + default retry)", f.Scenario, f.Attempts)
		}
	}
	if res.Critical == nil {
		t.Fatal("degraded result lost its critical set")
	}
	alloc, err := Online(inst, res, 0, Options{})
	if err != nil {
		t.Fatalf("online phase on fully degraded offline result: %v", err)
	}
	if alloc == nil || alloc.X == nil {
		t.Fatal("online phase returned no allocation")
	}
}

// TestOfflineFaultPanicIsolated: a worker panic on one scenario is
// recovered into a skip of exactly that scenario — no retry (panics
// indicate bugs, not numerics), no crash, and the remaining scenarios
// still solve.
func TestOfflineFaultPanicIsolated(t *testing.T) {
	inst := triangleInstance()
	const victim = 1
	inj := faultinject.Script(map[int][]faultinject.Kind{victim: {faultinject.Panic}})
	res, err := Offline(inst, Options{Workers: 2, FaultHook: inj.Hook})
	if err != nil {
		t.Fatalf("panic must be isolated, not fatal: %v", err)
	}
	if len(res.Report.Skipped) == 0 {
		t.Fatal("panicking scenario was not reported as skipped")
	}
	for _, f := range res.Report.Skipped {
		if f.Scenario != victim {
			t.Fatalf("scenario %d skipped, only %d was faulted", f.Scenario, victim)
		}
		if f.Attempts != 1 {
			t.Fatalf("panic retried (%d attempts); panics must skip directly", f.Attempts)
		}
		if !strings.Contains(f.Err, "panic") {
			t.Fatalf("skip cause %q does not mention the panic", f.Err)
		}
	}
	if res.SubproblemSolves == 0 {
		t.Fatal("no other scenario solved; isolation failed")
	}
}

// TestOfflineFaultFailFast: Options.FailFast restores abort-on-first-
// failure, with the lp sentinel still classifiable through the wrapping.
func TestOfflineFaultFailFast(t *testing.T) {
	inst := triangleInstance()
	inj := faultinject.Script(allScenarioScript(len(inst.Scenarios),
		faultinject.SingularBasis, faultinject.SingularBasis))
	_, err := Offline(inst, Options{Workers: 2, FailFast: true, FaultHook: inj.Hook})
	if err == nil {
		t.Fatal("FailFast solve succeeded despite injected failures")
	}
	if !errors.Is(err, lp.ErrSingularBasis) {
		t.Fatalf("error %v does not wrap lp.ErrSingularBasis", err)
	}
}

// TestOfflineCancelPreCanceled: a canceled context aborts before any work,
// with the context error preserved in the chain.
func TestOfflineCancelPreCanceled(t *testing.T) {
	inst := triangleInstance()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := OfflineCtx(ctx, inst, Options{Workers: 2})
	if err == nil {
		t.Fatal("canceled solve returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if res != nil {
		t.Fatal("canceled solve must not return a partial result")
	}
}

// TestOfflineCancelTimeout: Options.Timeout bounds the solve's wall clock;
// an expired deadline is a hard abort wrapping context.DeadlineExceeded —
// degraded mode never swallows cancellation.
func TestOfflineCancelTimeout(t *testing.T) {
	inst := triangleInstance()
	_, err := Offline(inst, Options{Workers: 2, Timeout: time.Nanosecond})
	if err == nil {
		t.Fatal("nanosecond-deadline solve returned no error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
}

// TestOfflineFaultDeterministicAcrossWorkers extends PR 1's determinism
// contract to faulted runs: with a seeded injector whose decisions depend
// only on (seed, scenario, attempt), the degraded result — critical set,
// losses, trajectory, and the full SolveReport — is bit-for-bit identical
// for every worker count.
func TestOfflineFaultDeterministicAcrossWorkers(t *testing.T) {
	inst := sprintInstance(t)
	run := func(workers int) (*OfflineResult, *faultinject.Injector) {
		inj := faultinject.New(42, 0.5, faultinject.SingularBasis, faultinject.IterLimit)
		res, err := Offline(inst, Options{Workers: workers, FaultHook: inj.Hook})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res, inj
	}
	base, baseInj := run(1)
	if !base.Report.Degraded() {
		t.Fatal("seeded injector fired nothing; the test is vacuous — change the seed or rate")
	}
	for _, workers := range []int{2, 8} {
		got, inj := run(workers)
		if !got.Critical.Equal(base.Critical) {
			t.Fatalf("workers=%d: Critical bitmap differs from sequential faulted run", workers)
		}
		if !reflect.DeepEqual(got.PercLoss, base.PercLoss) {
			t.Fatalf("workers=%d: PercLoss %v, sequential %v", workers, got.PercLoss, base.PercLoss)
		}
		if got.Iterations != base.Iterations || got.SubproblemSolves != base.SubproblemSolves {
			t.Fatalf("workers=%d: trajectory differs: iters %d vs %d, solves %d vs %d",
				workers, got.Iterations, base.Iterations, got.SubproblemSolves, base.SubproblemSolves)
		}
		// Wall-clock timers and the per-worker item distribution legitimately
		// vary with the worker count; every other field — including all the
		// solver counters — must match bit for bit.
		normReport := func(r SolveReport) SolveReport {
			r.Metrics = r.Metrics.Canonical()
			return r
		}
		if !reflect.DeepEqual(normReport(got.Report), normReport(base.Report)) {
			t.Fatalf("workers=%d: SolveReport differs:\n%+v\nsequential:\n%+v", workers, got.Report, base.Report)
		}
		if !reflect.DeepEqual(inj.Fired(), baseInj.Fired()) {
			t.Fatalf("workers=%d: injected faults %v, sequential %v", workers, inj.Fired(), baseInj.Fired())
		}
	}
}

// TestOnlineDegradedMissingOfflineData: the online phase must produce a
// feasible allocation from any degraded offline result — nil result, empty
// result, or a critical set with no loss matrix behind it — never panic.
func TestOnlineDegradedMissingOfflineData(t *testing.T) {
	inst := triangleInstance()
	nf, nq := inst.NumFlows(), len(inst.Scenarios)

	if res, err := Online(inst, nil, 0, Options{}); err != nil || res == nil {
		t.Fatalf("nil offline result: res=%v err=%v", res, err)
	}
	if res, err := Online(inst, &OfflineResult{}, 0, Options{Gamma: 0.05}); err != nil || res == nil {
		t.Fatalf("empty offline result with γ: res=%v err=%v", res, err)
	}
	// Critical bits set but no SubLosses: the promise degrades to the full
	// demand (loss 0), which the allocation must still satisfy feasibly.
	partial := &OfflineResult{Critical: NewCriticalSet(nf, nq)}
	partial.Critical.Set(0, 0, true)
	if res, err := Online(inst, partial, 0, Options{}); err != nil || res == nil {
		t.Fatalf("critical set without losses: res=%v err=%v", res, err)
	}
}
