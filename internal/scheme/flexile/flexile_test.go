package flexile

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"flexile/internal/failure"
	"flexile/internal/lp"
	"flexile/internal/te"
	"flexile/internal/topo"
	"flexile/internal/tunnels"
)

func TestCriticalSetBasics(t *testing.T) {
	cs := NewCriticalSet(5, 7)
	if cs.Flows() != 5 || cs.Scenarios() != 7 {
		t.Fatal("dimensions wrong")
	}
	cs.Set(2, 3, true)
	cs.Set(4, 6, true)
	if !cs.Get(2, 3) || !cs.Get(4, 6) || cs.Get(0, 0) || cs.Get(3, 2) {
		t.Fatal("get/set wrong")
	}
	cs.Set(2, 3, false)
	if cs.Get(2, 3) {
		t.Fatal("clear failed")
	}
	if cs.CountForFlow(4) != 1 || cs.CountForFlow(2) != 0 {
		t.Fatal("CountForFlow wrong")
	}
}

func TestCriticalSetCloneEqualHamming(t *testing.T) {
	a := NewCriticalSet(3, 3)
	a.Set(0, 0, true)
	a.Set(2, 2, true)
	b := a.Clone()
	if !a.Equal(b) || a.Hamming(b) != 0 {
		t.Fatal("clone must equal original")
	}
	b.Set(1, 1, true)
	if a.Equal(b) || a.Hamming(b) != 1 {
		t.Fatal("hamming after one flip must be 1")
	}
	if !a.ScenarioEqual(b, 0) || a.ScenarioEqual(b, 1) {
		t.Fatal("ScenarioEqual wrong")
	}
}

// Property: Set/Get round-trips for arbitrary positions.
func TestCriticalSetQuick(t *testing.T) {
	f := func(rows, cols uint8, picks []uint16) bool {
		nr, nc := int(rows%40)+1, int(cols%40)+1
		cs := NewCriticalSet(nr, nc)
		ref := map[[2]int]bool{}
		for _, p := range picks {
			r, c := int(p)%nr, (int(p)/nr)%nc
			v := p%3 != 0
			cs.Set(r, c, v)
			ref[[2]int{r, c}] = v
		}
		for k, v := range ref {
			if cs.Get(k[0], k[1]) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func triangleInstance() *te.Instance {
	tp := topo.Triangle()
	inst := te.NewInstance(tp, []te.Class{
		{Name: "single", Beta: 0.99, Weight: 1, Tunnels: tunnels.SingleClass(3)},
	})
	inst.Demand[0][0] = 1
	inst.Demand[0][1] = 1
	inst.LinkProbs = []float64{0.01, 0.01, 0.01}
	inst.Scenarios = failure.Enumerate(inst.LinkProbs, 0)
	return inst
}

// TestSubproblemPerScenarioOptimum: with all connected flows critical, the
// subproblem value equals the per-scenario optimum (max-min worst loss).
func TestSubproblemPerScenarioOptimum(t *testing.T) {
	inst := triangleInstance()
	sp := newSubproblem(inst, lp.Options{})
	for q, scen := range inst.Scenarios {
		alive := scen.AliveMask(3)
		crit := func(f int) bool {
			k, i := inst.FlowOf(f)
			return inst.Demand[k][i] > 0 && inst.FlowConnected(k, i, scen)
		}
		sol, err := sp.solve(context.Background(), q, crit, alive, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		z, _, _, err := te.MaxConcurrentScale(inst, scen, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Max(0, 1-math.Min(1, z))
		if math.Abs(sol.optval-want) > 1e-6 {
			t.Fatalf("scenario %d: subproblem %v vs ScenBest %v", q, sol.optval, want)
		}
	}
}

// TestSubproblemCutSelfConsistency: the cut evaluated at its native
// scenario and critical set reproduces the optimal value.
func TestSubproblemCutSelfConsistency(t *testing.T) {
	inst := triangleInstance()
	sp := newSubproblem(inst, lp.Options{})
	for q, scen := range inst.Scenarios {
		alive := scen.AliveMask(3)
		aliveCap := make([]float64, 3)
		for e := range aliveCap {
			if alive[e] {
				aliveCap[e] = 1
			}
		}
		crit := func(f int) bool {
			k, i := inst.FlowOf(f)
			return inst.Demand[k][i] > 0 && inst.FlowConnected(k, i, scen)
		}
		sol, err := sp.solve(context.Background(), q, crit, alive, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := sol.cut.value(crit, aliveCap)
		if math.Abs(got-sol.optval) > 1e-6 {
			t.Fatalf("scenario %d: cut value %v vs optval %v", q, got, sol.optval)
		}
	}
}

// TestSubproblemCutIsLowerBound: a cut transplanted to another critical set
// (same scenario) never exceeds the true optimum there — weak duality.
func TestSubproblemCutIsLowerBound(t *testing.T) {
	inst := triangleInstance()
	sp := newSubproblem(inst, lp.Options{})
	// Native solve with both flows critical in the "A-B failed" scenario.
	qFail := -1
	for q, s := range inst.Scenarios {
		if len(s.Failed) == 1 && s.Failed[0] == 0 {
			qFail = q
		}
	}
	scen := inst.Scenarios[qFail]
	alive := scen.AliveMask(3)
	aliveCap := []float64{0, 1, 1}
	both := func(f int) bool { return f < 2 }
	sol, err := sp.solve(context.Background(), qFail, both, alive, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Transplant the cut to the critical set {flow 1 only}.
	only1 := func(f int) bool { return f == 1 }
	bound := sol.cut.value(only1, aliveCap)
	truth, err := sp.solve(context.Background(), qFail, only1, alive, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bound > truth.optval+1e-6 {
		t.Fatalf("cut %v exceeds optimum %v (weak duality broken)", bound, truth.optval)
	}
}

// TestOfflineConvergesTriangle: the decomposition achieves PercLoss 0 and
// per-iteration penalties never increase for the best-so-far tracking.
func TestOfflineConvergesTriangle(t *testing.T) {
	inst := triangleInstance()
	off, err := Offline(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if off.PercLoss[0] > 1e-9 {
		t.Fatalf("PercLoss = %v, want 0", off.PercLoss[0])
	}
	if off.Iterations < 1 || off.Iterations > 5 {
		t.Fatalf("iterations = %d", off.Iterations)
	}
	if off.SubproblemSolves < len(inst.Scenarios) {
		t.Fatalf("first iteration must touch every scenario, solves=%d", off.SubproblemSolves)
	}
	// Pruning: perfect scenarios are never re-solved, so total solves stay
	// well below iterations × scenarios.
	if off.SubproblemSolves >= off.Iterations*len(inst.Scenarios) && off.Iterations > 1 {
		t.Fatalf("pruning ineffective: %d solves in %d iterations", off.SubproblemSolves, off.Iterations)
	}
}

// TestOfflineGammaVariantBoundsLoss: with γ = 0 every connected flow stays
// at the per-scenario optimal ScenLoss in every scenario.
func TestOfflineGammaVariantBoundsLoss(t *testing.T) {
	inst := triangleInstance()
	off, err := Offline(inst, Options{Gamma: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	for q, scen := range inst.Scenarios {
		for f := 0; f < inst.NumFlows(); f++ {
			k, i := inst.FlowOf(f)
			if inst.Demand[k][i] <= 0 || !inst.FlowConnected(k, i, scen) {
				continue
			}
			if off.SubLosses[f][q] > off.ScenLossOpt[q]+1e-6 {
				t.Fatalf("γ=0: flow %d loss %v exceeds optimal ScenLoss %v in scenario %d",
					f, off.SubLosses[f][q], off.ScenLossOpt[q], q)
			}
		}
	}
	// With γ=0 the triangle cannot reach PercLoss 0 (that's the whole
	// point of the trade-off knob): ScenBest-like behavior gives 0.5.
	if off.PercLoss[0] < 0.5-1e-6 {
		t.Fatalf("γ=0 PercLoss = %v, want 0.5 (ScenBest-equivalent)", off.PercLoss[0])
	}
}

// TestOfflineRejectsInfeasibleBeta: a β above a flow's connectivity mass
// must fail with a clear error.
func TestOfflineRejectsInfeasibleBeta(t *testing.T) {
	inst := triangleInstance()
	inst.Classes[0].Beta = 0.99999 // flows are connected only ~99.98%
	if _, err := Offline(inst, Options{}); err == nil {
		t.Fatal("want coverage error")
	}
}

// TestOnlineHonorsPromises: in every scenario, each critical flow receives
// at least its offline-promised fraction.
func TestOnlineHonorsPromises(t *testing.T) {
	inst := triangleInstance()
	off, err := Offline(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for q := range inst.Scenarios {
		res, err := Online(inst, off, q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for f := 0; f < inst.NumFlows(); f++ {
			if !off.Critical.Get(f, q) {
				continue
			}
			promised := 1 - off.SubLosses[f][q]
			if res.Frac[f] < promised-1e-5 {
				t.Fatalf("scenario %d flow %d: promised %v, online %v", q, f, promised, res.Frac[f])
			}
		}
	}
}

// TestAugmentTriangleNeedsNothing: the paper's §3 point — Flexile meets the
// triangle objectives without any extra capacity.
func TestAugmentTriangleNeedsNothing(t *testing.T) {
	inst := triangleInstance()
	res, err := Augment(inst, AugmentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCost > 1e-6 {
		t.Fatalf("triangle should need zero augmentation, cost %v", res.TotalCost)
	}
	for k, pl := range res.AchievedPercLoss {
		if pl > 1e-6 {
			t.Fatalf("class %d residual loss %v", k, pl)
		}
	}
}

// TestAugmentScaledTriangle: doubling demands makes zero loss impossible
// without extra capacity; augmentation must add some and then achieve the
// target.
func TestAugmentScaledTriangle(t *testing.T) {
	inst := triangleInstance()
	inst.ScaleDemands(1.5)
	res, err := Augment(inst, AugmentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCost <= 0 {
		t.Fatal("scaled triangle needs extra capacity")
	}
	for k, pl := range res.AchievedPercLoss {
		if pl > 1e-6 {
			t.Fatalf("class %d residual loss %v after augmentation", k, pl)
		}
	}
	// The critical-scenario promises must be covered.
	for f := 0; f < inst.NumFlows(); f++ {
		if inst.FlowDemand(f) <= 0 {
			continue
		}
		mass := 0.0
		for q, s := range inst.Scenarios {
			if res.Critical.Get(f, q) {
				mass += s.Prob
			}
		}
		if mass < inst.Classes[0].Beta-1e-9 {
			t.Fatalf("flow %d critical mass %v below β", f, mass)
		}
	}
}

// TestAugmentCannotFixDisconnection: augmentation cannot create links, so
// an unreachable β errors out.
func TestAugmentCannotFixDisconnection(t *testing.T) {
	inst := triangleInstance()
	inst.Classes[0].Beta = 0.99999
	if _, err := Augment(inst, AugmentOptions{}); err == nil {
		t.Fatal("want error for unreachable β")
	}
}

// TestMaxZeroLossScaleTriangle: the triangle supports its unit demands
// (scale 1) but not much more at zero loss.
func TestMaxZeroLossScaleTriangle(t *testing.T) {
	inst := triangleInstance()
	route := func(trial *te.Instance) ([][]float64, error) {
		s := &Scheme{}
		r, err := s.Route(trial)
		if err != nil {
			return nil, err
		}
		return r.LossMatrix(trial), nil
	}
	scale, err := MaxZeroLossScale(inst, 0, route, 0.5, 3, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if scale < 0.9 || scale > 1.3 {
		t.Fatalf("max zero-loss scale = %v, want ≈1 (unit links, unit demands)", scale)
	}
}
