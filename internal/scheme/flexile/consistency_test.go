package flexile

import (
	"context"
	"math"
	"testing"

	"flexile/internal/te"
)

// TestScenLossOptMatchesBruteForce: the ScenLossOpt vector the offline solve
// precomputes through the parallel pool must agree, scenario by scenario,
// with a fresh sequential max-concurrent-scale solve — the brute-force
// definition ScenLoss*_q = max(0, 1 − z*_q). Catches any index or plumbing
// mix-up between the pool's work items and the result slots.
func TestScenLossOptMatchesBruteForce(t *testing.T) {
	for _, tc := range []struct {
		name string
		inst *te.Instance
	}{
		{"triangle", triangleInstance()},
		{"sprint", sprintInstance(t)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			inst := tc.inst
			off, err := Offline(inst, Options{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if len(off.ScenLossOpt) != len(inst.Scenarios) {
				t.Fatalf("ScenLossOpt has %d entries for %d scenarios", len(off.ScenLossOpt), len(inst.Scenarios))
			}
			for q, scen := range inst.Scenarios {
				z, _, _, err := te.MaxConcurrentScaleCtx(context.Background(), inst, scen, nil, inst.ScenDemandVector(q), nil)
				if err != nil {
					t.Fatalf("scenario %d: brute-force solve: %v", q, err)
				}
				want := math.Max(0, 1-math.Min(1, z))
				if math.Abs(off.ScenLossOpt[q]-want) > 1e-6 {
					t.Fatalf("scenario %d: precomputed ScenLossOpt %v, brute force %v", q, off.ScenLossOpt[q], want)
				}
			}
		})
	}
}
