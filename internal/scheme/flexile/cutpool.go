package flexile

import "math"

// cutPool owns the pooled Benders cuts of one decomposition run. It does
// two jobs the raw append-only slice could not:
//
//   - Content dedup: re-solving a scenario whose optimum did not move
//     regenerates the exact same cut, and a duplicate row in the master is
//     pure ballast. Keyed by content hash, verified by full equality.
//
//   - Aging: a cut whose dual bound stays dominated at consecutive master
//     incumbents has stopped shaping the master and is retired from the
//     rows handed to it; if it later becomes binding again (or a scenario
//     regenerates it), it is revived. This keeps long decompositions from
//     dragging an ever-growing master LP behind them.
//
// Both policies are pure functions of pool content and the incumbents
// observed, so — with adds performed in ascending scenario order — the
// surviving pool is bit-for-bit identical for every worker count.
type cutPool[T any] struct {
	key func(T) uint64
	eq  func(a, b T) bool

	cuts    []T
	index   map[uint64]int // content hash → index in cuts
	slack   []int          // consecutive incumbents the cut was dominated at
	retired []bool
	age     int // retire threshold; <= 0 disables aging

	generated, deduped, numRetired, numRevived int64
}

// slackTol separates "binding at the incumbent" (within this of the
// strongest bound) from "dominated" for the aging policy.
const slackTol = 1e-7

func newCutPool[T any](age int, key func(T) uint64, eq func(a, b T) bool) *cutPool[T] {
	return &cutPool[T]{age: age, key: key, eq: eq, index: make(map[uint64]int)}
}

// add pools ct unless an identical cut is already present. Regenerating a
// retired cut revives it: the scenario just proved the cut active again.
func (cp *cutPool[T]) add(ct T) {
	cp.generated++
	k := cp.key(ct)
	if i, ok := cp.index[k]; ok && cp.eq(cp.cuts[i], ct) {
		cp.deduped++
		if cp.retired[i] {
			cp.retired[i] = false
			cp.slack[i] = 0
			cp.numRevived++
		}
		return
	}
	cp.index[k] = len(cp.cuts)
	cp.cuts = append(cp.cuts, ct)
	cp.slack = append(cp.slack, 0)
	cp.retired = append(cp.retired, false)
}

// active returns the live cuts in insertion order.
func (cp *cutPool[T]) active() []T {
	out := make([]T, 0, len(cp.cuts))
	for i, ct := range cp.cuts {
		if !cp.retired[i] {
			out = append(out, ct)
		}
	}
	return out
}

// observe ages the pool against a fresh master incumbent: value(ct) is the
// cut's dual lower bound there, and the strongest bound across the whole
// pool defines binding (within slackTol). Binding cuts reset their slack
// streak — retired ones revive — while dominated cuts accumulate slack and
// retire once the streak reaches the age threshold.
func (cp *cutPool[T]) observe(value func(T) float64) {
	if cp.age <= 0 || len(cp.cuts) == 0 {
		return
	}
	vals := make([]float64, len(cp.cuts))
	best := math.Inf(-1)
	for i, ct := range cp.cuts {
		vals[i] = value(ct)
		if vals[i] > best {
			best = vals[i]
		}
	}
	for i := range cp.cuts {
		if vals[i] >= best-slackTol {
			cp.slack[i] = 0
			if cp.retired[i] {
				cp.retired[i] = false
				cp.numRevived++
			}
			continue
		}
		if cp.retired[i] {
			continue
		}
		cp.slack[i]++
		if cp.slack[i] >= cp.age {
			cp.retired[i] = true
			cp.numRetired++
		}
	}
}

// hash64 streams float64/int words into an FNV-1a hash; the helper behind
// the per-cut-type key functions.
type hash64 struct{ h uint64 }

func newHash64() *hash64 { return &hash64{h: 14695981039346656037} }

func (s *hash64) word(v uint64) {
	for i := 0; i < 8; i++ {
		s.h ^= uint64(byte(v >> (8 * i)))
		s.h *= 1099511628211
	}
}

func (s *hash64) float(f float64) { s.word(math.Float64bits(f)) }

// cutKey hashes an offline cut's full content (native scenario, constant,
// duals); cutEqual confirms a hash hit before a cut is dropped as a
// duplicate.
func cutKey(ct *cut) uint64 {
	s := newHash64()
	s.word(uint64(ct.nativeQ))
	s.float(ct.C)
	for _, y := range ct.yAlpha {
		s.float(y)
	}
	for _, c := range ct.capCoef {
		s.float(c)
	}
	return s.h
}

func cutEqual(a, b *cut) bool {
	if a.nativeQ != b.nativeQ || a.C != b.C ||
		len(a.yAlpha) != len(b.yAlpha) || len(a.capCoef) != len(b.capCoef) {
		return false
	}
	for i := range a.yAlpha {
		if a.yAlpha[i] != b.yAlpha[i] {
			return false
		}
	}
	for i := range a.capCoef {
		if a.capCoef[i] != b.capCoef[i] {
			return false
		}
	}
	return true
}

// augCutKey / augCutEqual are the augmentation-space twins of cutKey /
// cutEqual, over the (z, δ) cut content.
func augCutKey(ct augCut) uint64 {
	s := newHash64()
	s.word(uint64(ct.q))
	s.float(ct.C)
	for _, y := range ct.yAlpha {
		s.float(y)
	}
	for _, y := range ct.yCapRaw {
		s.float(y)
	}
	return s.h
}

func augCutEqual(a, b augCut) bool {
	if a.q != b.q || a.C != b.C ||
		len(a.yAlpha) != len(b.yAlpha) || len(a.yCapRaw) != len(b.yCapRaw) {
		return false
	}
	for i := range a.yAlpha {
		if a.yAlpha[i] != b.yAlpha[i] {
			return false
		}
	}
	for i := range a.yCapRaw {
		if a.yCapRaw[i] != b.yCapRaw[i] {
			return false
		}
	}
	return true
}
