package flexile

import "fmt"

// CriticalSet is the compact flow×scenario bitmap of critical-scenario
// decisions (z_fq). §4.3 notes this is the only extra state the controller
// stores beyond existing TE schemes: one bit per (flow, scenario) — about
// 1.25 MB for a 100-node network with 1000 scenarios and two classes.
type CriticalSet struct {
	flows, scens int
	bits         []uint64
}

// NewCriticalSet allocates an all-zero bitmap.
func NewCriticalSet(flows, scens int) *CriticalSet {
	n := flows * scens
	return &CriticalSet{flows: flows, scens: scens, bits: make([]uint64, (n+63)/64)}
}

func (c *CriticalSet) idx(f, q int) (int, uint64) {
	b := f*c.scens + q
	return b >> 6, 1 << uint(b&63)
}

// Set marks scenario q critical (or not) for flow f.
func (c *CriticalSet) Set(f, q int, v bool) {
	w, m := c.idx(f, q)
	if v {
		c.bits[w] |= m
	} else {
		c.bits[w] &^= m
	}
}

// Get reports whether scenario q is critical for flow f.
func (c *CriticalSet) Get(f, q int) bool {
	w, m := c.idx(f, q)
	return c.bits[w]&m != 0
}

// Flows returns the flow-dimension size.
func (c *CriticalSet) Flows() int { return c.flows }

// Scenarios returns the scenario-dimension size.
func (c *CriticalSet) Scenarios() int { return c.scens }

// CountForFlow returns how many scenarios are critical for flow f.
func (c *CriticalSet) CountForFlow(f int) int {
	n := 0
	for q := 0; q < c.scens; q++ {
		if c.Get(f, q) {
			n++
		}
	}
	return n
}

// ByteSize reports the storage footprint in bytes.
func (c *CriticalSet) ByteSize() int { return len(c.bits) * 8 }

// Clone deep-copies the bitmap.
func (c *CriticalSet) Clone() *CriticalSet {
	out := &CriticalSet{flows: c.flows, scens: c.scens, bits: append([]uint64(nil), c.bits...)}
	return out
}

// Equal reports whether two bitmaps agree everywhere.
func (c *CriticalSet) Equal(o *CriticalSet) bool {
	if c.flows != o.flows || c.scens != o.scens {
		return false
	}
	for i := range c.bits {
		if c.bits[i] != o.bits[i] {
			return false
		}
	}
	return true
}

// ScenarioEqual reports whether column q matches between two bitmaps —
// used by the pruning rule "skip scenarios whose critical flows did not
// change" (§4.2).
func (c *CriticalSet) ScenarioEqual(o *CriticalSet, q int) bool {
	for f := 0; f < c.flows; f++ {
		if c.Get(f, q) != o.Get(f, q) {
			return false
		}
	}
	return true
}

// ScenarioColumn is a snapshot of a single scenario's column of a
// CriticalSet: one bit per flow. The offline solve cache keeps one of
// these per scenario instead of cloning the full nf×nq bitmap — O(nf)
// memory and copy time per snapshot rather than O(nf·nq).
type ScenarioColumn struct {
	flows int
	bits  []uint64
}

// CloneScenario snapshots column q (z_fq for every flow f).
func (c *CriticalSet) CloneScenario(q int) *ScenarioColumn {
	sc := &ScenarioColumn{flows: c.flows, bits: make([]uint64, (c.flows+63)/64)}
	for f := 0; f < c.flows; f++ {
		if c.Get(f, q) {
			sc.bits[f>>6] |= 1 << uint(f&63)
		}
	}
	return sc
}

// Get reports the snapshotted bit of flow f.
func (sc *ScenarioColumn) Get(f int) bool {
	return sc.bits[f>>6]&(1<<uint(f&63)) != 0
}

// Flows returns the flow-dimension size.
func (sc *ScenarioColumn) Flows() int { return sc.flows }

// ByteSize reports the storage footprint in bytes.
func (sc *ScenarioColumn) ByteSize() int { return len(sc.bits) * 8 }

// EqualColumn reports whether the snapshot still matches column q of o —
// the pruning rule "skip scenarios whose critical flows did not change"
// (§4.2) against a live bitmap.
func (sc *ScenarioColumn) EqualColumn(o *CriticalSet, q int) bool {
	if sc.flows != o.flows {
		return false
	}
	for f := 0; f < sc.flows; f++ {
		if sc.Get(f) != o.Get(f, q) {
			return false
		}
	}
	return true
}

// Words exposes the bitmap's backing 64-bit words for serialization (the
// offline artifact consumed by internal/serve). The slice aliases the
// bitmap's storage: callers must treat it as read-only.
func (c *CriticalSet) Words() []uint64 { return c.bits }

// NewCriticalSetFromWords reconstructs a bitmap from its serialized words.
// The word count must match the dimensions exactly; stray bits beyond
// flows×scens in the last word are cleared so reconstructed bitmaps compare
// equal to organically built ones.
func NewCriticalSetFromWords(flows, scens int, words []uint64) (*CriticalSet, error) {
	if flows < 0 || scens < 0 {
		return nil, fmt.Errorf("flexile: negative critical-set dimensions %d×%d", flows, scens)
	}
	n := flows * scens
	if flows != 0 && n/flows != scens {
		return nil, fmt.Errorf("flexile: critical-set dimensions %d×%d overflow", flows, scens)
	}
	need := (n + 63) / 64
	if len(words) != need {
		return nil, fmt.Errorf("flexile: critical set %d×%d needs %d words, got %d", flows, scens, need, len(words))
	}
	c := &CriticalSet{flows: flows, scens: scens, bits: append([]uint64(nil), words...)}
	if rem := n & 63; rem != 0 && need > 0 {
		c.bits[need-1] &= (1 << uint(rem)) - 1
	}
	return c, nil
}

// Hamming returns the number of differing bits.
func (c *CriticalSet) Hamming(o *CriticalSet) int {
	n := 0
	for i := range c.bits {
		x := c.bits[i] ^ o.bits[i]
		for x != 0 {
			x &= x - 1
			n++
		}
	}
	return n
}
