package flexile

import (
	"testing"

	"flexile/internal/eval"
)

// TestOfflinePerScenarioTM: the §4.4 extension end to end. The triangle
// cannot give both unit flows zero loss at the 99th percentile under
// ScenBest, but when failure scenarios carry halved demands (maintenance
// windows throttle traffic, say), even the warm start achieves zero — and
// the per-scenario subproblems must be using the right matrices for that
// to come out.
func TestOfflinePerScenarioTM(t *testing.T) {
	inst := triangleInstance()
	inst.ScenDemand = make([][]float64, len(inst.Scenarios))
	for q, s := range inst.Scenarios {
		if len(s.Failed) == 0 {
			continue
		}
		d := make([]float64, inst.NumFlows())
		d[inst.FlowID(0, 0)] = 0.5
		d[inst.FlowID(0, 1)] = 0.5
		inst.ScenDemand[q] = d
	}
	off, err := Offline(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if off.PercLoss[0] > 1e-9 {
		t.Fatalf("PercLoss = %v, want 0 with scenario TMs", off.PercLoss[0])
	}
	// End to end through the online phase: evaluated losses honor the
	// scenario demands too.
	s := &Scheme{}
	r, err := s.Route(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckCapacity(inst, 1e-5); err != nil {
		t.Fatal(err)
	}
	losses := r.LossMatrix(inst)
	if pl := eval.PercLoss(inst, losses, 0); pl > 1e-6 {
		t.Fatalf("online PercLoss = %v, want 0", pl)
	}
}

// TestOfflinePerScenarioTMHarder: demands that rise in failure scenarios
// must make things harder, not silently use the base matrix.
func TestOfflinePerScenarioTMHarder(t *testing.T) {
	inst := triangleInstance()
	inst.ScenDemand = make([][]float64, len(inst.Scenarios))
	for q, s := range inst.Scenarios {
		if len(s.Failed) == 0 {
			continue
		}
		d := make([]float64, inst.NumFlows())
		d[inst.FlowID(0, 0)] = 2 // double demand under failures
		d[inst.FlowID(0, 1)] = 2
		inst.ScenDemand[q] = d
	}
	off, err := Offline(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The base matrix alone would permit zero loss (Fig. 1); doubled
	// failure-scenario demands cannot be fully met in the flows' critical
	// failure states (a single unit link carries at most half of demand 2).
	if off.PercLoss[0] < 0.25 {
		t.Fatalf("PercLoss = %v; doubled scenario demands should force loss", off.PercLoss[0])
	}
}
