package flexile

import (
	"reflect"
	"strings"
	"testing"

	"flexile/internal/faultinject"
)

// sameOffline asserts two offline results are bit-for-bit identical in
// every solver-visible output: critical set, losses, penalties, and
// trajectory counters.
func sameOffline(t *testing.T, label string, got, want *OfflineResult) {
	t.Helper()
	if !got.Critical.Equal(want.Critical) {
		t.Errorf("%s: critical sets differ", label)
	}
	if !reflect.DeepEqual(got.PercLoss, want.PercLoss) {
		t.Errorf("%s: PercLoss %v vs %v", label, got.PercLoss, want.PercLoss)
	}
	if !reflect.DeepEqual(got.IterPenalty, want.IterPenalty) {
		t.Errorf("%s: IterPenalty %v vs %v", label, got.IterPenalty, want.IterPenalty)
	}
	if !reflect.DeepEqual(got.SubLosses, want.SubLosses) {
		t.Errorf("%s: SubLosses differ", label)
	}
	if got.Iterations != want.Iterations || got.SubproblemSolves != want.SubproblemSolves {
		t.Errorf("%s: trajectory differs: iters %d vs %d, solves %d vs %d",
			label, got.Iterations, want.Iterations, got.SubproblemSolves, want.SubproblemSolves)
	}
}

// TestOfflineBatchOracleIdentity: the batched LP path (default) is
// bit-identical by construction to per-scenario Problem solves (NoBatch,
// the oracle) — same trajectory, same pivot counts, same outputs.
func TestOfflineBatchOracleIdentity(t *testing.T) {
	inst := sprintInstance(t)
	batch, err := Offline(inst, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := Offline(inst, Options{Workers: 2, NoBatch: true})
	if err != nil {
		t.Fatal(err)
	}
	sameOffline(t, "batch vs oracle", batch, oracle)
	bm, om := batch.Report.Metrics.Canonical(), oracle.Report.Metrics.Canonical()
	if bm.LP.Pivots != om.LP.Pivots || bm.LP.Phase1Pivots != om.LP.Phase1Pivots {
		t.Errorf("pivot trajectories differ: batch %d/%d, oracle %d/%d",
			bm.LP.Pivots, bm.LP.Phase1Pivots, om.LP.Pivots, om.LP.Phase1Pivots)
	}
}

// TestOfflineWarmMatchesCold: on instances whose LP path is non-degenerate
// (sprint, triangle) warm starting changes the route, not the destination —
// the full result matches the cold run bit for bit, with measurably fewer
// pivots. (On degenerate instances warm runs are objective-equivalent but
// may follow a different, equally optimal trajectory; see DESIGN.md §12.)
func TestOfflineWarmMatchesCold(t *testing.T) {
	inst := sprintInstance(t)
	cold, err := Offline(inst, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Offline(inst, Options{Workers: 1, WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	sameOffline(t, "warm vs cold", warm, cold)

	wm, cm := warm.Report.Metrics.Canonical(), cold.Report.Metrics.Canonical()
	if wm.LP.WarmStarts == 0 {
		t.Error("warm run installed no start basis")
	}
	if wm.LP.WarmStartRejected != 0 {
		t.Errorf("%d cached bases rejected; cache shape management is broken", wm.LP.WarmStartRejected)
	}
	if wm.LP.Pivots >= cm.LP.Pivots {
		t.Errorf("warm run did %d pivots, cold %d; warm starting saved nothing", wm.LP.Pivots, cm.LP.Pivots)
	}
	t.Logf("pivots: warm %d vs cold %d (%.1f%%), warm starts %d",
		wm.LP.Pivots, cm.LP.Pivots, 100*float64(wm.LP.Pivots)/float64(cm.LP.Pivots), wm.LP.WarmStarts)
}

// TestOfflineWarmDeterministicAcrossWorkers: warm runs fix the seed basis
// with a serial solve before the parallel fan-out, so the warm trajectory —
// unlike its pivot schedule's wall clock — is identical for every worker
// count, including the full per-solve counter report.
func TestOfflineWarmDeterministicAcrossWorkers(t *testing.T) {
	inst := sprintInstance(t)
	run := func(workers int) *OfflineResult {
		res, err := Offline(inst, Options{Workers: workers, WarmStart: true})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	base := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		sameOffline(t, "workers", got, base)
		gm, bm := got.Report.Metrics.Canonical(), base.Report.Metrics.Canonical()
		if gm.LP.Pivots != bm.LP.Pivots || gm.LP.WarmStarts != bm.LP.WarmStarts {
			t.Errorf("workers=%d: pivots/warmstarts %d/%d, sequential %d/%d",
				workers, gm.LP.Pivots, gm.LP.WarmStarts, bm.LP.Pivots, bm.LP.WarmStarts)
		}
	}
}

// TestOfflineWarmFaultRetriesCold: a fault on a warm-started attempt must
// retry cold (hardened, no start basis) and must not poison the basis
// cache — the degraded run still recovers to exactly the clean warm run's
// result.
func TestOfflineWarmFaultRetriesCold(t *testing.T) {
	inst := triangleInstance()
	clean, err := Offline(inst, Options{Workers: 2, WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.Script(allScenarioScript(len(inst.Scenarios), faultinject.SingularBasis))
	got, err := Offline(inst, Options{Workers: 2, WarmStart: true, FaultHook: inj.Hook})
	if err != nil {
		t.Fatalf("faulted warm solve: %v", err)
	}
	if !got.Report.Degraded() || len(got.Report.Retried) == 0 {
		t.Fatalf("expected retries in the report, got %+v", got.Report)
	}
	if len(got.Report.Skipped) != 0 {
		t.Fatalf("retryable faults must recover, not skip: %+v", got.Report.Skipped)
	}
	for _, f := range got.Report.Retried {
		if f.Attempts != 2 {
			t.Fatalf("scenario %d recovered after %d attempts, want 2", f.Scenario, f.Attempts)
		}
		if !strings.Contains(f.Err, "singular") {
			t.Fatalf("retry cause %q does not mention the injected fault", f.Err)
		}
	}
	sameOffline(t, "faulted warm vs clean warm", got, clean)
}
