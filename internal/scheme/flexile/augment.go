package flexile

import (
	"context"
	"fmt"
	"math"

	"flexile/internal/graph"
	"flexile/internal/lp"
	"flexile/internal/mip"
	"flexile/internal/te"
)

// AugmentOptions configures capacity augmentation (§4.4 and the appendix):
// find the minimum-cost capacity additions δ_e such that every class can
// meet a given PercLoss target.
type AugmentOptions struct {
	// Target[k] is the PercLoss bound class k must meet; nil means zero
	// loss for every class.
	Target []float64
	// Cost[e] is the per-unit cost of adding capacity to edge e; nil means
	// uniform cost 1.
	Cost []float64
	// MaxAug[e] caps the augmentation per edge; nil means 10× the edge's
	// capacity.
	MaxAug []float64
	// MaxIterations bounds the decomposition loop; 0 means 8.
	MaxIterations int
	// MasterNodes bounds master branch-and-bound nodes; 0 means 200.
	MasterNodes int
	// CutAge is the cut-pool aging horizon, as in Options.CutAge: cuts
	// dominated at this many consecutive incumbents leave the master until
	// they bind again. 0 means 5; negative disables aging.
	CutAge int
	// LP tunes the solvers.
	LP lp.Options
}

// augCut is a Benders cut in the joint (z, δ) space.
type augCut struct {
	yAlpha  []float64
	yCapRaw []float64 // raw capacity duals y_e ≤ 0 (unscaled)
	C       float64   // constant term w.r.t. (z, δ=0 base capacities)
	q       int
}

// AugmentResult is the outcome of capacity augmentation.
type AugmentResult struct {
	// Delta[e] is the capacity added to edge e.
	Delta []float64
	// TotalCost is Σ_e cost_e·δ_e.
	TotalCost float64
	// Critical is the accompanying critical-scenario selection.
	Critical *CriticalSet
	// AchievedPercLoss[k] is the realized PercLoss with the augmentation.
	AchievedPercLoss []float64
	// Iterations is the number of decomposition rounds used.
	Iterations int
}

// Augment computes a minimum-cost capacity augmentation meeting the
// per-class PercLoss targets, using the same Benders-style decomposition
// as the offline phase generalized to the (z, δ) space: subproblem duals
// give cuts linear in both the critical-scenario indicators and the added
// capacities (appendix, eq. 21 with c_e replaced by c_e+δ_e).
func Augment(inst *te.Instance, opt AugmentOptions) (*AugmentResult, error) {
	nf, nq := inst.NumFlows(), len(inst.Scenarios)
	g := inst.Topo.G
	if nq == 0 {
		return nil, fmt.Errorf("flexile: instance has no scenarios")
	}
	if opt.MaxIterations == 0 {
		opt.MaxIterations = 8
	}
	if opt.MasterNodes == 0 {
		opt.MasterNodes = 200
	}
	if opt.CutAge == 0 {
		opt.CutAge = 5
	}
	target := opt.Target
	if target == nil {
		target = make([]float64, len(inst.Classes))
	}
	cost := opt.Cost
	if cost == nil {
		cost = make([]float64, g.NumEdges())
		for e := range cost {
			cost[e] = 1
		}
	}
	maxAug := opt.MaxAug
	if maxAug == nil {
		maxAug = make([]float64, g.NumEdges())
		for e := range maxAug {
			maxAug[e] = 10 * g.Edge(e).Capacity
		}
	}

	// Connectivity (z eligibility) as in Offline.
	connected := make([][]bool, nf)
	for k := range inst.Classes {
		for i := range inst.Pairs {
			f := inst.FlowID(k, i)
			connected[f] = make([]bool, nq)
			for q, s := range inst.Scenarios {
				connected[f][q] = inst.FlowConnected(k, i, s)
			}
			if inst.Demand[k][i] <= 0 {
				continue
			}
			mass := 0.0
			for q, s := range inst.Scenarios {
				if connected[f][q] {
					mass += s.Prob
				}
			}
			if mass < inst.Classes[k].Beta-1e-9 {
				return nil, fmt.Errorf("flexile: augmentation cannot help flow %d: connected mass %.6f < β=%v (capacity does not create links)",
					f, mass, inst.Classes[k].Beta)
			}
		}
	}

	// Warm start: all-connected critical, zero augmentation.
	z := NewCriticalSet(nf, nq)
	for f := 0; f < nf; f++ {
		for q := 0; q < nq; q++ {
			if connected[f][q] && inst.FlowDemand(f) > 0 {
				z.Set(f, q, true)
			}
		}
	}
	delta := make([]float64, g.NumEdges())

	aliveMask := make([][]bool, nq)
	for q, s := range inst.Scenarios {
		aliveMask[q] = s.AliveMask(g.NumEdges())
	}

	// Augmented instance view: a clone whose graph capacities we mutate.
	work := inst.Clone()
	workTopo := *inst.Topo
	workG := cloneGraph(g)
	workTopo.G = workG
	work.Topo = &workTopo

	// Each iteration re-solves every scenario at the new (z, δ), so a
	// scenario whose optimum did not move regenerates its exact cut — the
	// pool dedups those and ages dominated cuts out of the master.
	pool := newCutPool(opt.CutAge, augCutKey, augCutEqual)

	res := &AugmentResult{Delta: delta}
	for iter := 0; iter < opt.MaxIterations; iter++ {
		// Apply current δ.
		for e := 0; e < g.NumEdges(); e++ {
			workG.SetCapacity(e, g.Edge(e).Capacity+delta[e])
		}
		sp := newSubproblem(work, opt.LP)
		worst := make([]float64, len(inst.Classes))
		feasible := true
		for q := range inst.Scenarios {
			sol, err := sp.solve(context.Background(), q, func(f int) bool { return z.Get(f, q) }, aliveMask[q], nil, nil)
			if err != nil {
				return nil, err
			}
			// Per-class worst critical loss in this scenario.
			for k := range inst.Classes {
				for i := range inst.Pairs {
					f := inst.FlowID(k, i)
					if z.Get(f, q) && sol.loss[f] > worst[k] {
						worst[k] = sol.loss[f]
					}
				}
			}
			// Cut in (z, δ): value ≥ C + Σ y_a(z−1) + Σ y_e·(c_e+δ_e)·m_eq.
			ct := augCut{
				yAlpha:  sol.cut.yAlpha,
				yCapRaw: make([]float64, g.NumEdges()),
				q:       q,
			}
			capTerm := 0.0
			for e := 0; e < g.NumEdges(); e++ {
				// cut.capCoef = y_e·(c_e+δ_e); recover y_e.
				capE := g.Edge(e).Capacity + delta[e]
				if capE > 0 {
					ct.yCapRaw[e] = sol.cut.capCoef[e] / capE
				}
				if aliveMask[q][e] {
					capTerm += ct.yCapRaw[e] * (g.Edge(e).Capacity + delta[e])
				}
			}
			zTerm := 0.0
			for f, y := range ct.yAlpha {
				if !z.Get(f, q) {
					zTerm -= y
				}
			}
			ct.C = sol.optval - zTerm - capTerm
			pool.add(ct)
		}
		res.Iterations = iter + 1
		for k := range inst.Classes {
			if worst[k] > target[k]+1e-7 {
				feasible = false
			}
		}
		if feasible {
			res.AchievedPercLoss = worst
			res.Critical = z.Clone()
			res.Delta = append([]float64(nil), delta...)
			res.TotalCost = 0
			for e := range delta {
				res.TotalCost += cost[e] * delta[e]
			}
			return res, nil
		}
		// Master in (z, δ): min Σ cost·δ s.t. coverage, cuts ≤ target.
		nz, nd, err := solveAugMaster(inst, connected, pool.active(), z, aliveMask, target, cost, maxAug, opt)
		if err != nil {
			return nil, err
		}
		z, delta = nz, nd
		// Age the pool at the new incumbent (z, δ): a cut's value is its
		// subproblem lower bound there, the quantity the master constrains
		// to the target.
		pool.observe(func(ct augCut) float64 {
			v := ct.C
			for f, y := range ct.yAlpha {
				if !z.Get(f, ct.q) {
					v -= y
				}
			}
			for e, y := range ct.yCapRaw {
				if y != 0 && aliveMask[ct.q][e] {
					v += y * (g.Edge(e).Capacity + delta[e])
				}
			}
			return v
		})
	}
	return nil, fmt.Errorf("flexile: augmentation did not converge in %d iterations", opt.MaxIterations)
}

// cloneGraph deep-copies a graph so capacities can be mutated per
// iteration without touching the caller's topology.
func cloneGraph(g *graph.Graph) *graph.Graph {
	out := graph.New(g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		out.SetNodeName(v, g.NodeName(v))
	}
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(e)
		out.AddEdge(ed.A, ed.B, ed.Capacity)
	}
	return out
}

// solveAugMaster solves the augmentation master: minimize Σ cost_e·δ_e over
// binary z (coverage per flow) and δ ∈ [0, maxAug], subject to every cut
// keeping the (weighted) subproblem value within the target. Targets are
// enforced through the weighted objective Σ_k w_k·target_k, which is exact
// for the common zero-loss target.
func solveAugMaster(inst *te.Instance, connected [][]bool, cuts []augCut, zPrev *CriticalSet, aliveMask [][]bool, target, cost, maxAug []float64, opt AugmentOptions) (*CriticalSet, []float64, error) {
	g := inst.Topo.G
	nf, nq := inst.NumFlows(), len(inst.Scenarios)
	wTarget := 0.0
	for k := range inst.Classes {
		wTarget += inst.Classes[k].Weight * target[k]
	}
	p := lp.NewProblem()
	dcol := make([]int, g.NumEdges())
	for e := range dcol {
		dcol[e] = p.AddCol(fmt.Sprintf("delta[%d]", e), 0, maxAug[e], cost[e])
	}
	zcol := make([][]int, nf)
	var binaries []int
	var binFlow, binScen []int
	for f := 0; f < nf; f++ {
		zcol[f] = make([]int, nq)
		for q := range zcol[f] {
			zcol[f][q] = -1
		}
		if inst.FlowDemand(f) <= 0 {
			continue
		}
		for q := 0; q < nq; q++ {
			if !connected[f][q] {
				continue
			}
			col := p.AddCol(fmt.Sprintf("z[%d,%d]", f, q), 0, 1, 0)
			zcol[f][q] = col
			binaries = append(binaries, col)
			binFlow = append(binFlow, f)
			binScen = append(binScen, q)
		}
	}
	for k := range inst.Classes {
		for i := range inst.Pairs {
			if inst.Demand[k][i] <= 0 {
				continue
			}
			f := inst.FlowID(k, i)
			var es []lp.Entry
			for q, s := range inst.Scenarios {
				if zcol[f][q] >= 0 {
					es = append(es, lp.Entry{Col: zcol[f][q], Coef: s.Prob})
				}
			}
			p.AddGE(fmt.Sprintf("cov[%d]", f), inst.Classes[k].Beta-1e-9, es...)
		}
	}
	// Cut rows: Σ_f y_af·z_fq + Σ_e (y_e·m_eq)·δ_e ≤
	//           T − C + Σ_f y_af − Σ_e y_e·c_e·m_eq.
	for ci, ct := range cuts {
		q := ct.q
		rhs := wTarget - ct.C
		var es []lp.Entry
		for f, y := range ct.yAlpha {
			if y == 0 {
				continue
			}
			rhs += y
			if zcol[f][q] >= 0 {
				es = append(es, lp.Entry{Col: zcol[f][q], Coef: y})
			}
			// z fixed at 0 contributes nothing to the LHS.
		}
		for e, y := range ct.yCapRaw {
			if y == 0 || !aliveMask[q][e] {
				continue
			}
			rhs -= y * g.Edge(e).Capacity
			es = append(es, lp.Entry{Col: dcol[e], Coef: y})
		}
		if len(es) == 0 {
			if rhs < -1e-9 {
				return nil, nil, fmt.Errorf("flexile: augmentation cut %d is unconditionally violated", ci)
			}
			continue
		}
		p.AddLE(fmt.Sprintf("cut[%d]", ci), rhs, es...)
	}
	warm := make([]float64, len(binaries))
	for b := range binaries {
		if zPrev.Get(binFlow[b], binScen[b]) {
			warm[b] = 1
		}
	}
	sol, err := mip.Solve(&mip.Problem{LP: p, Binary: binaries}, mip.Options{
		MaxNodes:   opt.MasterNodes,
		LP:         opt.LP,
		WarmBinary: warm,
	})
	if err != nil {
		return nil, nil, err
	}
	if sol.Status == mip.Infeasible || sol.Status == mip.Unbounded {
		return nil, nil, fmt.Errorf("flexile: augmentation master %v", sol.Status)
	}
	nz := NewCriticalSet(nf, nq)
	for b, col := range binaries {
		if sol.X[col] > 0.5 {
			nz.Set(binFlow[b], binScen[b], true)
		}
	}
	nd := make([]float64, g.NumEdges())
	for e := range nd {
		nd[e] = math.Max(0, sol.X[dcol[e]])
	}
	return nz, nd, nil
}
