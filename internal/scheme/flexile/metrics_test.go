package flexile

import (
	"reflect"
	"testing"

	"flexile/internal/faultinject"
	"flexile/internal/te"
)

// TestMetricsDeterministicAcrossWorkers: the deterministic portion of the
// per-solve metrics snapshot (everything Canonical() keeps — pivot counts,
// node counts, cut counts, statuses) is bit-identical for every worker
// count, exactly like the solve result itself.
func TestMetricsDeterministicAcrossWorkers(t *testing.T) {
	for _, tc := range []struct {
		name       string
		inst       func(*testing.T) *te.Instance
		opt        Options
		wantMaster bool // the triangle instance needs a master round; sprint converges without one
	}{
		{"sprint", sprintInstance, Options{}, false},
		{"triangle", func(*testing.T) *te.Instance { return triangleInstance() }, Options{}, true},
		{"triangle-gamma", func(*testing.T) *te.Instance { return triangleInstance() }, Options{Gamma: 0.05}, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			inst := tc.inst(t)
			opt := tc.opt
			opt.Workers = 1
			base, err := Offline(inst, opt)
			if err != nil {
				t.Fatal(err)
			}
			bm := base.Report.Metrics

			// Sanity: the snapshot actually observed the solve.
			if bm.LP.Solves == 0 || bm.LP.Pivots == 0 || bm.LP.Optimal == 0 {
				t.Fatalf("LP counters empty: %+v", bm.LP)
			}
			if bm.LP.Phase1Pivots+bm.LP.Phase2Pivots != bm.LP.Pivots {
				t.Fatalf("phase split %d + %d does not sum to pivots %d",
					bm.LP.Phase1Pivots, bm.LP.Phase2Pivots, bm.LP.Pivots)
			}
			if tc.wantMaster && (bm.MIP.Solves == 0 || bm.MIP.Nodes == 0 || bm.Decomp.MasterSolves == 0) {
				t.Fatalf("master MIP never observed: mip %+v, decomp %+v", bm.MIP, bm.Decomp)
			}
			if bm.Decomp.Solves != 1 {
				t.Fatalf("Decomp.Solves = %d, want 1", bm.Decomp.Solves)
			}
			if bm.Decomp.Iterations != int64(base.Iterations) {
				t.Fatalf("Decomp.Iterations = %d, result says %d", bm.Decomp.Iterations, base.Iterations)
			}
			if bm.Decomp.ScenarioSolves != int64(base.SubproblemSolves) {
				t.Fatalf("Decomp.ScenarioSolves = %d, result says %d", bm.Decomp.ScenarioSolves, base.SubproblemSolves)
			}
			if bm.Decomp.CutsGenerated == 0 {
				t.Fatalf("decomposition counters empty: %+v", bm.Decomp)
			}
			if bm.Decomp.CutsDeduped > bm.Decomp.CutsGenerated {
				t.Fatalf("more cuts deduped (%d) than generated (%d)", bm.Decomp.CutsDeduped, bm.Decomp.CutsGenerated)
			}
			if bm.Pool.Launches == 0 || bm.Pool.Items == 0 {
				t.Fatalf("pool counters empty: %+v", bm.Pool)
			}
			if bm.LP.SolveNanos == 0 {
				t.Fatalf("LP.SolveNanos not recorded")
			}
			// The per-solve latency distributions observed the run too: one
			// LP-solve observation per started simplex that got past
			// construction, one scenario-solve observation per subproblem
			// work item.
			if lat := bm.Latency.LPSolve; lat.Count == 0 || lat.Sum == 0 || int64(lat.Count) > bm.LP.Solves {
				t.Fatalf("LP latency histogram inconsistent: %+v vs %d solves", lat, bm.LP.Solves)
			}
			if lat := bm.Latency.ScenarioSolve; lat.Count == 0 || int64(lat.Count) < bm.Decomp.ScenarioSolves {
				t.Fatalf("scenario latency histogram inconsistent: %+v vs %d scenario solves",
					lat, bm.Decomp.ScenarioSolves)
			}

			for _, workers := range []int{2, 8} {
				opt.Workers = workers
				got, err := Offline(inst, opt)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !reflect.DeepEqual(got.Report.Metrics.Canonical(), bm.Canonical()) {
					t.Fatalf("workers=%d: canonical metrics differ:\n%s\nsequential:\n%s",
						workers, got.Report.Metrics.Canonical().JSON(), bm.Canonical().JSON())
				}
			}
		})
	}
}

// TestFaultMetricsMatchInjector: on fault-injected runs, the decomposition
// metrics agree exactly with both the SolveReport and the injector's own
// accounting of what it fired.
func TestFaultMetricsMatchInjector(t *testing.T) {
	inst := triangleInstance()
	nq := len(inst.Scenarios)

	t.Run("retries", func(t *testing.T) {
		inj := faultinject.Script(allScenarioScript(nq, faultinject.SingularBasis))
		res, err := Offline(inst, Options{Workers: 2, FaultHook: inj.Hook})
		if err != nil {
			t.Fatal(err)
		}
		m := res.Report.Metrics.Decomp
		if m.ScenarioRetries != int64(len(res.Report.Retried)) {
			t.Fatalf("metrics say %d retries, report lists %d", m.ScenarioRetries, len(res.Report.Retried))
		}
		if m.ScenarioSkips != 0 || len(res.Report.Skipped) != 0 {
			t.Fatalf("single retryable fault must not skip: metrics %d, report %d",
				m.ScenarioSkips, len(res.Report.Skipped))
		}
		// Every fired fault caused exactly one successful retry (a scenario
		// re-solved in a later iteration hits the script again, so this can
		// exceed the scenario count — the injector is the ground truth).
		if fired := inj.Fired()[faultinject.SingularBasis]; int64(fired) != m.ScenarioRetries {
			t.Fatalf("injector fired %d faults, metrics recovered %d", fired, m.ScenarioRetries)
		}
		if m.ScenarioRetries < int64(nq) {
			t.Fatalf("every one of the %d scenarios was faulted, metrics say only %d retries", nq, m.ScenarioRetries)
		}
	})

	t.Run("skips", func(t *testing.T) {
		inj := faultinject.Script(allScenarioScript(nq,
			faultinject.SingularBasis, faultinject.SingularBasis))
		res, err := Offline(inst, Options{Workers: 2, FaultHook: inj.Hook})
		if err != nil {
			t.Fatal(err)
		}
		m := res.Report.Metrics.Decomp
		if m.ScenarioSkips != int64(len(res.Report.Skipped)) {
			t.Fatalf("metrics say %d skips, report lists %d", m.ScenarioSkips, len(res.Report.Skipped))
		}
		if m.ScenarioSkips == 0 {
			t.Fatal("exhausted retries produced no skips; the test is vacuous")
		}
		// Two faults per skipped scenario: the original attempt plus the one
		// retry both hit the script.
		if fired := inj.Fired()[faultinject.SingularBasis]; int64(fired) != 2*m.ScenarioSkips {
			t.Fatalf("injector fired %d faults for %d skips (want 2 per skip)", fired, m.ScenarioSkips)
		}
	})
}
