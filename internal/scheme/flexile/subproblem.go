package flexile

import (
	"context"
	"fmt"
	"math"

	"flexile/internal/lp"
	"flexile/internal/te"
)

// subproblem is the reformulated per-scenario LP (S_q) of §4.2 with
// constraints (17)–(18): the left-hand side is identical for every
// scenario; only right-hand sides change (z_fq − 1 on the α rows, c_e·m_eq
// on the capacity rows). The LP is therefore built once and re-solved with
// mutated row bounds for each (scenario, critical-set) pair — and, more
// importantly, a dual solution of any scenario's LP is dual-feasible for
// every other scenario's, which is what lets one solve produce cuts for
// many scenarios (appendix eq. 22).
//
// Variables: x_kit ≥ 0 for every tunnel (dead tunnels are forced to zero by
// the zeroed capacity of their failed links), l_f ∈ [0,1] for every
// demanded flow, α_k ≥ 0 per class. Objective: Σ_k w_k·α_k.
type subproblem struct {
	inst *te.Instance
	p    *lp.Problem

	xcol     [][][]int // [k][i][t]
	lcol     []int     // per flow id; -1 for zero-demand flows
	acol     []int     // per class
	alphaRow []int     // per flow id; -1 for zero-demand flows
	capRow   []int     // per edge; -1 if no tunnel crosses it

	lpOpts lp.Options
	// batch routes solves through the compiled lp.BatchProblem path: the
	// sparse column structure is compiled once and each solve submits a
	// bounds-only variant instead of rebuilding the columns.
	batch  bool
	bp     *lp.BatchProblem
	solver *lp.BatchSolver
}

// subSolution is the outcome of one subproblem solve.
type subSolution struct {
	optval float64
	// loss[f] is l_fq for every flow (1 for zero-demand/disconnected-and-
	// non-modeled flows is the caller's concern; here zero-demand = 0).
	loss []float64
	// x[k][i][t] is the scenario routing.
	x [][][]float64
	// cut is the Benders cut generated from the dual solution.
	cut *cut
	// basis is the optimal simplex basis, cached by the decomposition so
	// the scenario's next solve warm-starts from it.
	basis *lp.Basis
	// warmStarted reports whether this solve actually started from an
	// installed warm basis (false on cold solves and rejected bases).
	warmStarted bool
}

// cut represents Penalty ≥ C + Σ_f yAlpha[f]·(z_f − 1) + Σ_e capCoef[e]·m_e,
// valid for every scenario thanks to the shared dual space.
type cut struct {
	// yAlpha[f] ≥ 0 is the dual of flow f's α row; zero entries are common.
	yAlpha []float64
	// capCoef[e] = y_e·c_e ≤ 0 is the capacity dual scaled by capacity.
	capCoef []float64
	// C collects all the z/m-independent terms (demand duals and variable
	// bound contributions), computed via strong duality at the native
	// scenario.
	C float64
	// nativeQ is the scenario whose solve produced the cut.
	nativeQ int
}

// value evaluates the cut at a critical-set column and an alive mask.
func (c *cut) value(z func(f int) bool, aliveCap []float64) float64 {
	v := c.C
	for f, y := range c.yAlpha {
		if y == 0 {
			continue
		}
		if z(f) {
			// (z_f − 1) = 0
			continue
		}
		v -= y
	}
	for e, cc := range c.capCoef {
		if cc != 0 {
			v += cc * aliveCap[e]
		}
	}
	return v
}

// newSubproblem builds the LP with the instance's base demands.
func newSubproblem(inst *te.Instance, lpOpts lp.Options) *subproblem {
	return newSubproblemD(inst, nil, lpOpts)
}

// newSubproblemB is newSubproblemD with the compiled-batch toggle: when
// batch is true the subproblem compiles its LP once (lp.Compile) and every
// solve goes through a bounds-only variant, skipping the per-solve column
// rebuild.
func newSubproblemB(inst *te.Instance, demands []float64, lpOpts lp.Options, batch bool) *subproblem {
	sp := newSubproblemD(inst, demands, lpOpts)
	sp.batch = batch
	return sp
}

// newSubproblemD builds the LP with an explicit per-flow demand vector
// (per-scenario traffic matrices, §4.4). When demands is non-nil, the LP is
// scenario-specific and its cuts must not be shared across scenarios.
func newSubproblemD(inst *te.Instance, demands []float64, lpOpts lp.Options) *subproblem {
	demandOf := func(f int) float64 {
		if demands != nil {
			return demands[f]
		}
		return inst.FlowDemand(f)
	}
	sp := &subproblem{inst: inst, p: lp.NewProblem(), lpOpts: lpOpts}
	g := inst.Topo.G
	nf := inst.NumFlows()
	sp.xcol = make([][][]int, len(inst.Classes))
	sp.lcol = make([]int, nf)
	sp.alphaRow = make([]int, nf)
	sp.acol = make([]int, len(inst.Classes))
	sp.capRow = make([]int, g.NumEdges())
	edgeEntries := make([][]lp.Entry, g.NumEdges())

	for k := range inst.Classes {
		sp.xcol[k] = make([][]int, len(inst.Pairs))
		for i := range inst.Pairs {
			sp.xcol[k][i] = make([]int, len(inst.Tunnels[k][i]))
			ub := lp.Inf
			if demandOf(inst.FlowID(k, i)) <= 0 {
				ub = 0 // zero-demand flows must not consume capacity
			}
			for t := range inst.Tunnels[k][i] {
				col := sp.p.AddCol(fmt.Sprintf("x[%d,%d,%d]", k, i, t), 0, ub, 0)
				sp.xcol[k][i][t] = col
				for _, e := range inst.Tunnels[k][i][t].Edges {
					edgeEntries[e] = append(edgeEntries[e], lp.Entry{Col: col, Coef: 1})
				}
			}
		}
	}
	for k, cls := range inst.Classes {
		sp.acol[k] = sp.p.AddCol(fmt.Sprintf("alpha[%d]", k), 0, lp.Inf, cls.Weight)
	}
	for k := range inst.Classes {
		for i := range inst.Pairs {
			f := inst.FlowID(k, i)
			d := demandOf(f)
			if d <= 0 {
				sp.lcol[f] = -1
				sp.alphaRow[f] = -1
				continue
			}
			sp.lcol[f] = sp.p.AddCol(fmt.Sprintf("l[%d]", f), 0, 1, 0)
			// α_k − l_f ≥ z_fq − 1 (RHS mutated per scenario).
			sp.alphaRow[f] = sp.p.AddGE(fmt.Sprintf("a[%d]", f), -1,
				lp.Entry{Col: sp.acol[k], Coef: 1}, lp.Entry{Col: sp.lcol[f], Coef: -1})
			// Demand: Σ_t x + d·l ≥ d (constraint 17 with loss folded in).
			es := make([]lp.Entry, 0, len(sp.xcol[k][i])+1)
			for _, col := range sp.xcol[k][i] {
				es = append(es, lp.Entry{Col: col, Coef: 1})
			}
			es = append(es, lp.Entry{Col: sp.lcol[f], Coef: d})
			sp.p.AddGE(fmt.Sprintf("d[%d]", f), d, es...)
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		sp.capRow[e] = -1
		if len(edgeEntries[e]) > 0 {
			sp.capRow[e] = sp.p.AddLE(fmt.Sprintf("c[%d]", e), g.Edge(e).Capacity, edgeEntries[e]...)
		}
	}
	return sp
}

// solve optimizes (S_q) for one scenario. critical(f) gives z_fq; alive is
// the edge mask m_eq; lossUB, when non-nil, upper-bounds each flow's loss
// (the §4.4 γ generalization); capUse, when non-nil, is per-edge bandwidth
// already claimed by higher-priority classes (sequential design, §4.4).
// Returns the solution and a freshly extracted cut.
func (sp *subproblem) solve(ctx context.Context, q int, critical func(f int) bool, alive []bool, lossUB, capUse []float64) (*subSolution, error) {
	return sp.solveWith(ctx, sp.lpOpts, q, critical, alive, lossUB, capUse)
}

// solveWith is solve with explicit LP options — the retry policy's hook
// for re-solving a failed scenario under hardened settings (Bland's rule,
// a larger pivot budget) without rebuilding the LP.
func (sp *subproblem) solveWith(ctx context.Context, lpOpts lp.Options, q int, critical func(f int) bool, alive []bool, lossUB, capUse []float64) (*subSolution, error) {
	inst := sp.inst
	g := inst.Topo.G
	for f, row := range sp.alphaRow {
		if row < 0 {
			continue
		}
		rhs := -1.0
		if critical(f) {
			rhs = 0
		}
		sp.p.SetRowBounds(row, rhs, lp.Inf)
		ub := 1.0
		if lossUB != nil && lossUB[f] < 1 {
			ub = lossUB[f]
		}
		sp.p.SetColBounds(sp.lcol[f], 0, ub)
	}
	effCap := make([]float64, g.NumEdges())
	for e := 0; e < g.NumEdges(); e++ {
		if sp.capRow[e] < 0 {
			continue
		}
		cap := g.Edge(e).Capacity
		if capUse != nil {
			cap -= capUse[e]
			if cap < 0 {
				cap = 0
			}
		}
		effCap[e] = cap
		if !alive[e] {
			cap = 0
		}
		sp.p.SetRowBounds(sp.capRow[e], -lp.Inf, cap)
	}
	sol, err := sp.solveLP(ctx, lpOpts)
	if err != nil {
		return nil, fmt.Errorf("flexile: subproblem scenario %d: %w", q, err)
	}
	if sol.Status == lp.IterLimit {
		return nil, fmt.Errorf("flexile: subproblem scenario %d: %w", q, lp.ErrIterLimit)
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("flexile: subproblem scenario %d: %v", q, sol.Status)
	}
	out := &subSolution{
		optval: sol.Objective,
		loss:   make([]float64, inst.NumFlows()),
		x:      make([][][]float64, len(inst.Classes)),
	}
	for k := range inst.Classes {
		out.x[k] = make([][]float64, len(inst.Pairs))
		for i := range inst.Pairs {
			xs := make([]float64, len(sp.xcol[k][i]))
			for t, col := range sp.xcol[k][i] {
				xs[t] = sol.X[col]
			}
			out.x[k][i] = xs
		}
	}
	for f, col := range sp.lcol {
		if col >= 0 {
			out.loss[f] = clamp01(sol.X[col])
		}
	}
	// Cut extraction. C is recovered from strong duality at the native
	// scenario: optval = C + Σ_f y_af·(z_f−1) + Σ_e y_e·c_e·m_e.
	ct := &cut{
		yAlpha:  make([]float64, inst.NumFlows()),
		capCoef: make([]float64, g.NumEdges()),
		nativeQ: q,
	}
	zTerm := 0.0
	for f, row := range sp.alphaRow {
		if row < 0 {
			continue
		}
		y := sol.RowDual[row]
		if y < 0 { // α rows are ≥ rows: duals must be ≥ 0 (numerical noise)
			y = 0
		}
		ct.yAlpha[f] = y
		if !critical(f) {
			zTerm -= y // (z_f − 1) = −1
		}
	}
	capTerm := 0.0
	for e := 0; e < g.NumEdges(); e++ {
		if sp.capRow[e] < 0 {
			continue
		}
		y := sol.RowDual[sp.capRow[e]]
		if y > 0 { // capacity rows are ≤ rows: duals must be ≤ 0
			y = 0
		}
		ct.capCoef[e] = y * effCap[e]
		if alive[e] {
			capTerm += ct.capCoef[e]
		}
	}
	ct.C = sol.Objective - zTerm - capTerm
	out.cut = ct
	out.basis = sol.Basis()
	out.warmStarted = sol.WarmStarted
	return out, nil
}

// solveLP runs the subproblem LP through the compiled batch path when
// enabled — the column structure compiles once, and every solve reads the
// mutated bounds as a zero variant, skipping the per-solve column rebuild
// and workspace allocation — or through the plain per-solve path otherwise.
// Results are bit-identical either way (lp.BatchSolver's contract).
func (sp *subproblem) solveLP(ctx context.Context, lpOpts lp.Options) (*lp.Solution, error) {
	if !sp.batch {
		return sp.p.SolveCtx(ctx, lpOpts)
	}
	if sp.solver == nil {
		bp, err := sp.p.Compile()
		if err != nil {
			return nil, err
		}
		sp.bp = bp
		sp.solver = bp.NewSolver()
	}
	return sp.solver.SolveCtx(ctx, lp.Variant{}, lpOpts)
}

func clamp01(v float64) float64 {
	return math.Max(0, math.Min(1, v))
}
