package flexile

import "testing"

// poolCut is a minimal cut type for exercising the pool in isolation.
type poolCut struct {
	id  int
	val float64
}

func newTestPool(age int) *cutPool[poolCut] {
	return newCutPool(age,
		func(c poolCut) uint64 { return uint64(c.id) },
		func(a, b poolCut) bool { return a == b })
}

func TestCutPoolDedup(t *testing.T) {
	cp := newTestPool(-1)
	cp.add(poolCut{1, 1})
	cp.add(poolCut{2, 2})
	cp.add(poolCut{1, 1}) // exact duplicate
	cp.add(poolCut{1, 3}) // hash collision (same id), different content: kept
	if got := len(cp.active()); got != 3 {
		t.Fatalf("active pool has %d cuts, want 3", got)
	}
	if cp.generated != 4 || cp.deduped != 1 {
		t.Fatalf("generated/deduped = %d/%d, want 4/1", cp.generated, cp.deduped)
	}
}

func TestCutPoolAgingRetiresDominated(t *testing.T) {
	cp := newTestPool(2)
	cp.add(poolCut{1, 10}) // always binding
	cp.add(poolCut{2, 1})  // always dominated
	val := func(c poolCut) float64 { return c.val }

	cp.observe(val)
	if len(cp.active()) != 2 {
		t.Fatal("retired before the age threshold")
	}
	cp.observe(val)
	act := cp.active()
	if len(act) != 1 || act[0].id != 1 {
		t.Fatalf("after %d dominated observes, active = %v", 2, act)
	}
	if cp.numRetired != 1 {
		t.Fatalf("numRetired = %d, want 1", cp.numRetired)
	}
}

func TestCutPoolBindingResetsSlack(t *testing.T) {
	cp := newTestPool(2)
	cp.add(poolCut{1, 0})
	cp.add(poolCut{2, 0})
	vals := map[int]float64{1: 10, 2: 1}
	val := func(c poolCut) float64 { return vals[c.id] }
	cp.observe(val)       // cut 2 dominated (streak 1)
	vals[2] = 10.0 - 1e-9 // within slackTol of best: binding
	cp.observe(val)       // streak resets
	vals[2] = 1
	cp.observe(val) // streak 1 again
	if len(cp.active()) != 2 {
		t.Fatal("cut retired although its slack streak was broken by a binding observe")
	}
}

func TestCutPoolReviveOnBinding(t *testing.T) {
	cp := newTestPool(1)
	cp.add(poolCut{1, 0})
	cp.add(poolCut{2, 0})
	vals := map[int]float64{1: 10, 2: 1}
	val := func(c poolCut) float64 { return vals[c.id] }
	cp.observe(val) // cut 2 retired immediately (age 1)
	if len(cp.active()) != 1 {
		t.Fatal("cut not retired at age 1")
	}
	// Cut 2 becomes the strongest bound: one observe revives it and — at
	// age 1 — retires the now-dominated cut 1 in the same pass.
	vals[2] = 20
	cp.observe(val)
	act := cp.active()
	if len(act) != 1 || act[0].id != 2 {
		t.Fatalf("active after swap = %v, want just cut 2", act)
	}
	if cp.numRevived != 1 || cp.numRetired != 2 {
		t.Fatalf("revived/retired = %d/%d, want 1/2", cp.numRevived, cp.numRetired)
	}
}

func TestCutPoolReviveOnRegeneration(t *testing.T) {
	cp := newTestPool(1)
	cp.add(poolCut{1, 0})
	cp.add(poolCut{2, 0})
	val := func(c poolCut) float64 {
		if c.id == 1 {
			return 10
		}
		return 1
	}
	cp.observe(val)
	if len(cp.active()) != 1 {
		t.Fatal("cut not retired at age 1")
	}
	cp.add(poolCut{2, 0}) // a scenario regenerated the retired cut
	if len(cp.active()) != 2 {
		t.Fatal("regenerated retired cut was not revived")
	}
	if cp.deduped != 1 || cp.numRevived != 1 {
		t.Fatalf("deduped/revived = %d/%d, want 1/1", cp.deduped, cp.numRevived)
	}
}

func TestCutPoolAgingDisabled(t *testing.T) {
	cp := newTestPool(-1)
	cp.add(poolCut{1, 10})
	cp.add(poolCut{2, 0})
	for i := 0; i < 50; i++ {
		cp.observe(func(c poolCut) float64 { return c.val })
	}
	if len(cp.active()) != 2 {
		t.Fatal("aging fired although disabled")
	}
}

// TestOfflineCutAgingLongRun: on a long decomposition with an aggressive
// aging horizon, the offline solve stays correct — same quality incumbent
// as the default run — while actually retiring cuts (visible in metrics).
func TestOfflineCutAgingLongRun(t *testing.T) {
	// Scaled demands keep losses — and hence master solves — alive across
	// iterations, which is what gives the aging policy observes to act on.
	inst := sprintInstance(t)
	inst.ScaleDemands(2.5)
	base, err := Offline(inst, Options{Workers: 2, MaxIterations: 8})
	if err != nil {
		t.Fatal(err)
	}
	aged, err := Offline(inst, Options{Workers: 2, MaxIterations: 8, CutAge: 1})
	if err != nil {
		t.Fatal(err)
	}
	best := func(pen []float64) float64 {
		b := pen[0]
		for _, v := range pen[1:] {
			if v < b {
				b = v
			}
		}
		return b
	}
	bp, ap := best(base.IterPenalty), best(aged.IterPenalty)
	// Aging may change the master trajectory; the best incumbent penalty
	// must stay in the same quality band as the default run's.
	if ap > bp+0.05 {
		t.Fatalf("aged run best penalty %v much worse than default %v", ap, bp)
	}
	m := aged.Report.Metrics.Canonical()
	if m.Decomp.CutsRetired == 0 {
		t.Fatal("CutAge=1 over a multi-master run retired nothing; aging is inert")
	}
	t.Logf("retired %d, revived %d of %d generated (best penalty default %v, aged %v)",
		m.Decomp.CutsRetired, m.Decomp.CutsRevived, m.Decomp.CutsGenerated, bp, ap)
}
