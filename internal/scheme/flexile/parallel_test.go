package flexile

import (
	"testing"

	"flexile/internal/failure"
	"flexile/internal/te"
	"flexile/internal/topo"
	"flexile/internal/traffic"
	"flexile/internal/tunnels"
)

// sprintInstance builds a realistic small instance (Sprint, 11 nodes,
// single class, §6 methodology) with enough scenarios to exercise the
// pruning, cut sharing and master machinery across iterations.
func sprintInstance(t *testing.T) *te.Instance {
	t.Helper()
	tp, err := topo.Load("Sprint")
	if err != nil {
		t.Fatal(err)
	}
	inst := te.NewInstance(tp, []te.Class{
		{Name: "single", Beta: 0, Weight: 1, Tunnels: tunnels.SingleClass(3)},
	})
	if err := traffic.ApplyGravity(inst, traffic.GravityOptions{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	probs := failure.WeibullProbs(tp.G, 2, failure.WeibullParams{})
	inst.LinkProbs = probs
	scens := failure.Enumerate(probs, 1e-4)
	if len(scens) > 12 {
		scens = scens[:12]
	}
	inst.Scenarios = scens
	beta := inst.AllFlowsConnectedMass() - 1e-9
	if beta > 0.999 {
		beta = 0.999
	}
	if cov := failure.Coverage(inst.Scenarios); beta > 1-8*(1-cov) {
		beta = 1 - 8*(1-cov)
	}
	if beta < 0.5 {
		beta = 0.5
	}
	inst.Classes[0].Beta = beta
	return inst
}

// TestOfflineDeterministicAcrossWorkers is the contract the parallel solve
// engine promises: the offline result is bit-for-bit identical for every
// worker count — same critical bitmap, same PercLoss, same convergence
// history, same solve count. Run with -race to also exercise the engine's
// memory-safety (the test is the package's race detector workload).
func TestOfflineDeterministicAcrossWorkers(t *testing.T) {
	inst := sprintInstance(t)
	base, err := Offline(inst, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := Offline(inst, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !got.Critical.Equal(base.Critical) {
			t.Fatalf("workers=%d: Critical bitmap differs from sequential run", workers)
		}
		if got.Iterations != base.Iterations || got.SubproblemSolves != base.SubproblemSolves {
			t.Fatalf("workers=%d: trajectory differs: iters %d vs %d, solves %d vs %d",
				workers, got.Iterations, base.Iterations, got.SubproblemSolves, base.SubproblemSolves)
		}
		for k := range base.PercLoss {
			if got.PercLoss[k] != base.PercLoss[k] {
				t.Fatalf("workers=%d: PercLoss[%d] = %v, sequential %v", workers, k, got.PercLoss[k], base.PercLoss[k])
			}
		}
		for it := range base.IterPenalty {
			if got.IterPenalty[it] != base.IterPenalty[it] {
				t.Fatalf("workers=%d: IterPenalty[%d] = %v, sequential %v", workers, it, got.IterPenalty[it], base.IterPenalty[it])
			}
		}
		for q := range base.ScenLossOpt {
			if got.ScenLossOpt[q] != base.ScenLossOpt[q] {
				t.Fatalf("workers=%d: ScenLossOpt[%d] = %v, sequential %v", workers, q, got.ScenLossOpt[q], base.ScenLossOpt[q])
			}
		}
		for f := range base.SubLosses {
			for q := range base.SubLosses[f] {
				if got.SubLosses[f][q] != base.SubLosses[f][q] {
					t.Fatalf("workers=%d: SubLosses[%d][%d] differs", workers, f, q)
				}
			}
		}
	}
}

// TestOfflineDeterministicTriangleGamma covers the γ-variant and
// per-scenario-subproblem paths under parallelism.
func TestOfflineDeterministicTriangleGamma(t *testing.T) {
	inst := triangleInstance()
	base, err := Offline(inst, Options{Gamma: 0.3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Offline(inst, Options{Gamma: 0.3, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Critical.Equal(base.Critical) || got.PercLoss[0] != base.PercLoss[0] {
		t.Fatalf("γ mode: workers=4 diverges: PercLoss %v vs %v", got.PercLoss[0], base.PercLoss[0])
	}
}

// TestScenarioColumnSnapshot pins the column-snapshot cache type: a
// snapshot equals the source column, detects any flip in it, is blind to
// other columns (that is the memory win), and costs O(nf) bytes.
func TestScenarioColumnSnapshot(t *testing.T) {
	cs := NewCriticalSet(70, 9) // flows span >1 uint64 word
	cs.Set(0, 3, true)
	cs.Set(64, 3, true)
	cs.Set(69, 3, true)
	cs.Set(5, 4, true)
	col := cs.CloneScenario(3)
	if col.Flows() != 70 {
		t.Fatalf("Flows() = %d", col.Flows())
	}
	for f := 0; f < 70; f++ {
		if col.Get(f) != cs.Get(f, 3) {
			t.Fatalf("snapshot bit %d differs", f)
		}
	}
	if !col.EqualColumn(cs, 3) {
		t.Fatal("snapshot must equal its source column")
	}
	// A change in another column must not invalidate the snapshot...
	cs.Set(12, 5, true)
	if !col.EqualColumn(cs, 3) {
		t.Fatal("snapshot must ignore other columns")
	}
	// ...but any flip in column 3 must.
	cs.Set(64, 3, false)
	if col.EqualColumn(cs, 3) {
		t.Fatal("snapshot must detect a flip in its column")
	}
	if col.ByteSize() >= cs.ByteSize() {
		t.Fatalf("column snapshot (%dB) should be smaller than the full bitmap (%dB)", col.ByteSize(), cs.ByteSize())
	}
	if col.EqualColumn(NewCriticalSet(3, 9), 3) {
		t.Fatal("mismatched flow dimension must compare unequal")
	}
}
