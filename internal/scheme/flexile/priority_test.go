package flexile

import (
	"testing"

	"flexile/internal/eval"
	"flexile/internal/failure"
	"flexile/internal/te"
	"flexile/internal/topo"
	"flexile/internal/tunnels"
)

func twoClassTriangle() *te.Instance {
	tp := topo.Triangle()
	inst := te.NewInstance(tp, []te.Class{
		{Name: "high", Beta: 0.99, Weight: 1000, Tunnels: tunnels.HighPriority(3)},
		{Name: "low", Beta: 0.99, Weight: 1, Tunnels: tunnels.LowPriority(3, 3)},
	})
	for i := range inst.Pairs {
		inst.Demand[0][i] = 0.3
		inst.Demand[1][i] = 0.5
	}
	inst.LinkProbs = []float64{0.01, 0.01, 0.01}
	inst.Scenarios = failure.Enumerate(inst.LinkProbs, 0)
	return inst
}

// TestSequentialDesignBasics: the sequential variant produces a feasible
// routing, keeps high-priority traffic lossless, and its critical sets
// cover each class's β.
func TestSequentialDesignBasics(t *testing.T) {
	inst := twoClassTriangle()
	s := &SequentialScheme{}
	r, err := s.Route(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckCapacity(inst, 1e-5); err != nil {
		t.Fatal(err)
	}
	losses := r.LossMatrix(inst)
	if hi := eval.PercLoss(inst, losses, 0); hi > 1e-6 {
		t.Fatalf("sequential high-priority PercLoss = %v, want 0", hi)
	}
	off := s.Offline
	for k := range inst.Classes {
		for i := range inst.Pairs {
			if inst.Demand[k][i] <= 0 {
				continue
			}
			f := inst.FlowID(k, i)
			mass := 0.0
			for q, scen := range inst.Scenarios {
				if off.Critical.Get(f, q) {
					mass += scen.Prob
				}
			}
			if mass < inst.Classes[k].Beta-1e-9 {
				t.Fatalf("flow %d critical mass %v below β", f, mass)
			}
		}
	}
}

// TestSequentialPrefersHigh: with a saturating high class, the sequential
// design sacrifices the low class entirely instead of balancing — the
// §4.4 semantics that differ from the default joint design.
func TestSequentialPrefersHigh(t *testing.T) {
	tp := topo.TriangleNoBC()
	inst := te.NewInstance(tp, []te.Class{
		{Name: "high", Beta: 0.9, Weight: 1000, Tunnels: tunnels.HighPriority(3)},
		{Name: "low", Beta: 0.9, Weight: 1, Tunnels: tunnels.LowPriority(3, 3)},
	})
	// High priority wants the whole A-B link; low priority wants it too.
	inst.Demand[0][0] = 1
	inst.Demand[1][0] = 1
	inst.Scenarios = []failure.Scenario{{Prob: 1}}
	s := &SequentialScheme{}
	r, err := s.Route(inst)
	if err != nil {
		t.Fatal(err)
	}
	losses := r.LossMatrix(inst)
	if l := losses[inst.FlowID(0, 0)][0]; l > 1e-6 {
		t.Fatalf("high flow loss %v, want 0", l)
	}
	if l := losses[inst.FlowID(1, 0)][0]; l < 1-1e-6 {
		t.Fatalf("low flow loss %v, want 1 (fully preempted)", l)
	}
}

// TestSequentialMatchesJointOnSingleClass: with one class the sequential
// variant degenerates to the standard design.
func TestSequentialMatchesJointOnSingleClass(t *testing.T) {
	inst := triangleInstance()
	seq := &SequentialScheme{}
	rSeq, err := seq.Route(inst)
	if err != nil {
		t.Fatal(err)
	}
	joint := &Scheme{}
	rJoint, err := joint.Route(inst)
	if err != nil {
		t.Fatal(err)
	}
	lSeq := eval.PercLoss(inst, rSeq.LossMatrix(inst), 0)
	lJoint := eval.PercLoss(inst, rJoint.LossMatrix(inst), 0)
	if lSeq > lJoint+1e-6 || lJoint > lSeq+1e-6 {
		t.Fatalf("sequential %v vs joint %v on single class", lSeq, lJoint)
	}
}
