package flexile

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"time"

	"flexile/internal/eval"
	"flexile/internal/lp"
	"flexile/internal/mip"
	"flexile/internal/obs"
	"flexile/internal/par"
	"flexile/internal/te"
)

// Options tunes Flexile's offline decomposition (§4.2) and online phase.
type Options struct {
	// MaxIterations bounds the decomposition loop; 0 means 5 (the paper's
	// setting).
	MaxIterations int
	// HammingLimit caps how many z bits may flip between master solutions
	// (stabilization, appendix eq. 23); 0 means max(32, bits/16).
	HammingLimit int
	// MasterNodes bounds the branch-and-bound nodes per master solve;
	// 0 means 120 (the master only needs good feasible points, which the
	// warm start and the greedy-cover rounding provide early).
	MasterNodes int
	// SharedCutRounds is how many separation rounds materialize violated
	// shared cuts g^q_{q'} per master solve; 0 means 1, negative disables
	// cut sharing entirely.
	SharedCutRounds int
	// SharedCutLimit caps how many shared-cut rows are added per
	// separation round; 0 means 150.
	SharedCutLimit int
	// CutAge is the cut-pool aging horizon: a pooled Benders cut whose dual
	// bound stays dominated at this many consecutive master incumbents is
	// retired from the master LP, and revived if it becomes binding again
	// (or a scenario regenerates it). 0 means 5 — which the default
	// MaxIterations of 5 (at most 4 master solves) can never reach, so
	// default runs keep their exact historical trajectories — and negative
	// disables aging entirely. Long decompositions (MaxIterations well above
	// the default) are where aging pays, keeping the master LP from growing
	// without bound.
	CutAge int
	// Gamma, when ≥ 0, bounds every connected flow's loss in scenario q to
	// γ + optimal ScenLoss_q (§4.4). Negative disables the bound. Cut
	// sharing is disabled in this mode (scenario LPs stop sharing a dual
	// space once their variable bounds differ).
	Gamma float64
	// ScenFixedUse, when non-nil, is per-scenario per-edge bandwidth
	// already claimed outside this design (sequential multi-class design,
	// §4.4): capacities are reduced accordingly. Disables cut sharing.
	ScenFixedUse [][]float64
	// WarmStart enables basis reuse across the decomposition: each
	// scenario's re-solve starts from its previous optimal basis, and first
	// solves are seeded from the first scenario solved, which cuts simplex
	// pivots severalfold on real topologies. Warm runs are deterministic —
	// bit-identical across worker counts, since the seed basis is fixed
	// before any parallel solve — and reach the same objectives as cold
	// runs within the LP tolerance. They are NOT guaranteed bit-identical
	// to cold runs: on degenerate instances the simplex may stop at a
	// different (equally optimal) basis whose duals differ at FP-noise
	// level, which the master MIP can amplify into a different — equally
	// valid — trajectory. The default (false) therefore solves cold,
	// preserving the exact historical trajectories that experiment goldens
	// pin; turn warm on for throughput (the benchmarks and the CLIs' -warm
	// flag do).
	WarmStart bool
	// NoBatch disables the compiled batched LP path through internal/lp:
	// every subproblem solve rebuilds its sparse columns from the Problem
	// buffers, the pre-batch behavior. The default (false) compiles the
	// shared subproblem structure once per LP instance and re-solves
	// bound-only variants against it. Results are identical by
	// construction; NoBatch exists as the oracle path.
	NoBatch bool
	// Workers is how many goroutines the scenario-parallel hot loops use
	// (per-scenario subproblem solves, the ScenLoss precompute, the
	// shared-cut separation scan). 0 means runtime.NumCPU(); 1 runs every
	// loop inline, exactly the sequential behavior. Results are identical
	// for every worker count — parallelism is a pure wall-clock win.
	Workers int
	// LP tunes all LP solves.
	LP lp.Options
	// Timeout bounds the wall-clock time of the whole offline solve;
	// 0 means unlimited. An expired deadline aborts the decomposition with
	// an error wrapping context.DeadlineExceeded — degraded mode never
	// swallows cancellation.
	Timeout time.Duration
	// Retries is how many times a failed scenario subproblem is re-solved
	// under hardened LP settings (Bland's rule, a larger pivot budget)
	// before the scenario is skipped for the iteration. Only retryable
	// failures — lp.ErrSingularBasis, lp.ErrIterLimit — are retried;
	// panics and infeasibility skip directly. 0 means 1; negative disables
	// retries.
	Retries int
	// FailFast restores the pre-degraded-mode behavior: the first scenario
	// or master failure aborts the whole solve with an error instead of
	// degrading and reporting.
	FailFast bool
	// FaultHook, when non-nil, runs before every scenario subproblem solve
	// with the scenario index and the 0-based attempt number; a non-nil
	// return (or a panic) is treated exactly like a failure of the real
	// solve. It exists for deterministic fault injection in tests
	// (internal/faultinject) and must decide independently of worker
	// identity or timing to preserve cross-worker-count determinism.
	FaultHook func(q, attempt int) error
}

func (o Options) withDefaults(bits int) Options {
	if o.MaxIterations == 0 {
		o.MaxIterations = 5
	}
	if o.HammingLimit == 0 {
		o.HammingLimit = max(32, bits/16)
	}
	if o.MasterNodes == 0 {
		o.MasterNodes = 120
	}
	if o.SharedCutRounds == 0 {
		o.SharedCutRounds = 1
	}
	if o.SharedCutLimit == 0 {
		o.SharedCutLimit = 150
	}
	if o.CutAge == 0 {
		o.CutAge = 5
	}
	if o.Gamma == 0 {
		o.Gamma = -1 // Options{} disables the γ bound
	}
	if o.Retries == 0 {
		o.Retries = 1
	} else if o.Retries < 0 {
		o.Retries = 0
	}
	o.Workers = par.Workers(o.Workers)
	return o
}

// hardenLP derives the retry settings used after a retryable scenario
// failure: Bland's rule from the first pivot (guaranteed anti-cycling) and
// a 4× pivot budget when the caller set an explicit one.
func hardenLP(o lp.Options) lp.Options {
	o.Bland = true
	if o.MaxIters > 0 {
		o.MaxIters *= 4
	}
	return o
}

// isCtxErr reports whether err stems from cancellation or deadline expiry.
// Such errors always abort the solve — they are the caller's intent, not a
// numerical accident to degrade around.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// retryableErr reports whether a scenario failure is worth re-solving
// under hardened settings.
func retryableErr(err error) bool {
	return errors.Is(err, lp.ErrSingularBasis) || errors.Is(err, lp.ErrIterLimit)
}

// ScenarioFault records one scenario subproblem failure event.
type ScenarioFault struct {
	// Scenario is the failing scenario's index.
	Scenario int
	// Iteration is the decomposition iteration the failure occurred in.
	Iteration int
	// Attempts is how many solve attempts were made (1 + retries).
	Attempts int
	// Err is the (final) failure, stringified for stable reporting.
	Err string
}

// SolveReport is the structured degraded-mode account of one offline
// solve: which scenarios needed retries, which were skipped outright (and
// so contributed a conservative loss of 1 until re-solved), which ScenLoss
// precomputes fell back to the trivial bound, and any master-step failures
// that ended the decomposition early with the best incumbent.
type SolveReport struct {
	// Retried lists scenario solves that failed and then recovered under
	// hardened settings; Err is the failure that triggered the retry.
	Retried []ScenarioFault
	// Skipped lists scenario solves that exhausted their attempts; the
	// scenario keeps its previous solution (or a loss of 1 if it has
	// none) and is re-attempted on the next iteration.
	Skipped []ScenarioFault
	// ScenLossFallback lists scenarios whose optimal-ScenLoss precompute
	// failed; their bound falls back to 1 (no constraint in γ mode).
	ScenLossFallback []int
	// MasterFailures lists master-step errors ("iteration N: ..."); a
	// master failure ends the decomposition with the best incumbent.
	MasterFailures []string
	// Metrics is the solve's observability snapshot: every LP/MIP/pool/
	// decomposition counter accumulated during this offline solve. Its
	// Canonical() projection is bit-identical across worker counts.
	Metrics obs.SolveMetrics
}

// Degraded reports whether any fault was recorded.
func (r *SolveReport) Degraded() bool {
	return len(r.Retried) > 0 || len(r.Skipped) > 0 ||
		len(r.ScenLossFallback) > 0 || len(r.MasterFailures) > 0
}

// OfflineResult is the output of the offline phase: which scenarios are
// critical for each flow, the achieved per-class PercLoss, and per-iteration
// convergence history.
type OfflineResult struct {
	// Critical is the flow×scenario bitmap of critical scenarios.
	Critical *CriticalSet
	// PercLoss[k] is the realized β_k-percentile loss of class k under the
	// final subproblem routings (post-analysis).
	PercLoss []float64
	// ScenLossOpt[q] is the optimal ScenLoss of scenario q over connected
	// flows (used by the γ generalization and by loss-penalty analyses).
	ScenLossOpt []float64
	// SubLosses[f][q] are the flow losses from the final subproblem
	// routings.
	SubLosses [][]float64
	// IterPercLoss[it][k] is the per-class PercLoss after iteration it.
	IterPercLoss [][]float64
	// IterPenalty[it] is Σ_k w_k·PercLoss_k after iteration it.
	IterPenalty []float64
	// Iterations is the number of decomposition iterations run.
	Iterations int
	// SubproblemSolves counts how many scenario LPs were actually solved
	// (pruning keeps this well below iterations × scenarios).
	SubproblemSolves int
	// Elapsed is the wall-clock offline time.
	Elapsed time.Duration
	// Report is the degraded-mode account: retried and skipped scenarios,
	// ScenLoss fallbacks, master failures. Report.Degraded() is false for
	// a clean solve.
	Report SolveReport
}

// Offline runs Flexile's decomposition: identify the critical scenarios of
// every flow so that, in each class, scenarios covering probability β_k
// give each flow loss at most PercLoss_k, minimizing Σ_k w_k·PercLoss_k.
func Offline(inst *te.Instance, opt Options) (*OfflineResult, error) {
	return OfflineCtx(context.Background(), inst, opt)
}

// OfflineCtx is Offline under a context. Cancellation (or Options.Timeout,
// whichever expires first) aborts the decomposition — including any LP solve
// in flight — with an error wrapping the context error. All other failures
// go through the degraded-mode policy: retry retryable scenario failures
// under hardened settings, then skip the scenario for the iteration, and
// record everything in the result's SolveReport; only Options.FailFast
// restores abort-on-first-failure. A nil ctx is context.Background().
func OfflineCtx(ctx context.Context, inst *te.Instance, opt Options) (*OfflineResult, error) {
	start := time.Now()
	nf, nq := inst.NumFlows(), len(inst.Scenarios)
	opt = opt.withDefaults(nf * nq)
	if nq == 0 {
		return nil, fmt.Errorf("flexile: instance has no scenarios")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Timeout)
		defer cancel()
	}
	// Every solve below this point reports into a per-solve child collector
	// (its snapshot becomes SolveReport.Metrics); adds roll up into whatever
	// collector the caller installed (the CLIs' process-global one).
	col := obs.NewChild(obs.From(ctx))
	ctx = obs.With(ctx, col)

	// Connectivity of every flow in every scenario: z_fq is fixed to 0 for
	// disconnected flows (§4.2 warm start) and those bits never become
	// master variables.
	connected := make([][]bool, nf)
	for k := range inst.Classes {
		for i := range inst.Pairs {
			f := inst.FlowID(k, i)
			connected[f] = make([]bool, nq)
			for q, s := range inst.Scenarios {
				connected[f][q] = inst.FlowConnected(k, i, s)
			}
		}
	}
	// Coverage feasibility: every demanded flow must be connected in
	// scenarios totalling at least β_k.
	for k := range inst.Classes {
		for i := range inst.Pairs {
			if inst.Demand[k][i] <= 0 {
				continue
			}
			f := inst.FlowID(k, i)
			mass := 0.0
			for q, s := range inst.Scenarios {
				if connected[f][q] {
					mass += s.Prob
				}
			}
			if mass < inst.Classes[k].Beta-1e-9 {
				return nil, fmt.Errorf("flexile: flow (%s,%d-%d) connected only %.6f of the time, below β=%v; lower the class target",
					inst.Classes[k].Name, inst.Pairs[i][0], inst.Pairs[i][1], mass, inst.Classes[k].Beta)
			}
		}
	}

	// Warm start (Proposition 1): critical wherever connected.
	z := NewCriticalSet(nf, nq)
	for f := 0; f < nf; f++ {
		for q := 0; q < nq; q++ {
			if connected[f][q] && inst.FlowDemand(f) > 0 {
				z.Set(f, q, true)
			}
		}
	}

	var report SolveReport

	// Per-scenario optimal ScenLoss over connected flows (for γ and for
	// reporting). Each solve builds its own LP, so the scenarios fan out
	// across the worker pool; results land at index q regardless of order.
	// A failed precompute degrades to the trivial bound ScenLoss = 1
	// (which in γ mode relaxes the scenario's loss cap to no constraint)
	// instead of aborting the whole solve.
	scenLossOpt := make([]float64, nq)
	endPre := col.Span("scenloss-precompute", 0, "scenarios", nq)
	// Warm mode compiles the max-concurrent-flow structure once
	// (te.ScaleBatch) and solves every scenario as a bound-only variant
	// warm-started from a shared seed basis. The seed comes from scenario 0
	// solved serially before the fan-out, so the seed — and with it every
	// warm trajectory — is identical for every worker count. Values agree
	// with the cold per-scenario builder to solver tolerance; the cold path
	// stays the default oracle. Per-scenario traffic matrices and fixed-use
	// capacities change LP coefficients, which variants cannot express, so
	// those instances always precompute cold.
	warmPre := opt.WarmStart && !opt.NoBatch && inst.ScenDemand == nil && opt.ScenFixedUse == nil
	var (
		preBatch   *te.ScaleBatch
		preSeed    *lp.Basis
		preSolvers []*te.ScaleSolver
	)
	if warmPre {
		if pb, err := te.NewScaleBatch(inst); err == nil {
			if zScale, basis, err := pb.NewSolver().Solve(ctx, inst.Scenarios[0], opt.LP); err == nil {
				preBatch = pb
				preSeed = basis
				scenLossOpt[0] = math.Max(0, 1-math.Min(1, zScale))
				preSolvers = make([]*te.ScaleSolver, opt.Workers)
			} else if isCtxErr(err) {
				return nil, fmt.Errorf("flexile: offline solve canceled: %w", err)
			}
			// Any other seed failure: fall back to the cold builder below;
			// warm must never be less robust than cold.
		}
	}
	preErrs := par.Collect(ctx, opt.Workers, nq, func(worker, q int) error {
		defer col.Span("scenloss", int64(worker)+1, "scenario", q)()
		if preBatch != nil {
			if q == 0 {
				return nil // solved serially as the seed
			}
			if preSolvers[worker] == nil {
				preSolvers[worker] = preBatch.NewSolver()
			}
			lo := opt.LP
			lo.StartBasis = preSeed
			zScale, _, err := preSolvers[worker].Solve(ctx, inst.Scenarios[q], lo)
			if err == nil {
				scenLossOpt[q] = math.Max(0, 1-math.Min(1, zScale))
				return nil
			}
			if isCtxErr(err) {
				return err
			}
			// Retry through the cold builder before degrading.
		}
		var capUse []float64
		if opt.ScenFixedUse != nil {
			capUse = opt.ScenFixedUse[q]
		}
		zScale, _, _, err := te.MaxConcurrentScaleCtx(ctx, inst, inst.Scenarios[q], nil, inst.ScenDemandVector(q), capUse)
		if err != nil {
			return err
		}
		scenLossOpt[q] = math.Max(0, 1-math.Min(1, zScale))
		return nil
	})
	endPre()
	for q, err := range preErrs {
		if err == nil {
			continue
		}
		if isCtxErr(err) {
			return nil, fmt.Errorf("flexile: offline solve canceled: %w", err)
		}
		if opt.FailFast {
			return nil, fmt.Errorf("flexile: scenario %d loss precompute: %w", q, err)
		}
		scenLossOpt[q] = 1
		report.ScenLossFallback = append(report.ScenLossFallback, q)
	}
	var lossUB [][]float64 // [q][f], only for γ mode
	if opt.Gamma >= 0 {
		lossUB = make([][]float64, nq)
		for q := range inst.Scenarios {
			ub := make([]float64, nf)
			for f := 0; f < nf; f++ {
				if connected[f][q] {
					ub[f] = math.Min(1, opt.Gamma+scenLossOpt[q])
				} else {
					ub[f] = 1
				}
			}
			lossUB[q] = ub
		}
	}
	// Cut sharing requires every scenario's subproblem to differ only in
	// its right-hand side — per-scenario traffic matrices and the γ bound
	// both break that.
	shareCuts := opt.SharedCutRounds >= 0 && opt.Gamma < 0 && inst.ScenDemand == nil && opt.ScenFixedUse == nil

	// The subproblem LP mutates row bounds in place on every solve, so
	// concurrent scenario solves need distinct instances: one lazily-built
	// LP per worker (a worker id maps to a single goroutine at a time).
	// Per-scenario-demand subproblems are keyed by scenario and only ever
	// used by the one worker holding that scenario, so a mutex around the
	// map lookup suffices.
	sps := make([]*subproblem, opt.Workers)
	var spByQMu sync.Mutex
	spByQ := make(map[int]*subproblem)
	newSub := func(demands []float64) *subproblem {
		return newSubproblemB(inst, demands, opt.LP, !opt.NoBatch)
	}
	solveSub := func(worker, q int, crit func(int) bool, alive []bool, ub []float64, lpOpts lp.Options) (*subSolution, error) {
		var capUse []float64
		if opt.ScenFixedUse != nil {
			capUse = opt.ScenFixedUse[q]
		}
		if dv := inst.ScenDemandVector(q); dv != nil {
			spByQMu.Lock()
			sq, ok := spByQ[q]
			if !ok {
				sq = newSub(dv)
				spByQ[q] = sq
			}
			spByQMu.Unlock()
			return sq.solveWith(ctx, lpOpts, q, crit, alive, ub, capUse)
		}
		if sps[worker] == nil {
			sps[worker] = newSub(nil)
		}
		return sps[worker].solveWith(ctx, lpOpts, q, crit, alive, ub, capUse)
	}
	// solveSubAttempts wraps one scenario solve in the retry policy: the
	// fault hook (if any) and the real solve run per attempt; a retryable
	// failure (singular basis, iteration limit) earns a re-solve under
	// hardened settings; anything else — and exhausted retries — fails the
	// item. firstErr preserves the failure that triggered a successful
	// retry so the report can say why. All decisions depend only on the
	// scenario and the attempt number, never on the worker id, so faulted
	// runs stay deterministic across worker counts.
	//
	// start is the scenario's warm basis (nil = cold). Only attempt 0 uses
	// it: a failed warm solve always retries cold, so a corrupt or merely
	// unlucky cached basis can degrade one attempt but never wedge a
	// scenario, and the cache itself is only refreshed from successful
	// solves.
	solveSubAttempts := func(worker, q int, crit func(int) bool, alive []bool, ub []float64, start *lp.Basis) (*subSolution, int, error, error) {
		var firstErr error
		for attempt := 0; ; attempt++ {
			var sol *subSolution
			var err error
			if opt.FaultHook != nil {
				err = opt.FaultHook(q, attempt)
			}
			if err == nil {
				lpOpts := opt.LP
				if attempt == 0 {
					lpOpts.StartBasis = start
				} else {
					lpOpts = hardenLP(lpOpts)
					lpOpts.StartBasis = nil
				}
				sol, err = solveSub(worker, q, crit, alive, ub, lpOpts)
			}
			if err == nil {
				return sol, attempt + 1, firstErr, nil
			}
			if firstErr == nil {
				firstErr = err
			}
			if isCtxErr(err) || !retryableErr(err) || attempt >= opt.Retries {
				return nil, attempt + 1, firstErr, err
			}
		}
	}
	aliveMask := make([][]bool, nq)
	aliveCap := make([][]float64, nq) // m_eq ∈ {0,1} per edge, for cut eval
	g := inst.Topo.G
	for q, s := range inst.Scenarios {
		aliveMask[q] = s.AliveMask(g.NumEdges())
		ac := make([]float64, g.NumEdges())
		for e := range ac {
			if aliveMask[q][e] {
				ac[e] = 1
			}
		}
		aliveCap[q] = ac
	}

	res := &OfflineResult{
		Critical:    z,
		ScenLossOpt: scenLossOpt,
	}
	type cache struct {
		col  *ScenarioColumn // snapshot of scenario q's column when last solved
		sol  *subSolution
		perf bool // perfect scenario: all connected flows lossless
		// basis is the scenario's last optimal basis; its next solve
		// warm-starts from it. Only refreshed on success, so a failed
		// (or faulted) solve can never poison the cache.
		basis *lp.Basis
	}
	caches := make([]cache, nq)
	// seedBasis warm-starts scenarios that have never been solved: the
	// subproblem LPs differ only in row bounds, so the first scenario's
	// optimal basis is a near-optimal start for every other one. It is
	// fixed after the first solve of the run, so what each scenario's
	// solve sees is independent of worker count and scheduling. Cross-
	// scenario seeding is skipped under per-scenario traffic matrices
	// (the LPs then differ in shape and demands, not just bounds).
	var seedBasis *lp.Basis
	seedOK := opt.WarmStart && inst.ScenDemand == nil
	// The cut pool dedups regenerated cuts and ages dominated ones out of
	// the master (see cutpool.go); appends happen in ascending scenario
	// order, so the surviving pool is identical for every worker count.
	pool := newCutPool(opt.CutAge, cutKey, cutEqual)
	losses := make([][]float64, nf)
	for f := range losses {
		losses[f] = make([]float64, nq)
	}

	bestPenalty := math.Inf(1)
	var bestZ *CriticalSet
	var bestLosses [][]float64
	var bestPercLoss []float64

	for iter := 0; iter < opt.MaxIterations; iter++ {
		// Scenarios surviving the pruning rules this iteration. The solves
		// are independent by construction (z is read-only while they run),
		// so they fan out across the worker pool; collecting solutions by
		// index and appending cuts in ascending scenario order afterwards
		// keeps the cut pool — and hence the whole trajectory — bit-for-bit
		// identical to the sequential run.
		var pending []int
		for q := range inst.Scenarios {
			c := &caches[q]
			if c.perf {
				continue // pruned: scenario supports every connected flow losslessly
			}
			if c.col != nil && c.col.EqualColumn(z, q) {
				continue // pruned: critical set unchanged since last solve
			}
			pending = append(pending, q)
		}
		sols := make([]*subSolution, len(pending))
		attempts := make([]int, len(pending))
		retriedFrom := make([]error, len(pending))
		solveOne := func(worker, j int) error {
			q := pending[j]
			defer col.Span("scenario-solve", int64(worker)+1, "scenario", q, "iteration", iter)()
			defer col.ObserveSince(obs.LatScenarioSolve, time.Now())
			var ub []float64
			if lossUB != nil {
				ub = lossUB[q]
			}
			var startB *lp.Basis
			if opt.WarmStart {
				startB = caches[q].basis
				if startB == nil {
					startB = seedBasis
				}
			}
			var sol *subSolution
			var att int
			var first, err error
			// Label the CPU samples of this scenario's solve so profiles
			// attribute time to (scenario, iteration).
			pprof.Do(ctx, pprof.Labels("solve", "scenario", "scenario", strconv.Itoa(q), "iteration", strconv.Itoa(iter)), func(context.Context) {
				sol, att, first, err = solveSubAttempts(worker, q, func(f int) bool { return z.Get(f, q) }, aliveMask[q], ub, startB)
			})
			attempts[j] = att
			if err != nil {
				return err
			}
			sols[j] = sol
			retriedFrom[j] = first
			return nil
		}
		endBatch := col.Span("iteration", 0, "iter", iter, "pending", len(pending))
		itemErrs := make([]error, len(pending))
		first := 0
		if seedOK && seedBasis == nil && len(pending) > 0 {
			// Solve the first pending scenario on its own (still through the
			// pool, for panic isolation) so its optimal basis can seed every
			// other scenario's first solve. The seed is fixed before any
			// parallel solve starts, so the basis each scenario sees does not
			// depend on worker count or scheduling.
			itemErrs[0] = par.Collect(ctx, 1, 1, func(worker, _ int) error { return solveOne(worker, 0) })[0]
			if sols[0] != nil {
				seedBasis = sols[0].basis
			}
			first = 1
		}
		for j, err := range par.Collect(ctx, opt.Workers, len(pending)-first, func(worker, j int) error { return solveOne(worker, j+first) }) {
			itemErrs[j+first] = err
		}
		endBatch()
		// Classify failures in ascending scenario order (deterministic for
		// any worker count): cancellation aborts, everything else degrades
		// — the scenario keeps its previous cached solution (or, having
		// none, contributes the conservative loss of 1 below) and, since
		// its cached column is not refreshed, is re-attempted next
		// iteration.
		for j, q := range pending {
			err := itemErrs[j]
			if err == nil {
				if retriedFrom[j] != nil {
					report.Retried = append(report.Retried, ScenarioFault{
						Scenario: q, Iteration: iter, Attempts: attempts[j], Err: retriedFrom[j].Error(),
					})
				}
				continue
			}
			if isCtxErr(err) {
				return nil, fmt.Errorf("flexile: offline solve canceled: %w", err)
			}
			if opt.FailFast {
				return nil, err
			}
			// A recovered panic carries attempt count 0 in attempts[j] only
			// if it fired before the store; report at least one attempt.
			att := attempts[j]
			if att == 0 {
				att = 1
			}
			report.Skipped = append(report.Skipped, ScenarioFault{
				Scenario: q, Iteration: iter, Attempts: att, Err: err.Error(),
			})
		}
		for j, q := range pending {
			sol := sols[j]
			if sol == nil {
				continue // skipped this iteration
			}
			c := &caches[q]
			res.SubproblemSolves++
			c.sol = sol
			c.col = z.CloneScenario(q)
			c.basis = sol.basis
			pool.add(sol.cut)
			// A scenario is perfect when, with every connected flow marked
			// critical (the warm-start state), the optimum is zero.
			if iter == 0 && sol.optval <= 1e-9 {
				c.perf = true
			}
		}
		// Assemble the loss matrix from the cached subproblem solutions.
		for q := range inst.Scenarios {
			c := &caches[q]
			for f := 0; f < nf; f++ {
				switch {
				case inst.FlowDemand(f) <= 0:
					losses[f][q] = 0
				case c.perf:
					if connected[f][q] {
						losses[f][q] = 0
					} else {
						losses[f][q] = 1
					}
				case c.sol != nil:
					if connected[f][q] {
						losses[f][q] = c.sol.loss[f]
					} else {
						losses[f][q] = 1
					}
				default:
					losses[f][q] = 1
				}
			}
		}
		percs := eval.PercLossAll(inst, losses)
		penalty := 0.0
		for k, pl := range percs {
			penalty += inst.Classes[k].Weight * pl
		}
		res.IterPercLoss = append(res.IterPercLoss, percs)
		res.IterPenalty = append(res.IterPenalty, penalty)
		res.Iterations = iter + 1
		if penalty < bestPenalty-1e-12 {
			bestPenalty = penalty
			bestZ = z.Clone()
			bestLosses = cloneMatrix(losses)
			bestPercLoss = append([]float64(nil), percs...)
		}
		if penalty <= 1e-9 || iter == opt.MaxIterations-1 {
			break
		}
		// Master step: propose new critical scenarios. A master failure is
		// not fatal in degraded mode: the decomposition ends early and the
		// best incumbent found so far is returned.
		var nz *CriticalSet
		var err error
		cuts := pool.active()
		endMaster := col.Span("master-solve", 0, "iteration", iter, "cuts", len(cuts))
		pprof.Do(ctx, pprof.Labels("solve", "master", "iteration", strconv.Itoa(iter)), func(context.Context) {
			nz, err = solveMaster(ctx, inst, connected, cuts, z, aliveCap, opt, shareCuts)
		})
		endMaster()
		if err != nil {
			if isCtxErr(err) {
				return nil, fmt.Errorf("flexile: offline solve canceled: %w", err)
			}
			if opt.FailFast {
				return nil, err
			}
			report.MasterFailures = append(report.MasterFailures, fmt.Sprintf("iteration %d: %v", iter, err))
			break
		}
		if nz.Equal(z) {
			break // converged: master repeats the proposal
		}
		z = nz
		res.Critical = z
		// Age the pool at the new incumbent: each cut's dual bound is
		// evaluated at z in its native scenario; cuts dominated for CutAge
		// consecutive incumbents leave the master until they bind again.
		pool.observe(func(ct *cut) float64 {
			return ct.value(func(f int) bool { return z.Get(f, ct.nativeQ) }, aliveCap[ct.nativeQ])
		})
	}

	res.Critical = bestZ
	res.SubLosses = bestLosses
	res.PercLoss = bestPercLoss
	res.Elapsed = time.Since(start)
	col.AddDecomp(obs.DecompMetrics{
		Solves:            1,
		Iterations:        int64(res.Iterations),
		ScenarioSolves:    int64(res.SubproblemSolves),
		ScenarioRetries:   int64(len(report.Retried)),
		ScenarioSkips:     int64(len(report.Skipped)),
		ScenLossFallbacks: int64(len(report.ScenLossFallback)),
		MasterFailures:    int64(len(report.MasterFailures)),
		CutsGenerated:     pool.generated,
		CutsDeduped:       pool.deduped,
		CutsRetired:       pool.numRetired,
		CutsRevived:       pool.numRevived,
	})
	report.Metrics = col.Snapshot()
	res.Report = report
	return res, nil
}

func cloneMatrix(m [][]float64) [][]float64 {
	out := make([][]float64, len(m))
	for i := range m {
		out[i] = append([]float64(nil), m[i]...)
	}
	return out
}

// solveMaster builds and solves the master MIP (M): minimize Penalty
// subject to per-flow coverage (3), the pooled Benders cuts (19), and the
// hamming-distance stabilization (23), with z binary.
func solveMaster(ctx context.Context, inst *te.Instance, connected [][]bool, cuts []*cut, zPrev *CriticalSet, aliveCap [][]float64, opt Options, shareCuts bool) (*CriticalSet, error) {
	mcol := obs.From(ctx)
	var mm obs.DecompMetrics
	defer func() { mcol.AddDecomp(mm) }()
	nf, nq := inst.NumFlows(), len(inst.Scenarios)
	p := lp.NewProblem()
	pen := p.AddCol("penalty", 0, lp.Inf, 1)

	// z columns exist only for (connected, demanded) combinations.
	zcol := make([][]int, nf)
	var binaries []int
	var binFlow, binScen []int // parallel metadata for each binary
	for f := 0; f < nf; f++ {
		zcol[f] = make([]int, nq)
		for q := 0; q < nq; q++ {
			zcol[f][q] = -1
		}
		if inst.FlowDemand(f) <= 0 {
			continue
		}
		for q := 0; q < nq; q++ {
			if !connected[f][q] {
				continue
			}
			col := p.AddCol(fmt.Sprintf("z[%d,%d]", f, q), 0, 1, 0)
			zcol[f][q] = col
			binaries = append(binaries, col)
			binFlow = append(binFlow, f)
			binScen = append(binScen, q)
		}
	}
	// Coverage rows (3).
	for k := range inst.Classes {
		for i := range inst.Pairs {
			if inst.Demand[k][i] <= 0 {
				continue
			}
			f := inst.FlowID(k, i)
			var es []lp.Entry
			for q, s := range inst.Scenarios {
				if zcol[f][q] >= 0 {
					es = append(es, lp.Entry{Col: zcol[f][q], Coef: s.Prob})
				}
			}
			p.AddGE(fmt.Sprintf("cov[%d]", f), inst.Classes[k].Beta-1e-9, es...)
		}
	}
	// Hamming stabilization (23) against zPrev.
	{
		var es []lp.Entry
		base := 0.0
		for b, col := range binaries {
			if zPrev.Get(binFlow[b], binScen[b]) {
				es = append(es, lp.Entry{Col: col, Coef: -1})
				base++
			} else {
				es = append(es, lp.Entry{Col: col, Coef: 1})
			}
		}
		p.AddLE("hamming", float64(opt.HammingLimit)-base, es...)
	}
	// Cut rows. Native cuts always; shared cuts via separation below.
	addCutRow := func(ct *cut, q int) {
		es := []lp.Entry{{Col: pen, Coef: 1}}
		rhs := ct.C
		for f, y := range ct.yAlpha {
			if y == 0 {
				continue
			}
			if zcol[f][q] >= 0 {
				es = append(es, lp.Entry{Col: zcol[f][q], Coef: -y})
				rhs -= y
			} else {
				rhs -= y // z fixed at 0 → contributes −y
			}
		}
		for e, cc := range ct.capCoef {
			if cc != 0 && aliveCap[q][e] > 0 {
				rhs += cc * aliveCap[q][e]
			}
		}
		p.AddGE(fmt.Sprintf("cut[%d@%d]", ct.nativeQ, q), rhs, es...)
	}
	for _, ct := range cuts {
		addCutRow(ct, ct.nativeQ)
	}

	// Rounding heuristic for the MIP: per flow, greedily pick the
	// highest-z̃ scenarios until β is covered.
	groups := map[int][]int{}
	weights := make([]float64, len(binaries))
	for b := range binaries {
		groups[binFlow[b]] = append(groups[binFlow[b]], b)
		weights[b] = inst.Scenarios[binScen[b]].Prob
	}
	var groupList [][]int
	var targets []float64
	for f := 0; f < nf; f++ {
		if g, ok := groups[f]; ok {
			groupList = append(groupList, g)
			k, _ := inst.FlowOf(f)
			targets = append(targets, inst.Classes[k].Beta)
		}
	}
	// The greedy-cover rounding is strong but each invocation costs an LP
	// solve inside the MIP; cap how often it runs per master solve.
	baseHeuristic := mip.RoundGreedyCover(groupList, weights, targets)
	heurCalls := 0
	heuristic := func(frac []float64) []float64 {
		if heurCalls >= 3 {
			return nil
		}
		heurCalls++
		return baseHeuristic(frac)
	}

	// Cut-guided greedy descent: starting from zPrev, repeatedly find the
	// binding cut (the scenario whose dual bound dominates the penalty)
	// and un-mark the critical flow with the largest dual there, as long
	// as the flow's remaining critical mass still covers β and the
	// hamming budget allows. This is exactly Flexile's core move — let a
	// flow off the hook in a bad scenario and cover its percentile
	// elsewhere — and it gives the MIP a strong incumbent that plain
	// branching rarely finds within its node budget.
	descent := zPrev.Clone()
	{
		spare := make([]float64, nf)
		for f := 0; f < nf; f++ {
			if inst.FlowDemand(f) <= 0 {
				continue
			}
			k, _ := inst.FlowOf(f)
			mass := 0.0
			for q, s := range inst.Scenarios {
				if descent.Get(f, q) {
					mass += s.Prob
				}
			}
			spare[f] = mass - inst.Classes[k].Beta
		}
		flips := 0
		for flips < opt.HammingLimit {
			// Binding cut at the current descent point.
			bestVal := 0.0
			var bestCut *cut
			for _, ct := range cuts {
				v := ct.value(func(f int) bool { return descent.Get(f, ct.nativeQ) }, aliveCap[ct.nativeQ])
				if v > bestVal {
					bestVal, bestCut = v, ct
				}
			}
			if bestCut == nil || bestVal <= 1e-9 {
				break
			}
			q := bestCut.nativeQ
			prob := inst.Scenarios[q].Prob
			cand, candY := -1, 0.0
			for f, y := range bestCut.yAlpha {
				if y > candY && descent.Get(f, q) && spare[f] >= prob-1e-12 {
					cand, candY = f, y
				}
			}
			if cand < 0 {
				break // no flow can be released without breaking coverage
			}
			descent.Set(cand, q, false)
			spare[cand] -= prob
			flips++
		}
	}

	warm := make([]float64, len(binaries))
	for b := range binaries {
		if descent.Get(binFlow[b], binScen[b]) {
			warm[b] = 1
		}
	}

	solveMIP := func() (*mip.Solution, error) {
		mm.MasterSolves++
		return mip.SolveCtx(ctx, &mip.Problem{LP: p, Binary: binaries}, mip.Options{
			MaxNodes:   opt.MasterNodes,
			RelGap:     1e-4,
			LP:         opt.LP,
			Heuristic:  heuristic,
			WarmBinary: warm,
		})
	}
	sol, err := solveMIP()
	if err != nil {
		return nil, err
	}
	if sol.Status == mip.Infeasible || sol.Status == mip.Unbounded {
		return nil, fmt.Errorf("flexile: master problem %v", sol.Status)
	}
	// Separation rounds: materialize the most violated shared cuts
	// g^{q0}_{q'} at the incumbent and re-solve.
	if shareCuts {
		type viol struct {
			ct *cut
			q  int
			v  float64
		}
		for round := 0; round < opt.SharedCutRounds; round++ {
			// The cuts × nq scan only reads the incumbent, so it shards
			// across the worker pool by cut; flattening the per-cut hits in
			// cut order keeps the violated list — and the sort below —
			// independent of the worker count.
			penVal := sol.X[pen]
			perCut := make([][]viol, len(cuts))
			for _, serr := range par.Collect(ctx, opt.Workers, len(cuts), func(_, ci int) error {
				ct := cuts[ci]
				var hits []viol
				for q := 0; q < nq; q++ {
					if q == ct.nativeQ {
						continue
					}
					v := ct.value(func(f int) bool {
						c := zcol[f][q]
						return c >= 0 && sol.X[c] > 0.5
					}, aliveCap[q])
					if v > penVal+1e-7 {
						hits = append(hits, viol{ct, q, v - penVal})
					}
				}
				perCut[ci] = hits
				return nil
			}) {
				if serr != nil {
					return nil, serr
				}
			}
			var violated []viol
			for _, hits := range perCut {
				violated = append(violated, hits...)
			}
			if len(violated) == 0 {
				break
			}
			sort.Slice(violated, func(a, b int) bool { return violated[a].v > violated[b].v })
			if len(violated) > opt.SharedCutLimit {
				violated = violated[:opt.SharedCutLimit]
			}
			mm.SharedCutRows += int64(len(violated))
			for _, vv := range violated {
				addCutRow(vv.ct, vv.q)
			}
			sol, err = solveMIP()
			if err != nil {
				return nil, err
			}
			if sol.Status == mip.Infeasible || sol.Status == mip.Unbounded {
				return nil, fmt.Errorf("flexile: master problem %v after separation", sol.Status)
			}
		}
	}
	nz := NewCriticalSet(nf, nq)
	for b, col := range binaries {
		if sol.X[col] > 0.5 {
			nz.Set(binFlow[b], binScen[b], true)
		}
	}
	return nz, nil
}
