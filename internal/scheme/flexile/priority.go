package flexile

import (
	"fmt"

	"flexile/internal/te"
)

// SequentialDesign implements §4.4's "explicit priority with multiple
// traffic classes": when the PercLoss of low-priority traffic is
// subordinate even to sending *non-critical* high-priority traffic, the
// design proceeds strictly class by class —
//
//  1. design class k's critical scenarios considering only its own
//     traffic, on the capacity left over by higher classes;
//  2. in every scenario, push as much class-k traffic as possible
//     (critical promises first, then max-min residual within the class);
//  3. subtract class k's per-scenario usage from the capacity the next
//     class sees.
//
// It returns the merged offline result (critical sets and per-class
// PercLoss from the sequential subproblems) and the complete routing the
// sequential allocation produced.
func SequentialDesign(inst *te.Instance, opt Options) (*OfflineResult, *te.Routing, error) {
	nq := len(inst.Scenarios)
	if nq == 0 {
		return nil, nil, fmt.Errorf("flexile: instance has no scenarios")
	}
	g := inst.Topo.G
	merged := &OfflineResult{
		Critical:    NewCriticalSet(inst.NumFlows(), nq),
		PercLoss:    make([]float64, len(inst.Classes)),
		ScenLossOpt: make([]float64, nq),
		SubLosses:   make([][]float64, inst.NumFlows()),
	}
	for f := range merged.SubLosses {
		merged.SubLosses[f] = make([]float64, nq)
	}
	routing := te.NewRouting(inst)

	// Per-scenario capacity already claimed by higher classes.
	fixedUse := make([][]float64, nq)
	for q := range fixedUse {
		fixedUse[q] = make([]float64, g.NumEdges())
	}

	for k := range inst.Classes {
		// Class-k-only view: zero out every other class's demand.
		view := inst.Clone()
		for kk := range view.Classes {
			if kk == k {
				continue
			}
			for i := range view.Pairs {
				view.Demand[kk][i] = 0
			}
			for q := range view.ScenDemand {
				if view.ScenDemand[q] == nil {
					continue
				}
				for i := range view.Pairs {
					view.ScenDemand[q][view.FlowID(kk, i)] = 0
				}
			}
		}
		classOpt := opt
		classOpt.ScenFixedUse = fixedUse
		off, err := Offline(view, classOpt)
		if err != nil {
			return nil, nil, fmt.Errorf("flexile: sequential design class %d: %w", k, err)
		}
		merged.PercLoss[k] = off.PercLoss[k]
		merged.Iterations += off.Iterations
		merged.SubproblemSolves += off.SubproblemSolves
		merged.Elapsed += off.Elapsed
		if k == 0 {
			merged.ScenLossOpt = off.ScenLossOpt
		}
		for i := range inst.Pairs {
			f := inst.FlowID(k, i)
			copy(merged.SubLosses[f], off.SubLosses[f])
			for q := 0; q < nq; q++ {
				merged.Critical.Set(f, q, off.Critical.Get(f, q))
			}
		}
		// Step 2: allocate class k in every scenario (its critical promises
		// as floors, max-min on loss for the rest of the class), on the
		// residual capacity; record the usage for the next class.
		for q := range inst.Scenarios {
			minFrac := make([]float64, inst.NumFlows())
			for i := range inst.Pairs {
				f := inst.FlowID(k, i)
				if off.Critical.Get(f, q) {
					p := 1 - off.SubLosses[f][q]
					if p < 0 {
						p = 0
					}
					minFrac[f] = p
				}
			}
			res, err := te.MaxMin(view, inst.Scenarios[q], te.MaxMinOptions{
				Domain:   te.FractionDomain,
				MinFrac:  minFrac,
				Demands:  view.ScenDemandVector(q),
				FixedUse: fixedUse[q],
				LP:       opt.LP,
			})
			if err != nil {
				return nil, nil, fmt.Errorf("flexile: sequential allocation class %d scenario %d: %w", k, q, err)
			}
			for i := range inst.Pairs {
				copy(routing.X[q][k][i], res.X[k][i])
				for t, x := range res.X[k][i] {
					if x <= 0 {
						continue
					}
					for _, e := range inst.Tunnels[k][i][t].Edges {
						fixedUse[q][e] += x
					}
				}
			}
		}
	}
	return merged, routing, nil
}

// SequentialScheme wraps SequentialDesign as a Scheme.
type SequentialScheme struct {
	Opt Options
	// Offline is populated after Route.
	Offline *OfflineResult
}

// Name implements scheme.Scheme.
func (s *SequentialScheme) Name() string { return "Flexile-Sequential" }

// Route implements scheme.Scheme.
func (s *SequentialScheme) Route(inst *te.Instance) (*te.Routing, error) {
	off, r, err := SequentialDesign(inst, s.Opt)
	if err != nil {
		return nil, err
	}
	s.Offline = off
	return r, nil
}
