package flexile

import (
	"strings"
	"testing"

	"flexile/internal/te"
	"flexile/internal/topo"
	"flexile/internal/tunnels"
)

// TestOfflineNoScenarios: a clear error, not a panic.
func TestOfflineNoScenarios(t *testing.T) {
	tp := topo.Triangle()
	inst := te.NewInstance(tp, []te.Class{
		{Name: "s", Beta: 0.99, Weight: 1, Tunnels: tunnels.SingleClass(3)},
	})
	if _, err := Offline(inst, Options{}); err == nil || !strings.Contains(err.Error(), "no scenarios") {
		t.Fatalf("want no-scenarios error, got %v", err)
	}
}

// TestOnlineScenarioOutOfRange: bounds-checked.
func TestOnlineScenarioOutOfRange(t *testing.T) {
	inst := triangleInstance()
	off, err := Offline(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Online(inst, off, -1, Options{}); err == nil {
		t.Fatal("want out-of-range error for q=-1")
	}
	if _, err := Online(inst, off, len(inst.Scenarios), Options{}); err == nil {
		t.Fatal("want out-of-range error for q=len")
	}
}

// TestOfflineZeroDemandInstance: no demanded flows means a trivially
// perfect design, not a crash.
func TestOfflineZeroDemandInstance(t *testing.T) {
	inst := triangleInstance()
	for i := range inst.Pairs {
		inst.Demand[0][i] = 0
	}
	off, err := Offline(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if off.PercLoss[0] != 0 {
		t.Fatalf("zero-demand PercLoss = %v", off.PercLoss[0])
	}
}

// TestSchemeRouteIsRepeatable: Route is deterministic run to run.
func TestSchemeRouteIsRepeatable(t *testing.T) {
	inst := triangleInstance()
	a, err := (&Scheme{}).Route(inst)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&Scheme{}).Route(inst)
	if err != nil {
		t.Fatal(err)
	}
	for q := range inst.Scenarios {
		for k := range inst.Classes {
			for i := range inst.Pairs {
				for ti := range a.X[q][k][i] {
					if a.X[q][k][i][ti] != b.X[q][k][i][ti] {
						t.Fatalf("nondeterministic routing at q=%d k=%d i=%d t=%d", q, k, i, ti)
					}
				}
			}
		}
	}
}

// TestAugmentRespectsMaxAug: a cap that makes the target unreachable must
// surface as non-convergence, not a wrong answer.
func TestAugmentRespectsMaxAug(t *testing.T) {
	inst := triangleInstance()
	inst.ScaleDemands(3) // needs lots of extra capacity
	maxAug := []float64{0.01, 0.01, 0.01}
	res, err := Augment(inst, AugmentOptions{MaxAug: maxAug, MaxIterations: 4})
	if err == nil {
		// If it converged, the deltas must respect the caps and the target.
		for e, d := range res.Delta {
			if d > maxAug[e]+1e-9 {
				t.Fatalf("delta[%d]=%v exceeds cap", e, d)
			}
		}
		for _, pl := range res.AchievedPercLoss {
			if pl > 1e-6 {
				t.Fatalf("claimed convergence with residual loss %v", pl)
			}
		}
	}
}
