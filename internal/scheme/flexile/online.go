package flexile

import (
	"fmt"
	"math"

	"flexile/internal/eval"
	"flexile/internal/te"
)

// Online computes the bandwidth allocation for one failure scenario
// (§4.3): critical flows are first guaranteed the bandwidth the offline
// phase promised them (loss ≤ PercLoss of their class), then residual
// capacity is distributed with a max-min allocation on flow loss, higher
// priority classes first. Unlike SWAN, the volume — not the routing — of a
// higher class is pinned when a lower class is solved, so routing for all
// classes is decided jointly.
func Online(inst *te.Instance, off *OfflineResult, q int, opt Options) (*te.MaxMinResult, error) {
	if q < 0 || q >= len(inst.Scenarios) {
		return nil, fmt.Errorf("flexile: scenario %d out of range", q)
	}
	opt = opt.withDefaults(inst.NumFlows() * len(inst.Scenarios))
	minFrac := make([]float64, inst.NumFlows())
	// A degraded offline result may lack pieces — no result at all, no
	// critical set, or no ScenLossOpt vector. The online phase must still
	// produce a feasible allocation: missing data means no floor is
	// promised for the affected flows, never a panic.
	if off == nil {
		off = &OfflineResult{}
	}
	for k := range inst.Classes {
		for i := range inst.Pairs {
			f := inst.FlowID(k, i)
			if off.Critical == nil || !off.Critical.Get(f, q) {
				continue
			}
			// The offline subproblem pre-decided this flow's bandwidth in
			// this scenario (1 − l_fq)·d_f; the online phase guarantees
			// exactly that, which keeps the promise jointly feasible even
			// in critical scenarios whose loss exceeds the class's
			// percentile (the percentile skips the worst critical
			// scenarios, the per-scenario allocation must not).
			promised := 1.0
			if off.SubLosses != nil && f < len(off.SubLosses) && q < len(off.SubLosses[f]) {
				promised = 1 - off.SubLosses[f][q]
			}
			if promised < 0 {
				promised = 0
			}
			minFrac[f] = promised
		}
	}
	// γ generalization (§4.4): every connected flow — critical or not —
	// is kept within γ of the scenario's optimal ScenLoss. A missing
	// ScenLossOpt entry (degraded offline result) promises no floor.
	if opt.Gamma >= 0 && q < len(off.ScenLossOpt) {
		floor := 1 - opt.Gamma - off.ScenLossOpt[q]
		if floor > 0 {
			scen := inst.Scenarios[q]
			for k := range inst.Classes {
				for i := range inst.Pairs {
					f := inst.FlowID(k, i)
					if inst.DemandIn(k, i, q) > 0 && inst.FlowConnected(k, i, scen) && minFrac[f] < floor {
						minFrac[f] = floor
					}
				}
			}
		}
	}
	return te.MaxMin(inst, inst.Scenarios[q], te.MaxMinOptions{
		Domain:  te.FractionDomain,
		MinFrac: minFrac,
		Demands: inst.ScenDemandVector(q),
		LP:      opt.LP,
	})
}

// Scheme is the complete Flexile system: the offline decomposition run
// once, then the online allocation applied to every scenario.
type Scheme struct {
	Opt Options
	// Offline, when set after Route, exposes the offline result for
	// inspection (convergence history, critical sets, timing).
	Offline *OfflineResult
}

// Name implements scheme.Scheme.
func (s *Scheme) Name() string { return "Flexile" }

// Route implements scheme.Scheme.
func (s *Scheme) Route(inst *te.Instance) (*te.Routing, error) {
	off, err := Offline(inst, s.Opt)
	if err != nil {
		return nil, err
	}
	s.Offline = off
	r := te.NewRouting(inst)
	for q := range inst.Scenarios {
		res, err := Online(inst, off, q, s.Opt)
		if err != nil {
			return nil, err
		}
		for k := range inst.Classes {
			for i := range inst.Pairs {
				copy(r.X[q][k][i], res.X[k][i])
			}
		}
	}
	return r, nil
}

// MaxZeroLossScale searches (by bisection) for the largest factor the given
// class's demands can be scaled by while the scheme still achieves zero
// PercLoss for every class — the appendix Fig. 18 experiment. The instance
// is not modified. eps is the relative bisection tolerance.
func MaxZeroLossScale(inst *te.Instance, class int, route func(*te.Instance) ([][]float64, error), lo, hi, eps float64) (float64, error) {
	ok := func(scale float64) (bool, error) {
		trial := inst.Clone()
		trial.ScaleClassDemands(class, scale)
		losses, err := route(trial)
		if err != nil {
			return false, err
		}
		for k := range trial.Classes {
			if pl := eval.PercLoss(trial, losses, k); pl > 1e-6 {
				return false, nil
			}
		}
		return true, nil
	}
	good, err := ok(lo)
	if err != nil {
		return 0, err
	}
	if !good {
		return 0, nil
	}
	for hi-lo > eps*math.Max(1, hi) {
		mid := (lo + hi) / 2
		good, err := ok(mid)
		if err != nil {
			return 0, err
		}
		if good {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}
