package teavar

import (
	"math"
	"testing"

	"flexile/internal/eval"
	"flexile/internal/failure"
	"flexile/internal/te"
	"flexile/internal/topo"
	"flexile/internal/tunnels"
)

func triangleInstance() *te.Instance {
	tp := topo.Triangle()
	inst := te.NewInstance(tp, []te.Class{
		{Name: "single", Beta: 0.99, Weight: 1, Tunnels: tunnels.SingleClass(3)},
	})
	inst.Demand[0][0] = 1
	inst.Demand[0][1] = 1
	inst.LinkProbs = []float64{0.01, 0.01, 0.01}
	inst.Scenarios = failure.Enumerate(inst.LinkProbs, 0)
	return inst
}

// TestStaticRouting: Teavar's allocation never adapts — live tunnels carry
// the same bandwidth in every scenario (the §2 proportional-recovery
// model).
func TestStaticRouting(t *testing.T) {
	inst := triangleInstance()
	r, err := (&Scheme{}).Route(inst)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for ti := range inst.Tunnels[0][i] {
			base := r.X[0][0][i][ti] // all-alive allocation
			for q, scen := range inst.Scenarios {
				got := r.X[q][0][i][ti]
				if inst.TunnelAlive(0, i, ti, scen) {
					if math.Abs(got-base) > 1e-9 {
						t.Fatalf("allocation adapts: scen %d tunnel %d: %v vs %v", q, ti, got, base)
					}
				} else if got != 0 {
					t.Fatalf("dead tunnel carries %v", got)
				}
			}
		}
	}
}

// TestTriangleSplit: the CVaR-optimal design splits each flow across its
// two disjoint paths (the paper's Fig. 3), capping the 99%ile loss at ~0.5.
func TestTriangleSplit(t *testing.T) {
	inst := triangleInstance()
	r, err := (&Scheme{}).Route(inst)
	if err != nil {
		t.Fatal(err)
	}
	losses := r.LossMatrix(inst)
	pl := eval.PercLoss(inst, losses, 0)
	if pl < 0.4851-1e-6 || pl > 0.55 {
		t.Fatalf("PercLoss = %v, want ≈0.5 (Fig. 3 split)", pl)
	}
	// Both flows must use both of their tunnels (a concentrated allocation
	// would lose everything in one single-failure state, which CVaR
	// penalizes heavily).
	for i := 0; i < 2; i++ {
		for ti := range inst.Tunnels[0][i] {
			if r.X[0][0][i][ti] < 0.1 {
				t.Fatalf("flow %d tunnel %d nearly unused (%v): not hedged", i, ti, r.X[0][0][i][ti])
			}
		}
	}
}

// TestRejectsMultiClass: Teavar is single-class by design.
func TestRejectsMultiClass(t *testing.T) {
	tp := topo.Triangle()
	inst := te.NewInstance(tp, []te.Class{
		{Name: "a", Beta: 0.99, Weight: 1, Tunnels: tunnels.SingleClass(3)},
		{Name: "b", Beta: 0.99, Weight: 1, Tunnels: tunnels.SingleClass(3)},
	})
	inst.Scenarios = []failure.Scenario{{Prob: 1}}
	if _, err := (&Scheme{}).Route(inst); err == nil {
		t.Fatal("want multi-class rejection")
	}
}

// TestRejectsBetaOne: β = 1 has no CVaR tail.
func TestRejectsBetaOne(t *testing.T) {
	inst := triangleInstance()
	inst.Classes[0].Beta = 1
	if _, err := (&Scheme{}).Route(inst); err == nil {
		t.Fatal("want beta < 1 rejection")
	}
}

// TestCapacityRespected on a bigger instance.
func TestCapacityRespected(t *testing.T) {
	tp := topo.MustLoad("Sprint")
	inst := te.NewInstance(tp, []te.Class{
		{Name: "single", Beta: 0.99, Weight: 1, Tunnels: tunnels.SingleClass(3)},
	})
	for i := range inst.Pairs {
		inst.Demand[0][i] = 15
	}
	probs := failure.WeibullProbs(tp.G, 2, failure.WeibullParams{})
	inst.LinkProbs = probs
	inst.Scenarios = failure.Enumerate(probs, 1e-4)
	r, err := (&Scheme{}).Route(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckCapacity(inst, 1e-5); err != nil {
		t.Fatal(err)
	}
}
