// Package teavar implements Teavar (Bogle et al., SIGCOMM 2019) as the
// paper describes it in §2 and §5: a single LP that chooses one static
// tunnel allocation x_t minimizing the Conditional Value at Risk (CVaR) of
// ScenLoss — the worst pair's loss per scenario — at level β. On failure,
// traffic on dead tunnels is lost; the allocation itself never adapts.
//
// CVaR is an over-estimate of the β-percentile loss (VaR), and evaluating
// the worst pair per scenario ties every flow to a common set of bad
// scenarios; both conservatisms are what Flexile removes (§5, Prop. 2).
package teavar

import (
	"fmt"

	"flexile/internal/lp"
	"flexile/internal/te"
)

// Scheme is Teavar. Single traffic class only (the paper's comparisons with
// Teavar all use one class).
type Scheme struct {
	// LP tunes the solver.
	LP lp.Options
}

// Name implements scheme.Scheme.
func (*Scheme) Name() string { return "Teavar" }

// Route implements scheme.Scheme.
func (s *Scheme) Route(inst *te.Instance) (*te.Routing, error) {
	if len(inst.Classes) != 1 {
		return nil, fmt.Errorf("teavar: single traffic class required, got %d", len(inst.Classes))
	}
	beta := inst.Classes[0].Beta
	if beta >= 1 {
		return nil, fmt.Errorf("teavar: beta must be < 1, got %v", beta)
	}
	p := lp.NewProblem()
	// Static allocation variables.
	xcol := make([][]int, len(inst.Pairs))
	for i := range inst.Pairs {
		xcol[i] = make([]int, len(inst.Tunnels[0][i]))
		ub := lp.Inf
		if inst.Demand[0][i] <= 0 {
			ub = 0 // zero-demand pairs must not consume capacity
		}
		for t := range inst.Tunnels[0][i] {
			xcol[i][t] = p.AddCol(fmt.Sprintf("x[%d,%d]", i, t), 0, ub, 0)
		}
	}
	alpha := p.AddCol("alpha", -lp.Inf, lp.Inf, 1)
	scol := make([]int, len(inst.Scenarios))
	for q, scen := range inst.Scenarios {
		scol[q] = p.AddCol(fmt.Sprintf("s[%d]", q), 0, lp.Inf, scen.Prob/(1-beta))
	}
	// Residual pseudo-scenario: probability mass not covered by the
	// enumerated scenarios counts as total loss (the post-analysis
	// convention), so the CVaR objective must price it too.
	if resid := 1 - coverage(inst); resid > 1e-12 {
		sr := p.AddCol("s[resid]", 0, lp.Inf, resid/(1-beta))
		p.AddGE("cvar[resid]", 1, lp.Entry{Col: sr, Coef: 1}, lp.Entry{Col: alpha, Coef: 1})
	}
	// CVaR rows: s_q + α + Σ_t x_t·y_tq/d_i ≥ 1 for every demanded pair.
	for q, scen := range inst.Scenarios {
		alive := scen.Alive()
		for i := range inst.Pairs {
			if inst.Demand[0][i] <= 0 {
				continue
			}
			d := inst.DemandIn(0, i, q)
			if d <= 0 {
				continue
			}
			es := []lp.Entry{{Col: scol[q], Coef: 1}, {Col: alpha, Coef: 1}}
			for t, path := range inst.Tunnels[0][i] {
				if path.Alive(alive) {
					es = append(es, lp.Entry{Col: xcol[i][t], Coef: 1 / d})
				}
			}
			p.AddGE(fmt.Sprintf("cvar[%d,%d]", i, q), 1, es...)
		}
	}
	// Static capacity rows (the allocation must fit with all links up).
	addStaticCapacity(p, inst, 0, xcol)
	// The CVaR formulation has |P|·|Q| rows but only |T|+|Q|+1 columns, so
	// the dualized path solves it far faster.
	sol, err := p.SolveDualizedOpts(s.LP)
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("teavar: %v", sol.Status)
	}
	// Emit the proportional-recovery routing: the static allocation with
	// dead tunnels zeroed per scenario.
	r := te.NewRouting(inst)
	for q, scen := range inst.Scenarios {
		alive := scen.Alive()
		for i := range inst.Pairs {
			for t, path := range inst.Tunnels[0][i] {
				if path.Alive(alive) {
					r.X[q][0][i][t] = sol.X[xcol[i][t]]
				}
			}
		}
	}
	return r, nil
}

// coverage sums the enumerated scenario probabilities.
func coverage(inst *te.Instance) float64 {
	tot := 0.0
	for _, s := range inst.Scenarios {
		tot += s.Prob
	}
	return tot
}

// addStaticCapacity adds Σ_{tunnels crossing e} x ≤ c_e rows for class k.
func addStaticCapacity(p *lp.Problem, inst *te.Instance, k int, xcol [][]int) {
	g := inst.Topo.G
	entries := make([][]lp.Entry, g.NumEdges())
	for i := range inst.Pairs {
		for t, path := range inst.Tunnels[k][i] {
			for _, e := range path.Edges {
				entries[e] = append(entries[e], lp.Entry{Col: xcol[i][t], Coef: 1})
			}
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		if len(entries[e]) > 0 {
			p.AddLE(fmt.Sprintf("cap[%d]", e), g.Edge(e).Capacity, entries[e]...)
		}
	}
}
