// Package scenbest implements the ScenBest family of schemes (§2): on every
// failure, traffic is rerouted to optimize that scenario unilaterally.
//
// ScenBest(MLU) is equivalent to SMORE's failure recovery — split traffic
// optimally among live tunnels minimizing the maximum link utilization,
// which minimizes ScenLoss (the worst flow's loss in the scenario, paper
// appendix A). After the worst flow's share is fixed, residual capacity is
// distributed max-min, so non-bottleneck flows see lower loss. ScenBest is
// the per-scenario optimum: no scheme achieves lower ScenLoss, which is why
// the paper uses it both as the SMORE stand-in and as the per-scenario
// yardstick in §6.3.
//
// ScenBest-Multi generalizes to multiple traffic classes by allocating
// higher-priority classes first (§6.3).
package scenbest

import (
	"flexile/internal/te"
)

// Scheme is ScenBest / SMORE. The zero value is ready to use.
type Scheme struct {
	// DisplayName overrides Name() (the harness labels the same algorithm
	// "SMORE" in single-class runs and "ScenBest-Multi" in two-class runs).
	DisplayName string
}

// Name implements scheme.Scheme.
func (s *Scheme) Name() string {
	if s.DisplayName != "" {
		return s.DisplayName
	}
	return "ScenBest"
}

// Route optimizes each scenario independently: a lexicographic max-min
// allocation on flow loss per traffic class in priority order. The worst
// connected flow ends at the scenario's optimal ScenLoss; disconnected
// flows receive nothing (the §6.2 "turn off disconnected flows" variant is
// inherent: a flow with no live tunnel cannot be allocated bandwidth).
func (s *Scheme) Route(inst *te.Instance) (*te.Routing, error) {
	r := te.NewRouting(inst)
	for q, scen := range inst.Scenarios {
		res, err := te.MaxMin(inst, scen, te.MaxMinOptions{Domain: te.FractionDomain, Demands: inst.ScenDemandVector(q)})
		if err != nil {
			return nil, err
		}
		for k := range inst.Classes {
			for i := range inst.Pairs {
				copy(r.X[q][k][i], res.X[k][i])
			}
		}
	}
	return r, nil
}
