package scenbest

import (
	"math"
	"testing"

	"flexile/internal/eval"
	"flexile/internal/failure"
	"flexile/internal/te"
	"flexile/internal/topo"
	"flexile/internal/tunnels"
)

func triangleInstance() *te.Instance {
	tp := topo.Triangle()
	inst := te.NewInstance(tp, []te.Class{
		{Name: "single", Beta: 0.99, Weight: 1, Tunnels: tunnels.SingleClass(3)},
	})
	inst.Demand[0][0] = 1
	inst.Demand[0][1] = 1
	inst.LinkProbs = []float64{0.01, 0.01, 0.01}
	inst.Scenarios = failure.Enumerate(inst.LinkProbs, 0)
	return inst
}

// TestScenLossOptimalEveryScenario: ScenBest achieves the per-scenario
// optimum (the maximum concurrent-flow bound) in every failure state —
// the defining property §6.3 relies on.
func TestScenLossOptimalEveryScenario(t *testing.T) {
	inst := triangleInstance()
	r, err := (&Scheme{}).Route(inst)
	if err != nil {
		t.Fatal(err)
	}
	losses := r.LossMatrix(inst)
	flows := eval.ClassFlows(inst, 0)
	for q, scen := range inst.Scenarios {
		z, _, _, err := te.MaxConcurrentScale(inst, scen, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Max(0, 1-math.Min(1, z))
		got := eval.ScenLoss(inst, losses, q, flows, true)
		if got > want+1e-6 {
			t.Fatalf("scenario %d: ScenLoss %v above optimum %v", q, got, want)
		}
	}
}

// TestResidualUsed: after the bottleneck flow is served, remaining capacity
// goes to the other flows (non-bottleneck flows do better than the worst).
func TestResidualUsed(t *testing.T) {
	// A path topology A-B-C: pair (A,B) shares link A-B with pair (A,C),
	// pair (B,C) shares B-C with (A,C). Demands: AC=1, AB=0.2, BC=0.2.
	tp := topo.TriangleNoBC()
	inst := te.NewInstance(tp, []te.Class{
		{Name: "single", Beta: 0.9, Weight: 1, Tunnels: tunnels.SingleClass(3)},
	})
	inst.Demand[0][0] = 1.6 // A-B: more than its link can give once shared
	inst.Demand[0][1] = 0.2 // A-C
	inst.Scenarios = []failure.Scenario{{Prob: 1}}
	r, err := (&Scheme{}).Route(inst)
	if err != nil {
		t.Fatal(err)
	}
	losses := r.LossMatrix(inst)
	// A-C's demand is small and its link uncontended: zero loss; A-B gets
	// everything remaining on its own link (1.0 of 1.6).
	if losses[inst.FlowID(0, 1)][0] > 1e-6 {
		t.Fatalf("uncontended flow lost %v", losses[inst.FlowID(0, 1)][0])
	}
	wantLoss := 1 - 1.0/1.6
	if math.Abs(losses[inst.FlowID(0, 0)][0]-wantLoss) > 1e-6 {
		t.Fatalf("bottleneck flow loss %v, want %v", losses[inst.FlowID(0, 0)][0], wantLoss)
	}
}

// TestDisplayName: the harness labels the same algorithm differently.
func TestDisplayName(t *testing.T) {
	if (&Scheme{}).Name() != "ScenBest" {
		t.Fatal("default name")
	}
	if (&Scheme{DisplayName: "SMORE"}).Name() != "SMORE" {
		t.Fatal("display name override")
	}
}

// TestDisconnectedFlowsGetNothing: flows with no live tunnel receive zero
// without breaking the other flows' optimality.
func TestDisconnectedFlowsGetNothing(t *testing.T) {
	inst := triangleInstance()
	// Scenario: A-B and B-C down → pair (A,B) disconnected, (A,C) fine.
	var scen failure.Scenario
	for _, s := range inst.Scenarios {
		if len(s.Failed) == 2 && s.IsFailed(0) && s.IsFailed(2) {
			scen = s
		}
	}
	inst.Scenarios = []failure.Scenario{scen}
	r, err := (&Scheme{}).Route(inst)
	if err != nil {
		t.Fatal(err)
	}
	losses := r.LossMatrix(inst)
	if losses[inst.FlowID(0, 0)][0] != 1 {
		t.Fatalf("disconnected flow loss %v, want 1", losses[inst.FlowID(0, 0)][0])
	}
	if losses[inst.FlowID(0, 1)][0] > 1e-6 {
		t.Fatalf("connected flow loss %v, want 0", losses[inst.FlowID(0, 1)][0])
	}
}
