// Package scheme defines the interface every traffic-engineering scheme in
// this repository implements, so the evaluation harness can treat Flexile
// and the baselines (SWAN, SMORE/ScenBest, Teavar, the CVaR variants and
// the direct IP) uniformly: a scheme maps a TE instance to a per-scenario
// routing, which the eval package then post-analyzes.
package scheme

import "flexile/internal/te"

// Scheme computes a routing for every failure scenario of an instance.
type Scheme interface {
	// Name identifies the scheme in reports.
	Name() string
	// Route computes the complete per-scenario routing.
	Route(inst *te.Instance) (*te.Routing, error)
}
