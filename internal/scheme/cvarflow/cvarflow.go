// Package cvarflow implements the paper's two CVaR-based generalizations
// of Teavar (§5, appendix C), designed to isolate which of Flexile's
// advantages matter:
//
//   - Cvar-Flow-St evaluates CVaR per flow instead of per scenario
//     (removing Teavar's common-bad-scenarios conservatism) but keeps a
//     single static routing;
//   - Cvar-Flow-Ad additionally lets the routing adapt per scenario.
//
// Both still minimize CVaR — an overestimate of the percentile loss — so
// Flexile's direct VaR optimization retains an edge (Proposition 2).
package cvarflow

import (
	"fmt"

	"flexile/internal/lp"
	"flexile/internal/te"
)

// St is Cvar-Flow-St (flow-level CVaR, static routing).
type St struct {
	LP lp.Options
}

// Name implements scheme.Scheme.
func (*St) Name() string { return "Cvar-Flow-St" }

// Route implements scheme.Scheme.
func (s *St) Route(inst *te.Instance) (*te.Routing, error) {
	if len(inst.Classes) != 1 {
		return nil, fmt.Errorf("cvarflow: single traffic class required, got %d", len(inst.Classes))
	}
	beta := inst.Classes[0].Beta
	if beta >= 1 {
		return nil, fmt.Errorf("cvarflow: beta must be < 1, got %v", beta)
	}
	p := lp.NewProblem()
	xcol := make([][]int, len(inst.Pairs))
	for i := range inst.Pairs {
		xcol[i] = make([]int, len(inst.Tunnels[0][i]))
		ub := lp.Inf
		if inst.Demand[0][i] <= 0 {
			ub = 0 // zero-demand pairs must not consume capacity
		}
		for t := range inst.Tunnels[0][i] {
			xcol[i][t] = p.AddCol(fmt.Sprintf("x[%d,%d]", i, t), 0, ub, 0)
		}
	}
	theta := p.AddCol("theta", -lp.Inf, lp.Inf, 1)
	// With a static allocation, a flow's loss in a scenario depends only on
	// which of its tunnels are alive (and the scenario's demand), so
	// scenarios with the same live-tunnel signature are merged into one
	// CVaR term with the group's total probability. This is exact and
	// shrinks the LP by an order of magnitude (≤ 2^tunnels groups per flow
	// versus |Q| scenarios), which matters enormously for the highly
	// degenerate CVaR LPs.
	for i := range inst.Pairs {
		if inst.Demand[0][i] <= 0 {
			continue
		}
		type group struct {
			prob float64
			es   []lp.Entry
		}
		groups := map[string]*group{}
		var order []string
		for q, scen := range inst.Scenarios {
			alive := scen.Alive()
			d := inst.DemandIn(0, i, q)
			sig := make([]byte, 0, len(inst.Tunnels[0][i])+16)
			var es []lp.Entry
			for t, path := range inst.Tunnels[0][i] {
				if path.Alive(alive) && d > 0 {
					sig = append(sig, byte(t))
					es = append(es, lp.Entry{Col: xcol[i][t], Coef: 1 / d})
				}
			}
			// Per-scenario demands break the grouping: include the demand
			// in the signature so only identical rows merge.
			if inst.ScenDemand != nil {
				sig = append(sig, []byte(fmt.Sprintf("|%.12g", d))...)
			}
			g, ok := groups[string(sig)]
			if !ok {
				g = &group{es: es}
				groups[string(sig)] = g
				order = append(order, string(sig))
			}
			g.prob += scen.Prob
		}
		alphaF := p.AddCol(fmt.Sprintf("alpha[%d]", i), -lp.Inf, lp.Inf, 0)
		thetaRow := []lp.Entry{{Col: theta, Coef: 1}, {Col: alphaF, Coef: -1}}
		for gi, sig := range order {
			g := groups[sig]
			sq := p.AddCol(fmt.Sprintf("s[%d,g%d]", i, gi), 0, lp.Inf, 0)
			es := append(append([]lp.Entry(nil), g.es...),
				lp.Entry{Col: sq, Coef: 1}, lp.Entry{Col: alphaF, Coef: 1})
			p.AddGE(fmt.Sprintf("loss[%d,g%d]", i, gi), 1, es...)
			thetaRow = append(thetaRow, lp.Entry{Col: sq, Coef: -g.prob / (1 - beta)})
		}
		if resid := 1 - coverage(inst); resid > 1e-12 {
			sr := p.AddCol(fmt.Sprintf("s[%d,resid]", i), 0, lp.Inf, 0)
			p.AddGE(fmt.Sprintf("loss[%d,resid]", i), 1,
				lp.Entry{Col: sr, Coef: 1}, lp.Entry{Col: alphaF, Coef: 1})
			thetaRow = append(thetaRow, lp.Entry{Col: sr, Coef: -resid / (1 - beta)})
		}
		p.AddGE(fmt.Sprintf("cvar[%d]", i), 0, thetaRow...)
	}
	addStaticCapacity(p, inst, xcol)
	sol, err := p.SolveDualizedOpts(s.LP)
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("cvarflow-st: %v", sol.Status)
	}
	r := te.NewRouting(inst)
	for q, scen := range inst.Scenarios {
		alive := scen.Alive()
		for i := range inst.Pairs {
			for t, path := range inst.Tunnels[0][i] {
				if path.Alive(alive) {
					r.X[q][0][i][t] = sol.X[xcol[i][t]]
				}
			}
		}
	}
	return r, nil
}

// Ad is Cvar-Flow-Ad (flow-level CVaR, per-scenario adaptive routing).
type Ad struct {
	LP lp.Options
}

// Name implements scheme.Scheme.
func (*Ad) Name() string { return "Cvar-Flow-Ad" }

// Route implements scheme.Scheme.
func (s *Ad) Route(inst *te.Instance) (*te.Routing, error) {
	if len(inst.Classes) != 1 {
		return nil, fmt.Errorf("cvarflow: single traffic class required, got %d", len(inst.Classes))
	}
	beta := inst.Classes[0].Beta
	if beta >= 1 {
		return nil, fmt.Errorf("cvarflow: beta must be < 1, got %v", beta)
	}
	p := lp.NewProblem()
	// Per-scenario allocation variables over live tunnels only.
	xcol := make([][][]int, len(inst.Scenarios))
	g := inst.Topo.G
	for q, scen := range inst.Scenarios {
		alive := scen.Alive()
		xcol[q] = make([][]int, len(inst.Pairs))
		entries := make([][]lp.Entry, g.NumEdges())
		for i := range inst.Pairs {
			xcol[q][i] = make([]int, len(inst.Tunnels[0][i]))
			for t, path := range inst.Tunnels[0][i] {
				xcol[q][i][t] = -1
				if inst.Demand[0][i] <= 0 || !path.Alive(alive) {
					continue
				}
				c := p.AddCol(fmt.Sprintf("x[%d,%d,%d]", q, i, t), 0, lp.Inf, 0)
				xcol[q][i][t] = c
				for _, e := range path.Edges {
					entries[e] = append(entries[e], lp.Entry{Col: c, Coef: 1})
				}
			}
		}
		for e := 0; e < g.NumEdges(); e++ {
			if len(entries[e]) > 0 {
				p.AddLE(fmt.Sprintf("cap[%d,%d]", q, e), g.Edge(e).Capacity, entries[e]...)
			}
		}
	}
	theta := p.AddCol("theta", -lp.Inf, lp.Inf, 1)
	buildFlowCVaR(p, inst, beta, theta, func(i, q int) []lp.Entry {
		d := inst.DemandIn(0, i, q)
		var es []lp.Entry
		for t := range inst.Tunnels[0][i] {
			if c := xcol[q][i][t]; c >= 0 {
				es = append(es, lp.Entry{Col: c, Coef: 1 / d})
			}
		}
		return es
	})
	sol, err := p.SolveOpts(s.LP)
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("cvarflow-ad: %v", sol.Status)
	}
	r := te.NewRouting(inst)
	for q := range inst.Scenarios {
		for i := range inst.Pairs {
			for t := range inst.Tunnels[0][i] {
				if c := xcol[q][i][t]; c >= 0 {
					r.X[q][0][i][t] = sol.X[c]
				}
			}
		}
	}
	return r, nil
}

// buildFlowCVaR adds, for every demanded flow i:
//
//	θ ≥ α_i + (1/(1−β))·Σ_q p_q·s_iq
//	s_iq + α_i + delivered_iq/d_i ≥ 1
//
// where delivered entries come from the routing-specific callback.
func buildFlowCVaR(p *lp.Problem, inst *te.Instance, beta float64, theta int, flowEntries func(i, q int) []lp.Entry) {
	for i := range inst.Pairs {
		d := inst.Demand[0][i]
		if d <= 0 {
			continue
		}
		alphaF := p.AddCol(fmt.Sprintf("alpha[%d]", i), -lp.Inf, lp.Inf, 0)
		thetaRow := []lp.Entry{{Col: theta, Coef: 1}, {Col: alphaF, Coef: -1}}
		for q, scen := range inst.Scenarios {
			sq := p.AddCol(fmt.Sprintf("s[%d,%d]", i, q), 0, lp.Inf, 0)
			es := append(flowEntries(i, q),
				lp.Entry{Col: sq, Coef: 1}, lp.Entry{Col: alphaF, Coef: 1})
			p.AddGE(fmt.Sprintf("loss[%d,%d]", i, q), 1, es...)
			thetaRow = append(thetaRow, lp.Entry{Col: sq, Coef: -scen.Prob / (1 - beta)})
		}
		// Residual pseudo-scenario: unenumerated probability mass counts
		// as total loss in the post-analysis, so it must be priced here.
		if resid := 1 - coverage(inst); resid > 1e-12 {
			sr := p.AddCol(fmt.Sprintf("s[%d,resid]", i), 0, lp.Inf, 0)
			p.AddGE(fmt.Sprintf("loss[%d,resid]", i), 1,
				lp.Entry{Col: sr, Coef: 1}, lp.Entry{Col: alphaF, Coef: 1})
			thetaRow = append(thetaRow, lp.Entry{Col: sr, Coef: -resid / (1 - beta)})
		}
		p.AddGE(fmt.Sprintf("cvar[%d]", i), 0, thetaRow...)
	}
}

// coverage sums the enumerated scenario probabilities.
func coverage(inst *te.Instance) float64 {
	tot := 0.0
	for _, s := range inst.Scenarios {
		tot += s.Prob
	}
	return tot
}

// addStaticCapacity adds Σ_{tunnels crossing e} x ≤ c_e for the static
// single-class allocation.
func addStaticCapacity(p *lp.Problem, inst *te.Instance, xcol [][]int) {
	g := inst.Topo.G
	entries := make([][]lp.Entry, g.NumEdges())
	for i := range inst.Pairs {
		for t, path := range inst.Tunnels[0][i] {
			for _, e := range path.Edges {
				entries[e] = append(entries[e], lp.Entry{Col: xcol[i][t], Coef: 1})
			}
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		if len(entries[e]) > 0 {
			p.AddLE(fmt.Sprintf("cap[%d]", e), g.Edge(e).Capacity, entries[e]...)
		}
	}
}
