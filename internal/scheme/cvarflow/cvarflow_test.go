package cvarflow

import (
	"math"
	"testing"

	"flexile/internal/eval"
	"flexile/internal/failure"
	"flexile/internal/te"
	"flexile/internal/topo"
	"flexile/internal/tunnels"
)

func triangleInstance() *te.Instance {
	tp := topo.Triangle()
	inst := te.NewInstance(tp, []te.Class{
		{Name: "single", Beta: 0.99, Weight: 1, Tunnels: tunnels.SingleClass(3)},
	})
	inst.Demand[0][0] = 1
	inst.Demand[0][1] = 1
	inst.LinkProbs = []float64{0.01, 0.01, 0.01}
	inst.Scenarios = failure.Enumerate(inst.LinkProbs, 0)
	return inst
}

// TestProposition2Bound: both CVaR generalizations stay at ≥48.51% loss on
// the Fig. 1 triangle although the optimum is zero — the paper's
// Proposition 2.
func TestProposition2Bound(t *testing.T) {
	inst := triangleInstance()
	for _, s := range []interface {
		Name() string
		Route(*te.Instance) (*te.Routing, error)
	}{&St{}, &Ad{}} {
		r, err := s.Route(inst)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := r.CheckCapacity(inst, 1e-5); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		pl := eval.PercLoss(inst, r.LossMatrix(inst), 0)
		if pl < 0.4851-1e-6 {
			t.Fatalf("%s PercLoss %v below the Prop. 2 bound", s.Name(), pl)
		}
	}
}

// TestAdAdaptsStDoesNot: Ad's allocation may differ per scenario; St's is
// the same static vector masked by liveness.
func TestAdAdaptsStDoesNot(t *testing.T) {
	inst := triangleInstance()
	rSt, err := (&St{}).Route(inst)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for ti := range inst.Tunnels[0][i] {
			base := rSt.X[0][0][i][ti]
			for q, scen := range inst.Scenarios {
				got := rSt.X[q][0][i][ti]
				if inst.TunnelAlive(0, i, ti, scen) && math.Abs(got-base) > 1e-9 {
					t.Fatalf("St adapted allocation in scenario %d", q)
				}
			}
		}
	}
}

// TestAdNoWorseThanSt: adaptive routing can only improve the optimized
// CVaR objective; empirically its realized PercLoss should not be
// dramatically worse either (paper: Cvar-Flow-Ad ≤ Cvar-Flow-St in the
// aggregate).
func TestAdNoWorseThanSt(t *testing.T) {
	tp := topo.MustLoad("Sprint")
	inst := te.NewInstance(tp, []te.Class{
		{Name: "single", Beta: 0.99, Weight: 1, Tunnels: tunnels.SingleClass(3)},
	})
	for i := range inst.Pairs {
		inst.Demand[0][i] = 12
	}
	probs := failure.WeibullProbs(tp.G, 6, failure.WeibullParams{Median: 0.003})
	inst.LinkProbs = probs
	scens := failure.Enumerate(probs, 1e-3)
	if len(scens) > 10 {
		scens = scens[:10]
	}
	inst.Scenarios = scens
	cov := failure.Coverage(scens)
	inst.Classes[0].Beta = math.Min(0.99, 1-8*(1-cov))

	rSt, err := (&St{}).Route(inst)
	if err != nil {
		t.Fatal(err)
	}
	rAd, err := (&Ad{}).Route(inst)
	if err != nil {
		t.Fatal(err)
	}
	plSt := eval.PercLoss(inst, rSt.LossMatrix(inst), 0)
	plAd := eval.PercLoss(inst, rAd.LossMatrix(inst), 0)
	// CVaR optimizes an overestimate, so the realized percentile is not
	// strictly ordered; allow modest slack but catch gross inversions.
	if plAd > plSt+0.15 {
		t.Fatalf("Ad %v much worse than St %v", plAd, plSt)
	}
}

func TestRejectsMultiClassAndBetaOne(t *testing.T) {
	tp := topo.Triangle()
	multi := te.NewInstance(tp, []te.Class{
		{Name: "a", Beta: 0.9, Weight: 1, Tunnels: tunnels.SingleClass(3)},
		{Name: "b", Beta: 0.9, Weight: 1, Tunnels: tunnels.SingleClass(3)},
	})
	multi.Scenarios = []failure.Scenario{{Prob: 1}}
	if _, err := (&St{}).Route(multi); err == nil {
		t.Fatal("St should reject multi-class")
	}
	if _, err := (&Ad{}).Route(multi); err == nil {
		t.Fatal("Ad should reject multi-class")
	}
	one := triangleInstance()
	one.Classes[0].Beta = 1
	if _, err := (&St{}).Route(one); err == nil {
		t.Fatal("St should reject beta = 1")
	}
	if _, err := (&Ad{}).Route(one); err == nil {
		t.Fatal("Ad should reject beta = 1")
	}
}
