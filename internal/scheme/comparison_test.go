package scheme_test

import (
	"math"
	"testing"

	"flexile/internal/eval"
	"flexile/internal/failure"
	"flexile/internal/graph"
	"flexile/internal/scheme"
	"flexile/internal/scheme/cvarflow"
	"flexile/internal/scheme/flexile"
	"flexile/internal/scheme/ip"
	"flexile/internal/scheme/scenbest"
	"flexile/internal/scheme/swan"
	"flexile/internal/scheme/teavar"
	"flexile/internal/te"
	"flexile/internal/topo"
	"flexile/internal/tunnels"
)

// fig1Instance is the paper's motivating example (§3): the triangle with
// unit capacities, flows A→B and A→C of demand 1, link failure probability
// 0.01, and a 99% availability target.
func fig1Instance() *te.Instance {
	tp := topo.Triangle()
	inst := te.NewInstance(tp, []te.Class{
		{Name: "single", Beta: 0.99, Weight: 1, Tunnels: tunnels.SingleClass(3)},
	})
	inst.Demand[0][0] = 1 // A→B
	inst.Demand[0][1] = 1 // A→C
	inst.LinkProbs = []float64{0.01, 0.01, 0.01}
	inst.Scenarios = failure.Enumerate(inst.LinkProbs, 0) // all 8 states
	return inst
}

func percLoss(t *testing.T, s scheme.Scheme, inst *te.Instance) float64 {
	t.Helper()
	r, err := s.Route(inst)
	if err != nil {
		t.Fatalf("%s: %v", s.Name(), err)
	}
	if err := r.CheckCapacity(inst, 1e-5); err != nil {
		t.Fatalf("%s produced an infeasible routing: %v", s.Name(), err)
	}
	return eval.PercLoss(inst, r.LossMatrix(inst), 0)
}

// TestFig1ScenBest: ScenBest can only support 0.5 units 99% of the time
// (paper Fig. 2).
func TestFig1ScenBest(t *testing.T) {
	inst := fig1Instance()
	got := percLoss(t, &scenbest.Scheme{}, inst)
	if math.Abs(got-0.5) > 1e-6 {
		t.Fatalf("ScenBest PercLoss = %v, want 0.5", got)
	}
}

// TestFig1Teavar: Teavar cannot do better than ~50% loss at the 99th
// percentile (Proposition 2 lower-bounds it by 48.51%).
func TestFig1Teavar(t *testing.T) {
	inst := fig1Instance()
	got := percLoss(t, &teavar.Scheme{}, inst)
	if got < 0.4851-1e-6 {
		t.Fatalf("Teavar PercLoss = %v, Proposition 2 says ≥ 0.4851", got)
	}
}

// TestFig1CvarVariants: Proposition 2 also covers the flow-level CVaR
// generalizations — both stay at ≥ 48.51% loss.
func TestFig1CvarVariants(t *testing.T) {
	inst := fig1Instance()
	for _, s := range []scheme.Scheme{&cvarflow.St{}, &cvarflow.Ad{}} {
		got := percLoss(t, s, inst)
		if got < 0.4851-1e-6 {
			t.Fatalf("%s PercLoss = %v, Proposition 2 says ≥ 0.4851", s.Name(), got)
		}
	}
}

// TestFig1Flexile: Flexile meets the full bandwidth objective — zero loss
// at the 99th percentile (§3, Fig. 4).
func TestFig1Flexile(t *testing.T) {
	inst := fig1Instance()
	fx := &flexile.Scheme{}
	got := percLoss(t, fx, inst)
	if got > 1e-6 {
		t.Fatalf("Flexile PercLoss = %v, want 0", got)
	}
	// The critical sets must be a Fig.-4-style solution (the symmetric
	// optimum that routes A→B over A−C−B in the "A−B down" scenario is
	// equally valid): every flow's critical scenarios keep it connected,
	// cover probability β, and give it zero loss.
	off := fx.Offline
	for _, f := range []int{inst.FlowID(0, 0), inst.FlowID(0, 1)} {
		k, i := inst.FlowOf(f)
		mass := 0.0
		for q, s := range inst.Scenarios {
			if !off.Critical.Get(f, q) {
				continue
			}
			mass += s.Prob
			if !inst.FlowConnected(k, i, s) {
				t.Fatalf("scenario %d critical for flow %d although disconnected", q, f)
			}
			if off.SubLosses[f][q] > 1e-6 {
				t.Fatalf("flow %d loses %v in its critical scenario %d", f, off.SubLosses[f][q], q)
			}
		}
		if mass < 0.99-1e-9 {
			t.Fatalf("critical mass for flow %d = %v < 0.99", f, mass)
		}
	}
}

// TestFig1IP: the direct MIP also achieves zero, and Flexile matches it.
func TestFig1IP(t *testing.T) {
	inst := fig1Instance()
	got := percLoss(t, &ip.Scheme{}, inst)
	if got > 1e-6 {
		t.Fatalf("IP PercLoss = %v, want 0", got)
	}
}

// TestProposition1: at the warm start (iteration 1, before any master
// step), Flexile's guarantee is already no worse than ScenBest's or
// Teavar's.
func TestProposition1(t *testing.T) {
	inst := fig1Instance()
	fx := &flexile.Scheme{Opt: flexile.Options{MaxIterations: 1}}
	if _, err := fx.Route(inst); err != nil {
		t.Fatal(err)
	}
	iter1 := fx.Offline.IterPercLoss[0][0]

	sb := percLoss(t, &scenbest.Scheme{}, inst)
	tv := percLoss(t, &teavar.Scheme{}, inst)
	if iter1 > sb+1e-6 {
		t.Fatalf("warm start PercLoss %v worse than ScenBest %v", iter1, sb)
	}
	if iter1 > tv+1e-6 {
		t.Fatalf("warm start PercLoss %v worse than Teavar %v", iter1, tv)
	}
}

// TestFig16NoBCLink: without the B−C link, ScenBest does meet the flow
// objectives (appendix) — adding a link must never make Flexile worse,
// while it does degrade ScenBest (TestFig1ScenBest above).
func TestFig16NoBCLink(t *testing.T) {
	tp := topo.TriangleNoBC()
	inst := te.NewInstance(tp, []te.Class{
		{Name: "single", Beta: 0.99, Weight: 1, Tunnels: tunnels.SingleClass(3)},
	})
	inst.Demand[0][0] = 1
	inst.Demand[0][1] = 1
	inst.LinkProbs = []float64{0.01, 0.01}
	inst.Scenarios = failure.Enumerate(inst.LinkProbs, 0)
	got := percLoss(t, &scenbest.Scheme{}, inst)
	if got > 1e-6 {
		t.Fatalf("ScenBest PercLoss on Fig. 16 topology = %v, want 0", got)
	}
	fx := percLoss(t, &flexile.Scheme{}, inst)
	if fx > 1e-6 {
		t.Fatalf("Flexile PercLoss on Fig. 16 topology = %v, want 0", fx)
	}
}

// TestFig17MaxMinUnfairness reproduces the appendix example: fairness in
// each scenario is unfair across scenarios. Flow A→B has only the direct
// link; flow A→C has two paths. Per-scenario max-min fails A→B's 99%
// target; Flexile meets both.
func TestFig17MaxMinUnfairness(t *testing.T) {
	tp := topo.Triangle()
	// Custom tunnel policy emulating the appendix's directed topology:
	// pair (A,B) may only use the direct link; (A,C) gets both paths.
	policy := func(g *graph.Graph, u, v int) []graph.Path {
		paths := g.KShortestPaths(u, v, 3, nil)
		if u == 0 && v == 1 { // A-B: direct only
			var out []graph.Path
			for _, p := range paths {
				if p.Len() == 1 {
					out = append(out, p)
				}
			}
			return out
		}
		return paths
	}
	inst := te.NewInstance(tp, []te.Class{
		{Name: "single", Beta: 0.99, Weight: 1, Tunnels: policy},
	})
	inst.Demand[0][0] = 1 // A→B
	inst.Demand[0][1] = 1 // A→C
	inst.LinkProbs = []float64{0.01, 0.01, 0.01}
	inst.Scenarios = failure.Enumerate(inst.LinkProbs, 0)

	sb := &scenbest.Scheme{}
	r, err := sb.Route(inst)
	if err != nil {
		t.Fatal(err)
	}
	losses := r.LossMatrix(inst)
	probs := make([]float64, len(inst.Scenarios))
	for q, s := range inst.Scenarios {
		probs[q] = s.Prob
	}
	fAB := inst.FlowID(0, 0)
	fAC := inst.FlowID(0, 1)
	lossAB := eval.FlowLoss(losses[fAB], probs, 0.99)
	lossAC := eval.FlowLoss(losses[fAC], probs, 0.99)
	if lossAB < 0.5-1e-6 {
		t.Fatalf("max-min should leave A→B at ≥0.5 loss at the 99th pct, got %v", lossAB)
	}
	if lossAC > 1e-6 {
		t.Fatalf("max-min meets A→C's target, got %v", lossAC)
	}
	// Flexile prioritizes A→B in its critical scenarios and meets both.
	if got := percLoss(t, &flexile.Scheme{}, inst); got > 1e-6 {
		t.Fatalf("Flexile PercLoss = %v, want 0", got)
	}
}

// TestSWANThroughputUnfairness reproduces the §6.2 A-B-C example: max
// throughput starves the long flow entirely.
func TestSWANThroughputUnfairness(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	tp := &topo.Topology{Name: "path", G: g}
	inst := te.NewInstance(tp, []te.Class{
		{Name: "single", Beta: 0.9, Weight: 1, Tunnels: tunnels.SingleClass(3)},
	})
	// Pairs: (0,1), (0,2), (1,2); demand 1 each.
	for i := range inst.Pairs {
		inst.Demand[0][i] = 1
	}
	inst.Scenarios = []failure.Scenario{{Prob: 1}}
	r, err := (&swan.Throughput{}).Route(inst)
	if err != nil {
		t.Fatal(err)
	}
	losses := r.LossMatrix(inst)
	// A-B and B-C are fully served; A-C gets nothing.
	var acPair int
	for i, pr := range inst.Pairs {
		if pr[0] == 0 && pr[1] == 2 {
			acPair = i
		}
	}
	if l := losses[inst.FlowID(0, acPair)][0]; math.Abs(l-1) > 1e-6 {
		t.Fatalf("A-C loss = %v, want 1 (starved by throughput maximization)", l)
	}
	tot := 0.0
	for f := range losses {
		tot += 1 - losses[f][0]
	}
	if math.Abs(tot-2) > 1e-6 {
		t.Fatalf("total throughput = %v, want 2", tot)
	}
}

// TestTwoClassSchemes runs SWAN variants and Flexile on a two-class
// triangle and checks the priority invariant: high-priority traffic never
// does worse than low-priority.
func TestTwoClassSchemes(t *testing.T) {
	tp := topo.Triangle()
	inst := te.NewInstance(tp, []te.Class{
		{Name: "high", Beta: 0.99, Weight: 1000, Tunnels: tunnels.HighPriority(3)},
		{Name: "low", Beta: 0.99, Weight: 1, Tunnels: tunnels.LowPriority(3, 3)},
	})
	for i := range inst.Pairs {
		inst.Demand[0][i] = 0.3
		inst.Demand[1][i] = 0.6
	}
	inst.LinkProbs = []float64{0.01, 0.01, 0.01}
	inst.Scenarios = failure.Enumerate(inst.LinkProbs, 0)
	for _, s := range []scheme.Scheme{&swan.Maxmin{}, &swan.Throughput{}, &scenbest.Scheme{DisplayName: "ScenBest-Multi"}, &flexile.Scheme{}} {
		r, err := s.Route(inst)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := r.CheckCapacity(inst, 1e-5); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		losses := r.LossMatrix(inst)
		hi := eval.PercLoss(inst, losses, 0)
		lo := eval.PercLoss(inst, losses, 1)
		if hi > lo+1e-6 {
			t.Fatalf("%s: high-priority PercLoss %v worse than low %v", s.Name(), hi, lo)
		}
	}
}

// TestFlexileMatchesIPSmall cross-checks decomposition vs the direct MIP on
// a random 7-node instance (the direct MIP replicates the routing for every
// scenario, so it only scales to small networks — which is the paper's
// point in Fig. 15).
func TestFlexileMatchesIPSmall(t *testing.T) {
	g := topo.Generate(7, 11, 42)
	tp := &topo.Topology{Name: "small7", G: g}
	inst := te.NewInstance(tp, []te.Class{
		{Name: "single", Beta: 0, Weight: 1, Tunnels: tunnels.SingleClass(3)},
	})
	for i := range inst.Pairs {
		inst.Demand[0][i] = 25 // capacity is 100 per link
	}
	probs := failure.WeibullProbs(tp.G, 5, failure.WeibullParams{Median: 0.004})
	inst.LinkProbs = probs
	inst.Scenarios = failure.Enumerate(probs, 2e-3)
	inst.Classes[0].Beta = math.Min(0.999, inst.AllFlowsConnectedMass()-1e-9)

	fx := &flexile.Scheme{}
	fxLoss := percLoss(t, fx, inst)

	ipS := &ip.Scheme{MaxNodes: 200}
	ipLoss := percLoss(t, ipS, inst)

	// Flexile must come close to the IP optimum (the IP may itself be an
	// incumbent rather than a proven optimum, so allow slack both ways).
	if fxLoss > ipLoss+0.05 {
		t.Fatalf("Flexile PercLoss %v much worse than IP %v", fxLoss, ipLoss)
	}
}
