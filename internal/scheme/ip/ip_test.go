package ip

import (
	"testing"

	"flexile/internal/eval"
	"flexile/internal/failure"
	"flexile/internal/te"
	"flexile/internal/topo"
	"flexile/internal/tunnels"
)

// TestIPTriangleOptimal: the exact MIP achieves zero 99%ile loss on the
// paper's Fig. 1 triangle and proves it.
func TestIPTriangleOptimal(t *testing.T) {
	tp := topo.Triangle()
	inst := te.NewInstance(tp, []te.Class{
		{Name: "single", Beta: 0.99, Weight: 1, Tunnels: tunnels.SingleClass(3)},
	})
	inst.Demand[0][0] = 1
	inst.Demand[0][1] = 1
	inst.LinkProbs = []float64{0.01, 0.01, 0.01}
	inst.Scenarios = failure.Enumerate(inst.LinkProbs, 0)
	s := &Scheme{}
	r, err := s.Route(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckCapacity(inst, 1e-5); err != nil {
		t.Fatal(err)
	}
	if pl := eval.PercLoss(inst, r.LossMatrix(inst), 0); pl > 1e-6 {
		t.Fatalf("IP PercLoss = %v, want 0", pl)
	}
	if s.Status.String() != "optimal" {
		t.Fatalf("status %v, want proven optimal", s.Status)
	}
	if s.Objective > 1e-6 {
		t.Fatalf("objective %v, want 0", s.Objective)
	}
}

// TestIPInfeasibleBeta: unreachable coverage errors out cleanly.
func TestIPInfeasibleBeta(t *testing.T) {
	tp := topo.Triangle()
	inst := te.NewInstance(tp, []te.Class{
		{Name: "single", Beta: 0.999999, Weight: 1, Tunnels: tunnels.SingleClass(3)},
	})
	inst.Demand[0][0] = 1
	inst.LinkProbs = []float64{0.01, 0.01, 0.01}
	inst.Scenarios = failure.Enumerate(inst.LinkProbs, 1e-4)
	if _, err := (&Scheme{}).Route(inst); err == nil {
		t.Fatal("want coverage error")
	}
}
