// Package ip implements the paper's direct MIP formulation (I): jointly
// choose the binary critical-scenario indicators z_fq and the per-scenario
// routing minimizing Σ_k w_k·PercLoss_k. It is exponentially more expensive
// than Flexile's decomposition — the paper could not finish Deltacom within
// an hour with Gurobi — but on small instances it provides the exact
// optimum against which Flexile's convergence (Fig. 14) and solving time
// (Fig. 15) are measured.
package ip

import (
	"fmt"

	"flexile/internal/lp"
	"flexile/internal/mip"
	"flexile/internal/te"
)

// Scheme solves formulation (I) directly.
type Scheme struct {
	// MaxNodes bounds branch-and-bound nodes; 0 means 4000.
	MaxNodes int
	// LP tunes the relaxation solves.
	LP lp.Options
	// Status of the last solve (mip.Optimal means a proven optimum).
	Status mip.Status
	// Objective of the last solve: Σ_k w_k·α_k.
	Objective float64
}

// Name implements scheme.Scheme.
func (*Scheme) Name() string { return "IP" }

// Route implements scheme.Scheme.
func (s *Scheme) Route(inst *te.Instance) (*te.Routing, error) {
	maxNodes := s.MaxNodes
	if maxNodes == 0 {
		maxNodes = 4000
	}
	p := lp.NewProblem()
	g := inst.Topo.G
	nq := len(inst.Scenarios)

	acol := make([]int, len(inst.Classes))
	for k, cls := range inst.Classes {
		acol[k] = p.AddCol(fmt.Sprintf("alpha[%d]", k), 0, lp.Inf, cls.Weight)
	}
	// Per-scenario routing variables over live tunnels.
	xcol := make([][][][]int, nq) // [q][k][i][t]
	zcol := make([][]int, inst.NumFlows())
	for f := range zcol {
		zcol[f] = make([]int, nq)
		for q := range zcol[f] {
			zcol[f][q] = -1
		}
	}
	var binaries []int
	var binFlow, binScen []int
	for q, scen := range inst.Scenarios {
		alive := scen.Alive()
		xcol[q] = make([][][]int, len(inst.Classes))
		edgeEntries := make([][]lp.Entry, g.NumEdges())
		for k := range inst.Classes {
			xcol[q][k] = make([][]int, len(inst.Pairs))
			for i := range inst.Pairs {
				xcol[q][k][i] = make([]int, len(inst.Tunnels[k][i]))
				for t, path := range inst.Tunnels[k][i] {
					xcol[q][k][i][t] = -1
					if inst.Demand[k][i] <= 0 || !path.Alive(alive) {
						continue
					}
					c := p.AddCol(fmt.Sprintf("x[%d,%d,%d,%d]", q, k, i, t), 0, lp.Inf, 0)
					xcol[q][k][i][t] = c
					for _, e := range path.Edges {
						edgeEntries[e] = append(edgeEntries[e], lp.Entry{Col: c, Coef: 1})
					}
				}
			}
		}
		for e := 0; e < g.NumEdges(); e++ {
			if len(edgeEntries[e]) > 0 {
				p.AddLE(fmt.Sprintf("cap[%d,%d]", q, e), g.Edge(e).Capacity, edgeEntries[e]...)
			}
		}
		// Loss, z-link and demand rows per demanded connected flow.
		for k := range inst.Classes {
			for i := range inst.Pairs {
				if inst.Demand[k][i] <= 0 {
					continue
				}
				d := inst.DemandIn(k, i, q)
				if d <= 0 || !inst.FlowConnected(k, i, scen) {
					continue // disconnected: l=1 and z=0, both constant
				}
				f := inst.FlowID(k, i)
				l := p.AddCol(fmt.Sprintf("l[%d,%d]", f, q), 0, 1, 0)
				z := p.AddCol(fmt.Sprintf("z[%d,%d]", f, q), 0, 1, 0)
				zcol[f][q] = z
				binaries = append(binaries, z)
				binFlow = append(binFlow, f)
				binScen = append(binScen, q)
				// α_k ≥ l + z − 1  (constraint 4)
				p.AddGE(fmt.Sprintf("a[%d,%d]", f, q), -1,
					lp.Entry{Col: acol[k], Coef: 1}, lp.Entry{Col: l, Coef: -1}, lp.Entry{Col: z, Coef: -1})
				// Σ_t x + d·l ≥ d  (constraint 5)
				es := []lp.Entry{{Col: l, Coef: d}}
				for t := range inst.Tunnels[k][i] {
					if c := xcol[q][k][i][t]; c >= 0 {
						es = append(es, lp.Entry{Col: c, Coef: 1})
					}
				}
				p.AddGE(fmt.Sprintf("d[%d,%d]", f, q), d, es...)
			}
		}
	}
	// Coverage rows (3).
	var groups [][]int
	var targets []float64
	weights := make([]float64, len(binaries))
	groupOf := map[int][]int{}
	for b := range binaries {
		weights[b] = inst.Scenarios[binScen[b]].Prob
		groupOf[binFlow[b]] = append(groupOf[binFlow[b]], b)
	}
	for k := range inst.Classes {
		for i := range inst.Pairs {
			if inst.Demand[k][i] <= 0 {
				continue
			}
			f := inst.FlowID(k, i)
			var es []lp.Entry
			mass := 0.0
			for q, scen := range inst.Scenarios {
				if zcol[f][q] >= 0 {
					es = append(es, lp.Entry{Col: zcol[f][q], Coef: scen.Prob})
					mass += scen.Prob
				}
			}
			if mass < inst.Classes[k].Beta-1e-9 {
				return nil, fmt.Errorf("ip: flow %d connected mass %.6f below β=%v", f, mass, inst.Classes[k].Beta)
			}
			p.AddGE(fmt.Sprintf("cov[%d]", f), inst.Classes[k].Beta-1e-9, es...)
			groups = append(groups, groupOf[f])
			targets = append(targets, inst.Classes[k].Beta)
		}
	}
	sol, err := mip.Solve(&mip.Problem{LP: p, Binary: binaries}, mip.Options{
		MaxNodes:  maxNodes,
		LP:        s.LP,
		Heuristic: mip.RoundGreedyCover(groups, weights, targets),
	})
	if err != nil {
		return nil, err
	}
	if sol.Status == mip.Infeasible || sol.Status == mip.Unbounded {
		return nil, fmt.Errorf("ip: %v", sol.Status)
	}
	s.Status = sol.Status
	s.Objective = sol.Objective
	r := te.NewRouting(inst)
	for q := range inst.Scenarios {
		for k := range inst.Classes {
			for i := range inst.Pairs {
				for t := range inst.Tunnels[k][i] {
					if c := xcol[q][k][i][t]; c >= 0 {
						r.X[q][k][i][t] = sol.X[c]
					}
				}
			}
		}
	}
	return r, nil
}
