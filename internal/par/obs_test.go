package par

import (
	"context"
	"errors"
	"strings"
	"testing"

	"flexile/internal/obs"
)

// TestCollectPoolAccounting: with a collector on the context, Collect
// records one launch at the clamped width and one item per executed fn,
// attributed to the worker that ran it.
func TestCollectPoolAccounting(t *testing.T) {
	col := obs.New()
	ctx := obs.With(context.Background(), col)
	const n = 12
	errs := Collect(ctx, 3, n, func(worker, i int) error { return nil })
	for i, err := range errs {
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
	}
	m := col.Snapshot().Pool
	if m.Launches != 1 || m.Items != n {
		t.Fatalf("pool accounting: %+v", m)
	}
	if m.MaxWorkers != 3 {
		t.Fatalf("MaxWorkers = %d, want 3", m.MaxWorkers)
	}
	var sum int64
	for _, c := range m.WorkerItems {
		sum += c
	}
	if sum != n {
		t.Fatalf("WorkerItems %v sums to %d, want %d", m.WorkerItems, sum, n)
	}
}

// TestCollectPoolWidthClamped: a pool wider than the item count is clamped
// before the launch is recorded.
func TestCollectPoolWidthClamped(t *testing.T) {
	col := obs.New()
	ctx := obs.With(context.Background(), col)
	Collect(ctx, 16, 2, func(worker, i int) error { return nil })
	if m := col.Snapshot().Pool; m.MaxWorkers != 2 {
		t.Fatalf("MaxWorkers = %d, want the clamp to 2", m.MaxWorkers)
	}
}

// TestCollectPanickedItemNotCounted: a panicking item never completes its
// PoolItem record — by design, so Items stays a deterministic function of
// the fault plan — while its error surfaces as a PanicError.
func TestCollectPanickedItemNotCounted(t *testing.T) {
	col := obs.New()
	ctx := obs.With(context.Background(), col)
	const n = 4
	errs := Collect(ctx, 2, n, func(worker, i int) error {
		if i == 1 {
			panic("boom")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(errs[1], &pe) {
		t.Fatalf("item 1 error %v is not a PanicError", errs[1])
	}
	if !strings.Contains(pe.Error(), "item 1") || !strings.Contains(pe.Error(), "boom") {
		t.Fatalf("PanicError message %q", pe.Error())
	}
	if m := col.Snapshot().Pool; m.Items != n-1 {
		t.Fatalf("Items = %d, want %d (panicked item uncounted)", m.Items, n-1)
	}
}

// TestCollectNilContextAndEmpty: a nil ctx and n ≤ 0 are both valid.
func TestCollectNilContextAndEmpty(t *testing.T) {
	errs := Collect(nil, 2, 3, func(worker, i int) error { return nil }) //nolint:staticcheck // nil ctx is part of the contract
	for i, err := range errs {
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
	}
	if errs := Collect(context.Background(), 2, 0, func(worker, i int) error { return nil }); len(errs) != 0 {
		t.Fatalf("n=0 returned %d errors", len(errs))
	}
}

// TestCollectSequentialPreCanceled: the workers=1 fast path reports the
// context error for every unstarted item.
func TestCollectSequentialPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	errs := Collect(ctx, 1, 3, func(worker, i int) error {
		t.Fatal("item ran under a canceled context")
		return nil
	})
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("item %d: %v, want context.Canceled", i, err)
		}
	}
}
