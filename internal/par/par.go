// Package par is the concurrency substrate for Flexile's scenario-parallel
// solve engine: a small deterministic worker pool used by the offline
// decomposition (per-scenario Benders subproblems, the ScenLoss precompute,
// the shared-cut separation scan) and by the experiment harness
// (per-topology fan-out).
//
// Determinism contract: every helper collects results by item index, so the
// caller observes identical output regardless of the worker count or the
// order in which workers drain the queue. With workers == 1 the loop runs
// inline on the calling goroutine — exactly the pre-parallel behavior, with
// no goroutines spawned.
//
// Failure contract: a panic inside fn never escapes the pool — it is
// recovered into a *PanicError carrying the worker id, item index and
// stack, and reported like any other item error, so one crashing scenario
// solve cannot take down the process. The fail-fast helpers (ForEach,
// ForEachWorker, Map) join every observed item error in ascending item
// order (errors.Join); Collect runs all items regardless of failures and
// hands back the full per-item error vector for callers that degrade
// per item instead of aborting.
package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"flexile/internal/obs"
)

// PanicError is a panic recovered inside a pool worker, with enough
// metadata to pin the crash to one work item.
type PanicError struct {
	// Worker is the worker id (0 ≤ Worker < workers) that hit the panic.
	Worker int
	// Item is the index of the work item whose fn panicked.
	Item int
	// Value is the value passed to panic.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("par: panic on item %d (worker %d): %v", e.Item, e.Worker, e.Value)
}

// Workers resolves a configured worker count: 0 means runtime.NumCPU()
// (use every core), negative or one means strictly sequential.
func Workers(n int) int {
	if n == 0 {
		return runtime.NumCPU()
	}
	if n < 1 {
		return 1
	}
	return n
}

// protect runs fn(worker, i), converting a panic into a *PanicError.
func protect(fn func(worker, i int) error, worker, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Worker: worker, Item: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(worker, i)
}

// ForEach runs fn(i) for every i in [0, n) across at most workers
// goroutines and returns the joined item errors in ascending item order
// (nil when every call succeeds). Error semantics match ForEachWorker.
func ForEach(workers, n int, fn func(i int) error) error {
	return ForEachWorker(workers, n, func(_, i int) error { return fn(i) })
}

// ForEachWorker is ForEach with the worker id (0 ≤ w < workers) passed to
// every call. Each worker id runs on a single goroutine, so per-worker
// scratch state (e.g. a worker-local LP instance) needs no locking.
//
// Stop guarantee on failure: the pool stops claiming new items once a
// failure is recorded, and re-checks the failure flag immediately before
// invoking fn, so an item claimed after a failing call returned on the
// same worker is never run, and any item whose check happens after the
// flag is set is skipped. Items already executing when the failure lands
// run to completion — at most workers−1 of them. Every error observed
// (including panics recovered as *PanicError) is reported, joined in
// ascending item order.
func ForEachWorker(workers, n int, fn func(worker, i int) error) error {
	workers = Workers(workers)
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := protect(fn, 0, i); err != nil {
				return errors.Join(err)
			}
		}
		return nil
	}
	var (
		next   atomic.Int64 // next item to claim
		failed atomic.Bool  // any error seen → stop claiming new items
		wg     sync.WaitGroup
	)
	errs := make([]error, n)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				// Re-check immediately before invoking fn: a failure
				// recorded between the claim above and this point skips
				// the item instead of running it.
				if failed.Load() {
					return
				}
				if err := protect(fn, worker, i); err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Map runs fn(i) for every i in [0, n) across at most workers goroutines
// and returns the results in item order. Error semantics match ForEach.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Collect runs fn(worker, i) for every i in [0, n) across at most workers
// goroutines and returns the per-item error vector: unlike the fail-fast
// helpers, an item failure (error or recovered panic) does not stop the
// remaining items — the caller decides per item whether to retry, degrade
// or abort. Only context cancellation stops the loop early: items never
// started are reported with the context error, so the caller can tell a
// skipped item from a failed one with errors.Is(err, ctx.Err()). A nil
// ctx is treated as context.Background().
func Collect(ctx context.Context, workers, n int, fn func(worker, i int) error) []error {
	if ctx == nil {
		ctx = context.Background()
	}
	errs := make([]error, n)
	if n <= 0 {
		return errs
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	// Pool accounting: one launch record up front, one item record per
	// executed fn (worker id + busy time). The obs collector is looked up
	// once; the per-item cost when metrics are off is a single nil check.
	col := obs.From(ctx)
	if col != nil {
		col.PoolLaunch(workers)
		inner := fn
		fn = func(worker, i int) error {
			start := time.Now()
			err := inner(worker, i)
			col.PoolItem(worker, time.Since(start).Nanoseconds())
			return err
		}
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				errs[i] = err
				continue
			}
			errs[i] = protect(fn, 0, i)
		}
		return errs
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue // mark every remaining claimed item
				}
				errs[i] = protect(fn, worker, i)
			}
		}(w)
	}
	wg.Wait()
	return errs
}
