// Package par is the concurrency substrate for Flexile's scenario-parallel
// solve engine: a small deterministic worker pool used by the offline
// decomposition (per-scenario Benders subproblems, the ScenLoss precompute,
// the shared-cut separation scan) and by the experiment harness
// (per-topology fan-out).
//
// Determinism contract: every helper collects results by item index, so the
// caller observes identical output regardless of the worker count or the
// order in which workers drain the queue. With workers == 1 the loop runs
// inline on the calling goroutine — exactly the pre-parallel behavior, with
// no goroutines spawned. When any item fails, the error reported is the one
// with the lowest item index, again independent of scheduling.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a configured worker count: 0 means runtime.NumCPU()
// (use every core), negative or one means strictly sequential.
func Workers(n int) int {
	if n == 0 {
		return runtime.NumCPU()
	}
	if n < 1 {
		return 1
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) across at most workers
// goroutines and returns the lowest-index error (nil when every call
// succeeds). After the first observed failure remaining items are skipped;
// items already in flight still finish.
func ForEach(workers, n int, fn func(i int) error) error {
	return ForEachWorker(workers, n, func(_, i int) error { return fn(i) })
}

// ForEachWorker is ForEach with the worker id (0 ≤ w < workers) passed to
// every call. Each worker id runs on a single goroutine, so per-worker
// scratch state (e.g. a worker-local LP instance) needs no locking.
func ForEachWorker(workers, n int, fn func(worker, i int) error) error {
	workers = Workers(workers)
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next   atomic.Int64 // next item to claim
		failed atomic.Bool  // any error seen → stop claiming new items
		wg     sync.WaitGroup
	)
	errs := make([]error, n)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(worker, i); err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn(i) for every i in [0, n) across at most workers goroutines
// and returns the results in item order. Error semantics match ForEach.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
