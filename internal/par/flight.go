package par

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Flight is a generic single-flight group: concurrent Do calls with the
// same key share one execution of fn, so a thundering herd of identical
// requests (the allocation server's cache misses under one network state)
// costs a single recomputation. Unlike caching, a Flight holds no state
// between flights — once the shared call returns, the key is forgotten.
//
// The failure contract matches the pool: a panic inside fn is recovered
// into a *PanicError (Worker and Item are -1: flights have neither) and
// returned as the call's error to the initiator and every sharer, so one
// poisoned computation can never strand waiters on a closed-over channel.
type Flight[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*flightCall[V]
}

type flightCall[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// InFlight reports how many distinct keys currently have a call executing —
// a point-in-time gauge for the serving layer's introspection endpoints.
func (f *Flight[K, V]) InFlight() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.m)
}

// Do executes fn under key, coalescing with any in-flight call for the same
// key. It returns fn's result and whether this caller shared another call's
// execution (true) or ran fn itself (false).
func (f *Flight[K, V]) Do(key K, fn func() (V, error)) (v V, err error, shared bool) {
	f.mu.Lock()
	if c, ok := f.m[key]; ok {
		f.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &flightCall[V]{done: make(chan struct{})}
	if f.m == nil {
		f.m = make(map[K]*flightCall[V])
	}
	f.m[key] = c
	f.mu.Unlock()

	func() {
		defer func() {
			if r := recover(); r != nil {
				c.err = &PanicError{Worker: -1, Item: -1, Value: r}
			}
		}()
		c.val, c.err = fn()
	}()

	f.mu.Lock()
	delete(f.m, key)
	f.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}

// DoDetached is Do with the execution detached from the callers: fn runs
// on its own goroutine and always runs to completion, even when every
// waiter gives up, so a client disconnect or deadline can never fail the
// shared computation other requests are riding (and fn's side effects —
// cache fills — land regardless). ctx bounds only this caller's wait: when
// it expires first, the call returns ctx.Err() while fn keeps running.
// shared reports whether this caller coalesced onto a flight another
// caller started.
func (f *Flight[K, V]) DoDetached(ctx context.Context, key K, fn func() (V, error)) (v V, err error, shared bool) {
	if ctx == nil {
		ctx = context.Background()
	}
	f.mu.Lock()
	c, ok := f.m[key]
	if !ok {
		c = &flightCall[V]{done: make(chan struct{})}
		if f.m == nil {
			f.m = make(map[K]*flightCall[V])
		}
		f.m[key] = c
		go func() {
			defer func() {
				if r := recover(); r != nil {
					c.err = &PanicError{Worker: -1, Item: -1, Value: r}
				}
				f.mu.Lock()
				delete(f.m, key)
				f.mu.Unlock()
				close(c.done)
			}()
			c.val, c.err = fn()
		}()
	}
	f.mu.Unlock()
	select {
	case <-c.done:
		return c.val, c.err, ok
	case <-ctx.Done():
		var zero V
		return zero, ctx.Err(), ok
	}
}

// Gate bounds how many goroutines may run a section concurrently — the
// allocation server uses one to keep cache-miss recomputations from
// oversubscribing the CPU when many distinct scenarios are queried at once.
//
// Beyond bounding, a Gate estimates: holders report their hold times via
// ObserveHold, an EWMA of which prices how long a new arrival should
// expect to queue (EstimatedWait). The serving layer's deadline-aware
// admission control sheds requests whose predicted wait already exceeds
// their deadline instead of letting them queue to certain failure.
type Gate struct {
	slots   chan struct{}
	waiters atomic.Int64
	// ewmaHold is an exponentially weighted moving average (α = 1/8) of
	// observed hold durations, in nanoseconds. 0 until the first
	// observation, which reads as "no history: admit optimistically".
	ewmaHold atomic.Int64
}

// NewGate returns a gate admitting n concurrent holders; n follows the
// Workers convention (0 = NumCPU, negative = 1).
func NewGate(n int) *Gate {
	return &Gate{slots: make(chan struct{}, Workers(n))}
}

// Enter blocks until a slot is free or ctx is done, returning ctx's error
// in the latter case. A nil ctx is context.Background().
func (g *Gate) Enter(ctx context.Context) error {
	select {
	case g.slots <- struct{}{}:
		return nil
	default:
	}
	if ctx == nil {
		ctx = context.Background()
	}
	g.waiters.Add(1)
	defer g.waiters.Add(-1)
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TryEnter acquires a slot without blocking, reporting whether it
// succeeded. Callers that fall back to Enter after a failed TryEnter can
// count how often the gate actually made them queue.
func (g *Gate) TryEnter() bool {
	select {
	case g.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// Leave releases a slot acquired by Enter or a successful TryEnter.
func (g *Gate) Leave() { <-g.slots }

// InUse reports how many slots are currently held.
func (g *Gate) InUse() int { return len(g.slots) }

// Cap reports the gate's total slot count.
func (g *Gate) Cap() int { return cap(g.slots) }

// Waiters reports how many Enter calls are currently blocked on a slot.
func (g *Gate) Waiters() int { return int(g.waiters.Load()) }

// ObserveHold folds one hold duration into the gate's moving average of
// service times. Holders call it just before Leave; the serving layer
// wraps its recompute section with it so EstimatedWait tracks the live
// cost of a solve.
func (g *Gate) ObserveHold(d time.Duration) {
	n := d.Nanoseconds()
	if n < 0 {
		return
	}
	for {
		old := g.ewmaHold.Load()
		next := n
		if old != 0 {
			next = old + (n-old)/8
		}
		if g.ewmaHold.CompareAndSwap(old, next) {
			return
		}
	}
}

// EstimatedWait predicts how long a new arrival would wait for a slot:
// zero when a slot is free, otherwise its queue position (current waiters
// plus itself, spread across the slots) times the average hold duration.
// With no hold history the estimate is zero — admit optimistically and
// let the first observations calibrate it. The answer is an estimate, not
// a bound: admission control uses it to shed on arrival, not to promise
// latency.
func (g *Gate) EstimatedWait() time.Duration {
	if len(g.slots) < cap(g.slots) {
		return 0
	}
	hold := g.ewmaHold.Load()
	if hold == 0 {
		return 0
	}
	position := g.waiters.Load() + 1
	rounds := (position + int64(cap(g.slots)) - 1) / int64(cap(g.slots))
	return time.Duration(rounds * hold)
}
