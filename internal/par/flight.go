package par

import (
	"context"
	"sync"
)

// Flight is a generic single-flight group: concurrent Do calls with the
// same key share one execution of fn, so a thundering herd of identical
// requests (the allocation server's cache misses under one network state)
// costs a single recomputation. Unlike caching, a Flight holds no state
// between flights — once the shared call returns, the key is forgotten.
//
// The failure contract matches the pool: a panic inside fn is recovered
// into a *PanicError (Worker and Item are -1: flights have neither) and
// returned as the call's error to the initiator and every sharer, so one
// poisoned computation can never strand waiters on a closed-over channel.
type Flight[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*flightCall[V]
}

type flightCall[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// InFlight reports how many distinct keys currently have a call executing —
// a point-in-time gauge for the serving layer's introspection endpoints.
func (f *Flight[K, V]) InFlight() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.m)
}

// Do executes fn under key, coalescing with any in-flight call for the same
// key. It returns fn's result and whether this caller shared another call's
// execution (true) or ran fn itself (false).
func (f *Flight[K, V]) Do(key K, fn func() (V, error)) (v V, err error, shared bool) {
	f.mu.Lock()
	if c, ok := f.m[key]; ok {
		f.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &flightCall[V]{done: make(chan struct{})}
	if f.m == nil {
		f.m = make(map[K]*flightCall[V])
	}
	f.m[key] = c
	f.mu.Unlock()

	func() {
		defer func() {
			if r := recover(); r != nil {
				c.err = &PanicError{Worker: -1, Item: -1, Value: r}
			}
		}()
		c.val, c.err = fn()
	}()

	f.mu.Lock()
	delete(f.m, key)
	f.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}

// Gate bounds how many goroutines may run a section concurrently — the
// allocation server uses one to keep cache-miss recomputations from
// oversubscribing the CPU when many distinct scenarios are queried at once.
type Gate struct {
	slots chan struct{}
}

// NewGate returns a gate admitting n concurrent holders; n follows the
// Workers convention (0 = NumCPU, negative = 1).
func NewGate(n int) *Gate {
	return &Gate{slots: make(chan struct{}, Workers(n))}
}

// Enter blocks until a slot is free or ctx is done, returning ctx's error
// in the latter case. A nil ctx is context.Background().
func (g *Gate) Enter(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TryEnter acquires a slot without blocking, reporting whether it
// succeeded. Callers that fall back to Enter after a failed TryEnter can
// count how often the gate actually made them queue.
func (g *Gate) TryEnter() bool {
	select {
	case g.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// Leave releases a slot acquired by Enter or a successful TryEnter.
func (g *Gate) Leave() { <-g.slots }

// InUse reports how many slots are currently held.
func (g *Gate) InUse() int { return len(g.slots) }

// Cap reports the gate's total slot count.
func (g *Gate) Cap() int { return cap(g.slots) }
