package par

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFlightCoalesces(t *testing.T) {
	var f Flight[string, int]
	var execs atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})

	const callers = 8
	var wg sync.WaitGroup
	results := make([]int, callers)
	sharedCount := atomic.Int64{}
	// One caller starts the flight and blocks in fn; the rest must share it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, err, _ := f.Do("k", func() (int, error) {
			close(started)
			<-release
			execs.Add(1)
			return 42, nil
		})
		if err != nil {
			t.Errorf("initiator: %v", err)
		}
		results[0] = v
	}()
	<-started
	for i := 1; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, shared := f.Do("k", func() (int, error) {
				execs.Add(1)
				return 42, nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			if shared {
				sharedCount.Add(1)
			}
			results[i] = v
		}(i)
	}
	// Give the sharers a moment to park on the in-flight call, then release.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	for i, v := range results {
		if v != 42 {
			t.Errorf("caller %d got %d, want 42", i, v)
		}
	}
	// Callers that arrived while the first was blocked shared its execution;
	// stragglers that arrived after completion ran their own. Either way the
	// initiator executed exactly once and at least the parked callers shared.
	if execs.Load() > int64(callers)-sharedCount.Load() {
		t.Errorf("%d executions with %d shared callers", execs.Load(), sharedCount.Load())
	}
	if sharedCount.Load() == 0 {
		t.Error("no caller shared the blocked flight")
	}
}

func TestFlightDistinctKeysIndependent(t *testing.T) {
	var f Flight[int, int]
	var wg sync.WaitGroup
	var execs atomic.Int64
	for k := 0; k < 10; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			v, err, _ := f.Do(k, func() (int, error) {
				execs.Add(1)
				return k * k, nil
			})
			if err != nil || v != k*k {
				t.Errorf("key %d: got (%d, %v)", k, v, err)
			}
		}(k)
	}
	wg.Wait()
	if execs.Load() != 10 {
		t.Errorf("distinct keys executed %d times, want 10", execs.Load())
	}
}

func TestFlightError(t *testing.T) {
	var f Flight[string, int]
	boom := errors.New("boom")
	_, err, shared := f.Do("k", func() (int, error) { return 0, boom })
	if !errors.Is(err, boom) || shared {
		t.Fatalf("got (%v, shared=%v), want boom unshared", err, shared)
	}
	// The key is forgotten after the flight: a retry runs fn again.
	v, err, _ := f.Do("k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry got (%d, %v), want 7", v, err)
	}
}

func TestFlightPanicBecomesError(t *testing.T) {
	var f Flight[string, int]
	_, err, _ := f.Do("k", func() (int, error) { panic("kaboom") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *PanicError", err)
	}
	if pe.Value != "kaboom" {
		t.Errorf("panic value %v, want kaboom", pe.Value)
	}
	// The poisoned key must not be stuck.
	v, err, _ := f.Do("k", func() (int, error) { return 1, nil })
	if err != nil || v != 1 {
		t.Fatalf("after panic got (%d, %v), want 1", v, err)
	}
}

func TestGateBoundsConcurrency(t *testing.T) {
	g := NewGate(2)
	var cur, max atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.Enter(context.Background()); err != nil {
				t.Errorf("Enter: %v", err)
				return
			}
			n := cur.Add(1)
			for {
				m := max.Load()
				if n <= m || max.CompareAndSwap(m, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			g.Leave()
		}()
	}
	wg.Wait()
	if got := max.Load(); got > 2 {
		t.Errorf("observed %d concurrent holders, gate admits 2", got)
	}
}

func TestGateEnterCancelled(t *testing.T) {
	g := NewGate(1)
	if err := g.Enter(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := g.Enter(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Enter on full gate with cancelled ctx: %v, want Canceled", err)
	}
	g.Leave()
	if err := g.Enter(nil); err != nil {
		t.Fatalf("Enter with nil ctx after Leave: %v", err)
	}
}

func TestGateIntrospection(t *testing.T) {
	g := NewGate(2)
	if g.Cap() != 2 || g.InUse() != 0 {
		t.Fatalf("fresh gate: cap %d in-use %d", g.Cap(), g.InUse())
	}
	if !g.TryEnter() {
		t.Fatal("TryEnter on empty gate failed")
	}
	if !g.TryEnter() {
		t.Fatal("second TryEnter failed")
	}
	if g.InUse() != 2 {
		t.Fatalf("InUse = %d, want 2", g.InUse())
	}
	if g.TryEnter() {
		t.Fatal("TryEnter on full gate succeeded")
	}
	g.Leave()
	if g.InUse() != 1 {
		t.Fatalf("InUse after Leave = %d, want 1", g.InUse())
	}
	if !g.TryEnter() {
		t.Fatal("TryEnter after Leave failed")
	}
	g.Leave()
	g.Leave()
}

func TestFlightInFlight(t *testing.T) {
	var f Flight[int, int]
	if f.InFlight() != 0 {
		t.Fatalf("fresh flight InFlight = %d", f.InFlight())
	}
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		f.Do(1, func() (int, error) {
			close(started)
			<-release
			return 1, nil
		})
	}()
	<-started
	if f.InFlight() != 1 {
		t.Fatalf("InFlight during call = %d, want 1", f.InFlight())
	}
	close(release)
	<-done
	if f.InFlight() != 0 {
		t.Fatalf("InFlight after call = %d, want 0", f.InFlight())
	}
}

func TestFlightDoDetachedCompletesAfterWaiterLeaves(t *testing.T) {
	var f Flight[string, int]
	started := make(chan struct{})
	release := make(chan struct{})
	finished := make(chan struct{})

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel() // the only waiter abandons the flight
	}()
	_, err, shared := f.DoDetached(ctx, "k", func() (int, error) {
		close(started)
		<-release
		defer close(finished)
		return 42, nil
	})
	if !errors.Is(err, context.Canceled) || shared {
		t.Fatalf("abandoned waiter got (%v, shared=%v), want Canceled unshared", err, shared)
	}
	<-started
	// The detached execution must still run to completion.
	close(release)
	select {
	case <-finished:
	case <-time.After(time.Second):
		t.Fatal("detached fn did not complete after the waiter left")
	}
	// And the key must be released for later calls.
	deadline := time.Now().Add(time.Second)
	for f.InFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("key still in flight after detached completion")
		}
		time.Sleep(time.Millisecond)
	}
	v, err, _ := f.DoDetached(context.Background(), "k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("follow-up call got (%d, %v), want 7", v, err)
	}
}

func TestFlightDoDetachedCancelledWaiterDoesNotFailSharers(t *testing.T) {
	var f Flight[string, int]
	started := make(chan struct{})
	release := make(chan struct{})

	// Initiator with a cancelling context.
	initCtx, cancel := context.WithCancel(context.Background())
	initDone := make(chan error, 1)
	go func() {
		_, err, _ := f.DoDetached(initCtx, "k", func() (int, error) {
			close(started)
			<-release
			return 42, nil
		})
		initDone <- err
	}()
	<-started

	// A patient sharer rides the same flight.
	shareDone := make(chan struct{})
	var shareVal int
	var shareErr error
	var shareShared bool
	go func() {
		defer close(shareDone)
		shareVal, shareErr, shareShared = f.DoDetached(context.Background(), "k", func() (int, error) {
			t.Error("sharer executed fn itself")
			return 0, nil
		})
	}()
	// Let the sharer park, then cancel the initiator.
	time.Sleep(5 * time.Millisecond)
	cancel()
	if err := <-initDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("initiator err = %v, want Canceled", err)
	}
	close(release)
	<-shareDone
	if shareErr != nil || shareVal != 42 || !shareShared {
		t.Fatalf("sharer got (%d, %v, shared=%v), want (42, nil, true)", shareVal, shareErr, shareShared)
	}
}

func TestFlightDoDetachedPanicBecomesError(t *testing.T) {
	var f Flight[string, int]
	_, err, shared := f.DoDetached(context.Background(), "k", func() (int, error) { panic("kaboom") })
	var pe *PanicError
	if !errors.As(err, &pe) || shared {
		t.Fatalf("got (%v, shared=%v), want *PanicError unshared", err, shared)
	}
	v, err, _ := f.DoDetached(nil, "k", func() (int, error) { return 1, nil })
	if err != nil || v != 1 {
		t.Fatalf("after panic got (%d, %v), want 1", v, err)
	}
}

func TestGateWaitersAndEstimate(t *testing.T) {
	g := NewGate(1)
	if g.EstimatedWait() != 0 {
		t.Fatal("empty gate estimates nonzero wait")
	}
	if !g.TryEnter() {
		t.Fatal("TryEnter failed")
	}
	// Full gate but no hold history: still estimates zero (optimistic).
	if g.EstimatedWait() != 0 {
		t.Fatal("no-history estimate must be zero")
	}
	g.ObserveHold(80 * time.Millisecond)
	if est := g.EstimatedWait(); est != 80*time.Millisecond {
		t.Fatalf("estimate with 0 waiters = %v, want 80ms (one EWMA sample)", est)
	}

	// Park a waiter; the estimate scales with queue depth.
	entered := make(chan struct{})
	go func() {
		g.Enter(context.Background())
		close(entered)
	}()
	deadline := time.Now().Add(time.Second)
	for g.Waiters() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never registered")
		}
		time.Sleep(time.Millisecond)
	}
	if est := g.EstimatedWait(); est != 160*time.Millisecond {
		t.Fatalf("estimate with 1 waiter = %v, want 160ms", est)
	}
	g.Leave()
	<-entered
	if g.Waiters() != 0 {
		t.Fatalf("waiters after entry = %d, want 0", g.Waiters())
	}
	g.Leave()

	// EWMA folds new observations at α=1/8.
	g.ObserveHold(160 * time.Millisecond)
	g.TryEnter()
	want := 80*time.Millisecond + (160*time.Millisecond-80*time.Millisecond)/8
	if est := g.EstimatedWait(); est != want {
		t.Fatalf("EWMA estimate = %v, want %v", est, want)
	}
	g.Leave()
}
