package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolve(t *testing.T) {
	if got := Workers(0); got != runtime.NumCPU() {
		t.Fatalf("Workers(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(-3); got != 1 {
		t.Fatalf("Workers(-3) = %d, want 1", got)
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d, want 7", got)
	}
}

// Every item must run exactly once, for any worker count.
func TestForEachCoversAllItems(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		n := 137
		counts := make([]atomic.Int32, n)
		err := ForEach(workers, n, func(i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, c)
			}
		}
	}
}

// Every observed failure must be reported (errors.Join), and the
// lowest-index failure is always among them regardless of scheduling:
// with sequential claiming, item 10 is claimed before any item > 20.
func TestForEachReportsAllObservedErrors(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		wantErr := errors.New("boom-10")
		err := ForEach(workers, 64, func(i int) error {
			if i == 10 {
				return wantErr
			}
			if i > 20 {
				return fmt.Errorf("boom-%d", i)
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: want error", workers)
		}
		if !errors.Is(err, wantErr) {
			t.Fatalf("workers=%d: joined error %v does not include lowest-index failure %v", workers, err, wantErr)
		}
	}
}

// A panic in fn must surface as a *PanicError with item metadata, not
// crash the process, for both the inline and the pooled paths.
func TestForEachRecoversPanics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEach(workers, 16, func(i int) error {
			if i == 5 {
				panic("kaboom")
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: want *PanicError, got %v", workers, err)
		}
		if pe.Item != 5 {
			t.Fatalf("workers=%d: panic attributed to item %d, want 5", workers, pe.Item)
		}
		if pe.Value != "kaboom" || len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: panic metadata incomplete: %+v", workers, pe)
		}
	}
}

// After a failing call returns, the failing worker must never run another
// item: the flag is stored before the next claim on that goroutine, and
// every worker re-checks the flag immediately before invoking fn.
func TestForEachStopsClaimingAfterFailure(t *testing.T) {
	var ran atomic.Int32
	boom := errors.New("boom")
	err := ForEachWorker(1, 100, func(_, i int) error {
		ran.Add(1)
		if i == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
	if got := ran.Load(); got != 3 {
		t.Fatalf("sequential: %d items ran after failure at item 2, want 3", got)
	}
	// Pooled: a failure on item 0 stops the sweep long before item n−1;
	// in-flight items (at most workers−1) may still finish.
	workers := 4
	ran.Store(0)
	err = ForEachWorker(workers, 10000, func(_, i int) error {
		if i == 0 {
			return boom
		}
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("pooled: got %v", err)
	}
	if got := ran.Load(); got >= 10000-1 {
		t.Fatalf("pooled: %d items still ran after an immediate failure", got)
	}
}

// Collect must run every item despite failures, attribute each error to
// its item, and recover panics into per-item *PanicError values.
func TestCollectRunsAllItems(t *testing.T) {
	for _, workers := range []int{1, 4} {
		n := 50
		var ran atomic.Int32
		errs := Collect(context.Background(), workers, n, func(_, i int) error {
			ran.Add(1)
			switch {
			case i%10 == 3:
				return fmt.Errorf("fail-%d", i)
			case i == 17:
				panic("pow")
			}
			return nil
		})
		if got := ran.Load(); got != int32(n) {
			t.Fatalf("workers=%d: %d of %d items ran", workers, got, n)
		}
		for i, err := range errs {
			switch {
			case i == 17:
				var pe *PanicError
				if !errors.As(err, &pe) || pe.Item != 17 {
					t.Fatalf("workers=%d: item 17: want PanicError, got %v", workers, err)
				}
			case i%10 == 3:
				if err == nil || err.Error() != fmt.Sprintf("fail-%d", i) {
					t.Fatalf("workers=%d: item %d: got %v", workers, i, err)
				}
			default:
				if err != nil {
					t.Fatalf("workers=%d: item %d: unexpected error %v", workers, i, err)
				}
			}
		}
	}
}

// Collect under a canceled context must mark unstarted items with the
// context error instead of running them.
func TestCollectHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	errs := Collect(ctx, 4, 32, func(_, i int) error {
		ran.Add(1)
		return nil
	})
	if got := ran.Load(); got != 0 {
		t.Fatalf("%d items ran under a pre-canceled context", got)
	}
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("item %d: got %v, want context.Canceled", i, err)
		}
	}
}

// ForEachWorker must hand each goroutine a stable worker id within range.
func TestForEachWorkerIDsInRange(t *testing.T) {
	workers := 4
	err := ForEachWorker(workers, 100, func(w, i int) error {
		if w < 0 || w >= workers {
			return fmt.Errorf("worker id %d out of range", w)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Map results must land in item order for any worker count.
func TestMapDeterministicOrder(t *testing.T) {
	want, err := Map(1, 50, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := Map(workers, 50, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: index %d: got %d want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := ForEach(8, 0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}
