package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolve(t *testing.T) {
	if got := Workers(0); got != runtime.NumCPU() {
		t.Fatalf("Workers(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(-3); got != 1 {
		t.Fatalf("Workers(-3) = %d, want 1", got)
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d, want 7", got)
	}
}

// Every item must run exactly once, for any worker count.
func TestForEachCoversAllItems(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		n := 137
		counts := make([]atomic.Int32, n)
		err := ForEach(workers, n, func(i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, c)
			}
		}
	}
}

// The reported error must be the lowest-index failure regardless of
// scheduling; later items may be skipped but earlier successes must not
// affect the choice.
func TestForEachLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		wantErr := errors.New("boom-10")
		err := ForEach(workers, 64, func(i int) error {
			if i == 10 {
				return wantErr
			}
			if i > 20 {
				return fmt.Errorf("boom-%d", i)
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: want error", workers)
		}
		// Item 10 always runs before any item > 20 can be the lowest
		// failure: with sequential claiming, index 10 is claimed before 21.
		if err != wantErr && err.Error() > wantErr.Error() {
			t.Fatalf("workers=%d: got %v, want lowest-index error %v", workers, err, wantErr)
		}
	}
}

// ForEachWorker must hand each goroutine a stable worker id within range.
func TestForEachWorkerIDsInRange(t *testing.T) {
	workers := 4
	err := ForEachWorker(workers, 100, func(w, i int) error {
		if w < 0 || w >= workers {
			return fmt.Errorf("worker id %d out of range", w)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Map results must land in item order for any worker count.
func TestMapDeterministicOrder(t *testing.T) {
	want, err := Map(1, 50, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := Map(workers, 50, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: index %d: got %d want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := ForEach(8, 0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}
