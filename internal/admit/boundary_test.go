package admit

import (
	"math"
	"strconv"
	"testing"
	"time"
)

// TestParseDeadlineGrammar is the exhaustive grammar table for the
// X-Request-Deadline header: bare integer milliseconds (with sign,
// leading zeros, whitespace), Go duration strings (units, fractions,
// compounds), and every rejection class — negatives, garbage, inner
// whitespace, and values that would overflow time.Duration's int64
// nanoseconds. The overflow rows pin a real bug: a huge millisecond
// count used to wrap silently into an arbitrary deadline instead of
// being rejected.
func TestParseDeadlineGrammar(t *testing.T) {
	maxMs := int64(math.MaxInt64) / int64(time.Millisecond) // 9223372036854
	cases := []struct {
		name string
		in   string
		def  time.Duration
		want time.Duration
		bad  bool
	}{
		// Empty → default.
		{"empty uses default", "", 250 * time.Millisecond, 250 * time.Millisecond, false},
		{"empty with zero default", "", 0, 0, false},
		{"whitespace-only uses default", "   ", time.Second, time.Second, false},

		// Bare integers are milliseconds.
		{"bare int", "100", 0, 100 * time.Millisecond, false},
		{"bare zero overrides default", "0", time.Second, 0, false},
		{"negative zero is zero", "-0", time.Second, 0, false},
		{"explicit plus sign", "+100", 0, 100 * time.Millisecond, false},
		{"leading zeros", "00100", 0, 100 * time.Millisecond, false},
		{"surrounding whitespace trimmed", "  100  ", 0, 100 * time.Millisecond, false},
		{"tab and newline trimmed", "\t100\n", 0, 100 * time.Millisecond, false},
		{"largest representable ms", strconv.FormatInt(maxMs, 10), 0, time.Duration(maxMs) * time.Millisecond, false},

		// Duration strings.
		{"milliseconds unit", "250ms", 0, 250 * time.Millisecond, false},
		{"seconds unit", "2s", 0, 2 * time.Second, false},
		{"microseconds unit", "1500us", 0, 1500 * time.Microsecond, false},
		{"zero with unit", "0ms", time.Second, 0, false},
		{"fractional", "1.5s", 0, 1500 * time.Millisecond, false},
		{"compound", "1h30m", 0, 90 * time.Minute, false},
		{"unit string trimmed", " 250ms ", 0, 250 * time.Millisecond, false},

		// Negatives.
		{"negative int", "-5", 0, 0, true},
		{"negative duration", "-5ms", 0, 0, true},
		{"negative compound", "-1h30m", 0, 0, true},

		// Overflow: ms counts that wrap int64 nanoseconds, at and past
		// the boundary, and ints too large for int64 at all.
		{"ms overflow boundary", strconv.FormatInt(maxMs+1, 10), 0, 0, true},
		{"ms overflow large", "10000000000000000", 0, 0, true},
		{"int64 overflow", "99999999999999999999999", 0, 0, true},
		{"duration overflow", "999999999h", 0, 0, true},

		// Garbage.
		{"words", "soon", 0, 0, true},
		{"number with inner space", "100 ms", 0, 0, true},
		{"hex", "0x64", 0, 0, true},
		{"scientific notation", "1e3", 0, 0, true},
		{"unitless float", "1.5", 0, 0, true},
		{"trailing junk", "100ms!", 0, 0, true},
		{"empty unit", "100xs", 0, 0, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := ParseDeadline(c.in, c.def)
			if c.bad {
				if err == nil {
					t.Fatalf("ParseDeadline(%q) = %v, want error", c.in, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseDeadline(%q): %v", c.in, err)
			}
			if got != c.want {
				t.Fatalf("ParseDeadline(%q, %v) = %v, want %v", c.in, c.def, got, c.want)
			}
			if got < 0 {
				t.Fatalf("ParseDeadline(%q) produced a negative deadline %v", c.in, got)
			}
		})
	}
}

// TestQuotaEvictionBoundaries pins the full-bucket eviction contract at
// its edges: only buckets that have refilled to capacity are forgotten,
// a table of all-active tenants grows one past the bound rather than
// forgetting a live limiter, and partially refilled buckets survive.
func TestQuotaEvictionBoundaries(t *testing.T) {
	t.Run("all tenants mid-burst: nothing evicted, table grows past bound", func(t *testing.T) {
		clk := newFakeClock()
		q := NewQuota(QuotaConfig{Rate: 1, Burst: 2, MaxTenants: 3, Clock: clk.Now})
		for _, tenant := range []string{"a", "b", "c"} {
			q.Allow(tenant) // one token spent: mid-burst, not evictable
		}
		q.Allow("d")
		if n := q.Tenants(); n != 4 {
			t.Fatalf("tracked %d tenants, want 4 (grow past bound, never drop an active limiter)", n)
		}
		// The mid-burst tenants kept their spent-token state: one more
		// request each drains them while a forgotten tenant would have
		// restarted with a full burst of 2.
		for _, tenant := range []string{"a", "b", "c"} {
			if ok, _ := q.Allow(tenant); !ok {
				t.Fatalf("tenant %q refused its second burst token", tenant)
			}
			if ok, _ := q.Allow(tenant); ok {
				t.Fatalf("tenant %q admitted past its burst: its bucket was reset by eviction", tenant)
			}
		}
	})

	t.Run("partial refill survives, exact refill is evicted", func(t *testing.T) {
		clk := newFakeClock()
		q := NewQuota(QuotaConfig{Rate: 1, Burst: 2, MaxTenants: 2, Clock: clk.Now})
		q.Allow("partial")
		q.Allow("full")
		// One second at 1 rps refills one token: "partial" (spent 1 of
		// burst 2... both spent exactly 1) — distinguish by draining
		// "partial" completely first.
		q.Allow("partial") // now at 0 tokens
		clk.Advance(time.Second)
		// "full" refills to 2/2 (evictable); "partial" to 1/2 (not).
		q.Allow("newcomer")
		if n := q.Tenants(); n != 2 {
			t.Fatalf("tracked %d tenants, want 2 (evicted exactly the refilled bucket)", n)
		}
		// "partial" was preserved with its 1 remaining token...
		if ok, _ := q.Allow("partial"); !ok {
			t.Fatal("surviving tenant refused its refilled token")
		}
		if ok, _ := q.Allow("partial"); ok {
			t.Fatal("surviving tenant admitted past its refill: state was lost")
		}
		// ...and "full" restarts with a complete burst, which is exactly
		// why forgetting it was lossless.
		if ok, _ := q.Allow("full"); !ok {
			t.Fatal("evicted tenant refused on return")
		}
		if ok, _ := q.Allow("full"); !ok {
			t.Fatal("returning tenant did not restart with a full burst")
		}
	})

	t.Run("burst below one clamps to one", func(t *testing.T) {
		clk := newFakeClock()
		q := NewQuota(QuotaConfig{Rate: 1, Burst: 0.25, Clock: clk.Now})
		if ok, _ := q.Allow("x"); !ok {
			t.Fatal("sub-token burst never admits anything")
		}
		if ok, _ := q.Allow("x"); ok {
			t.Fatal("clamped burst of 1 admitted twice")
		}
	})

	t.Run("retry hint covers the token deficit", func(t *testing.T) {
		clk := newFakeClock()
		q := NewQuota(QuotaConfig{Rate: 2, Burst: 1, Clock: clk.Now})
		q.Allow("x")
		ok, retry := q.Allow("x")
		if ok {
			t.Fatal("dry bucket admitted")
		}
		if retry <= 0 || retry > 500*time.Millisecond {
			t.Fatalf("retry hint %v, want (0, 500ms] at 2 rps", retry)
		}
	})
}
