// Package admit implements the serving layer's overload-resilience
// primitives: per-tenant token-bucket quotas, a consecutive-failure
// circuit breaker, and request-deadline parsing. The allocation server
// (internal/serve) composes them in front of its recompute path so that
// overload degrades service predictably — rejected early with a
// Retry-After hint, or answered from a stale copy marked degraded —
// instead of melting into unbounded queueing (DESIGN.md §13).
//
// Every type takes an injectable clock so tests drive time explicitly;
// the zero Clock falls back to time.Now. All types are safe for
// concurrent use.
package admit

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Clock supplies the current time; nil means time.Now. Injectable so the
// quota and breaker tests are deterministic.
type Clock func() time.Time

func (c Clock) now() time.Time {
	if c == nil {
		return time.Now()
	}
	return c()
}

// --- request deadlines ---

// ParseDeadline interprets the X-Request-Deadline header value: a Go
// duration string ("250ms", "2s") or a bare non-negative integer of
// milliseconds. Empty falls back to def. A parsed or default deadline of
// zero means "no deadline" — the request is never shed on predicted wait.
func ParseDeadline(header string, def time.Duration) (time.Duration, error) {
	header = strings.TrimSpace(header)
	if header == "" {
		return def, nil
	}
	if ms, err := strconv.Atoi(header); err == nil {
		if ms < 0 {
			return 0, fmt.Errorf("admit: negative deadline %dms", ms)
		}
		// time.Duration is int64 nanoseconds; a huge millisecond count
		// would overflow the multiplication silently, wrapping to an
		// arbitrary (possibly negative, possibly tiny) deadline.
		if int64(ms) > math.MaxInt64/int64(time.Millisecond) {
			return 0, fmt.Errorf("admit: deadline %dms overflows", ms)
		}
		return time.Duration(ms) * time.Millisecond, nil
	}
	d, err := time.ParseDuration(header)
	if err != nil {
		return 0, fmt.Errorf("admit: bad deadline %q: want a duration or integer milliseconds", header)
	}
	if d < 0 {
		return 0, fmt.Errorf("admit: negative deadline %v", d)
	}
	return d, nil
}

// RetryAfterSeconds rounds a backoff hint up to whole seconds for the
// Retry-After response header, with a floor of 1 so clients never retry
// in a hot loop.
func RetryAfterSeconds(d time.Duration) int {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		return 1
	}
	return s
}

// --- per-tenant token-bucket quotas ---

// QuotaConfig sizes the per-tenant token buckets.
type QuotaConfig struct {
	// Rate is the steady-state request rate each tenant may sustain, in
	// requests per second. Rate <= 0 disables quota enforcement entirely
	// (NewQuota returns nil).
	Rate float64
	// Burst is the bucket depth — how many requests a tenant may issue
	// back-to-back after idling. Values below 1 are clamped to 1.
	Burst float64
	// MaxTenants bounds how many tenant buckets are tracked at once
	// (default 1024). Tenants beyond the bound evict refilled buckets,
	// which is lossless: a full bucket restarts full.
	MaxTenants int
	// Clock is the time source; nil means time.Now.
	Clock Clock
}

// Quota enforces per-tenant token-bucket admission. Tenants are keyed by
// the caller-supplied name (the X-Tenant header); the empty name is the
// shared default pool, so anonymous traffic collectively gets one
// tenant's fair share instead of a bucket per connection.
type Quota struct {
	cfg QuotaConfig

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewQuota returns a quota enforcer, or nil when cfg.Rate <= 0 — a nil
// *Quota admits everything, so callers can thread it unconditionally.
func NewQuota(cfg QuotaConfig) *Quota {
	if cfg.Rate <= 0 {
		return nil
	}
	if cfg.Burst < 1 {
		cfg.Burst = 1
	}
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = 1024
	}
	return &Quota{cfg: cfg, buckets: make(map[string]*bucket)}
}

// Allow spends one token from tenant's bucket. When the bucket is empty
// it reports false and how long until the next token accrues — the
// Retry-After hint.
func (q *Quota) Allow(tenant string) (ok bool, retryAfter time.Duration) {
	if q == nil {
		return true, 0
	}
	now := q.cfg.Clock.now()
	q.mu.Lock()
	defer q.mu.Unlock()
	b, found := q.buckets[tenant]
	if !found {
		if len(q.buckets) >= q.cfg.MaxTenants {
			q.evictFull(now)
		}
		b = &bucket{tokens: q.cfg.Burst, last: now}
		q.buckets[tenant] = b
	} else {
		b.refill(now, q.cfg)
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / q.cfg.Rate
	return false, time.Duration(need * float64(time.Second))
}

// Tenants reports how many tenant buckets are currently tracked.
func (q *Quota) Tenants() int {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buckets)
}

func (b *bucket) refill(now time.Time, cfg QuotaConfig) {
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * cfg.Rate
		if b.tokens > cfg.Burst {
			b.tokens = cfg.Burst
		}
	}
	b.last = now
}

// evictFull drops every bucket that has refilled to capacity — forgetting
// a full bucket is lossless because a new bucket starts full. Called with
// the lock held when the tenant table is at its bound; if every tracked
// tenant is mid-burst nothing is evicted and the table grows one past the
// bound, which is the correct bias (never forget an active limiter).
func (q *Quota) evictFull(now time.Time) {
	for name, b := range q.buckets {
		b.refill(now, q.cfg)
		if b.tokens >= q.cfg.Burst {
			delete(q.buckets, name)
		}
	}
}

// --- circuit breaker ---

// BreakerState is the classic three-state breaker automaton.
type BreakerState int32

const (
	// BreakerClosed is the healthy state: every call proceeds.
	BreakerClosed BreakerState = iota
	// BreakerOpen short-circuits every call until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits exactly one probe call; its outcome decides
	// between closing (success) and re-opening (failure).
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// BreakerConfig tunes a Breaker.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that trips the breaker.
	// Threshold <= 0 disables the breaker (NewBreaker returns nil).
	Threshold int
	// Cooldown is how long the breaker stays open before admitting a
	// half-open probe. 0 defaults to 5s.
	Cooldown time.Duration
	// Clock is the time source; nil means time.Now.
	Clock Clock
}

// Breaker is a consecutive-failure circuit breaker: Threshold failures in
// a row trip it open, a cooldown later one probe is admitted, and the
// probe's outcome closes or re-opens it. A nil *Breaker admits everything
// and ignores outcome reports, so callers thread it unconditionally.
type Breaker struct {
	cfg BreakerConfig

	mu          sync.Mutex
	state       BreakerState
	consecutive int
	openedAt    time.Time
	probing     bool
	trips       int64
}

// NewBreaker returns a breaker, or nil when cfg.Threshold <= 0.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Threshold <= 0 {
		return nil
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 5 * time.Second
	}
	return &Breaker{cfg: cfg}
}

// Allow reports whether a call may proceed. While open it reports false
// with the time remaining until a probe will be admitted; when the
// cooldown has elapsed it transitions to half-open and admits exactly one
// probe (subsequent calls are refused until Success or Failure resolves
// it).
func (b *Breaker) Allow() (ok bool, retryAfter time.Duration) {
	if b == nil {
		return true, 0
	}
	now := b.cfg.Clock.now()
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, 0
	case BreakerOpen:
		if remaining := b.openedAt.Add(b.cfg.Cooldown).Sub(now); remaining > 0 {
			return false, remaining
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true, 0
	default: // BreakerHalfOpen
		if b.probing {
			return false, b.cfg.Cooldown
		}
		b.probing = true
		return true, 0
	}
}

// Success reports a successful call: any state returns to closed and the
// consecutive-failure count resets.
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.consecutive = 0
	b.probing = false
}

// Failure reports a failed call and returns true when this failure
// tripped the breaker open (the closed→open or half-open→open edge), so
// the caller can count and log trips exactly once.
func (b *Breaker) Failure() (tripped bool) {
	if b == nil {
		return false
	}
	now := b.cfg.Clock.now()
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		// Failed probe: straight back to open for another cooldown.
		b.state = BreakerOpen
		b.openedAt = now
		b.probing = false
		b.trips++
		return true
	case BreakerOpen:
		b.consecutive++
		return false
	default:
		b.consecutive++
		if b.consecutive >= b.cfg.Threshold {
			b.state = BreakerOpen
			b.openedAt = now
			b.trips++
			return true
		}
		return false
	}
}

// State reports the current automaton state (open may lazily read as open
// even after the cooldown elapsed — the transition to half-open happens
// on the next Allow).
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips reports how many times the breaker has transitioned to open.
func (b *Breaker) Trips() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
