package admit

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func TestParseDeadline(t *testing.T) {
	cases := []struct {
		in   string
		def  time.Duration
		want time.Duration
		bad  bool
	}{
		{"", 250 * time.Millisecond, 250 * time.Millisecond, false},
		{"", 0, 0, false},
		{"100", 0, 100 * time.Millisecond, false},
		{"  100  ", 0, 100 * time.Millisecond, false},
		{"250ms", 0, 250 * time.Millisecond, false},
		{"2s", 0, 2 * time.Second, false},
		{"0", time.Second, 0, false}, // explicit zero overrides the default
		{"-5", 0, 0, true},
		{"-5ms", 0, 0, true},
		{"soon", 0, 0, true},
	}
	for _, c := range cases {
		got, err := ParseDeadline(c.in, c.def)
		if c.bad {
			if err == nil {
				t.Errorf("ParseDeadline(%q) accepted, want error", c.in)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("ParseDeadline(%q, %v) = %v, %v; want %v", c.in, c.def, got, err, c.want)
		}
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	for _, c := range []struct {
		in   time.Duration
		want int
	}{
		{0, 1}, {time.Millisecond, 1}, {time.Second, 1},
		{1001 * time.Millisecond, 2}, {2500 * time.Millisecond, 3},
	} {
		if got := RetryAfterSeconds(c.in); got != c.want {
			t.Errorf("RetryAfterSeconds(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestQuotaBurstAndRefill(t *testing.T) {
	clk := newFakeClock()
	q := NewQuota(QuotaConfig{Rate: 10, Burst: 3, Clock: clk.Now})

	// The full burst is available immediately, then the bucket is dry.
	for i := 0; i < 3; i++ {
		if ok, _ := q.Allow("acme"); !ok {
			t.Fatalf("burst request %d refused", i)
		}
	}
	ok, retry := q.Allow("acme")
	if ok {
		t.Fatal("request beyond burst admitted")
	}
	if retry <= 0 || retry > 100*time.Millisecond {
		t.Fatalf("retry hint %v, want (0, 100ms] at 10 rps", retry)
	}

	// Tenants are independent.
	if ok, _ := q.Allow("other"); !ok {
		t.Fatal("fresh tenant refused while another is throttled")
	}

	// Refill at 10 rps: 100ms buys exactly one token.
	clk.Advance(100 * time.Millisecond)
	if ok, _ := q.Allow("acme"); !ok {
		t.Fatal("request refused after refill interval")
	}
	if ok, _ := q.Allow("acme"); ok {
		t.Fatal("second request admitted from a single refilled token")
	}

	// A long idle period caps at the burst, not the elapsed time.
	clk.Advance(time.Hour)
	admitted := 0
	for i := 0; i < 10; i++ {
		if ok, _ := q.Allow("acme"); ok {
			admitted++
		}
	}
	if admitted != 3 {
		t.Fatalf("admitted %d after long idle, want burst of 3", admitted)
	}
}

func TestQuotaDefaultPoolShared(t *testing.T) {
	clk := newFakeClock()
	q := NewQuota(QuotaConfig{Rate: 1, Burst: 2, Clock: clk.Now})
	// Anonymous requests (empty tenant) share one bucket.
	if ok, _ := q.Allow(""); !ok {
		t.Fatal("first anonymous request refused")
	}
	if ok, _ := q.Allow(""); !ok {
		t.Fatal("second anonymous request refused")
	}
	if ok, _ := q.Allow(""); ok {
		t.Fatal("anonymous pool did not throttle collectively")
	}
}

func TestQuotaEvictsFullBuckets(t *testing.T) {
	clk := newFakeClock()
	q := NewQuota(QuotaConfig{Rate: 100, Burst: 1, MaxTenants: 4, Clock: clk.Now})
	for i := 0; i < 4; i++ {
		q.Allow(string(rune('a' + i)))
	}
	if n := q.Tenants(); n != 4 {
		t.Fatalf("tracked %d tenants, want 4", n)
	}
	// After refill, a new tenant evicts the full buckets instead of
	// growing the table.
	clk.Advance(time.Second)
	q.Allow("newcomer")
	if n := q.Tenants(); n > 4 {
		t.Fatalf("tracked %d tenants after eviction, want <= 4", n)
	}
	// Eviction is lossless: an evicted tenant comes back with a full
	// (here: single-token) bucket and is admitted.
	if ok, _ := q.Allow("a"); !ok {
		t.Fatal("evicted tenant refused on return")
	}
}

func TestQuotaNilAndDisabled(t *testing.T) {
	if q := NewQuota(QuotaConfig{Rate: 0}); q != nil {
		t.Fatal("Rate 0 must disable the quota")
	}
	var q *Quota
	if ok, _ := q.Allow("anyone"); !ok {
		t.Fatal("nil quota must admit")
	}
	if q.Tenants() != 0 {
		t.Fatal("nil quota tracks tenants")
	}
}

func TestBreakerTripAndRecover(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Second, Clock: clk.Now})

	// Below threshold: stays closed, failures accumulate.
	for i := 0; i < 2; i++ {
		if tripped := b.Failure(); tripped {
			t.Fatalf("tripped after %d failures, threshold 3", i+1)
		}
	}
	if s := b.State(); s != BreakerClosed {
		t.Fatalf("state %v before threshold", s)
	}
	// A success resets the streak.
	b.Success()
	for i := 0; i < 2; i++ {
		b.Failure()
	}
	if s := b.State(); s != BreakerClosed {
		t.Fatal("success did not reset the failure streak")
	}

	// Third consecutive failure trips it.
	if tripped := b.Failure(); !tripped {
		t.Fatal("threshold failure did not report the trip")
	}
	if s := b.State(); s != BreakerOpen {
		t.Fatalf("state %v after trip, want open", s)
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", b.Trips())
	}

	// Open: refused with the remaining cooldown.
	ok, retry := b.Allow()
	if ok {
		t.Fatal("open breaker admitted a call")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retry hint %v, want (0, 1s]", retry)
	}

	// Cooldown elapses: exactly one probe is admitted.
	clk.Advance(time.Second + time.Millisecond)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("probe refused after cooldown")
	}
	if s := b.State(); s != BreakerHalfOpen {
		t.Fatalf("state %v during probe, want half-open", s)
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("second call admitted while probe outstanding")
	}

	// Probe succeeds: closed again, streak cleared.
	b.Success()
	if s := b.State(); s != BreakerClosed {
		t.Fatalf("state %v after successful probe, want closed", s)
	}
	if ok, _ := b.Allow(); !ok {
		t.Fatal("closed breaker refused")
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Second, Clock: clk.Now})
	b.Failure() // trips immediately at threshold 1
	clk.Advance(2 * time.Second)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("probe refused")
	}
	if tripped := b.Failure(); !tripped {
		t.Fatal("failed probe did not report a trip")
	}
	if s := b.State(); s != BreakerOpen {
		t.Fatalf("state %v after failed probe, want open", s)
	}
	if b.Trips() != 2 {
		t.Fatalf("trips = %d, want 2", b.Trips())
	}
	// The fresh cooldown starts at the failed probe.
	if ok, _ := b.Allow(); ok {
		t.Fatal("re-opened breaker admitted before the new cooldown")
	}
	clk.Advance(time.Second + time.Millisecond)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("probe refused after second cooldown")
	}
	b.Success()
	if s := b.State(); s != BreakerClosed {
		t.Fatalf("state %v, want closed", s)
	}
}

func TestBreakerNilAndDisabled(t *testing.T) {
	if b := NewBreaker(BreakerConfig{Threshold: 0}); b != nil {
		t.Fatal("threshold 0 must disable the breaker")
	}
	var b *Breaker
	if ok, _ := b.Allow(); !ok {
		t.Fatal("nil breaker must admit")
	}
	b.Success()
	if b.Failure() {
		t.Fatal("nil breaker reported a trip")
	}
	if b.State() != BreakerClosed || b.Trips() != 0 {
		t.Fatal("nil breaker state not closed/zero")
	}
}

// TestBreakerConcurrent hammers the breaker from many goroutines under
// -race; the single-probe invariant must hold (at most one Allow returns
// true per half-open window).
func TestBreakerConcurrent(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Millisecond, Clock: clk.Now})
	b.Failure()
	clk.Advance(2 * time.Millisecond)
	var admitted sync.Map
	var wg sync.WaitGroup
	var count int64
	var mu sync.Mutex
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if ok, _ := b.Allow(); ok {
				admitted.Store(i, true)
				mu.Lock()
				count++
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if count != 1 {
		t.Fatalf("%d probes admitted in one half-open window, want 1", count)
	}
}
