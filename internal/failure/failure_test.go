package failure

import (
	"fmt"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"flexile/internal/topo"
)

func TestEnumerateExhaustiveTiny(t *testing.T) {
	// Three links with p = 0.1, 0.2, 0.3 and cutoff 0 → all 8 scenarios.
	probs := []float64{0.1, 0.2, 0.3}
	scens := Enumerate(probs, 0)
	if len(scens) != 8 {
		t.Fatalf("want 8 scenarios, got %d", len(scens))
	}
	tot := Coverage(scens)
	if math.Abs(tot-1) > 1e-12 {
		t.Fatalf("total probability %v, want 1", tot)
	}
	// The all-alive scenario must be first (largest probability).
	if len(scens[0].Failed) != 0 {
		t.Fatalf("first scenario should be all-alive, got %v", scens[0].Failed)
	}
	want := 0.9 * 0.8 * 0.7
	if math.Abs(scens[0].Prob-want) > 1e-12 {
		t.Fatalf("all-alive prob %v, want %v", scens[0].Prob, want)
	}
}

func TestEnumerateCutoff(t *testing.T) {
	probs := []float64{0.01, 0.01, 0.01, 0.01}
	scens := Enumerate(probs, 1e-3)
	// All-alive (≈0.96) and the four single failures (≈0.0097) survive;
	// double failures ≈ 9.7e-5 < 1e-3 are cut.
	if len(scens) != 5 {
		t.Fatalf("want 5 scenarios, got %d", len(scens))
	}
	for _, s := range scens {
		if s.Prob < 1e-3 {
			t.Fatalf("scenario below cutoff: %v", s)
		}
		if len(s.Failed) > 1 {
			t.Fatalf("double failure survived the cutoff: %v", s.Failed)
		}
	}
}

func TestEnumerateProbabilitiesExact(t *testing.T) {
	probs := []float64{0.2, 0.05}
	scens := Enumerate(probs, 0)
	byKey := map[string]float64{}
	for _, s := range scens {
		k := ""
		for _, e := range s.Failed {
			k += string(rune('a' + e))
		}
		byKey[k] = s.Prob
	}
	checks := map[string]float64{
		"":   0.8 * 0.95,
		"a":  0.2 * 0.95,
		"b":  0.8 * 0.05,
		"ab": 0.2 * 0.05,
	}
	for k, want := range checks {
		if math.Abs(byKey[k]-want) > 1e-12 {
			t.Errorf("scenario %q prob %v, want %v", k, byKey[k], want)
		}
	}
}

// Property: scenario probabilities are disjoint and sum to ≤ 1; every
// scenario meets the cutoff; sorted descending.
func TestEnumerateProperties(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		tp := topo.Triangle()
		probs := WeibullProbs(tp.G, seed, WeibullParams{})
		scens := Enumerate(probs, 1e-7)
		if Coverage(scens) > 1+1e-9 {
			return false
		}
		for i, s := range scens {
			if s.Prob < 1e-7 {
				return false
			}
			if i > 0 && s.Prob > scens[i-1].Prob+1e-15 {
				return false
			}
			if !sort.IntsAreSorted(s.Failed) {
				return false
			}
		}
		// Disjointness: no two scenarios share the same failed set.
		seen := map[string]bool{}
		for _, s := range scens {
			k := ""
			for _, e := range s.Failed {
				k += string(rune('0' + e))
			}
			if seen[k] {
				return false
			}
			seen[k] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestWeibullMedian(t *testing.T) {
	tp := topo.MustLoad("Deltacom") // 151 edges: enough samples
	probs := WeibullProbs(tp.G, 1, WeibullParams{})
	sorted := append([]float64(nil), probs...)
	sort.Float64s(sorted)
	med := sorted[len(sorted)/2]
	if med < 0.0002 || med > 0.005 {
		t.Fatalf("median failure probability %v too far from 0.001", med)
	}
	for _, p := range probs {
		if p < 1e-5 || p > 0.2 {
			t.Fatalf("probability %v outside clamp", p)
		}
	}
}

func TestWeibullDeterministic(t *testing.T) {
	tp := topo.MustLoad("IBM")
	a := WeibullProbs(tp.G, 7, WeibullParams{})
	b := WeibullProbs(tp.G, 7, WeibullParams{})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same probabilities")
		}
	}
	c := WeibullProbs(tp.G, 8, WeibullParams{})
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestScenarioHelpers(t *testing.T) {
	s := Scenario{Failed: []int{1, 3}, Prob: 0.5}
	if !s.IsFailed(1) || !s.IsFailed(3) || s.IsFailed(0) || s.IsFailed(2) {
		t.Fatal("IsFailed wrong")
	}
	alive := s.Alive()
	if alive(1) || !alive(0) {
		t.Fatal("Alive predicate wrong")
	}
	mask := s.AliveMask(5)
	want := []bool{true, false, true, false, true}
	for i := range want {
		if mask[i] != want[i] {
			t.Fatalf("mask[%d] = %v", i, mask[i])
		}
	}
}

func TestSRLGEnumeration(t *testing.T) {
	// Two SRLGs: group 0 = edges {0,1}, group 1 = edge {2}.
	groups := []SRLG{
		{Edges: []int{0, 1}, Prob: 0.1},
		{Edges: []int{2}, Prob: 0.2},
	}
	scens := EnumerateSRLG(groups, 0)
	if len(scens) != 4 {
		t.Fatalf("want 4 scenarios, got %d", len(scens))
	}
	// Find the scenario where only group 0 fails: edges {0,1} down.
	found := false
	for _, s := range scens {
		if len(s.Failed) == 2 && s.Failed[0] == 0 && s.Failed[1] == 1 {
			found = true
			if math.Abs(s.Prob-0.1*0.8) > 1e-12 {
				t.Fatalf("group-0 scenario prob %v", s.Prob)
			}
		}
	}
	if !found {
		t.Fatal("group-0 failure scenario missing")
	}
}

func TestAllPairsConnectedMassTriangle(t *testing.T) {
	tp := topo.Triangle()
	probs := []float64{0.01, 0.01, 0.01}
	scens := Enumerate(probs, 0)
	mass := AllPairsConnectedMass(tp.G, scens)
	// The triangle stays connected unless ≥2 links fail:
	// P(≤1 failure) = 0.99³ + 3·0.01·0.99².
	want := math.Pow(0.99, 3) + 3*0.01*0.99*0.99
	if math.Abs(mass-want) > 1e-12 {
		t.Fatalf("mass = %v, want %v", mass, want)
	}
	dt := DesignTarget(tp.G, scens)
	if dt >= mass || dt < 0.5 {
		t.Fatalf("design target %v vs mass %v", dt, mass)
	}
}

func TestPairConnectedMass(t *testing.T) {
	tp := topo.Triangle()
	probs := []float64{0.01, 0.01, 0.01}
	scens := Enumerate(probs, 0)
	// Pair (A,B): disconnected only when both A-B (e0) and one of the
	// alternate path's links fail... precisely when e0 fails along with e1
	// or e2.
	mass := PairConnectedMass(tp.G, scens, [][2]int{{0, 1}})
	// P(connected) = 1 − P(e0 down AND (e1 down OR e2 down))
	pDown := 0.01 * (1 - 0.99*0.99)
	want := 1 - pDown
	if math.Abs(mass[0]-want) > 1e-12 {
		t.Fatalf("pair mass %v, want %v", mass[0], want)
	}
}

func TestSampleBasics(t *testing.T) {
	probs := []float64{0.3, 0.2, 0.1}
	scens := Sample(probs, 2000, 7)
	// All-alive always present and exact.
	if len(scens[0].Failed) != 0 {
		t.Fatalf("first scenario should be all-alive (largest prob)")
	}
	wantAlive := 0.7 * 0.8 * 0.9
	if math.Abs(scens[0].Prob-wantAlive) > 1e-12 {
		t.Fatalf("all-alive prob %v, want %v", scens[0].Prob, wantAlive)
	}
	// Probabilities are analytic, not empirical: check one single-failure
	// scenario if present.
	for _, s := range scens {
		if len(s.Failed) == 1 && s.Failed[0] == 0 {
			want := 0.3 * 0.8 * 0.9
			if math.Abs(s.Prob-want) > 1e-12 {
				t.Fatalf("scenario {0} prob %v, want %v", s.Prob, want)
			}
		}
	}
	// No duplicates; total ≤ 1.
	if Coverage(scens) > 1+1e-9 {
		t.Fatalf("coverage %v", Coverage(scens))
	}
	seen := map[string]bool{}
	for _, s := range scens {
		k := fmt.Sprint(s.Failed)
		if seen[k] {
			t.Fatalf("duplicate scenario %v", s.Failed)
		}
		seen[k] = true
	}
	// With 2000 draws over 3 links the high-probability states are surely
	// found: coverage must be near complete.
	if Coverage(scens) < 0.99 {
		t.Fatalf("coverage %v too low for exhaustive-ish sampling", Coverage(scens))
	}
}

func TestSampleDeterministic(t *testing.T) {
	probs := []float64{0.05, 0.05, 0.05, 0.05}
	a := Sample(probs, 100, 3)
	b := Sample(probs, 100, 3)
	if len(a) != len(b) {
		t.Fatal("nondeterministic")
	}
	for i := range a {
		if a[i].Prob != b[i].Prob {
			t.Fatal("nondeterministic probabilities")
		}
	}
}
