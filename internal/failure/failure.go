// Package failure models link failures: Weibull-distributed per-link
// failure probabilities (the paper's §6 methodology, following Teavar),
// enumeration of disjoint failure scenarios above a probability cutoff,
// shared-risk link groups (SRLGs), and the design-target computation used
// to pick each experiment's percentile β.
package failure

import (
	"math"
	"math/rand"
	"sort"

	"flexile/internal/graph"
)

// Scenario is one disjoint network state: exactly the listed edges are
// failed and every other edge is alive. Prob is the exact probability of
// that state under independent failures.
type Scenario struct {
	Failed []int // sorted edge ids
	Prob   float64
}

// IsFailed reports whether edge e is failed in the scenario.
func (s Scenario) IsFailed(e int) bool {
	i := sort.SearchInts(s.Failed, e)
	return i < len(s.Failed) && s.Failed[i] == e
}

// Alive returns an edge-alive predicate for the scenario.
func (s Scenario) Alive() func(edge int) bool {
	return func(e int) bool { return !s.IsFailed(e) }
}

// AliveMask materializes the per-edge alive indicator (the paper's m_eq).
func (s Scenario) AliveMask(numEdges int) []bool {
	m := make([]bool, numEdges)
	for e := range m {
		m[e] = true
	}
	for _, e := range s.Failed {
		m[e] = false
	}
	return m
}

// WeibullParams control per-link failure probability generation.
type WeibullParams struct {
	// Shape is the Weibull shape parameter k; 0 means 0.8 (heavy-tailed,
	// as in Teavar's fit to production data).
	Shape float64
	// Median is the target median failure probability; 0 means 0.001
	// (matching the empirical WAN studies cited in §6).
	Median float64
	// Min and Max clamp the sampled probabilities; zero values mean
	// [1e-5, 0.2].
	Min, Max float64
}

func (w WeibullParams) withDefaults() WeibullParams {
	if w.Shape == 0 {
		w.Shape = 0.8
	}
	if w.Median == 0 {
		w.Median = 0.001
	}
	if w.Min == 0 {
		w.Min = 1e-5
	}
	if w.Max == 0 {
		w.Max = 0.2
	}
	return w
}

// WeibullProbs samples one failure probability per edge of g.
func WeibullProbs(g *graph.Graph, seed int64, params WeibullParams) []float64 {
	params = params.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	// Median of Weibull(k, λ) is λ·(ln 2)^(1/k); pick λ to hit the target.
	lambda := params.Median / math.Pow(math.Ln2, 1/params.Shape)
	out := make([]float64, g.NumEdges())
	for e := range out {
		u := rng.Float64()
		x := lambda * math.Pow(-math.Log(1-u), 1/params.Shape)
		if x < params.Min {
			x = params.Min
		}
		if x > params.Max {
			x = params.Max
		}
		out[e] = x
	}
	return out
}

// Enumerate lists every failure scenario whose exact probability is at
// least cutoff, sorted by decreasing probability. The scenarios are
// disjoint; their probabilities sum to at most 1, with the residual mass
// belonging to discarded (lower-probability) states.
func Enumerate(probs []float64, cutoff float64) []Scenario {
	n := len(probs)
	// Order edges by decreasing failure probability so pruning bites early.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return probs[order[a]] > probs[order[b]] })
	// tailAlive[i] = Π_{j≥i} (1−p_order[j]): the largest factor any
	// completion of a prefix decision can contribute.
	tailAlive := make([]float64, n+1)
	tailAlive[n] = 1
	for i := n - 1; i >= 0; i-- {
		tailAlive[i] = tailAlive[i+1] * (1 - probs[order[i]])
	}
	var out []Scenario
	var failed []int
	var rec func(i int, prob float64)
	rec = func(i int, prob float64) {
		if prob*tailAlive[i] < cutoff {
			return
		}
		if i == n {
			s := Scenario{Failed: append([]int(nil), failed...), Prob: prob}
			sort.Ints(s.Failed)
			out = append(out, s)
			return
		}
		e := order[i]
		rec(i+1, prob*(1-probs[e])) // edge alive
		failed = append(failed, e)
		rec(i+1, prob*probs[e]) // edge failed
		failed = failed[:len(failed)-1]
	}
	rec(0, 1)
	sort.SliceStable(out, func(a, b int) bool { return out[a].Prob > out[b].Prob })
	return out
}

// SRLG is a shared-risk link group: a set of edges that fail together with
// the given probability.
type SRLG struct {
	Edges []int
	Prob  float64
}

// EnumerateSRLG lists scenarios over independent SRLG failures. A scenario's
// failed edge set is the union of the failed groups' edges.
func EnumerateSRLG(groups []SRLG, cutoff float64) []Scenario {
	probs := make([]float64, len(groups))
	for i, g := range groups {
		probs[i] = g.Prob
	}
	raw := Enumerate(probs, cutoff)
	out := make([]Scenario, len(raw))
	for i, s := range raw {
		set := map[int]bool{}
		for _, gi := range s.Failed {
			for _, e := range groups[gi].Edges {
				set[e] = true
			}
		}
		failed := make([]int, 0, len(set))
		for e := range set {
			failed = append(failed, e)
		}
		sort.Ints(failed)
		out[i] = Scenario{Failed: failed, Prob: s.Prob}
	}
	return out
}

// Coverage returns the total probability mass of the scenarios.
func Coverage(scens []Scenario) float64 {
	tot := 0.0
	for _, s := range scens {
		tot += s.Prob
	}
	return tot
}

// AllPairsConnectedMass returns the total probability of scenarios in which
// every node pair remains connected. §6 sets the single-class design target
// to (just below) this value: any higher target trivially forces PercLoss=1.
func AllPairsConnectedMass(g *graph.Graph, scens []Scenario) float64 {
	tot := 0.0
	for _, s := range scens {
		if g.IsConnected(s.Alive()) {
			tot += s.Prob
		}
	}
	return tot
}

// DesignTarget returns the §6 design target: the largest "round" percentile
// not exceeding the all-pairs-connected mass, backing off a small safety
// margin so the target is strictly achievable. The returned value is
// clamped to [0.5, 0.99999].
func DesignTarget(g *graph.Graph, scens []Scenario) float64 {
	mass := AllPairsConnectedMass(g, scens)
	t := mass - 1e-9
	if t > 0.99999 {
		t = 0.99999
	}
	if t < 0.5 {
		t = 0.5
	}
	return t
}

// PairConnectedMass returns, for each node pair in pairs, the probability
// mass of scenarios in which that pair stays connected.
func PairConnectedMass(g *graph.Graph, scens []Scenario, pairs [][2]int) []float64 {
	out := make([]float64, len(pairs))
	for _, s := range scens {
		alive := s.Alive()
		for i, pr := range pairs {
			if g.Connected(pr[0], pr[1], alive) {
				out[i] += s.Prob
			}
		}
	}
	return out
}

// Sample draws n failure scenarios by Monte Carlo under independent link
// failures (the sampling alternative §6 mentions for very large networks,
// where exhaustive enumeration above a cutoff is impractical). Duplicate
// draws are merged; each returned scenario carries its exact analytic
// probability, so the result plugs into the same percentile machinery as
// Enumerate. The all-alive state is always included. Scenarios are sorted
// by decreasing probability.
func Sample(probs []float64, n int, seed int64) []Scenario {
	rng := rand.New(rand.NewSource(seed))
	aliveProb := 1.0
	for _, p := range probs {
		aliveProb *= 1 - p
	}
	seen := map[string]Scenario{"": {Prob: aliveProb}}
	var key []byte
	for draw := 0; draw < n; draw++ {
		var failed []int
		prob := 1.0
		for e, p := range probs {
			if rng.Float64() < p {
				failed = append(failed, e)
				prob *= p
			} else {
				prob *= 1 - p
			}
		}
		key = key[:0]
		for _, e := range failed {
			key = append(key, byte(e), byte(e>>8))
		}
		if _, ok := seen[string(key)]; !ok {
			seen[string(key)] = Scenario{Failed: failed, Prob: prob}
		}
	}
	out := make([]Scenario, 0, len(seen))
	for _, s := range seen {
		out = append(out, s)
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Prob != out[b].Prob {
			return out[a].Prob > out[b].Prob
		}
		return len(out[a].Failed) < len(out[b].Failed)
	})
	return out
}
