package obs

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestNilCollectorIsNoOp(t *testing.T) {
	var c *Collector
	c.AddLP(LPMetrics{Solves: 1})
	c.AddMIP(MIPMetrics{Solves: 1})
	c.AddDecomp(DecompMetrics{Solves: 1})
	c.PoolLaunch(4)
	c.PoolItem(0, 10)
	c.AttachTracer(NewTracer())
	c.Span("noop", 0)()
	if got := c.Snapshot(); !reflect.DeepEqual(got, SolveMetrics{}) {
		t.Fatalf("nil collector snapshot = %+v, want zero", got)
	}
}

func TestParentChainRollup(t *testing.T) {
	root := New()
	mid := NewChild(root)
	leaf := NewChild(mid)

	leaf.AddLP(LPMetrics{Solves: 2, Pivots: 10})
	mid.AddLP(LPMetrics{Solves: 1, Pivots: 5})
	leaf.AddMIP(MIPMetrics{Solves: 1, Nodes: 7})
	leaf.AddDecomp(DecompMetrics{CutsGenerated: 3, CutsDeduped: 1})
	leaf.PoolLaunch(4)
	leaf.PoolItem(2, 100)
	leaf.PoolItem(2, 50)
	leaf.PoolItem(0, 25)

	lm := leaf.Snapshot()
	if lm.LP.Solves != 2 || lm.LP.Pivots != 10 {
		t.Fatalf("leaf LP = %+v", lm.LP)
	}
	mm := mid.Snapshot()
	if mm.LP.Solves != 3 || mm.LP.Pivots != 15 {
		t.Fatalf("mid LP = %+v (want leaf+own)", mm.LP)
	}
	rm := root.Snapshot()
	if rm.LP.Solves != 3 || rm.LP.Pivots != 15 {
		t.Fatalf("root LP = %+v (want everything)", rm.LP)
	}
	if rm.MIP.Solves != 1 || rm.MIP.Nodes != 7 {
		t.Fatalf("root MIP = %+v", rm.MIP)
	}
	if rm.Decomp.CutsGenerated != 3 || rm.Decomp.CutsDeduped != 1 {
		t.Fatalf("root Decomp = %+v", rm.Decomp)
	}
	if rm.Pool.Launches != 1 || rm.Pool.Items != 3 || rm.Pool.MaxWorkers != 4 || rm.Pool.BusyNanos != 175 {
		t.Fatalf("root Pool = %+v", rm.Pool)
	}
	if want := []int64{1, 0, 2}; !reflect.DeepEqual(rm.Pool.WorkerItems, want) {
		t.Fatalf("root WorkerItems = %v, want %v", rm.Pool.WorkerItems, want)
	}
}

func TestPoolLaunchKeepsMaxWidth(t *testing.T) {
	c := New()
	c.PoolLaunch(2)
	c.PoolLaunch(8)
	c.PoolLaunch(4)
	s := c.Snapshot()
	if s.Pool.Launches != 3 || s.Pool.MaxWorkers != 8 {
		t.Fatalf("Pool = %+v, want 3 launches, max width 8", s.Pool)
	}
}

func TestCanonicalStripsSchedulingFields(t *testing.T) {
	c := New()
	c.AddLP(LPMetrics{Solves: 1, Pivots: 9, SolveNanos: 12345})
	c.AddMIP(MIPMetrics{Solves: 1, Nodes: 4, SolveNanos: 777})
	c.PoolLaunch(8)
	c.PoolItem(3, 999)
	got := c.Snapshot().Canonical()
	want := SolveMetrics{}
	want.LP = LPMetrics{Solves: 1, Pivots: 9}
	want.MIP = MIPMetrics{Solves: 1, Nodes: 4}
	want.Pool = PoolMetrics{Launches: 1, Items: 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Canonical() = %+v, want %+v", got, want)
	}
}

func TestContextCarriageAndGlobalFallback(t *testing.T) {
	if From(context.Background()) != nil {
		t.Fatal("empty context should carry no collector")
	}
	if From(nil) != nil { //nolint:staticcheck // nil ctx is part of the contract
		t.Fatal("nil context should carry no collector")
	}
	c := New()
	ctx := With(context.Background(), c)
	if From(ctx) != c {
		t.Fatal("With/From round trip lost the collector")
	}

	g := New()
	SetGlobal(g)
	defer SetGlobal(nil)
	if Global() != g {
		t.Fatal("Global() did not return the installed collector")
	}
	if From(context.Background()) != g {
		t.Fatal("From should fall back to the global collector")
	}
	if From(ctx) != c {
		t.Fatal("context collector must shadow the global one")
	}
}

func TestConcurrentAddsAreExact(t *testing.T) {
	root := New()
	child := NewChild(root)
	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				child.AddLP(LPMetrics{Solves: 1, Pivots: 3})
				child.AddMIP(MIPMetrics{Nodes: 2})
				child.AddDecomp(DecompMetrics{CutsGenerated: 1})
				child.PoolItem(worker, 1)
			}
		}(g)
	}
	wg.Wait()
	for name, s := range map[string]SolveMetrics{"child": child.Snapshot(), "root": root.Snapshot()} {
		if s.LP.Solves != goroutines*perG || s.LP.Pivots != 3*goroutines*perG {
			t.Fatalf("%s LP = %+v", name, s.LP)
		}
		if s.MIP.Nodes != 2*goroutines*perG {
			t.Fatalf("%s MIP = %+v", name, s.MIP)
		}
		if s.Decomp.CutsGenerated != goroutines*perG {
			t.Fatalf("%s Decomp = %+v", name, s.Decomp)
		}
		if s.Pool.Items != goroutines*perG || s.Pool.BusyNanos != goroutines*perG {
			t.Fatalf("%s Pool = %+v", name, s.Pool)
		}
		for w, n := range s.Pool.WorkerItems {
			if n != perG {
				t.Fatalf("%s WorkerItems[%d] = %d, want %d", name, w, n, perG)
			}
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c := New()
	c.AddLP(LPMetrics{Solves: 5, Pivots: 42, Phase1Pivots: 30, Phase2Pivots: 12})
	c.AddDecomp(DecompMetrics{CutsGenerated: 7})
	b := c.Snapshot().JSON()
	var back SolveMetrics
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("JSON() produced invalid JSON: %v\n%s", err, b)
	}
	if !reflect.DeepEqual(back, c.Snapshot()) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", back, c.Snapshot())
	}
	for _, key := range []string{`"lp"`, `"mip"`, `"decomposition"`, `"pool"`, `"phase1_pivots"`, `"cuts_generated"`} {
		if !strings.Contains(string(b), key) {
			t.Fatalf("JSON output missing %s:\n%s", key, b)
		}
	}
}

func TestSpanWithoutTracerIsSharedNoOp(t *testing.T) {
	c := New()
	end := c.Span("unobserved", 1, "k", "v")
	end()
	// No tracer anywhere up the chain: nothing to flush, nothing recorded.
	if tr := c.tracerOf(); tr != nil {
		t.Fatalf("unexpected tracer %v", tr)
	}
}

func TestTracerRecordsSpansThroughParentChain(t *testing.T) {
	root := New()
	tr := NewTracer()
	root.AttachTracer(tr)
	child := NewChild(root)

	end := child.Span("scenario-solve", 3, "scenario", 7, "iter", 1)
	end()
	child.Span("master-solve", 0)()

	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	ev := evs[0]
	if ev.Name != "scenario-solve" || ev.Ph != "X" || ev.TID != 3 {
		t.Fatalf("event = %+v", ev)
	}
	if ev.Args["scenario"] != 7 || ev.Args["iter"] != 1 {
		t.Fatalf("args = %v", ev.Args)
	}
	if ev.Dur < 0 || ev.TS < 0 {
		t.Fatalf("negative timestamps: %+v", ev)
	}
	if evs[1].Args != nil {
		t.Fatalf("no-kv span should have nil args, got %v", evs[1].Args)
	}

	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var file struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &file); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(file.TraceEvents) != 2 {
		t.Fatalf("serialized %d events, want 2", len(file.TraceEvents))
	}
}

func TestNilTracerEvents(t *testing.T) {
	var tr *Tracer
	if evs := tr.Events(); evs != nil {
		t.Fatalf("nil tracer Events() = %v, want nil", evs)
	}
}
