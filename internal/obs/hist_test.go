package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

func TestHistBoundsMonotone(t *testing.T) {
	bounds := HistBounds()
	if len(bounds) != histBuckets-1 {
		t.Fatalf("got %d bounds, want %d", len(bounds), histBuckets-1)
	}
	if len(bounds) < 8 {
		t.Fatalf("exposition needs >= 8 finite buckets, scheme has %d", len(bounds))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %d <= %d", i, bounds[i], bounds[i-1])
		}
	}
	if bounds[0] != 256 || bounds[len(bounds)-1] != 1<<34 {
		t.Fatalf("bounds range = [%d, %d]", bounds[0], bounds[len(bounds)-1])
	}
}

func TestHistBucketOf(t *testing.T) {
	bounds := HistBounds()
	for _, c := range []struct {
		v    int64
		want int
	}{
		{0, 0}, {1, 0}, {255, 0}, {256, 0}, // first bucket is (-inf, 256]
		{257, 1}, {512, 1}, {513, 2},
		{1 << 34, histBuckets - 2},       // last finite bound, inclusive
		{1<<34 + 1, histBuckets - 1},     // overflow
		{math.MaxInt64, histBuckets - 1}, // way overflow
	} {
		if got := histBucketOf(c.v); got != c.want {
			t.Errorf("histBucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Cross-check against the published bounds: a value equal to a bound
	// must land in that bound's bucket (le is inclusive, the Prometheus
	// convention), one past it in the next.
	for i, b := range bounds {
		if got := histBucketOf(b); got != i {
			t.Fatalf("histBucketOf(bound %d = %d) = %d", i, b, got)
		}
		if got := histBucketOf(b + 1); got != i+1 {
			t.Fatalf("histBucketOf(bound %d + 1) = %d, want %d", i, got, i+1)
		}
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	var h Histogram
	h.Observe(100)  // bucket 0
	h.Observe(300)  // bucket 1
	h.Observe(-5)   // clamps to 0, bucket 0
	h.Observe(1e12) // ~16.7min, +Inf bucket
	s := h.Snapshot()
	if s.Count != 4 || s.Sum != 100+300+0+1e12 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Buckets[0] != 2 || s.Buckets[1] != 1 || s.Buckets[histBuckets-1] != 1 {
		t.Fatalf("buckets = %v", s.Buckets)
	}
	var total uint64
	for _, b := range s.Buckets {
		total += b
	}
	if total != s.Count {
		t.Fatalf("bucket sum %d != count %d", total, s.Count)
	}
	// Snapshots are cumulative: a second snapshot with no new observations
	// is identical.
	s2 := h.Snapshot()
	if s2.Count != s.Count || s2.Sum != s.Sum {
		t.Fatalf("second snapshot diverged: %+v vs %+v", s2, s)
	}
}

func TestHistogramNilIsNoOp(t *testing.T) {
	var h *Histogram
	h.Observe(5)
	if s := h.Snapshot(); s.Count != 0 || s.Buckets != nil {
		t.Fatalf("nil histogram snapshot = %+v", s)
	}
}

// TestHistogramSnapshotEpochConsistency is the satellite fix's proof: with
// every observation carrying the same value v, ANY self-consistent snapshot
// must satisfy Sum == v*Count and sum(Buckets) == Count — a snapshot torn
// across two instants (count from one epoch, sum from another) fails one of
// the two. Snapshots run concurrently with a full-rate observer hammer.
func TestHistogramSnapshotEpochConsistency(t *testing.T) {
	const v = 1000 // bucket 2 (513..1024]
	var h Histogram
	var stop atomic.Bool
	var wg sync.WaitGroup
	const observers = 4
	for g := 0; g < observers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				h.Observe(v)
			}
		}()
	}
	for i := 0; i < 500; i++ {
		s := h.Snapshot()
		if s.Sum != int64(s.Count)*v {
			t.Fatalf("torn snapshot: count %d, sum %d (want %d)", s.Count, s.Sum, int64(s.Count)*v)
		}
		var total uint64
		for _, b := range s.Buckets {
			total += b
		}
		if total != s.Count {
			t.Fatalf("torn snapshot: bucket sum %d != count %d", total, s.Count)
		}
	}
	stop.Store(true)
	wg.Wait()
	// Final quiescent snapshot still carries every observation.
	s := h.Snapshot()
	if s.Sum != int64(s.Count)*v {
		t.Fatalf("final snapshot torn: %+v", s)
	}
}

func TestHistogramConcurrentExact(t *testing.T) {
	var h Histogram
	const goroutines, perG = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(int64(g*perG + i))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	n := int64(goroutines * perG)
	if int64(s.Count) != n || s.Sum != n*(n-1)/2 {
		t.Fatalf("count %d sum %d, want %d / %d", s.Count, s.Sum, n, n*(n-1)/2)
	}
}

func TestHistSnapshotMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(100)
	a.Observe(5000)
	b.Observe(5000)
	b.Observe(1e12)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 4 || sa.Sum != 100+2*5000+1e12 {
		t.Fatalf("merged = %+v", sa)
	}
	if sa.Buckets[histBucketOf(5000)] != 2 || sa.Buckets[histBuckets-1] != 1 {
		t.Fatalf("merged buckets = %v", sa.Buckets)
	}
	// Merging into an empty snapshot copies.
	var empty HistSnapshot
	empty.Merge(sb)
	if empty.Count != sb.Count || empty.Sum != sb.Sum {
		t.Fatalf("merge into empty = %+v", empty)
	}
	// Merging an empty snapshot is a no-op.
	before := sa
	sa.Merge(HistSnapshot{})
	if sa.Count != before.Count || sa.Sum != before.Sum {
		t.Fatalf("merge of empty changed %+v -> %+v", before, sa)
	}
}

// TestHistogramQuantileAccuracy feeds adversarial distributions and checks
// the estimated quantile lands within one bucket of the exact order
// statistic — the bound the log-scale scheme promises.
func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	distributions := map[string][]int64{
		"point-mass-at-bound":  repeat(1<<20, 5000),
		"point-mass-past-bnd":  repeat(1<<20+1, 5000),
		"tiny-values":          repeat(3, 1000),
		"bimodal-far":          append(repeat(300, 900), repeat(1<<30, 100)...),
		"heavy-overflow":       append(repeat(1<<10, 100), repeat(1<<35, 900)...),
		"geometric-every-bkt":  geometricSpread(),
		"uniform-random":       randomVals(rng, 20000, 1<<22),
		"log-uniform-random":   logUniform(rng, 20000),
		"single-observation":   {777},
		"two-extreme-outliers": append(repeat(500, 9998), 1, 1<<40),
	}
	quantiles := []float64{0.5, 0.9, 0.99, 0.999, 1.0}
	for name, vals := range distributions {
		var h Histogram
		for _, v := range vals {
			h.Observe(v)
		}
		s := h.Snapshot()
		sorted := append([]int64(nil), vals...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, q := range quantiles {
			rank := int(math.Ceil(q * float64(len(sorted))))
			if rank < 1 {
				rank = 1
			}
			exact := sorted[rank-1]
			est := s.Quantile(q)
			// The +Inf bucket can only promise the largest finite bound.
			wantBucket := histBucketOf(exact)
			if wantBucket == histBuckets-1 {
				if est != float64(int64(1)<<histMaxExp) {
					t.Errorf("%s q=%v: overflow estimate %v, want last bound", name, q, est)
				}
				continue
			}
			gotBucket := histBucketOf(int64(math.Ceil(est)))
			if diff := gotBucket - wantBucket; diff < -1 || diff > 1 {
				t.Errorf("%s q=%v: estimate %v (bucket %d) vs exact %d (bucket %d)",
					name, q, est, gotBucket, exact, wantBucket)
			}
		}
	}
}

func TestHistQuantileEdgeCases(t *testing.T) {
	var empty HistSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
	var h Histogram
	h.Observe(1000)
	s := h.Snapshot()
	if got := s.Quantile(-1); got <= 0 {
		t.Fatalf("clamped-low quantile = %v", got)
	}
	if got := s.Quantile(2); got <= 0 {
		t.Fatalf("clamped-high quantile = %v", got)
	}
}

func repeat(v int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func geometricSpread() []int64 {
	var out []int64
	for e := 0; e <= 36; e++ {
		out = append(out, repeat(int64(1)<<e, 100)...)
	}
	return out
}

func randomVals(rng *rand.Rand, n int, max int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = rng.Int63n(max)
	}
	return out
}

func logUniform(rng *rand.Rand, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(math.Exp(rng.Float64() * math.Log(1e10)))
	}
	return out
}
