package obs

import (
	"sort"
	"sync"
)

// TraceRing is the bounded in-memory store behind GET /debug/requests
// (x/net/trace-style): three fixed-size buckets of trace snapshots —
// the most recent requests (a circular FIFO), the slowest ever seen
// (insert-sorted, smallest evicted first), and the most recent errored
// (status ≥ 400). Snapshots are immutable values taken once on Add, so
// readers never observe a trace that is still being mutated, and the
// memory bound is exact: recent+slow+errored snapshots, regardless of
// how many requests flow through.
type TraceRing struct {
	mu      sync.Mutex
	total   uint64
	recent  []TraceSnapshot // circular, next is the write cursor
	next    int
	filled  bool
	slowest []TraceSnapshot // sorted by Dur descending
	slowCap int
	errored []TraceSnapshot // circular, errNext is the write cursor
	errNext int
	errFull bool
}

// Default bucket sizes, used when NewTraceRing is given zeros.
const (
	DefaultRingRecent  = 64
	DefaultRingSlowest = 16
	DefaultRingErrored = 32
)

// NewTraceRing builds a ring with the given bucket capacities; zero or
// negative values take the defaults.
func NewTraceRing(recent, slowest, errored int) *TraceRing {
	if recent <= 0 {
		recent = DefaultRingRecent
	}
	if slowest <= 0 {
		slowest = DefaultRingSlowest
	}
	if errored <= 0 {
		errored = DefaultRingErrored
	}
	return &TraceRing{
		recent:  make([]TraceSnapshot, recent),
		slowCap: slowest,
		slowest: make([]TraceSnapshot, 0, slowest),
		errored: make([]TraceSnapshot, errored),
	}
}

// Add snapshots a finished trace into the ring. Nil-safe on both sides so
// the serving path can call it unconditionally.
func (r *TraceRing) Add(t *ReqTrace) {
	if r == nil || t == nil {
		return
	}
	s := t.Snapshot()
	r.mu.Lock()
	r.total++

	r.recent[r.next] = s
	r.next++
	if r.next == len(r.recent) {
		r.next = 0
		r.filled = true
	}

	if len(r.slowest) < r.slowCap || s.Dur > r.slowest[len(r.slowest)-1].Dur {
		i := sort.Search(len(r.slowest), func(i int) bool { return r.slowest[i].Dur < s.Dur })
		if len(r.slowest) < r.slowCap {
			r.slowest = append(r.slowest, TraceSnapshot{})
		}
		copy(r.slowest[i+1:], r.slowest[i:])
		r.slowest[i] = s
	}

	if s.Status >= 400 {
		r.errored[r.errNext] = s
		r.errNext++
		if r.errNext == len(r.errored) {
			r.errNext = 0
			r.errFull = true
		}
	}
	r.mu.Unlock()
}

// Total reports how many traces have ever been added.
func (r *TraceRing) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Recent returns the retained recent traces, newest first.
func (r *TraceRing) Recent() []TraceSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return unroll(r.recent, r.next, r.filled)
}

// Slowest returns the slowest traces seen, slowest first.
func (r *TraceRing) Slowest() []TraceSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]TraceSnapshot(nil), r.slowest...)
}

// Errored returns the retained traces with status ≥ 400, newest first.
func (r *TraceRing) Errored() []TraceSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return unroll(r.errored, r.errNext, r.errFull)
}

// unroll copies a circular buffer out newest-first. next is the write
// cursor (one past the most recent entry).
func unroll(buf []TraceSnapshot, next int, filled bool) []TraceSnapshot {
	n := next
	if filled {
		n = len(buf)
	}
	out := make([]TraceSnapshot, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, buf[(next-1-i+len(buf))%len(buf)])
	}
	return out
}
