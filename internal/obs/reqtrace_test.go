package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParseTraceparent(t *testing.T) {
	tc, ok := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if !ok {
		t.Fatal("valid traceparent rejected")
	}
	if tc.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" || tc.SpanID != "00f067aa0ba902b7" || !tc.Sampled {
		t.Fatalf("parsed %+v", tc)
	}
	if got := tc.String(); got != "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01" {
		t.Fatalf("String round-trip: %q", got)
	}
	if tc, ok := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00"); !ok || tc.Sampled {
		t.Fatalf("unsampled flag: ok=%v sampled=%v", ok, tc.Sampled)
	}

	for _, bad := range []string{
		"",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",      // truncated
		"01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // unknown version
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",   // uppercase hex
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",   // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",   // zero span id
		"00-4bf92f3577b34da6a3ce929d0e0e473z-00f067aa0ba902b7-01",   // non-hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736_00f067aa0ba902b7-01",   // bad separator
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-x", // trailing junk
	} {
		if _, ok := ParseTraceparent(bad); ok {
			t.Errorf("accepted malformed traceparent %q", bad)
		}
	}
}

func TestNewReqTraceIdentity(t *testing.T) {
	a, b := NewReqTrace("r1"), NewReqTrace("r2")
	for _, tr := range []*ReqTrace{a, b} {
		tp := tr.Traceparent()
		tc, ok := ParseTraceparent(tp)
		if !ok {
			t.Fatalf("minted traceparent %q does not parse", tp)
		}
		if tc.TraceID != tr.TraceID || tc.SpanID != tr.SpanID || !tc.Sampled {
			t.Fatalf("traceparent %q disagrees with ids %s/%s", tp, tr.TraceID, tr.SpanID)
		}
	}
	if a.TraceID == b.TraceID || a.SpanID == b.SpanID {
		t.Fatalf("consecutive traces share ids: %s %s", a.TraceID, b.TraceID)
	}

	a.SetParent(TraceContext{TraceID: strings.Repeat("ab", 16), SpanID: strings.Repeat("cd", 8), Sampled: true})
	if a.TraceID != strings.Repeat("ab", 16) || a.ParentSpan != strings.Repeat("cd", 8) {
		t.Fatalf("SetParent: %s parent %s", a.TraceID, a.ParentSpan)
	}
	want := "00-" + strings.Repeat("ab", 16) + "-" + a.SpanID + "-01"
	if got := a.Traceparent(); got != want {
		t.Fatalf("joined traceparent %q, want %q", got, want)
	}
}

func TestReqTraceFinishFreezesSpans(t *testing.T) {
	tr := NewReqTrace("req-1")
	base := tr.Start
	tr.AddSpan("parse", base, base.Add(time.Millisecond), false)
	tr.Finish(200, 42, 3, "hit", "")
	tr.AddSpan("late", base, base.Add(time.Hour), true) // detached recompute outliving the request
	tr.Finish(500, 0, -1, "", "quota")                  // second Finish must not win

	s := tr.Snapshot()
	if len(s.Spans) != 1 || s.Spans[0].Name != "parse" {
		t.Fatalf("spans after Finish: %+v", s.Spans)
	}
	if s.Status != 200 || s.Bytes != 42 || s.Scenario != 3 || s.Cache != "hit" || s.Shed != "" {
		t.Fatalf("summary did not latch first Finish: %+v", s)
	}
	if s.Dur <= 0 {
		t.Fatalf("finished trace has dur %v", s.Dur)
	}

	// Nil receivers are no-ops (untraced requests share the code path).
	var nilTrace *ReqTrace
	nilTrace.AddSpan("x", base, base, false)
	nilTrace.Finish(0, 0, 0, "", "")
}

func TestReqTraceConcurrentSpans(t *testing.T) {
	tr := NewReqTrace("req-conc")
	base := tr.Start
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr.AddSpan(fmt.Sprintf("g%d-%d", g, i), base, base.Add(time.Duration(i)*time.Microsecond), g%2 == 0)
			}
		}(g)
	}
	// Snapshots race the writers on purpose: they must observe a
	// well-formed prefix, never a torn span.
	for i := 0; i < 20; i++ {
		s := tr.Snapshot()
		for _, sp := range s.Spans {
			if sp.Name == "" {
				t.Fatal("torn span in snapshot")
			}
		}
	}
	wg.Wait()
	tr.Finish(200, 0, 0, "hit", "")
	if n := len(tr.Snapshot().Spans); n != 8*50 {
		t.Fatalf("recorded %d spans, want %d", n, 8*50)
	}
}

func TestSnapshotTraceEvents(t *testing.T) {
	tr := NewReqTrace("req-ev")
	tr.Method, tr.Path = "GET", "/v1/alloc"
	base := tr.Start
	tr.AddSpan("cache", base, base.Add(2*time.Millisecond), false)
	tr.AddSpan("recompute", base, base.Add(time.Millisecond), true)
	tr.Finish(200, 10, 1, "miss", "")
	evs := tr.Snapshot().TraceEvents(base.Add(-time.Second), 7)
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	if evs[0].Cat != "request" || evs[0].Name != "GET /v1/alloc" || evs[0].TID != 7 {
		t.Fatalf("request event: %+v", evs[0])
	}
	if evs[1].Cat != "stage" || evs[2].Cat != "stage.nested" {
		t.Fatalf("span cats: %s %s", evs[1].Cat, evs[2].Cat)
	}
	if evs[1].TS != evs[0].TS || evs[1].Dur != 2000 {
		t.Fatalf("stage timing: ts %d vs %d, dur %d", evs[1].TS, evs[0].TS, evs[1].Dur)
	}
	if _, err := json.Marshal(evs); err != nil {
		t.Fatalf("events not marshalable: %v", err)
	}
}

// TestTracerConcurrentRecord exercises the Span API and the batch Record
// bridge from concurrent goroutines; the race detector is the assertion.
func TestTracerConcurrentRecord(t *testing.T) {
	tracer := NewTracer()
	col := New()
	col.AttachTracer(tracer)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				end := col.Span(fmt.Sprintf("solve-%d-%d", g, i), int64(g))
				end()
				tr := NewReqTrace(fmt.Sprintf("r-%d-%d", g, i))
				tr.Finish(200, 0, 0, "hit", "")
				tracer.RecordRequest(tr.Snapshot())
			}
		}(g)
	}
	wg.Wait()
	var buf strings.Builder
	if err := tracer.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var out struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &out); err != nil {
		t.Fatalf("timeline not valid JSON: %v", err)
	}
	if len(out.TraceEvents) != 4*25*2 {
		t.Fatalf("timeline has %d events, want %d", len(out.TraceEvents), 4*25*2)
	}
}
