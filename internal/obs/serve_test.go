package obs

import (
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestServeMetricsRollup(t *testing.T) {
	root := New()
	child := NewChild(root)
	child.AddServe(ServeMetrics{Requests: 3, CacheHits: 2, CacheMisses: 1, Recomputes: 1, RequestNanos: 500})
	child.AddServe(ServeMetrics{Requests: 1, BadRequests: 1, Reloads: 1, ReloadErrors: 1, FlightShared: 1})
	for name, s := range map[string]SolveMetrics{"child": child.Snapshot(), "root": root.Snapshot()} {
		sv := s.Serve
		if sv.Requests != 4 || sv.BadRequests != 1 || sv.CacheHits != 2 || sv.CacheMisses != 1 {
			t.Fatalf("%s Serve = %+v", name, sv)
		}
		if sv.Recomputes != 1 || sv.FlightShared != 1 || sv.Reloads != 1 || sv.ReloadErrors != 1 || sv.RequestNanos != 500 {
			t.Fatalf("%s Serve = %+v", name, sv)
		}
	}
}

func TestServeMetricsNilAndCanonical(t *testing.T) {
	var nilC *Collector
	nilC.AddServe(ServeMetrics{Requests: 1}) // must not panic

	c := New()
	c.AddServe(ServeMetrics{Requests: 2, CacheHits: 1, RequestNanos: 12345})
	got := c.Snapshot().Canonical()
	want := SolveMetrics{}
	want.Serve = ServeMetrics{Requests: 2, CacheHits: 1} // RequestNanos is scheduling-dependent
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Canonical() = %+v, want %+v", got, want)
	}
}

func TestServeMetricsConcurrentExact(t *testing.T) {
	c := New()
	const goroutines, perG = 8, 400
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.AddServe(ServeMetrics{Requests: 1, CacheMisses: 1, RequestNanos: 2})
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot().Serve
	if s.Requests != goroutines*perG || s.CacheMisses != goroutines*perG || s.RequestNanos != 2*goroutines*perG {
		t.Fatalf("Serve = %+v", s)
	}
}

func TestServeMetricsJSONKeys(t *testing.T) {
	c := New()
	c.AddServe(ServeMetrics{Requests: 1, CacheHits: 1, Reloads: 1})
	b := c.Snapshot().JSON()
	var back SolveMetrics
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b)
	}
	if !reflect.DeepEqual(back.Serve, c.Snapshot().Serve) {
		t.Fatalf("round trip mismatch: %+v vs %+v", back.Serve, c.Snapshot().Serve)
	}
	for _, key := range []string{`"serve"`, `"cache_hits"`, `"cache_misses"`, `"reloads"`, `"request_ns"`} {
		if !strings.Contains(string(b), key) {
			t.Fatalf("JSON output missing %s:\n%s", key, b)
		}
	}
}
