package obs

import (
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestServeMetricsRollup(t *testing.T) {
	root := New()
	child := NewChild(root)
	child.AddServe(ServeMetrics{Requests: 3, CacheHits: 2, CacheMisses: 1, Recomputes: 1, GateWaits: 2})
	child.AddServe(ServeMetrics{Requests: 1, BadRequests: 1, Reloads: 1, ReloadErrors: 1, FlightShared: 1})
	for name, s := range map[string]SolveMetrics{"child": child.Snapshot(), "root": root.Snapshot()} {
		sv := s.Serve
		if sv.Requests != 4 || sv.BadRequests != 1 || sv.CacheHits != 2 || sv.CacheMisses != 1 {
			t.Fatalf("%s Serve = %+v", name, sv)
		}
		if sv.Recomputes != 1 || sv.FlightShared != 1 || sv.Reloads != 1 || sv.ReloadErrors != 1 || sv.GateWaits != 2 {
			t.Fatalf("%s Serve = %+v", name, sv)
		}
	}
}

func TestServeMetricsNilAndCanonical(t *testing.T) {
	var nilC *Collector
	nilC.AddServe(ServeMetrics{Requests: 1})        // must not panic
	nilC.ObserveLatency(LatServeRequest, time.Hour) // must not panic

	c := New()
	c.AddServe(ServeMetrics{Requests: 2, CacheHits: 1})
	c.ObserveLatency(LatServeRequest, 12345*time.Nanosecond)
	got := c.Snapshot().Canonical()
	want := SolveMetrics{}
	want.Serve = ServeMetrics{Requests: 2, CacheHits: 1} // latency histograms are scheduling-dependent
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Canonical() = %+v, want %+v", got, want)
	}
}

func TestServeMetricsConcurrentExact(t *testing.T) {
	c := New()
	const goroutines, perG = 8, 400
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.AddServe(ServeMetrics{Requests: 1, CacheMisses: 1})
				c.ObserveLatency(LatServeRequest, 2*time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.Serve.Requests != goroutines*perG || s.Serve.CacheMisses != goroutines*perG {
		t.Fatalf("Serve = %+v", s.Serve)
	}
	if lat := s.Latency.ServeRequest; lat.Count != goroutines*perG || lat.Sum != 2*goroutines*perG {
		t.Fatalf("ServeRequest latency = %+v", lat)
	}
}

// TestServeLatencyRollupThroughParentChain mirrors the counter rollup test
// for the histogram path: one observation lands in the child's histogram
// and in every ancestor's.
func TestServeLatencyRollupThroughParentChain(t *testing.T) {
	root := New()
	child := NewChild(root)
	child.ObserveLatency(LatServeRequest, 1500*time.Nanosecond)
	for name, s := range map[string]SolveMetrics{"child": child.Snapshot(), "root": root.Snapshot()} {
		if lat := s.Latency.ServeRequest; lat.Count != 1 || lat.Sum != 1500 {
			t.Fatalf("%s latency = %+v", name, lat)
		}
	}
}

func TestServeMetricsJSONKeys(t *testing.T) {
	c := New()
	c.AddServe(ServeMetrics{Requests: 1, CacheHits: 1, Reloads: 1, GateWaits: 1})
	c.ObserveLatency(LatServeRequest, time.Microsecond)
	b := c.Snapshot().JSON()
	var back SolveMetrics
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b)
	}
	if !reflect.DeepEqual(back.Serve, c.Snapshot().Serve) {
		t.Fatalf("round trip mismatch: %+v vs %+v", back.Serve, c.Snapshot().Serve)
	}
	for _, key := range []string{`"serve"`, `"cache_hits"`, `"cache_misses"`, `"reloads"`, `"gate_waits"`, `"latency"`, `"serve_request"`} {
		if !strings.Contains(string(b), key) {
			t.Fatalf("JSON output missing %s:\n%s", key, b)
		}
	}
}
