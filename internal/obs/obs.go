// Package obs is the solver observability layer: a zero-dependency,
// low-overhead metrics and tracing substrate threaded through the whole
// solve stack (internal/lp, internal/mip, internal/par, the flexile
// decomposition, and the experiment harness).
//
// Design rules:
//
//   - Counters are accumulated locally inside each solver (plain ints in
//     single-goroutine state) and flushed ONCE per solve into a Collector
//     with atomic adds — never per pivot, never per node — so the overhead
//     is a handful of atomic operations amortized over an entire LP/MIP
//     solve (budget: ≤2% of BenchmarkOfflineParallel, see DESIGN.md §9).
//   - A Collector is race-safe: any number of pool workers flush into it
//     concurrently. Adds propagate up a parent chain, so a per-solve child
//     collector (the one whose snapshot lands in SolveReport.Metrics) and
//     a process-global collector (the one the CLIs' -metrics flag reads)
//     both see every event without double bookkeeping at the call sites.
//   - The deterministic portion of a snapshot — every counter that is a
//     pure function of the solve trajectory — is bit-identical across
//     worker counts, exactly like the solve results themselves (PR 1's
//     contract). Canonical() strips the scheduling-dependent remainder
//     (wall-clock timers, per-worker item distributions) so tests can
//     assert bit-identity with reflect.DeepEqual.
//
// Collectors travel through context.Context (With/From), which every solve
// entry point in the stack already threads; a nil *Collector is a valid
// no-op receiver, so call sites never branch.
package obs

import (
	"context"
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"
)

// LPMetrics aggregates simplex solve counters. All fields except SolveNanos
// are deterministic (identical for any worker count on the same problem
// sequence).
type LPMetrics struct {
	// Solves counts SolveCtx invocations (including failed ones).
	Solves int64 `json:"solves"`
	// Errors counts solves that returned an error (cancellation, validation,
	// unrecoverable singular basis).
	Errors int64 `json:"errors"`
	// Optimal/Infeasible/Unbounded/IterLimit split the successful solves by
	// final status.
	Optimal    int64 `json:"optimal"`
	Infeasible int64 `json:"infeasible"`
	Unbounded  int64 `json:"unbounded"`
	IterLimit  int64 `json:"iter_limit"`
	// Pivots is the total simplex iteration count (basis changes plus bound
	// flips), Phase1Pivots/Phase2Pivots its per-phase split.
	Pivots       int64 `json:"pivots"`
	Phase1Pivots int64 `json:"phase1_pivots"`
	Phase2Pivots int64 `json:"phase2_pivots"`
	// BoundFlips counts iterations that moved the entering variable to its
	// opposite bound without a basis change.
	BoundFlips int64 `json:"bound_flips"`
	// DegeneratePivots counts basis changes with step length ≤ tolerance.
	DegeneratePivots int64 `json:"degenerate_pivots"`
	// Refactorizations counts full basis-inverse rebuilds.
	Refactorizations int64 `json:"refactorizations"`
	// BlandActivations counts switches to Bland's anti-cycling rule (either
	// requested up front via Options.Bland or triggered by a stall).
	BlandActivations int64 `json:"bland_activations"`
	// SingularRestarts counts recoveries from a singular basis via the
	// logical-basis restart.
	SingularRestarts int64 `json:"singular_restarts"`
	// WarmStarts counts solves that successfully installed a caller-
	// supplied start basis; WarmStartRejected counts solves that were
	// handed one but fell back to a cold start because the basis was
	// incompatible (shape mismatch, wrong basic count, singular basic
	// set). Rejections are the warm-start cache-miss signal: a warm-
	// started pipeline expects WarmStartRejected ≈ 0.
	WarmStarts        int64 `json:"warm_starts"`
	WarmStartRejected int64 `json:"warm_start_rejected"`
	// EtaPivots counts pivots applied as product-form eta factors instead
	// of dense inverse updates (lp.Options.EtaUpdates).
	EtaPivots int64 `json:"eta_pivots"`
	// SolveNanos is total wall-clock time inside SolveCtx. Scheduling-
	// dependent: zeroed by Canonical().
	SolveNanos int64 `json:"solve_ns"`
}

// MIPMetrics aggregates branch-and-bound counters. All fields except
// SolveNanos are deterministic.
type MIPMetrics struct {
	// Solves counts mip.SolveCtx invocations.
	Solves int64 `json:"solves"`
	// Nodes counts explored branch-and-bound nodes.
	Nodes int64 `json:"nodes"`
	// PrunedNodes counts nodes discarded by the incumbent bound without
	// branching (popped-and-pruned plus bound-dominated after the LP).
	PrunedNodes int64 `json:"pruned_nodes"`
	// IncumbentUpdates counts strict improvements of the best integer
	// solution (warm starts, heuristic completions and integral nodes).
	IncumbentUpdates int64 `json:"incumbent_updates"`
	// HeuristicCalls counts rounding-heuristic invocations.
	HeuristicCalls int64 `json:"heuristic_calls"`
	// SolveNanos is total wall-clock time inside SolveCtx. Zeroed by
	// Canonical().
	SolveNanos int64 `json:"solve_ns"`
}

// DecompMetrics aggregates Benders-decomposition counters from the flexile
// offline solve. All fields are deterministic.
type DecompMetrics struct {
	// Solves counts offline decompositions run.
	Solves int64 `json:"solves"`
	// Iterations is the total Benders iteration count.
	Iterations int64 `json:"iterations"`
	// ScenarioSolves counts successful scenario subproblem solves (the ones
	// whose cuts entered the pool).
	ScenarioSolves int64 `json:"scenario_solves"`
	// ScenarioRetries counts scenario solves that failed and recovered under
	// hardened settings (== len(SolveReport.Retried)).
	ScenarioRetries int64 `json:"scenario_retries"`
	// ScenarioSkips counts scenario solves that exhausted their attempts
	// (== len(SolveReport.Skipped)).
	ScenarioSkips int64 `json:"scenario_skips"`
	// ScenLossFallbacks counts ScenLoss precomputes that fell back to the
	// trivial bound.
	ScenLossFallbacks int64 `json:"scenloss_fallbacks"`
	// MasterSolves counts master MIP solve rounds (including re-solves after
	// shared-cut separation).
	MasterSolves int64 `json:"master_solves"`
	// MasterFailures counts master steps that failed and ended the
	// decomposition with the best incumbent.
	MasterFailures int64 `json:"master_failures"`
	// CutsGenerated counts Benders cuts extracted from scenario solves;
	// CutsDeduped of those were exact duplicates of a cut already pooled
	// (same native scenario, identical coefficients) and were dropped.
	CutsGenerated int64 `json:"cuts_generated"`
	CutsDeduped   int64 `json:"cuts_deduped"`
	// CutsRetired counts pooled cuts retired by the aging policy (dominated
	// at CutAge consecutive master incumbents); CutsRevived counts retired
	// cuts brought back after binding again or being regenerated.
	CutsRetired int64 `json:"cuts_retired"`
	CutsRevived int64 `json:"cuts_revived"`
	// SharedCutRows counts g^q_{q'} rows materialized by the separation
	// rounds across all master solves.
	SharedCutRows int64 `json:"shared_cut_rows"`
}

// PoolMetrics aggregates internal/par worker-pool accounting. Launches and
// Items are deterministic; MaxWorkers, WorkerItems and BusyNanos depend on
// the configured worker count and the scheduler, and are zeroed by
// Canonical().
type PoolMetrics struct {
	// Launches counts pool invocations (par.Collect calls).
	Launches int64 `json:"launches"`
	// Items counts work items executed across all launches.
	Items int64 `json:"items"`
	// MaxWorkers is the widest pool launched.
	MaxWorkers int64 `json:"max_workers"`
	// WorkerItems[w] counts items executed by worker id w (pool utilization:
	// a balanced pool has near-equal entries).
	WorkerItems []int64 `json:"worker_items,omitempty"`
	// BusyNanos is the summed wall-clock time spent inside work items — the
	// numerator of pool utilization (BusyNanos / (elapsed × workers)).
	BusyNanos int64 `json:"busy_ns"`
}

// ServeMetrics aggregates the online allocation server's counters
// (internal/serve, the flexile-serve daemon). Every field is
// deterministic given the request/reload sequence except the
// overload-dependent ones — GateWaits, DeadlineShed, DeadlineExpired,
// FlightShared — which depend on scheduling and load; request latency
// lives in the Latency.ServeRequest histogram, not here.
type ServeMetrics struct {
	// Requests counts allocation queries accepted by the HTTP layer
	// (including ones that fail validation); BadRequests of those were
	// rejected (malformed JSON, unknown failure state, out-of-range ids).
	Requests    int64 `json:"requests"`
	BadRequests int64 `json:"bad_requests"`
	// CacheHits/CacheMisses split the valid queries by whether the
	// per-scenario allocation cache answered directly. With the cache
	// disabled (-cache-size 0) every valid query is a miss.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// Recomputes counts Online solves actually executed; FlightShared
	// counts misses that coalesced onto another request's in-flight solve
	// (single-flight), so Recomputes + FlightShared == CacheMisses on an
	// error-free run.
	Recomputes   int64 `json:"recomputes"`
	FlightShared int64 `json:"flight_shared"`
	// Reloads counts artifact (re)load attempts — the initial load plus
	// every SIGHUP-triggered one; ReloadErrors counts the attempts that
	// failed and left the previous artifact serving, so successful swaps
	// are Reloads - ReloadErrors.
	Reloads      int64 `json:"reloads"`
	ReloadErrors int64 `json:"reload_errors"`
	// GateWaits counts recomputations that found the recompute gate
	// saturated and had to queue for a slot — the serving layer's
	// overload signal.
	GateWaits int64 `json:"gate_waits"`
	// QuotaRejects counts requests refused at admission because the
	// tenant's token bucket was empty (HTTP 429).
	QuotaRejects int64 `json:"quota_rejects"`
	// DeadlineShed counts requests refused on arrival because the
	// predicted queue wait already exceeded their deadline (HTTP 503
	// with Retry-After) — overload shed before any work was queued.
	DeadlineShed int64 `json:"deadline_shed"`
	// DeadlineExpired counts admitted requests whose deadline (or client
	// connection) expired before the shared recomputation finished; the
	// detached computation still ran to completion for later callers.
	DeadlineExpired int64 `json:"deadline_expired"`
	// RecomputeErrors counts Online recomputations that failed; each
	// feeds the recompute circuit breaker's consecutive-failure count.
	RecomputeErrors int64 `json:"recompute_errors"`
	// Degraded counts requests answered from the stale last-known-good
	// store (marked X-Flexile-Degraded) because the live recompute path
	// failed or the breaker was open.
	Degraded int64 `json:"degraded"`
	// BreakerTrips counts transitions of either circuit breaker
	// (recompute or reload) to the open state; BreakerRejects counts
	// requests short-circuited while the recompute breaker was open.
	BreakerTrips   int64 `json:"breaker_trips"`
	BreakerRejects int64 `json:"breaker_rejects"`
	// ReloadsSkipped counts reload attempts suppressed by the open
	// reload breaker — SIGHUP storms against a corrupt artifact stop
	// hammering the decoder after Threshold consecutive failures.
	ReloadsSkipped int64 `json:"reloads_skipped"`
	// BatchRequests counts POST /v1/alloc/batch HTTP requests;
	// BatchEntries counts the allocation queries they carried (each entry
	// is also counted in Requests and its disposition counters, so the
	// single-query and batch paths share one accounting). BatchDeduped
	// counts entries answered by copying another entry's result because
	// the batch repeated the same (artifact, failure-state) query.
	BatchRequests int64 `json:"batch_requests"`
	BatchEntries  int64 `json:"batch_entries"`
	BatchDeduped  int64 `json:"batch_deduped"`
}

// LatencyID names one of the collector's built-in latency histograms.
type LatencyID int

const (
	// LatLPSolve is the per-LP wall-clock solve time (every SolveCtx).
	LatLPSolve LatencyID = iota
	// LatScenarioSolve is the per-scenario Benders subproblem wall time
	// (attempts included), the distribution behind DecompMetrics totals.
	LatScenarioSolve
	// LatServeRequest is the allocation server's per-request handler time
	// (the p50/p99/p99.9 the serving layer is judged on).
	LatServeRequest
	// LatQueueWait is the time an admitted cache-miss recomputation spent
	// queued on the saturated recompute gate before acquiring a slot —
	// the distribution the deadline-aware admission estimate is judged
	// against.
	LatQueueWait
	// The LatStage* histograms are the per-stage request-trace families
	// (DESIGN.md §16): each tiling stage of the serve pipeline observes
	// its lap here, so /metrics exposes the same decomposition the
	// per-request spans show at /debug/requests, in aggregate.
	LatStageAdmit
	LatStageParse
	LatStageCache
	LatStageFlight
	LatStageWrite
	LatStageRecompute

	numLatencies
)

// LatencyMetrics is the snapshot of every built-in latency histogram. All
// of it is wall-clock and therefore scheduling-dependent: Canonical()
// strips it entirely.
type LatencyMetrics struct {
	LPSolve       HistSnapshot `json:"lp_solve"`
	ScenarioSolve HistSnapshot `json:"scenario_solve"`
	ServeRequest  HistSnapshot `json:"serve_request"`
	QueueWait     HistSnapshot `json:"queue_wait"`
	// Per-stage serve pipeline laps (DESIGN.md §16).
	StageAdmit     HistSnapshot `json:"stage_admit"`
	StageParse     HistSnapshot `json:"stage_parse"`
	StageCache     HistSnapshot `json:"stage_cache"`
	StageFlight    HistSnapshot `json:"stage_flight"`
	StageWrite     HistSnapshot `json:"stage_write"`
	StageRecompute HistSnapshot `json:"stage_recompute"`
}

// SolveMetrics is one solve's (or one process's) aggregated observability
// snapshot, attached to flexile's SolveReport and emitted as JSON by the
// CLIs' -metrics flag.
type SolveMetrics struct {
	LP      LPMetrics      `json:"lp"`
	MIP     MIPMetrics     `json:"mip"`
	Decomp  DecompMetrics  `json:"decomposition"`
	Pool    PoolMetrics    `json:"pool"`
	Serve   ServeMetrics   `json:"serve"`
	Latency LatencyMetrics `json:"latency"`
}

// Canonical returns the deterministic portion of the snapshot: wall-clock
// timers and scheduling-dependent pool fields are zeroed. Two runs of the
// same solve with different worker counts produce bit-identical Canonical
// metrics (asserted by TestMetricsDeterministicAcrossWorkers).
func (m SolveMetrics) Canonical() SolveMetrics {
	m.LP.SolveNanos = 0
	m.MIP.SolveNanos = 0
	m.Pool.MaxWorkers = 0
	m.Pool.WorkerItems = nil
	m.Pool.BusyNanos = 0
	m.Latency = LatencyMetrics{}
	return m
}

// JSON renders the snapshot as indented JSON.
func (m SolveMetrics) JSON() []byte {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil { // a struct of ints cannot fail to marshal
		panic(err)
	}
	return b
}

// Collector accumulates SolveMetrics race-safely. Every Add* method also
// adds into the parent chain, so nested collectors (per-offline-solve
// children under a process-global root) each see their own totals without
// the call sites flushing twice. A nil *Collector is a no-op receiver.
type Collector struct {
	parent *Collector
	tracer *Tracer

	m SolveMetrics // int64 fields mutated with sync/atomic only

	// hists are the built-in latency histograms, indexed by LatencyID.
	// Observations propagate up the parent chain like counter adds.
	hists [numLatencies]Histogram

	poolMu      sync.Mutex
	workerItems []int64
}

// New returns an empty root collector.
func New() *Collector { return &Collector{} }

// NewChild returns a collector whose adds roll up into parent (and its
// ancestors). A nil parent yields a standalone collector. Trace spans
// resolve against the nearest ancestor with an attached tracer.
func NewChild(parent *Collector) *Collector { return &Collector{parent: parent} }

// ctxKey is the context key type for collectors.
type ctxKey struct{}

// global is the process-wide fallback collector installed by SetGlobal
// (the CLIs' -metrics/-trace plumbing).
var global atomic.Pointer[Collector]

// SetGlobal installs c as the process-global collector that From falls back
// to when the context carries none. Pass nil to clear.
func SetGlobal(c *Collector) { global.Store(c) }

// Global returns the process-global collector, or nil.
func Global() *Collector { return global.Load() }

// With returns a context carrying c.
func With(ctx context.Context, c *Collector) context.Context {
	return context.WithValue(ctx, ctxKey{}, c)
}

// From returns the collector carried by ctx, falling back to the global
// collector; nil when neither exists. A nil ctx is allowed.
func From(ctx context.Context) *Collector {
	if ctx != nil {
		if c, ok := ctx.Value(ctxKey{}).(*Collector); ok {
			return c
		}
	}
	return Global()
}

// AddLP flushes one solver's LP counters.
func (c *Collector) AddLP(d LPMetrics) {
	for ; c != nil; c = c.parent {
		m := &c.m.LP
		atomic.AddInt64(&m.Solves, d.Solves)
		atomic.AddInt64(&m.Errors, d.Errors)
		atomic.AddInt64(&m.Optimal, d.Optimal)
		atomic.AddInt64(&m.Infeasible, d.Infeasible)
		atomic.AddInt64(&m.Unbounded, d.Unbounded)
		atomic.AddInt64(&m.IterLimit, d.IterLimit)
		atomic.AddInt64(&m.Pivots, d.Pivots)
		atomic.AddInt64(&m.Phase1Pivots, d.Phase1Pivots)
		atomic.AddInt64(&m.Phase2Pivots, d.Phase2Pivots)
		atomic.AddInt64(&m.BoundFlips, d.BoundFlips)
		atomic.AddInt64(&m.DegeneratePivots, d.DegeneratePivots)
		atomic.AddInt64(&m.Refactorizations, d.Refactorizations)
		atomic.AddInt64(&m.BlandActivations, d.BlandActivations)
		atomic.AddInt64(&m.SingularRestarts, d.SingularRestarts)
		atomic.AddInt64(&m.WarmStarts, d.WarmStarts)
		atomic.AddInt64(&m.WarmStartRejected, d.WarmStartRejected)
		atomic.AddInt64(&m.EtaPivots, d.EtaPivots)
		atomic.AddInt64(&m.SolveNanos, d.SolveNanos)
	}
}

// AddMIP flushes one branch-and-bound solve's counters.
func (c *Collector) AddMIP(d MIPMetrics) {
	for ; c != nil; c = c.parent {
		m := &c.m.MIP
		atomic.AddInt64(&m.Solves, d.Solves)
		atomic.AddInt64(&m.Nodes, d.Nodes)
		atomic.AddInt64(&m.PrunedNodes, d.PrunedNodes)
		atomic.AddInt64(&m.IncumbentUpdates, d.IncumbentUpdates)
		atomic.AddInt64(&m.HeuristicCalls, d.HeuristicCalls)
		atomic.AddInt64(&m.SolveNanos, d.SolveNanos)
	}
}

// AddDecomp flushes decomposition counters.
func (c *Collector) AddDecomp(d DecompMetrics) {
	for ; c != nil; c = c.parent {
		m := &c.m.Decomp
		atomic.AddInt64(&m.Solves, d.Solves)
		atomic.AddInt64(&m.Iterations, d.Iterations)
		atomic.AddInt64(&m.ScenarioSolves, d.ScenarioSolves)
		atomic.AddInt64(&m.ScenarioRetries, d.ScenarioRetries)
		atomic.AddInt64(&m.ScenarioSkips, d.ScenarioSkips)
		atomic.AddInt64(&m.ScenLossFallbacks, d.ScenLossFallbacks)
		atomic.AddInt64(&m.MasterSolves, d.MasterSolves)
		atomic.AddInt64(&m.MasterFailures, d.MasterFailures)
		atomic.AddInt64(&m.CutsGenerated, d.CutsGenerated)
		atomic.AddInt64(&m.CutsDeduped, d.CutsDeduped)
		atomic.AddInt64(&m.CutsRetired, d.CutsRetired)
		atomic.AddInt64(&m.CutsRevived, d.CutsRevived)
		atomic.AddInt64(&m.SharedCutRows, d.SharedCutRows)
	}
}

// AddServe flushes allocation-server counters.
func (c *Collector) AddServe(d ServeMetrics) {
	for ; c != nil; c = c.parent {
		m := &c.m.Serve
		atomic.AddInt64(&m.Requests, d.Requests)
		atomic.AddInt64(&m.BadRequests, d.BadRequests)
		atomic.AddInt64(&m.CacheHits, d.CacheHits)
		atomic.AddInt64(&m.CacheMisses, d.CacheMisses)
		atomic.AddInt64(&m.Recomputes, d.Recomputes)
		atomic.AddInt64(&m.FlightShared, d.FlightShared)
		atomic.AddInt64(&m.Reloads, d.Reloads)
		atomic.AddInt64(&m.ReloadErrors, d.ReloadErrors)
		atomic.AddInt64(&m.GateWaits, d.GateWaits)
		atomic.AddInt64(&m.QuotaRejects, d.QuotaRejects)
		atomic.AddInt64(&m.DeadlineShed, d.DeadlineShed)
		atomic.AddInt64(&m.DeadlineExpired, d.DeadlineExpired)
		atomic.AddInt64(&m.RecomputeErrors, d.RecomputeErrors)
		atomic.AddInt64(&m.Degraded, d.Degraded)
		atomic.AddInt64(&m.BreakerTrips, d.BreakerTrips)
		atomic.AddInt64(&m.BreakerRejects, d.BreakerRejects)
		atomic.AddInt64(&m.ReloadsSkipped, d.ReloadsSkipped)
		atomic.AddInt64(&m.BatchRequests, d.BatchRequests)
		atomic.AddInt64(&m.BatchEntries, d.BatchEntries)
		atomic.AddInt64(&m.BatchDeduped, d.BatchDeduped)
	}
}

// ObserveLatency records one duration into the latency histogram named by
// id, propagating up the parent chain like every other add. A nil receiver
// or out-of-range id is a no-op.
func (c *Collector) ObserveLatency(id LatencyID, d time.Duration) {
	if id < 0 || id >= numLatencies {
		return
	}
	for ; c != nil; c = c.parent {
		c.hists[id].Observe(d.Nanoseconds())
	}
}

// ObserveSince records time elapsed since start into the id'd histogram —
// the deferred form: `defer col.ObserveSince(obs.LatScenarioSolve,
// time.Now())` times the enclosing function.
func (c *Collector) ObserveSince(id LatencyID, start time.Time) {
	c.ObserveLatency(id, time.Since(start))
}

// LatencySnapshot returns a self-consistent snapshot of one latency
// histogram (see Histogram.Snapshot for the consistency contract).
func (c *Collector) LatencySnapshot(id LatencyID) HistSnapshot {
	if c == nil || id < 0 || id >= numLatencies {
		return HistSnapshot{}
	}
	return c.hists[id].Snapshot()
}

// PoolLaunch records one pool invocation of the given width.
func (c *Collector) PoolLaunch(workers int) {
	for ; c != nil; c = c.parent {
		atomic.AddInt64(&c.m.Pool.Launches, 1)
		w := int64(workers)
		for {
			cur := atomic.LoadInt64(&c.m.Pool.MaxWorkers)
			if cur >= w || atomic.CompareAndSwapInt64(&c.m.Pool.MaxWorkers, cur, w) {
				break
			}
		}
	}
}

// PoolItem records one executed work item: which worker ran it and how long
// it took.
func (c *Collector) PoolItem(worker int, nanos int64) {
	for ; c != nil; c = c.parent {
		atomic.AddInt64(&c.m.Pool.Items, 1)
		atomic.AddInt64(&c.m.Pool.BusyNanos, nanos)
		c.poolMu.Lock()
		for len(c.workerItems) <= worker {
			c.workerItems = append(c.workerItems, 0)
		}
		c.workerItems[worker]++
		c.poolMu.Unlock()
	}
}

// Snapshot returns the collector's current totals. Concurrent adds may land
// between field loads; each individual counter is still exact and
// monotonic, which is all the consumers need (the authoritative snapshot is
// taken after the solve's pool work has joined).
func (c *Collector) Snapshot() SolveMetrics {
	if c == nil {
		return SolveMetrics{}
	}
	var out SolveMetrics
	src, dst := &c.m.LP, &out.LP
	dst.Solves = atomic.LoadInt64(&src.Solves)
	dst.Errors = atomic.LoadInt64(&src.Errors)
	dst.Optimal = atomic.LoadInt64(&src.Optimal)
	dst.Infeasible = atomic.LoadInt64(&src.Infeasible)
	dst.Unbounded = atomic.LoadInt64(&src.Unbounded)
	dst.IterLimit = atomic.LoadInt64(&src.IterLimit)
	dst.Pivots = atomic.LoadInt64(&src.Pivots)
	dst.Phase1Pivots = atomic.LoadInt64(&src.Phase1Pivots)
	dst.Phase2Pivots = atomic.LoadInt64(&src.Phase2Pivots)
	dst.BoundFlips = atomic.LoadInt64(&src.BoundFlips)
	dst.DegeneratePivots = atomic.LoadInt64(&src.DegeneratePivots)
	dst.Refactorizations = atomic.LoadInt64(&src.Refactorizations)
	dst.BlandActivations = atomic.LoadInt64(&src.BlandActivations)
	dst.SingularRestarts = atomic.LoadInt64(&src.SingularRestarts)
	dst.WarmStarts = atomic.LoadInt64(&src.WarmStarts)
	dst.WarmStartRejected = atomic.LoadInt64(&src.WarmStartRejected)
	dst.EtaPivots = atomic.LoadInt64(&src.EtaPivots)
	dst.SolveNanos = atomic.LoadInt64(&src.SolveNanos)
	ms, md := &c.m.MIP, &out.MIP
	md.Solves = atomic.LoadInt64(&ms.Solves)
	md.Nodes = atomic.LoadInt64(&ms.Nodes)
	md.PrunedNodes = atomic.LoadInt64(&ms.PrunedNodes)
	md.IncumbentUpdates = atomic.LoadInt64(&ms.IncumbentUpdates)
	md.HeuristicCalls = atomic.LoadInt64(&ms.HeuristicCalls)
	md.SolveNanos = atomic.LoadInt64(&ms.SolveNanos)
	ds, dd := &c.m.Decomp, &out.Decomp
	dd.Solves = atomic.LoadInt64(&ds.Solves)
	dd.Iterations = atomic.LoadInt64(&ds.Iterations)
	dd.ScenarioSolves = atomic.LoadInt64(&ds.ScenarioSolves)
	dd.ScenarioRetries = atomic.LoadInt64(&ds.ScenarioRetries)
	dd.ScenarioSkips = atomic.LoadInt64(&ds.ScenarioSkips)
	dd.ScenLossFallbacks = atomic.LoadInt64(&ds.ScenLossFallbacks)
	dd.MasterSolves = atomic.LoadInt64(&ds.MasterSolves)
	dd.MasterFailures = atomic.LoadInt64(&ds.MasterFailures)
	dd.CutsGenerated = atomic.LoadInt64(&ds.CutsGenerated)
	dd.CutsDeduped = atomic.LoadInt64(&ds.CutsDeduped)
	dd.CutsRetired = atomic.LoadInt64(&ds.CutsRetired)
	dd.CutsRevived = atomic.LoadInt64(&ds.CutsRevived)
	dd.SharedCutRows = atomic.LoadInt64(&ds.SharedCutRows)
	ps, pd := &c.m.Pool, &out.Pool
	pd.Launches = atomic.LoadInt64(&ps.Launches)
	pd.Items = atomic.LoadInt64(&ps.Items)
	pd.MaxWorkers = atomic.LoadInt64(&ps.MaxWorkers)
	pd.BusyNanos = atomic.LoadInt64(&ps.BusyNanos)
	ss, sd := &c.m.Serve, &out.Serve
	sd.Requests = atomic.LoadInt64(&ss.Requests)
	sd.BadRequests = atomic.LoadInt64(&ss.BadRequests)
	sd.CacheHits = atomic.LoadInt64(&ss.CacheHits)
	sd.CacheMisses = atomic.LoadInt64(&ss.CacheMisses)
	sd.Recomputes = atomic.LoadInt64(&ss.Recomputes)
	sd.FlightShared = atomic.LoadInt64(&ss.FlightShared)
	sd.Reloads = atomic.LoadInt64(&ss.Reloads)
	sd.ReloadErrors = atomic.LoadInt64(&ss.ReloadErrors)
	sd.GateWaits = atomic.LoadInt64(&ss.GateWaits)
	sd.QuotaRejects = atomic.LoadInt64(&ss.QuotaRejects)
	sd.DeadlineShed = atomic.LoadInt64(&ss.DeadlineShed)
	sd.DeadlineExpired = atomic.LoadInt64(&ss.DeadlineExpired)
	sd.RecomputeErrors = atomic.LoadInt64(&ss.RecomputeErrors)
	sd.Degraded = atomic.LoadInt64(&ss.Degraded)
	sd.BreakerTrips = atomic.LoadInt64(&ss.BreakerTrips)
	sd.BreakerRejects = atomic.LoadInt64(&ss.BreakerRejects)
	sd.ReloadsSkipped = atomic.LoadInt64(&ss.ReloadsSkipped)
	sd.BatchRequests = atomic.LoadInt64(&ss.BatchRequests)
	sd.BatchEntries = atomic.LoadInt64(&ss.BatchEntries)
	sd.BatchDeduped = atomic.LoadInt64(&ss.BatchDeduped)
	out.Latency.LPSolve = c.hists[LatLPSolve].Snapshot()
	out.Latency.ScenarioSolve = c.hists[LatScenarioSolve].Snapshot()
	out.Latency.ServeRequest = c.hists[LatServeRequest].Snapshot()
	out.Latency.QueueWait = c.hists[LatQueueWait].Snapshot()
	out.Latency.StageAdmit = c.hists[LatStageAdmit].Snapshot()
	out.Latency.StageParse = c.hists[LatStageParse].Snapshot()
	out.Latency.StageCache = c.hists[LatStageCache].Snapshot()
	out.Latency.StageFlight = c.hists[LatStageFlight].Snapshot()
	out.Latency.StageWrite = c.hists[LatStageWrite].Snapshot()
	out.Latency.StageRecompute = c.hists[LatStageRecompute].Snapshot()
	c.poolMu.Lock()
	if len(c.workerItems) > 0 {
		pd.WorkerItems = append([]int64(nil), c.workerItems...)
	}
	c.poolMu.Unlock()
	return out
}
