// Package expo renders the observability layer (internal/obs) in the
// Prometheus text exposition format, version 0.0.4 — a from-scratch,
// stdlib-only encoder for the subset the serving stack emits: counter,
// gauge and histogram families with HELP/TYPE header lines, label escaping,
// and cumulative `_bucket`/`_sum`/`_count` histogram rendering.
//
// The package also ships the inverse: Lint, a grammar-conformance checker
// for the same subset, used by the test battery and the `make scrape` CI
// target to prove every rendered page parses (metric-name charset, label
// escape sequences, monotone non-decreasing `le` buckets ending in +Inf,
// `_count` equal to the +Inf bucket).
//
// Everything renders from self-consistent snapshots (obs.Collector.Snapshot
// and obs.Histogram's epoch-consistent Snapshot), so a scrape racing a
// request hammer never observes a `_count`/`_sum` pair from two different
// instants.
package expo

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"flexile/internal/obs"
)

// ContentType is the HTTP Content-Type of a rendered exposition page.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Label is one name="value" pair on a sample line.
type Label struct {
	Name, Value string
}

// Encoder streams one exposition page. Methods latch the first write or
// validation error; check Err once at the end. Families must be emitted
// one at a time (all samples of a name together), which every caller in
// this repo does by construction.
type Encoder struct {
	w    io.Writer
	err  error
	seen map[string]bool
}

// NewEncoder returns an encoder writing to w.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: w, seen: make(map[string]bool)}
}

// Err returns the first error encountered while encoding, if any.
func (e *Encoder) Err() error { return e.err }

func (e *Encoder) setErr(err error) {
	if e.err == nil {
		e.err = err
	}
}

func (e *Encoder) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	if _, err := fmt.Fprintf(e.w, format, args...); err != nil {
		e.err = err
	}
}

// validName reports whether name matches the metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validLabelName reports whether name matches [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// escapeHelp escapes a HELP docstring: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value: backslash, newline and double quote.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// formatValue renders a sample value: Go's shortest float form, with the
// Prometheus spellings of the non-finite values.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// header emits the HELP and TYPE lines for a family, once per page.
func (e *Encoder) header(name, help, typ string) bool {
	if e.err != nil {
		return false
	}
	if !validName(name) {
		e.setErr(fmt.Errorf("expo: invalid metric name %q", name))
		return false
	}
	if e.seen[name] {
		e.setErr(fmt.Errorf("expo: family %q emitted twice", name))
		return false
	}
	e.seen[name] = true
	if help != "" {
		e.printf("# HELP %s %s\n", name, escapeHelp(help))
	}
	e.printf("# TYPE %s %s\n", name, typ)
	return true
}

// sample emits one sample line name{labels} value.
func (e *Encoder) sample(name string, labels []Label, v float64) {
	if e.err != nil {
		return
	}
	var b strings.Builder
	b.WriteString(name)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, l := range labels {
			if !validLabelName(l.Name) {
				e.setErr(fmt.Errorf("expo: invalid label name %q on %s", l.Name, name))
				return
			}
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Name)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(l.Value))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	e.printf("%s %s\n", b.String(), formatValue(v))
}

// Counter emits a single-sample counter family. By convention the name
// ends in _total.
func (e *Encoder) Counter(name, help string, v float64, labels ...Label) {
	if e.header(name, help, "counter") {
		e.sample(name, labels, v)
	}
}

// CounterVec emits one counter family with several labeled samples; values
// holds one entry per sample, labels one label set per sample.
func (e *Encoder) CounterVec(name, help string, values []float64, labels [][]Label) {
	if !e.header(name, help, "counter") {
		return
	}
	for i, v := range values {
		e.sample(name, labels[i], v)
	}
}

// Gauge emits a single-sample gauge family.
func (e *Encoder) Gauge(name, help string, v float64, labels ...Label) {
	if e.header(name, help, "gauge") {
		e.sample(name, labels, v)
	}
}

// GaugeVec emits one gauge family with several labeled samples; values
// holds one entry per sample, labels one label set per sample.
func (e *Encoder) GaugeVec(name, help string, values []float64, labels [][]Label) {
	if !e.header(name, help, "gauge") {
		return
	}
	for i, v := range values {
		e.sample(name, labels[i], v)
	}
}

// Histogram renders an obs.HistSnapshot as a Prometheus histogram family:
// cumulative _bucket samples over the full shared log-scale bucket scheme
// (scaled by scale — pass 1e-9 to render nanosecond observations in
// seconds), then _sum and _count. Every finite bound is emitted even when
// empty, so dashboards always see the complete scheme; the +Inf bucket
// always equals _count because the snapshot is epoch-consistent.
func (e *Encoder) Histogram(name, help string, s obs.HistSnapshot, scale float64, labels ...Label) {
	if !e.header(name, help, "histogram") {
		return
	}
	e.histSamples(name, s, scale, labels)
}

// HistogramVec emits one histogram family with several labeled series —
// the stage-duration family renders one full bucket scheme per stage
// label. snaps holds one snapshot per series, labels one label set per
// series (none of them may use the reserved "le" label).
func (e *Encoder) HistogramVec(name, help string, snaps []obs.HistSnapshot, scale float64, labels [][]Label) {
	if len(snaps) != len(labels) {
		e.setErr(fmt.Errorf("expo: %s: %d snapshots for %d label sets", name, len(snaps), len(labels)))
		return
	}
	if !e.header(name, help, "histogram") {
		return
	}
	for i, s := range snaps {
		e.histSamples(name, s, scale, labels[i])
	}
}

// histSamples renders one series' cumulative _bucket lines plus _sum and
// _count, under an already-emitted family header.
func (e *Encoder) histSamples(name string, s obs.HistSnapshot, scale float64, labels []Label) {
	bounds := obs.HistBounds()
	var cum uint64
	for i, b := range bounds {
		if i < len(s.Buckets) {
			cum += s.Buckets[i]
		}
		e.sample(name+"_bucket", append(labels, Label{"le", formatValue(float64(b) * scale)}), float64(cum))
	}
	if len(s.Buckets) == len(bounds)+1 {
		cum += s.Buckets[len(bounds)]
	}
	e.sample(name+"_bucket", append(labels, Label{"le", "+Inf"}), float64(cum))
	e.sample(name+"_sum", labels, float64(s.Sum)*scale)
	e.sample(name+"_count", labels, float64(s.Count))
}

// RawHistogram renders an arbitrary pre-bucketed histogram (the
// runtime/metrics shape): bounds are the len(counts)+1 bucket boundaries
// (possibly -Inf/+Inf at the ends), counts the per-bucket observation
// counts. sum may be NaN when the source does not track it.
func (e *Encoder) RawHistogram(name, help string, bounds []float64, counts []uint64, sum float64, labels ...Label) {
	if len(bounds) != len(counts)+1 {
		e.setErr(fmt.Errorf("expo: %s: %d bounds for %d counts", name, len(bounds), len(counts)))
		return
	}
	if !e.header(name, help, "histogram") {
		return
	}
	var cum uint64
	emitted := false
	for i, c := range counts {
		cum += c
		le := bounds[i+1]
		if math.IsInf(le, 1) {
			break // rendered below as the +Inf bucket
		}
		if c == 0 && emitted && i != len(counts)-1 {
			continue
		}
		e.sample(name+"_bucket", append(labels, Label{"le", formatValue(le)}), float64(cum))
		emitted = true
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	e.sample(name+"_bucket", append(labels, Label{"le", "+Inf"}), float64(total))
	e.sample(name+"_sum", labels, sum)
	e.sample(name+"_count", labels, float64(total))
}

// EncodeSolveMetrics renders the full obs.SolveMetrics tree — every
// counter the LP/MIP/decomposition/pool/serve layers aggregate, plus the
// three built-in latency histograms in seconds.
func EncodeSolveMetrics(e *Encoder, m obs.SolveMetrics) {
	// LP core.
	e.Counter("flexile_lp_solves_total", "LP solves started (including failed ones).", float64(m.LP.Solves))
	e.Counter("flexile_lp_errors_total", "LP solves that returned an error.", float64(m.LP.Errors))
	e.CounterVec("flexile_lp_outcomes_total", "Successful LP solves by final simplex status.",
		[]float64{float64(m.LP.Optimal), float64(m.LP.Infeasible), float64(m.LP.Unbounded), float64(m.LP.IterLimit)},
		[][]Label{
			{{"status", "optimal"}},
			{{"status", "infeasible"}},
			{{"status", "unbounded"}},
			{{"status", "iter_limit"}},
		})
	e.CounterVec("flexile_lp_pivots_total", "Simplex iterations by phase.",
		[]float64{float64(m.LP.Phase1Pivots), float64(m.LP.Phase2Pivots)},
		[][]Label{{{"phase", "1"}}, {{"phase", "2"}}})
	e.Counter("flexile_lp_bound_flips_total", "Simplex bound-flip iterations.", float64(m.LP.BoundFlips))
	e.Counter("flexile_lp_degenerate_pivots_total", "Basis changes with step length below tolerance.", float64(m.LP.DegeneratePivots))
	e.Counter("flexile_lp_refactorizations_total", "Full basis-inverse rebuilds.", float64(m.LP.Refactorizations))
	e.Counter("flexile_lp_bland_activations_total", "Switches to Bland's anti-cycling rule.", float64(m.LP.BlandActivations))
	e.Counter("flexile_lp_singular_restarts_total", "Recoveries from a singular basis.", float64(m.LP.SingularRestarts))
	e.Counter("flexile_lp_warm_starts_total", "Solves that installed a caller-supplied start basis.", float64(m.LP.WarmStarts))
	e.Counter("flexile_lp_warm_start_rejected_total", "Solves whose start basis was rejected (warm-start cache misses).", float64(m.LP.WarmStartRejected))
	e.Counter("flexile_lp_eta_pivots_total", "Pivots applied as product-form eta factors.", float64(m.LP.EtaPivots))
	// MIP.
	e.Counter("flexile_mip_solves_total", "Branch-and-bound solves.", float64(m.MIP.Solves))
	e.Counter("flexile_mip_nodes_total", "Explored branch-and-bound nodes.", float64(m.MIP.Nodes))
	e.Counter("flexile_mip_pruned_nodes_total", "Nodes discarded by the incumbent bound.", float64(m.MIP.PrunedNodes))
	e.Counter("flexile_mip_incumbent_updates_total", "Strict incumbent improvements.", float64(m.MIP.IncumbentUpdates))
	e.Counter("flexile_mip_heuristic_calls_total", "Rounding-heuristic invocations.", float64(m.MIP.HeuristicCalls))
	// Decomposition.
	e.Counter("flexile_decomp_solves_total", "Offline Benders decompositions run.", float64(m.Decomp.Solves))
	e.Counter("flexile_decomp_iterations_total", "Benders iterations.", float64(m.Decomp.Iterations))
	e.Counter("flexile_decomp_scenario_solves_total", "Successful scenario subproblem solves.", float64(m.Decomp.ScenarioSolves))
	e.Counter("flexile_decomp_scenario_retries_total", "Scenario solves recovered under hardened settings.", float64(m.Decomp.ScenarioRetries))
	e.Counter("flexile_decomp_scenario_skips_total", "Scenario solves that exhausted their attempts.", float64(m.Decomp.ScenarioSkips))
	e.Counter("flexile_decomp_scenloss_fallbacks_total", "ScenLoss precomputes that fell back to the trivial bound.", float64(m.Decomp.ScenLossFallbacks))
	e.Counter("flexile_decomp_master_solves_total", "Master MIP solve rounds.", float64(m.Decomp.MasterSolves))
	e.Counter("flexile_decomp_master_failures_total", "Master steps that ended the decomposition early.", float64(m.Decomp.MasterFailures))
	e.Counter("flexile_decomp_cuts_generated_total", "Benders cuts extracted from scenario solves.", float64(m.Decomp.CutsGenerated))
	e.Counter("flexile_decomp_cuts_deduped_total", "Cuts dropped as exact duplicates.", float64(m.Decomp.CutsDeduped))
	e.Counter("flexile_decomp_cuts_retired_total", "Pooled cuts retired by the aging policy.", float64(m.Decomp.CutsRetired))
	e.Counter("flexile_decomp_cuts_revived_total", "Retired cuts revived after binding again.", float64(m.Decomp.CutsRevived))
	e.Counter("flexile_decomp_shared_cut_rows_total", "Shared-cut rows materialized by separation rounds.", float64(m.Decomp.SharedCutRows))
	// Worker pool.
	e.Counter("flexile_pool_launches_total", "Worker-pool invocations.", float64(m.Pool.Launches))
	e.Counter("flexile_pool_items_total", "Work items executed.", float64(m.Pool.Items))
	e.Counter("flexile_pool_busy_seconds_total", "Wall-clock seconds spent inside work items.", float64(m.Pool.BusyNanos)*1e-9)
	e.Gauge("flexile_pool_max_workers", "Widest pool launched.", float64(m.Pool.MaxWorkers))
	// Serving layer.
	e.Counter("flexile_serve_requests_total", "Allocation queries accepted by the HTTP layer.", float64(m.Serve.Requests))
	e.Counter("flexile_serve_bad_requests_total", "Allocation queries rejected as malformed or unmatched.", float64(m.Serve.BadRequests))
	e.Counter("flexile_serve_cache_hits_total", "Queries answered from the allocation cache.", float64(m.Serve.CacheHits))
	e.Counter("flexile_serve_cache_misses_total", "Queries that missed the allocation cache.", float64(m.Serve.CacheMisses))
	e.Counter("flexile_serve_recomputes_total", "Online solves executed for cache misses.", float64(m.Serve.Recomputes))
	e.Counter("flexile_serve_flight_shared_total", "Misses coalesced onto an in-flight solve.", float64(m.Serve.FlightShared))
	e.Counter("flexile_serve_reloads_total", "Artifact load attempts, initial plus SIGHUP-triggered.", float64(m.Serve.Reloads))
	e.Counter("flexile_serve_reload_errors_total", "Artifact loads that failed and kept the previous artifact.", float64(m.Serve.ReloadErrors))
	e.Counter("flexile_serve_gate_waits_total", "Recomputations that queued on a saturated gate.", float64(m.Serve.GateWaits))
	// Overload resilience (DESIGN.md §13): admission, quotas, breakers,
	// degraded serving.
	e.Counter("flexile_serve_quota_rejects_total", "Requests refused by the per-tenant token-bucket quota.", float64(m.Serve.QuotaRejects))
	e.Counter("flexile_serve_deadline_shed_total", "Requests shed on arrival because the predicted queue wait exceeded their deadline.", float64(m.Serve.DeadlineShed))
	e.Counter("flexile_serve_deadline_expired_total", "Admitted requests whose deadline or connection expired before the recomputation finished.", float64(m.Serve.DeadlineExpired))
	e.Counter("flexile_serve_recompute_errors_total", "Online recomputations that failed.", float64(m.Serve.RecomputeErrors))
	e.Counter("flexile_serve_degraded_total", "Requests answered from the stale last-known-good store.", float64(m.Serve.Degraded))
	e.Counter("flexile_serve_breaker_trips_total", "Circuit-breaker transitions to the open state (recompute and reload breakers).", float64(m.Serve.BreakerTrips))
	e.Counter("flexile_serve_breaker_rejects_total", "Requests short-circuited while the recompute breaker was open.", float64(m.Serve.BreakerRejects))
	e.Counter("flexile_serve_reloads_skipped_total", "Reload attempts suppressed by the open reload breaker.", float64(m.Serve.ReloadsSkipped))
	// Batch allocation API (DESIGN.md §14): one HTTP request carries many
	// queries; entries share the single-query disposition counters above.
	e.Counter("flexile_serve_batch_requests_total", "POST /v1/alloc/batch HTTP requests.", float64(m.Serve.BatchRequests))
	e.Counter("flexile_serve_batch_entries_total", "Allocation queries carried inside batch requests.", float64(m.Serve.BatchEntries))
	e.Counter("flexile_serve_batch_deduped_total", "Batch entries answered by copying a duplicate entry's result.", float64(m.Serve.BatchDeduped))
	// Latency distributions (nanosecond observations rendered in seconds).
	e.Histogram("flexile_lp_solve_duration_seconds", "Wall-clock time per LP solve.", m.Latency.LPSolve, 1e-9)
	e.Histogram("flexile_scenario_solve_duration_seconds", "Wall-clock time per Benders scenario subproblem solve.", m.Latency.ScenarioSolve, 1e-9)
	e.Histogram("flexile_serve_request_duration_seconds", "Wall-clock time per allocation request.", m.Latency.ServeRequest, 1e-9)
	e.Histogram("flexile_serve_queue_wait_seconds", "Time admitted recomputations spent queued on the saturated gate.", m.Latency.QueueWait, 1e-9)
	// Per-stage request-trace laps (DESIGN.md §16): the same decomposition
	// /debug/requests shows per request, in aggregate, one series per stage.
	e.HistogramVec("flexile_serve_stage_duration_seconds",
		"Wall-clock time per serve pipeline stage (request-trace laps).",
		[]obs.HistSnapshot{
			m.Latency.StageAdmit,
			m.Latency.StageParse,
			m.Latency.StageCache,
			m.Latency.StageFlight,
			m.Latency.StageWrite,
			m.Latency.StageRecompute,
		}, 1e-9,
		[][]Label{
			{{"stage", "admit"}},
			{{"stage", "parse"}},
			{{"stage", "cache"}},
			{{"stage", "flight"}},
			{{"stage", "write"}},
			{{"stage", "recompute"}},
		})
}

// WritePage renders a complete exposition page: the collector's snapshot,
// any extra families the caller appends (gauges over live server state),
// and the Go runtime metrics. A nil collector renders zero solve counters.
func WritePage(w io.Writer, col *obs.Collector, extra func(*Encoder)) error {
	e := NewEncoder(w)
	EncodeSolveMetrics(e, col.Snapshot())
	if extra != nil {
		extra(e)
	}
	EncodeRuntime(e)
	return e.Err()
}
