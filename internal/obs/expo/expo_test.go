package expo

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"flexile/internal/obs"
)

// update rewrites the golden file instead of comparing against it:
//
//	go test ./internal/obs/expo -run Golden -update
var update = flag.Bool("update", false, "rewrite the golden file under testdata/")

// fixedMetrics builds a fully deterministic SolveMetrics with every counter
// distinct (so a transposed field shows up in the golden diff) and a
// hand-built latency snapshot.
func fixedMetrics() obs.SolveMetrics {
	var m obs.SolveMetrics
	m.LP = obs.LPMetrics{
		Solves: 101, Errors: 2, Optimal: 90, Infeasible: 5, Unbounded: 3,
		IterLimit: 1, Phase1Pivots: 1000, Phase2Pivots: 2000, BoundFlips: 30,
		DegeneratePivots: 40, Refactorizations: 7, BlandActivations: 1,
		SingularRestarts: 1, WarmStarts: 70, WarmStartRejected: 4,
		EtaPivots: 600, SolveNanos: 0,
	}
	m.MIP = obs.MIPMetrics{Solves: 11, Nodes: 500, PrunedNodes: 200, IncumbentUpdates: 9, HeuristicCalls: 12}
	m.Decomp = obs.DecompMetrics{
		Solves: 1, Iterations: 6, ScenarioSolves: 60, ScenarioRetries: 2,
		ScenarioSkips: 1, ScenLossFallbacks: 1, MasterSolves: 6, MasterFailures: 0,
		CutsGenerated: 55, CutsDeduped: 5, CutsRetired: 7, CutsRevived: 2, SharedCutRows: 10,
	}
	m.Pool = obs.PoolMetrics{Launches: 4, Items: 64, MaxWorkers: 8, BusyNanos: 2_500_000_000}
	m.Serve = obs.ServeMetrics{
		Requests: 1000, BadRequests: 7, CacheHits: 800, CacheMisses: 200,
		Recomputes: 150, FlightShared: 50, Reloads: 3, ReloadErrors: 1, GateWaits: 20,
		QuotaRejects: 13, DeadlineShed: 17, DeadlineExpired: 6, RecomputeErrors: 4,
		Degraded: 3, BreakerTrips: 2, BreakerRejects: 8, ReloadsSkipped: 5,
		BatchRequests: 21, BatchEntries: 340, BatchDeduped: 19,
	}
	m.Latency.ServeRequest = fixedHist()
	m.Latency.QueueWait = fixedHist()
	return m
}

// fixedHist returns a deterministic snapshot spanning the first buckets and
// the overflow bucket.
func fixedHist() obs.HistSnapshot {
	n := len(obs.HistBounds()) + 1
	buckets := make([]uint64, n)
	buckets[0] = 10
	buckets[1] = 20
	buckets[5] = 5
	buckets[n-1] = 2 // overflow
	return obs.HistSnapshot{Count: 37, Sum: 123456, Buckets: buckets}
}

func TestEncodeGolden(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	EncodeSolveMetrics(e, fixedMetrics())
	e.Gauge("flexile_serve_ready", "Whether the server is ready.", 1)
	e.Gauge("flexile_artifact_info", "Artifact identity.", 1,
		Label{"version", "1"}, Label{"checksum", "abc123"},
		Label{"path", `C:\artifacts\"prod"` + "\nv2"}) // exercises every escape
	if err := e.Err(); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := Lint(buf.Bytes()); err != nil {
		t.Fatalf("rendered golden page does not lint: %v", err)
	}

	path := filepath.Join("testdata", "solve_metrics.prom")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, buf.Len())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (generate with -update): %v", path, err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		gotLines := strings.Split(buf.String(), "\n")
		wantLines := strings.Split(string(want), "\n")
		for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
			var g, w string
			if i < len(gotLines) {
				g = gotLines[i]
			}
			if i < len(wantLines) {
				w = wantLines[i]
			}
			if g != w {
				t.Fatalf("golden mismatch at line %d:\n got: %q\nwant: %q", i+1, g, w)
			}
		}
		t.Fatal("golden mismatch (length only)")
	}
}

// TestLabelEscapeRoundTrip renders label values containing every character
// the grammar escapes and checks the linter's parser decodes them back to
// the originals.
func TestLabelEscapeRoundTrip(t *testing.T) {
	nasty := []string{
		`back\slash`,
		"new\nline",
		`quo"te`,
		`all\three:"a"` + "\n" + `\\done`,
		"", // empty value
	}
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	labels := make([][]Label, len(nasty))
	values := make([]float64, len(nasty))
	for i, v := range nasty {
		labels[i] = []Label{{"v", v}}
		values[i] = float64(i)
	}
	e.CounterVec("nasty_total", "escape torture", values, labels)
	if err := e.Err(); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := Lint(buf.Bytes()); err != nil {
		t.Fatalf("lint: %v\npage:\n%s", err, buf.String())
	}
	var decoded []string
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		_, ls, _, err := parseSample(line)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if len(ls) != 1 || ls[0].Name != "v" {
			t.Fatalf("labels of %q = %+v", line, ls)
		}
		decoded = append(decoded, ls[0].Value)
	}
	if len(decoded) != len(nasty) {
		t.Fatalf("decoded %d values, want %d", len(decoded), len(nasty))
	}
	for i, v := range nasty {
		if decoded[i] != v {
			t.Fatalf("round trip %d: %q -> %q", i, v, decoded[i])
		}
	}
}

func TestHistogramExposition(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	e.Histogram("x_seconds", "help", fixedHist(), 1e-9)
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	if err := Lint(buf.Bytes()); err != nil {
		t.Fatalf("lint: %v\n%s", err, page)
	}
	// Every finite bound renders even when its bucket is empty, so a live
	// scrape always shows the full scheme (>= 8 buckets plus +Inf).
	finite := strings.Count(page, "x_seconds_bucket{le=")
	wantFinite := len(obs.HistBounds()) + 1 // 27 finite + the +Inf line
	if finite != wantFinite {
		t.Fatalf("rendered %d bucket lines, want %d\n%s", finite, wantFinite, page)
	}
	if !strings.Contains(page, `x_seconds_bucket{le="+Inf"} 37`) {
		t.Fatalf("missing +Inf bucket:\n%s", page)
	}
	if !strings.Contains(page, "x_seconds_count 37") {
		t.Fatalf("missing _count:\n%s", page)
	}
	// First bound 256ns scaled to seconds.
	if !strings.Contains(page, `x_seconds_bucket{le="2.56e-07"} 10`) {
		t.Fatalf("missing scaled first bucket:\n%s", page)
	}
	// _sum scaled: 123456ns = 0.000123456s.
	if !strings.Contains(page, "x_seconds_sum 0.000123456") {
		t.Fatalf("missing scaled sum:\n%s", page)
	}
}

func TestHistogramEmptySnapshotStillConforms(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	e.Histogram("empty_seconds", "never observed", obs.HistSnapshot{}, 1e-9)
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	if err := Lint(buf.Bytes()); err != nil {
		t.Fatalf("empty histogram does not lint: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), `empty_seconds_bucket{le="+Inf"} 0`) {
		t.Fatalf("missing +Inf bucket:\n%s", buf.String())
	}
}

func TestEncoderRejectsBadNames(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	e.Counter("0bad", "leading digit", 1)
	if e.Err() == nil {
		t.Fatal("bad metric name accepted")
	}
	e = NewEncoder(&buf)
	e.Gauge("ok", "h", 1, Label{"0bad", "v"})
	if e.Err() == nil {
		t.Fatal("bad label name accepted")
	}
	e = NewEncoder(&buf)
	e.Counter("twice_total", "h", 1)
	e.Counter("twice_total", "h", 2)
	if e.Err() == nil {
		t.Fatal("duplicate family accepted")
	}
}

func TestFormatValue(t *testing.T) {
	for _, c := range []struct {
		v    float64
		want string
	}{
		{0, "0"}, {1, "1"}, {1.5, "1.5"},
		{math.Inf(1), "+Inf"}, {math.Inf(-1), "-Inf"},
		{2.56e-07, "2.56e-07"},
	} {
		if got := formatValue(c.v); got != c.want {
			t.Errorf("formatValue(%v) = %q, want %q", c.v, got, c.want)
		}
	}
	if got := formatValue(math.NaN()); got != "NaN" {
		t.Errorf("formatValue(NaN) = %q", got)
	}
}

// TestLintRejects feeds malformed pages and requires a diagnostic for each.
func TestLintRejects(t *testing.T) {
	cases := map[string]string{
		"bad-metric-name":   "9lives 1\n",
		"bad-metric-char":   "foo-bar 1\n",
		"bad-label-name":    `foo{9x="v"} 1` + "\n",
		"unquoted-label":    `foo{x=v} 1` + "\n",
		"bad-escape":        `foo{x="\t"} 1` + "\n",
		"unterminated":      `foo{x="v} 1` + "\n",
		"missing-value":     "foo\n",
		"bad-value":         "foo hello\n",
		"duplicate-sample":  "foo 1\nfoo 2\n",
		"duplicate-type":    "# TYPE foo counter\n# TYPE foo gauge\n",
		"unknown-type":      "# TYPE foo widget\n",
		"le-not-monotone":   "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n",
		"cum-decreases":     "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 3\nh_count 5\n",
		"missing-inf":       "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"missing-sum":       "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
		"missing-count":     "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\n",
		"torn-count":        "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 2\n",
		"bucket-without-le": "# TYPE h histogram\nh_bucket 1\nh_sum 1\nh_count 1\n",
		"bad-le":            "# TYPE h histogram\nh_bucket{le=\"abc\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
	}
	for name, page := range cases {
		if err := Lint([]byte(page)); err == nil {
			t.Errorf("%s: lint accepted malformed page:\n%s", name, page)
		}
	}
}

func TestLintAcceptsValidConstructs(t *testing.T) {
	pages := map[string]string{
		"bare-comment":  "# just a comment\n",
		"nan-sum":       "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 0\nh_sum NaN\nh_count 0\n",
		"neg-inf-value": "foo -Inf\n",
		"labeled-hist": "# TYPE h histogram\n" +
			"h_bucket{s=\"a\",le=\"1\"} 1\nh_bucket{s=\"a\",le=\"+Inf\"} 1\nh_sum{s=\"a\"} 1\nh_count{s=\"a\"} 1\n" +
			"h_bucket{s=\"b\",le=\"1\"} 2\nh_bucket{s=\"b\",le=\"+Inf\"} 2\nh_sum{s=\"b\"} 2\nh_count{s=\"b\"} 2\n",
		"timestamped": "foo 1 1700000000000\n",
	}
	for name, page := range pages {
		if err := Lint([]byte(page)); err != nil {
			t.Errorf("%s: lint rejected valid page: %v\n%s", name, err, page)
		}
	}
}

func TestRuntimeMetrics(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	EncodeRuntime(e)
	if err := e.Err(); err != nil {
		t.Fatalf("encode runtime: %v", err)
	}
	if err := Lint(buf.Bytes()); err != nil {
		t.Fatalf("runtime page does not lint: %v", err)
	}
	families := make(map[string]bool)
	for _, line := range strings.Split(buf.String(), "\n") {
		if name, ok := strings.CutPrefix(line, "# TYPE "); ok {
			families[strings.Fields(name)[0]] = true
		}
	}
	goCount := 0
	for f := range families {
		if strings.HasPrefix(f, "go_") {
			goCount++
		}
	}
	if goCount < 5 {
		t.Fatalf("only %d go_ families, want >= 5:\n%v", goCount, families)
	}
	for _, want := range []string{"go_sched_goroutines", "go_memory_classes_heap_objects_bytes"} {
		if !families[want] {
			t.Fatalf("missing expected runtime family %s in %v", want, families)
		}
	}
}

func TestRuntimeName(t *testing.T) {
	for _, c := range []struct{ in, want string }{
		{"/sched/goroutines:goroutines", "go_sched_goroutines"},
		{"/memory/classes/heap/objects:bytes", "go_memory_classes_heap_objects_bytes"},
		{"/gc/cycles/total:gc-cycles", "go_gc_cycles_total_gc_cycles"},
		{"/sched/latencies:seconds", "go_sched_latencies_seconds"},
	} {
		if got := runtimeName(c.in); got != c.want {
			t.Errorf("runtimeName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestWritePage(t *testing.T) {
	col := obs.New()
	col.AddServe(obs.ServeMetrics{Requests: 5, CacheHits: 3})
	col.ObserveLatency(obs.LatServeRequest, 2*time.Millisecond)
	var buf bytes.Buffer
	extraRan := false
	if err := WritePage(&buf, col, func(e *Encoder) {
		extraRan = true
		e.Gauge("flexile_serve_ready", "ready flag", 1)
	}); err != nil {
		t.Fatalf("WritePage: %v", err)
	}
	if !extraRan {
		t.Fatal("extra hook did not run")
	}
	page := buf.String()
	if err := Lint(buf.Bytes()); err != nil {
		t.Fatalf("page does not lint: %v", err)
	}
	for _, want := range []string{
		"flexile_serve_requests_total 5",
		"flexile_serve_cache_hits_total 3",
		"flexile_serve_ready 1",
		"flexile_serve_request_duration_seconds_count 1",
		`flexile_serve_request_duration_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("page missing %q:\n%s", want, page)
		}
	}
	// Nil collector: all-zero counters, still a conformant page.
	buf.Reset()
	if err := WritePage(&buf, nil, nil); err != nil {
		t.Fatalf("WritePage(nil): %v", err)
	}
	if err := Lint(buf.Bytes()); err != nil {
		t.Fatalf("nil-collector page does not lint: %v", err)
	}
	if !strings.Contains(buf.String(), "flexile_serve_requests_total 0") {
		t.Fatal("nil-collector page missing zero counters")
	}
}
