package expo

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Lint validates a rendered exposition page against the subset of the
// Prometheus text-format grammar this package emits, line by line:
//
//   - comment lines are `# HELP <name> <docstring>` or `# TYPE <name>
//     <counter|gauge|histogram|summary|untyped>`, with TYPE emitted at most
//     once per family and before any of its samples;
//   - sample lines are `name{label="value",...} value`, with metric names
//     matching [a-zA-Z_:][a-zA-Z0-9_:]*, label names matching
//     [a-zA-Z_][a-zA-Z0-9_]*, label values escaping `\`, `"` and newline,
//     and values parsing as Go floats or the spellings +Inf/-Inf/NaN;
//   - no two samples share a name and label set;
//   - every histogram family's `le` values are valid floats in strictly
//     increasing order with monotone non-decreasing cumulative counts,
//     the last bucket is le="+Inf", and `_count` equals that +Inf bucket
//     (the epoch-consistency invariant), with `_sum` present.
//
// The first violation is returned with its line number; nil means the page
// conforms.
func Lint(page []byte) error {
	type histState struct {
		lastLe     float64
		lastCum    float64
		sawInf     bool
		infCount   float64
		count      float64
		sawCount   bool
		sawSum     bool
		sawBucket  bool
		bucketLine int
	}
	typed := make(map[string]string)
	hists := make(map[string]*histState) // keyed by family + non-le labels
	histFamilies := make(map[string][]string)
	samplesSeen := make(map[string]int)

	sc := bufio.NewScanner(bytes.NewReader(page))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := lintComment(line, typed); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		key := name + "\x00" + canonicalLabels(labels)
		if prev, dup := samplesSeen[key]; dup {
			return fmt.Errorf("line %d: duplicate sample %s (first at line %d)", lineNo, name, prev)
		}
		samplesSeen[key] = lineNo

		family, suffix := histFamilyOf(name, typed)
		if family == "" {
			continue
		}
		rest := make([]Label, 0, len(labels))
		var le string
		sawLe := false
		for _, l := range labels {
			if l.Name == "le" {
				le, sawLe = l.Value, true
				continue
			}
			rest = append(rest, l)
		}
		hkey := family + "\x00" + canonicalLabels(rest)
		st := hists[hkey]
		if st == nil {
			st = &histState{lastLe: math.Inf(-1)}
			hists[hkey] = st
			histFamilies[family] = append(histFamilies[family], hkey)
		}
		switch suffix {
		case "_bucket":
			if !sawLe {
				return fmt.Errorf("line %d: %s without le label", lineNo, name)
			}
			st.sawBucket = true
			st.bucketLine = lineNo
			if st.sawInf {
				return fmt.Errorf("line %d: %s bucket after le=\"+Inf\"", lineNo, name)
			}
			if le == "+Inf" {
				st.sawInf = true
				st.infCount = value
			} else {
				f, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("line %d: %s le=%q is not a float: %v", lineNo, name, le, err)
				}
				if f <= st.lastLe {
					return fmt.Errorf("line %d: %s le=%q not strictly increasing (previous %v)", lineNo, name, le, st.lastLe)
				}
				st.lastLe = f
			}
			if value < st.lastCum {
				return fmt.Errorf("line %d: %s cumulative count decreased: %v after %v", lineNo, name, value, st.lastCum)
			}
			st.lastCum = value
		case "_sum":
			st.sawSum = true
		case "_count":
			st.sawCount = true
			st.count = value
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for family, keys := range histFamilies {
		for _, hkey := range keys {
			st := hists[hkey]
			if !st.sawBucket {
				return fmt.Errorf("histogram %s has no buckets", family)
			}
			if !st.sawInf {
				return fmt.Errorf("histogram %s (ending line %d) is missing the le=\"+Inf\" bucket", family, st.bucketLine)
			}
			if !st.sawSum {
				return fmt.Errorf("histogram %s is missing _sum", family)
			}
			if !st.sawCount {
				return fmt.Errorf("histogram %s is missing _count", family)
			}
			if st.count != st.infCount {
				return fmt.Errorf("histogram %s: _count %v != +Inf bucket %v (torn snapshot)", family, st.count, st.infCount)
			}
		}
	}
	return nil
}

// lintComment validates a # HELP or # TYPE line. Other comments pass.
func lintComment(line string, typed map[string]string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validName(fields[2]) {
			return fmt.Errorf("malformed HELP line %q", line)
		}
	case "TYPE":
		if len(fields) < 4 || !validName(fields[2]) {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
		if _, dup := typed[fields[2]]; dup {
			return fmt.Errorf("family %s typed twice", fields[2])
		}
		typed[fields[2]] = fields[3]
	}
	return nil
}

// parseSample parses `name{label="value",...} value` into its parts,
// validating every charset and escape sequence on the way.
func parseSample(line string) (name string, labels []Label, value float64, err error) {
	i := 0
	for i < len(line) && isNameRune(line[i], i == 0) {
		i++
	}
	name = line[:i]
	if !validName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name at %q", line)
	}
	if i < len(line) && line[i] == '{' {
		i++
		for {
			if i >= len(line) {
				return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
			}
			if line[i] == '}' {
				i++
				break
			}
			start := i
			for i < len(line) && isLabelRune(line[i], i == start) {
				i++
			}
			lname := line[start:i]
			if !validLabelName(lname) {
				return "", nil, 0, fmt.Errorf("invalid label name at %q", line[start:])
			}
			if i >= len(line) || line[i] != '=' {
				return "", nil, 0, fmt.Errorf("missing = after label %s", lname)
			}
			i++
			lval, n, verr := parseLabelValue(line[i:])
			if verr != nil {
				return "", nil, 0, fmt.Errorf("label %s: %w", lname, verr)
			}
			i += n
			labels = append(labels, Label{lname, lval})
			if i < len(line) && line[i] == ',' {
				i++
			}
		}
	}
	rest := strings.TrimLeft(line[i:], " \t")
	valStr, _, _ := strings.Cut(rest, " ") // an optional timestamp may follow
	value, err = parseValue(valStr)
	if err != nil {
		return "", nil, 0, fmt.Errorf("sample %s: %w", name, err)
	}
	return name, labels, value, nil
}

// parseLabelValue consumes a double-quoted, escaped label value and returns
// the decoded value plus the number of input bytes consumed.
func parseLabelValue(s string) (string, int, error) {
	if len(s) == 0 || s[0] != '"' {
		return "", 0, fmt.Errorf("label value must be double-quoted, got %q", s)
	}
	var b strings.Builder
	i := 1
	for i < len(s) {
		switch s[i] {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			if i+1 >= len(s) {
				return "", 0, fmt.Errorf("dangling backslash in label value")
			}
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("invalid escape \\%c in label value", s[i+1])
			}
			i += 2
		case '\n':
			return "", 0, fmt.Errorf("raw newline in label value")
		default:
			b.WriteByte(s[i])
			i++
		}
	}
	return "", 0, fmt.Errorf("unterminated label value")
}

// parseValue parses a sample value: a Go float or +Inf/-Inf/NaN.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN", "nan":
		return math.NaN(), nil
	case "":
		return 0, fmt.Errorf("missing value")
	}
	return strconv.ParseFloat(s, 64)
}

// histFamilyOf maps a sample name to its histogram family and suffix when
// the family is TYPEd histogram; empty otherwise.
func histFamilyOf(name string, typed map[string]string) (family, suffix string) {
	for _, s := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, s) {
			fam := strings.TrimSuffix(name, s)
			if typed[fam] == "histogram" {
				return fam, s
			}
		}
	}
	return "", ""
}

// canonicalLabels renders a label set order-insensitively for dedup keys.
func canonicalLabels(labels []Label) string {
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Name + "=" + l.Value
	}
	// insertion sort: label sets are tiny.
	for i := 1; i < len(parts); i++ {
		for j := i; j > 0 && parts[j] < parts[j-1]; j-- {
			parts[j], parts[j-1] = parts[j-1], parts[j]
		}
	}
	return strings.Join(parts, "\x01")
}

func isNameRune(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

func isLabelRune(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}
