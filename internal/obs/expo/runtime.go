package expo

import (
	"math"
	"runtime/metrics"
	"sort"
	"strings"
)

// EncodeRuntime renders the Go runtime's own telemetry (runtime/metrics)
// as go_-prefixed families: heap and memory-class gauges, GC counters and
// pause-time histograms, goroutine counts, and scheduler latency. Metric
// names are converted mechanically — "/sched/goroutines:goroutines"
// becomes go_sched_goroutines — so the set tracks whatever the running Go
// version exports; kinds the encoder cannot represent are skipped.
func EncodeRuntime(e *Encoder) {
	descs := metrics.All()
	samples := make([]metrics.Sample, len(descs))
	for i, d := range descs {
		samples[i].Name = d.Name
	}
	metrics.Read(samples)

	kind := make(map[string]metrics.ValueKind, len(descs))
	cumulative := make(map[string]bool, len(descs))
	help := make(map[string]string, len(descs))
	for _, d := range descs {
		kind[d.Name] = d.Kind
		cumulative[d.Name] = d.Cumulative
		help[d.Name] = d.Description
	}

	// Render in a deterministic order under stable names; a collision after
	// sanitization (none exist today) would trip the encoder's duplicate-
	// family latch, so dedupe defensively.
	sort.Slice(samples, func(i, j int) bool { return samples[i].Name < samples[j].Name })
	seen := make(map[string]bool, len(samples))
	for _, s := range samples {
		name := runtimeName(s.Name)
		if !validName(name) || seen[name] {
			continue
		}
		seen[name] = true
		h := strings.ReplaceAll(help[s.Name], "\n", " ")
		switch kind[s.Name] {
		case metrics.KindUint64:
			if cumulative[s.Name] {
				e.Counter(name+"_total", h, float64(s.Value.Uint64()))
			} else {
				e.Gauge(name, h, float64(s.Value.Uint64()))
			}
		case metrics.KindFloat64:
			if cumulative[s.Name] {
				e.Counter(name+"_total", h, s.Value.Float64())
			} else {
				e.Gauge(name, h, s.Value.Float64())
			}
		case metrics.KindFloat64Histogram:
			fh := s.Value.Float64Histogram()
			if fh == nil || len(fh.Buckets) != len(fh.Counts)+1 {
				continue
			}
			e.runtimeHistogram(name, h, fh)
		}
	}
}

// runtimeHistogram renders a runtime/metrics Float64Histogram. These carry
// hundreds of fine-grained buckets, so interior zero-count buckets are
// collapsed (cumulative counts stay monotone without them); the runtime
// does not track a sum, rendered as the NaN the format reserves for
// "unknown".
func (e *Encoder) runtimeHistogram(name, help string, fh *metrics.Float64Histogram) {
	if !e.header(name, help, "histogram") {
		return
	}
	var cum, total uint64
	for _, c := range fh.Counts {
		total += c
	}
	for i, c := range fh.Counts {
		cum += c
		le := fh.Buckets[i+1]
		if math.IsInf(le, 1) {
			break // folded into the +Inf bucket below
		}
		if c == 0 {
			continue
		}
		e.sample(name+"_bucket", []Label{{"le", formatValue(le)}}, float64(cum))
	}
	e.sample(name+"_bucket", []Label{{"le", "+Inf"}}, float64(total))
	e.sample(name+"_sum", nil, math.NaN())
	e.sample(name+"_count", nil, float64(total))
}

// runtimeName converts a runtime/metrics name ("/memory/classes/heap/
// objects:bytes") into a Prometheus metric name (go_memory_classes_heap_
// objects_bytes): strip the leading slash, split off the unit, and replace
// every non-alphanumeric rune with an underscore.
func runtimeName(name string) string {
	base, unit, _ := strings.Cut(strings.TrimPrefix(name, "/"), ":")
	sanitize := func(s string) string {
		var b strings.Builder
		for _, r := range s {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
				b.WriteRune(r)
			case r == '/', r == '-', r == '_':
				b.WriteByte('_')
			}
		}
		return b.String()
	}
	base, unit = sanitize(base), sanitize(unit)
	// Drop a unit that merely repeats the base's tail
	// ("sched/goroutines:goroutines" -> go_sched_goroutines).
	if unit == "" || strings.HasSuffix(base, unit) {
		return "go_" + base
	}
	return "go_" + base + "_" + unit
}
