package obs

import (
	"math"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket log-scale latency histogram built for hot
// paths: Observe is a handful of atomic adds (no locks, no allocation) and
// is safe for any number of concurrent observers, while Snapshot returns a
// self-consistent view — its Count, Sum and bucket counts all describe
// exactly the same set of observations, never a torn mix of two instants
// (the /metrics exposition invariant: _count equals the +Inf bucket).
//
// Consistency is achieved with a hot/cold double buffer in the style of a
// read-copy-update: Observe increments an observation ticket whose high bit
// selects the hot buffer, and Snapshot flips the bit, waits for the
// stragglers that ticketed into the now-cold buffer to land, reads it at
// rest, then folds it forward into the new hot buffer so totals are
// cumulative. Observers never block; Snapshot spins only for the handful of
// observers caught mid-add.
//
// Buckets are powers of two in nanoseconds from histMinExp to histMaxExp
// plus a +Inf overflow, so every finite bucket spans one octave: a quantile
// estimated from the histogram is off by at most a factor of 2 (one bucket)
// from the exact order statistic, and the log-interpolated estimate returned
// by HistSnapshot.Quantile is within √2 in the typical case. The scheme is
// fixed — not per-histogram — so any two histograms (or snapshots from
// different processes) merge bucket-by-bucket without rebinning.
type Histogram struct {
	// countAndHotIdx packs the hot buffer index (bit 63) with the number of
	// Observe calls begun (bits 0-62), exactly one atomic Add per Observe.
	countAndHotIdx atomic.Uint64
	counts         [2]histCounts
	// snapMu serializes snapshots (concurrent scrapes queue; observers
	// never touch it).
	snapMu sync.Mutex
}

// histCounts is one of the two accumulation buffers.
type histCounts struct {
	count   atomic.Uint64 // observations fully landed in this buffer
	sum     atomic.Int64  // nanoseconds
	buckets [histBuckets]atomic.Uint64
}

const (
	// histMinExp..histMaxExp are the exponents of the finite bucket upper
	// bounds: 2^8 ns (256ns) through 2^34 ns (~17.2s). 27 finite buckets
	// plus +Inf cover everything from sub-microsecond cache hits to solver
	// runs, one octave per bucket.
	histMinExp = 8
	histMaxExp = 34
	// histBuckets counts the finite buckets plus the +Inf overflow bucket.
	histBuckets = histMaxExp - histMinExp + 2

	histHotBit   = 1 << 63
	histCountMsk = histHotBit - 1
)

// HistBounds returns the finite bucket upper bounds in nanoseconds,
// ascending. Every histogram shares this scheme; the implicit final bucket
// is +Inf.
func HistBounds() []int64 {
	out := make([]int64, histBuckets-1)
	for i := range out {
		out[i] = 1 << (histMinExp + i)
	}
	return out
}

// histBucketOf maps a (non-negative) nanosecond value to its bucket index:
// the smallest i with v <= 2^(histMinExp+i), or the +Inf bucket.
func histBucketOf(nanos int64) int {
	if nanos <= 1<<histMinExp {
		return 0
	}
	// The highest set bit of (nanos-1) selects the octave; values above the
	// last finite bound land in +Inf.
	i := bits.Len64(uint64(nanos-1)) - histMinExp
	if i >= histBuckets-1 {
		return histBuckets - 1
	}
	return i
}

// Observe records one latency. Negative durations clamp to zero (they can
// only arise from clock steps) so the histogram stays monotone.
func (h *Histogram) Observe(nanos int64) {
	if h == nil {
		return
	}
	if nanos < 0 {
		nanos = 0
	}
	n := h.countAndHotIdx.Add(1)
	hot := &h.counts[n>>63]
	hot.buckets[histBucketOf(nanos)].Add(1)
	hot.sum.Add(nanos)
	hot.count.Add(1) // must be last: signals the observation has fully landed
}

// ObserveSince is Observe(time.Since(start)).
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start).Nanoseconds()) }

// Snapshot returns a self-consistent copy of the histogram: the returned
// Count equals the sum of the bucket counts, and Sum covers exactly those
// observations. Safe to call concurrently with Observe and with other
// Snapshots.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	h.snapMu.Lock()
	defer h.snapMu.Unlock()
	// Flip the hot bit: observers ticketed after this land in the other
	// buffer. n carries the total number of observations ever begun; the
	// cold buffer is cumulative (snapshots fold it forward), so once the
	// in-flight observers land, cold.count must equal that total.
	n := h.countAndHotIdx.Add(histHotBit)
	began := n & histCountMsk
	hot := &h.counts[n>>63]
	cold := &h.counts[(n>>63)^1]
	for cold.count.Load() != began {
		runtime.Gosched() // a straggler is between its ticket and its count.Add
	}
	var s HistSnapshot
	s.Count = cold.count.Load()
	s.Sum = cold.sum.Load()
	if s.Count > 0 {
		s.Buckets = make([]uint64, histBuckets)
		for i := range s.Buckets {
			s.Buckets[i] = cold.buckets[i].Load()
		}
	}
	// Fold the cold totals into the new hot buffer and reset cold, so the
	// next flip again exposes cumulative totals. Observers are concurrently
	// adding to hot; plain atomic adds compose.
	for i := range cold.buckets {
		if v := cold.buckets[i].Swap(0); v != 0 {
			hot.buckets[i].Add(v)
		}
	}
	hot.sum.Add(cold.sum.Swap(0))
	hot.count.Add(cold.count.Swap(0))
	return s
}

// HistSnapshot is a histogram at one instant: cumulative-consistent (Count
// is exactly the sum of Buckets; Sum covers the same observations). The
// zero value is an empty histogram.
type HistSnapshot struct {
	// Count is the total number of observations.
	Count uint64 `json:"count"`
	// Sum is the total of all observed values, in nanoseconds.
	Sum int64 `json:"sum_ns"`
	// Buckets[i] counts observations in bucket i of the shared scheme
	// (HistBounds; the last entry is the +Inf overflow). Nil when Count is
	// zero.
	Buckets []uint64 `json:"buckets,omitempty"`
}

// Merge adds o into s bucket-by-bucket (the shared bucket scheme makes this
// exact — no rebinning error).
func (s *HistSnapshot) Merge(o HistSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Buckets == nil {
		return
	}
	if s.Buckets == nil {
		s.Buckets = make([]uint64, histBuckets)
	}
	for i, v := range o.Buckets {
		s.Buckets[i] += v
	}
}

// Quantile estimates the q-quantile (0 < q <= 1) in nanoseconds by
// log-linear interpolation inside the bucket holding the rank. The estimate
// is within one bucket (a factor of 2) of the exact order statistic; an
// empty histogram returns 0. The +Inf bucket reports the last finite bound.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum+1e-9 < rank {
			continue
		}
		upper := float64(int64(1) << (histMinExp + i))
		if i == len(s.Buckets)-1 {
			// +Inf bucket: the best bounded statement is the largest finite
			// bound.
			return float64(int64(1) << histMaxExp)
		}
		lower := upper / 2
		if i == 0 {
			lower = 1
		}
		// Log-linear interpolation of the rank's position in the bucket.
		frac := (rank - prev) / float64(c)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		return lower * math.Pow(upper/lower, frac)
	}
	return float64(int64(1) << histMaxExp)
}
