package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// TraceEvent is one complete ("ph":"X") event in the Chrome tracing JSON
// format (chrome://tracing, perfetto). Timestamps and durations are in
// microseconds per the format's convention.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the top-level chrome://tracing JSON object.
type traceFile struct {
	TraceEvents []TraceEvent `json:"traceEvents"`
}

// Tracer records timeline spans (one per Benders iteration, scenario solve,
// master solve, …). Safe for concurrent use; a nil *Tracer is a no-op.
type Tracer struct {
	start time.Time

	mu     sync.Mutex
	events []TraceEvent
}

// NewTracer returns a tracer whose timeline starts now.
func NewTracer() *Tracer { return &Tracer{start: time.Now()} }

// AttachTracer fastens t to the collector: Span calls on the collector (and
// on its descendants, via the parent chain) record into t.
func (c *Collector) AttachTracer(t *Tracer) {
	if c != nil {
		c.tracer = t
	}
}

// tracerOf resolves the nearest tracer up the parent chain.
func (c *Collector) tracerOf() *Tracer {
	for ; c != nil; c = c.parent {
		if c.tracer != nil {
			return c.tracer
		}
	}
	return nil
}

// Span opens a timeline span named name on virtual track tid; the returned
// func closes it. kv is an alternating key, value list attached as the
// event's args. When no tracer is attached anywhere up the chain, the cost
// is one nil check and the returned closure is a shared no-op.
func (c *Collector) Span(name string, tid int64, kv ...any) func() {
	tr := c.tracerOf()
	if tr == nil {
		return nopSpan
	}
	return tr.span(name, tid, kv)
}

var nopSpan = func() {}

func (t *Tracer) span(name string, tid int64, kv []any) func() {
	var args map[string]any
	if len(kv) >= 2 {
		args = make(map[string]any, len(kv)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			if k, ok := kv[i].(string); ok {
				args[k] = kv[i+1]
			}
		}
	}
	begin := time.Now()
	return func() {
		end := time.Now()
		ev := TraceEvent{
			Name: name,
			Cat:  "solve",
			Ph:   "X",
			TS:   begin.Sub(t.start).Microseconds(),
			Dur:  end.Sub(begin).Microseconds(),
			PID:  1,
			TID:  tid,
			Args: args,
		}
		t.mu.Lock()
		t.events = append(t.events, ev)
		t.mu.Unlock()
	}
}

// Events returns a copy of the recorded events.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceEvent(nil), t.events...)
}

// WriteJSON serializes the timeline as a chrome://tracing JSON object.
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(traceFile{TraceEvents: t.Events()})
}
