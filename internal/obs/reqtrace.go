package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"
)

// Request-scoped tracing (DESIGN.md §16). A ReqTrace is one HTTP request's
// timeline: identity (a W3C trace-context trace id and span id, so traces
// correlate across the load generator, the batch fan-out, and future peer
// forwarding), a handful of named stage spans recorded as the request moves
// through the admission/serve pipeline, and a summary (status, cache
// disposition, bytes) latched when the request finishes. The type is built
// for the serving hot path: creating a trace is two allocations, recording a
// span is one mutex round and an append into preallocated capacity, and a
// finished trace is immutable — late spans from detached recomputations
// that outlive their request become no-ops instead of races.

// TraceContext is a parsed W3C traceparent: the caller's trace id, the
// caller's span id (our parent), and the sampled flag.
type TraceContext struct {
	TraceID string // 32 lowercase hex chars, not all zero
	SpanID  string // 16 lowercase hex chars, not all zero
	Sampled bool
}

// String renders the context as a version-00 traceparent header value.
func (tc TraceContext) String() string {
	flags := "00"
	if tc.Sampled {
		flags = "01"
	}
	return "00-" + tc.TraceID + "-" + tc.SpanID + "-" + flags
}

// ParseTraceparent parses a W3C traceparent header (version 00:
// "00-<32 hex trace-id>-<16 hex span-id>-<2 hex flags>"). Malformed values,
// unknown versions, and all-zero ids are rejected — the caller falls back
// to starting a fresh trace.
func ParseTraceparent(h string) (TraceContext, bool) {
	if len(h) != 55 || h[0] != '0' || h[1] != '0' || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceContext{}, false
	}
	traceID, spanID, flags := h[3:35], h[36:52], h[53:55]
	if !isLowerHex(traceID) || !isLowerHex(spanID) || !isLowerHex(flags) {
		return TraceContext{}, false
	}
	if allZero(traceID) || allZero(spanID) {
		return TraceContext{}, false
	}
	return TraceContext{
		TraceID: traceID,
		SpanID:  spanID,
		Sampled: hexByte(flags)&0x01 != 0,
	}, true
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

func hexByte(s string) byte {
	nib := func(c byte) byte {
		if c <= '9' {
			return c - '0'
		}
		return c - 'a' + 10
	}
	return nib(s[0])<<4 | nib(s[1])
}

// --- id generation ---
//
// Trace and span ids must be unique, not cryptographically unpredictable:
// a per-process random base mixed with an atomic counter through splitmix64
// costs a few nanoseconds per id, versus ~1µs for a crypto/rand read —
// which matters because ids are minted on the warm-cache hot path the
// h-trace-overhead hypothesis budgets at ≤2%.

var traceIDBase = func() uint64 {
	var b [8]byte
	crand.Read(b[:])
	return binary.LittleEndian.Uint64(b[:]) | 1 // never zero
}()

var traceIDSeq atomic.Uint64

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

const lowerHexDigits = "0123456789abcdef"

func appendHex64(dst []byte, v uint64) []byte {
	for shift := 60; shift >= 0; shift -= 4 {
		dst = append(dst, lowerHexDigits[(v>>uint(shift))&0xf])
	}
	return dst
}

// newTraceparent mints a fresh trace in rendered header form,
// "00-<trace id>-<span id>-01". One string allocation backs the whole
// identity: ReqTrace slices its TraceID and SpanID out of it.
func newTraceparent() string {
	n := traceIDSeq.Add(1)
	a := splitmix64(traceIDBase + n)
	b := splitmix64(a ^ traceIDBase)
	buf := make([]byte, 0, 55)
	buf = append(buf, '0', '0', '-')
	buf = appendHex64(buf, a)
	buf = appendHex64(buf, b)
	buf = append(buf, '-')
	buf = appendHex64(buf, splitmix64(b+n))
	buf = append(buf, '-', '0', '1')
	return string(buf)
}

// SpanRec is one recorded stage span, stored as offsets from the trace
// start. Nested spans (gate queue wait, the detached Online solve, batch
// per-group stages) overlap the tiling stages and each other; non-nested
// spans partition the request's wall-clock, so their durations sum to
// (approximately) the served latency.
type SpanRec struct {
	Name   string        `json:"name"`
	Start  time.Duration `json:"start_ns"`
	Dur    time.Duration `json:"dur_ns"`
	Nested bool          `json:"nested,omitempty"`
}

// ReqTrace is one in-flight request's trace. The identity and request-line
// fields are set before the request is served and never mutated afterwards;
// everything recorded during serving goes through the mutex.
type ReqTrace struct {
	TraceID    string
	SpanID     string
	ParentSpan string // caller's span id from traceparent, "" when none
	RequestID  string
	Start      time.Time

	// Request-line attributes, set by the owner before serving starts.
	Method string
	Path   string
	Tenant string

	// tp is the rendered outgoing traceparent; TraceID and SpanID are
	// substrings of it, so the three share one allocation.
	tp string

	mu       sync.Mutex
	finished bool
	spans    []SpanRec
	// spansBuf backs spans so the common few-span trace needs no separate
	// slice allocation; overflow falls back to the heap via append.
	spansBuf [8]SpanRec
	// summary, written by Finish under mu
	dur      time.Duration
	status   int
	bytes    int
	scenario int
	cache    string
	shed     string
}

// NewReqTrace starts a trace for one request: fresh ids, the clock running.
func NewReqTrace(requestID string) *ReqTrace {
	tp := newTraceparent()
	t := &ReqTrace{
		TraceID:   tp[3:35],
		SpanID:    tp[36:52],
		RequestID: requestID,
		Start:     time.Now(),
		tp:        tp,
		scenario:  -1,
	}
	t.spans = t.spansBuf[:0]
	return t
}

// SetParent joins the trace to an incoming traceparent: the caller's trace
// id is adopted and its span id becomes our parent. Call before serving.
func (t *ReqTrace) SetParent(tc TraceContext) {
	t.TraceID = tc.TraceID
	t.ParentSpan = tc.SpanID
	t.tp = "00-" + tc.TraceID + "-" + t.SpanID + "-01"
}

// Traceparent renders the outgoing traceparent header for this trace. The
// sampled flag is always set: a trace object only exists for requests that
// are being recorded.
func (t *ReqTrace) Traceparent() string {
	return t.tp
}

// AddSpan records one named span by absolute start/end times. Safe for
// concurrent use (batch groups record from their own goroutines); a span
// arriving after Finish — a detached recomputation outliving its initiator
// — is dropped.
func (t *ReqTrace) AddSpan(name string, start, end time.Time, nested bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.finished {
		t.spans = append(t.spans, SpanRec{
			Name:   name,
			Start:  start.Sub(t.Start),
			Dur:    end.Sub(start),
			Nested: nested,
		})
	}
	t.mu.Unlock()
}

// Finish latches the request summary and freezes the span list. Idempotent;
// the first call wins.
func (t *ReqTrace) Finish(status, bytes, scenario int, cache, shed string) {
	if t == nil {
		return
	}
	end := time.Now()
	t.mu.Lock()
	if !t.finished {
		t.finished = true
		t.dur = end.Sub(t.Start)
		t.status = status
		t.bytes = bytes
		t.scenario = scenario
		t.cache = cache
		t.shed = shed
	}
	t.mu.Unlock()
}

// TraceSnapshot is an immutable copy of a trace, the unit the TraceRing
// stores and /debug/requests renders.
type TraceSnapshot struct {
	TraceID    string        `json:"trace_id"`
	SpanID     string        `json:"span_id"`
	ParentSpan string        `json:"parent_span,omitempty"`
	RequestID  string        `json:"request_id"`
	Method     string        `json:"method"`
	Path       string        `json:"path"`
	Tenant     string        `json:"tenant,omitempty"`
	Start      time.Time     `json:"start"`
	Dur        time.Duration `json:"dur_ns"`
	Status     int           `json:"status"`
	Bytes      int           `json:"bytes"`
	Scenario   int           `json:"scenario"`
	Cache      string        `json:"cache,omitempty"`
	Shed       string        `json:"shed,omitempty"`
	Spans      []SpanRec     `json:"spans"`
}

// Snapshot copies the trace. Taken after Finish it is complete; taken
// mid-request it reflects the spans recorded so far. A finished trace's
// span list is frozen (AddSpan drops late arrivals), so the snapshot
// shares it instead of copying — the hot-path case, since the ring only
// stores finished traces.
func (t *ReqTrace) Snapshot() TraceSnapshot {
	t.mu.Lock()
	spans := t.spans
	if !t.finished {
		spans = append([]SpanRec(nil), t.spans...)
	}
	s := TraceSnapshot{
		TraceID:    t.TraceID,
		SpanID:     t.SpanID,
		ParentSpan: t.ParentSpan,
		RequestID:  t.RequestID,
		Method:     t.Method,
		Path:       t.Path,
		Tenant:     t.Tenant,
		Start:      t.Start,
		Dur:        t.dur,
		Status:     t.status,
		Bytes:      t.bytes,
		Scenario:   t.scenario,
		Cache:      t.cache,
		Shed:       t.shed,
		Spans:      spans,
	}
	t.mu.Unlock()
	return s
}

// TraceEvents converts a snapshot into chrome://tracing complete events:
// one enclosing "request" span plus one event per stage span, all on
// virtual track tid. base is the export's time origin.
func (s TraceSnapshot) TraceEvents(base time.Time, tid int64) []TraceEvent {
	evs := make([]TraceEvent, 0, len(s.Spans)+1)
	off := s.Start.Sub(base)
	evs = append(evs, TraceEvent{
		Name: s.Method + " " + s.Path,
		Cat:  "request",
		Ph:   "X",
		TS:   off.Microseconds(),
		Dur:  s.Dur.Microseconds(),
		PID:  1,
		TID:  tid,
		Args: map[string]any{
			"trace_id":   s.TraceID,
			"request_id": s.RequestID,
			"status":     s.Status,
			"cache":      s.Cache,
			"scenario":   s.Scenario,
		},
	})
	for _, sp := range s.Spans {
		cat := "stage"
		if sp.Nested {
			cat = "stage.nested"
		}
		evs = append(evs, TraceEvent{
			Name: sp.Name,
			Cat:  cat,
			Ph:   "X",
			TS:   (off + sp.Start).Microseconds(),
			Dur:  sp.Dur.Microseconds(),
			PID:  1,
			TID:  tid,
		})
	}
	return evs
}

// --- context carry ---

type reqTraceKey struct{}

// WithReqTrace returns a context carrying the request trace.
func WithReqTrace(ctx context.Context, t *ReqTrace) context.Context {
	return context.WithValue(ctx, reqTraceKey{}, t)
}

// ReqTraceFrom returns the request trace carried by ctx, or nil. A nil ctx
// is allowed.
func ReqTraceFrom(ctx context.Context) *ReqTrace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(reqTraceKey{}).(*ReqTrace)
	return t
}

// Record appends pre-built events to the tracer — the bridge that lands
// finished request traces on the same chrome://tracing timeline as the
// solver spans the Span API records. A nil tracer is a no-op.
func (t *Tracer) Record(evs []TraceEvent) {
	if t == nil || len(evs) == 0 {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, evs...)
	t.mu.Unlock()
}

// reqTrackSeq spreads recorded request timelines over a handful of virtual
// tracks so concurrent requests don't render as one overlapping pile.
var reqTrackSeq atomic.Int64

// reqTrackBase offsets request tracks away from the solver's tids.
const reqTrackBase = 1000

// RecordRequest lands one finished request trace on the tracer's timeline,
// relative to the tracer's own start. A nil tracer is a no-op.
func (t *Tracer) RecordRequest(s TraceSnapshot) {
	if t == nil {
		return
	}
	tid := reqTrackBase + reqTrackSeq.Add(1)%64
	t.Record(s.TraceEvents(t.start, tid))
}

// TraceSink resolves the nearest tracer up the collector's parent chain —
// the exported form of the lookup Span uses, for callers that batch-record
// events (ReqTrace conversion) instead of opening spans one at a time.
func (c *Collector) TraceSink() *Tracer { return c.tracerOf() }
