package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// finishedTrace builds a finished trace with a chosen duration (by
// back-dating Start) and status.
func finishedTrace(id string, dur time.Duration, status int) *ReqTrace {
	tr := NewReqTrace(id)
	tr.Start = time.Now().Add(-dur)
	tr.Finish(status, 0, 0, "hit", "")
	return tr
}

func recentIDs(r *TraceRing) []string {
	out := []string{}
	for _, s := range r.Recent() {
		out = append(out, s.RequestID)
	}
	return out
}

func TestTraceRingRecentEviction(t *testing.T) {
	r := NewTraceRing(3, 2, 2)
	for i := 0; i < 5; i++ {
		r.Add(finishedTrace(fmt.Sprintf("r%d", i), time.Duration(i)*time.Millisecond, 200))
	}
	if r.Total() != 5 {
		t.Fatalf("Total %d, want 5", r.Total())
	}
	// Newest first, oldest two evicted.
	got := recentIDs(r)
	want := []string{"r4", "r3", "r2"}
	if len(got) != len(want) {
		t.Fatalf("recent %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recent %v, want %v", got, want)
		}
	}
}

func TestTraceRingSlowestRetention(t *testing.T) {
	r := NewTraceRing(2, 3, 2)
	// A slow early request must survive arbitrarily many fast later ones.
	r.Add(finishedTrace("slow", 500*time.Millisecond, 200))
	for i := 0; i < 20; i++ {
		r.Add(finishedTrace(fmt.Sprintf("fast%d", i), time.Duration(i+1)*time.Microsecond, 200))
	}
	slow := r.Slowest()
	if len(slow) != 3 {
		t.Fatalf("slowest holds %d, want 3", len(slow))
	}
	if slow[0].RequestID != "slow" {
		t.Fatalf("slowest[0] = %s, want the 500ms request", slow[0].RequestID)
	}
	for i := 1; i < len(slow); i++ {
		if slow[i-1].Dur < slow[i].Dur {
			t.Fatalf("slowest not sorted desc: %v then %v", slow[i-1].Dur, slow[i].Dur)
		}
	}
	// The two runners-up must be the slowest fast ones (19µs, 18µs).
	if slow[1].RequestID != "fast19" || slow[2].RequestID != "fast18" {
		t.Fatalf("runners-up %s, %s", slow[1].RequestID, slow[2].RequestID)
	}
}

func TestTraceRingErroredBucket(t *testing.T) {
	r := NewTraceRing(2, 2, 2)
	r.Add(finishedTrace("ok", time.Millisecond, 200))
	r.Add(finishedTrace("e1", time.Millisecond, 429))
	r.Add(finishedTrace("e2", time.Millisecond, 500))
	r.Add(finishedTrace("e3", time.Millisecond, 404))
	errored := r.Errored()
	if len(errored) != 2 {
		t.Fatalf("errored holds %d, want 2", len(errored))
	}
	if errored[0].RequestID != "e3" || errored[1].RequestID != "e2" {
		t.Fatalf("errored newest-first: %s, %s", errored[0].RequestID, errored[1].RequestID)
	}
}

func TestTraceRingNilSafety(t *testing.T) {
	var nilRing *TraceRing
	nilRing.Add(finishedTrace("x", time.Millisecond, 200)) // no-op
	if nilRing.Total() != 0 || nilRing.Recent() != nil || nilRing.Slowest() != nil || nilRing.Errored() != nil {
		t.Fatal("nil ring not inert")
	}
	r := NewTraceRing(0, 0, 0)
	r.Add(nil) // no-op
	if r.Total() != 0 {
		t.Fatalf("nil trace counted: %d", r.Total())
	}
}

func TestTraceRingConcurrent(t *testing.T) {
	r := NewTraceRing(8, 4, 4)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				status := 200
				if i%5 == 0 {
					status = 503
				}
				r.Add(finishedTrace(fmt.Sprintf("g%d-%d", g, i), time.Duration(i)*time.Microsecond, status))
			}
		}(g)
	}
	for i := 0; i < 20; i++ {
		r.Recent()
		r.Slowest()
		r.Errored()
	}
	wg.Wait()
	if r.Total() != 200 {
		t.Fatalf("Total %d, want 200", r.Total())
	}
	if len(r.Recent()) != 8 || len(r.Slowest()) != 4 || len(r.Errored()) != 4 {
		t.Fatalf("bucket sizes %d/%d/%d", len(r.Recent()), len(r.Slowest()), len(r.Errored()))
	}
}
