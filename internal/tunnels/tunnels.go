// Package tunnels implements the paper's §6 tunnel-selection policies.
//
// Tunnels are pre-established paths between site pairs; every TE scheme in
// the repository routes over them. The paper picks tunnels "balancing
// latency and disjointness like prior works":
//
//   - single-class experiments: three physical tunnels per pair that are as
//     disjoint as possible, preferring shorter ones among choices;
//   - latency-sensitive (high-priority) class: three shortest paths that are
//     not all disconnected by any single link failure;
//   - low-priority class: the high-priority three plus three more drawn from
//     a larger shortest-path pool prioritizing disjointness.
package tunnels

import (
	"sort"

	"flexile/internal/graph"
)

// PoolSize is how many candidate shortest paths Yen's algorithm generates
// per pair before the selection heuristics run.
const PoolSize = 12

// Policy selects tunnels for one node pair.
type Policy func(g *graph.Graph, u, v int) []graph.Path

// SingleClass returns up to n tunnels that are as edge-disjoint as
// possible, preferring shorter paths among equally disjoint choices.
func SingleClass(n int) Policy {
	return func(g *graph.Graph, u, v int) []graph.Path {
		pool := g.KShortestPaths(u, v, PoolSize, nil)
		return greedyDisjoint(pool, nil, n)
	}
}

// HighPriority returns up to n shortest paths chosen so that no single link
// failure disconnects all of them (when the graph allows it): the selected
// paths' edge sets have empty intersection. Among selections with that
// property it prefers shorter paths (the class is latency sensitive).
func HighPriority(n int) Policy {
	return func(g *graph.Graph, u, v int) []graph.Path {
		pool := g.KShortestPaths(u, v, PoolSize, nil)
		if len(pool) == 0 {
			return nil
		}
		sel := []graph.Path{pool[0]}
		common := map[int]bool{}
		for _, e := range pool[0].Edges {
			common[e] = true
		}
		used := map[int]bool{0: true}
		for len(sel) < n && len(used) < len(pool) {
			// Greedy: the earliest (shortest) pool path that shrinks the
			// running intersection the most.
			best, bestCommon := -1, 1<<30
			for i, p := range pool {
				if used[i] {
					continue
				}
				c := 0
				for _, e := range p.Edges {
					if common[e] {
						c++
					}
				}
				if c < bestCommon {
					best, bestCommon = i, c
				}
			}
			if best < 0 {
				break
			}
			used[best] = true
			sel = append(sel, pool[best])
			next := map[int]bool{}
			for _, e := range pool[best].Edges {
				if common[e] {
					next[e] = true
				}
			}
			common = next
		}
		if len(common) == 0 || len(sel) < 2 {
			return sel
		}
		// The shortest-path pool cannot break the intersection; fall back
		// to a graph-wide detour avoiding the shared edges and swap it in
		// for the last pick.
		if alt, ok := g.ShortestPath(u, v, nil, func(e int) bool { return !common[e] }, nil); ok {
			sel[len(sel)-1] = alt
		}
		return sel
	}
}

// LowPriority returns the high-priority selection plus up to extra more
// tunnels drawn from a larger pool prioritizing disjointness from the ones
// already picked.
func LowPriority(n, extra int) Policy {
	hp := HighPriority(n)
	return func(g *graph.Graph, u, v int) []graph.Path {
		sel := hp(g, u, v)
		pool := g.KShortestPaths(u, v, PoolSize+extra, nil)
		var rest []graph.Path
		for _, p := range pool {
			dup := false
			for _, s := range sel {
				if p.Equal(s) {
					dup = true
					break
				}
			}
			if !dup {
				rest = append(rest, p)
			}
		}
		more := greedyDisjoint(rest, sel, extra)
		return append(sel, more...)
	}
}

// greedyDisjoint picks up to n paths from pool minimizing edge overlap with
// already-used edges (from base plus earlier picks), breaking ties by hop
// count then pool order.
func greedyDisjoint(pool, base []graph.Path, n int) []graph.Path {
	used := map[int]int{}
	for _, p := range base {
		for _, e := range p.Edges {
			used[e]++
		}
	}
	remaining := append([]graph.Path(nil), pool...)
	var out []graph.Path
	for len(out) < n && len(remaining) > 0 {
		bestIdx, bestOverlap, bestLen := -1, 1<<30, 1<<30
		for i, p := range remaining {
			ov := 0
			for _, e := range p.Edges {
				if used[e] > 0 {
					ov++
				}
			}
			if ov < bestOverlap || (ov == bestOverlap && p.Len() < bestLen) {
				bestIdx, bestOverlap, bestLen = i, ov, p.Len()
			}
		}
		p := remaining[bestIdx]
		out = append(out, p)
		for _, e := range p.Edges {
			used[e]++
		}
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	return out
}

// hasCommonEdge reports whether some edge appears in every path.
func hasCommonEdge(paths []graph.Path) bool {
	if len(paths) == 0 {
		return false
	}
	counts := map[int]int{}
	for _, p := range paths {
		seen := map[int]bool{}
		for _, e := range p.Edges {
			if !seen[e] {
				seen[e] = true
				counts[e]++
			}
		}
	}
	for _, c := range counts {
		if c == len(paths) {
			return true
		}
	}
	return false
}

// ForAllPairs applies a policy to every unordered node pair (u < v) and
// returns tunnels indexed by pair position, along with the pair list.
func ForAllPairs(g *graph.Graph, policy Policy) ([][2]int, [][]graph.Path) {
	n := g.NumNodes()
	var pairs [][2]int
	var paths [][]graph.Path
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			pairs = append(pairs, [2]int{u, v})
			paths = append(paths, policy(g, u, v))
		}
	}
	return pairs, paths
}

// SortByLength orders paths by hop count (stable), shortest first.
func SortByLength(paths []graph.Path) {
	sort.SliceStable(paths, func(i, j int) bool { return paths[i].Len() < paths[j].Len() })
}
