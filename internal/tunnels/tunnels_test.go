package tunnels

import (
	"testing"

	"flexile/internal/graph"
	"flexile/internal/topo"
)

func TestSingleClassDisjointness(t *testing.T) {
	tp := topo.MustLoad("Sprint")
	policy := SingleClass(3)
	pairs, paths := ForAllPairs(tp.G, policy)
	if len(pairs) != 45 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	for pi, ps := range paths {
		if len(ps) == 0 {
			t.Fatalf("pair %v has no tunnels", pairs[pi])
		}
		if len(ps) > 3 {
			t.Fatalf("pair %v has %d tunnels, want ≤3", pairs[pi], len(ps))
		}
		for _, p := range ps {
			validate(t, tp.G, p, pairs[pi][0], pairs[pi][1])
		}
	}
}

func validate(t *testing.T, g *graph.Graph, p graph.Path, u, v int) {
	t.Helper()
	if p.Nodes[0] != u || p.Nodes[len(p.Nodes)-1] != v {
		t.Fatalf("path endpoints %v, want %d-%d", p.Nodes, u, v)
	}
	seen := map[int]bool{}
	for _, n := range p.Nodes {
		if seen[n] {
			t.Fatalf("loop in path %v", p.Nodes)
		}
		seen[n] = true
	}
}

// TestSingleClassPrefersDisjoint: on the triangle, the two A-B paths are
// edge-disjoint and both should be selected.
func TestSingleClassPrefersDisjoint(t *testing.T) {
	tp := topo.Triangle()
	ps := SingleClass(3)(tp.G, 0, 1)
	if len(ps) != 2 {
		t.Fatalf("want both triangle paths, got %d", len(ps))
	}
	for e := 0; e < tp.G.NumEdges(); e++ {
		both := true
		for _, p := range ps {
			if !p.UsesEdge(e) {
				both = false
			}
		}
		if both {
			t.Fatalf("paths share edge %d", e)
		}
	}
}

// TestHighPriorityNoSingleFailureKillsAll: the selected set must not share
// one common edge when the graph offers an alternative.
func TestHighPriorityNoSingleFailureKillsAll(t *testing.T) {
	for _, name := range []string{"Sprint", "B4", "IBM"} {
		tp := topo.MustLoad(name)
		pairs, paths := ForAllPairs(tp.G, HighPriority(3))
		for pi, ps := range paths {
			if len(ps) < 2 {
				continue // singleton selection cannot avoid a shared edge
			}
			if hasCommonEdge(ps) {
				// Only acceptable if the graph truly has no way out: all
				// u-v paths must cross that edge. Check by removing the
				// shared edges and testing connectivity.
				shared := sharedEdges(ps)
				alive := func(e int) bool {
					for _, se := range shared {
						if e == se {
							return false
						}
					}
					return true
				}
				u, v := pairs[pi][0], pairs[pi][1]
				if tp.G.Connected(u, v, alive) {
					t.Errorf("%s pair %v: selection shares edges %v although an alternative exists", name, pairs[pi], shared)
				}
			}
		}
	}
}

func sharedEdges(paths []graph.Path) []int {
	counts := map[int]int{}
	for _, p := range paths {
		seen := map[int]bool{}
		for _, e := range p.Edges {
			if !seen[e] {
				seen[e] = true
				counts[e]++
			}
		}
	}
	var out []int
	for e, c := range counts {
		if c == len(paths) {
			out = append(out, e)
		}
	}
	return out
}

// TestLowPriorityExtendsHigh: the low-priority selection contains the
// high-priority tunnels as a prefix and adds distinct extras.
func TestLowPriorityExtendsHigh(t *testing.T) {
	tp := topo.MustLoad("Sprint")
	hp := HighPriority(3)
	lp := LowPriority(3, 3)
	for u := 0; u < tp.G.NumNodes(); u++ {
		for v := u + 1; v < tp.G.NumNodes(); v++ {
			hps := hp(tp.G, u, v)
			lps := lp(tp.G, u, v)
			if len(lps) < len(hps) {
				t.Fatalf("pair %d-%d: low has fewer tunnels than high", u, v)
			}
			for i := range hps {
				if !lps[i].Equal(hps[i]) {
					t.Fatalf("pair %d-%d: low selection does not extend high", u, v)
				}
			}
			// No duplicates in the low set.
			for i := range lps {
				for j := i + 1; j < len(lps); j++ {
					if lps[i].Equal(lps[j]) {
						t.Fatalf("pair %d-%d: duplicate tunnels", u, v)
					}
				}
			}
		}
	}
}

func TestHasCommonEdge(t *testing.T) {
	tp := topo.Triangle()
	direct, _ := tp.G.ShortestPath(0, 1, nil, nil, nil)
	indirect, _ := tp.G.ShortestPath(0, 1, nil, func(e int) bool { return e != 0 }, nil)
	if hasCommonEdge([]graph.Path{direct, indirect}) {
		t.Fatal("disjoint paths flagged as sharing an edge")
	}
	if !hasCommonEdge([]graph.Path{direct, direct}) {
		t.Fatal("identical paths must share edges")
	}
	if hasCommonEdge(nil) {
		t.Fatal("empty set cannot share edges")
	}
}

func TestSortByLength(t *testing.T) {
	tp := topo.Triangle()
	paths := tp.G.KShortestPaths(0, 1, 2, nil)
	// Reverse, then sort.
	paths[0], paths[1] = paths[1], paths[0]
	SortByLength(paths)
	if paths[0].Len() > paths[1].Len() {
		t.Fatal("not sorted")
	}
}

func TestGreedyDisjointRespectsBase(t *testing.T) {
	tp := topo.Triangle()
	pool := tp.G.KShortestPaths(0, 1, 3, nil) // direct + via C
	// With the direct path as base, the via-C path must be picked first.
	base := []graph.Path{pool[0]}
	out := greedyDisjoint(pool, base, 1)
	if len(out) != 1 || out[0].Len() != 2 {
		t.Fatalf("want the disjoint 2-hop path, got %v", out)
	}
}
