package te

import (
	"context"
	"fmt"
	"math"

	"flexile/internal/failure"
	"flexile/internal/lp"
)

// ScaleBatch is the batched counterpart of MaxConcurrentScale: the
// maximum-concurrent-flow LP compiled once over the instance's full
// (no-failure) tunnel structure, with per-scenario failures applied as
// bound-only variants — a dead tunnel's column is clamped to zero, a
// disconnected flow's demand row is relaxed away. Every scenario then
// re-solves one compiled structure instead of building its own Problem,
// and solves can warm-start from a shared basis because all variants share
// one column space.
//
// The per-scenario optimum equals MaxConcurrentScale's (the variant has
// the same feasible set as the scenario-built LP plus zero-fixed columns),
// but the simplex may reach it along a different pivot path, so values
// agree to solver tolerance rather than bit-for-bit. Callers that pin cold
// trajectories (the default offline path) keep using MaxConcurrentScale.
type ScaleBatch struct {
	inst *Instance
	bp   *lp.BatchProblem
	z    int // the concurrent-scale column
	// tunCol[k][i][t] is the column of tunnel t of flow (k,i).
	tunCol [][][]int
	// flowRow[k][i] is the demand row of flow (k,i), -1 when the flow has
	// no demand (no row was built).
	flowRow [][]int
	colUB   []float64 // base column upper bounds (all +Inf)
	rowLB   []float64 // base row lower bounds
}

// NewScaleBatch compiles the instance's max-concurrent-flow structure.
// Instances with per-scenario traffic matrices are not supported (demand
// coefficients are structural, not bounds): the caller must gate on
// inst.ScenDemand == nil.
func NewScaleBatch(inst *Instance) (*ScaleBatch, error) {
	if inst.ScenDemand != nil {
		return nil, fmt.Errorf("te: ScaleBatch does not support per-scenario traffic matrices")
	}
	g := inst.Topo.G
	p := lp.NewProblem()
	sb := &ScaleBatch{inst: inst}
	sb.tunCol = make([][][]int, len(inst.Classes))
	edgeEntries := make([][]lp.Entry, g.NumEdges())
	for k := range inst.Classes {
		sb.tunCol[k] = make([][]int, len(inst.Pairs))
		for i := range inst.Pairs {
			sb.tunCol[k][i] = make([]int, len(inst.Tunnels[k][i]))
			for t := range inst.Tunnels[k][i] {
				col := p.AddCol(fmt.Sprintf("x[%d,%d,%d]", k, i, t), 0, lp.Inf, 0)
				sb.tunCol[k][i][t] = col
				for _, e := range inst.Tunnels[k][i][t].Edges {
					edgeEntries[e] = append(edgeEntries[e], lp.Entry{Col: col, Coef: 1})
				}
			}
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		if len(edgeEntries[e]) == 0 {
			continue
		}
		p.AddLE(fmt.Sprintf("cap[%d]", e), g.Edge(e).Capacity, edgeEntries[e]...)
	}
	sb.z = p.AddCol("z", 0, lp.Inf, -1) // maximize z
	sb.flowRow = make([][]int, len(inst.Classes))
	for k := range inst.Classes {
		sb.flowRow[k] = make([]int, len(inst.Pairs))
		for i := range inst.Pairs {
			sb.flowRow[k][i] = -1
			d := inst.Demand[k][i]
			if d <= 0 {
				continue
			}
			es := make([]lp.Entry, 0, len(sb.tunCol[k][i])+1)
			for _, c := range sb.tunCol[k][i] {
				es = append(es, lp.Entry{Col: c, Coef: 1})
			}
			es = append(es, lp.Entry{Col: sb.z, Coef: -d})
			sb.flowRow[k][i] = p.AddGE(fmt.Sprintf("dem[%d,%d]", k, i), 0, es...)
		}
	}
	bp, err := p.Compile()
	if err != nil {
		return nil, err
	}
	sb.bp = bp
	n, m := bp.NumCols(), bp.NumRows()
	sb.colUB = make([]float64, n)
	for j := range sb.colUB {
		sb.colUB[j] = lp.Inf
	}
	sb.rowLB = make([]float64, m)
	for i := range sb.rowLB {
		sb.rowLB[i] = -lp.Inf
	}
	for k := range sb.flowRow {
		for i := range sb.flowRow[k] {
			if r := sb.flowRow[k][i]; r >= 0 {
				sb.rowLB[r] = 0
			}
		}
	}
	return sb, nil
}

// ScaleSolver solves scenarios against one compiled ScaleBatch. Not safe
// for concurrent use — create one per goroutine; they share the compiled
// structure.
type ScaleSolver struct {
	sb    *ScaleBatch
	s     *lp.BatchSolver
	colUB []float64
	rowLB []float64
}

// NewSolver returns a solver with its own workspace.
func (sb *ScaleBatch) NewSolver() *ScaleSolver {
	return &ScaleSolver{
		sb:    sb,
		s:     sb.bp.NewSolver(),
		colUB: make([]float64, len(sb.colUB)),
		rowLB: make([]float64, len(sb.rowLB)),
	}
}

// Solve computes the scenario's maximum concurrent scale z (and the final
// basis, for warm-starting subsequent scenarios). Semantics match
// MaxConcurrentScaleCtx: +Inf when no demanded flow is connected,
// lp.ErrIterLimit on iteration exhaustion.
func (sv *ScaleSolver) Solve(ctx context.Context, scen failure.Scenario, opts lp.Options) (float64, *lp.Basis, error) {
	sb := sv.sb
	copy(sv.colUB, sb.colUB)
	copy(sv.rowLB, sb.rowLB)
	alive := scen.Alive()
	anyFlow := false
	for k := range sb.tunCol {
		for i := range sb.tunCol[k] {
			row := sb.flowRow[k][i]
			flowAlive := false
			for t, c := range sb.tunCol[k][i] {
				if sb.inst.Tunnels[k][i][t].Alive(alive) {
					flowAlive = true
				} else {
					sv.colUB[c] = 0
				}
			}
			if row < 0 {
				continue
			}
			if flowAlive {
				anyFlow = true
			} else {
				// Disconnected flow: relax its demand row so it cannot
				// force z to zero — exactly MaxConcurrentScale's "skip
				// flows with no live tunnel".
				sv.rowLB[row] = -lp.Inf
			}
		}
	}
	if !anyFlow {
		return math.Inf(1), nil, nil
	}
	sol, err := sv.s.SolveCtx(ctx, lp.Variant{ColUB: sv.colUB, RowLB: sv.rowLB}, opts)
	if err != nil {
		return 0, nil, err
	}
	if sol.Status == lp.IterLimit {
		return 0, nil, fmt.Errorf("te: max concurrent flow: %w", lp.ErrIterLimit)
	}
	if sol.Status != lp.Optimal {
		return 0, nil, fmt.Errorf("te: max concurrent flow: %v", sol.Status)
	}
	return sol.X[sb.z], sol.Basis(), nil
}
