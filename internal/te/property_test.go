package te

import (
	"math/rand"
	"testing"

	"flexile/internal/failure"
	"flexile/internal/topo"
	"flexile/internal/tunnels"
)

// randomInstance builds a seeded random instance on a generated topology.
func randomInstance(seed int64, nodes, edges int) *Instance {
	g := topo.Generate(nodes, edges, seed)
	tp := &topo.Topology{Name: "rand", G: g}
	inst := NewInstance(tp, []Class{
		{Name: "single", Beta: 0.9, Weight: 1, Tunnels: tunnels.SingleClass(3)},
	})
	rng := rand.New(rand.NewSource(seed + 1))
	for i := range inst.Pairs {
		inst.Demand[0][i] = rng.Float64() * 30
	}
	probs := failure.WeibullProbs(g, seed+2, failure.WeibullParams{Median: 0.01})
	inst.LinkProbs = probs
	inst.Scenarios = failure.Enumerate(probs, 1e-3)
	return inst
}

// TestMaxMinFeasibleRandom: every max-min allocation respects capacities
// and dead tunnels across random instances and scenarios, in both domains.
func TestMaxMinFeasibleRandom(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		inst := randomInstance(seed, 8, 14)
		for _, domain := range []MaxMinDomain{FractionDomain, RateDomain} {
			for q, scen := range inst.Scenarios {
				if q > 4 {
					break
				}
				res, err := MaxMin(inst, scen, MaxMinOptions{Domain: domain})
				if err != nil {
					t.Fatalf("seed %d q %d: %v", seed, q, err)
				}
				checkResultFeasible(t, inst, scen, res)
				for f, fr := range res.Frac {
					if fr < -1e-9 || fr > 1+1e-9 {
						t.Fatalf("seed %d: frac[%d] = %v", seed, f, fr)
					}
				}
			}
		}
	}
}

// TestMaxMinDominatesConcurrentScale: the minimum fraction achieved by the
// max-min allocation matches the max concurrent flow scale (capped at 1)
// over connected demanded flows — max-min's first waterfilling level IS the
// concurrent-flow problem.
func TestMaxMinDominatesConcurrentScale(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		inst := randomInstance(seed, 7, 12)
		scen := failure.Scenario{Prob: 1}
		res, err := MaxMin(inst, scen, MaxMinOptions{Domain: FractionDomain})
		if err != nil {
			t.Fatal(err)
		}
		z, _, _, err := MaxConcurrentScale(inst, scen, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := z
		if want > 1 {
			want = 1
		}
		minFrac := 1.0
		for i := range inst.Pairs {
			if inst.Demand[0][i] <= 0 {
				continue
			}
			if fr := res.Frac[inst.FlowID(0, i)]; fr < minFrac {
				minFrac = fr
			}
		}
		// The waterfilling ladder quantizes: allow the level granularity.
		if minFrac < want-0.02 {
			t.Fatalf("seed %d: max-min min fraction %v below concurrent scale %v", seed, minFrac, want)
		}
	}
}

// TestSinglePairBoundedByMaxFlow: with one demanded pair, the delivered
// bandwidth cannot exceed the pair's graph max flow (tunnels are a
// restriction of the flow polytope).
func TestSinglePairBoundedByMaxFlow(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		inst := randomInstance(seed, 8, 14)
		// Keep only the demand of one pair, made huge.
		target := int(seed) % len(inst.Pairs)
		for i := range inst.Pairs {
			inst.Demand[0][i] = 0
		}
		inst.Demand[0][target] = 1e6
		scen := failure.Scenario{Prob: 1}
		res, err := MaxMin(inst, scen, MaxMinOptions{Domain: FractionDomain})
		if err != nil {
			t.Fatal(err)
		}
		delivered := res.Frac[inst.FlowID(0, target)] * 1e6
		pr := inst.Pairs[target]
		mf := inst.Topo.G.MaxFlow(pr[0], pr[1], nil)
		if delivered > mf+1e-6 {
			t.Fatalf("seed %d: delivered %v exceeds max flow %v", seed, delivered, mf)
		}
	}
}

// TestConcurrentScaleMonotoneInFailures: failing links can never increase
// the concurrent-flow scale.
func TestConcurrentScaleMonotoneInFailures(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		inst := randomInstance(seed, 8, 14)
		zAll, _, _, err := MaxConcurrentScale(inst, failure.Scenario{Prob: 1}, nil)
		if err != nil {
			t.Fatal(err)
		}
		for e := 0; e < inst.Topo.G.NumEdges(); e += 3 {
			scen := failure.Scenario{Failed: []int{e}}
			z, _, _, err := MaxConcurrentScale(inst, scen, nil)
			if err != nil {
				t.Fatal(err)
			}
			if z > zAll+1e-6 {
				t.Fatalf("seed %d: failing edge %d increased scale %v > %v", seed, e, z, zAll)
			}
		}
	}
}
