package te

import (
	"fmt"
	"math"

	"flexile/internal/failure"
	"flexile/internal/lp"
)

// MaxMinDomain selects what quantity the max-min waterfilling levels
// operate on.
type MaxMinDomain int

const (
	// FractionDomain raises every flow's fraction of demand together —
	// equivalently a max-min allocation on flow loss, the adaptation
	// Flexile's online phase makes to SWAN (§4.3).
	FractionDomain MaxMinDomain = iota
	// RateDomain raises every flow's absolute rate together — SWAN's
	// original max-min approximation.
	RateDomain
)

// MaxMinOptions configures the approximate max-min allocation.
type MaxMinOptions struct {
	// Domain picks fraction-of-demand (Flexile) or absolute-rate (SWAN)
	// waterfilling. Default FractionDomain.
	Domain MaxMinDomain
	// Levels is the ascending ladder of waterfilling levels; the last level
	// is the cap (1.0 for fractions, max demand for rates). Nil means a
	// geometric ladder with ratio 2 and 9 steps, SWAN's U = 2.
	Levels []float64
	// MinFrac, when non-nil, gives a per-flow lower bound on the fraction
	// of demand that must be allocated (Flexile's critical flows). Indexed
	// by flow id.
	MinFrac []float64
	// FixRoutes reproduces SWAN's behaviour of freezing both the
	// allocation and the routing of a higher-priority class before a lower
	// one is solved. When false (Flexile's optimization, §4.3), only the
	// achieved volume of the higher class is pinned and routing for all
	// classes is decided jointly.
	FixRoutes bool
	// Demands, when non-nil, overrides the instance's base demands (per
	// flow id) — used with per-scenario traffic matrices (§4.4) and with
	// sequential multi-class design.
	Demands []float64
	// FixedUse, when non-nil, is per-edge bandwidth already claimed
	// outside this allocation (sequential multi-class design); it is
	// subtracted from link capacities.
	FixedUse []float64
	// LP tunes the underlying solver.
	LP lp.Options
}

// MaxMinResult reports the allocation.
type MaxMinResult struct {
	// Frac[f] is the fraction of demand allocated to flow f.
	Frac []float64
	// X[k][i][t] is the per-tunnel allocation.
	X [][][]float64
}

// MaxMin runs the approximate max-min allocation for one scenario,
// processing classes in priority order (class 0 first). Disconnected flows
// and zero-demand flows receive zero.
func MaxMin(inst *Instance, scen failure.Scenario, opt MaxMinOptions) (*MaxMinResult, error) {
	demandOf := func(f int) float64 {
		if opt.Demands != nil {
			return opt.Demands[f]
		}
		return inst.FlowDemand(f)
	}
	res := &MaxMinResult{
		Frac: make([]float64, inst.NumFlows()),
		X:    make([][][]float64, len(inst.Classes)),
	}
	for k := range inst.Classes {
		res.X[k] = make([][]float64, len(inst.Pairs))
		for i := range inst.Pairs {
			res.X[k][i] = make([]float64, len(inst.Tunnels[k][i]))
		}
	}
	fixedUse := make([]float64, inst.Topo.G.NumEdges())
	maxD := 0.0
	for f := 0; f < inst.NumFlows(); f++ {
		if d := demandOf(f); d > maxD {
			maxD = d
		}
	}
	if maxD == 0 {
		return res, nil
	}
	levels := opt.Levels
	if levels == nil {
		top := 1.0
		if opt.Domain == RateDomain {
			top = maxD
		}
		for i := 8; i >= 0; i-- {
			levels = append(levels, top/math.Pow(2, float64(i)))
		}
	}

	// target fraction for flow f at level α.
	targetFrac := func(f int, alpha float64) float64 {
		d := demandOf(f)
		var frac float64
		if opt.Domain == RateDomain {
			frac = alpha / d
		} else {
			frac = alpha
		}
		if frac > 1 {
			frac = 1
		}
		if opt.MinFrac != nil && opt.MinFrac[f] > frac {
			frac = opt.MinFrac[f]
		}
		return frac
	}

	achieved := make([]float64, inst.NumFlows()) // fraction pinned so far
	for ci := range inst.Classes {
		// Active flows of this class.
		var active []int
		for i := range inst.Pairs {
			f := inst.FlowID(ci, i)
			if demandOf(f) > 0 && inst.FlowConnected(ci, i, scen) {
				active = append(active, f)
			}
		}
		if len(active) == 0 {
			continue
		}
		frozen := make(map[int]float64)
		classList := []int{ci}
		if !opt.FixRoutes {
			// Joint mode routes every class's variables together so that
			// earlier classes' floors and later classes' critical
			// reservations can be expressed in the same LP.
			classList = nil
			for k := range inst.Classes {
				classList = append(classList, k)
			}
		}
		var lastAlloc *Alloc
		var lastSol *lp.Solution
		prev := 0.0
		for _, alpha := range levels {
			// Each level runs two LPs (a refinement over plain SWAN that
			// tightens the approximation within a level):
			//   LP1 maximizes the common fraction λ ∈ [prev, α] every
			//       unfrozen flow can reach simultaneously;
			//   LP2 maximizes total volume with λ* as the per-flow floor.
			// Flows that still end below the level target are frozen —
			// they are bottlenecked, exactly the max-min waterfilling rule.
			pin := func(a *Alloc, f int) bool { // returns true if pinned
				k, i := inst.FlowOf(f)
				es := a.FlowEntries(k, i)
				d := demandOf(f)
				if fr, ok := frozen[f]; ok {
					// Tiny downward slack keeps re-solves feasible when the
					// frozen value carries numerical noise.
					slack := 1e-6 * (1 + fr*d)
					a.LP.AddRow(fmt.Sprintf("fz[%d]", f), fr*d-slack, fr*d, es...)
					return true
				}
				return false
			}
			addCrossClassRows := func(a *Alloc) {
				if opt.FixRoutes {
					return
				}
				// Earlier classes keep their achieved volume (floor only:
				// they may pick up more residual capacity).
				for k := 0; k < ci; k++ {
					for i := range inst.Pairs {
						f := inst.FlowID(k, i)
						if achieved[f] <= 0 {
							continue
						}
						es := a.FlowEntries(k, i)
						a.LP.AddGE(fmt.Sprintf("hi[%d]", f), achieved[f]*demandOf(f), es...)
					}
				}
				// Later classes' critical reservations are carved out now:
				// the offline phase promised those flows their bandwidth, so
				// this class's residual filling must not consume it (§4.3).
				for k := ci + 1; k < len(inst.Classes); k++ {
					for i := range inst.Pairs {
						f := inst.FlowID(k, i)
						mf := minFracOf(opt, f)
						if mf <= 0 || demandOf(f) <= 0 || !inst.FlowConnected(k, i, scen) {
							continue
						}
						// The reservation is held at exactly its promised
						// volume; the flow's own class round distributes any
						// extra.
						v := mf * demandOf(f)
						es := a.FlowEntries(k, i)
						a.LP.AddRow(fmt.Sprintf("rsv[%d]", f), v-1e-9*(1+v), v, es...)
					}
				}
			}

			// Level interval per flow in bandwidth units; a common progress
			// variable θ ∈ [0,1] interpolates every flow between its lower
			// and upper level target (this linearizes the demand caps in
			// rate domain and the critical-flow minimums in both domains).
			loF := make(map[int]float64, len(active))
			hiF := make(map[int]float64, len(active))
			for _, f := range active {
				if _, ok := frozen[f]; ok {
					continue
				}
				d := demandOf(f)
				loF[f] = targetFrac(f, prev) * d
				hiF[f] = targetFrac(f, alpha) * d
				if hiF[f] < loF[f] {
					hiF[f] = loF[f]
				}
			}

			// --- LP1: max common progress θ ---
			a1 := NewAlloc(inst, scen, classList, fixedUseFor(opt, fixedUse))
			theta := a1.LP.AddCol("theta", 0, 1, -1)
			for _, f := range active {
				if pin(a1, f) {
					continue
				}
				k, i := inst.FlowOf(f)
				es := a1.FlowEntries(k, i)
				span := hiF[f] - loF[f]
				a1.LP.AddGE(fmt.Sprintf("th[%d]", f), loF[f],
					append(append([]lp.Entry(nil), es...), lp.Entry{Col: theta, Coef: -span})...)
				a1.LP.AddLE(fmt.Sprintf("cap1[%d]", f), hiF[f], es...)
			}
			addCrossClassRows(a1)
			sol1, err := a1.LP.SolveOpts(opt.LP)
			if err != nil {
				return nil, err
			}
			if sol1.Status != lp.Optimal {
				// Infeasibility can only come from MinFrac minimums the
				// scenario cannot support; relax every floor uniformly.
				sol, err := relaxAndSolve(inst, classList, active, frozen, achieved, opt, scen, ci, prev)
				if err != nil {
					return nil, err
				}
				lastAlloc, lastSol = a1, sol
				prev = alpha
				continue
			}
			thetaStar := sol1.X[theta]

			// --- LP2: max total volume with the θ* floor ---
			a2 := NewAlloc(inst, scen, classList, fixedUseFor(opt, fixedUse))
			for _, f := range active {
				if pin(a2, f) {
					continue
				}
				k, i := inst.FlowOf(f)
				es := a2.FlowEntries(k, i)
				lo := loF[f] + thetaStar*(hiF[f]-loF[f]) - 1e-9
				if lo < 0 {
					lo = 0
				}
				a2.LP.AddRow(fmt.Sprintf("lvl[%d]", f), lo, hiF[f], es...)
				for _, e := range es {
					a2.LP.SetCost(e.Col, a2.LP.Cost(e.Col)-1)
				}
			}
			addCrossClassRows(a2)
			sol2, err := a2.LP.SolveOpts(opt.LP)
			if err != nil {
				return nil, err
			}
			if sol2.Status != lp.Optimal {
				// The θ* floor can sit a hair outside the feasible region
				// under numerical noise; relax the floors uniformly.
				sol2, err = relaxAndSolve(inst, classList, active, frozen, achieved, opt, scen, ci, prev)
				if err != nil {
					return nil, fmt.Errorf("te: max-min level %v LP2: %w", alpha, err)
				}
			}
			// Freeze flows that failed to reach the level.
			for _, f := range active {
				if _, ok := frozen[f]; ok {
					continue
				}
				k, i := inst.FlowOf(f)
				got := 0.0
				for t := range a2.xIdx[k][i] {
					if c := a2.xIdx[k][i][t]; c >= 0 {
						got += sol2.X[c]
					}
				}
				d := demandOf(f)
				fr := got / d
				if fr > 1 {
					fr = 1
				}
				if fr < targetFrac(f, alpha)-1e-7 {
					frozen[f] = fr
				}
			}
			lastAlloc, lastSol = a2, sol2
			prev = alpha
		}
		// Record achieved fractions and the routing from the last solve.
		for _, f := range active {
			k, i := inst.FlowOf(f)
			got := 0.0
			for t := range lastAlloc.xIdx[k][i] {
				if c := lastAlloc.xIdx[k][i][t]; c >= 0 {
					got += lastSol.X[c]
				}
			}
			fr := got / demandOf(f)
			if fr > 1 {
				fr = 1
			}
			achieved[f] = fr
		}
		// Extract routing for this class and (in joint mode) every earlier
		// class; later classes are rewritten by their own rounds.
		for _, k := range classList {
			if k > ci {
				continue
			}
			for i := range inst.Pairs {
				res.X[k][i] = lastAlloc.ExtractX(lastSol, k, i)
			}
		}
		if opt.FixRoutes {
			lastAlloc.EdgeUse(lastSol, fixedUse)
		}
	}
	copy(res.Frac, achieved)
	return res, nil
}

func fixedUseFor(opt MaxMinOptions, fixedUse []float64) []float64 {
	if opt.FixRoutes {
		if opt.FixedUse == nil {
			return fixedUse
		}
		sum := make([]float64, len(fixedUse))
		for e := range sum {
			sum[e] = fixedUse[e] + opt.FixedUse[e]
		}
		return sum
	}
	return opt.FixedUse
}

// relaxAndSolve scales every floor — frozen values, the current class's
// level/critical minimums, earlier classes' achieved volumes and later
// classes' reservations — down by a common maximal λ ∈ [0,1] and returns
// the resulting allocation. It only runs when the floors are infeasible,
// which the offline phase's capacity-consistent promises make a numerical
// edge case rather than the common path.
//
// NewAlloc with identical arguments creates the tunnel columns in the same
// order as the caller's Alloc, and λ is appended after them, so the caller
// can read tunnel values from the returned solution using its own column
// indices.
func relaxAndSolve(inst *Instance, classList, active []int, frozen map[int]float64, achieved []float64, opt MaxMinOptions, scen failure.Scenario, ci int, prev float64) (*lp.Solution, error) {
	demandOf := func(f int) float64 {
		if opt.Demands != nil {
			return opt.Demands[f]
		}
		return inst.FlowDemand(f)
	}
	b := NewAlloc(inst, scen, classList, opt.FixedUse)
	lam := b.LP.AddCol("lambda", 0, 1, -1)
	addFloor := func(k, i int, lo float64) {
		if lo <= 0 {
			return
		}
		es := b.FlowEntries(k, i)
		es = append(es, lp.Entry{Col: lam, Coef: -lo})
		b.LP.AddGE(fmt.Sprintf("relax[%d,%d]", k, i), 0, es...)
	}
	for _, f := range active {
		k, i := inst.FlowOf(f)
		d := demandOf(f)
		if fr, ok := frozen[f]; ok {
			addFloor(k, i, fr*d)
			continue
		}
		lo := minFracOf(opt, f)
		if prev > lo && opt.Domain == FractionDomain {
			lo = prev
		}
		addFloor(k, i, lo*d)
	}
	if !opt.FixRoutes {
		for k := 0; k < ci; k++ {
			for i := range inst.Pairs {
				f := inst.FlowID(k, i)
				addFloor(k, i, achieved[f]*demandOf(f))
			}
		}
		for k := ci + 1; k < len(inst.Classes); k++ {
			for i := range inst.Pairs {
				f := inst.FlowID(k, i)
				if demandOf(f) > 0 && inst.FlowConnected(k, i, scen) {
					addFloor(k, i, minFracOf(opt, f)*demandOf(f))
				}
			}
		}
	}
	sol, err := b.LP.SolveOpts(opt.LP)
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("te: max-min relaxation failed: %v", sol.Status)
	}
	// Accept the relaxed allocation as-is for this level.
	return sol, nil
}

func minFracOf(opt MaxMinOptions, f int) float64 {
	if opt.MinFrac == nil {
		return 0
	}
	return opt.MinFrac[f]
}
