// Package te defines the shared traffic-engineering model every scheme in
// this repository operates on: a problem Instance (topology, traffic
// classes, flows, tunnels, failure scenarios), the per-scenario Routing
// produced by a scheme, and loss accounting over both.
//
// Terminology follows the paper (§4.1): a flow is the traffic between one
// site pair in one traffic class, so there are |K|·|P| flows; a failure
// scenario is a disjoint network state with an exact set of failed links.
package te

import (
	"fmt"
	"math"

	"flexile/internal/failure"
	"flexile/internal/graph"
	"flexile/internal/topo"
	"flexile/internal/tunnels"
)

// Class describes one traffic class.
type Class struct {
	// Name is a display label ("high", "low", ...).
	Name string
	// Beta is the target probability β_k at which the class's bandwidth
	// requirement must be met (e.g. 0.999).
	Beta float64
	// Weight is w_k, the penalty weight of the class's PercLoss in the
	// offline objective Σ_k w_k·α_k.
	Weight float64
	// Tunnels selects this class's tunnels per pair.
	Tunnels tunnels.Policy
}

// Instance is a complete TE problem.
type Instance struct {
	Topo    *topo.Topology
	Classes []Class
	// Pairs lists unordered node pairs (u < v); flows reference them.
	Pairs [][2]int
	// Tunnels[k][i] are the tunnels of pair i in class k.
	Tunnels [][][]graph.Path
	// Demand[k][i] is the traffic demand of flow (k, i).
	Demand [][]float64
	// Scenarios are the enumerated disjoint failure states.
	Scenarios []failure.Scenario
	// ScenDemand optionally assigns a different traffic matrix to each
	// scenario (the §4.4 "more general scenarios" extension, where a
	// scenario is a joint failure state and demand state): ScenDemand[q]
	// is nil (use Demand) or a per-flow-id demand vector d_f^q. Flows with
	// zero base demand stay excluded from design regardless of overrides.
	ScenDemand [][]float64
	// LinkProbs are the per-edge failure probabilities that generated the
	// scenarios (kept for reporting).
	LinkProbs []float64
}

// NewInstance builds pairs and tunnels for each class; demands start at
// zero (use the traffic package to populate them) and scenarios empty.
func NewInstance(t *topo.Topology, classes []Class) *Instance {
	inst := &Instance{Topo: t, Classes: classes}
	n := t.G.NumNodes()
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			inst.Pairs = append(inst.Pairs, [2]int{u, v})
		}
	}
	inst.Tunnels = make([][][]graph.Path, len(classes))
	inst.Demand = make([][]float64, len(classes))
	for k, c := range classes {
		inst.Tunnels[k] = make([][]graph.Path, len(inst.Pairs))
		inst.Demand[k] = make([]float64, len(inst.Pairs))
		for i, pr := range inst.Pairs {
			inst.Tunnels[k][i] = c.Tunnels(t.G, pr[0], pr[1])
		}
	}
	return inst
}

// NumFlows reports |K|·|P|.
func (inst *Instance) NumFlows() int { return len(inst.Classes) * len(inst.Pairs) }

// FlowID maps (class, pair) to a dense flow id.
func (inst *Instance) FlowID(k, pair int) int { return k*len(inst.Pairs) + pair }

// FlowOf inverts FlowID.
func (inst *Instance) FlowOf(f int) (k, pair int) {
	return f / len(inst.Pairs), f % len(inst.Pairs)
}

// FlowDemand returns the base demand of flow f.
func (inst *Instance) FlowDemand(f int) float64 {
	k, i := inst.FlowOf(f)
	return inst.Demand[k][i]
}

// DemandIn returns flow (k,i)'s demand in scenario q, honoring per-scenario
// traffic matrices when configured. q < 0 means the base matrix.
func (inst *Instance) DemandIn(k, i, q int) float64 {
	if q >= 0 && inst.ScenDemand != nil && q < len(inst.ScenDemand) && inst.ScenDemand[q] != nil {
		return inst.ScenDemand[q][inst.FlowID(k, i)]
	}
	return inst.Demand[k][i]
}

// ScenDemandVector returns the full per-flow demand vector of scenario q
// (nil when the base matrix applies).
func (inst *Instance) ScenDemandVector(q int) []float64 {
	if q >= 0 && inst.ScenDemand != nil && q < len(inst.ScenDemand) {
		return inst.ScenDemand[q]
	}
	return nil
}

// TunnelAlive reports whether tunnel t of (k, pair) survives the scenario.
func (inst *Instance) TunnelAlive(k, pair, t int, scen failure.Scenario) bool {
	return inst.Tunnels[k][pair][t].Alive(scen.Alive())
}

// FlowConnected reports whether flow (k, pair) has at least one live tunnel
// in the scenario — the connectivity notion used for the warm start (§4.2)
// and for the "disconnected flow" accounting in §6.
func (inst *Instance) FlowConnected(k, pair int, scen failure.Scenario) bool {
	for t := range inst.Tunnels[k][pair] {
		if inst.TunnelAlive(k, pair, t, scen) {
			return true
		}
	}
	return false
}

// FlowConnMass returns, per flow, the probability mass of scenarios in
// which the flow is connected (over the enumerated scenarios).
func (inst *Instance) FlowConnMass() []float64 {
	out := make([]float64, inst.NumFlows())
	for _, s := range inst.Scenarios {
		for k := range inst.Classes {
			for i := range inst.Pairs {
				if inst.FlowConnected(k, i, s) {
					out[inst.FlowID(k, i)] += s.Prob
				}
			}
		}
	}
	return out
}

// AllFlowsConnectedMass returns the probability mass of scenarios where
// every flow has a live tunnel — the basis of the §6 design target.
func (inst *Instance) AllFlowsConnectedMass() float64 {
	tot := 0.0
	for _, s := range inst.Scenarios {
		ok := true
		for k := range inst.Classes {
			for i := range inst.Pairs {
				if !inst.FlowConnected(k, i, s) {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			tot += s.Prob
		}
	}
	return tot
}

// Routing is a complete per-scenario bandwidth assignment:
// X[q][k][i][t] is the bandwidth on tunnel t of pair i, class k, in
// scenario q (the paper's x_ktq).
type Routing struct {
	X [][][][]float64
}

// NewRouting allocates a zero routing shaped for the instance.
func NewRouting(inst *Instance) *Routing {
	r := &Routing{X: make([][][][]float64, len(inst.Scenarios))}
	for q := range r.X {
		r.X[q] = make([][][]float64, len(inst.Classes))
		for k := range inst.Classes {
			r.X[q][k] = make([][]float64, len(inst.Pairs))
			for i := range inst.Pairs {
				r.X[q][k][i] = make([]float64, len(inst.Tunnels[k][i]))
			}
		}
	}
	return r
}

// Delivered returns the bandwidth flow (k, i) receives in scenario q:
// the allocation summed over tunnels that are alive in that scenario,
// capped by the scenario's demand.
func (r *Routing) Delivered(inst *Instance, k, i, q int) float64 {
	scen := inst.Scenarios[q]
	tot := 0.0
	for t, x := range r.X[q][k][i] {
		if x > 0 && inst.TunnelAlive(k, i, t, scen) {
			tot += x
		}
	}
	if d := inst.DemandIn(k, i, q); tot > d {
		return d
	}
	return tot
}

// Loss returns l_fq = max(0, 1 − delivered/demand) for flow (k,i) in
// scenario q. Zero-demand flows have zero loss.
func (r *Routing) Loss(inst *Instance, k, i, q int) float64 {
	d := inst.DemandIn(k, i, q)
	if d <= 0 {
		return 0
	}
	l := 1 - r.Delivered(inst, k, i, q)/d
	if l < 0 {
		return 0
	}
	if l > 1 {
		return 1
	}
	return l
}

// LossMatrix returns losses[f][q] for every flow and scenario.
func (r *Routing) LossMatrix(inst *Instance) [][]float64 {
	out := make([][]float64, inst.NumFlows())
	for k := range inst.Classes {
		for i := range inst.Pairs {
			f := inst.FlowID(k, i)
			row := make([]float64, len(inst.Scenarios))
			for q := range inst.Scenarios {
				row[q] = r.Loss(inst, k, i, q)
			}
			out[f] = row
		}
	}
	return out
}

// CheckCapacity verifies no link is oversubscribed in any scenario (within
// tol) and that no failed-link tunnel carries traffic. It returns the first
// violation found.
func (r *Routing) CheckCapacity(inst *Instance, tol float64) error {
	g := inst.Topo.G
	for q, scen := range inst.Scenarios {
		use := make([]float64, g.NumEdges())
		for k := range inst.Classes {
			for i := range inst.Pairs {
				for t, x := range r.X[q][k][i] {
					if x <= 0 {
						continue
					}
					for _, e := range inst.Tunnels[k][i][t].Edges {
						use[e] += x
					}
				}
			}
		}
		for e := 0; e < g.NumEdges(); e++ {
			cap := g.Edge(e).Capacity
			if scen.IsFailed(e) {
				cap = 0
			}
			if use[e] > cap+tol {
				return fmt.Errorf("te: scenario %d link %d carries %.6g over capacity %.6g", q, e, use[e], cap)
			}
		}
	}
	return nil
}

// TotalDemand sums the demand over all flows.
func (inst *Instance) TotalDemand() float64 {
	tot := 0.0
	for k := range inst.Classes {
		for i := range inst.Pairs {
			tot += inst.Demand[k][i]
		}
	}
	return tot
}

// ScaleDemands multiplies every demand (including per-scenario overrides)
// by s.
func (inst *Instance) ScaleDemands(s float64) {
	for k := range inst.Classes {
		for i := range inst.Pairs {
			inst.Demand[k][i] *= s
		}
	}
	for q := range inst.ScenDemand {
		for f := range inst.ScenDemand[q] {
			inst.ScenDemand[q][f] *= s
		}
	}
}

// ScaleClassDemands multiplies class k's demands (including per-scenario
// overrides) by s.
func (inst *Instance) ScaleClassDemands(k int, s float64) {
	for i := range inst.Pairs {
		inst.Demand[k][i] *= s
	}
	for q := range inst.ScenDemand {
		if inst.ScenDemand[q] == nil {
			continue
		}
		for i := range inst.Pairs {
			inst.ScenDemand[q][inst.FlowID(k, i)] *= s
		}
	}
}

// Clone deep-copies the instance (scenarios and tunnels are shared, demand
// slices are copied) so experiments can perturb demands independently.
func (inst *Instance) Clone() *Instance {
	out := *inst
	out.Demand = make([][]float64, len(inst.Demand))
	for k := range inst.Demand {
		out.Demand[k] = append([]float64(nil), inst.Demand[k]...)
	}
	if inst.ScenDemand != nil {
		out.ScenDemand = make([][]float64, len(inst.ScenDemand))
		for q := range inst.ScenDemand {
			if inst.ScenDemand[q] != nil {
				out.ScenDemand[q] = append([]float64(nil), inst.ScenDemand[q]...)
			}
		}
	}
	return &out
}

// NoFailure returns the all-links-alive scenario with probability 1, used
// when scaling traffic matrices.
func NoFailure() failure.Scenario { return failure.Scenario{Prob: 1} }

// Infinity is a convenience alias used by scheme packages.
var Infinity = math.Inf(1)
