package te

import (
	"math"
	"testing"

	"flexile/internal/failure"
	"flexile/internal/lp"
	"flexile/internal/topo"
	"flexile/internal/tunnels"
)

func approx(a, b float64) bool { return math.Abs(a-b) <= 1e-6*(1+math.Abs(a)+math.Abs(b)) }

// triangleInstance is the paper's Fig. 1 setup: flows A→B and A→C, demand 1
// each, unit capacities, single class.
func triangleInstance() *Instance {
	tp := topo.Triangle()
	inst := NewInstance(tp, []Class{{
		Name: "single", Beta: 0.99, Weight: 1, Tunnels: tunnels.SingleClass(3),
	}})
	// Pairs are (A,B)=0, (A,C)=1, (B,C)=2.
	inst.Demand[0][0] = 1
	inst.Demand[0][1] = 1
	probs := []float64{0.01, 0.01, 0.01}
	inst.LinkProbs = probs
	inst.Scenarios = failure.Enumerate(probs, 0)
	return inst
}

func TestInstanceShape(t *testing.T) {
	inst := triangleInstance()
	if len(inst.Pairs) != 3 {
		t.Fatalf("pairs = %d", len(inst.Pairs))
	}
	if inst.NumFlows() != 3 {
		t.Fatalf("flows = %d", inst.NumFlows())
	}
	k, i := inst.FlowOf(inst.FlowID(0, 2))
	if k != 0 || i != 2 {
		t.Fatalf("FlowOf(FlowID) = %d,%d", k, i)
	}
	// A-B pair has two tunnels in the triangle (direct and via C).
	if got := len(inst.Tunnels[0][0]); got != 2 {
		t.Fatalf("A-B tunnels = %d, want 2", got)
	}
}

func TestFlowConnected(t *testing.T) {
	inst := triangleInstance()
	all := failure.Scenario{Prob: 1}
	if !inst.FlowConnected(0, 0, all) {
		t.Fatal("A-B connected with everything alive")
	}
	// Fail A-B (e0) and B-C (e2): A-B pair has no live tunnel.
	s := failure.Scenario{Failed: []int{0, 2}}
	if inst.FlowConnected(0, 0, s) {
		t.Fatal("A-B should be disconnected when e0 and e2 fail")
	}
	if !inst.FlowConnected(0, 1, s) {
		t.Fatal("A-C survives on the direct link")
	}
}

func TestRoutingLosses(t *testing.T) {
	inst := triangleInstance()
	r := NewRouting(inst)
	// In scenario 0 (all alive), give A-B 0.7 on its direct tunnel.
	// Identify the direct tunnel (length 1).
	dt := -1
	for ti, p := range inst.Tunnels[0][0] {
		if p.Len() == 1 {
			dt = ti
		}
	}
	r.X[0][0][0][dt] = 0.7
	if got := r.Delivered(inst, 0, 0, 0); !approx(got, 0.7) {
		t.Fatalf("delivered = %v", got)
	}
	if got := r.Loss(inst, 0, 0, 0); !approx(got, 0.3) {
		t.Fatalf("loss = %v", got)
	}
	// Allocation on a dead tunnel must not count. Find the scenario where
	// only e0 (A-B) fails.
	qFail := -1
	for q, s := range inst.Scenarios {
		if len(s.Failed) == 1 && s.Failed[0] == 0 {
			qFail = q
		}
	}
	r.X[qFail][0][0][dt] = 0.9
	if got := r.Delivered(inst, 0, 0, qFail); got != 0 {
		t.Fatalf("dead tunnel delivered %v", got)
	}
	if got := r.Loss(inst, 0, 0, qFail); !approx(got, 1) {
		t.Fatalf("loss with dead tunnel = %v", got)
	}
	// Over-allocation is capped at demand.
	r.X[0][0][0][dt] = 5
	if got := r.Delivered(inst, 0, 0, 0); !approx(got, 1) {
		t.Fatalf("delivered should cap at demand, got %v", got)
	}
}

func TestCheckCapacity(t *testing.T) {
	inst := triangleInstance()
	r := NewRouting(inst)
	dt := directTunnel(inst, 0, 0)
	r.X[0][0][0][dt] = 0.5
	if err := r.CheckCapacity(inst, 1e-9); err != nil {
		t.Fatalf("feasible routing flagged: %v", err)
	}
	r.X[0][0][0][dt] = 1.5 // over unit capacity
	if err := r.CheckCapacity(inst, 1e-9); err == nil {
		t.Fatal("oversubscription not detected")
	}
	// Traffic on a failed link must be flagged.
	r.X[0][0][0][dt] = 0.5
	qFail := scenarioWithFailed(inst, 0)
	r.X[qFail][0][0][dt] = 0.1
	if err := r.CheckCapacity(inst, 1e-9); err == nil {
		t.Fatal("traffic on failed link not detected")
	}
}

func directTunnel(inst *Instance, k, i int) int {
	for ti, p := range inst.Tunnels[k][i] {
		if p.Len() == 1 {
			return ti
		}
	}
	return -1
}

func scenarioWithFailed(inst *Instance, edge int) int {
	for q, s := range inst.Scenarios {
		if len(s.Failed) == 1 && s.Failed[0] == edge {
			return q
		}
	}
	return -1
}

func TestMaxConcurrentScaleTriangle(t *testing.T) {
	inst := triangleInstance()
	// All alive: both flows can be fully served (z ≥ 1); in fact z = 1.5
	// (direct link + half shared through the third path? direct 1 + via-C
	// limited by B-C shared between both flows → z = 1.5).
	z, _, _, err := MaxConcurrentScale(inst, failure.Scenario{Prob: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if z < 1 {
		t.Fatalf("all-alive z = %v, want ≥ 1", z)
	}
	// Only e0 (A-B) failed: flow A-B has only the 2-hop path A-C-B; flow
	// A-C has its direct link. A-C link is shared: x_ACB + x_AC ≤ 1 with
	// x_ACB ≥ z, x_AC ≥ z → z = 0.5.
	qFail := scenarioWithFailed(inst, 0)
	z, _, _, err = MaxConcurrentScale(inst, inst.Scenarios[qFail], nil)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(z, 0.5) {
		t.Fatalf("z = %v, want 0.5 (paper Fig. 2)", z)
	}
}

func TestMaxMinTriangleAllAlive(t *testing.T) {
	inst := triangleInstance()
	res, err := MaxMin(inst, failure.Scenario{Prob: 1}, MaxMinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Both demanded flows fully served when everything is alive.
	if !approx(res.Frac[inst.FlowID(0, 0)], 1) || !approx(res.Frac[inst.FlowID(0, 1)], 1) {
		t.Fatalf("fracs = %v", res.Frac)
	}
	// Zero-demand flow gets zero.
	if res.Frac[inst.FlowID(0, 2)] != 0 {
		t.Fatalf("zero-demand flow got %v", res.Frac[inst.FlowID(0, 2)])
	}
}

func TestMaxMinTriangleFailureFair(t *testing.T) {
	inst := triangleInstance()
	qFail := scenarioWithFailed(inst, 0) // A-B down
	res, err := MaxMin(inst, inst.Scenarios[qFail], MaxMinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Paper Fig. 2: fair share gives each flow 0.5.
	got0 := res.Frac[inst.FlowID(0, 0)]
	got1 := res.Frac[inst.FlowID(0, 1)]
	if !approx(got0, 0.5) || !approx(got1, 0.5) {
		t.Fatalf("max-min fracs = %v, %v; want 0.5, 0.5", got0, got1)
	}
}

func TestMaxMinCriticalPriority(t *testing.T) {
	inst := triangleInstance()
	qFail := scenarioWithFailed(inst, 0) // A-B down
	// Flexile marks A-C critical here (its direct link is alive): A-C must
	// get its full demand; A-B picks up the residual.
	minFrac := make([]float64, inst.NumFlows())
	minFrac[inst.FlowID(0, 1)] = 1.0
	res, err := MaxMin(inst, inst.Scenarios[qFail], MaxMinOptions{MinFrac: minFrac})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Frac[inst.FlowID(0, 1)], 1) {
		t.Fatalf("critical A-C got %v, want 1", res.Frac[inst.FlowID(0, 1)])
	}
	// A-B's only path shares A-C's link: it gets nothing once A-C is full.
	if res.Frac[inst.FlowID(0, 0)] > 1e-6 {
		t.Fatalf("A-B got %v, want 0", res.Frac[inst.FlowID(0, 0)])
	}
	// The allocation must be capacity-feasible.
	checkResultFeasible(t, inst, inst.Scenarios[qFail], res)
}

func checkResultFeasible(t *testing.T, inst *Instance, scen failure.Scenario, res *MaxMinResult) {
	t.Helper()
	g := inst.Topo.G
	use := make([]float64, g.NumEdges())
	for k := range inst.Classes {
		for i := range inst.Pairs {
			for ti, x := range res.X[k][i] {
				if x <= 0 {
					continue
				}
				if !inst.TunnelAlive(k, i, ti, scen) && x > 1e-7 {
					t.Fatalf("allocation %v on dead tunnel", x)
				}
				for _, e := range inst.Tunnels[k][i][ti].Edges {
					use[e] += x
				}
			}
		}
	}
	for e := range use {
		cap := g.Edge(e).Capacity
		if scen.IsFailed(e) {
			cap = 0
		}
		if use[e] > cap+1e-6 {
			t.Fatalf("edge %d used %v over cap %v", e, use[e], cap)
		}
	}
}

// Two-class priority: the high class takes the bottleneck first.
func TestMaxMinTwoClassPriority(t *testing.T) {
	tp := topo.TriangleNoBC() // A-B and A-C only
	inst := NewInstance(tp, []Class{
		{Name: "high", Beta: 0.999, Weight: 1000, Tunnels: tunnels.HighPriority(3)},
		{Name: "low", Beta: 0.99, Weight: 1, Tunnels: tunnels.LowPriority(3, 3)},
	})
	// Both classes want the full A-B link (capacity 1).
	inst.Demand[0][0] = 1 // high A-B
	inst.Demand[1][0] = 1 // low A-B
	inst.Scenarios = []failure.Scenario{{Prob: 1}}
	res, err := MaxMin(inst, inst.Scenarios[0], MaxMinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Frac[inst.FlowID(0, 0)], 1) {
		t.Fatalf("high class got %v, want 1", res.Frac[inst.FlowID(0, 0)])
	}
	if res.Frac[inst.FlowID(1, 0)] > 1e-6 {
		t.Fatalf("low class got %v, want 0", res.Frac[inst.FlowID(1, 0)])
	}
}

// RateDomain vs FractionDomain: with unequal demands sharing one link,
// rate-domain max-min equalizes rates; fraction-domain equalizes fractions.
func TestMaxMinDomains(t *testing.T) {
	tp := topo.TriangleNoBC()
	inst := NewInstance(tp, []Class{{Name: "s", Beta: 0.99, Weight: 1, Tunnels: tunnels.SingleClass(3)}})
	// Both pairs A-B and A-C... they use disjoint links. Need contention:
	// use pair A-B with demand 2 and pair B-C (via A) with demand 1? B-C's
	// only path is B-A-C which shares A-B.
	inst.Demand[0][0] = 2 // A-B
	inst.Demand[0][2] = 1 // B-C via B-A-C
	inst.Scenarios = []failure.Scenario{{Prob: 1}}
	scen := inst.Scenarios[0]

	rate, err := MaxMin(inst, scen, MaxMinOptions{Domain: RateDomain})
	if err != nil {
		t.Fatal(err)
	}
	// Link A-B capacity 1 shared: rate-domain gives each 0.5 →
	// fractions 0.25 and 0.5.
	if !approx(rate.Frac[inst.FlowID(0, 0)]*2, 0.5) || !approx(rate.Frac[inst.FlowID(0, 2)], 0.5) {
		t.Fatalf("rate-domain fracs: %v", rate.Frac)
	}

	frac, err := MaxMin(inst, scen, MaxMinOptions{Domain: FractionDomain})
	if err != nil {
		t.Fatal(err)
	}
	// Fraction-domain equalizes fractions: f·2 + f·1 ≤ 1 → f = 1/3.
	if !approx(frac.Frac[inst.FlowID(0, 0)], 1.0/3) || !approx(frac.Frac[inst.FlowID(0, 2)], 1.0/3) {
		t.Fatalf("fraction-domain fracs: %v", frac.Frac)
	}
}

func TestCloneAndScale(t *testing.T) {
	inst := triangleInstance()
	c := inst.Clone()
	c.ScaleDemands(2)
	if !approx(c.Demand[0][0], 2) || !approx(inst.Demand[0][0], 1) {
		t.Fatalf("clone aliasing: %v %v", c.Demand[0][0], inst.Demand[0][0])
	}
	c.ScaleClassDemands(0, 0.5)
	if !approx(c.Demand[0][0], 1) {
		t.Fatalf("class scale: %v", c.Demand[0][0])
	}
	if !approx(inst.TotalDemand(), 2) {
		t.Fatalf("total demand %v", inst.TotalDemand())
	}
}

func TestFlowConnMassAndDesign(t *testing.T) {
	inst := triangleInstance()
	mass := inst.FlowConnMass()
	// Flow A-B is disconnected only when e0 and (e1 or e2) fail:
	// p = 0.01·(1−0.99²).
	want := 1 - 0.01*(1-0.99*0.99)
	if !approx(mass[inst.FlowID(0, 0)], want) {
		t.Fatalf("conn mass %v, want %v", mass[inst.FlowID(0, 0)], want)
	}
	all := inst.AllFlowsConnectedMass()
	if all > mass[0]+1e-12 {
		t.Fatal("all-flows mass cannot exceed a single flow's")
	}
}

func lpEntry(col int) lp.Entry { return lp.Entry{Col: col, Coef: 1} }

func TestAllocFixedUseClamp(t *testing.T) {
	inst := triangleInstance()
	// fixedUse beyond capacity clamps the row to zero rather than going
	// negative.
	fixed := []float64{5, 0, 0}
	a := NewAlloc(inst, failure.Scenario{Prob: 1}, nil, fixed)
	es := a.FlowEntries(0, 0)
	a.LP.AddGE("want", 0.1, es...)
	// Flow (A,B) still has the 2-hop path (edges 1,2) with capacity 1.
	sol, err := a.LP.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status.String() != "optimal" {
		t.Fatalf("status %v", sol.Status)
	}
	// But edge 0 itself must admit nothing: force 0.1 through the direct
	// tunnel only and expect infeasibility.
	b := NewAlloc(inst, failure.Scenario{Prob: 1}, nil, fixed)
	dt := directTunnel(inst, 0, 0)
	if c := b.XVar(0, 0, dt); c >= 0 {
		b.LP.AddGE("direct", 0.1, lpEntry(c))
		sol, err = b.LP.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status.String() != "infeasible" {
			t.Fatalf("exhausted edge accepted traffic: %v", sol.Status)
		}
	}
}
