package te

import (
	"context"
	"math"
	"testing"

	"flexile/internal/failure"
	"flexile/internal/lp"
)

// TestScaleBatchMatchesOracle: the compiled bound-variant path computes the
// same per-scenario concurrent scale as the per-scenario-built oracle —
// including +Inf for all-disconnected scenarios — across random instances,
// cold and warm-started.
func TestScaleBatchMatchesOracle(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		inst := randomInstance(seed, 8, 14)
		sb, err := NewScaleBatch(inst)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sv := sb.NewSolver()
		var seedBasis *lp.Basis
		scens := append([]failure.Scenario{{Prob: 1}}, inst.Scenarios...)
		// A scenario killing every edge exercises the +Inf branch.
		all := make([]int, inst.Topo.G.NumEdges())
		for e := range all {
			all[e] = e
		}
		scens = append(scens, failure.Scenario{Failed: all})
		for q, scen := range scens {
			want, _, _, err := MaxConcurrentScale(inst, scen, nil)
			if err != nil {
				t.Fatalf("seed %d q %d oracle: %v", seed, q, err)
			}
			got, basis, err := sv.Solve(context.Background(), scen, lp.Options{StartBasis: seedBasis})
			if err != nil {
				t.Fatalf("seed %d q %d batch: %v", seed, q, err)
			}
			if math.IsInf(want, 1) != math.IsInf(got, 1) {
				t.Fatalf("seed %d q %d: batch scale %v, oracle %v", seed, q, got, want)
			}
			if !math.IsInf(want, 1) && math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
				t.Fatalf("seed %d q %d: batch scale %v, oracle %v", seed, q, got, want)
			}
			if seedBasis == nil {
				seedBasis = basis
			}
		}
	}
}

// TestScaleBatchRejectsScenDemand: per-scenario traffic matrices change LP
// coefficients, which bound variants cannot express — compilation must
// refuse rather than silently mis-solve.
func TestScaleBatchRejectsScenDemand(t *testing.T) {
	inst := randomInstance(3, 8, 14)
	inst.ScenDemand = make([][]float64, len(inst.Scenarios))
	inst.ScenDemand[0] = make([]float64, inst.NumFlows())
	if _, err := NewScaleBatch(inst); err == nil {
		t.Fatal("NewScaleBatch accepted an instance with per-scenario demands")
	}
}
