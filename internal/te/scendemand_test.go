package te

import (
	"testing"

	"flexile/internal/failure"
	"flexile/internal/topo"
	"flexile/internal/tunnels"
)

// scenDemandInstance builds the triangle with demand 1 per flow in the
// all-alive scenario and demand 0.5 per flow in every failure scenario
// (the §4.4 per-scenario traffic matrix extension).
func scenDemandInstance() *Instance {
	tp := topo.Triangle()
	inst := NewInstance(tp, []Class{{
		Name: "single", Beta: 0.99, Weight: 1, Tunnels: tunnels.SingleClass(3),
	}})
	inst.Demand[0][0] = 1
	inst.Demand[0][1] = 1
	inst.LinkProbs = []float64{0.01, 0.01, 0.01}
	inst.Scenarios = failure.Enumerate(inst.LinkProbs, 0)
	inst.ScenDemand = make([][]float64, len(inst.Scenarios))
	for q, s := range inst.Scenarios {
		if len(s.Failed) == 0 {
			continue // base matrix in the all-alive state
		}
		d := make([]float64, inst.NumFlows())
		d[inst.FlowID(0, 0)] = 0.5
		d[inst.FlowID(0, 1)] = 0.5
		inst.ScenDemand[q] = d
	}
	return inst
}

func TestDemandIn(t *testing.T) {
	inst := scenDemandInstance()
	if got := inst.DemandIn(0, 0, 0); !approx(got, 1) {
		t.Fatalf("all-alive demand = %v, want base 1", got)
	}
	qFail := scenarioWithFailed(inst, 0)
	if got := inst.DemandIn(0, 0, qFail); !approx(got, 0.5) {
		t.Fatalf("failure-scenario demand = %v, want 0.5", got)
	}
	if got := inst.DemandIn(0, 0, -1); !approx(got, 1) {
		t.Fatalf("q=-1 must give the base matrix, got %v", got)
	}
}

func TestLossUsesScenarioDemand(t *testing.T) {
	inst := scenDemandInstance()
	qFail := scenarioWithFailed(inst, 0) // A-B down
	r := NewRouting(inst)
	// Deliver 0.5 to flow A-B via A-C-B: at scenario demand 0.5 that is a
	// full delivery (loss 0), although at base demand it would be 50% loss.
	for ti, p := range inst.Tunnels[0][0] {
		if p.Len() == 2 {
			r.X[qFail][0][0][ti] = 0.5
		}
	}
	if got := r.Loss(inst, 0, 0, qFail); got > 1e-9 {
		t.Fatalf("loss = %v, want 0 at the scenario demand", got)
	}
}

func TestMaxMinScenarioDemand(t *testing.T) {
	inst := scenDemandInstance()
	qFail := scenarioWithFailed(inst, 0)
	res, err := MaxMin(inst, inst.Scenarios[qFail], MaxMinOptions{
		Demands: inst.ScenDemandVector(qFail),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both halved demands fit simultaneously (0.5 + 0.5 on link A-C).
	if !approx(res.Frac[inst.FlowID(0, 0)], 1) || !approx(res.Frac[inst.FlowID(0, 1)], 1) {
		t.Fatalf("fracs = %v, want full delivery at halved demands", res.Frac)
	}
}

func TestScaleAndCloneWithScenDemand(t *testing.T) {
	inst := scenDemandInstance()
	c := inst.Clone()
	c.ScaleDemands(2)
	qFail := scenarioWithFailed(inst, 0)
	if !approx(c.DemandIn(0, 0, qFail), 1) {
		t.Fatalf("scaled scenario demand = %v, want 1", c.DemandIn(0, 0, qFail))
	}
	if !approx(inst.DemandIn(0, 0, qFail), 0.5) {
		t.Fatal("clone aliased scenario demands")
	}
	c.ScaleClassDemands(0, 0.5)
	if !approx(c.DemandIn(0, 0, qFail), 0.5) {
		t.Fatalf("class-scaled scenario demand = %v", c.DemandIn(0, 0, qFail))
	}
}

func TestMaxConcurrentScaleD(t *testing.T) {
	inst := scenDemandInstance()
	qFail := scenarioWithFailed(inst, 0)
	scen := inst.Scenarios[qFail]
	// At base demands the scale is 0.5; at the scenario's halved demands
	// it doubles to 1.0.
	zBase, _, _, err := MaxConcurrentScale(inst, scen, nil)
	if err != nil {
		t.Fatal(err)
	}
	zScen, _, _, err := MaxConcurrentScaleD(inst, scen, nil, inst.ScenDemandVector(qFail))
	if err != nil {
		t.Fatal(err)
	}
	if !approx(zBase, 0.5) || !approx(zScen, 1.0) {
		t.Fatalf("zBase=%v zScen=%v, want 0.5 and 1.0", zBase, zScen)
	}
}
