package te

import (
	"context"
	"fmt"
	"math"

	"flexile/internal/failure"
	"flexile/internal/lp"
)

// Alloc builds per-scenario bandwidth-allocation LPs. It creates one
// variable per live tunnel (columns for dead tunnels are omitted, which
// keeps the LPs small) and one capacity row per link carrying at least one
// live tunnel. Callers layer their objective and extra rows on top.
type Alloc struct {
	Inst *Instance
	Scen failure.Scenario
	LP   *lp.Problem
	// xIdx[k][i][t] is the LP column of tunnel t (−1 when the tunnel is
	// dead in the scenario or its class is excluded).
	xIdx [][][]int
}

// NewAlloc builds the LP skeleton. classes selects which class indices get
// variables (nil means all). fixedUse, when non-nil, is per-edge bandwidth
// already consumed by traffic outside this LP; it is subtracted from link
// capacities.
func NewAlloc(inst *Instance, scen failure.Scenario, classes []int, fixedUse []float64) *Alloc {
	a := &Alloc{Inst: inst, Scen: scen, LP: lp.NewProblem()}
	include := make([]bool, len(inst.Classes))
	if classes == nil {
		for k := range include {
			include[k] = true
		}
	} else {
		for _, k := range classes {
			include[k] = true
		}
	}
	g := inst.Topo.G
	alive := scen.Alive()
	a.xIdx = make([][][]int, len(inst.Classes))
	edgeEntries := make([][]lp.Entry, g.NumEdges())
	for k := range inst.Classes {
		a.xIdx[k] = make([][]int, len(inst.Pairs))
		for i := range inst.Pairs {
			a.xIdx[k][i] = make([]int, len(inst.Tunnels[k][i]))
			for t := range inst.Tunnels[k][i] {
				a.xIdx[k][i][t] = -1
				if !include[k] || !inst.Tunnels[k][i][t].Alive(alive) {
					continue
				}
				col := a.LP.AddCol(fmt.Sprintf("x[%d,%d,%d]", k, i, t), 0, lp.Inf, 0)
				a.xIdx[k][i][t] = col
				for _, e := range inst.Tunnels[k][i][t].Edges {
					edgeEntries[e] = append(edgeEntries[e], lp.Entry{Col: col, Coef: 1})
				}
			}
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		if len(edgeEntries[e]) == 0 {
			continue
		}
		cap := g.Edge(e).Capacity
		if fixedUse != nil {
			cap -= fixedUse[e]
			if cap < 0 {
				cap = 0
			}
		}
		a.LP.AddLE(fmt.Sprintf("cap[%d]", e), cap, edgeEntries[e]...)
	}
	return a
}

// XVar returns the LP column of tunnel t of (k, i), or −1 when dead.
func (a *Alloc) XVar(k, i, t int) int { return a.xIdx[k][i][t] }

// FlowEntries returns the LP entries summing the live-tunnel bandwidth of
// flow (k, i); empty when the flow is disconnected.
func (a *Alloc) FlowEntries(k, i int) []lp.Entry {
	var es []lp.Entry
	for t := range a.xIdx[k][i] {
		if c := a.xIdx[k][i][t]; c >= 0 {
			es = append(es, lp.Entry{Col: c, Coef: 1})
		}
	}
	return es
}

// ExtractX reads the per-tunnel allocation of (k, i) out of an LP solution.
func (a *Alloc) ExtractX(sol *lp.Solution, k, i int) []float64 {
	out := make([]float64, len(a.xIdx[k][i]))
	for t, c := range a.xIdx[k][i] {
		if c >= 0 {
			out[t] = sol.X[c]
		}
	}
	return out
}

// EdgeUse accumulates per-edge bandwidth used by an LP solution into use.
func (a *Alloc) EdgeUse(sol *lp.Solution, use []float64) {
	for k := range a.xIdx {
		for i := range a.xIdx[k] {
			for t, c := range a.xIdx[k][i] {
				if c < 0 || sol.X[c] <= 0 {
					continue
				}
				for _, e := range a.Inst.Tunnels[k][i][t].Edges {
					use[e] += sol.X[c]
				}
			}
		}
	}
}

// MaxConcurrentScale solves the maximum concurrent flow problem for the
// scenario: the largest z such that every flow in the included classes can
// receive z·demand over live tunnels within capacity. Flows with zero
// demand or no live tunnel are skipped (a disconnected flow would force
// z = 0; the caller decides how to treat those).
//
// Minimizing ScenLoss is equivalent to maximizing z: ScenLoss =
// max(0, 1−z) (paper appendix A).
func MaxConcurrentScale(inst *Instance, scen failure.Scenario, classes []int) (float64, *Alloc, *lp.Solution, error) {
	return MaxConcurrentScaleD(inst, scen, classes, nil)
}

// MaxConcurrentScaleD is MaxConcurrentScale with an optional per-flow
// demand override (per-scenario traffic matrices, §4.4).
func MaxConcurrentScaleD(inst *Instance, scen failure.Scenario, classes []int, demands []float64) (float64, *Alloc, *lp.Solution, error) {
	return MaxConcurrentScaleOpts(inst, scen, classes, demands, nil)
}

// MaxConcurrentScaleOpts additionally subtracts fixedUse (per-edge
// bandwidth claimed outside this problem) from link capacities.
func MaxConcurrentScaleOpts(inst *Instance, scen failure.Scenario, classes []int, demands, fixedUse []float64) (float64, *Alloc, *lp.Solution, error) {
	return MaxConcurrentScaleCtx(context.Background(), inst, scen, classes, demands, fixedUse)
}

// MaxConcurrentScaleCtx is MaxConcurrentScaleOpts under a context:
// cancellation or an expired deadline aborts the LP solve with the context
// error wrapped. An iteration-limited solve reports lp.ErrIterLimit so
// degraded-mode callers can classify the failure with errors.Is.
func MaxConcurrentScaleCtx(ctx context.Context, inst *Instance, scen failure.Scenario, classes []int, demands, fixedUse []float64) (float64, *Alloc, *lp.Solution, error) {
	a := NewAlloc(inst, scen, classes, fixedUse)
	z := a.LP.AddCol("z", 0, lp.Inf, -1) // maximize z
	include := make([]bool, len(inst.Classes))
	if classes == nil {
		for k := range include {
			include[k] = true
		}
	} else {
		for _, k := range classes {
			include[k] = true
		}
	}
	any := false
	for k := range inst.Classes {
		if !include[k] {
			continue
		}
		for i := range inst.Pairs {
			d := inst.Demand[k][i]
			if demands != nil {
				d = demands[inst.FlowID(k, i)]
			}
			if d <= 0 {
				continue
			}
			es := a.FlowEntries(k, i)
			if len(es) == 0 {
				continue
			}
			any = true
			es = append(es, lp.Entry{Col: z, Coef: -d})
			a.LP.AddGE(fmt.Sprintf("dem[%d,%d]", k, i), 0, es...)
		}
	}
	if !any {
		return math.Inf(1), a, nil, nil
	}
	sol, err := a.LP.SolveCtx(ctx, lp.Options{})
	if err != nil {
		return 0, nil, nil, err
	}
	if sol.Status == lp.IterLimit {
		return 0, nil, nil, fmt.Errorf("te: max concurrent flow: %w", lp.ErrIterLimit)
	}
	if sol.Status != lp.Optimal {
		return 0, nil, nil, fmt.Errorf("te: max concurrent flow: %v", sol.Status)
	}
	return sol.X[z], a, sol, nil
}
