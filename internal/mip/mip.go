// Package mip implements a branch-and-bound solver for mixed binary
// programs on top of the lp package.
//
// It supports problems whose integer variables are all binary, which covers
// both optimization models in the paper: the critical-scenario master
// problem (M) and the direct formulation (I). The solver offers best-first
// search with most-fractional branching, a pluggable rounding heuristic for
// fast incumbents, warm-start incumbents, and node/gap limits — the master
// problem in the decomposition only needs good feasible solutions quickly,
// not proofs of optimality.
package mip

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"flexile/internal/lp"
	"flexile/internal/obs"
)

// Problem is a binary MIP: the LP relaxation plus a set of columns that
// must take value 0 or 1.
type Problem struct {
	LP     *lp.Problem
	Binary []int
}

// Status reports the outcome of a solve.
type Status int

const (
	// Optimal means the incumbent was proven optimal (within the gap).
	Optimal Status = iota
	// Feasible means a limit was hit but an integer solution is available.
	Feasible
	// Infeasible means no integer-feasible point exists.
	Infeasible
	// Unbounded means the LP relaxation is unbounded.
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Solution is the result of a solve.
type Solution struct {
	Status    Status
	Objective float64
	X         []float64
	// Bound is the best proven lower bound on the optimum.
	Bound float64
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
}

// Options tunes the search.
type Options struct {
	// MaxNodes bounds the number of explored nodes; 0 means 10000.
	MaxNodes int
	// RelGap stops the search when (incumbent − bound) ≤ RelGap·|incumbent|;
	// 0 means 1e-6.
	RelGap float64
	// IntTol is the integrality tolerance; 0 means 1e-6.
	IntTol float64
	// LP tunes the relaxation solves.
	LP lp.Options
	// Heuristic, if set, receives a fractional relaxation solution and may
	// return suggested 0/1 values for the binary columns (same order as
	// Problem.Binary). The solver completes the suggestion by fixing the
	// binaries and re-solving the LP.
	Heuristic func(frac []float64) []float64
	// WarmBinary, if set, is a 0/1 assignment of the binary columns tried
	// as an initial incumbent.
	WarmBinary []float64
}

func (o Options) withDefaults() Options {
	if o.MaxNodes == 0 {
		o.MaxNodes = 10000
	}
	if o.RelGap == 0 {
		o.RelGap = 1e-6
	}
	if o.IntTol == 0 {
		o.IntTol = 1e-6
	}
	return o
}

type node struct {
	bound float64 // LP bound inherited from the parent
	fixes []fix
	// basis warm-starts the node's LP from its parent's optimal basis —
	// the child differs only in one binary's bounds, so re-solving
	// typically takes a handful of pivots.
	basis *lp.Basis
}

type fix struct {
	col int
	val float64
}

type nodeHeap []*node

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].bound < h[j].bound }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Solve runs branch and bound.
func Solve(p *Problem, opts Options) (*Solution, error) {
	return SolveCtx(context.Background(), p, opts)
}

// SolveCtx runs branch and bound under a context: the context is checked
// before every node and threaded into each LP relaxation solve, so
// cancellation or an expired deadline aborts mid-search with the context
// error. A nil ctx is treated as context.Background().
func SolveCtx(ctx context.Context, p *Problem, opts Options) (*Solution, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.withDefaults()
	// mm accumulates this solve's counters (the node loop and the incumbent
	// closures increment it); one flush on exit covers every return path.
	// Inner LP relaxation solves report themselves through the same ctx.
	var mm obs.MIPMetrics
	if col := obs.From(ctx); col != nil {
		start := time.Now()
		defer func() {
			mm.Solves = 1
			mm.SolveNanos = time.Since(start).Nanoseconds()
			col.AddMIP(mm)
		}()
	}
	lpp := p.LP
	nb := len(p.Binary)

	// Remember the original bounds of the binary columns so the problem can
	// be restored after the solve.
	origLB := make([]float64, nb)
	origUB := make([]float64, nb)
	for k, j := range p.Binary {
		origLB[k], origUB[k] = colBounds(lpp, j)
	}
	defer func() {
		for k, j := range p.Binary {
			lpp.SetColBounds(j, origLB[k], origUB[k])
		}
	}()

	applyFixes := func(fixes []fix) {
		for k, j := range p.Binary {
			lpp.SetColBounds(j, origLB[k], origUB[k])
		}
		for _, f := range fixes {
			lpp.SetColBounds(f.col, f.val, f.val)
		}
	}

	sol := &Solution{Status: Infeasible, Objective: math.Inf(1), Bound: math.Inf(-1)}
	var best []float64

	tryIncumbent := func(binVals []float64, basis *lp.Basis) {
		fixes := make([]fix, nb)
		for k, j := range p.Binary {
			v := 0.0
			if binVals[k] > 0.5 {
				v = 1
			}
			fixes[k] = fix{j, v}
		}
		applyFixes(fixes)
		lo := opts.LP
		lo.StartBasis = basis
		ls, err := lpp.SolveCtx(ctx, lo)
		if err != nil || ls.Status != lp.Optimal {
			return
		}
		if ls.Objective < sol.Objective {
			sol.Objective = ls.Objective
			best = append([]float64(nil), ls.X...)
			mm.IncumbentUpdates++
		}
	}

	if opts.WarmBinary != nil {
		if len(opts.WarmBinary) != nb {
			return nil, fmt.Errorf("mip: warm start has %d values, want %d", len(opts.WarmBinary), nb)
		}
		tryIncumbent(opts.WarmBinary, nil)
	}

	h := &nodeHeap{{bound: math.Inf(-1)}}
	heap.Init(h)

	for h.Len() > 0 && sol.Nodes < opts.MaxNodes {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("mip: solve canceled: %w", err)
		}
		nd := heap.Pop(h).(*node)
		if nd.bound >= sol.Objective-opts.RelGap*math.Abs(sol.Objective)-1e-12 {
			// The global bound is the smallest remaining node bound.
			sol.Bound = math.Max(sol.Bound, nd.bound)
			mm.PrunedNodes++
			break
		}
		sol.Nodes++
		mm.Nodes++
		applyFixes(nd.fixes)
		lo := opts.LP
		lo.StartBasis = nd.basis
		ls, err := lpp.SolveCtx(ctx, lo)
		if err != nil {
			return nil, err
		}
		switch ls.Status {
		case lp.Infeasible:
			continue
		case lp.Unbounded:
			if len(nd.fixes) == 0 {
				sol.Status = Unbounded
				return sol, nil
			}
			continue
		case lp.IterLimit:
			// Treat as an unreliable bound: keep the node's inherited bound.
		}
		nodeBound := ls.Objective
		if ls.Status != lp.Optimal {
			nodeBound = nd.bound
		}
		if nodeBound >= sol.Objective-opts.RelGap*math.Abs(sol.Objective)-1e-12 {
			mm.PrunedNodes++
			continue
		}

		// Find the most fractional binary.
		brCol, brFrac := -1, 0.0
		for _, j := range p.Binary {
			f := ls.X[j] - math.Floor(ls.X[j])
			fr := math.Min(f, 1-f)
			if fr > opts.IntTol && fr > brFrac {
				brFrac, brCol = fr, j
			}
		}
		if brCol < 0 {
			// Integer feasible.
			if ls.Objective < sol.Objective {
				sol.Objective = ls.Objective
				best = append([]float64(nil), ls.X...)
				mm.IncumbentUpdates++
			}
			continue
		}
		if opts.Heuristic != nil {
			frac := make([]float64, nb)
			for k, j := range p.Binary {
				frac[k] = ls.X[j]
			}
			mm.HeuristicCalls++
			if sug := opts.Heuristic(frac); sug != nil {
				tryIncumbent(sug, ls.Basis())
			}
		}
		// Branch: prefer the side the relaxation leans toward first (it is
		// popped earlier under equal bounds because heap order is stable
		// enough for our purposes; both children inherit the node bound).
		up := &node{bound: nodeBound, basis: ls.Basis(), fixes: append(append([]fix(nil), nd.fixes...), fix{brCol, 1})}
		dn := &node{bound: nodeBound, basis: ls.Basis(), fixes: append(append([]fix(nil), nd.fixes...), fix{brCol, 0})}
		heap.Push(h, up)
		heap.Push(h, dn)
	}

	if best == nil {
		sol.Status = Infeasible
		return sol, nil
	}
	sol.X = best
	if h.Len() == 0 {
		sol.Bound = sol.Objective
		sol.Status = Optimal
	} else {
		// Remaining nodes define the proven bound.
		low := sol.Objective
		for _, nd := range *h {
			if nd.bound < low {
				low = nd.bound
			}
		}
		sol.Bound = low
		if low >= sol.Objective-opts.RelGap*math.Abs(sol.Objective)-1e-12 {
			sol.Status = Optimal
		} else {
			sol.Status = Feasible
		}
	}
	return sol, nil
}

// colBounds reads back the bounds of column j (helper over the lp API).
func colBounds(p *lp.Problem, j int) (float64, float64) {
	return p.ColLB(j), p.ColUB(j)
}

// RoundGreedyCover is a heuristic builder for covering problems of the form
// Σ_q p_q·z_q ≥ β per group: given per-column weights and group membership,
// it rounds a fractional z by greedily selecting, per group, the columns
// with the largest fractional value (ties: larger weight) until the group's
// coverage target is met.
func RoundGreedyCover(groups [][]int, weights []float64, targets []float64) func([]float64) []float64 {
	return func(frac []float64) []float64 {
		out := make([]float64, len(frac))
		for g, cols := range groups {
			order := append([]int(nil), cols...)
			sort.Slice(order, func(a, b int) bool {
				fa, fb := frac[order[a]], frac[order[b]]
				if fa != fb {
					return fa > fb
				}
				return weights[order[a]] > weights[order[b]]
			})
			covered := 0.0
			for _, k := range order {
				if covered >= targets[g] {
					break
				}
				out[k] = 1
				covered += weights[k]
			}
		}
		return out
	}
}
