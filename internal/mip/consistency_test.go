package mip

import (
	"math"
	"math/rand"
	"testing"

	"flexile/internal/lp"
)

const consTol = 1e-6

// randomBinaryMIP builds a feasible-by-construction binary MIP: nBin binary
// columns, nCont continuous columns in [0,2], mixed-sign costs, and m
// knapsack-style ≤ rows with nonnegative coefficients and positive rhs (so
// the all-zeros point is always integer feasible and the problem is
// bounded). Returns the problem plus the row entries/rhs for independent
// feasibility checking.
func randomBinaryMIP(rng *rand.Rand, nBin, nCont, m int) (*Problem, [][]lp.Entry, []float64) {
	p := lp.NewProblem()
	var bins []int
	for j := 0; j < nBin; j++ {
		bins = append(bins, p.AddCol("b", 0, 1, -3+6*rng.Float64()))
	}
	for j := 0; j < nCont; j++ {
		p.AddCol("x", 0, 2, -3+6*rng.Float64())
	}
	n := p.NumCols()
	rows := make([][]lp.Entry, m)
	rhs := make([]float64, m)
	for i := 0; i < m; i++ {
		var ents []lp.Entry
		total := 0.0
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.6 {
				coef := 0.1 + 1.9*rng.Float64()
				ents = append(ents, lp.Entry{Col: j, Coef: coef})
				ub := 1.0
				if j >= nBin {
					ub = 2.0
				}
				total += coef * ub
			}
		}
		if len(ents) == 0 {
			ents = append(ents, lp.Entry{Col: rng.Intn(n), Coef: 1})
			total = 2
		}
		rhs[i] = total * (0.3 + 0.5*rng.Float64())
		p.AddLE("r", rhs[i], ents...)
		rows[i] = ents
	}
	return &Problem{LP: p, Binary: bins}, rows, rhs
}

func checkMIPSolution(t *testing.T, trial int, mp *Problem, rows [][]lp.Entry, rhs []float64, sol *Solution) {
	t.Helper()
	if sol.Status != Optimal && sol.Status != Feasible {
		t.Fatalf("trial %d: feasible MIP finished %v", trial, sol.Status)
	}
	for _, j := range mp.Binary {
		if v := sol.X[j]; math.Abs(v-math.Round(v)) > consTol {
			t.Fatalf("trial %d: binary col %d = %v is fractional", trial, j, v)
		}
	}
	for j := 0; j < mp.LP.NumCols(); j++ {
		if sol.X[j] < mp.LP.ColLB(j)-consTol || sol.X[j] > mp.LP.ColUB(j)+consTol {
			t.Fatalf("trial %d: col %d = %v outside [%v,%v]", trial, j, sol.X[j], mp.LP.ColLB(j), mp.LP.ColUB(j))
		}
	}
	for i, ents := range rows {
		act := 0.0
		for _, e := range ents {
			act += e.Coef * sol.X[e.Col]
		}
		if act > rhs[i]+consTol {
			t.Fatalf("trial %d: row %d activity %v exceeds rhs %v", trial, i, act, rhs[i])
		}
	}
	if sol.Bound > sol.Objective+consTol {
		t.Fatalf("trial %d: proven bound %v above incumbent %v", trial, sol.Bound, sol.Objective)
	}
}

// TestIncumbentRespectsRelaxationBound: on random feasible binary MIPs the
// integer incumbent can never beat the LP relaxation, and the solver's
// proven bound must be at least as strong as the root relaxation.
func TestIncumbentRespectsRelaxationBound(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		nBin := 3 + rng.Intn(12)
		nCont := rng.Intn(4)
		m := 2 + rng.Intn(5)
		mp, rows, rhs := randomBinaryMIP(rng, nBin, nCont, m)

		relax, err := mp.LP.Solve()
		if err != nil {
			t.Fatalf("trial %d: relaxation: %v", trial, err)
		}
		if relax.Status != lp.Optimal {
			t.Fatalf("trial %d: relaxation finished %v", trial, relax.Status)
		}

		sol, err := Solve(mp, Options{})
		if err != nil {
			t.Fatalf("trial %d: mip: %v", trial, err)
		}
		checkMIPSolution(t, trial, mp, rows, rhs, sol)
		if sol.Objective < relax.Objective-consTol {
			t.Fatalf("trial %d: incumbent %v beats LP relaxation %v", trial, sol.Objective, relax.Objective)
		}
		if sol.Bound < relax.Objective-consTol {
			t.Fatalf("trial %d: proven bound %v weaker than root relaxation %v", trial, sol.Bound, relax.Objective)
		}
	}
}

// TestBranchAndBoundMatchesBruteForce: with ≤8 binaries, enumerating every
// 0/1 assignment (fix the binaries, LP-solve the rest) gives the exact
// optimum; the branch-and-bound solver must find it when it claims Optimal.
func TestBranchAndBoundMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 30; trial++ {
		nBin := 2 + rng.Intn(7)
		nCont := rng.Intn(3)
		m := 2 + rng.Intn(4)
		mp, rows, rhs := randomBinaryMIP(rng, nBin, nCont, m)

		best := math.Inf(1)
		for mask := 0; mask < 1<<nBin; mask++ {
			for k, j := range mp.Binary {
				v := float64((mask >> k) & 1)
				mp.LP.SetColBounds(j, v, v)
			}
			s, err := mp.LP.Solve()
			if err != nil {
				t.Fatalf("trial %d mask %d: %v", trial, mask, err)
			}
			if s.Status == lp.Optimal && s.Objective < best {
				best = s.Objective
			}
		}
		for _, j := range mp.Binary {
			mp.LP.SetColBounds(j, 0, 1)
		}
		if math.IsInf(best, 1) {
			t.Fatalf("trial %d: brute force found no feasible assignment (all-zeros should be feasible)", trial)
		}

		sol, err := Solve(mp, Options{})
		if err != nil {
			t.Fatalf("trial %d: mip: %v", trial, err)
		}
		checkMIPSolution(t, trial, mp, rows, rhs, sol)
		if sol.Status == Optimal && math.Abs(sol.Objective-best) > consTol*(1+math.Abs(best)) {
			t.Fatalf("trial %d: branch-and-bound optimum %v, brute force %v", trial, sol.Objective, best)
		}
		if sol.Objective < best-consTol {
			t.Fatalf("trial %d: incumbent %v beats the true optimum %v", trial, sol.Objective, best)
		}
	}
}

// TestWarmStartNeverHurts: seeding the solver with a feasible warm incumbent
// must not change the optimum it reports.
func TestWarmStartNeverHurts(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 25; trial++ {
		mp, rows, rhs := randomBinaryMIP(rng, 3+rng.Intn(6), rng.Intn(3), 2+rng.Intn(3))
		cold, err := Solve(mp, Options{})
		if err != nil {
			t.Fatalf("trial %d: cold: %v", trial, err)
		}
		warmBin := make([]float64, len(mp.Binary)) // all-zeros is always feasible
		warm, err := Solve(mp, Options{WarmBinary: warmBin})
		if err != nil {
			t.Fatalf("trial %d: warm: %v", trial, err)
		}
		checkMIPSolution(t, trial, mp, rows, rhs, warm)
		if cold.Status == Optimal && warm.Status == Optimal &&
			math.Abs(cold.Objective-warm.Objective) > consTol*(1+math.Abs(cold.Objective)) {
			t.Fatalf("trial %d: cold optimum %v, warm optimum %v", trial, cold.Objective, warm.Objective)
		}
	}
}
