package mip

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"flexile/internal/lp"
	"flexile/internal/obs"
)

// TestMIPMetricsCounters: a collector on the context receives one Solves
// per SolveCtx with node, incumbent and heuristic accounting, and the
// inner LP relaxation solves report through the same context.
func TestMIPMetricsCounters(t *testing.T) {
	col := obs.New()
	ctx := obs.With(context.Background(), col)
	rng := rand.New(rand.NewSource(71))
	mp, _, _ := randomBinaryMIP(rng, 8, 2, 4)

	heurCalled := false
	sol, err := SolveCtx(ctx, mp, Options{
		Heuristic: func(frac []float64) []float64 {
			heurCalled = true
			out := make([]float64, len(frac))
			for i, v := range frac {
				out[i] = math.Round(v)
			}
			return out
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal && sol.Status != Feasible {
		t.Fatalf("status %v", sol.Status)
	}
	m := col.Snapshot()
	if m.MIP.Solves != 1 || m.MIP.SolveNanos <= 0 {
		t.Fatalf("MIP solve accounting: %+v", m.MIP)
	}
	if m.MIP.Nodes != int64(sol.Nodes) {
		t.Fatalf("metrics nodes %d, solution says %d", m.MIP.Nodes, sol.Nodes)
	}
	if m.MIP.IncumbentUpdates == 0 {
		t.Fatalf("optimal solve recorded no incumbent updates: %+v", m.MIP)
	}
	if heurCalled && m.MIP.HeuristicCalls == 0 {
		t.Fatalf("heuristic ran but was not counted: %+v", m.MIP)
	}
	if m.LP.Solves == 0 {
		t.Fatalf("relaxation solves did not report through the context: %+v", m.LP)
	}
}

// TestMIPNilContextAndWarmStartValidation: a nil ctx is
// context.Background(), and a wrong-length warm start is rejected.
func TestMIPNilContextAndWarmStartValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	mp, _, _ := randomBinaryMIP(rng, 4, 0, 2)
	if _, err := SolveCtx(nil, mp, Options{}); err != nil { //nolint:staticcheck // nil ctx is part of the contract
		t.Fatalf("nil ctx solve: %v", err)
	}
	if _, err := Solve(mp, Options{WarmBinary: []float64{1}}); err == nil {
		t.Fatal("wrong-length warm start accepted")
	}
}

// TestMIPCanceledContext: cancellation aborts the search with the context
// error, and the collector still sees the aborted solve.
func TestMIPCanceledContext(t *testing.T) {
	col := obs.New()
	ctx, cancel := context.WithCancel(obs.With(context.Background(), col))
	cancel()
	rng := rand.New(rand.NewSource(79))
	mp, _, _ := randomBinaryMIP(rng, 4, 0, 2)
	if _, err := SolveCtx(ctx, mp, Options{}); err == nil {
		t.Fatal("canceled solve succeeded")
	}
	if m := col.Snapshot().MIP; m.Solves != 1 {
		t.Fatalf("aborted solve not flushed: %+v", m)
	}
}

// TestMIPUnboundedRoot: an unbounded relaxation at the root reports
// Unbounded.
func TestMIPUnboundedRoot(t *testing.T) {
	p := lp.NewProblem()
	b := p.AddCol("b", 0, 1, 1)
	p.AddCol("x", 0, math.Inf(1), -1)
	sol, err := Solve(&Problem{LP: p, Binary: []int{b}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status %v, want unbounded", sol.Status)
	}
}

// TestMIPIntegerInfeasible: an LP-feasible problem with no integer point
// (b1 + b2 = 1.5) explores both branches and reports Infeasible.
func TestMIPIntegerInfeasible(t *testing.T) {
	p := lp.NewProblem()
	b1 := p.AddCol("b1", 0, 1, 1)
	b2 := p.AddCol("b2", 0, 1, 1)
	p.AddEQ("half", 1.5, lp.Entry{Col: b1, Coef: 1}, lp.Entry{Col: b2, Coef: 1})
	sol, err := Solve(&Problem{LP: p, Binary: []int{b1, b2}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}
	if sol.Nodes == 0 {
		t.Fatal("no nodes explored before proving infeasibility")
	}
}

// TestMIPStatusStrings pins the Status stringer.
func TestMIPStatusStrings(t *testing.T) {
	for want, s := range map[string]Status{
		"optimal": Optimal, "feasible": Feasible,
		"infeasible": Infeasible, "unbounded": Unbounded,
	} {
		if s.String() != want {
			t.Fatalf("Status(%d).String() = %q, want %q", int(s), s.String(), want)
		}
	}
	if got := Status(99).String(); got != "status(99)" {
		t.Fatalf("unknown status renders %q", got)
	}
}
