package mip

import (
	"math"
	"math/rand"
	"testing"

	"flexile/internal/lp"
)

func approx(a, b float64) bool { return math.Abs(a-b) <= 1e-6*(1+math.Abs(a)+math.Abs(b)) }

// knapsack: max Σ v_i x_i s.t. Σ w_i x_i ≤ C, x binary.
func knapsack(t *testing.T, values, weights []float64, cap float64) (*Solution, []int) {
	t.Helper()
	p := lp.NewProblem()
	var bins []int
	var es []lp.Entry
	for i := range values {
		j := p.AddCol("x", 0, 1, -values[i])
		bins = append(bins, j)
		es = append(es, lp.Entry{Col: j, Coef: weights[i]})
	}
	p.AddLE("cap", cap, es...)
	s, err := Solve(&Problem{LP: p, Binary: bins}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s, bins
}

func TestKnapsack(t *testing.T) {
	// Classic: values {60,100,120}, weights {10,20,30}, cap 50 → 220.
	s, _ := knapsack(t, []float64{60, 100, 120}, []float64{10, 20, 30}, 50)
	if s.Status != Optimal || !approx(s.Objective, -220) {
		t.Fatalf("status=%v obj=%v want -220", s.Status, s.Objective)
	}
}

func TestKnapsackAllFit(t *testing.T) {
	s, _ := knapsack(t, []float64{1, 2, 3}, []float64{1, 1, 1}, 10)
	if s.Status != Optimal || !approx(s.Objective, -6) {
		t.Fatalf("obj=%v want -6", s.Objective)
	}
}

func TestSetCover(t *testing.T) {
	// Universe {1..4}; sets {1,2}, {2,3}, {3,4}, {1,4}, costs 1 each.
	// Optimal cover = 2 sets.
	sets := [][]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}}
	p := lp.NewProblem()
	var bins []int
	for range sets {
		bins = append(bins, p.AddCol("s", 0, 1, 1))
	}
	for e := 0; e < 4; e++ {
		var es []lp.Entry
		for si, set := range sets {
			for _, el := range set {
				if el == e {
					es = append(es, lp.Entry{Col: bins[si], Coef: 1})
				}
			}
		}
		p.AddGE("cover", 1, es...)
	}
	s, err := Solve(&Problem{LP: p, Binary: bins}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.Objective, 2) {
		t.Fatalf("status=%v obj=%v want 2", s.Status, s.Objective)
	}
}

func TestInfeasibleMIP(t *testing.T) {
	p := lp.NewProblem()
	x := p.AddCol("x", 0, 1, 1)
	y := p.AddCol("y", 0, 1, 1)
	p.AddGE("r", 3, lp.Entry{Col: x, Coef: 1}, lp.Entry{Col: y, Coef: 1})
	s, err := Solve(&Problem{LP: p, Binary: []int{x, y}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status=%v want infeasible", s.Status)
	}
}

// Fractional LP relaxation must be cut off by integrality: min x+y with
// x+y ≥ 1.5, binaries → optimal integer cost 2.
func TestIntegralityGap(t *testing.T) {
	p := lp.NewProblem()
	x := p.AddCol("x", 0, 1, 1)
	y := p.AddCol("y", 0, 1, 1)
	p.AddGE("r", 1.5, lp.Entry{Col: x, Coef: 1}, lp.Entry{Col: y, Coef: 1})
	s, err := Solve(&Problem{LP: p, Binary: []int{x, y}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.Objective, 2) {
		t.Fatalf("obj=%v want 2", s.Objective)
	}
}

// Mixed problem: continuous completion must be optimized for fixed binaries.
func TestMixedBinaryContinuous(t *testing.T) {
	// min 10·z + c  s.t. c ≥ 5 − 4·z, c ≥ 0, z binary.
	// z=0 → cost 5; z=1 → cost 10+1=11. Optimal z=0, obj 5.
	p := lp.NewProblem()
	z := p.AddCol("z", 0, 1, 10)
	c := p.AddCol("c", 0, lp.Inf, 1)
	p.AddGE("r", 5, lp.Entry{Col: c, Coef: 1}, lp.Entry{Col: z, Coef: 4})
	s, err := Solve(&Problem{LP: p, Binary: []int{z}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.Objective, 5) {
		t.Fatalf("obj=%v want 5", s.Objective)
	}
	if s.X[z] > 0.5 {
		t.Fatalf("z=%v want 0", s.X[z])
	}
}

func TestWarmStartAndNodeLimit(t *testing.T) {
	// With MaxNodes=1 the warm start is the only incumbent source.
	values := []float64{10, 13, 7, 8, 9, 4}
	weights := []float64{3, 4, 2, 3, 3, 1}
	p := lp.NewProblem()
	var bins []int
	var es []lp.Entry
	for i := range values {
		j := p.AddCol("x", 0, 1, -values[i])
		bins = append(bins, j)
		es = append(es, lp.Entry{Col: j, Coef: weights[i]})
	}
	p.AddLE("cap", 7, es...)
	warm := []float64{1, 1, 0, 0, 0, 0}
	s, err := Solve(&Problem{LP: p, Binary: bins}, Options{MaxNodes: 1, WarmBinary: warm})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status == Infeasible {
		t.Fatal("warm start should give an incumbent")
	}
	if s.Objective > -23+1e-9 {
		t.Fatalf("incumbent %v worse than warm start -23", s.Objective)
	}
}

func TestHeuristicIncumbent(t *testing.T) {
	called := false
	p := lp.NewProblem()
	x := p.AddCol("x", 0, 1, -3)
	y := p.AddCol("y", 0, 1, -2)
	p.AddLE("cap", 1.5, lp.Entry{Col: x, Coef: 1}, lp.Entry{Col: y, Coef: 1})
	h := func(frac []float64) []float64 {
		called = true
		return []float64{1, 0}
	}
	s, err := Solve(&Problem{LP: p, Binary: []int{x, y}}, Options{Heuristic: h})
	if err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("heuristic was not invoked")
	}
	if s.Status != Optimal || !approx(s.Objective, -3) {
		t.Fatalf("obj=%v want -3", s.Objective)
	}
}

// Random knapsacks cross-checked against exhaustive enumeration.
func TestRandomKnapsackExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(8)
		values := make([]float64, n)
		weights := make([]float64, n)
		for i := range values {
			values[i] = 1 + rng.Float64()*9
			weights[i] = 1 + rng.Float64()*9
		}
		cap := rng.Float64() * 5 * float64(n)
		// Exhaustive optimum.
		best := 0.0
		for mask := 0; mask < 1<<n; mask++ {
			v, w := 0.0, 0.0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					v += values[i]
					w += weights[i]
				}
			}
			if w <= cap+1e-12 && v > best {
				best = v
			}
		}
		s, _ := knapsack(t, values, weights, cap)
		if s.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, s.Status)
		}
		if !approx(-s.Objective, best) {
			t.Fatalf("trial %d: mip %v vs exhaustive %v", trial, -s.Objective, best)
		}
	}
}

func TestRoundGreedyCover(t *testing.T) {
	// Two groups over four columns; weights are probabilities.
	groups := [][]int{{0, 1}, {2, 3}}
	weights := []float64{0.6, 0.5, 0.9, 0.2}
	targets := []float64{0.9, 0.8}
	h := RoundGreedyCover(groups, weights, targets)
	out := h([]float64{0.9, 0.4, 0.2, 0.8})
	// Group 0: picks col0 (0.6) then col1 → covered 1.1 ≥ 0.9.
	if out[0] != 1 || out[1] != 1 {
		t.Fatalf("group 0 rounding: %v", out)
	}
	// Group 1: col3 has higher fractional (0.8) → picked first (0.2), then
	// col2 (0.9) → covered 1.1.
	if out[3] != 1 || out[2] != 1 {
		t.Fatalf("group 1 rounding: %v", out)
	}
}

func TestBoundsRestoredAfterSolve(t *testing.T) {
	p := lp.NewProblem()
	x := p.AddCol("x", 0, 1, -1)
	p.AddLE("r", 1, lp.Entry{Col: x, Coef: 1})
	if _, err := Solve(&Problem{LP: p, Binary: []int{x}}, Options{}); err != nil {
		t.Fatal(err)
	}
	if p.ColLB(x) != 0 || p.ColUB(x) != 1 {
		t.Fatalf("bounds not restored: [%v,%v]", p.ColLB(x), p.ColUB(x))
	}
}

// Property: the reported bound never exceeds the incumbent objective (for
// minimization) and equals it on proven-optimal solves.
func TestBoundSandwich(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(6)
		values := make([]float64, n)
		weights := make([]float64, n)
		for i := range values {
			values[i] = 1 + rng.Float64()*9
			weights[i] = 1 + rng.Float64()*9
		}
		p := lp.NewProblem()
		var bins []int
		var es []lp.Entry
		for i := range values {
			j := p.AddCol("x", 0, 1, -values[i])
			bins = append(bins, j)
			es = append(es, lp.Entry{Col: j, Coef: weights[i]})
		}
		p.AddLE("cap", rng.Float64()*4*float64(n), es...)
		s, err := Solve(&Problem{LP: p, Binary: bins}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if s.Status == Infeasible {
			continue
		}
		if s.Bound > s.Objective+1e-6 {
			t.Fatalf("trial %d: bound %v above objective %v", trial, s.Bound, s.Objective)
		}
		if s.Status == Optimal && s.Bound < s.Objective-1e-4*(1+-s.Objective) {
			t.Fatalf("trial %d: optimal but bound %v < obj %v", trial, s.Bound, s.Objective)
		}
	}
}
