package serve

import (
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"strings"
	"time"

	"flexile/internal/obs"
)

// GET /debug/requests (DESIGN.md §16): the live introspection page over
// the request-trace ring, in the spirit of golang.org/x/net/trace — the
// most recent, the slowest, and the most recent errored requests, each
// with its stage-span timeline. Three renderings:
//
//	/debug/requests                  HTML for humans
//	/debug/requests?format=json      the raw TraceSnapshots
//	/debug/requests?format=chrome    chrome://tracing / perfetto timeline
//
// The page is mounted on the -debug-listen admin listener by
// cmd/flexile-serve, next to /metrics and pprof, so it is never exposed on
// the serving port.

// DebugRequestsHandler returns the /debug/requests handler over the
// server's trace ring. With no ring configured the handler answers 404.
func (s *Server) DebugRequestsHandler() http.Handler {
	return debugRequestsHandler(s.cfg.Ring)
}

// DebugRequestsHandler returns the fleet /debug/requests handler; the ring
// is shared by every artifact server, so one page covers all of them.
func (r *Registry) DebugRequestsHandler() http.Handler {
	return debugRequestsHandler(r.cfg.Ring)
}

func debugRequestsHandler(ring *obs.TraceRing) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ring == nil {
			writeError(w, http.StatusNotFound, "request tracing is not enabled (no trace ring configured)")
			return
		}
		recent, slowest, errored := ring.Recent(), ring.Slowest(), ring.Errored()
		switch r.URL.Query().Get("format") {
		case "", "html":
			writeDebugHTML(w, ring.Total(), recent, slowest, errored)
		case "json":
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", " ")
			enc.Encode(map[string]any{
				"total":   ring.Total(),
				"recent":  recent,
				"slowest": slowest,
				"errored": errored,
			})
		case "chrome":
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Disposition", `attachment; filename="flexile-requests-trace.json"`)
			writeChromeTimeline(w, recent)
		default:
			writeError(w, http.StatusBadRequest, "unknown format (want html, json, or chrome)")
		}
	})
}

// writeChromeTimeline exports the recent traces as a chrome://tracing
// timeline: one virtual track per trace, timestamps relative to the oldest
// exported request.
func writeChromeTimeline(w http.ResponseWriter, traces []obs.TraceSnapshot) {
	var base time.Time
	for _, t := range traces {
		if base.IsZero() || t.Start.Before(base) {
			base = t.Start
		}
	}
	evs := make([]obs.TraceEvent, 0, 8*len(traces))
	for i, t := range traces {
		evs = append(evs, t.TraceEvents(base, int64(i+1))...)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(map[string]any{"traceEvents": evs})
}

// debugTmpl renders the HTML page. html/template contextually escapes
// every interpolated value, so hostile tenant names, request ids, or
// traceparent-derived ids cannot inject markup.
var debugTmpl = template.Must(template.New("debug").Funcs(template.FuncMap{
	"dur":   fmtDur,
	"spans": fmtSpans,
	"when":  func(t time.Time) string { return t.Format("15:04:05.000") },
}).Parse(`<!DOCTYPE html>
<html><head><title>flexile /debug/requests</title><style>
body { font-family: monospace; margin: 1em 2em; }
h1 { font-size: 1.2em; } h2 { font-size: 1em; margin-top: 1.5em; }
table { border-collapse: collapse; width: 100%; }
th, td { text-align: left; padding: 2px 10px 2px 0; border-bottom: 1px solid #ddd; vertical-align: top; }
th { color: #555; } .num { text-align: right; }
.spans { color: #666; } .err { color: #a00; } .shed { color: #a60; }
</style></head><body>
<h1>flexile request traces</h1>
<p>{{.Total}} traced since start · <a href="?format=json">json</a> · <a href="?format=chrome">chrome://tracing</a></p>
{{define "table"}}<table>
<tr><th>start</th><th>method path</th><th class="num">status</th><th class="num">dur</th><th>cache</th><th>tenant</th><th>ids</th><th>stage spans</th></tr>
{{range .}}<tr>
<td>{{when .Start}}</td>
<td>{{.Method}} {{.Path}}</td>
<td class="num{{if ge .Status 400}} err{{end}}">{{.Status}}{{if .Shed}} <span class="shed">shed={{.Shed}}</span>{{end}}</td>
<td class="num">{{dur .Dur}}</td>
<td>{{.Cache}}</td>
<td>{{.Tenant}}</td>
<td>req={{.RequestID}}<br>trace={{.TraceID}}</td>
<td class="spans">{{spans .Spans}}</td>
</tr>{{end}}
</table>{{end}}
<h2>recent ({{len .Recent}})</h2>{{template "table" .Recent}}
<h2>slowest ({{len .Slowest}})</h2>{{template "table" .Slowest}}
<h2>errored ({{len .Errored}})</h2>{{template "table" .Errored}}
</body></html>
`))

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	}
	return fmt.Sprintf("%.3fs", d.Seconds())
}

// fmtSpans renders a span list compactly, in recorded order; nested spans
// are bracketed to mark them as overlapping the tiling stages rather than
// part of the sum.
func fmtSpans(spans []obs.SpanRec) string {
	parts := make([]string, 0, len(spans))
	for _, sp := range spans {
		s := sp.Name + " " + fmtDur(sp.Dur)
		if sp.Nested {
			s = "[" + s + "]"
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, " · ")
}

func writeDebugHTML(w http.ResponseWriter, total uint64, recent, slowest, errored []obs.TraceSnapshot) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	debugTmpl.Execute(w, struct {
		Total                    uint64
		Recent, Slowest, Errored []obs.TraceSnapshot
	}{total, recent, slowest, errored})
}
