package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"

	"flexile/internal/faultinject"
	"flexile/internal/obs"
	flexscheme "flexile/internal/scheme/flexile"
)

// TestServeSoakFaultReload hammers the server from several directions at
// once: querier goroutines sweep every scenario over a loopback listener
// while a second goroutine cycles SIGHUP reloads (alternating the artifact
// file between corrupt and valid content) and a seeded fault injector
// fails or panics inside the load path. The server must keep answering
// every query with the exact artifact allocation throughout — a failed or
// faulted reload leaves the previous artifact serving — and the whole run
// must be clean under -race.
func TestServeSoakFaultReload(t *testing.T) {
	path, inst, off, opt := writeArtifact(t)
	s, err := solvedTriangle()
	if err != nil {
		t.Fatal(err)
	}

	// Faults fire only after the initial load so New is deterministic;
	// the kinds cover both the error return and the panic-recovery path.
	var faultsOn atomic.Bool
	inj := faultinject.New(7, 0.3, faultinject.SingularBasis, faultinject.Panic)
	collector := obs.New()
	srv, err := New(path, Config{
		CacheSize: 4, // smaller than the scenario count: eviction churn under load
		Obs:       collector,
		LoadHook: func(attempt int) error {
			if !faultsOn.Load() {
				return nil
			}
			return inj.Hook(0, attempt)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	faultsOn.Store(true)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var reloadErrs atomic.Int64
	stopHUP := srv.WatchHUP(func(error) { reloadErrs.Add(1) })
	defer stopHUP()

	// Expected body per scenario, precomputed from the library: every
	// served answer must match bit-for-bit no matter how reloads interleave.
	expected := make(map[int][]byte, len(inst.Scenarios))
	urls := make([]string, len(inst.Scenarios))
	for q, scen := range inst.Scenarios {
		res, err := flexscheme.Online(inst, off, q, opt)
		if err != nil {
			t.Fatal(err)
		}
		body, err := json.Marshal(AllocResponse{Scenario: q, Prob: scen.Prob, Frac: res.Frac, X: res.X})
		if err != nil {
			t.Fatal(err)
		}
		expected[q] = body
		var parts []string
		for _, e := range scen.Failed {
			parts = append(parts, strconv.Itoa(e))
		}
		urls[q] = ts.URL + "/v1/alloc?failed=" + strings.Join(parts, ",")
	}

	const queriers = 4
	const sweeps = 40
	var wg sync.WaitGroup
	for w := 0; w < queriers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < sweeps; i++ {
				q := (i*queriers + w) % len(urls)
				resp, err := http.Get(urls[q])
				if err != nil {
					t.Errorf("querier %d: %v", w, err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Errorf("querier %d: read: %v", w, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("querier %d scenario %d: status %d: %s", w, q, resp.StatusCode, body)
					return
				}
				if !bytes.Equal(body, expected[q]) {
					t.Errorf("querier %d scenario %d: body diverged during reload churn", w, q)
					return
				}
			}
		}(w)
	}

	// Reload cycler: flip the artifact file between corrupt and valid and
	// SIGHUP after each write. Signals may coalesce — that's fine, the
	// queriers' bit-identity assertion is what matters.
	wg.Add(1)
	go func() {
		defer wg.Done()
		corrupt := []byte("definitely not an artifact")
		for i := 0; i < 20; i++ {
			content := corrupt
			if i%2 == 1 {
				content = s.blob
			}
			if err := os.WriteFile(path, content, 0o644); err != nil {
				t.Errorf("cycler: %v", err)
				return
			}
			if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
				t.Errorf("cycler: SIGHUP: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	stopHUP()

	// Deterministic tail: a corrupt-file reload must fail, then a clean
	// reload with faults off must restore a fully working server.
	faultsOn.Store(false)
	if err := os.WriteFile(path, []byte("corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := srv.Reload(); err == nil {
		t.Fatal("corrupt reload succeeded")
	}
	if err := os.WriteFile(path, s.blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := srv.Reload(); err != nil {
		t.Fatalf("final reload: %v", err)
	}
	final := get(t, urls[0], "miss")
	if !bytes.Equal(final, expected[0]) {
		t.Fatal("post-soak allocation differs")
	}

	m := collector.Snapshot().Serve
	if m.Requests != queriers*sweeps+1 || m.BadRequests != 0 {
		t.Fatalf("request counters = %+v, want %d requests and no bad ones", m, queriers*sweeps+1)
	}
	if m.Reloads < 3 || m.ReloadErrors < 1 {
		t.Fatalf("reload counters = %+v", m)
	}
	if m.CacheHits+m.CacheMisses != m.Requests {
		t.Fatalf("cache counters don't add up: %+v", m)
	}
}
