package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"flexile/internal/faultinject"
	"flexile/internal/obs"
	flexscheme "flexile/internal/scheme/flexile"
)

// TestServeSoakFaultReload hammers the server from several directions at
// once: querier goroutines sweep every scenario over a loopback listener
// while a second goroutine cycles SIGHUP reloads (alternating the artifact
// file between corrupt and valid content) and a seeded fault injector
// fails or panics inside the load path. The server must keep answering
// every query with the exact artifact allocation throughout — a failed or
// faulted reload leaves the previous artifact serving — and the whole run
// must be clean under -race.
func TestServeSoakFaultReload(t *testing.T) {
	path, inst, off, opt := writeArtifact(t)
	s, err := solvedTriangle()
	if err != nil {
		t.Fatal(err)
	}

	// Faults fire only after the initial load so New is deterministic;
	// the kinds cover both the error return and the panic-recovery path.
	var faultsOn atomic.Bool
	inj := faultinject.New(7, 0.3, faultinject.SingularBasis, faultinject.Panic)
	collector := obs.New()
	srv, err := New(path, Config{
		CacheSize: 4, // smaller than the scenario count: eviction churn under load
		Obs:       collector,
		LoadHook: func(attempt int) error {
			if !faultsOn.Load() {
				return nil
			}
			return inj.Hook(0, attempt)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	faultsOn.Store(true)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var reloadErrs atomic.Int64
	stopHUP := srv.WatchHUP(func(error) { reloadErrs.Add(1) })
	defer stopHUP()

	// Expected body per scenario, precomputed from the library: every
	// served answer must match bit-for-bit no matter how reloads interleave.
	expected := make(map[int][]byte, len(inst.Scenarios))
	urls := make([]string, len(inst.Scenarios))
	for q, scen := range inst.Scenarios {
		res, err := flexscheme.Online(inst, off, q, opt)
		if err != nil {
			t.Fatal(err)
		}
		body, err := json.Marshal(AllocResponse{Scenario: q, Prob: scen.Prob, Frac: res.Frac, X: res.X})
		if err != nil {
			t.Fatal(err)
		}
		expected[q] = body
		var parts []string
		for _, e := range scen.Failed {
			parts = append(parts, strconv.Itoa(e))
		}
		urls[q] = ts.URL + "/v1/alloc?failed=" + strings.Join(parts, ",")
	}

	const queriers = 4
	const sweeps = 40
	var wg sync.WaitGroup
	for w := 0; w < queriers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < sweeps; i++ {
				q := (i*queriers + w) % len(urls)
				resp, err := http.Get(urls[q])
				if err != nil {
					t.Errorf("querier %d: %v", w, err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Errorf("querier %d: read: %v", w, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("querier %d scenario %d: status %d: %s", w, q, resp.StatusCode, body)
					return
				}
				if !bytes.Equal(body, expected[q]) {
					t.Errorf("querier %d scenario %d: body diverged during reload churn", w, q)
					return
				}
			}
		}(w)
	}

	// Reload cycler: flip the artifact file between corrupt and valid and
	// SIGHUP after each write. Signals may coalesce — that's fine, the
	// queriers' bit-identity assertion is what matters.
	wg.Add(1)
	go func() {
		defer wg.Done()
		corrupt := []byte("definitely not an artifact")
		for i := 0; i < 20; i++ {
			content := corrupt
			if i%2 == 1 {
				content = s.blob
			}
			if err := os.WriteFile(path, content, 0o644); err != nil {
				t.Errorf("cycler: %v", err)
				return
			}
			if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
				t.Errorf("cycler: SIGHUP: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	stopHUP()

	// Deterministic tail: a corrupt-file reload must fail, then a clean
	// reload with faults off must restore a fully working server.
	faultsOn.Store(false)
	if err := os.WriteFile(path, []byte("corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := srv.Reload(); err == nil {
		t.Fatal("corrupt reload succeeded")
	}
	if err := os.WriteFile(path, s.blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := srv.Reload(); err != nil {
		t.Fatalf("final reload: %v", err)
	}
	final := get(t, urls[0], "miss")
	if !bytes.Equal(final, expected[0]) {
		t.Fatal("post-soak allocation differs")
	}

	m := collector.Snapshot().Serve
	if m.Requests != queriers*sweeps+1 || m.BadRequests != 0 {
		t.Fatalf("request counters = %+v, want %d requests and no bad ones", m, queriers*sweeps+1)
	}
	if m.Reloads < 3 || m.ReloadErrors < 1 {
		t.Fatalf("reload counters = %+v", m)
	}
	if m.CacheHits+m.CacheMisses != m.Requests {
		t.Fatalf("cache counters don't add up: %+v", m)
	}
}

// TestServeSoakSustainedOverload drives far more concurrent demand than
// the single-slot recompute gate can serve, with caching disabled so every
// request is a full solve, and checks the overload contract end to end:
// every refusal is an explicit shed (503 + Retry-After + X-Flexile-Shed),
// every success is bit-identical to the library allocation, the latency of
// admitted requests stays bounded by their deadline instead of growing
// with the queue, and the goroutine count returns to its baseline once the
// storm passes (nothing leaked by detached recomputes or expired waiters).
func TestServeSoakSustainedOverload(t *testing.T) {
	path, inst, off, opt := writeArtifact(t)
	baseline := runtime.NumGoroutine()

	const holdFor = 20 * time.Millisecond
	const deadline = "150ms"
	collector := obs.New()
	srv, err := New(path, Config{
		CacheSize:   0,  // every request recomputes: sustained pressure
		Workers:     -1, // one gate slot: trivially saturated
		Obs:         collector,
		ComputeHook: func(int) error { time.Sleep(holdFor); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)

	expected := make(map[int][]byte, len(inst.Scenarios))
	urls := make([]string, len(inst.Scenarios))
	for q, scen := range inst.Scenarios {
		res, err := flexscheme.Online(inst, off, q, opt)
		if err != nil {
			t.Fatal(err)
		}
		body, err := json.Marshal(AllocResponse{Scenario: q, Prob: scen.Prob, Frac: res.Frac, X: res.X})
		if err != nil {
			t.Fatal(err)
		}
		expected[q] = body
		var parts []string
		for _, e := range scen.Failed {
			parts = append(parts, strconv.Itoa(e))
		}
		urls[q] = ts.URL + "/v1/alloc?failed=" + strings.Join(parts, ",")
	}

	const clients = 12
	const perClient = 15
	var (
		mu        sync.Mutex
		okLats    []time.Duration
		successes int
		sheds     int
	)
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				q := (i*clients + w) % len(urls)
				req, err := http.NewRequest(http.MethodGet, urls[q], nil)
				if err != nil {
					t.Errorf("client %d: %v", w, err)
					return
				}
				req.Header.Set("X-Request-Deadline", deadline)
				begin := time.Now()
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Errorf("client %d: %v", w, err)
					return
				}
				lat := time.Since(begin)
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Errorf("client %d: read: %v", w, err)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK:
					if !bytes.Equal(body, expected[q]) {
						t.Errorf("client %d scenario %d: body diverged under overload", w, q)
						return
					}
					mu.Lock()
					successes++
					okLats = append(okLats, lat)
					mu.Unlock()
				case http.StatusServiceUnavailable:
					if resp.Header.Get("X-Flexile-Shed") != "deadline" {
						t.Errorf("client %d: shed reason %q", w, resp.Header.Get("X-Flexile-Shed"))
						return
					}
					if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
						t.Errorf("client %d: shed without usable Retry-After (%q)", w, resp.Header.Get("Retry-After"))
						return
					}
					mu.Lock()
					sheds++
					mu.Unlock()
				default:
					// The overload contract: refusals are explicit sheds,
					// never generic 5xx.
					t.Errorf("client %d scenario %d: status %d: %s", w, q, resp.StatusCode, body)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if successes == 0 || sheds == 0 {
		t.Fatalf("storm produced %d successes / %d sheds; want both > 0", successes, sheds)
	}
	// Admitted requests are bounded by deadline + one solve + slack; the
	// generous cap still catches unbounded queueing, which would run to
	// seconds here.
	sort.Slice(okLats, func(i, j int) bool { return okLats[i] < okLats[j] })
	if p99 := okLats[len(okLats)*99/100]; p99 > time.Second {
		t.Fatalf("admitted-request p99 = %v; overload is leaking into admitted latency", p99)
	}

	m := collector.Snapshot().Serve
	if m.Requests != clients*perClient {
		t.Fatalf("Requests = %d, want %d", m.Requests, clients*perClient)
	}
	if m.DeadlineShed+m.DeadlineExpired != int64(sheds) {
		t.Fatalf("shed counters %d+%d don't match observed %d sheds", m.DeadlineShed, m.DeadlineExpired, sheds)
	}
	if m.RecomputeErrors != 0 || m.Degraded != 0 {
		t.Fatalf("clean overload must not produce errors or degraded answers: %+v", m)
	}

	// Quiesce: detached recomputes finish, connections close, and the
	// goroutine count returns to its pre-storm baseline.
	st := srv.st.load()
	waitFor(t, func() bool { return st.flight.InFlight() == 0 && srv.gate.InUse() == 0 })
	ts.Close()
	srv.Close()
	http.DefaultClient.CloseIdleConnections()
	waitFor(t, func() bool { return runtime.NumGoroutine() <= baseline+2 })
}
