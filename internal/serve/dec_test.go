package serve

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"flexile/internal/graph"
)

// The dec reader's contract is "latch the first error, return zero values
// after": every primitive must hit both its truncation branch and its
// already-failed early return, since Decode's straight-line style leans
// on exactly that.
func TestDecPrimitives(t *testing.T) {
	trunc := []struct {
		name string
		buf  []byte
		read func(d *dec)
	}{
		{"u8-empty", nil, func(d *dec) { d.u8() }},
		{"u32-short", []byte{1, 2, 3}, func(d *dec) { d.u32() }},
		{"u64-short", []byte{1, 2, 3, 4, 5, 6, 7}, func(d *dec) { d.u64() }},
		{"str-body", []byte{3, 0, 0, 0, 'a'}, func(d *dec) { d.str("s", 10) }},
	}
	for _, tc := range trunc {
		d := &dec{b: tc.buf}
		tc.read(d)
		if !errors.Is(d.err, ErrArtifact) {
			t.Fatalf("%s: err = %v, want ErrArtifact", tc.name, d.err)
		}
		// Latched: every further read is a no-op returning zero values.
		if d.u8() != 0 || d.u32() != 0 || d.u64() != 0 || d.f64() != 0 ||
			d.fin("x") != 0 || d.unit("x") != 0 || d.count("x", 10, 1) != 0 ||
			d.str("x", 10) != "" {
			t.Fatalf("%s: reads after error returned non-zero", tc.name)
		}
	}

	f64buf := func(v uint64) []byte {
		b := make([]byte, 8)
		binary.LittleEndian.PutUint64(b, v)
		return b
	}
	bad := []struct {
		name string
		buf  []byte
		read func(d *dec)
	}{
		{"fin-nan", f64buf(math.Float64bits(math.NaN())), func(d *dec) { d.fin("v") }},
		{"fin-inf", f64buf(math.Float64bits(math.Inf(-1))), func(d *dec) { d.fin("v") }},
		{"unit-negative", f64buf(math.Float64bits(-0.5)), func(d *dec) { d.unit("v") }},
		{"unit-above-one", f64buf(math.Float64bits(1.5)), func(d *dec) { d.unit("v") }},
		{"unit-nan", f64buf(math.Float64bits(math.NaN())), func(d *dec) { d.unit("v") }},
		{"count-over-limit", []byte{5, 0, 0, 0}, func(d *dec) { d.count("c", 4, 0) }},
		{"count-over-remaining", []byte{5, 0, 0, 0, 1, 2}, func(d *dec) { d.count("c", 100, 4) }},
		{"node-out-of-range", []byte{9, 0, 0, 0}, func(d *dec) { d.node(3) }},
	}
	for _, tc := range bad {
		d := &dec{b: tc.buf}
		tc.read(d)
		if !errors.Is(d.err, ErrArtifact) {
			t.Fatalf("%s: err = %v, want ErrArtifact", tc.name, d.err)
		}
	}

	// Happy paths, including count with elemBytes 0 (no physical check).
	d := &dec{b: append([]byte{2, 0, 0, 0}, f64buf(math.Float64bits(0.25))...)}
	if n := d.count("c", 10, 0); n != 2 || d.err != nil {
		t.Fatalf("count = %d, err %v", n, d.err)
	}
	if v := d.unit("v"); v != 0.25 || d.err != nil {
		t.Fatalf("unit = %v, err %v", v, d.err)
	}
	if d.remaining() != 0 {
		t.Fatalf("remaining = %d", d.remaining())
	}
}

func TestDecPathRejectsMalformedWalks(t *testing.T) {
	a := &Artifact{NumNodes: 3}
	a.Edges = append(a.Edges, graph.Edge{A: 0, B: 1, Capacity: 1}, graph.Edge{A: 1, B: 2, Capacity: 1})

	enc := func(words ...uint32) []byte {
		b := make([]byte, 0, 4*len(words))
		for _, w := range words {
			b = binary.LittleEndian.AppendUint32(b, w)
		}
		return b
	}
	cases := []struct {
		name string
		buf  []byte
	}{
		// Count claims 1 edge but only the count itself is present; the
		// 8*ne+4 pre-check must fire before any node read.
		{"short-walk", enc(1)},
		{"node-out-of-range", enc(1, 7, 1, 0)},
		{"edge-out-of-range", enc(1, 0, 1, 9)},
		// Edge 1 joins (1,2), not (0,1): a disconnected walk.
		{"edge-joins-wrong-nodes", enc(1, 0, 1, 1)},
	}
	for _, tc := range cases {
		d := &dec{b: tc.buf}
		d.path(a)
		if !errors.Is(d.err, ErrArtifact) {
			t.Fatalf("%s: err = %v, want ErrArtifact", tc.name, d.err)
		}
	}

	// A reversed edge is still a valid walk (edges are undirected).
	d := &dec{b: enc(1, 1, 0, 0)}
	p := d.path(a)
	if d.err != nil {
		t.Fatalf("reversed walk rejected: %v", d.err)
	}
	if len(p.Edges) != 1 || p.Edges[0] != 0 {
		t.Fatalf("path = %+v", p)
	}
}

func TestLRUCachePutUpdatesExisting(t *testing.T) {
	c := newLRUCache(2)
	c.put(1, []byte("a"))
	c.put(2, []byte("b"))
	c.put(1, []byte("a2")) // update in place, refresh recency
	if got, ok := c.get(1); !ok || string(got) != "a2" {
		t.Fatalf("get(1) = %q, %v", got, ok)
	}
	c.put(3, []byte("c")) // evicts 2, the least recently used
	if _, ok := c.get(2); ok {
		t.Fatal("key 2 survived eviction")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d", c.len())
	}
	// capacity 0: put is a no-op.
	z := newLRUCache(0)
	z.put(1, []byte("x"))
	if z.len() != 0 {
		t.Fatal("capacity-0 cache stored an entry")
	}
}
