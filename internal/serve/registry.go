package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"flexile/internal/obs"
	"flexile/internal/obs/expo"
)

// ArtifactExt is the artifact file extension a Registry scans for; the
// basename minus the extension is the artifact's name.
const ArtifactExt = ".flxa"

// maxArtifactName bounds artifact name length; names are filenames and
// metric label values, so they stay short and printable.
const maxArtifactName = 64

// ValidArtifactName reports whether name may address a registry artifact:
// 1–64 characters from [a-zA-Z0-9._-], not starting with '.' or '-'. The
// charset keeps names safe as path segments, header values, and Prometheus
// label values without escaping.
func ValidArtifactName(name string) bool {
	if name == "" || len(name) > maxArtifactName {
		return false
	}
	if name[0] == '.' || name[0] == '-' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// regEntry is one loaded artifact: a full Server (its own LRU cache,
// single-flight table, gate, quota buckets, and breakers) plus the child
// collector its counters flush through, so per-artifact dispositions stay
// separable while still rolling up into the registry aggregate.
type regEntry struct {
	name string
	path string
	srv  *Server
	col  *obs.Collector
}

// Registry serves many named, versioned artifacts from one process
// (DESIGN.md §14). Each artifact gets its own Server — cache, flight,
// breakers, quota — so a corrupt or failing artifact cannot poison its
// neighbors; the registry routes requests to them by URL path
// (/v1/artifacts/{name}/...), by X-Flexile-Artifact header, or by the
// configured default, and owns the fleet-level endpoints: /metrics with
// per-artifact labeled families, /v1/artifacts, and POST /v1/alloc/batch
// across artifacts.
type Registry struct {
	cfg Config
	dir string
	col *obs.Collector
	mux *http.ServeMux

	mu      sync.RWMutex
	servers map[string]*regEntry

	reloadMu sync.Mutex // serializes directory rescans
	draining atomic.Bool
	traceSeq atomic.Int64
}

// NewRegistry scans dir for *.flxa files and loads every one. Startup is
// strict — any invalid artifact or an empty directory fails — because a
// process that boots must be able to answer for every name it advertises;
// later Reloads degrade per-name instead (the previous state keeps
// serving).
func NewRegistry(dir string, cfg Config) (*Registry, error) {
	r := &Registry{
		cfg:     cfg,
		dir:     dir,
		col:     cfg.collector(),
		servers: make(map[string]*regEntry),
	}
	m := http.NewServeMux()
	m.HandleFunc("GET /healthz", r.handleHealth)
	m.HandleFunc("GET /readyz", r.handleReady)
	m.HandleFunc("GET /metrics", r.handleMetrics)
	m.HandleFunc("GET /v1/artifacts", r.handleArtifacts)
	m.HandleFunc("POST /v1/alloc/batch", r.handleBatch)
	m.HandleFunc("/v1/artifacts/{name}/{rest...}", r.handleNamed)
	m.HandleFunc("/", r.handleDefault)
	r.mux = m
	if err := r.Reload(); err != nil {
		r.Close()
		return nil, err
	}
	if len(r.servers) == 0 {
		return nil, fmt.Errorf("serve: no %s artifacts in %s", ArtifactExt, dir)
	}
	if def := cfg.DefaultArtifact; def != "" {
		if _, ok := r.servers[def]; !ok {
			r.Close()
			return nil, fmt.Errorf("serve: default artifact %q not found in %s", def, dir)
		}
	}
	return r, nil
}

// Reload rescans the artifact directory: existing names reload through
// their own server (so each name has its own reload breaker — one
// artifact flapping corrupt cannot suppress its neighbors' reloads), new
// files are loaded fresh, and names whose files vanished are dropped and
// closed. Per-name failures are joined into the returned error; every
// other name still (re)loads, and a name that fails to reload keeps
// serving its previous state.
func (r *Registry) Reload() error {
	r.reloadMu.Lock()
	defer r.reloadMu.Unlock()
	paths, err := filepath.Glob(filepath.Join(r.dir, "*"+ArtifactExt))
	if err != nil {
		return fmt.Errorf("serve: scan %s: %w", r.dir, err)
	}
	sort.Strings(paths)
	seen := make(map[string]bool, len(paths))
	var errs []error
	for _, p := range paths {
		name := strings.TrimSuffix(filepath.Base(p), ArtifactExt)
		if !ValidArtifactName(name) {
			errs = append(errs, fmt.Errorf("serve: invalid artifact name %q (%s)", name, p))
			continue
		}
		seen[name] = true
		r.mu.RLock()
		ent := r.servers[name]
		r.mu.RUnlock()
		if ent != nil {
			if rerr := ent.srv.Reload(); rerr != nil {
				errs = append(errs, fmt.Errorf("artifact %q: %w", name, rerr))
			}
			continue
		}
		sub := r.cfg
		sub.Obs = obs.NewChild(r.col)
		srv, nerr := New(p, sub)
		if nerr != nil {
			errs = append(errs, fmt.Errorf("artifact %q: %w", name, nerr))
			continue
		}
		r.mu.Lock()
		r.servers[name] = &regEntry{name: name, path: p, srv: srv, col: sub.Obs}
		r.mu.Unlock()
	}
	r.mu.Lock()
	for name, ent := range r.servers {
		if !seen[name] {
			delete(r.servers, name)
			ent.srv.Close()
		}
	}
	r.mu.Unlock()
	return errors.Join(errs...)
}

// resolveArtifact implements artifactResolver: "" resolves through the
// default rule (Config.DefaultArtifact, else the sole loaded artifact),
// anything else must name a loaded entry. The error text is stable per
// name so unknown-artifact 404 bodies are deterministic.
func (r *Registry) resolveArtifact(name string) (*Server, string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if name == "" {
		if def := r.cfg.DefaultArtifact; def != "" {
			if ent := r.servers[def]; ent != nil {
				return ent.srv, def, nil
			}
			return nil, "", fmt.Errorf("default artifact %q is not loaded", def)
		}
		if len(r.servers) == 1 {
			for n, ent := range r.servers {
				return ent.srv, n, nil
			}
		}
		return nil, "", fmt.Errorf("artifact name required: %d artifacts loaded and no default configured", len(r.servers))
	}
	if !ValidArtifactName(name) {
		return nil, "", fmt.Errorf("invalid artifact name %q", name)
	}
	ent := r.servers[name]
	if ent == nil {
		return nil, "", fmt.Errorf("unknown artifact %q", name)
	}
	return ent.srv, name, nil
}

// entries returns a name-sorted snapshot of the loaded artifacts.
func (r *Registry) entries() []*regEntry {
	r.mu.RLock()
	out := make([]*regEntry, 0, len(r.servers))
	for _, ent := range r.servers {
		out = append(out, ent)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Names returns the sorted names of the loaded artifacts.
func (r *Registry) Names() []string {
	ents := r.entries()
	names := make([]string, len(ents))
	for i, ent := range ents {
		names[i] = ent.name
	}
	return names
}

// ServeHTTP implements http.Handler. Named and default-artifact requests
// delegate to the owning Server's ServeHTTP, so per-request access logging
// and request-id propagation behave exactly as on a standalone server.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	r.mux.ServeHTTP(w, req)
}

// handleNamed strips the /v1/artifacts/{name} prefix and hands the request
// to the named artifact's server as /v1/{rest}: every single-artifact
// route (alloc, alloc/batch, info, scenarios) is addressable per artifact
// with unchanged semantics.
func (r *Registry) handleNamed(w http.ResponseWriter, req *http.Request) {
	srv, _, err := r.resolveArtifact(req.PathValue("name"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	sub := req.Clone(req.Context())
	sub.URL.Path = "/v1/" + req.PathValue("rest")
	sub.URL.RawPath = ""
	srv.ServeHTTP(w, sub)
}

// handleDefault routes everything the registry mux doesn't own: the
// artifact comes from the X-Flexile-Artifact header or the default rule,
// and the request is delegated unchanged (path included), so bare
// single-artifact URLs like GET /v1/alloc keep working against a registry.
func (r *Registry) handleDefault(w http.ResponseWriter, req *http.Request) {
	srv, _, err := r.resolveArtifact(req.Header.Get("X-Flexile-Artifact"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	srv.ServeHTTP(w, req)
}

// handleBatch serves POST /v1/alloc/batch across artifacts: each query
// names its artifact (or rides the default rule), and metrics flush into
// each resolved server's child collector. The fleet batch endpoint never
// reaches a child Server's ServeHTTP, so the registry runs the request-id
// and trace bracket itself (the ring is shared with every child).
func (r *Registry) handleBatch(w http.ResponseWriter, req *http.Request) {
	_, tr, req2 := beginRequest(r.cfg, &r.traceSeq, w, req)
	if tr == nil {
		serveBatch(w, req2, r, r.cfg)
		return
	}
	rec := &accessRecorder{ResponseWriter: w, scenario: -1, cache: "none"}
	serveBatch(rec, req2, r, r.cfg)
	endRequest(r.cfg, tr, rec)
}

func (r *Registry) handleHealth(w http.ResponseWriter, _ *http.Request) {
	arts := make(map[string]string)
	for _, ent := range r.entries() {
		if st := ent.srv.st.load(); st != nil {
			arts[ent.name] = st.checksum
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"ok":        true,
		"version":   ArtifactVersion,
		"artifacts": arts,
	})
}

// handleReady aggregates readiness: the registry is ready when it is not
// draining and every loaded artifact's server is past its initial load.
// Individual reloads don't flip fleet readiness — the previous state keeps
// answering — so a flapping artifact can't drain the whole process.
func (r *Registry) handleReady(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if r.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{"ready": false, "reason": "draining"})
		return
	}
	ents := r.entries()
	if len(ents) == 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{"ready": false, "reason": "no artifacts loaded"})
		return
	}
	json.NewEncoder(w).Encode(map[string]any{"ready": true, "artifacts": len(ents)})
}

// ArtifactStatus is one row of GET /v1/artifacts: identity plus the
// per-artifact serving and reload counters operators (and the chaos
// harness) use to tell a healthy artifact from a flapping one.
type ArtifactStatus struct {
	Name             string `json:"name"`
	Checksum         string `json:"checksum"`
	Topology         string `json:"topology"`
	Scenarios        int    `json:"scenarios"`
	LoadedAt         string `json:"loaded_at"`
	RecomputeBreaker string `json:"recompute_breaker"`
	ReloadBreaker    string `json:"reload_breaker"`
	Requests         int64  `json:"requests"`
	CacheHits        int64  `json:"cache_hits"`
	CacheMisses      int64  `json:"cache_misses"`
	Degraded         int64  `json:"degraded"`
	Reloads          int64  `json:"reloads"`
	ReloadErrors     int64  `json:"reload_errors"`
	ReloadsSkipped   int64  `json:"reloads_skipped"`
}

// Artifacts returns the per-artifact status rows, sorted by name.
func (r *Registry) Artifacts() []ArtifactStatus {
	ents := r.entries()
	out := make([]ArtifactStatus, 0, len(ents))
	for _, ent := range ents {
		row := ArtifactStatus{
			Name:             ent.name,
			RecomputeBreaker: ent.srv.compBreaker.State().String(),
			ReloadBreaker:    ent.srv.reloadBreaker.State().String(),
		}
		if st := ent.srv.st.load(); st != nil {
			row.Checksum = st.checksum
			row.Topology = st.art.TopoName
			row.Scenarios = len(st.art.Scenarios)
			row.LoadedAt = st.loadedAt.UTC().Format(time.RFC3339Nano)
		}
		sm := ent.col.Snapshot().Serve
		row.Requests = sm.Requests
		row.CacheHits = sm.CacheHits
		row.CacheMisses = sm.CacheMisses
		row.Degraded = sm.Degraded
		row.Reloads = sm.Reloads
		row.ReloadErrors = sm.ReloadErrors
		row.ReloadsSkipped = sm.ReloadsSkipped
		out = append(out, row)
	}
	return out
}

func (r *Registry) handleArtifacts(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(r.Artifacts())
}

// handleMetrics renders the fleet exposition page: the root collector's
// aggregate (children roll up into it) plus per-artifact labeled families.
func (r *Registry) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", expo.ContentType)
	expo.WritePage(w, r.col, r.extraMetrics)
}

// MetricsHandler exposes the fleet /metrics page as a standalone handler
// for an admin listener.
func (r *Registry) MetricsHandler() http.Handler { return http.HandlerFunc(r.handleMetrics) }

// extraMetrics appends the registry-level gauges and the per-artifact
// labeled families. Per-artifact counters come from each entry's child
// collector snapshot; the unlabeled flexile_serve_* families on the same
// page hold the fleet aggregate.
func (r *Registry) extraMetrics(e *expo.Encoder) {
	ents := r.entries()
	ready := 0.0
	if !r.draining.Load() && len(ents) > 0 {
		ready = 1
	}
	e.Gauge("flexile_serve_ready", "Whether /readyz currently reports ready.", ready)
	e.Gauge("flexile_registry_artifacts", "Artifacts currently loaded in the registry.", float64(len(ents)))
	if len(ents) == 0 {
		return
	}

	label := func(ent *regEntry, extra ...expo.Label) []expo.Label {
		return append([]expo.Label{{Name: "artifact", Value: ent.name}}, extra...)
	}
	counter := func(name, help string, get func(obs.ServeMetrics) int64) {
		values := make([]float64, len(ents))
		labels := make([][]expo.Label, len(ents))
		for i, ent := range ents {
			values[i] = float64(get(ent.col.Snapshot().Serve))
			labels[i] = label(ent)
		}
		e.CounterVec(name, help, values, labels)
	}
	counter("flexile_serve_artifact_requests_total", "Allocation queries per artifact (batch entries included).",
		func(m obs.ServeMetrics) int64 { return m.Requests })
	counter("flexile_serve_artifact_cache_hits_total", "Allocation-cache hits per artifact.",
		func(m obs.ServeMetrics) int64 { return m.CacheHits })
	counter("flexile_serve_artifact_cache_misses_total", "Allocation-cache misses per artifact.",
		func(m obs.ServeMetrics) int64 { return m.CacheMisses })
	counter("flexile_serve_artifact_degraded_total", "Stale degraded answers per artifact.",
		func(m obs.ServeMetrics) int64 { return m.Degraded })
	counter("flexile_serve_artifact_recompute_errors_total", "Failed Online recomputations per artifact.",
		func(m obs.ServeMetrics) int64 { return m.RecomputeErrors })
	counter("flexile_serve_artifact_reload_errors_total", "Failed artifact (re)loads per artifact.",
		func(m obs.ServeMetrics) int64 { return m.ReloadErrors })

	{
		values := make([]float64, 0, 2*len(ents))
		labels := make([][]expo.Label, 0, 2*len(ents))
		for _, ent := range ents {
			values = append(values, float64(ent.srv.compBreaker.State()), float64(ent.srv.reloadBreaker.State()))
			labels = append(labels,
				label(ent, expo.Label{Name: "breaker", Value: "recompute"}),
				label(ent, expo.Label{Name: "breaker", Value: "reload"}))
		}
		e.GaugeVec("flexile_serve_artifact_breaker_state", "Per-artifact circuit-breaker state (0 closed, 1 open, 2 half-open).", values, labels)
	}
	{
		values := make([]float64, len(ents))
		labels := make([][]expo.Label, len(ents))
		for i, ent := range ents {
			if st := ent.srv.st.load(); st != nil {
				values[i] = float64(st.cache.len())
			}
			labels[i] = label(ent)
		}
		e.GaugeVec("flexile_serve_artifact_cache_entries", "Allocation-cache entries resident per artifact.", values, labels)
	}
	{
		values := make([]float64, 0, len(ents))
		labels := make([][]expo.Label, 0, len(ents))
		for _, ent := range ents {
			st := ent.srv.st.load()
			if st == nil {
				continue
			}
			values = append(values, 1)
			labels = append(labels, label(ent,
				expo.Label{Name: "version", Value: strconv.Itoa(ArtifactVersion)},
				expo.Label{Name: "checksum", Value: st.checksum},
				expo.Label{Name: "topology", Value: st.art.TopoName}))
		}
		e.GaugeVec("flexile_artifact_info", "Identity of each loaded serving artifact (value is always 1).", values, labels)
	}
}

// WatchHUP installs a SIGHUP handler that rescans the artifact directory
// until stop is called; per-name errors go to onErr (which may be nil).
func (r *Registry) WatchHUP(onErr func(error)) (stop func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGHUP)
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		for {
			select {
			case <-ch:
				if err := r.Reload(); err != nil && onErr != nil {
					onErr(err)
				}
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			signal.Stop(ch)
			close(done)
			<-finished
		})
	}
}

// BeginDrain flips fleet readiness to 503 and drains every artifact's
// server; /v1/alloc keeps answering stragglers throughout.
func (r *Registry) BeginDrain() {
	r.draining.Store(true)
	for _, ent := range r.entries() {
		ent.srv.BeginDrain()
	}
}

// Close releases every artifact server's detached recomputations. The
// registry must not serve requests afterwards.
func (r *Registry) Close() {
	for _, ent := range r.entries() {
		ent.srv.Close()
	}
}
