package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"flexile/internal/obs"
	"flexile/internal/obs/expo"
)

func TestHealthzReportsArtifact(t *testing.T) {
	path, _, _, _ := writeArtifact(t)
	srv, err := New(path, Config{CacheSize: 8, Obs: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var health map[string]any
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health["ok"] != true {
		t.Fatalf("healthz = %d %v", resp.StatusCode, health)
	}
	if int(health["version"].(float64)) != ArtifactVersion {
		t.Fatalf("healthz version = %v", health["version"])
	}
	checksum, _ := health["checksum"].(string)
	if len(checksum) != 64 {
		t.Fatalf("healthz checksum = %q", checksum)
	}
	if _, err := time.Parse(time.RFC3339Nano, health["loaded_at"].(string)); err != nil {
		t.Fatalf("healthz loaded_at: %v", err)
	}

	// The checksum must agree with /v1/info's.
	var info map[string]any
	resp, err = http.Get(ts.URL + "/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info["checksum"] != checksum {
		t.Fatalf("healthz checksum %q != info checksum %q", checksum, info["checksum"])
	}
}

// TestReadyzTracksReloads drives a reload that blocks inside the load hook:
// /readyz must flip to 503 with a JSON reason while the reload is decoding,
// /v1/alloc must keep serving from the previous artifact throughout, and
// readiness must return once the reload completes.
func TestReadyzTracksReloads(t *testing.T) {
	path, _, _, _ := writeArtifact(t)
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srv, err := New(path, Config{CacheSize: 8, Obs: obs.New(), LoadHook: func(attempt int) error {
		if attempt > 1 { // attempt 1 is New()'s initial load
			once.Do(func() { close(entered) })
			<-release
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	readyz := func() (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("readyz body is not JSON: %v", err)
		}
		return resp.StatusCode, body
	}

	if code, body := readyz(); code != http.StatusOK || body["ready"] != true {
		t.Fatalf("initial readyz = %d %v", code, body)
	}

	reloadDone := make(chan error, 1)
	go func() { reloadDone <- srv.Reload() }()
	<-entered

	code, body := readyz()
	if code != http.StatusServiceUnavailable || body["ready"] != false {
		t.Fatalf("readyz during reload = %d %v", code, body)
	}
	if reason, _ := body["reason"].(string); !strings.Contains(reason, "reload") {
		t.Fatalf("readyz reason = %q", body["reason"])
	}
	// The previous artifact keeps serving while not ready.
	get(t, ts.URL+"/v1/alloc?failed=0", "miss")

	close(release)
	if err := <-reloadDone; err != nil {
		t.Fatalf("reload: %v", err)
	}
	if code, body := readyz(); code != http.StatusOK || body["ready"] != true {
		t.Fatalf("readyz after reload = %d %v", code, body)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	path, inst, _, _ := writeArtifact(t)
	srv, err := New(path, Config{CacheSize: 8, Obs: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	get(t, ts.URL+"/v1/alloc?failed=0", "miss")
	get(t, ts.URL+"/v1/alloc?failed=0", "hit")
	get(t, ts.URL+"/v1/alloc?failed=", "miss")

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != expo.ContentType {
		t.Fatalf("metrics Content-Type = %q", ct)
	}
	if err := expo.Lint(page); err != nil {
		t.Fatalf("metrics page does not lint: %v", err)
	}
	text := string(page)
	for _, want := range []string{
		"flexile_serve_requests_total 3",
		"flexile_serve_cache_hits_total 1",
		"flexile_serve_cache_misses_total 2",
		"flexile_serve_ready 1",
		"flexile_serve_gate_capacity ",
		"flexile_serve_cache_entries 2",
		`flexile_serve_request_duration_seconds_bucket{le="+Inf"} 3`,
		"flexile_serve_request_duration_seconds_count 3",
		`topology="` + inst.Topo.Name + `"`,
		"go_sched_goroutines",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics page missing %q", want)
		}
	}
	// The artifact-identity gauge carries the live checksum.
	st := srv.st.load()
	if !strings.Contains(text, `checksum="`+st.checksum+`"`) {
		t.Errorf("metrics page missing artifact checksum label")
	}
	// At least 8 finite buckets render for the request-latency histogram.
	if n := strings.Count(text, "flexile_serve_request_duration_seconds_bucket{le="); n < 9 {
		t.Errorf("only %d request-latency bucket lines", n)
	}
	// At least 5 go_ runtime families.
	goFam := 0
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "# TYPE go_") {
			goFam++
		}
	}
	if goFam < 5 {
		t.Errorf("only %d go_ runtime families", goFam)
	}
}

// TestMetricsScrapeConcurrentWithHammer is the race-window proof for the
// serving metrics: scrapes run concurrently with an allocation hammer (run
// it under -race), and every scraped page must be internally consistent —
// expo.Lint rejects any histogram whose _count disagrees with its +Inf
// bucket, which is exactly what a snapshot torn across two instants
// produces.
func TestMetricsScrapeConcurrentWithHammer(t *testing.T) {
	path, _, _, _ := writeArtifact(t)
	srv, err := New(path, Config{CacheSize: 8, Workers: 2, Obs: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			urls := []string{
				ts.URL + "/v1/alloc?failed=0",
				ts.URL + "/v1/alloc?failed=",
				ts.URL + "/v1/alloc?failed=0,1,2",
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(urls[(g+i)%len(urls)])
				if err != nil {
					t.Errorf("hammer: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(g)
	}

	for i := 0; i < 40; i++ {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		page, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if lerr := expo.Lint(page); lerr != nil {
			t.Fatalf("scrape %d inconsistent under load: %v", i, lerr)
		}
	}
	close(stop)
	wg.Wait()

	// Quiescent cross-check: the histogram count must equal the request
	// counter exactly once the hammer stops.
	snap := srv.cfg.collector().Snapshot()
	if snap.Latency.ServeRequest.Count != uint64(snap.Serve.Requests) {
		t.Fatalf("latency count %d != requests %d",
			snap.Latency.ServeRequest.Count, snap.Serve.Requests)
	}
}

// syncBuffer guards a bytes.Buffer for use as a slog sink written from
// handler goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestAccessLogRecords(t *testing.T) {
	path, _, _, _ := writeArtifact(t)
	var buf syncBuffer
	lg := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelInfo}))
	srv, err := New(path, Config{CacheSize: 8, Obs: obs.New(), Log: lg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	get(t, ts.URL+"/v1/alloc?failed=0", "miss")
	get(t, ts.URL+"/v1/alloc?failed=0", "hit")

	// A caller-supplied request id is propagated into the response and log.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/alloc?failed=0", nil)
	req.Header.Set("X-Request-Id", "caller-id-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "caller-id-42" {
		t.Fatalf("request id not echoed: %q", got)
	}

	// A bad request logs its status.
	resp, err = http.Get(ts.URL + "/v1/alloc?failed=abc")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	type record struct {
		Msg       string `json:"msg"`
		RequestID string `json:"request_id"`
		Method    string `json:"method"`
		Path      string `json:"path"`
		Scenario  int    `json:"scenario"`
		Cache     string `json:"cache"`
		Status    int    `json:"status"`
		Bytes     int    `json:"bytes"`
	}
	var recs []record
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var r record
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		if r.Msg == "request" {
			recs = append(recs, r)
		}
	}
	if len(recs) != 4 {
		t.Fatalf("got %d access records, want 4:\n%s", len(recs), buf.String())
	}
	scen0 := srv.st.load().scenIndex["0"] // scenario index for failed=[0]
	for i, want := range []record{
		{Cache: "miss", Status: 200, Scenario: scen0},
		{Cache: "hit", Status: 200, Scenario: scen0},
		{Cache: "hit", Status: 200, Scenario: scen0, RequestID: "caller-id-42"},
		{Cache: "none", Status: 400, Scenario: -1},
	} {
		r := recs[i]
		if r.Cache != want.Cache || r.Status != want.Status || r.Scenario != want.Scenario {
			t.Errorf("record %d = %+v, want cache=%s status=%d scenario=%d", i, r, want.Cache, want.Status, want.Scenario)
		}
		if r.RequestID == "" || r.Method != "GET" || r.Path != "/v1/alloc" {
			t.Errorf("record %d incomplete: %+v", i, r)
		}
		if want.RequestID != "" && r.RequestID != want.RequestID {
			t.Errorf("record %d request id = %q, want %q", i, r.RequestID, want.RequestID)
		}
		if r.Status == 200 && r.Bytes == 0 {
			t.Errorf("record %d has zero bytes", i)
		}
	}

	// The lifecycle event from the initial load is present too.
	if !strings.Contains(buf.String(), `"msg":"artifact loaded"`) {
		t.Errorf("missing artifact-loaded lifecycle event:\n%s", buf.String())
	}
}

func TestAccessLogSampling(t *testing.T) {
	path, _, _, _ := writeArtifact(t)
	var buf syncBuffer
	lg := slog.New(slog.NewJSONHandler(&buf, nil))
	srv, err := New(path, Config{CacheSize: 8, Obs: obs.New(), Log: lg, LogEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const total = 20
	for i := 0; i < total; i++ {
		resp, err := http.Get(ts.URL + "/v1/alloc?failed=0")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	logged := strings.Count(buf.String(), `"msg":"request"`)
	if logged != total/5 {
		t.Fatalf("sampled %d of %d records with LogEvery=5, want %d", logged, total, total/5)
	}
	// Counters are never sampled: all requests are in the collector.
	if s := srv.cfg.collector().Snapshot().Serve; s.Requests != total {
		t.Fatalf("requests counter = %d, want %d", s.Requests, total)
	}
}

func TestGateWaitCounter(t *testing.T) {
	path, _, _, _ := writeArtifact(t)
	col := obs.New()
	// One worker and no cache: concurrent distinct scenarios must queue.
	srv, err := New(path, Config{CacheSize: 0, Workers: -1, Obs: col})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	urls := []string{
		ts.URL + "/v1/alloc?failed=0",
		ts.URL + "/v1/alloc?failed=",
		ts.URL + "/v1/alloc?failed=0,1,2",
	}
	var wg sync.WaitGroup
	for round := 0; round < 10; round++ {
		for _, u := range urls {
			wg.Add(1)
			go func(u string) {
				defer wg.Done()
				resp, err := http.Get(u)
				if err != nil {
					t.Errorf("get %s: %v", u, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}(u)
		}
		wg.Wait()
	}
	s := col.Snapshot().Serve
	if s.GateWaits == 0 {
		t.Skip("no gate contention observed on this machine (all solves finished before overlap)")
	}
	if s.GateWaits > s.Recomputes {
		t.Fatalf("gate waits %d exceed recomputes %d", s.GateWaits, s.Recomputes)
	}
}
