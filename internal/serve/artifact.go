// Package serve is the online allocation serving layer: it turns the
// offline decomposition's output into a deployable artifact and answers
// failure-state allocation queries from it the way the paper's control
// loop would (§4.3-4.4) — load once, look up the scenario, reuse the
// cached allocation, recompute only on the first query under a new state.
//
// The package has two halves:
//
//   - Artifact: a versioned, checksummed, self-contained binary encoding
//     of everything the online phase needs — topology, classes, tunnels,
//     demands, failure scenarios, the critical-set bitmap, the ScenLossOpt
//     vector and the subproblem loss matrix. Decode accepts arbitrary
//     bytes and returns an error for anything malformed; it never panics
//     and never yields an artifact whose indices are out of range
//     (fuzz-tested, see FuzzDecodeArtifact).
//
//   - Server: a long-running HTTP daemon (cmd/flexile-serve) answering
//     allocation queries from a per-scenario cache with single-flight
//     recomputation, hot-reloading the artifact on SIGHUP with an atomic
//     swap, and reporting cache/reload/latency counters through
//     internal/obs.
package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"flexile/internal/failure"
	"flexile/internal/graph"
	flexscheme "flexile/internal/scheme/flexile"
	"flexile/internal/te"
	"flexile/internal/topo"
)

// Format constants. The header is:
//
//	magic "FLXA" (4 bytes) | version u32 | payload length u64 |
//	sha256(payload) (32 bytes) | payload
//
// All integers are little-endian. The checksum covers exactly the payload
// bytes, so truncation, extension and corruption are all detected before
// any payload parsing happens.
const (
	artifactMagic = "FLXA"
	// ArtifactVersion is the current encoding version. Decoders reject
	// other versions; bump it on any payload layout change.
	ArtifactVersion = 1
	headerSize      = 4 + 4 + 8 + sha256.Size

	// maxPayload caps how large a payload a decoder will even consider
	// (256 MiB holds a ~1000-node network with tens of thousands of
	// scenarios; anything larger is corrupt or hostile).
	maxPayload = 1 << 28
)

// Structural bounds enforced by Decode. They exist so hostile inputs
// cannot request absurd allocations before the per-element remaining-bytes
// checks kick in.
const (
	maxNodes          = 1 << 20
	maxEdges          = 1 << 22
	maxClasses        = 1 << 8
	maxPairs          = 1 << 22
	maxScenarios      = 1 << 22
	maxTunnelsPerPair = 1 << 12
)

// ErrArtifact is wrapped by every decode failure, so callers can classify
// "bad artifact bytes" with errors.Is regardless of the specific cause.
var ErrArtifact = errors.New("serve: invalid artifact")

// Class is the serialized form of a traffic class (the tunnel-selection
// policy is not serialized: tunnels themselves are).
type Class struct {
	Name   string
	Beta   float64
	Weight float64
}

// Artifact is the self-contained offline result an allocation server
// loads: the full TE instance (minus tunnel policies, which are already
// materialized as paths) plus the offline phase's output and the γ bound
// the online phase must honor. Build produces one from a solved instance;
// Decode parses one from bytes, validating every index and every float.
type Artifact struct {
	// TopoName is the topology's display name.
	TopoName string
	// NumNodes is the node count; edges reference nodes [0, NumNodes).
	NumNodes int
	// Edges are the undirected capacitated links.
	Edges []graph.Edge
	// Classes are the traffic classes (name, β target, penalty weight).
	Classes []Class
	// Pairs are the flow endpoints (u < v).
	Pairs [][2]int
	// Tunnels[k][i] are the materialized tunnel paths of pair i in class k.
	Tunnels [][][]graph.Path
	// Demand[k][i] is the base traffic matrix.
	Demand [][]float64
	// Scenarios are the enumerated disjoint failure states.
	Scenarios []failure.Scenario
	// ScenDemand, when non-nil, is the per-scenario traffic override
	// (§4.4); entries may be nil (use the base matrix).
	ScenDemand [][]float64
	// CriticalWords is the flow×scenario critical-set bitmap, serialized
	// as its backing words (dimensions are NumFlows()×len(Scenarios)).
	CriticalWords []uint64
	// ScenLossOpt[q] is the optimal ScenLoss of scenario q (empty when the
	// offline solve degraded past it).
	ScenLossOpt []float64
	// SubLosses[f][q] are the offline subproblem losses — the per-scenario
	// bandwidth promise for critical flows (nil when unavailable).
	SubLosses [][]float64
	// Gamma is the §4.4 γ bound the online phase enforces (< 0 disables).
	Gamma float64
}

// NumFlows reports |K|·|P|.
func (a *Artifact) NumFlows() int { return len(a.Classes) * len(a.Pairs) }

// Build captures a solved instance as an artifact. The offline result must
// carry a critical set with matching dimensions; ScenLossOpt and SubLosses
// are optional (a degraded solve may lack them — the online phase then
// promises no floors, exactly as the library call would). Gamma is taken
// from opt with the same normalization Options applies: the zero value
// means "disabled" (-1).
func Build(inst *te.Instance, off *flexscheme.OfflineResult, opt flexscheme.Options) (*Artifact, error) {
	if inst == nil || inst.Topo == nil || inst.Topo.G == nil {
		return nil, fmt.Errorf("serve: Build needs a complete instance")
	}
	if off == nil || off.Critical == nil {
		return nil, fmt.Errorf("serve: Build needs an offline result with a critical set")
	}
	nf, nq := inst.NumFlows(), len(inst.Scenarios)
	if off.Critical.Flows() != nf || off.Critical.Scenarios() != nq {
		return nil, fmt.Errorf("serve: critical set is %d×%d, instance is %d×%d",
			off.Critical.Flows(), off.Critical.Scenarios(), nf, nq)
	}
	if len(off.ScenLossOpt) != 0 && len(off.ScenLossOpt) != nq {
		return nil, fmt.Errorf("serve: ScenLossOpt has %d entries for %d scenarios", len(off.ScenLossOpt), nq)
	}
	if off.SubLosses != nil && len(off.SubLosses) != nf {
		return nil, fmt.Errorf("serve: SubLosses has %d rows for %d flows", len(off.SubLosses), nf)
	}
	g := inst.Topo.G
	a := &Artifact{
		TopoName: inst.Topo.Name,
		NumNodes: g.NumNodes(),
		Gamma:    opt.Gamma,
	}
	if a.Gamma == 0 {
		a.Gamma = -1 // Options{} means "γ disabled", mirror Options.withDefaults
	}
	for e := 0; e < g.NumEdges(); e++ {
		a.Edges = append(a.Edges, g.Edge(e))
	}
	for _, c := range inst.Classes {
		a.Classes = append(a.Classes, Class{Name: c.Name, Beta: c.Beta, Weight: c.Weight})
	}
	a.Pairs = append(a.Pairs, inst.Pairs...)
	a.Tunnels = inst.Tunnels
	a.Demand = inst.Demand
	a.Scenarios = inst.Scenarios
	a.ScenDemand = inst.ScenDemand
	a.CriticalWords = append([]uint64(nil), off.Critical.Words()...)
	a.ScenLossOpt = off.ScenLossOpt
	a.SubLosses = off.SubLosses
	return a, nil
}

// Instantiate reconstructs the TE instance, the offline result and the
// online options from a decoded artifact. The returned pieces feed
// flexscheme.Online unchanged, and — because every float round-trips
// through its exact bit pattern — produce allocations bit-identical to
// calling Online on the original instance.
func (a *Artifact) Instantiate() (*te.Instance, *flexscheme.OfflineResult, flexscheme.Options, error) {
	opt := flexscheme.Options{Gamma: a.Gamma}
	g := graph.New(a.NumNodes)
	for _, e := range a.Edges {
		if e.A == e.B || e.A < 0 || e.B < 0 || e.A >= a.NumNodes || e.B >= a.NumNodes {
			return nil, nil, opt, fmt.Errorf("%w: edge (%d,%d) invalid for %d nodes", ErrArtifact, e.A, e.B, a.NumNodes)
		}
		g.AddEdge(e.A, e.B, e.Capacity)
	}
	inst := &te.Instance{
		Topo:       &topo.Topology{Name: a.TopoName, G: g},
		Pairs:      a.Pairs,
		Tunnels:    a.Tunnels,
		Demand:     a.Demand,
		Scenarios:  a.Scenarios,
		ScenDemand: a.ScenDemand,
	}
	for _, c := range a.Classes {
		inst.Classes = append(inst.Classes, te.Class{Name: c.Name, Beta: c.Beta, Weight: c.Weight})
	}
	crit, err := flexscheme.NewCriticalSetFromWords(a.NumFlows(), len(a.Scenarios), a.CriticalWords)
	if err != nil {
		return nil, nil, opt, fmt.Errorf("%w: %v", ErrArtifact, err)
	}
	off := &flexscheme.OfflineResult{
		Critical:    crit,
		ScenLossOpt: a.ScenLossOpt,
		SubLosses:   a.SubLosses,
	}
	return inst, off, opt, nil
}

// --- encoding ---

type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) f64(v float64) {
	e.u64(math.Float64bits(v))
}
func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}

// payload renders the artifact body (everything after the header).
func (a *Artifact) payload() []byte {
	var e enc
	e.str(a.TopoName)
	e.u32(uint32(a.NumNodes))
	e.u32(uint32(len(a.Edges)))
	for _, ed := range a.Edges {
		e.u32(uint32(ed.A))
		e.u32(uint32(ed.B))
		e.f64(ed.Capacity)
	}
	e.u32(uint32(len(a.Classes)))
	for _, c := range a.Classes {
		e.str(c.Name)
		e.f64(c.Beta)
		e.f64(c.Weight)
	}
	e.u32(uint32(len(a.Pairs)))
	for _, p := range a.Pairs {
		e.u32(uint32(p[0]))
		e.u32(uint32(p[1]))
	}
	for k := range a.Classes {
		for i := range a.Pairs {
			ts := a.Tunnels[k][i]
			e.u32(uint32(len(ts)))
			for _, p := range ts {
				e.u32(uint32(len(p.Edges)))
				for _, v := range p.Nodes {
					e.u32(uint32(v))
				}
				for _, ed := range p.Edges {
					e.u32(uint32(ed))
				}
			}
		}
	}
	for k := range a.Classes {
		for i := range a.Pairs {
			e.f64(a.Demand[k][i])
		}
	}
	e.u32(uint32(len(a.Scenarios)))
	for _, s := range a.Scenarios {
		e.f64(s.Prob)
		e.u32(uint32(len(s.Failed)))
		for _, ed := range s.Failed {
			e.u32(uint32(ed))
		}
	}
	if a.ScenDemand == nil {
		e.u8(0)
	} else {
		e.u8(1)
		for q := range a.Scenarios {
			if a.ScenDemand[q] == nil {
				e.u8(0)
				continue
			}
			e.u8(1)
			for _, d := range a.ScenDemand[q] {
				e.f64(d)
			}
		}
	}
	e.u32(uint32(len(a.CriticalWords)))
	for _, w := range a.CriticalWords {
		e.u64(w)
	}
	if len(a.ScenLossOpt) == 0 {
		e.u8(0)
	} else {
		e.u8(1)
		for _, v := range a.ScenLossOpt {
			e.f64(v)
		}
	}
	if a.SubLosses == nil {
		e.u8(0)
	} else {
		e.u8(1)
		for _, row := range a.SubLosses {
			for _, v := range row {
				e.f64(v)
			}
		}
	}
	e.f64(a.Gamma)
	return e.b
}

// Encode renders the artifact in the versioned, checksummed wire format.
func (a *Artifact) Encode() []byte {
	payload := a.payload()
	sum := sha256.Sum256(payload)
	out := make([]byte, 0, headerSize+len(payload))
	out = append(out, artifactMagic...)
	out = binary.LittleEndian.AppendUint32(out, ArtifactVersion)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = append(out, sum[:]...)
	out = append(out, payload...)
	return out
}

// Checksum returns the hex sha256 of the artifact's payload — the same
// value the header carries, suitable for logging and the /v1/info endpoint.
func (a *Artifact) Checksum() string {
	return fmt.Sprintf("%x", sha256.Sum256(a.payload()))
}

// --- decoding ---

// dec is a bounds-checked little-endian reader: the first failure latches
// in err and every subsequent read returns zero values, so decode logic
// reads straight-line and checks err once per structural block.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrArtifact, fmt.Sprintf(format, args...))
	}
}

func (d *dec) remaining() int { return len(d.b) - d.off }

func (d *dec) u8() uint8 {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 1 {
		d.fail("truncated at byte %d", d.off)
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 4 {
		d.fail("truncated at byte %d", d.off)
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 8 {
		d.fail("truncated at byte %d", d.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

// fin reads a float that must be finite (not NaN, not ±Inf).
func (d *dec) fin(what string) float64 {
	v := d.f64()
	if d.err == nil && (math.IsNaN(v) || math.IsInf(v, 0)) {
		d.fail("%s is not finite", what)
	}
	return v
}

// unit reads a float that must lie in [0, 1].
func (d *dec) unit(what string) float64 {
	v := d.f64()
	if d.err == nil && !(v >= 0 && v <= 1) {
		d.fail("%s %v outside [0,1]", what, v)
	}
	return v
}

// count reads an element count and rejects it unless limit allows it AND
// the remaining payload could physically hold count×elemBytes — the guard
// that keeps hostile headers from provoking huge allocations.
func (d *dec) count(what string, limit, elemBytes int) int {
	v := d.u32()
	if d.err != nil {
		return 0
	}
	n := int(v)
	if n > limit {
		d.fail("%s count %d exceeds limit %d", what, n, limit)
		return 0
	}
	if elemBytes > 0 && n > d.remaining()/elemBytes {
		d.fail("%s count %d exceeds remaining payload", what, n)
		return 0
	}
	return n
}

func (d *dec) str(what string, limit int) string {
	n := d.count(what, limit, 1)
	if d.err != nil {
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

// node reads a node id valid for n nodes.
func (d *dec) node(n int) int {
	v := d.u32()
	if d.err == nil && int(v) >= n {
		d.fail("node id %d out of range [0,%d)", v, n)
	}
	return int(v)
}

// Decode parses and validates an artifact. Arbitrary input yields a
// wrapped ErrArtifact — never a panic, and never an artifact with an
// out-of-range index, a non-finite capacity/demand, or a probability or
// loss outside [0, 1].
func Decode(data []byte) (*Artifact, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the %d-byte header", ErrArtifact, len(data), headerSize)
	}
	if string(data[:4]) != artifactMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrArtifact, data[:4])
	}
	version := binary.LittleEndian.Uint32(data[4:])
	if version != ArtifactVersion {
		return nil, fmt.Errorf("%w: version %d, this build reads version %d", ErrArtifact, version, ArtifactVersion)
	}
	plen := binary.LittleEndian.Uint64(data[8:])
	if plen > maxPayload {
		return nil, fmt.Errorf("%w: payload length %d exceeds limit %d", ErrArtifact, plen, maxPayload)
	}
	if uint64(len(data)-headerSize) != plen {
		return nil, fmt.Errorf("%w: payload is %d bytes, header says %d", ErrArtifact, len(data)-headerSize, plen)
	}
	payload := data[headerSize:]
	sum := sha256.Sum256(payload)
	var want [sha256.Size]byte
	copy(want[:], data[16:16+sha256.Size])
	if sum != want {
		return nil, fmt.Errorf("%w: checksum mismatch (corrupt payload)", ErrArtifact)
	}

	d := &dec{b: payload}
	a := &Artifact{}
	a.TopoName = d.str("topology name", 1<<12)
	a.NumNodes = d.count("node", maxNodes, 0)

	ne := d.count("edge", maxEdges, 16)
	a.Edges = make([]graph.Edge, 0, ne)
	for e := 0; e < ne && d.err == nil; e++ {
		ea, eb := d.node(a.NumNodes), d.node(a.NumNodes)
		cap := d.fin("edge capacity")
		if d.err == nil && ea == eb {
			d.fail("edge %d is a self loop", e)
		}
		if d.err == nil && cap < 0 {
			d.fail("edge %d capacity %v negative", e, cap)
		}
		a.Edges = append(a.Edges, graph.Edge{A: ea, B: eb, Capacity: cap})
	}

	nk := d.count("class", maxClasses, 20)
	a.Classes = make([]Class, 0, nk)
	for k := 0; k < nk && d.err == nil; k++ {
		name := d.str("class name", 1<<10)
		beta := d.unit("class beta")
		w := d.fin("class weight")
		if d.err == nil && w < 0 {
			d.fail("class %d weight %v negative", k, w)
		}
		a.Classes = append(a.Classes, Class{Name: name, Beta: beta, Weight: w})
	}

	np := d.count("pair", maxPairs, 8)
	a.Pairs = make([][2]int, 0, np)
	for i := 0; i < np && d.err == nil; i++ {
		u, v := d.node(a.NumNodes), d.node(a.NumNodes)
		if d.err == nil && u >= v {
			d.fail("pair %d (%d,%d) not ordered u<v", i, u, v)
		}
		a.Pairs = append(a.Pairs, [2]int{u, v})
	}

	a.Tunnels = make([][][]graph.Path, nk)
	for k := 0; k < nk && d.err == nil; k++ {
		a.Tunnels[k] = make([][]graph.Path, np)
		for i := 0; i < np && d.err == nil; i++ {
			nt := d.count("tunnel", maxTunnelsPerPair, 4)
			paths := make([]graph.Path, 0, nt)
			for t := 0; t < nt && d.err == nil; t++ {
				paths = append(paths, d.path(a))
			}
			a.Tunnels[k][i] = paths
		}
	}

	a.Demand = make([][]float64, nk)
	for k := 0; k < nk && d.err == nil; k++ {
		a.Demand[k] = make([]float64, np)
		for i := 0; i < np && d.err == nil; i++ {
			v := d.fin("demand")
			if d.err == nil && v < 0 {
				d.fail("demand[%d][%d] = %v negative", k, i, v)
			}
			a.Demand[k][i] = v
		}
	}

	nq := d.count("scenario", maxScenarios, 12)
	a.Scenarios = make([]failure.Scenario, 0, nq)
	for q := 0; q < nq && d.err == nil; q++ {
		prob := d.unit("scenario probability")
		nfail := d.count("failed edge", ne, 4)
		s := failure.Scenario{Prob: prob}
		prev := -1
		for j := 0; j < nfail && d.err == nil; j++ {
			e := d.u32()
			if d.err == nil && int(e) >= ne {
				d.fail("scenario %d failed edge %d out of range [0,%d)", q, e, ne)
			}
			if d.err == nil && int(e) <= prev {
				d.fail("scenario %d failed edges not strictly increasing", q)
			}
			prev = int(e)
			s.Failed = append(s.Failed, int(e))
		}
		a.Scenarios = append(a.Scenarios, s)
	}

	nf := nk * np
	if d.u8() == 1 && d.err == nil {
		a.ScenDemand = make([][]float64, nq)
		for q := 0; q < nq && d.err == nil; q++ {
			if d.u8() == 0 || d.err != nil {
				continue
			}
			if nf > d.remaining()/8 {
				d.fail("scenario %d demand vector exceeds remaining payload", q)
				break
			}
			row := make([]float64, nf)
			for f := 0; f < nf && d.err == nil; f++ {
				v := d.fin("scenario demand")
				if d.err == nil && v < 0 {
					d.fail("scenario %d demand[%d] = %v negative", q, f, v)
				}
				row[f] = v
			}
			a.ScenDemand[q] = row
		}
	}

	needWords := (nf*nq + 63) / 64
	nw := d.count("critical word", needWords, 8)
	if d.err == nil && nw != needWords {
		d.fail("critical set has %d words, %d flows × %d scenarios needs %d", nw, nf, nq, needWords)
	}
	a.CriticalWords = make([]uint64, 0, nw)
	for i := 0; i < nw && d.err == nil; i++ {
		a.CriticalWords = append(a.CriticalWords, d.u64())
	}

	if d.u8() == 1 && d.err == nil {
		if nq > d.remaining()/8 {
			d.fail("ScenLossOpt exceeds remaining payload")
		}
		a.ScenLossOpt = make([]float64, 0, nq)
		for q := 0; q < nq && d.err == nil; q++ {
			a.ScenLossOpt = append(a.ScenLossOpt, d.unit("ScenLossOpt"))
		}
	}

	if d.u8() == 1 && d.err == nil {
		if nf != 0 && nq > d.remaining()/8/nf {
			d.fail("SubLosses exceeds remaining payload")
		}
		a.SubLosses = make([][]float64, nf)
		for f := 0; f < nf && d.err == nil; f++ {
			row := make([]float64, nq)
			for q := 0; q < nq && d.err == nil; q++ {
				row[q] = d.unit("subproblem loss")
			}
			a.SubLosses[f] = row
		}
	}

	a.Gamma = d.fin("gamma")
	if d.err == nil && d.remaining() != 0 {
		d.fail("%d trailing bytes after payload", d.remaining())
	}
	if d.err != nil {
		return nil, d.err
	}
	return a, nil
}

// path reads one tunnel path and validates it is a well-formed walk:
// consecutive nodes joined by the edge between them.
func (d *dec) path(a *Artifact) graph.Path {
	ne := d.count("path edge", maxEdges, 4)
	if d.err != nil {
		return graph.Path{}
	}
	// A path has nEdges+1 nodes followed by nEdges edges: 4 bytes each.
	if d.remaining() < 8*ne+4 {
		d.fail("path of %d edges exceeds remaining payload", ne)
		return graph.Path{}
	}
	p := graph.Path{Nodes: make([]int, 0, ne+1), Edges: make([]int, 0, ne)}
	for i := 0; i <= ne && d.err == nil; i++ {
		p.Nodes = append(p.Nodes, d.node(a.NumNodes))
	}
	for i := 0; i < ne && d.err == nil; i++ {
		e := d.u32()
		if d.err != nil {
			break
		}
		if int(e) >= len(a.Edges) {
			d.fail("path edge %d out of range [0,%d)", e, len(a.Edges))
			break
		}
		ed := a.Edges[e]
		u, v := p.Nodes[i], p.Nodes[i+1]
		if !(ed.A == u && ed.B == v) && !(ed.A == v && ed.B == u) {
			d.fail("path edge %d (%d,%d) does not join nodes %d,%d", e, ed.A, ed.B, u, v)
			break
		}
		p.Edges = append(p.Edges, int(e))
	}
	return p
}
