package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"flexile/internal/obs/expo"
	flexscheme "flexile/internal/scheme/flexile"
)

// buildScaledBlob encodes a triangle artifact whose demands are scaled by
// scale, so different registry entries produce genuinely different
// allocations and routing mixups are detectable as body mismatches.
func buildScaledBlob(t testing.TB, scale float64) []byte {
	t.Helper()
	inst := triangleInstance()
	inst.Demand[0][0] = scale
	inst.Demand[0][1] = scale
	opt := flexscheme.Options{Workers: 2}
	off, err := flexscheme.Offline(inst, opt)
	if err != nil {
		t.Fatalf("offline solve (scale %v): %v", scale, err)
	}
	art, err := Build(inst, off, opt)
	if err != nil {
		t.Fatalf("Build (scale %v): %v", scale, err)
	}
	return art.Encode()
}

// scaledBlobs caches the per-scale offline solves across the test binary.
var scaledBlobs sync.Map // float64 → []byte

func scaledBlob(t testing.TB, scale float64) []byte {
	if b, ok := scaledBlobs.Load(scale); ok {
		return b.([]byte)
	}
	b := buildScaledBlob(t, scale)
	scaledBlobs.Store(scale, b)
	return b
}

// writeRegistryDir materializes a registry directory with one scaled
// triangle artifact per name (scales 1, 3, 5, ... so every artifact's
// allocations differ).
func writeRegistryDir(t testing.TB, names ...string) string {
	t.Helper()
	dir := t.TempDir()
	for i, name := range names {
		blob := scaledBlob(t, float64(1+2*i))
		if err := os.WriteFile(filepath.Join(dir, name+ArtifactExt), blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestValidArtifactName(t *testing.T) {
	for _, ok := range []string{"ibm", "att-v2", "a", "B6.2_exp", strings.Repeat("x", 64)} {
		if !ValidArtifactName(ok) {
			t.Errorf("ValidArtifactName(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"", ".hidden", "-flag", "a/b", "a b", "a\x00b", "ünïcode", strings.Repeat("x", 65)} {
		if ValidArtifactName(bad) {
			t.Errorf("ValidArtifactName(%q) = true, want false", bad)
		}
	}
}

// TestRegistryBatchBitIdentical is the e2e determinism contract for the
// fleet layer: for every artifact in a multi-artifact registry, batch
// entries are byte-identical to looping GET /v1/alloc, across cold/warm
// caches and worker counts, including deduplicated repeats and all three
// addressing forms (path, header, batch body).
func TestRegistryBatchBitIdentical(t *testing.T) {
	t.Parallel()
	names := []string{"alpha", "beta", "gamma"}
	dir := writeRegistryDir(t, names...)
	for _, workers := range []int{1, 2, 8} {
		for _, cacheSize := range []int{0, 64} {
			t.Run(fmt.Sprintf("workers=%d/cache=%d", workers, cacheSize), func(t *testing.T) {
				reg, err := NewRegistry(dir, Config{CacheSize: cacheSize, Workers: workers})
				if err != nil {
					t.Fatalf("NewRegistry: %v", err)
				}
				defer reg.Close()
				ts := httptest.NewServer(reg)
				defer ts.Close()

				// Oracle: loop GET /v1/alloc per artifact via path addressing.
				type pair struct {
					name   string
					q      int
					failed []int
				}
				var pairs []pair
				want := map[string][][]byte{}
				for _, name := range names {
					scens := getScenarios(t, ts.URL+"/v1/artifacts/"+name+"/scenarios")
					bodies := make([][]byte, len(scens))
					for q, failed := range scens {
						bodies[q] = getAlloc(t, ts.URL+"/v1/artifacts/"+name+"/alloc", failed, nil)
						pairs = append(pairs, pair{name, q, failed})
					}
					want[name] = bodies
				}
				// Distinct artifacts must answer distinctly somewhere, or the
				// routing assertions below would be vacuous.
				if bytes.Equal(flatten(want["alpha"]), bytes.Join(want["beta"], nil)) {
					t.Fatal("alpha and beta artifacts produced identical allocation sets")
				}

				// Header addressing must match path addressing byte for byte.
				for _, name := range names {
					scens := getScenarios(t, ts.URL+"/v1/artifacts/"+name+"/scenarios")
					for q, failed := range scens {
						got := getAlloc(t, ts.URL+"/v1/alloc", failed, map[string]string{"X-Flexile-Artifact": name})
						if !bytes.Equal(got, want[name][q]) {
							t.Fatalf("header addressing diverged for %s scenario %d", name, q)
						}
					}
				}

				// Batch: all (artifact, scenario) pairs in one stream of
				// envelopes, with every pair repeated to exercise dedup.
				var queries []BatchQuery
				var expect [][]byte
				for _, p := range pairs {
					queries = append(queries, BatchQuery{Artifact: p.name, Failed: p.failed}, BatchQuery{Artifact: p.name, Failed: p.failed})
					expect = append(expect, want[p.name][p.q], want[p.name][p.q])
				}
				for off := 0; off < len(queries); off += 16 {
					end := off + 16
					if end > len(queries) {
						end = len(queries)
					}
					results := postBatch(t, ts.URL+"/v1/alloc/batch", queries[off:end])
					for i, e := range results {
						if e.Status != http.StatusOK {
							t.Fatalf("batch entry %d: status %d (%s)", off+i, e.Status, e.Error)
						}
						if e.Degraded {
							t.Fatalf("batch entry %d unexpectedly degraded", off+i)
						}
						if !bytes.Equal([]byte(e.Body), expect[off+i]) {
							t.Fatalf("batch entry %d (artifact %s) body diverged from GET /v1/alloc", off+i, e.Artifact)
						}
					}
				}
			})
		}
	}
}

func flatten(bs [][]byte) []byte { return bytes.Join(bs, nil) }

func getScenarios(t testing.TB, url string) [][]int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	var scens []struct {
		Failed []int `json:"failed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&scens); err != nil {
		t.Fatal(err)
	}
	out := make([][]int, len(scens))
	for i, sc := range scens {
		out[i] = sc.Failed
	}
	return out
}

func getAlloc(t testing.TB, url string, failed []int, headers map[string]string) []byte {
	t.Helper()
	parts := make([]string, len(failed))
	for i, e := range failed {
		parts[i] = fmt.Sprint(e)
	}
	req, err := http.NewRequest(http.MethodGet, url+"?failed="+strings.Join(parts, ","), nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s: %s", url, resp.Status, buf.String())
	}
	return buf.Bytes()
}

func postBatch(t testing.TB, url string, queries []BatchQuery) []BatchEntry {
	t.Helper()
	body, err := json.Marshal(BatchRequest{Queries: queries})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: %s: %s", url, resp.Status, buf.String())
	}
	var env BatchResponse
	if err := json.Unmarshal(buf.Bytes(), &env); err != nil {
		t.Fatalf("batch envelope: %v", err)
	}
	if len(env.Results) != len(queries) {
		t.Fatalf("batch answered %d of %d queries", len(env.Results), len(queries))
	}
	return env.Results
}

// TestRegistryRouting covers the fleet endpoints and addressing rules:
// default-artifact resolution, stable unknown-name 404 bodies, the status
// listing, and a lint-clean labeled metrics page.
func TestRegistryRouting(t *testing.T) {
	t.Parallel()
	dir := writeRegistryDir(t, "alpha", "beta")
	reg, err := NewRegistry(dir, Config{CacheSize: 16, Workers: 2, DefaultArtifact: "beta"})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	ts := httptest.NewServer(reg)
	defer ts.Close()

	if got := reg.Names(); !reflect.DeepEqual(got, []string{"alpha", "beta"}) {
		t.Fatalf("Names() = %v", got)
	}

	// Bare paths resolve through the default artifact: bit-identical to
	// the named form.
	scens := getScenarios(t, ts.URL+"/v1/scenarios")
	named := getAlloc(t, ts.URL+"/v1/artifacts/beta/alloc", scens[1], nil)
	bare := getAlloc(t, ts.URL+"/v1/alloc", scens[1], nil)
	if !bytes.Equal(named, bare) {
		t.Error("default-artifact routing diverged from named routing")
	}

	// Unknown names 404 with the stable error body, in all addressing forms.
	for _, url := range []string{
		ts.URL + "/v1/artifacts/nope/alloc?failed=",
		ts.URL + "/v1/artifacts/nope/scenarios",
	} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: %d", url, resp.StatusCode)
		}
		if want := `{"error":"unknown artifact \"nope\""}` + "\n"; string(body) != want {
			t.Fatalf("unknown-artifact body = %q, want %q", body, want)
		}
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/alloc?failed=", nil)
	req.Header.Set("X-Flexile-Artifact", "nope")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("header addressing of unknown artifact: %d", resp.StatusCode)
	}

	// Status listing: one row per artifact with live identity.
	var rows []ArtifactStatus
	getJSON(t, ts.URL+"/v1/artifacts", &rows)
	if len(rows) != 2 || rows[0].Name != "alpha" || rows[1].Name != "beta" {
		t.Fatalf("artifact rows = %+v", rows)
	}
	for _, row := range rows {
		if row.Checksum == "" || row.Topology != "Triangle" || row.Scenarios != 8 {
			t.Errorf("row %q incomplete: %+v", row.Name, row)
		}
		if row.ReloadBreaker != "closed" || row.RecomputeBreaker != "closed" {
			t.Errorf("row %q breakers not closed: %+v", row.Name, row)
		}
	}

	// Fleet health and readiness.
	var health struct {
		OK        bool              `json:"ok"`
		Artifacts map[string]string `json:"artifacts"`
	}
	getJSON(t, ts.URL+"/healthz", &health)
	if !health.OK || len(health.Artifacts) != 2 {
		t.Errorf("healthz = %+v", health)
	}
	var ready struct {
		Ready bool `json:"ready"`
	}
	getJSON(t, ts.URL+"/readyz", &ready)
	if !ready.Ready {
		t.Error("registry not ready")
	}

	// The metrics page must lint cleanly with the per-artifact families
	// present and labeled.
	page := getAlloc(t, ts.URL+"/metrics", nil, nil)
	if err := expo.Lint(page); err != nil {
		t.Fatalf("metrics lint: %v", err)
	}
	for _, want := range []string{
		`flexile_registry_artifacts 2`,
		`flexile_serve_artifact_requests_total{artifact="alpha"}`,
		`flexile_serve_artifact_breaker_state{artifact="beta",breaker="reload"}`,
		`flexile_artifact_info{artifact="alpha",`,
		`flexile_serve_batch_requests_total`,
	} {
		if !strings.Contains(string(page), want) {
			t.Errorf("metrics page missing %q", want)
		}
	}

	// BeginDrain flips fleet readiness.
	reg.BeginDrain()
	rr, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz after drain = %d, want 503", rr.StatusCode)
	}
}

// TestRegistryReload proves per-name hot reload: adding a file brings a
// new artifact up, removing one drops it, and a corrupt neighbor fails
// alone while healthy names keep reloading and serving.
func TestRegistryReload(t *testing.T) {
	t.Parallel()
	dir := writeRegistryDir(t, "alpha")
	reg, err := NewRegistry(dir, Config{CacheSize: 16, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	ts := httptest.NewServer(reg)
	defer ts.Close()

	// Add a second artifact and rescan.
	if err := os.WriteFile(filepath.Join(dir, "beta"+ArtifactExt), scaledBlob(t, 3), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := reg.Reload(); err != nil {
		t.Fatalf("Reload after add: %v", err)
	}
	if got := reg.Names(); !reflect.DeepEqual(got, []string{"alpha", "beta"}) {
		t.Fatalf("Names after add = %v", got)
	}
	scens := getScenarios(t, ts.URL+"/v1/artifacts/beta/scenarios")
	want := getAlloc(t, ts.URL+"/v1/artifacts/beta/alloc", scens[0], nil)

	// Corrupt beta: the rescan reports it, alpha still reloads, and beta
	// keeps serving its previous state bit-identically.
	if err := os.WriteFile(filepath.Join(dir, "beta"+ArtifactExt), []byte("corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	err = reg.Reload()
	if err == nil || !strings.Contains(err.Error(), `artifact "beta"`) {
		t.Fatalf("Reload with corrupt beta: %v", err)
	}
	if got := getAlloc(t, ts.URL+"/v1/artifacts/beta/alloc", scens[0], nil); !bytes.Equal(got, want) {
		t.Error("beta stopped serving its previous state after a failed reload")
	}

	// Remove beta entirely: the name drops and 404s.
	if err := os.Remove(filepath.Join(dir, "beta"+ArtifactExt)); err != nil {
		t.Fatal(err)
	}
	if err := reg.Reload(); err != nil {
		t.Fatalf("Reload after remove: %v", err)
	}
	if got := reg.Names(); !reflect.DeepEqual(got, []string{"alpha"}) {
		t.Fatalf("Names after remove = %v", got)
	}
	resp, err := http.Get(ts.URL + "/v1/artifacts/beta/alloc?failed=")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("removed artifact still answers: %d", resp.StatusCode)
	}

	// With one artifact and no default, bare addressing resolves to it.
	if got := getAlloc(t, ts.URL+"/v1/alloc", scens[0], nil); len(got) == 0 {
		t.Error("sole-artifact default resolution failed")
	}
}

func getJSON(t testing.TB, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}
